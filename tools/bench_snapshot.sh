#!/usr/bin/env bash
# Perf-trajectory snapshot: runs the solver benches in fast mode and
# collects their RESULT-line JSON into one file, so every PR can commit a
# BENCH_<tag>.json at the repo root and the next re-anchor can diff
# solve times instead of guessing.
#
# Usage: tools/bench_snapshot.sh [build_dir] [out_file]
#   build_dir  defaults to build       (needs a Release build of bench/)
#   out_file   defaults to BENCH_snapshot.json
#
# Output shape: {"<result name>": [record, ...], ...} — one key per
# RESULT line name (hmooc_solve, dag_aggregation, pareto_merge), records
# in emission order.
set -euo pipefail

BUILD_DIR=${1:-build}
OUT=${2:-BENCH_snapshot.json}

if [[ ! -x "${BUILD_DIR}/bench/bench_hmooc_solver" ]]; then
  echo "bench_snapshot: ${BUILD_DIR}/bench/ not built (cmake --build ${BUILD_DIR} -j)" >&2
  exit 1
fi

tmp=$(mktemp)
trap 'rm -f "${tmp}"' EXIT

# --benchmark_filter='^$' skips the google-benchmark timing loops: only
# the directly measured RESULT emitters run, which keeps the snapshot
# fast and its records comparable across machines of one CI pool.
SPARKOPT_BENCH_FAST=1 "${BUILD_DIR}/bench/bench_hmooc_solver" \
  --benchmark_filter='^$' | grep '^RESULT ' >> "${tmp}"
SPARKOPT_BENCH_FAST=1 "${BUILD_DIR}/bench/bench_dag_aggregation" \
  | grep '^RESULT ' >> "${tmp}"
SPARKOPT_BENCH_FAST=1 "${BUILD_DIR}/bench/bench_pareto_ops" \
  --benchmark_filter='^$' | grep '^RESULT ' >> "${tmp}"

python3 - "${tmp}" "${OUT}" <<'EOF'
import json
import sys

records = {}
with open(sys.argv[1], encoding="utf-8") as f:
    for line in f:
        _, name, payload = line.split(" ", 2)
        records.setdefault(name, []).append(json.loads(payload))
with open(sys.argv[2], "w", encoding="utf-8") as f:
    json.dump(records, f, indent=1)
    f.write("\n")
print(f"bench_snapshot: wrote {sum(map(len, records.values()))} records "
      f"({', '.join(records)}) to {sys.argv[2]}")
EOF
