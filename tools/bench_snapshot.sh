#!/usr/bin/env bash
# Perf-trajectory snapshot: runs the solver benches in fast mode and
# collects their RESULT-line JSON into one file, so every PR can commit a
# BENCH_<tag>.json at the repo root and tools/bench_diff.py can diff
# solve times instead of guessing.
#
# Usage: tools/bench_snapshot.sh [--allow-dirty] [build_dir] [out_file]
#   build_dir  defaults to build       (needs a Release build of bench/)
#   out_file   defaults to BENCH_snapshot.json
#   SPARKOPT_SNAPSHOT_REPEATS  bench repetitions (default 3)
#
# A snapshot taken from a dirty tree records a git_sha that does not
# describe the benched code, which poisons every later bench_diff
# against it — so dirty trees are refused unless --allow-dirty is given
# (the snapshot is then marked "git_dirty": true).
#
# Each bench runs SPARKOPT_SNAPSHOT_REPEATS times; records sharing one
# key tuple (the config axes declared in tools/bench_schema.json) are
# aggregated, every numeric metric becoming {"mean", "stddev", "runs"}.
# Output shape:
#   {"meta": {git_sha, git_dirty, date_utc, host, repeats, schema_version},
#    "results": {"<result name>": [aggregated record, ...], ...}}
set -euo pipefail

ALLOW_DIRTY=0
if [[ "${1:-}" == "--allow-dirty" ]]; then
  ALLOW_DIRTY=1
  shift
fi

BUILD_DIR=${1:-build}
OUT=${2:-BENCH_snapshot.json}
REPEATS=${SPARKOPT_SNAPSHOT_REPEATS:-3}
SCHEMA="$(dirname "$0")/bench_schema.json"

if [[ ! -x "${BUILD_DIR}/bench/bench_hmooc_solver" ]]; then
  echo "bench_snapshot: ${BUILD_DIR}/bench/ not built (cmake --build ${BUILD_DIR} -j)" >&2
  exit 1
fi

if [[ ${ALLOW_DIRTY} -eq 0 ]] && \
   git -C "$(dirname "$0")/.." status --porcelain 2>/dev/null | grep -q .; then
  echo "bench_snapshot: working tree is dirty — the snapshot's git_sha" >&2
  echo "would not describe the benched code. Commit/stash first, or pass" >&2
  echo "--allow-dirty to record the snapshot anyway (marked git_dirty)." >&2
  exit 1
fi

tmp=$(mktemp)
trap 'rm -f "${tmp}"' EXIT

# --benchmark_filter='^$' skips the google-benchmark timing loops: only
# the directly measured RESULT emitters run, which keeps the snapshot
# fast and its records comparable across machines of one CI pool.
for ((rep = 0; rep < REPEATS; ++rep)); do
  SPARKOPT_BENCH_FAST=1 "${BUILD_DIR}/bench/bench_hmooc_solver" \
    --benchmark_filter='^$' | grep '^RESULT ' >> "${tmp}"
  SPARKOPT_BENCH_FAST=1 "${BUILD_DIR}/bench/bench_dag_aggregation" \
    | grep '^RESULT ' >> "${tmp}"
  SPARKOPT_BENCH_FAST=1 "${BUILD_DIR}/bench/bench_pareto_ops" \
    --benchmark_filter='^$' | grep '^RESULT ' >> "${tmp}"
  # Low-load open-loop service run: throughput/latency/speedup records
  # (fast mode shrinks the request counts, not the config matrix).
  SPARKOPT_BENCH_FAST=1 "${BUILD_DIR}/bench/bench_tuning_service" \
    | grep '^RESULT ' >> "${tmp}"
done
# The pruning/observability bench drives the full tuner and measures its
# own repeats internally — run it once.
SPARKOPT_BENCH_FAST=1 "${BUILD_DIR}/bench/bench_runtime_overhead" \
  | grep '^RESULT ' >> "${tmp}"

GIT_SHA=$(git -C "$(dirname "$0")/.." rev-parse --short HEAD 2>/dev/null || echo unknown)
GIT_DIRTY=$(git -C "$(dirname "$0")/.." status --porcelain 2>/dev/null | grep -q . && echo true || echo false)

python3 - "${tmp}" "${OUT}" "${SCHEMA}" "${REPEATS}" "${GIT_SHA}" "${GIT_DIRTY}" <<'EOF'
import datetime
import json
import math
import socket
import sys

lines_path, out_path, schema_path, repeats, git_sha, git_dirty = sys.argv[1:7]
with open(schema_path, encoding="utf-8") as f:
    schema = json.load(f)["results"]

# Group records by (name, key tuple); collect every numeric field's
# samples across repeats. Non-numeric fields (and unregistered names'
# whole records) pass through from the last occurrence.
groups = {}
with open(lines_path, encoding="utf-8") as f:
    for line in f:
        _, name, payload = line.split(" ", 2)
        rec = json.loads(payload)
        spec = schema.get(name)
        keys = spec["keys"] if spec else [
            k for k, v in rec.items() if not isinstance(v, float)]
        key = tuple((k, rec.get(k)) for k in keys)
        slot = groups.setdefault((name, key), {"fields": {}, "samples": {}})
        for field, value in rec.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                slot["fields"][field] = value
            elif field in dict(key):
                slot["fields"][field] = value
            else:
                slot["samples"].setdefault(field, []).append(float(value))

results = {}
for (name, key), slot in groups.items():
    rec = dict(slot["fields"])
    for field, samples in slot["samples"].items():
        mean = sum(samples) / len(samples)
        var = sum((s - mean) ** 2 for s in samples) / len(samples)
        rec[field] = {"mean": mean, "stddev": math.sqrt(var),
                      "runs": len(samples)}
    results.setdefault(name, []).append(rec)

snapshot = {
    "meta": {
        "git_sha": git_sha,
        "git_dirty": git_dirty == "true",
        "date_utc": datetime.datetime.now(datetime.timezone.utc)
                    .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "host": socket.gethostname(),
        "repeats": int(repeats),
        "schema_version": 1,
    },
    "results": results,
}
with open(out_path, "w", encoding="utf-8") as f:
    json.dump(snapshot, f, indent=1)
    f.write("\n")
print(f"bench_snapshot: wrote {sum(map(len, results.values()))} aggregated "
      f"records ({', '.join(sorted(results))}) to {out_path}")
EOF
