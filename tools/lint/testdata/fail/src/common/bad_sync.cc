// Fixture: every std sync primitive the raw-mutex rule must catch.
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

namespace fixture {

std::mutex g_mu;                 // line 8: raw-mutex
std::shared_mutex g_rw;          // line 9: raw-mutex
std::condition_variable g_cv;    // line 10: raw-mutex

void Locker() {
  std::lock_guard<std::mutex> lock(g_mu);  // line 13: raw-mutex
}

}  // namespace fixture
