// Fixture: naked allocation the naked-new rule must catch.
#include <cstdlib>

namespace fixture {

struct Node {
  int v = 0;
};

Node* MakeNode() {
  return new Node();  // line 11: naked-new
}

void* MakeBuffer(unsigned n) {
  void* p = malloc(n);  // line 15: naked-new
  return p;
}

}  // namespace fixture
