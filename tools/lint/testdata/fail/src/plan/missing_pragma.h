// Fixture: header without #pragma once (pragma-once rule, reported at
// line 1).
#ifndef FIXTURE_MISSING_PRAGMA_H_
#define FIXTURE_MISSING_PRAGMA_H_

namespace fixture {
struct Empty {};
}  // namespace fixture

#endif  // FIXTURE_MISSING_PRAGMA_H_
