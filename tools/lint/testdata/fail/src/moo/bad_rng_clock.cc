// Fixture: unseeded RNG and wall-clock reads in a result path.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

double NoisyObjective() {
  std::random_device rd;                       // line 10: unseeded-rng
  std::mt19937 gen(rd());                      // line 11: unseeded-rng
  return static_cast<double>(rand());          // line 12: unseeded-rng
}

double WallClockCost() {
  auto now = std::chrono::system_clock::now();  // line 16: wall-clock
  std::time_t t = time(nullptr);                // line 17: wall-clock
  return static_cast<double>(t) +
         std::chrono::duration<double>(now.time_since_epoch()).count();
}

}  // namespace fixture
