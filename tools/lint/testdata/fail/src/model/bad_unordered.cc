// Fixture: iteration over unordered containers in a result path.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

std::unordered_map<std::string, double> g_weights;

double SumWeights() {
  double sum = 0.0;
  for (const auto& kv : g_weights) {  // line 13: unordered-iter
    sum += kv.second;
  }
  return sum;
}

std::vector<int> CollectIds(const std::unordered_set<int>& ids) {
  std::vector<int> out;
  for (auto it = ids.begin(); it != ids.end(); ++it) {  // line 21: unordered-iter
    out.push_back(*it);
  }
  return out;
}

}  // namespace fixture
