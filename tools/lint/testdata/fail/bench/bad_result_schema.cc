// Fixture: EmitJson with a RESULT name absent from the registry in
// tools/bench_schema.json (only "registered_bench" is declared there).
#include "bench_util.h"

int main() {
  sparkopt::obs::Json payload;
  sparkopt::benchutil::EmitJson("registered_bench", payload);
  sparkopt::benchutil::EmitJson("unregistered_bench", payload);  // line 8
  return 0;
}
