// Fixture: hand-rolled RESULT line instead of benchutil::EmitJson.
#include <cstdio>

int main() {
  std::printf("RESULT my_bench {\"ns\": 12}\n");  // line 5: bench-result
  return 0;
}
