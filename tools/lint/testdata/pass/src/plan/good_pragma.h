#pragma once

// Fixture: header with #pragma once; pragma-once must stay quiet.

namespace fixture {
struct Empty {};
}  // namespace fixture
