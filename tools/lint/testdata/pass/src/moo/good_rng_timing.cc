// Fixture: seeded Rng and steady_clock durations are the sanctioned
// spellings; unseeded-rng and wall-clock must stay quiet. The string
// literal and the comment below also prove token rules ignore
// non-code text: rand() and std::random_device in a comment, and
// "time (" inside a string, are not findings.
#include <chrono>
#include <string>

#include "common/rng.h"

namespace fixture {

double SeededNoise(uint64_t seed) {
  sparkopt::Rng rng(seed);  // never rand() or std::random_device
  return rng.Uniform();
}

double ElapsedSeconds() {
  const auto t0 = std::chrono::steady_clock::now();
  const std::string label = "solve time (monotonic)";
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
             .count() +
         static_cast<double>(label.size()) * 0.0;
}

}  // namespace fixture
