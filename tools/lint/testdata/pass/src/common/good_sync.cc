// Fixture: the annotated wrappers are the sanctioned spelling; the
// raw-mutex rule must stay quiet here. (Fixtures are scanned, not
// compiled, so the include path mirrors the real tree textually.)
#include "common/thread_safety.h"

namespace fixture {

class Queue {
 public:
  void Push(int v) {
    sparkopt::MutexLock lock(mu_);
    next_ = v;
    cv_.NotifyOne();
  }

  int BlockingPop() {
    sparkopt::MutexLock lock(mu_);
    while (next_ == 0) cv_.Wait(mu_);
    return next_;
  }

 private:
  sparkopt::Mutex mu_;
  sparkopt::CondVar cv_;
  int next_ SPARKOPT_GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
