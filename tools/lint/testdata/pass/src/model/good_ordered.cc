// Fixture: unordered containers are fine for point lookups; only
// iteration is order-dependent. Ordered iteration goes through std::map
// or a sorted vector.
#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

std::unordered_map<std::string, double> g_cache;

double Lookup(const std::string& key) {
  auto it = g_cache.find(key);  // point lookup: order never observed
  return it != g_cache.end() ? it->second : 0.0;
}

double SumOrdered(const std::map<std::string, double>& weights) {
  double sum = 0.0;
  for (const auto& kv : weights) sum += kv.second;
  return sum;
}

std::vector<std::string> SortedKeys() {
  std::vector<std::string> keys;
  keys.reserve(g_cache.size());
  // lint:allow(unordered-iter): keys are sorted immediately below
  for (const auto& kv : g_cache) keys.push_back(kv.first);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace fixture
