// Fixture: the lint:allow escape hatch — preceding-line and same-line
// forms both suppress naked-new. Words like "new" in comments (a brand
// new arena) or strings must not fire either.
#include <cstdlib>

namespace fixture {

struct Arena {
  char* base = nullptr;

  void Reserve(unsigned n) {
    // lint:allow(naked-new): arena backing store, released in Drop().
    base = static_cast<char*>(malloc(n));
  }

  void Drop() {
    free(base);  // lint:allow(naked-new): paired with Reserve's malloc
    base = nullptr;
  }
};

const char* Describe() { return "allocates a new arena block"; }

}  // namespace fixture
