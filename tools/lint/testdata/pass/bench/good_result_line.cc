// Fixture: RESULT lines through benchutil::EmitJson are the sanctioned
// emitter; a RESULT mention in prose (no string literal) is fine too.
#include "bench_util.h"

int main() {
  sparkopt::obs::Json payload;
  sparkopt::benchutil::EmitJson("my_bench", payload);
  return 0;
}
