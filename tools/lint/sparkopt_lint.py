#!/usr/bin/env python3
"""sparkopt-lint: project-specific determinism & hygiene rules.

Rule-based source scanner for the contracts the compiler cannot check
(the compile-time layer is Clang Thread Safety Analysis, see
src/common/thread_safety.h). Catalog, rationale, and how to add a rule:
DESIGN.md section 11.

Usage:
  sparkopt_lint.py [--root DIR]     # lint src/ bench/ tests/ examples/
  sparkopt_lint.py --selftest       # run the golden-fixture suite
  sparkopt_lint.py --list-rules

Suppression: append `// lint:allow(<rule-id>): <reason>` on the flagged
line or the line directly above it. The reason is mandatory by
convention (reviewed, not machine-checked).

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import json
import os
import re
import sys

# ---------------------------------------------------------------------------
# Source preprocessing
# ---------------------------------------------------------------------------


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literal bodies, preserving
    line structure, so token rules don't fire on prose or log messages."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                # Raw strings: skip to the matching delimiter verbatim.
                if out and out[-1] == "R":
                    m = re.match(r'R"([^(\s]*)\(', text[i - 1 :])
                    if m:
                        end = text.find(")" + m.group(1) + '"', i)
                        if end == -1:
                            end = n - 1
                        seg = text[i - 1 : end + len(m.group(1)) + 2]
                        out[-1] = " "
                        out.append("".join("\n" if ch == "\n" else " " for ch in seg[1:]))
                        i = end + len(m.group(1)) + 2
                        continue
                state = "string"
                out.append('"')
                i += 1
            elif c == "'":
                state = "char"
                out.append("'")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(quote)
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


_ALLOW_RE = re.compile(r"lint:allow\(([a-z0-9-]+)\)")


def collect_allows(raw_lines):
    """line number (1-based) -> set of rule ids allowed on that line."""
    allows = {}
    for ln, line in enumerate(raw_lines, 1):
        for rule in _ALLOW_RE.findall(line):
            allows.setdefault(ln, set()).add(rule)
    return allows


# ---------------------------------------------------------------------------
# Rules. Each rule: id, description, applies(relpath) -> bool,
# check(ctx) -> yields (line, message). relpath uses '/' separators.
# ---------------------------------------------------------------------------


class FileCtx:
    def __init__(self, relpath, raw, root="."):
        self.relpath = relpath
        self.raw = raw
        self.root = root  # for rules that consult repo-level registries
        self.raw_lines = raw.splitlines()
        self.stripped = strip_comments_and_strings(raw)
        self.stripped_lines = self.stripped.splitlines()


def _token_rule(pattern, message):
    rx = re.compile(pattern)
    def check(ctx):
        for ln, line in enumerate(ctx.stripped_lines, 1):
            if rx.search(line):
                yield ln, message
    return check


RULES = []


def rule(rule_id, description, applies):
    def wrap(fn):
        RULES.append(
            {"id": rule_id, "description": description, "applies": applies,
             "check": fn})
        return fn
    return wrap


def _in(*prefixes, exts=(".h", ".cc", ".cpp"), exclude=()):
    def applies(relpath):
        return (relpath.startswith(prefixes)
                and relpath.endswith(exts)
                and relpath not in exclude)
    return applies


rule(
    "raw-mutex",
    "std sync primitives in src/ must go through the annotated wrappers in "
    "common/thread_safety.h (sparkopt::Mutex/SharedMutex/CondVar + RAII "
    "guards), so Clang Thread Safety Analysis covers them",
    _in("src/", exclude=("src/common/thread_safety.h",)),
)(_token_rule(
    r"std::(recursive_mutex|timed_mutex|shared_mutex|mutex\b|"
    r"condition_variable|lock_guard|unique_lock|shared_lock|scoped_lock)",
    "raw std sync primitive; use sparkopt::Mutex/SharedMutex/CondVar and "
    "the RAII guards from common/thread_safety.h"))

rule(
    "unseeded-rng",
    "all randomness flows through the explicitly seeded sparkopt::Rng "
    "(common/rng.h); rand()/std::random_device/std engines break "
    "bit-reproducibility",
    _in("src/", "bench/", "tests/", "examples/",
        exclude=("src/common/rng.h",)),
)(_token_rule(
    r"\brand\s*\(|\bsrand\s*\(|\brandom_device\b|\bmt19937|"
    r"\bdefault_random_engine\b|\bminstd_rand|\bdrand48\b|\blrand48\b",
    "unseeded / non-deterministic RNG; use sparkopt::Rng (common/rng.h) "
    "with an explicit seed"))

rule(
    "wall-clock",
    "no wall-clock reads in solver/model/result paths: results must be a "
    "pure function of inputs + seed (steady_clock durations for metrics "
    "are fine; obs/ owns timestamps)",
    _in("src/"),
)(_token_rule(
    r"\bsystem_clock\b|\bgettimeofday\s*\(|\btime\s*\(|\blocaltime"
    r"|\bgmtime|\bclock_gettime\s*\(|\bctime\s*\(",
    "wall-clock read in a deterministic path; derive timing from "
    "steady_clock durations (obs helpers) or pass timestamps in"))

@rule(
    "unordered-iter",
    "iterating an unordered container yields platform/run-dependent order; "
    "in result paths use std::map, a sorted vector, or sort before "
    "iterating",
    _in("src/"),
)
def _unordered_iter(ctx):
    decl_rx = re.compile(
        r"unordered_(?:map|set|multimap|multiset)\s*<[^;{()]*>\s*[&*]*\s*(\w+)")
    names = set()
    for line in ctx.stripped_lines:
        for name in decl_rx.findall(line):
            names.add(name)
    if not names:
        return
    range_for = re.compile(r"for\s*\([^;()]*:\s*\*?(\w+)\s*\)")
    begin_call = re.compile(r"(\w+)\.c?begin\s*\(\)")
    for ln, line in enumerate(ctx.stripped_lines, 1):
        for rx in (range_for, begin_call):
            m = rx.search(line)
            if m and m.group(1) in names:
                yield ln, (f"iteration over unordered container "
                           f"'{m.group(1)}' has nondeterministic order; "
                           "use an ordered container or sort first")
                break


@rule(
    "pragma-once",
    "every header carries #pragma once (include guards drift; duplicate "
    "inclusion breaks the annotation macros)",
    _in("src/", "bench/", "tests/", exts=(".h",)),
)
def _pragma_once(ctx):
    if not any(line.strip() == "#pragma once" for line in ctx.raw_lines[:30]):
        yield 1, "header is missing '#pragma once' (expected near the top)"

rule(
    "naked-new",
    "no naked new/malloc outside arena/pool code: ownership goes through "
    "make_unique/containers, hot paths through caller-owned scratch "
    "buffers (see pareto_flat.h)",
    _in("src/"),
)(_token_rule(
    r"\bnew\b|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\(|\bfree\s*\(",
    "naked new/malloc; use std::make_unique, a container, or a "
    "caller-owned scratch/arena"))

@rule(
    "bench-result",
    "machine-readable RESULT lines are emitted only via "
    "benchutil::EmitJson (bench_util.h), so the driver's parsers see one "
    "format",
    _in("bench/", "examples/", exts=(".cc", ".cpp")),
)
def _bench_result(ctx):
    rx = re.compile(r'"RESULT[ \\]')
    for ln, line in enumerate(ctx.raw_lines, 1):
        if rx.search(line):
            yield ln, ("hand-rolled RESULT line; emit through "
                       "benchutil::EmitJson (bench_util.h)")


_SCHEMA_CACHE = {}


def _bench_schema_names(root):
    """Registered RESULT names from tools/bench_schema.json, or None when
    the registry is missing/unparseable (cached per root)."""
    path = os.path.abspath(os.path.join(root, "tools", "bench_schema.json"))
    if path not in _SCHEMA_CACHE:
        try:
            with open(path, encoding="utf-8") as f:
                _SCHEMA_CACHE[path] = set(json.load(f).get("results", {}))
        except (OSError, ValueError):
            _SCHEMA_CACHE[path] = None
    return _SCHEMA_CACHE[path]


@rule(
    "bench-result-schema",
    "every RESULT name passed to benchutil::EmitJson must be registered in "
    "tools/bench_schema.json, so bench_snapshot.sh knows its key fields and "
    "bench_diff.py its metrics/thresholds",
    _in("bench/", "examples/", exts=(".cc", ".cpp")),
)
def _bench_result_schema(ctx):
    # Raw lines: the name lives inside a string literal, which the
    # stripped view blanks out.
    rx = re.compile(r'EmitJson\(\s*"([^"]+)"')
    uses = [(ln, name) for ln, line in enumerate(ctx.raw_lines, 1)
            for name in rx.findall(line)]
    if not uses:
        return
    registered = _bench_schema_names(ctx.root)
    if registered is None:
        yield uses[0][0], ("tools/bench_schema.json is missing or "
                           "unparseable; RESULT names cannot be validated")
        return
    for ln, name in uses:
        if name not in registered:
            yield ln, (f"RESULT name '{name}' is not registered in "
                       "tools/bench_schema.json; declare its keys, metrics, "
                       "and thresholds there")


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

SCAN_DIRS = ("src", "bench", "tests", "examples")
SOURCE_EXTS = (".h", ".cc", ".cpp")


def iter_source_files(root):
    for d in SCAN_DIRS:
        top = os.path.join(root, d)
        if not os.path.isdir(top):
            continue
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames.sort()
            for fn in sorted(filenames):
                if fn.endswith(SOURCE_EXTS):
                    path = os.path.join(dirpath, fn)
                    yield os.path.relpath(path, root).replace(os.sep, "/")


def lint_file(root, relpath):
    with open(os.path.join(root, relpath), encoding="utf-8",
              errors="replace") as f:
        raw = f.read()
    ctx = FileCtx(relpath, raw, root)
    allows = collect_allows(ctx.raw_lines)
    findings = []
    for r in RULES:
        if not r["applies"](relpath):
            continue
        for ln, message in r["check"](ctx):
            allowed = (r["id"] in allows.get(ln, ()) or
                       r["id"] in allows.get(ln - 1, ()))
            if not allowed:
                findings.append((relpath, ln, r["id"], message))
    return findings


def lint_tree(root):
    findings = []
    for relpath in iter_source_files(root):
        findings.extend(lint_file(root, relpath))
    return findings


def print_findings(findings):
    for relpath, ln, rule_id, message in findings:
        print(f"{relpath}:{ln}: [{rule_id}] {message}")


# ---------------------------------------------------------------------------
# Self-test over the golden fixtures in tools/lint/testdata/
# ---------------------------------------------------------------------------


def selftest():
    here = os.path.dirname(os.path.abspath(__file__))
    testdata = os.path.join(here, "testdata")
    ok = True

    # Pass tree: every fixture must come back clean (including the
    # lint:allow fixtures — the suppression mechanism itself is under
    # test here).
    pass_findings = lint_tree(os.path.join(testdata, "pass"))
    if pass_findings:
        ok = False
        print("selftest: expected zero findings in testdata/pass, got:")
        print_findings(pass_findings)

    # Fail tree: findings must match expected.txt exactly.
    fail_root = os.path.join(testdata, "fail")
    got = sorted(f"{p}:{ln}: {rid}"
                 for p, ln, rid, _ in lint_tree(fail_root))
    with open(os.path.join(fail_root, "expected.txt"), encoding="utf-8") as f:
        expected = sorted(line.strip() for line in f
                          if line.strip() and not line.startswith("#"))
    if got != expected:
        ok = False
        print("selftest: testdata/fail findings mismatch")
        for line in sorted(set(expected) - set(got)):
            print(f"  missing: {line}")
        for line in sorted(set(got) - set(expected)):
            print(f"  extra:   {line}")

    # Every rule must have at least one seeded violation it catches.
    covered = {line.split()[-1] for line in expected}
    for r in RULES:
        if r["id"] not in covered:
            ok = False
            print(f"selftest: rule '{r['id']}' has no failing fixture")

    print("selftest: OK" if ok else "selftest: FAILED")
    return 0 if ok else 1


def main(argv):
    ap = argparse.ArgumentParser(prog="sparkopt-lint",
                                 description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".",
                    help="repo root to scan (default: cwd)")
    ap.add_argument("--selftest", action="store_true",
                    help="run the golden-fixture suite")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for r in RULES:
            print(f"{r['id']}: {r['description']}")
        return 0
    if args.selftest:
        return selftest()

    findings = lint_tree(args.root)
    print_findings(findings)
    n = len(findings)
    print(f"sparkopt-lint: {n} finding(s)")
    return 1 if n else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
