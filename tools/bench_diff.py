#!/usr/bin/env python3
"""Noise-aware comparator between two bench snapshots.

Compares a fresh ``tools/bench_snapshot.sh`` run against a committed
baseline (e.g. ``BENCH_pr6.json``) using the registry in
``tools/bench_schema.json``: each RESULT name declares its key fields
(config axes), its compared metrics with a better-direction and a
relative threshold, and optionally absolute ``min``/``max`` bounds
checked on the current snapshot alone.

A metric regresses when the change exceeds the declared relative
threshold *and* clears a 3-sigma noise band built from both snapshots'
repeat stddevs::

    lower-is-better:  cur > base * (1 + threshold*scale) + 3*sqrt(b_sd^2 + c_sd^2)
    higher-is-better: cur < base * (1 - threshold*scale) - 3*sqrt(b_sd^2 + c_sd^2)

Both snapshot formats are accepted:

* flat (pre-PR7): ``{"name": [record, ...]}`` with scalar metrics;
  duplicate rows for one key tuple are aggregated into mean/stddev,
* aggregated: ``{"meta": {...}, "results": {...}}`` where metric fields
  are ``{"mean": m, "stddev": s, "runs": n}``.

Exit status: 0 when the gated set is clean, 1 on gated regressions or
bound violations, 2 on usage/format errors.

Usage:
    bench_diff.py --baseline BENCH_pr6.json --current BENCH_snapshot.json
                  [--schema tools/bench_schema.json]
                  [--gate all|tier1|none] [--gate-scale X] [--json-out F]
    bench_diff.py --selftest --baseline BENCH_pr6.json
"""

from __future__ import annotations

import argparse
import copy
import json
import math
import os
import sys

DEFAULT_SCHEMA = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                              "bench_schema.json")


class FormatError(Exception):
    pass


def load_json(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise FormatError(f"{path}: {e}") from e


def result_tables(snapshot):
    """Returns the {name: [record, ...]} table of either snapshot format."""
    if not isinstance(snapshot, dict):
        raise FormatError("snapshot root must be a JSON object")
    if "results" in snapshot and isinstance(snapshot["results"], dict):
        return snapshot["results"]
    return {k: v for k, v in snapshot.items() if not k.startswith("_")}


def as_stat(value):
    """Normalises a metric field to (mean, stddev, runs)."""
    if isinstance(value, dict):
        return (float(value.get("mean", 0.0)),
                float(value.get("stddev", 0.0)),
                int(value.get("runs", 1)))
    return (float(value), 0.0, 1)


def pooled(stats):
    """Pools repeat stats: overall mean and combined spread.

    The combined stddev folds within-run stddev and between-run spread
    together (sqrt of pooled second moment about the overall mean) so a
    baseline whose duplicate rows disagree reads as noisy, not precise.
    """
    total_runs = sum(s[2] for s in stats)
    if total_runs == 0:
        return (0.0, 0.0, 0)
    mean = sum(s[0] * s[2] for s in stats) / total_runs
    second = sum((s[1] ** 2 + (s[0] - mean) ** 2) * s[2] for s in stats)
    return (mean, math.sqrt(second / total_runs), total_runs)


def key_of(record, key_fields):
    return tuple((k, record.get(k)) for k in key_fields)


def key_str(name, key):
    parts = ", ".join(f"{k}={v}" for k, v in key)
    return f"{name}[{parts}]"


def aggregate(table, schema):
    """Folds a result table into {name: {key: {metric: (mean, sd, runs)}}}.

    Duplicate records for one key tuple (the pre-PR7 duplicate-row bug,
    or genuine repeats) are pooled. Unregistered names are skipped —
    the lint rule bench-result-schema keeps the registry complete.
    """
    out = {}
    skipped = []
    for name, records in table.items():
        spec = schema["results"].get(name)
        if spec is None:
            skipped.append(name)
            continue
        by_key = out.setdefault(name, {})
        for rec in records:
            if not isinstance(rec, dict):
                raise FormatError(f"{name}: record is not an object")
            key = key_of(rec, spec["keys"])
            slot = by_key.setdefault(key, {})
            for metric in spec["metrics"]:
                if metric in rec:
                    slot.setdefault(metric, []).append(as_stat(rec[metric]))
            for extra in spec.get("info", []):
                if extra in rec and not isinstance(rec[extra], dict):
                    slot.setdefault("_info", {})[extra] = rec[extra]
    for by_key in out.values():
        for slot in by_key.values():
            for metric, stats in list(slot.items()):
                if metric != "_info":
                    slot[metric] = pooled(stats)
    return out, skipped


def diff(base_agg, cur_agg, schema, gate, gate_scale):
    """Returns (findings, gated_failures). Each finding is a dict."""
    findings = []
    failures = 0
    names = sorted(set(base_agg) | set(cur_agg))
    for name in names:
        spec = schema["results"][name]
        gated = gate == "all" or (gate == "tier1" and spec.get("tier1"))
        base_keys = base_agg.get(name, {})
        cur_keys = cur_agg.get(name, {})
        for key in sorted(set(base_keys) | set(cur_keys), key=repr):
            in_base, in_cur = key in base_keys, key in cur_keys
            if not in_cur or not in_base:
                findings.append({
                    "kind": "missing" if not in_cur else "new",
                    "name": name, "key": key_str(name, key),
                })
                continue
            for metric, mspec in spec["metrics"].items():
                cur = cur_keys[key].get(metric)
                base = base_keys[key].get(metric)
                if cur is None:
                    continue
                cmean, csd, _ = cur
                # Absolute bounds hold with no baseline at all.
                for bound, op in (("max", lambda c, b: c > b),
                                  ("min", lambda c, b: c < b)):
                    if bound in mspec and op(cmean, mspec[bound]):
                        findings.append({
                            "kind": "bound", "name": name,
                            "key": key_str(name, key), "metric": metric,
                            "bound": bound, "limit": mspec[bound],
                            "cur": cmean, "gated": gated,
                        })
                        failures += gated
                if base is None:
                    continue
                bmean, bsd, _ = base
                noise = 3.0 * math.sqrt(bsd * bsd + csd * csd)
                thr = mspec["threshold"] * gate_scale
                lower_better = mspec["direction"] == "lower"
                if lower_better:
                    regressed = cmean > bmean * (1.0 + thr) + noise
                    improved = cmean < bmean * (1.0 - thr) - noise
                else:
                    regressed = cmean < bmean * (1.0 - thr) - noise
                    improved = cmean > bmean * (1.0 + thr) + noise
                if not (regressed or improved):
                    continue
                rel = (cmean - bmean) / bmean if bmean else math.inf
                findings.append({
                    "kind": "regression" if regressed else "improvement",
                    "name": name, "key": key_str(name, key),
                    "metric": metric, "base": bmean, "cur": cmean,
                    "rel": rel, "noise": noise, "gated": gated,
                })
                failures += regressed and gated
    return findings, failures


def render(findings, failures, gate, gate_scale):
    order = {"bound": 0, "regression": 1, "improvement": 2,
             "missing": 3, "new": 4}
    lines = []
    for f in sorted(findings, key=lambda f: (order[f["kind"]], f["key"])):
        kind = f["kind"]
        gated_tag = " [gated]" if f.get("gated") else ""
        if kind == "bound":
            lines.append(
                f"BOUND{gated_tag} {f['key']} {f['metric']} = {f['cur']:.6g} "
                f"violates {f['bound']} {f['limit']:.6g}")
        elif kind in ("regression", "improvement"):
            arrow = "WORSE" if kind == "regression" else "better"
            lines.append(
                f"{kind.upper()}{gated_tag} {f['key']} {f['metric']}: "
                f"{f['base']:.6g} -> {f['cur']:.6g} "
                f"({f['rel']:+.1%}, {arrow}; 3-sigma noise {f['noise']:.3g})")
        elif kind == "missing":
            lines.append(f"MISSING from current: {f['key']}")
        else:
            lines.append(f"NEW in current: {f['key']}")
    if not lines:
        lines.append("no differences beyond noise thresholds")
    lines.append(
        f"bench_diff: {failures} gated failure(s) "
        f"(gate={gate}, scale={gate_scale:g})")
    return "\n".join(lines)


def run_diff(baseline_path, current_path, schema, gate, gate_scale,
             json_out=None):
    base_tbl = result_tables(load_json(baseline_path))
    cur_tbl = result_tables(load_json(current_path))
    base_agg, base_skip = aggregate(base_tbl, schema)
    cur_agg, cur_skip = aggregate(cur_tbl, schema)
    for name in sorted(set(base_skip) | set(cur_skip)):
        print(f"bench_diff: warning: unregistered result name {name!r} "
              f"skipped (add it to tools/bench_schema.json)", file=sys.stderr)
    findings, failures = diff(base_agg, cur_agg, schema, gate, gate_scale)
    print(render(findings, failures, gate, gate_scale))
    if json_out:
        payload = {"gate": gate, "gate_scale": gate_scale,
                   "gated_failures": failures, "findings": findings}
        with open(json_out, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=1)
            f.write("\n")
    return 1 if failures else 0


def selftest(baseline_path, schema):
    """Proves the comparator's three contractual behaviours:

    1. a snapshot diffed against itself is clean (no false positives),
    2. with the noise band removed, a 10% slowdown injected into every
       hmooc_solve solve_ms row is detected as a gated tier-1 regression
       (the threshold math works),
    3. the same 10% slowdown under a synthetic 10% stddev is NOT flagged
       (the noise band works).

    Contracts 2/3 run on stddev-overridden copies on purpose: they test
    the comparator's math, not the capture machine. A snapshot taken on
    a loud box records honest stddevs large enough to (correctly) mask a
    10% change — that must not fail the selftest.
    """
    base = result_tables(load_json(baseline_path))
    base_agg, _ = aggregate(base, schema)

    _, clean_failures = diff(base_agg, copy.deepcopy(base_agg), schema,
                             gate="tier1", gate_scale=1.0)
    if clean_failures:
        print(f"selftest FAIL: identical snapshots produced "
              f"{clean_failures} gated failure(s)")
        return 1

    def with_solve_ms(agg, scale, sd_frac):
        out = copy.deepcopy(agg)
        rows = out.get("hmooc_solve", {})
        for slot in rows.values():
            if "solve_ms" in slot:
                mean, _sd, runs = slot["solve_ms"]
                slot["solve_ms"] = (mean * scale, mean * sd_frac, runs)
        return out

    if not base_agg.get("hmooc_solve"):
        print("selftest FAIL: baseline has no hmooc_solve rows to inflate")
        return 1

    quiet_base = with_solve_ms(base_agg, 1.0, 0.0)
    quiet_slowed = with_solve_ms(base_agg, 1.10, 0.0)
    findings, slow_failures = diff(quiet_base, quiet_slowed, schema,
                                   gate="tier1", gate_scale=1.0)
    detected = [f for f in findings if f["kind"] == "regression"
                and f["name"] == "hmooc_solve" and f["metric"] == "solve_ms"]
    if not detected or not slow_failures:
        print("selftest FAIL: 10% hmooc_solve slowdown was not detected")
        return 1

    noisy_base = with_solve_ms(base_agg, 1.0, 0.10)
    noisy_slowed = with_solve_ms(base_agg, 1.10, 0.10)
    findings, noisy_failures = diff(noisy_base, noisy_slowed, schema,
                                    gate="tier1", gate_scale=1.0)
    in_band = [f for f in findings if f["kind"] == "regression"
               and f["name"] == "hmooc_solve" and f["metric"] == "solve_ms"]
    if in_band or noisy_failures:
        print("selftest FAIL: 10% slowdown inside a 10%-stddev noise band "
              "was flagged as a regression")
        return 1

    print(f"selftest PASS: clean on identical snapshots; 10% hmooc_solve "
          f"slowdown detected on {len(detected)} row(s); same slowdown "
          f"correctly masked by a 10% noise band")
    return 0


def main(argv=None):
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--baseline", required=True,
                   help="committed snapshot (e.g. BENCH_pr6.json)")
    p.add_argument("--current", help="fresh snapshot to compare")
    p.add_argument("--schema", default=DEFAULT_SCHEMA)
    p.add_argument("--gate", choices=["all", "tier1", "none"], default="all",
                   help="which regressions fail the run (default: all)")
    p.add_argument("--gate-scale", type=float, default=1.0,
                   help="threshold multiplier for noisy cross-machine CI")
    p.add_argument("--json-out", help="write findings as JSON here")
    p.add_argument("--selftest", action="store_true",
                   help="verify clean-on-identical and detect-on-10%%-slower")
    args = p.parse_args(argv)

    try:
        schema = load_json(args.schema)
        if "results" not in schema:
            raise FormatError(f"{args.schema}: missing 'results'")
        if args.selftest:
            return selftest(args.baseline, schema)
        if not args.current:
            p.error("--current is required unless --selftest")
        return run_diff(args.baseline, args.current, schema, args.gate,
                        args.gate_scale, args.json_out)
    except FormatError as e:
        print(f"bench_diff: {e}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
