file(REMOVE_RECURSE
  "CMakeFiles/bench_pareto_coverage.dir/bench_pareto_coverage.cc.o"
  "CMakeFiles/bench_pareto_coverage.dir/bench_pareto_coverage.cc.o.d"
  "bench_pareto_coverage"
  "bench_pareto_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pareto_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
