# Empty dependencies file for bench_pareto_coverage.
# This may be replaced when dependencies are built.
