# Empty compiler generated dependencies file for bench_analytical_latency.
# This may be replaced when dependencies are built.
