file(REMOVE_RECURSE
  "CMakeFiles/bench_analytical_latency.dir/bench_analytical_latency.cc.o"
  "CMakeFiles/bench_analytical_latency.dir/bench_analytical_latency.cc.o.d"
  "bench_analytical_latency"
  "bench_analytical_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_analytical_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
