# Empty compiler generated dependencies file for bench_model_inference.
# This may be replaced when dependencies are built.
