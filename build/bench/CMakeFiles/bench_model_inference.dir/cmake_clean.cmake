file(REMOVE_RECURSE
  "CMakeFiles/bench_model_inference.dir/bench_model_inference.cc.o"
  "CMakeFiles/bench_model_inference.dir/bench_model_inference.cc.o.d"
  "bench_model_inference"
  "bench_model_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
