file(REMOVE_RECURSE
  "CMakeFiles/bench_moo_comparison.dir/bench_moo_comparison.cc.o"
  "CMakeFiles/bench_moo_comparison.dir/bench_moo_comparison.cc.o.d"
  "bench_moo_comparison"
  "bench_moo_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_moo_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
