# Empty dependencies file for bench_moo_comparison.
# This may be replaced when dependencies are built.
