file(REMOVE_RECURSE
  "CMakeFiles/bench_e2e_preferences.dir/bench_e2e_preferences.cc.o"
  "CMakeFiles/bench_e2e_preferences.dir/bench_e2e_preferences.cc.o.d"
  "bench_e2e_preferences"
  "bench_e2e_preferences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2e_preferences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
