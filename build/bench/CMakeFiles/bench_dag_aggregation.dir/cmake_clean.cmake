file(REMOVE_RECURSE
  "CMakeFiles/bench_dag_aggregation.dir/bench_dag_aggregation.cc.o"
  "CMakeFiles/bench_dag_aggregation.dir/bench_dag_aggregation.cc.o.d"
  "bench_dag_aggregation"
  "bench_dag_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dag_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
