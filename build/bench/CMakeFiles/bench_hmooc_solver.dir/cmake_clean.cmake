file(REMOVE_RECURSE
  "CMakeFiles/bench_hmooc_solver.dir/bench_hmooc_solver.cc.o"
  "CMakeFiles/bench_hmooc_solver.dir/bench_hmooc_solver.cc.o.d"
  "bench_hmooc_solver"
  "bench_hmooc_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hmooc_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
