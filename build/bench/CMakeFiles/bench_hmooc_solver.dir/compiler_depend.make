# Empty compiler generated dependencies file for bench_hmooc_solver.
# This may be replaced when dependencies are built.
