# Empty dependencies file for bench_control_granularity.
# This may be replaced when dependencies are built.
