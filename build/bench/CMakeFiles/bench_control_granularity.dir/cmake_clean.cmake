file(REMOVE_RECURSE
  "CMakeFiles/bench_control_granularity.dir/bench_control_granularity.cc.o"
  "CMakeFiles/bench_control_granularity.dir/bench_control_granularity.cc.o.d"
  "bench_control_granularity"
  "bench_control_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_control_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
