file(REMOVE_RECURSE
  "CMakeFiles/bench_pareto_ops.dir/bench_pareto_ops.cc.o"
  "CMakeFiles/bench_pareto_ops.dir/bench_pareto_ops.cc.o.d"
  "bench_pareto_ops"
  "bench_pareto_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pareto_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
