# Empty compiler generated dependencies file for bench_pareto_ops.
# This may be replaced when dependencies are built.
