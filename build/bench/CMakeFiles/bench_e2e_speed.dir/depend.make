# Empty dependencies file for bench_e2e_speed.
# This may be replaced when dependencies are built.
