file(REMOVE_RECURSE
  "CMakeFiles/bench_e2e_speed.dir/bench_e2e_speed.cc.o"
  "CMakeFiles/bench_e2e_speed.dir/bench_e2e_speed.cc.o.d"
  "bench_e2e_speed"
  "bench_e2e_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2e_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
