# Empty compiler generated dependencies file for sparkopt_model.
# This may be replaced when dependencies are built.
