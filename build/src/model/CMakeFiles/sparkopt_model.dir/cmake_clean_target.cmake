file(REMOVE_RECURSE
  "libsparkopt_model.a"
)
