file(REMOVE_RECURSE
  "CMakeFiles/sparkopt_model.dir/features.cc.o"
  "CMakeFiles/sparkopt_model.dir/features.cc.o.d"
  "CMakeFiles/sparkopt_model.dir/mlp.cc.o"
  "CMakeFiles/sparkopt_model.dir/mlp.cc.o.d"
  "CMakeFiles/sparkopt_model.dir/subq_evaluator.cc.o"
  "CMakeFiles/sparkopt_model.dir/subq_evaluator.cc.o.d"
  "CMakeFiles/sparkopt_model.dir/trainer.cc.o"
  "CMakeFiles/sparkopt_model.dir/trainer.cc.o.d"
  "libsparkopt_model.a"
  "libsparkopt_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparkopt_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
