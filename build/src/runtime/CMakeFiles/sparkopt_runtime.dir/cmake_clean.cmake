file(REMOVE_RECURSE
  "CMakeFiles/sparkopt_runtime.dir/runtime_optimizer.cc.o"
  "CMakeFiles/sparkopt_runtime.dir/runtime_optimizer.cc.o.d"
  "libsparkopt_runtime.a"
  "libsparkopt_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparkopt_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
