# Empty compiler generated dependencies file for sparkopt_runtime.
# This may be replaced when dependencies are built.
