file(REMOVE_RECURSE
  "libsparkopt_runtime.a"
)
