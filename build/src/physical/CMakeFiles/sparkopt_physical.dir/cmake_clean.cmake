file(REMOVE_RECURSE
  "CMakeFiles/sparkopt_physical.dir/physical_plan.cc.o"
  "CMakeFiles/sparkopt_physical.dir/physical_plan.cc.o.d"
  "libsparkopt_physical.a"
  "libsparkopt_physical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparkopt_physical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
