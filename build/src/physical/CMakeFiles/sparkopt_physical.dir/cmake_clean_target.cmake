file(REMOVE_RECURSE
  "libsparkopt_physical.a"
)
