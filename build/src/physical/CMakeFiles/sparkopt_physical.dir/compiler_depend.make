# Empty compiler generated dependencies file for sparkopt_physical.
# This may be replaced when dependencies are built.
