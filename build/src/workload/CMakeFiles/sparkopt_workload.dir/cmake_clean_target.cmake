file(REMOVE_RECURSE
  "libsparkopt_workload.a"
)
