# Empty compiler generated dependencies file for sparkopt_workload.
# This may be replaced when dependencies are built.
