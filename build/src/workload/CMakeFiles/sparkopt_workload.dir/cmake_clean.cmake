file(REMOVE_RECURSE
  "CMakeFiles/sparkopt_workload.dir/builder.cc.o"
  "CMakeFiles/sparkopt_workload.dir/builder.cc.o.d"
  "CMakeFiles/sparkopt_workload.dir/tpcds.cc.o"
  "CMakeFiles/sparkopt_workload.dir/tpcds.cc.o.d"
  "CMakeFiles/sparkopt_workload.dir/tpch.cc.o"
  "CMakeFiles/sparkopt_workload.dir/tpch.cc.o.d"
  "libsparkopt_workload.a"
  "libsparkopt_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparkopt_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
