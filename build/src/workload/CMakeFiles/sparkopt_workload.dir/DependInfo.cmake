
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/builder.cc" "src/workload/CMakeFiles/sparkopt_workload.dir/builder.cc.o" "gcc" "src/workload/CMakeFiles/sparkopt_workload.dir/builder.cc.o.d"
  "/root/repo/src/workload/tpcds.cc" "src/workload/CMakeFiles/sparkopt_workload.dir/tpcds.cc.o" "gcc" "src/workload/CMakeFiles/sparkopt_workload.dir/tpcds.cc.o.d"
  "/root/repo/src/workload/tpch.cc" "src/workload/CMakeFiles/sparkopt_workload.dir/tpch.cc.o" "gcc" "src/workload/CMakeFiles/sparkopt_workload.dir/tpch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/plan/CMakeFiles/sparkopt_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sparkopt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
