file(REMOVE_RECURSE
  "CMakeFiles/sparkopt_tuner.dir/tuner.cc.o"
  "CMakeFiles/sparkopt_tuner.dir/tuner.cc.o.d"
  "libsparkopt_tuner.a"
  "libsparkopt_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparkopt_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
