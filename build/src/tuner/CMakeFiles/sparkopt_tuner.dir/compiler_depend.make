# Empty compiler generated dependencies file for sparkopt_tuner.
# This may be replaced when dependencies are built.
