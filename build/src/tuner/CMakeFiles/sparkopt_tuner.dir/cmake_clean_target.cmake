file(REMOVE_RECURSE
  "libsparkopt_tuner.a"
)
