file(REMOVE_RECURSE
  "CMakeFiles/sparkopt_plan.dir/cardinality.cc.o"
  "CMakeFiles/sparkopt_plan.dir/cardinality.cc.o.d"
  "CMakeFiles/sparkopt_plan.dir/logical_plan.cc.o"
  "CMakeFiles/sparkopt_plan.dir/logical_plan.cc.o.d"
  "libsparkopt_plan.a"
  "libsparkopt_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparkopt_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
