# Empty dependencies file for sparkopt_plan.
# This may be replaced when dependencies are built.
