file(REMOVE_RECURSE
  "libsparkopt_plan.a"
)
