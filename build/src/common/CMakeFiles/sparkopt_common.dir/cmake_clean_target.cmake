file(REMOVE_RECURSE
  "libsparkopt_common.a"
)
