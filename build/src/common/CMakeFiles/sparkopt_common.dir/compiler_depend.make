# Empty compiler generated dependencies file for sparkopt_common.
# This may be replaced when dependencies are built.
