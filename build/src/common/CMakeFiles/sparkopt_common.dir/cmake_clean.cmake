file(REMOVE_RECURSE
  "CMakeFiles/sparkopt_common.dir/logging.cc.o"
  "CMakeFiles/sparkopt_common.dir/logging.cc.o.d"
  "CMakeFiles/sparkopt_common.dir/pareto.cc.o"
  "CMakeFiles/sparkopt_common.dir/pareto.cc.o.d"
  "CMakeFiles/sparkopt_common.dir/stats.cc.o"
  "CMakeFiles/sparkopt_common.dir/stats.cc.o.d"
  "libsparkopt_common.a"
  "libsparkopt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparkopt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
