
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/params/param_space.cc" "src/params/CMakeFiles/sparkopt_params.dir/param_space.cc.o" "gcc" "src/params/CMakeFiles/sparkopt_params.dir/param_space.cc.o.d"
  "/root/repo/src/params/sampler.cc" "src/params/CMakeFiles/sparkopt_params.dir/sampler.cc.o" "gcc" "src/params/CMakeFiles/sparkopt_params.dir/sampler.cc.o.d"
  "/root/repo/src/params/spark_params.cc" "src/params/CMakeFiles/sparkopt_params.dir/spark_params.cc.o" "gcc" "src/params/CMakeFiles/sparkopt_params.dir/spark_params.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sparkopt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
