file(REMOVE_RECURSE
  "CMakeFiles/sparkopt_params.dir/param_space.cc.o"
  "CMakeFiles/sparkopt_params.dir/param_space.cc.o.d"
  "CMakeFiles/sparkopt_params.dir/sampler.cc.o"
  "CMakeFiles/sparkopt_params.dir/sampler.cc.o.d"
  "CMakeFiles/sparkopt_params.dir/spark_params.cc.o"
  "CMakeFiles/sparkopt_params.dir/spark_params.cc.o.d"
  "libsparkopt_params.a"
  "libsparkopt_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparkopt_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
