file(REMOVE_RECURSE
  "libsparkopt_params.a"
)
