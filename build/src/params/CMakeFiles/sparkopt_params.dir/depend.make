# Empty dependencies file for sparkopt_params.
# This may be replaced when dependencies are built.
