# Empty dependencies file for sparkopt_moo.
# This may be replaced when dependencies are built.
