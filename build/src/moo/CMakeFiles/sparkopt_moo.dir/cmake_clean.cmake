file(REMOVE_RECURSE
  "CMakeFiles/sparkopt_moo.dir/baselines.cc.o"
  "CMakeFiles/sparkopt_moo.dir/baselines.cc.o.d"
  "CMakeFiles/sparkopt_moo.dir/hmooc.cc.o"
  "CMakeFiles/sparkopt_moo.dir/hmooc.cc.o.d"
  "CMakeFiles/sparkopt_moo.dir/kmeans.cc.o"
  "CMakeFiles/sparkopt_moo.dir/kmeans.cc.o.d"
  "CMakeFiles/sparkopt_moo.dir/objective_models.cc.o"
  "CMakeFiles/sparkopt_moo.dir/objective_models.cc.o.d"
  "CMakeFiles/sparkopt_moo.dir/problem.cc.o"
  "CMakeFiles/sparkopt_moo.dir/problem.cc.o.d"
  "libsparkopt_moo.a"
  "libsparkopt_moo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparkopt_moo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
