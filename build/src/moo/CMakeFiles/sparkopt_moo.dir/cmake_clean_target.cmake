file(REMOVE_RECURSE
  "libsparkopt_moo.a"
)
