file(REMOVE_RECURSE
  "CMakeFiles/sparkopt_exec.dir/aqe.cc.o"
  "CMakeFiles/sparkopt_exec.dir/aqe.cc.o.d"
  "CMakeFiles/sparkopt_exec.dir/cost_model.cc.o"
  "CMakeFiles/sparkopt_exec.dir/cost_model.cc.o.d"
  "CMakeFiles/sparkopt_exec.dir/simulator.cc.o"
  "CMakeFiles/sparkopt_exec.dir/simulator.cc.o.d"
  "libsparkopt_exec.a"
  "libsparkopt_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparkopt_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
