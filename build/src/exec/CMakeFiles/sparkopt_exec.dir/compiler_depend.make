# Empty compiler generated dependencies file for sparkopt_exec.
# This may be replaced when dependencies are built.
