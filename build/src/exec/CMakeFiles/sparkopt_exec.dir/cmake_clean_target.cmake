file(REMOVE_RECURSE
  "libsparkopt_exec.a"
)
