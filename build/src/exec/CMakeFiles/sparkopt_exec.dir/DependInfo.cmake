
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/aqe.cc" "src/exec/CMakeFiles/sparkopt_exec.dir/aqe.cc.o" "gcc" "src/exec/CMakeFiles/sparkopt_exec.dir/aqe.cc.o.d"
  "/root/repo/src/exec/cost_model.cc" "src/exec/CMakeFiles/sparkopt_exec.dir/cost_model.cc.o" "gcc" "src/exec/CMakeFiles/sparkopt_exec.dir/cost_model.cc.o.d"
  "/root/repo/src/exec/simulator.cc" "src/exec/CMakeFiles/sparkopt_exec.dir/simulator.cc.o" "gcc" "src/exec/CMakeFiles/sparkopt_exec.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/physical/CMakeFiles/sparkopt_physical.dir/DependInfo.cmake"
  "/root/repo/build/src/params/CMakeFiles/sparkopt_params.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/sparkopt_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sparkopt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
