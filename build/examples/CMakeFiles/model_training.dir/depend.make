# Empty dependencies file for model_training.
# This may be replaced when dependencies are built.
