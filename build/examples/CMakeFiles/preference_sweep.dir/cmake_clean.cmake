file(REMOVE_RECURSE
  "CMakeFiles/preference_sweep.dir/preference_sweep.cpp.o"
  "CMakeFiles/preference_sweep.dir/preference_sweep.cpp.o.d"
  "preference_sweep"
  "preference_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preference_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
