# Empty compiler generated dependencies file for preference_sweep.
# This may be replaced when dependencies are built.
