# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/params_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/physical_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/moo_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/tuner_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
