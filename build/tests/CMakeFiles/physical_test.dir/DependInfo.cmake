
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/physical/partitioning_property_test.cc" "tests/CMakeFiles/physical_test.dir/physical/partitioning_property_test.cc.o" "gcc" "tests/CMakeFiles/physical_test.dir/physical/partitioning_property_test.cc.o.d"
  "/root/repo/tests/physical/planner_test.cc" "tests/CMakeFiles/physical_test.dir/physical/planner_test.cc.o" "gcc" "tests/CMakeFiles/physical_test.dir/physical/planner_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tuner/CMakeFiles/sparkopt_tuner.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/sparkopt_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/moo/CMakeFiles/sparkopt_moo.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/sparkopt_model.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sparkopt_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/sparkopt_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/physical/CMakeFiles/sparkopt_physical.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/sparkopt_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/params/CMakeFiles/sparkopt_params.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sparkopt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
