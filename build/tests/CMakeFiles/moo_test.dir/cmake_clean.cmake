file(REMOVE_RECURSE
  "CMakeFiles/moo_test.dir/moo/baselines_test.cc.o"
  "CMakeFiles/moo_test.dir/moo/baselines_test.cc.o.d"
  "CMakeFiles/moo_test.dir/moo/hmooc_test.cc.o"
  "CMakeFiles/moo_test.dir/moo/hmooc_test.cc.o.d"
  "CMakeFiles/moo_test.dir/moo/kmeans_test.cc.o"
  "CMakeFiles/moo_test.dir/moo/kmeans_test.cc.o.d"
  "CMakeFiles/moo_test.dir/moo/moo_property_test.cc.o"
  "CMakeFiles/moo_test.dir/moo/moo_property_test.cc.o.d"
  "CMakeFiles/moo_test.dir/moo/objective_models_test.cc.o"
  "CMakeFiles/moo_test.dir/moo/objective_models_test.cc.o.d"
  "moo_test"
  "moo_test.pdb"
  "moo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
