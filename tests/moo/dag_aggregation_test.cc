#include "moo/dag_aggregation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/pareto.h"
#include "common/rng.h"

namespace sparkopt {
namespace {

// Random per-subQ effective sets with small-integer objective values so
// exact ties occur; every entry carries a distinct pool index.
std::vector<std::vector<SubQEntry>> RandomSets(int m, int per_set, int k,
                                               uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<SubQEntry>> sets(m);
  int pool = 0;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < per_set; ++j) {
      SubQEntry e;
      e.pool_idx = pool++;
      for (int d = 0; d < k; ++d) {
        e.f[d] = std::floor(rng.Uniform() * 9.0);
      }
      sets[i].push_back(e);
    }
  }
  return sets;
}

// Brute-force reference: materialize every cross-combination's summed
// objective vector and Pareto-filter it.
std::vector<ObjectiveVector> BruteForceFront(
    const std::vector<std::vector<SubQEntry>>& sets, int k) {
  std::vector<ObjectiveVector> sums;
  sums.push_back(ObjectiveVector(k, 0.0));
  for (const auto& s : sets) {
    std::vector<ObjectiveVector> next;
    for (const auto& acc : sums) {
      for (const auto& e : s) {
        ObjectiveVector v = acc;
        for (int d = 0; d < k; ++d) v[d] += e.f[d];
        next.push_back(std::move(v));
      }
    }
    sums = std::move(next);
  }
  std::vector<ObjectiveVector> front;
  for (size_t i : ParetoIndices(sums)) front.push_back(sums[i]);
  std::sort(front.begin(), front.end());
  return front;
}

ObjectiveVector PointOf(const AggregatedBatch& b, size_t p) {
  return ObjectiveVector(b.obj.begin() + p * b.k,
                         b.obj.begin() + (p + 1) * b.k);
}

class DagAggregationTest : public ::testing::TestWithParam<int> {};

TEST_P(DagAggregationTest, DcMatchesBruteForceWithoutThinning) {
  const int k = GetParam();
  for (uint64_t seed : {11u, 23u, 59u}) {
    const auto sets = RandomSets(/*m=*/4, /*per_set=*/5, k, seed);
    DagAggregator aggregator;
    AggregatedBatch batch;
    // cap larger than any possible front and eps = 0: the D&C result is
    // the exact query-level front.
    aggregator.AggregateDc(sets, k, /*cap=*/100000, /*eps=*/0.0, &batch);
    std::vector<ObjectiveVector> got;
    for (size_t p = 0; p < batch.size(); ++p) got.push_back(PointOf(batch, p));
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, BruteForceFront(sets, k)) << "seed " << seed;
  }
}

TEST_P(DagAggregationTest, ChoiceRowsReproduceTheObjectives) {
  const int k = GetParam();
  const auto sets = RandomSets(/*m=*/5, /*per_set=*/4, k, 77);
  // Pool lookup: pool_idx -> entry.
  std::vector<const SubQEntry*> pool;
  for (const auto& s : sets) {
    for (const auto& e : s) {
      pool.resize(std::max(pool.size(), static_cast<size_t>(e.pool_idx) + 1));
      pool[e.pool_idx] = &e;
    }
  }
  DagAggregator aggregator;
  for (int mode = 0; mode < 3; ++mode) {
    AggregatedBatch batch;
    if (mode == 0) {
      aggregator.AggregateDc(sets, k, /*cap=*/128, /*eps=*/0.0, &batch);
    } else if (mode == 1) {
      aggregator.AggregateWeightedSum(sets, k, /*ws_pairs=*/11,
                                      /*normalize=*/true, &batch);
    } else {
      aggregator.AggregateBoundary(sets, k, &batch);
    }
    ASSERT_EQ(batch.k, k);
    ASSERT_EQ(batch.width, static_cast<int>(sets.size()));
    ASSERT_GT(batch.size(), 0u) << "mode " << mode;
    for (size_t p = 0; p < batch.size(); ++p) {
      ObjectiveVector sum(k, 0.0);
      for (int i = 0; i < batch.width; ++i) {
        const int idx = batch.choice[p * batch.width + i];
        ASSERT_GE(idx, 0);
        for (int d = 0; d < k; ++d) sum[d] += pool[idx]->f[d];
      }
      EXPECT_EQ(sum, PointOf(batch, p)) << "mode " << mode << " point " << p;
    }
  }
}

TEST_P(DagAggregationTest, DcThinningCapsTheFrontWithValidPoints) {
  const int k = GetParam();
  const auto sets = RandomSets(/*m=*/4, /*per_set=*/6, k, 31);
  DagAggregator aggregator;
  AggregatedBatch full, thin;
  aggregator.AggregateDc(sets, k, /*cap=*/100000, /*eps=*/0.0, &full);
  aggregator.AggregateDc(sets, k, /*cap=*/8, /*eps=*/0.0, &thin);
  EXPECT_LE(thin.size(), 8u);
  EXPECT_GT(thin.size(), 0u);
  // Thinning drops combinations, it never invents points: every thinned
  // point is a real combination, so it is weakly dominated by (or on)
  // the exact query-level front.
  std::vector<ObjectiveVector> exact;
  for (size_t p = 0; p < full.size(); ++p) exact.push_back(PointOf(full, p));
  for (size_t p = 0; p < thin.size(); ++p) {
    const ObjectiveVector v = PointOf(thin, p);
    bool covered = false;
    for (const auto& e : exact) {
      bool weak = true;
      for (int d = 0; d < k; ++d) weak = weak && e[d] <= v[d];
      if (weak) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "thinned point " << p
                         << " beats the exact front";
  }
}

TEST_P(DagAggregationTest, BoundaryReturnsPerObjectiveMinima) {
  const int k = GetParam();
  const auto sets = RandomSets(/*m=*/3, /*per_set=*/5, k, 101);
  DagAggregator aggregator;
  AggregatedBatch batch;
  aggregator.AggregateBoundary(sets, k, &batch);
  ASSERT_EQ(batch.size(), static_cast<size_t>(k));
  const auto exact = BruteForceFront(sets, k);
  for (int d = 0; d < k; ++d) {
    double best = 1e300;
    for (const auto& v : exact) best = std::min(best, v[d]);
    EXPECT_EQ(PointOf(batch, d)[d], best) << "objective " << d;
  }
}

TEST_P(DagAggregationTest, EmptySubqSetYieldsEmptyBatch) {
  const int k = GetParam();
  auto sets = RandomSets(/*m=*/3, /*per_set=*/4, k, 5);
  sets[1].clear();
  DagAggregator aggregator;
  AggregatedBatch batch;
  aggregator.AggregateDc(sets, k, /*cap=*/64, /*eps=*/0.0, &batch);
  EXPECT_EQ(batch.size(), 0u);
  aggregator.AggregateWeightedSum(sets, k, 11, true, &batch);
  EXPECT_EQ(batch.size(), 0u);
  aggregator.AggregateBoundary(sets, k, &batch);
  EXPECT_EQ(batch.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Objectives, DagAggregationTest,
                         ::testing::Values(2, 3));

}  // namespace
}  // namespace sparkopt
