#include "moo/objective_models.h"

#include <gtest/gtest.h>

#include "model/trainer.h"
#include "workload/tpch.h"

namespace sparkopt {
namespace {

struct Fixture {
  std::vector<TableStats> catalog = TpchCatalog(10);
  ClusterSpec cluster;
  CostModelParams cost;
  Query q = *MakeTpchQuery(5, &catalog);
};

TEST(AnalyticSubQModelTest, MatchesEvaluatorDirectly) {
  Fixture fx;
  AnalyticSubQModel model(&fx.q, fx.cluster, fx.cost);
  SubQEvaluator eval(&fx.q, fx.cluster, fx.cost);
  const auto conf = DefaultSparkConfig();
  for (int i = 0; i < model.num_subqs(); ++i) {
    const auto f = model.Evaluate(i, conf);
    const auto o = eval.Evaluate(i, DecodeContext(conf), DecodePlan(conf),
                                 DecodeStage(conf),
                                 CardinalitySource::kEstimated);
    EXPECT_DOUBLE_EQ(f[0], o.analytical_latency);
    EXPECT_DOUBLE_EQ(f[1], o.cost);
  }
}

TEST(AnalyticSubQModelTest, EvalCounterIncrements) {
  Fixture fx;
  AnalyticSubQModel model(&fx.q, fx.cluster, fx.cost);
  EXPECT_EQ(model.eval_count(), 0u);
  model.Evaluate(0, DefaultSparkConfig());
  model.Evaluate(1, DefaultSparkConfig());
  EXPECT_EQ(model.eval_count(), 2u);
}

TEST(LearnedSubQModelTest, PredictsFiniteObjectives) {
  Fixture fx;
  // Train a tiny model on a handful of traces.
  TraceCollector collector(fx.cluster, fx.cost);
  ModelDataset subq, qs, lqp;
  TraceOptions topts;
  topts.runs = 25;
  topts.seed = 9;
  ASSERT_TRUE(collector
                  .Collect(
                      [&](int qid, uint64_t v) {
                        return MakeTpchQuery(qid, &fx.catalog, v);
                      },
                      22, topts, &subq, &qs, &lqp)
                  .ok());
  ModelSuite suite;
  Mlp::TrainOptions mopts;
  mopts.epochs = 15;
  ASSERT_TRUE(suite.Train(subq, qs, lqp, 4, mopts).ok());

  LearnedSubQModel model(&fx.q, fx.cluster, fx.cost, &suite.subq_model());
  for (int i = 0; i < model.num_subqs(); ++i) {
    const auto f = model.Evaluate(i, DefaultSparkConfig());
    EXPECT_GT(f[0], 0.0);
    EXPECT_GT(f[1], 0.0);
    EXPECT_LT(f[0], 1e7);
    EXPECT_LT(f[1], 1e7);
  }
  EXPECT_GT(model.eval_count(), 0u);
}

TEST(EvaluateQueryTest, SharesThetaCFromFirstArgument) {
  Fixture fx;
  AnalyticSubQModel model(&fx.q, fx.cluster, fx.cost);
  // Per-subQ confs with garbage theta_c: EvaluateQuery must override the
  // theta_c block from its first argument.
  auto theta_c_conf = DefaultSparkConfig();
  theta_c_conf[kExecutorCores] = 8;
  theta_c_conf[kExecutorInstances] = 16;
  std::vector<std::vector<double>> per_subq(
      model.num_subqs(), DefaultSparkConfig());
  for (auto& c : per_subq) c[kExecutorCores] = 1;  // would be slow

  const auto combined = model.EvaluateQuery(theta_c_conf, per_subq);

  // Reference: evaluate with the full big-cluster conf directly.
  double lat = 0;
  auto big = DefaultSparkConfig();
  big[kExecutorCores] = 8;
  big[kExecutorInstances] = 16;
  for (int i = 0; i < model.num_subqs(); ++i) {
    lat += model.Evaluate(i, big)[0];
  }
  EXPECT_NEAR(combined[0], lat, 1e-9);
}

}  // namespace
}  // namespace sparkopt
