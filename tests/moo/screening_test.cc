#include "moo/objective_models.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/pareto.h"
#include "common/rng.h"
#include "moo/hmooc.h"
#include "params/sampler.h"
#include "params/spark_params.h"
#include "workload/tpch.h"

namespace sparkopt {
namespace {

// ---------------------------------------------------------------------------
// SelectSurvivors2 unit tests.
// ---------------------------------------------------------------------------

std::set<size_t> Survivors(const std::vector<ObjectiveVector>& tier0,
                           double margin, int min_promote,
                           double promote_frac, size_t keep_prefix = 0) {
  std::vector<size_t> out;
  SelectSurvivors2(tier0, margin, min_promote, promote_frac, keep_prefix,
                   &out);
  return {out.begin(), out.end()};
}

// Deterministic scattered points, no RNG needed.
std::vector<ObjectiveVector> ScatterPoints(size_t n) {
  std::vector<ObjectiveVector> pts;
  for (size_t i = 0; i < n; ++i) {
    pts.push_back({1.0 + (i * 37 % 101) / 20.0, 1.0 + (i * 61 % 101) / 20.0});
  }
  return pts;
}

TEST(SelectSurvivors2Test, OutputSortedUniqueAndNonEmpty) {
  const auto pts = ScatterPoints(40);
  std::vector<size_t> out;
  SelectSurvivors2(pts, 0.1, 4, 0.1, 0, &out);
  ASSERT_FALSE(out.empty());
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  EXPECT_EQ(std::set<size_t>(out.begin(), out.end()).size(), out.size());
  for (size_t i : out) EXPECT_LT(i, pts.size());
}

TEST(SelectSurvivors2Test, FrontMembersAlwaysSurvive) {
  const auto pts = ScatterPoints(40);
  const auto surv = Survivors(pts, 0.0, 2, 0.0);
  for (size_t i = 0; i < pts.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < pts.size() && !dominated; ++j) {
      dominated = j != i && Dominates(pts[j], pts[i]);
    }
    if (!dominated) {
      EXPECT_TRUE(surv.count(i)) << "tier-0 front point " << i << " pruned";
    }
  }
}

// The documented monotonicity contract: a larger survival margin yields a
// superset of survivors (the band is a prefix of the (ratio, index) sort
// order; floor and extreme guarantee are margin-independent).
TEST(SelectSurvivors2Test, LargerMarginYieldsSupersetOfSurvivors) {
  const auto pts = ScatterPoints(60);
  const double margins[] = {0.0, 0.02, 0.1, 0.3, 1.0};
  std::set<size_t> prev;
  for (double m : margins) {
    const auto cur = Survivors(pts, m, 4, 0.05);
    EXPECT_TRUE(std::includes(cur.begin(), cur.end(), prev.begin(),
                              prev.end()))
        << "margin " << m << " lost a survivor of a tighter margin";
    prev = cur;
  }
  // And the widest margin keeps everyone.
  EXPECT_EQ(Survivors(pts, 1e12, 2, 0.0).size(), pts.size());
}

TEST(SelectSurvivors2Test, FloorPromotesAtLeastKCandidates) {
  // A dominated chain: front is a single point, so a zero margin alone
  // would keep one survivor — the floor must top it up.
  std::vector<ObjectiveVector> pts;
  for (int i = 0; i < 20; ++i) {
    pts.push_back({1.0 + i, 1.0 + i});
  }
  EXPECT_GE(Survivors(pts, 0.0, 8, 0.0).size(), 8u);
  // promote_frac drives the floor too: ceil(0.5 * 20) = 10.
  EXPECT_GE(Survivors(pts, 0.0, 2, 0.5).size(), 10u);
  // Tiny pools are returned whole (floor clamps to n).
  std::vector<ObjectiveVector> two = {{1, 1}, {2, 2}};
  EXPECT_EQ(Survivors(two, 0.0, 8, 0.0).size(), 2u);
}

TEST(SelectSurvivors2Test, KeepPrefixForceIncluded) {
  // Index 0 is the runtime incumbent: terrible at tier 0, must survive.
  std::vector<ObjectiveVector> pts = {{500.0, 500.0}};
  for (int i = 0; i < 19; ++i) pts.push_back({1.0 + i * 0.01, 1.0 + i * 0.01});
  const auto without = Survivors(pts, 0.0, 2, 0.0, /*keep_prefix=*/0);
  EXPECT_FALSE(without.count(0));
  const auto with = Survivors(pts, 0.0, 2, 0.0, /*keep_prefix=*/1);
  EXPECT_TRUE(with.count(0));
}

// The extreme guarantee: a candidate that is near-best on one objective
// but poor on the other scores a bad dominance ratio, yet the boundary
// DAG aggregation consumes per-objective minima — the top
// max(1, min_promote / 2) of each single objective must always escalate.
TEST(SelectSurvivors2Test, PerObjectiveExtremesGuaranteed) {
  std::vector<ObjectiveVector> pts = {{1.0, 1.0}};
  // Index 1: second-best latency, dominated and ratio-wise far from the
  // front (max(1.001/1, 100/1) = 100).
  pts.push_back({1.001, 100.0});
  for (int i = 0; i < 10; ++i) pts.push_back({2.0 + i * 0.1, 2.0 + i * 0.1});
  // min_promote = 4 floors the ratio order at 4 survivors; index 1 has
  // the worst ratio of all 12, so only the guarantee can save it.
  const auto surv = Survivors(pts, 0.0, 4, 0.0);
  EXPECT_TRUE(surv.count(1))
      << "near-extreme candidate starved by the dominance ratio";
}

// ---------------------------------------------------------------------------
// ScreeningSubQModel and solver integration.
// ---------------------------------------------------------------------------

struct Fixture {
  std::vector<TableStats> catalog = TpchCatalog(10);
  ClusterSpec cluster;
  CostModelParams cost;
  Query q;
  AnalyticSubQModel model;

  explicit Fixture(int qid = 3)
      : q(*MakeTpchQuery(qid, &catalog)), model(&q, cluster, cost) {}

  HmoocOptions SmallOpts() {
    HmoocOptions o;
    o.theta_c_samples = 24;
    o.clusters = 6;
    o.theta_p_samples = 32;
    o.enriched_samples = 8;
    o.aggregation = DagAggregation::kBoundary;
    o.seed = 7;
    return o;
  }
};

void ExpectSameFront(const MooRunResult& a, const MooRunResult& b,
                     const char* what) {
  ASSERT_EQ(a.pareto.size(), b.pareto.size()) << what;
  for (size_t i = 0; i < a.pareto.size(); ++i) {
    EXPECT_EQ(a.pareto[i].objectives, b.pareto[i].objectives)
        << what << " point " << i;
    EXPECT_EQ(a.pareto[i].per_subq_conf, b.pareto[i].per_subq_conf)
        << what << " point " << i;
  }
}

// fidelity_mode=off must leave the single-fidelity path bitwise intact.
TEST(ScreeningTest, OffModeBitwiseIdenticalToDefaultOptions) {
  Fixture plain_fx, off_fx;
  const auto plain = HmoocSolver(&plain_fx.model, plain_fx.SmallOpts())
                         .Solve();
  auto opts = off_fx.SmallOpts();
  opts.fidelity.mode = FidelityMode::kOff;
  opts.fidelity.survival_margin = 0.01;  // ignored when off
  const auto off = HmoocSolver(&off_fx.model, opts).Solve();
  ExpectSameFront(plain, off, "off-vs-default");
  EXPECT_EQ(plain.evaluations, off.evaluations);
}

// With an unbounded band everyone survives every batch, so the screened
// solve must reproduce the single-fidelity front bitwise (the screen only
// reorders work it cannot skip).
TEST(ScreeningTest, UnboundedMarginBitwiseIdenticalToOff) {
  Fixture off_fx, scr_fx;
  const auto off = HmoocSolver(&off_fx.model, off_fx.SmallOpts()).Solve();
  auto opts = scr_fx.SmallOpts();
  opts.fidelity.mode = FidelityMode::kAnalytic;
  opts.fidelity.survival_margin = 1e12;
  const auto scr = HmoocSolver(&scr_fx.model, opts).Solve();
  ExpectSameFront(off, scr, "unbounded-margin");
  EXPECT_EQ(off.evaluations, scr.evaluations);
}

// The screened solve keeps the repo's determinism contract: bitwise the
// same front regardless of thread count, at fixed fidelity options.
TEST(ScreeningTest, BitwiseIdenticalAcrossThreadCounts) {
  for (auto mode : {FidelityMode::kAnalytic}) {
    Fixture seq_fx, par_fx;  // separate models: fresh eval-cache state
    auto seq_opts = seq_fx.SmallOpts();
    seq_opts.fidelity.mode = mode;
    seq_opts.fidelity.survival_margin = 0.05;
    seq_opts.num_threads = 1;
    auto par_opts = par_fx.SmallOpts();
    par_opts.fidelity = seq_opts.fidelity;
    par_opts.num_threads = 4;
    const auto a = HmoocSolver(&seq_fx.model, seq_opts).Solve();
    const auto b = HmoocSolver(&par_fx.model, par_opts).Solve();
    ExpectSameFront(a, b, "threads 1 vs 4");
    EXPECT_EQ(a.evaluations, b.evaluations);
  }
}

// Final fronts must be built from tier-1 objectives only: every reported
// point re-evaluates to itself under the full model.
TEST(ScreeningTest, FrontObjectivesMatchTier1ReEvaluation) {
  Fixture fx;
  auto opts = fx.SmallOpts();
  opts.fidelity.mode = FidelityMode::kAnalytic;
  opts.fidelity.survival_margin = 0.02;
  const auto r = HmoocSolver(&fx.model, opts).Solve();
  ASSERT_FALSE(r.pareto.empty());
  for (const auto& sol : r.pareto) {
    double lat = 0, cost = 0;
    for (int i = 0; i < fx.model.num_subqs(); ++i) {
      const auto f = fx.model.Evaluate(i, sol.per_subq_conf[i]);
      lat += f[0];
      cost += f[1];
    }
    EXPECT_NEAR(sol.objectives[0], lat, 1e-6 * std::max(1.0, lat));
    EXPECT_NEAR(sol.objectives[1], cost, 1e-6 * std::max(1.0, cost));
  }
}

// Hypervolume anchored at the origin with a shared 1.1x reference point:
// loss relative to the objective magnitude, not to the (possibly narrow)
// min-max range of the fronts.
double OriginHv(const MooRunResult& r, const ObjectiveVector& ref) {
  std::vector<ObjectiveVector> pts;
  for (const auto& s : r.pareto) pts.push_back(s.objectives);
  return Hypervolume2D(pts, ref);
}

// The quality guard of the tiered pipeline: a tight screen must save
// full-fidelity evaluations while losing at most 1% hypervolume.
TEST(ScreeningTest, ScreenSavesEvaluationsWithBoundedHypervolumeLoss) {
  Fixture off_fx, scr_fx;
  const auto off = HmoocSolver(&off_fx.model, off_fx.SmallOpts()).Solve();
  auto opts = scr_fx.SmallOpts();
  opts.fidelity.mode = FidelityMode::kAnalytic;
  opts.fidelity.survival_margin = 0.02;
  opts.fidelity.promote_frac = 0.05;
  const auto scr = HmoocSolver(&scr_fx.model, opts).Solve();
  EXPECT_LT(scr.evaluations, off.evaluations)
      << "screen escalated every candidate";
  ObjectiveVector ref = {0, 0};
  for (const auto* r : {&off, &scr}) {
    for (const auto& s : r->pareto) {
      ref[0] = std::max(ref[0], s.objectives[0] * 1.1);
      ref[1] = std::max(ref[1], s.objectives[1] * 1.1);
    }
  }
  const double hv_off = OriginHv(off, ref);
  const double hv_scr = OriginHv(scr, ref);
  ASSERT_GT(hv_off, 0.0);
  EXPECT_LE((hv_off - hv_scr) / hv_off, 0.01);
}

// Direct wrapper contract: pruned entries are {+inf, +inf}, survivors are
// bitwise tier-1 values, and the counters account for both tiers.
TEST(ScreeningTest, WrapperPrunesToInfAndCountsTiers) {
  Fixture fx;
  FidelityOptions fo;
  fo.mode = FidelityMode::kAnalytic;
  fo.survival_margin = 0.02;
  fo.promote_frac = 0.05;
  fo.min_promote = 4;
  ScreeningSubQModel screen(&fx.model, fo);
  ASSERT_TRUE(screen.usable());

  Rng rng(11);
  const auto confs = SampleLatinHypercube(SparkParamSpace(), 64, &rng);
  std::vector<ObjectiveVector> out, full;
  screen.EvaluateBatch(0, confs, &out);
  fx.model.EvaluateBatch(0, confs, &full);
  ASSERT_EQ(out.size(), confs.size());
  size_t pruned = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    if (std::isinf(out[i][0])) {
      EXPECT_TRUE(std::isinf(out[i][1]));
      ++pruned;
    } else {
      EXPECT_EQ(out[i], full[i]) << "survivor " << i << " not tier-1 exact";
    }
  }
  EXPECT_EQ(screen.tier0_evals(), confs.size());
  EXPECT_EQ(screen.tier1_evals(), confs.size() - pruned);
  EXPECT_EQ(screen.screened_batches(), 1u);
  EXPECT_GE(confs.size() - pruned, 2u) << "survivor floor violated";
}

// Pools at or below the survivor floor pass through unscreened — the
// screen cannot save anything there.
TEST(ScreeningTest, SmallBatchesPassThroughUnscreened) {
  Fixture fx;
  FidelityOptions fo;
  fo.mode = FidelityMode::kAnalytic;
  ScreeningSubQModel screen(&fx.model, fo);
  Rng rng(11);
  const auto confs = SampleLatinHypercube(SparkParamSpace(), 4, &rng);
  std::vector<ObjectiveVector> out;
  screen.EvaluateBatch(0, confs, &out);
  EXPECT_EQ(screen.tier0_evals(), 0u);
  EXPECT_EQ(screen.screened_batches(), 0u);
}

// kDistilled end-to-end: train per-subQ screens, solve through them, and
// keep the tier-1-only front contract.
TEST(ScreeningTest, DistilledScreensTrainAndSolve) {
  Fixture fx;
  auto screens = TrainDistilledScreens(fx.model, /*samples=*/64, /*seed=*/7);
  ASSERT_TRUE(screens.ok()) << screens.status().message();
  ASSERT_EQ(static_cast<int>(screens->size()), fx.model.num_subqs());
  for (const auto& s : *screens) EXPECT_TRUE(s.trained());

  Fixture solve_fx;
  auto opts = solve_fx.SmallOpts();
  opts.fidelity.mode = FidelityMode::kDistilled;
  opts.fidelity.distilled = &*screens;
  const auto r = HmoocSolver(&solve_fx.model, opts).Solve();
  ASSERT_FALSE(r.pareto.empty());
  for (const auto& sol : r.pareto) {
    double lat = 0, cost = 0;
    for (int i = 0; i < solve_fx.model.num_subqs(); ++i) {
      const auto f = solve_fx.model.Evaluate(i, sol.per_subq_conf[i]);
      lat += f[0];
      cost += f[1];
    }
    EXPECT_NEAR(sol.objectives[0], lat, 1e-6 * std::max(1.0, lat));
    EXPECT_NEAR(sol.objectives[1], cost, 1e-6 * std::max(1.0, cost));
  }
}

// A kDistilled config without trained screens is unusable; the solver
// must silently fall back to the single-fidelity path.
TEST(ScreeningTest, UnusableDistilledConfigFallsBackToOff) {
  Fixture fx;
  FidelityOptions fo;
  fo.mode = FidelityMode::kDistilled;  // distilled == nullptr
  EXPECT_FALSE(ScreeningSubQModel(&fx.model, fo).usable());

  Fixture off_fx, bad_fx;
  const auto off = HmoocSolver(&off_fx.model, off_fx.SmallOpts()).Solve();
  auto opts = bad_fx.SmallOpts();
  opts.fidelity = fo;
  const auto bad = HmoocSolver(&bad_fx.model, opts).Solve();
  ExpectSameFront(off, bad, "unusable-fallback");
}

}  // namespace
}  // namespace sparkopt
