#include "moo/baselines.h"

#include <gtest/gtest.h>

#include <cmath>

#include "params/spark_params.h"

namespace sparkopt {
namespace {

// Toy separable model with a known convex tradeoff: latency decreases and
// cost increases with the (normalized) executor-core count. The true
// Pareto front is the whole diagonal.
class ToyModel : public SubQObjectiveModel {
 public:
  explicit ToyModel(int subqs) : m_(subqs) {}
  int num_subqs() const override { return m_; }
  ObjectiveVector Evaluate(int subq,
                           const std::vector<double>& conf) const override {
    ++evals_;
    const auto unit = SparkParamSpace().Normalize(conf);
    // Resource knob: cores+instances; per-subQ plan knob adds curvature.
    const double r = 0.5 * (unit[kExecutorCores] + unit[kExecutorInstances]);
    const double p = unit[kShufflePartitions];
    const double lat =
        (1.5 - r) * (1.0 + 0.5 * (p - 0.5) * (p - 0.5)) + 0.1 * subq;
    const double cost = 0.2 + r + 0.05 * subq;
    return {lat, cost};
  }
  size_t eval_count() const override { return evals_; }

 private:
  int m_;
  mutable size_t evals_ = 0;
};

TEST(FlatProblemTest, DimsByGranularity) {
  ToyModel model(4);
  FlatProblem query_level(&model, false);
  FlatProblem fine(&model, true);
  EXPECT_EQ(query_level.dims(), 8u + 11u);
  EXPECT_EQ(fine.dims(), 8u + 4u * 11u);
}

TEST(FlatProblemTest, DecodeSharesThetaC) {
  ToyModel model(3);
  FlatProblem fine(&model, true);
  std::vector<double> x(fine.dims(), 0.25);
  auto sol = fine.Decode(x);
  ASSERT_EQ(sol.per_subq_conf.size(), 3u);
  for (const auto& c : sol.per_subq_conf) {
    for (int j = 0; j < 8; ++j) {
      EXPECT_DOUBLE_EQ(c[j], sol.per_subq_conf[0][j]) << "theta_c differs";
    }
  }
}

TEST(FlatProblemTest, EvalSumsSubqueries) {
  ToyModel model(2);
  FlatProblem flat(&model, false);
  std::vector<double> x(flat.dims(), 0.5);
  auto f = flat.Eval(x);
  auto sol = flat.Decode(x);
  auto f0 = model.Evaluate(0, sol.conf);
  auto f1 = model.Evaluate(1, sol.conf);
  EXPECT_NEAR(f[0], f0[0] + f1[0], 1e-12);
  EXPECT_NEAR(f[1], f0[1] + f1[1], 1e-12);
}

TEST(WeightedSumTest, ReturnsNonDominatedSet) {
  ToyModel model(2);
  FlatProblem flat(&model, false);
  WsOptions opts;
  opts.samples = 2000;
  auto r = SolveWeightedSum(flat, flat, opts);
  EXPECT_FALSE(r.pareto.empty());
  EXPECT_LE(r.pareto.size(), 11u);
  EXPECT_EQ(r.evaluations, 2000u);
  for (size_t i = 0; i < r.pareto.size(); ++i) {
    for (size_t j = 0; j < r.pareto.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(
          Dominates(r.pareto[j].objectives, r.pareto[i].objectives));
    }
  }
}

TEST(WeightedSumTest, Deterministic) {
  ToyModel model(2);
  FlatProblem flat(&model, false);
  WsOptions opts;
  opts.samples = 500;
  opts.seed = 4;
  auto a = SolveWeightedSum(flat, flat, opts);
  auto b = SolveWeightedSum(flat, flat, opts);
  ASSERT_EQ(a.pareto.size(), b.pareto.size());
  for (size_t i = 0; i < a.pareto.size(); ++i) {
    EXPECT_EQ(a.pareto[i].objectives, b.pareto[i].objectives);
  }
}

TEST(SoFixedWeightsTest, SingleSolutionTracksPreference) {
  ToyModel model(2);
  FlatProblem flat(&model, false);
  auto fast = SolveSoFixedWeights(flat, flat, {1.0, 0.0}, 2000, 1);
  auto cheap = SolveSoFixedWeights(flat, flat, {0.0, 1.0}, 2000, 1);
  ASSERT_EQ(fast.pareto.size(), 1u);
  ASSERT_EQ(cheap.pareto.size(), 1u);
  EXPECT_LT(fast.pareto[0].objectives[0], cheap.pareto[0].objectives[0]);
  EXPECT_GT(fast.pareto[0].objectives[1], cheap.pareto[0].objectives[1]);
}

TEST(EvoTest, RespectsEvaluationBudget) {
  ToyModel model(2);
  FlatProblem flat(&model, false);
  EvoOptions opts;
  opts.population = 20;
  opts.max_evaluations = 100;
  auto r = SolveEvo(flat, flat, opts);
  EXPECT_LE(r.evaluations, 100u);
  EXPECT_FALSE(r.pareto.empty());
}

TEST(EvoTest, FrontIsNonDominated) {
  ToyModel model(3);
  FlatProblem flat(&model, true);
  EvoOptions opts;
  auto r = SolveEvo(flat, flat, opts);
  for (size_t i = 0; i < r.pareto.size(); ++i) {
    for (size_t j = 0; j < r.pareto.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(
            Dominates(r.pareto[j].objectives, r.pareto[i].objectives));
      }
    }
  }
}

TEST(EvoTest, MoreEvaluationsImproveHypervolume) {
  ToyModel model(3);
  FlatProblem flat(&model, true);
  EvoOptions small;
  small.max_evaluations = 150;
  EvoOptions big;
  big.max_evaluations = 1500;
  auto rs = SolveEvo(flat, flat, small);
  auto rb = SolveEvo(flat, flat, big);
  ObjectiveVector ref = {10, 10};
  std::vector<ObjectiveVector> fs_s, fs_b;
  for (auto& s : rs.pareto) fs_s.push_back(s.objectives);
  for (auto& s : rb.pareto) fs_b.push_back(s.objectives);
  EXPECT_GE(Hypervolume2D(fs_b, ref), Hypervolume2D(fs_s, ref) - 1e-6);
}

TEST(PfTest, FindsExtremesAndMidpoints) {
  ToyModel model(2);
  FlatProblem flat(&model, false);
  PfOptions opts;
  opts.max_points = 8;
  auto r = SolveProgressiveFrontier(flat, flat, opts);
  EXPECT_GE(r.pareto.size(), 2u);
  // The front spans a real latency range (both extremes present).
  double lat_min = 1e300, lat_max = -1e300;
  for (const auto& s : r.pareto) {
    lat_min = std::min(lat_min, s.objectives[0]);
    lat_max = std::max(lat_max, s.objectives[0]);
  }
  EXPECT_GT(lat_max - lat_min, 0.1);
}

TEST(PfTest, FrontIsNonDominated) {
  ToyModel model(2);
  FlatProblem flat(&model, false);
  PfOptions opts;
  auto r = SolveProgressiveFrontier(flat, flat, opts);
  for (size_t i = 0; i < r.pareto.size(); ++i) {
    for (size_t j = 0; j < r.pareto.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(
            Dominates(r.pareto[j].objectives, r.pareto[i].objectives));
      }
    }
  }
}

TEST(RecommendTest, WunIndexWithinRange) {
  ToyModel model(2);
  FlatProblem flat(&model, false);
  WsOptions opts;
  opts.samples = 1000;
  auto r = SolveWeightedSum(flat, flat, opts);
  const size_t pick_fast = r.Recommend({0.95, 0.05});
  const size_t pick_cheap = r.Recommend({0.05, 0.95});
  ASSERT_LT(pick_fast, r.pareto.size());
  ASSERT_LT(pick_cheap, r.pareto.size());
  // A latency-heavy preference never picks a slower solution than a
  // cost-heavy preference does.
  EXPECT_LE(r.pareto[pick_fast].objectives[0],
            r.pareto[pick_cheap].objectives[0] + 1e-9);
}

}  // namespace
}  // namespace sparkopt
