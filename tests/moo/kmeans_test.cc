#include "moo/kmeans.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sparkopt {
namespace {

TEST(KMeansTest, SeparatedClustersFound) {
  // Three tight blobs far apart.
  Rng rng(1);
  std::vector<std::vector<double>> pts;
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 20; ++i) {
      pts.push_back({centers[c][0] + rng.Normal(0, 0.1),
                     centers[c][1] + rng.Normal(0, 0.1)});
    }
  }
  auto km = KMeans(pts, 3, 30, 7);
  ASSERT_EQ(km.centroids.size(), 3u);
  // Each blob maps to a single cluster.
  for (int c = 0; c < 3; ++c) {
    const int first = km.assignment[c * 20];
    for (int i = 1; i < 20; ++i) {
      EXPECT_EQ(km.assignment[c * 20 + i], first);
    }
  }
}

TEST(KMeansTest, RepresentativesAreMembers) {
  Rng rng(5);
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 50; ++i) {
    pts.push_back({rng.Uniform(), rng.Uniform()});
  }
  auto km = KMeans(pts, 8, 20, 3);
  for (size_t c = 0; c < km.centroids.size(); ++c) {
    const int rep = km.representative[c];
    ASSERT_GE(rep, 0);
    ASSERT_LT(rep, 50);
  }
}

TEST(KMeansTest, KLargerThanNClamps) {
  std::vector<std::vector<double>> pts = {{0, 0}, {1, 1}};
  auto km = KMeans(pts, 10, 10, 1);
  EXPECT_LE(km.centroids.size(), 2u);
}

TEST(KMeansTest, EmptyInputSafe) {
  auto km = KMeans({}, 3, 10, 1);
  EXPECT_TRUE(km.centroids.empty());
}

TEST(KMeansTest, Deterministic) {
  Rng rng(9);
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 40; ++i) pts.push_back({rng.Uniform(), rng.Uniform()});
  auto a = KMeans(pts, 5, 20, 11);
  auto b = KMeans(pts, 5, 20, 11);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.representative, b.representative);
}

TEST(AssignToCentroidsTest, NearestWins) {
  std::vector<std::vector<double>> centroids = {{0, 0}, {10, 10}};
  auto out = AssignToCentroids({{1, 1}, {9, 9}}, centroids);
  EXPECT_EQ(out, (std::vector<int>{0, 1}));
}

}  // namespace
}  // namespace sparkopt
