/// \file moo_property_test.cc
/// \brief Cross-solver MOO invariants checked across random seeds and
/// queries: idempotent Pareto filtering, WUN preference monotonicity,
/// non-dominated outputs from every solver, and HMOOC's structural
/// guarantees (theta_c sharing, per-subQ theta_p freedom).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "moo/baselines.h"
#include "moo/hmooc.h"
#include "moo/objective_models.h"
#include "workload/tpch.h"

namespace sparkopt {
namespace {

TEST(ParetoIdempotenceTest, FilteringTwiceIsStable) {
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<ObjectiveVector> pts;
    for (int i = 0; i < 200; ++i) {
      pts.push_back({rng.Uniform(), rng.Uniform()});
    }
    auto once = ParetoFilter(pts);
    auto twice = ParetoFilter(once);
    EXPECT_EQ(once.size(), twice.size());
  }
}

TEST(WunMonotonicityTest, LatencyWeightIncreasesPickNeverSlower) {
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<ObjectiveVector> pts;
    for (int i = 0; i < 100; ++i) {
      pts.push_back({rng.Uniform(), rng.Uniform()});
    }
    auto front = ParetoFilter(pts);
    double prev_lat = 1e300;
    for (double w = 0.0; w <= 1.0; w += 0.1) {
      const size_t pick = WeightedUtopiaNearest(front, {w, 1.0 - w});
      ASSERT_LT(pick, front.size());
      // As latency weight grows, the chosen latency must not increase.
      EXPECT_LE(front[pick][0], prev_lat + 1e-9);
      prev_lat = front[pick][0];
    }
  }
}

class SolverSeedTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  std::vector<TableStats> catalog_ = TpchCatalog(10);
  ClusterSpec cluster_;
  CostModelParams cost_;
};

TEST_P(SolverSeedTest, HmoocInvariantsHoldAcrossSeeds) {
  auto q = *MakeTpchQuery(5, &catalog_);
  AnalyticSubQModel model(&q, cluster_, cost_);
  HmoocOptions ho;
  ho.theta_c_samples = 16;
  ho.clusters = 4;
  ho.theta_p_samples = 24;
  ho.enriched_samples = 6;
  ho.seed = GetParam();
  auto r = HmoocSolver(&model, ho).Solve();
  ASSERT_FALSE(r.pareto.empty());
  for (const auto& sol : r.pareto) {
    // theta_c identical across subQs (the HMOOC constraint)...
    for (const auto& conf : sol.per_subq_conf) {
      for (int j = 0; j < 8; ++j) {
        EXPECT_DOUBLE_EQ(conf[j], sol.conf[j]);
      }
    }
    // ...while theta_p may differ between at least some subQs in at
    // least some solutions (fine-grained tuning actually happening) —
    // checked globally below.
  }
  bool any_fine_grained = false;
  for (const auto& sol : r.pareto) {
    for (size_t i = 1; i < sol.per_subq_conf.size(); ++i) {
      for (int j = 8; j < 17; ++j) {
        if (sol.per_subq_conf[i][j] != sol.per_subq_conf[0][j]) {
          any_fine_grained = true;
        }
      }
    }
  }
  EXPECT_TRUE(any_fine_grained)
      << "no solution used per-subQ theta_p freedom";
}

TEST_P(SolverSeedTest, AllSolversReturnMutuallyNonDominatedFronts) {
  auto q = *MakeTpchQuery(3, &catalog_);
  AnalyticSubQModel model(&q, cluster_, cost_);
  FlatProblem flat(&model, false);

  WsOptions wo;
  wo.samples = 400;
  wo.seed = GetParam();
  EvoOptions eo;
  eo.max_evaluations = 200;
  eo.population = 30;
  eo.seed = GetParam();
  PfOptions po;
  po.inner_samples = 100;
  po.max_points = 5;
  po.seed = GetParam();

  for (const auto& r :
       {SolveWeightedSum(flat, flat, wo), SolveEvo(flat, flat, eo),
        SolveProgressiveFrontier(flat, flat, po)}) {
    ASSERT_FALSE(r.pareto.empty());
    for (size_t i = 0; i < r.pareto.size(); ++i) {
      for (size_t j = 0; j < r.pareto.size(); ++j) {
        if (i == j) continue;
        EXPECT_FALSE(
            Dominates(r.pareto[j].objectives, r.pareto[i].objectives));
      }
      // Finite positive objectives.
      EXPECT_GT(r.pareto[i].objectives[0], 0);
      EXPECT_GT(r.pareto[i].objectives[1], 0);
      EXPECT_TRUE(std::isfinite(r.pareto[i].objectives[0]));
    }
  }
}

TEST_P(SolverSeedTest, HmoocEvaluationBudgetScalesWithOptions) {
  auto q = *MakeTpchQuery(3, &catalog_);
  AnalyticSubQModel model(&q, cluster_, cost_);
  HmoocOptions small;
  small.theta_c_samples = 8;
  small.clusters = 2;
  small.theta_p_samples = 16;
  small.enriched_samples = 0;
  small.seed = GetParam();
  auto r1 = HmoocSolver(&model, small).Solve();
  HmoocOptions big = small;
  big.theta_c_samples = 32;
  big.theta_p_samples = 64;
  auto r2 = HmoocSolver(&model, big).Solve();
  EXPECT_GT(r2.evaluations, r1.evaluations);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverSeedTest,
                         ::testing::Values(1, 17, 101, 9001));

}  // namespace
}  // namespace sparkopt
