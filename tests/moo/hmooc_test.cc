#include "moo/hmooc.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "moo/objective_models.h"
#include "workload/tpch.h"

namespace sparkopt {
namespace {

struct Fixture {
  std::vector<TableStats> catalog = TpchCatalog(10);
  ClusterSpec cluster;
  CostModelParams cost;
  Query q;
  AnalyticSubQModel model;

  explicit Fixture(int qid = 3)
      : q(*MakeTpchQuery(qid, &catalog)), model(&q, cluster, cost) {}

  HmoocOptions SmallOpts(DagAggregation agg) {
    HmoocOptions o;
    o.theta_c_samples = 24;
    o.clusters = 6;
    o.theta_p_samples = 32;
    o.enriched_samples = 8;
    o.aggregation = agg;
    o.seed = 7;
    return o;
  }
};

TEST(HmoocTest, SolvesAndReturnsNonDominatedFront) {
  Fixture fx;
  HmoocSolver solver(&fx.model, fx.SmallOpts(DagAggregation::kBoundary));
  auto r = solver.Solve();
  ASSERT_FALSE(r.pareto.empty());
  EXPECT_GT(r.evaluations, 0u);
  for (size_t i = 0; i < r.pareto.size(); ++i) {
    for (size_t j = 0; j < r.pareto.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(
            Dominates(r.pareto[j].objectives, r.pareto[i].objectives));
      }
    }
  }
}

TEST(HmoocTest, AllSubqueriesShareThetaC) {
  // The defining constraint of Definition 5.1.
  Fixture fx;
  HmoocSolver solver(&fx.model, fx.SmallOpts(DagAggregation::kBoundary));
  auto r = solver.Solve();
  for (const auto& sol : r.pareto) {
    ASSERT_EQ(static_cast<int>(sol.per_subq_conf.size()),
              fx.model.num_subqs());
    for (const auto& conf : sol.per_subq_conf) {
      for (int j = 0; j < 8; ++j) {
        EXPECT_DOUBLE_EQ(conf[j], sol.per_subq_conf[0][j])
            << "theta_c constraint violated at param " << j;
      }
    }
  }
}

TEST(HmoocTest, ObjectivesMatchModelReEvaluation) {
  // The reported query-level point must equal the sum of per-subQ model
  // evaluations of the returned configuration.
  Fixture fx;
  HmoocSolver solver(&fx.model, fx.SmallOpts(DagAggregation::kBoundary));
  auto r = solver.Solve();
  for (const auto& sol : r.pareto) {
    double lat = 0, cost = 0;
    for (int i = 0; i < fx.model.num_subqs(); ++i) {
      auto f = fx.model.Evaluate(i, sol.per_subq_conf[i]);
      lat += f[0];
      cost += f[1];
    }
    EXPECT_NEAR(sol.objectives[0], lat, 1e-6 * std::max(1.0, lat));
    EXPECT_NEAR(sol.objectives[1], cost, 1e-6 * std::max(1.0, cost));
  }
}

TEST(HmoocTest, Deterministic) {
  Fixture fx;
  HmoocSolver solver(&fx.model, fx.SmallOpts(DagAggregation::kBoundary));
  auto a = solver.Solve();
  auto b = solver.Solve();
  ASSERT_EQ(a.pareto.size(), b.pareto.size());
  for (size_t i = 0; i < a.pareto.size(); ++i) {
    EXPECT_EQ(a.pareto[i].objectives, b.pareto[i].objectives);
  }
}

// The tentpole determinism contract: the parallel solve must return
// bitwise the same front as the sequential one, for every aggregation.
TEST(HmoocTest, BitwiseIdenticalAcrossThreadCounts) {
  for (auto agg : {DagAggregation::kBoundary, DagAggregation::kWeightedSum,
                   DagAggregation::kDivideAndConquer}) {
    Fixture seq_fx, par_fx;  // separate models: fresh eval-cache state
    auto seq_opts = seq_fx.SmallOpts(agg);
    seq_opts.num_threads = 1;
    auto par_opts = par_fx.SmallOpts(agg);
    par_opts.num_threads = 4;
    const auto a = HmoocSolver(&seq_fx.model, seq_opts).Solve();
    const auto b = HmoocSolver(&par_fx.model, par_opts).Solve();
    ASSERT_EQ(a.pareto.size(), b.pareto.size()) << DagAggregationName(agg);
    for (size_t i = 0; i < a.pareto.size(); ++i) {
      EXPECT_EQ(a.pareto[i].objectives, b.pareto[i].objectives)
          << DagAggregationName(agg) << " point " << i;
      EXPECT_EQ(a.pareto[i].per_subq_conf, b.pareto[i].per_subq_conf)
          << DagAggregationName(agg) << " point " << i;
    }
    EXPECT_EQ(a.evaluations, b.evaluations);
  }
}

// Memoization must be invisible in the results (the cached value is a
// pure function of the key preimage) and actually hit on this workload.
TEST(HmoocTest, BitwiseIdenticalWithEvalCacheDisabled) {
  Fixture on_fx, off_fx;
  off_fx.model.evaluator().set_eval_cache_enabled(false);
  const auto opts = on_fx.SmallOpts(DagAggregation::kBoundary);
  const auto a = HmoocSolver(&on_fx.model, opts).Solve();
  const auto b = HmoocSolver(&off_fx.model, opts).Solve();
  ASSERT_EQ(a.pareto.size(), b.pareto.size());
  for (size_t i = 0; i < a.pareto.size(); ++i) {
    EXPECT_EQ(a.pareto[i].objectives, b.pareto[i].objectives);
    EXPECT_EQ(a.pareto[i].per_subq_conf, b.pareto[i].per_subq_conf);
  }
  // The member fan-out re-evaluates each representative's Pareto pool
  // entries, so the cache must see real traffic.
  EXPECT_GT(on_fx.model.evaluator().eval_cache_hits(), 0u);
  EXPECT_EQ(off_fx.model.evaluator().eval_cache_hits(), 0u);
}

TEST(HmoocTest, GridInitAlsoSolves) {
  Fixture fx;
  auto opts = fx.SmallOpts(DagAggregation::kBoundary);
  opts.grid_init = true;
  HmoocSolver solver(&fx.model, opts);
  auto r = solver.Solve();
  EXPECT_FALSE(r.pareto.empty());
}

// Proposition 5.3: the boundary approximation keeps at least k (=2)
// query-level Pareto points — in particular the per-objective extremes of
// the exact front.
TEST(HmoocTest, BoundaryKeepsExtremePointsOfExactFront) {
  Fixture fx;
  auto exact_opts = fx.SmallOpts(DagAggregation::kDivideAndConquer);
  auto approx_opts = fx.SmallOpts(DagAggregation::kBoundary);
  auto exact = HmoocSolver(&fx.model, exact_opts).Solve();
  auto approx = HmoocSolver(&fx.model, approx_opts).Solve();
  ASSERT_GE(approx.pareto.size(), 2u);
  auto min_of = [](const MooRunResult& r, int k) {
    double v = 1e300;
    for (const auto& s : r.pareto) v = std::min(v, s.objectives[k]);
    return v;
  };
  EXPECT_NEAR(min_of(approx, 0), min_of(exact, 0), 1e-9);
  EXPECT_NEAR(min_of(approx, 1), min_of(exact, 1), 1e-9);
}

// Lemma 1: under a fixed theta_c and raw-objective weighted sums, every
// HMOOC2 point is query-level Pareto optimal — so no exact (HMOOC1) point
// under the same single candidate may dominate it. The guarantee is per
// theta_c and for unnormalized sums, hence the restricted options.
TEST(HmoocTest, WsAggregationPointsNotDominatedByExactFront) {
  Fixture fx;
  auto exact_opts = fx.SmallOpts(DagAggregation::kDivideAndConquer);
  exact_opts.theta_c_samples = 1;
  exact_opts.clusters = 1;
  exact_opts.enriched_samples = 0;
  auto ws_opts = exact_opts;
  ws_opts.aggregation = DagAggregation::kWeightedSum;
  ws_opts.hmooc2_normalize_per_subq = false;
  auto exact = HmoocSolver(&fx.model, exact_opts).Solve();
  auto ws = HmoocSolver(&fx.model, ws_opts).Solve();
  ASSERT_FALSE(ws.pareto.empty());
  for (const auto& w : ws.pareto) {
    for (const auto& e : exact.pareto) {
      EXPECT_FALSE(Dominates(e.objectives, w.objectives))
          << "HMOOC2 returned a dominated point";
    }
  }
}

TEST(HmoocTest, ExactFrontHypervolumeAtLeastApproximations) {
  Fixture fx;
  auto exact = HmoocSolver(&fx.model,
                           fx.SmallOpts(DagAggregation::kDivideAndConquer))
                   .Solve();
  auto boundary =
      HmoocSolver(&fx.model, fx.SmallOpts(DagAggregation::kBoundary))
          .Solve();
  // Common reference point.
  ObjectiveVector ref = {0, 0};
  auto update_ref = [&](const MooRunResult& r) {
    for (const auto& s : r.pareto) {
      ref[0] = std::max(ref[0], s.objectives[0] * 1.1);
      ref[1] = std::max(ref[1], s.objectives[1] * 1.1);
    }
  };
  update_ref(exact);
  update_ref(boundary);
  auto hv = [&](const MooRunResult& r) {
    std::vector<ObjectiveVector> pts;
    for (const auto& s : r.pareto) pts.push_back(s.objectives);
    return Hypervolume2D(pts, ref);
  };
  EXPECT_GE(hv(exact), hv(boundary) - 1e-9);
}

TEST(HmoocTest, LargerBudgetDoesNotHurtHypervolume) {
  Fixture fx;
  auto small = fx.SmallOpts(DagAggregation::kBoundary);
  auto large = small;
  large.theta_c_samples = 64;
  large.theta_p_samples = 96;
  auto rs = HmoocSolver(&fx.model, small).Solve();
  auto rl = HmoocSolver(&fx.model, large).Solve();
  ObjectiveVector ref = {0, 0};
  for (const auto* r : {&rs, &rl}) {
    for (const auto& s : r->pareto) {
      ref[0] = std::max(ref[0], s.objectives[0] * 1.1);
      ref[1] = std::max(ref[1], s.objectives[1] * 1.1);
    }
  }
  auto hv = [&](const MooRunResult& r) {
    std::vector<ObjectiveVector> pts;
    for (const auto& s : r.pareto) pts.push_back(s.objectives);
    return Hypervolume2D(pts, ref);
  };
  EXPECT_GE(hv(rl), 0.9 * hv(rs));
}

TEST(HmoocTest, WorksOnSingleSubqueryPlan) {
  Fixture fx(6);  // TPCH-Q6: scan + global agg
  HmoocSolver solver(&fx.model, fx.SmallOpts(DagAggregation::kBoundary));
  auto r = solver.Solve();
  EXPECT_FALSE(r.pareto.empty());
}

TEST(HmoocTest, SearchMarginRespected) {
  Fixture fx;
  auto opts = fx.SmallOpts(DagAggregation::kBoundary);
  opts.search_margin = 0.25;
  auto r = HmoocSolver(&fx.model, opts).Solve();
  const auto& space = SparkParamSpace();
  for (const auto& sol : r.pareto) {
    for (const auto& conf : sol.per_subq_conf) {
      const auto unit = space.Normalize(conf);
      // Continuous parameters must stay inside the margin. Integer-valued
      // parameters may round to a boundary value, so skip them.
      for (size_t j = 0; j < unit.size(); ++j) {
        if (space.spec(j).type != ParamType::kFloat) continue;
        EXPECT_GE(unit[j], 0.25 - 0.02) << space.spec(j).name;
        EXPECT_LE(unit[j], 0.75 + 0.02) << space.spec(j).name;
      }
    }
  }
}

TEST(DagAggregationNameTest, Names) {
  EXPECT_STREQ(DagAggregationName(DagAggregation::kDivideAndConquer),
               "HMOOC1");
  EXPECT_STREQ(DagAggregationName(DagAggregation::kWeightedSum), "HMOOC2");
  EXPECT_STREQ(DagAggregationName(DagAggregation::kBoundary), "HMOOC3");
}

// --------------------------------------------------------------------------
// 3-objective ({latency, cost, io_gb}) end-to-end coverage.
// --------------------------------------------------------------------------

TEST(Hmooc3ObjTest, SolvesAndReturnsValidThreeDimFront) {
  for (auto agg : {DagAggregation::kBoundary, DagAggregation::kWeightedSum,
                   DagAggregation::kDivideAndConquer}) {
    Fixture fx;
    fx.model.set_num_objectives(3);
    HmoocSolver solver(&fx.model, fx.SmallOpts(agg));
    auto r = solver.Solve();
    ASSERT_FALSE(r.pareto.empty()) << DagAggregationName(agg);
    for (const auto& sol : r.pareto) {
      ASSERT_EQ(sol.objectives.size(), 3u) << DagAggregationName(agg);
      for (double v : sol.objectives) EXPECT_GE(v, 0.0);
    }
    for (size_t i = 0; i < r.pareto.size(); ++i) {
      for (size_t j = 0; j < r.pareto.size(); ++j) {
        if (i != j) {
          EXPECT_FALSE(
              Dominates(r.pareto[j].objectives, r.pareto[i].objectives))
              << DagAggregationName(agg);
        }
      }
    }
  }
}

TEST(Hmooc3ObjTest, ObjectivesMatchModelReEvaluation) {
  Fixture fx;
  fx.model.set_num_objectives(3);
  HmoocSolver solver(&fx.model,
                     fx.SmallOpts(DagAggregation::kDivideAndConquer));
  auto r = solver.Solve();
  ASSERT_FALSE(r.pareto.empty());
  for (const auto& sol : r.pareto) {
    ObjectiveVector total(3, 0.0);
    for (int i = 0; i < fx.model.num_subqs(); ++i) {
      auto f = fx.model.Evaluate(i, sol.per_subq_conf[i]);
      ASSERT_EQ(f.size(), 3u);
      for (int d = 0; d < 3; ++d) total[d] += f[d];
    }
    // The solver sums in D&C merge-tree order; linear re-accumulation
    // may differ in the last bit, so compare with DOUBLE_EQ (4 ulp).
    for (int d = 0; d < 3; ++d) {
      EXPECT_DOUBLE_EQ(total[d], sol.objectives[d]) << "objective " << d;
    }
  }
}

TEST(Hmooc3ObjTest, BitwiseIdenticalAcrossThreadCounts) {
  for (auto agg : {DagAggregation::kBoundary, DagAggregation::kWeightedSum,
                   DagAggregation::kDivideAndConquer}) {
    Fixture seq_fx, par_fx;  // separate models: fresh eval-cache state
    seq_fx.model.set_num_objectives(3);
    par_fx.model.set_num_objectives(3);
    auto seq_opts = seq_fx.SmallOpts(agg);
    seq_opts.num_threads = 1;
    auto par_opts = par_fx.SmallOpts(agg);
    par_opts.num_threads = 4;
    const auto a = HmoocSolver(&seq_fx.model, seq_opts).Solve();
    const auto b = HmoocSolver(&par_fx.model, par_opts).Solve();
    ASSERT_EQ(a.pareto.size(), b.pareto.size()) << DagAggregationName(agg);
    for (size_t i = 0; i < a.pareto.size(); ++i) {
      EXPECT_EQ(a.pareto[i].objectives, b.pareto[i].objectives)
          << DagAggregationName(agg) << " point " << i;
      EXPECT_EQ(a.pareto[i].per_subq_conf, b.pareto[i].per_subq_conf)
          << DagAggregationName(agg) << " point " << i;
    }
    EXPECT_EQ(a.evaluations, b.evaluations);
  }
}

TEST(Hmooc3ObjTest, TwoAndThreeObjectiveSolvesCoexist) {
  // A 2-objective and a 3-objective solve of the same query both
  // succeed, and the third objective (io_gb) is finite and
  // non-negative — the IO axis is real evaluator output, not padding.
  Fixture fx2, fx3;
  fx3.model.set_num_objectives(3);
  const auto r2 =
      HmoocSolver(&fx2.model, fx2.SmallOpts(DagAggregation::kBoundary))
          .Solve();
  const auto r3 =
      HmoocSolver(&fx3.model, fx3.SmallOpts(DagAggregation::kBoundary))
          .Solve();
  ASSERT_FALSE(r2.pareto.empty());
  ASSERT_FALSE(r3.pareto.empty());
  for (const auto& sol : r3.pareto) {
    EXPECT_TRUE(std::isfinite(sol.objectives[2]));
    EXPECT_GE(sol.objectives[2], 0.0);
  }
}

}  // namespace
}  // namespace sparkopt
