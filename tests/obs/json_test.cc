#include "obs/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace sparkopt {
namespace obs {
namespace {

TEST(JsonTest, ScalarDump) {
  EXPECT_EQ(Json().Dump(), "null");
  EXPECT_EQ(Json(true).Dump(), "true");
  EXPECT_EQ(Json(false).Dump(), "false");
  EXPECT_EQ(Json(3).Dump(), "3");
  EXPECT_EQ(Json(-7).Dump(), "-7");
  EXPECT_EQ(Json(2.5).Dump(), "2.5");
  EXPECT_EQ(Json("hi").Dump(), "\"hi\"");
}

TEST(JsonTest, IntegersPrintWithoutFraction) {
  EXPECT_EQ(Json(uint64_t{1000000}).Dump(), "1000000");
  EXPECT_EQ(Json(int64_t{-42}).Dump(), "-42");
  EXPECT_EQ(Json(0).Dump(), "0");
}

TEST(JsonTest, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).Dump(), "null");
  EXPECT_EQ(Json(std::nan("")).Dump(), "null");
}

TEST(JsonTest, StringEscaping) {
  EXPECT_EQ(Json("a\"b\\c").Dump(), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(Json("line\nbreak\ttab").Dump(), "\"line\\nbreak\\ttab\"");
  auto back = Json::Parse(Json(std::string("ctrl\x01мир")).Dump());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->as_string(), "ctrl\x01мир");
}

TEST(JsonTest, ObjectKeepsInsertionOrder) {
  Json obj{JsonObject{}};
  obj.Set("zebra", 1);
  obj.Set("alpha", 2);
  obj.Set("mid", Json(JsonArray{Json(1), Json(2)}));
  EXPECT_EQ(obj.Dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":[1,2]}");
}

TEST(JsonTest, FindAndGetters) {
  Json obj{JsonObject{}};
  obj.Set("n", 4.5);
  obj.Set("s", "text");
  EXPECT_EQ(obj.GetNumber("n"), 4.5);
  EXPECT_EQ(obj.GetNumber("absent", -1.0), -1.0);
  EXPECT_EQ(obj.GetString("s"), "text");
  EXPECT_EQ(obj.GetString("absent", "dflt"), "dflt");
  EXPECT_EQ(obj.Find("absent"), nullptr);
  EXPECT_EQ(Json(3.0).Find("n"), nullptr);  // non-object lookup
}

TEST(JsonTest, ParseRoundTrip) {
  const std::string doc =
      "{\"a\":[1,2.5,-300,true,false,null],\"b\":{\"c\":\"x\"},\"d\":[]}";
  auto parsed = Json::Parse(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Dump(), doc);
  // Exponent notation parses to the same value.
  auto exp = Json::Parse("-3e2");
  ASSERT_TRUE(exp.ok());
  EXPECT_DOUBLE_EQ(exp->as_double(), -300.0);
}

TEST(JsonTest, PrettyPrintReparses) {
  Json obj{JsonObject{}};
  obj.Set("list", Json(JsonArray{Json(1), Json("two")}));
  obj.Set("nested", [] {
    Json n{JsonObject{}};
    n.Set("k", 9);
    return n;
  }());
  const std::string pretty = obj.Dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  auto back = Json::Parse(pretty);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->Dump(), obj.Dump());
}

TEST(JsonTest, ParseErrors) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());  // trailing garbage
}

TEST(JsonTest, ParseWhitespaceTolerant) {
  auto parsed = Json::Parse("  {\n \"a\" :\t[ 1 , 2 ]\n}  ");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Dump(), "{\"a\":[1,2]}");
}

TEST(JsonTest, SetOnNonObjectConverts) {
  Json v(7);
  v.Set("k", 1);
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.GetNumber("k"), 1.0);
}

}  // namespace
}  // namespace obs
}  // namespace sparkopt
