#include "obs/openmetrics.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace sparkopt {
namespace obs {
namespace {

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

TEST(OpenMetricsNameTest, SanitizesCharsetAndPrefixes) {
  EXPECT_EQ(OpenMetricsName("model.eval_cache_probe_len"),
            "sparkopt_model_eval_cache_probe_len");
  EXPECT_EQ(OpenMetricsName("a-b c"), "sparkopt_a_b_c");
  EXPECT_EQ(OpenMetricsName("ok:colon"), "sparkopt_ok:colon");
  EXPECT_EQ(OpenMetricsName("x", ""), "x");
  // Empty prefix + leading digit gets an underscore prepended.
  EXPECT_EQ(OpenMetricsName("9lives", ""), "_9lives");
}

// Golden fixture: fully deterministic exposition (the empty histogram
// avoids machine-dependent bucket-bound formatting).
TEST(OpenMetricsTest, GoldenText) {
  MetricsRegistry reg;
  reg.counter("b.count").Add(2);
  reg.counter("a.count").Add(41);
  reg.gauge("pool.depth").Set(2.5);
  reg.histogram("empty.h");
  const std::string expected =
      "# TYPE sparkopt_a_count counter\n"
      "sparkopt_a_count_total 41\n"
      "# TYPE sparkopt_b_count counter\n"
      "sparkopt_b_count_total 2\n"
      "# TYPE sparkopt_pool_depth gauge\n"
      "sparkopt_pool_depth 2.5\n"
      "# TYPE sparkopt_empty_h histogram\n"
      "sparkopt_empty_h_bucket{le=\"+Inf\"} 0\n"
      "sparkopt_empty_h_sum 0\n"
      "sparkopt_empty_h_count 0\n"
      "# EOF\n";
  EXPECT_EQ(ToOpenMetricsText(reg), expected);
}

TEST(OpenMetricsTest, EmptyRegistryIsJustEof) {
  MetricsRegistry reg;
  EXPECT_EQ(ToOpenMetricsText(reg), "# EOF\n");
}

TEST(OpenMetricsTest, HistogramBucketsAreSparseAndCumulative) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat");
  h.Observe(1.0);
  h.Observe(1.0);
  h.Observe(64.0);
  const auto lines = Lines(ToOpenMetricsText(reg));
  // 450 fixed buckets, 2 occupied: expect exactly TYPE + 2 buckets +
  // +Inf + _sum + _count + EOF.
  ASSERT_EQ(lines.size(), 7u);
  EXPECT_EQ(lines[0], "# TYPE sparkopt_lat histogram");
  // The first occupied bucket holds the two 1.0 samples, cumulatively 2;
  // the second adds the 64.0 sample, cumulatively 3.
  EXPECT_NE(lines[1].find("_bucket{le=\""), std::string::npos);
  EXPECT_EQ(lines[1].substr(lines[1].rfind(' ') + 1), "2");
  EXPECT_EQ(lines[2].substr(lines[2].rfind(' ') + 1), "3");
  EXPECT_EQ(lines[3], "sparkopt_lat_bucket{le=\"+Inf\"} 3");
  EXPECT_EQ(lines[4], "sparkopt_lat_sum 66");
  EXPECT_EQ(lines[5], "sparkopt_lat_count 3");
  EXPECT_EQ(lines[6], "# EOF");
}

// Minimal OpenMetrics text-format conformance check: line grammar,
// name charset, # TYPE before samples, histograms complete (+Inf bucket,
// non-decreasing cumulative counts, _count == +Inf), single trailing
// # EOF.
void CheckConformance(const std::string& text) {
  ASSERT_FALSE(text.empty());
  ASSERT_EQ(text.back(), '\n') << "exposition must end with newline";
  const auto lines = Lines(text);
  ASSERT_FALSE(lines.empty());
  ASSERT_EQ(lines.back(), "# EOF");

  auto valid_name = [](const std::string& s) {
    if (s.empty() || std::isdigit(static_cast<unsigned char>(s[0]))) {
      return false;
    }
    for (char c : s) {
      if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_' &&
          c != ':') {
        return false;
      }
    }
    return true;
  };

  std::map<std::string, std::string> family_type;
  std::map<std::string, std::vector<uint64_t>> hist_buckets;
  std::map<std::string, uint64_t> hist_inf, hist_count;
  for (size_t i = 0; i + 1 < lines.size(); ++i) {
    const std::string& line = lines[i];
    ASSERT_FALSE(line.empty()) << "blank line " << i;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream in(line.substr(7));
      std::string fam, type;
      in >> fam >> type;
      ASSERT_TRUE(valid_name(fam)) << line;
      ASSERT_TRUE(type == "counter" || type == "gauge" ||
                  type == "histogram")
          << line;
      ASSERT_EQ(family_type.count(fam), 0u) << "duplicate family " << fam;
      family_type[fam] = type;
      continue;
    }
    ASSERT_NE(line[0], '#') << "unexpected comment: " << line;
    // Sample line: name[{labels}] value
    const size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    std::string name = line.substr(0, sp);
    const std::string value = line.substr(sp + 1);
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    ASSERT_EQ(*end, '\0') << "unparseable value in: " << line;
    std::string label;
    const size_t brace = name.find('{');
    if (brace != std::string::npos) {
      ASSERT_EQ(name.back(), '}') << line;
      label = name.substr(brace + 1, name.size() - brace - 2);
      name = name.substr(0, brace);
    }
    // Strip the sample-name suffix to recover the family.
    std::string fam = name;
    for (const char* suffix : {"_total", "_bucket", "_sum", "_count"}) {
      const size_t len = std::string(suffix).size();
      if (name.size() > len &&
          name.compare(name.size() - len, len, suffix) == 0) {
        const std::string cand = name.substr(0, name.size() - len);
        if (family_type.count(cand) != 0) {
          fam = cand;
          break;
        }
      }
    }
    ASSERT_TRUE(valid_name(name)) << line;
    ASSERT_EQ(family_type.count(fam), 1u)
        << "sample before # TYPE: " << line;
    if (family_type[fam] == "histogram" && name == fam + "_bucket") {
      ASSERT_EQ(label.rfind("le=\"", 0), 0u) << line;
      const uint64_t v = std::strtoull(value.c_str(), nullptr, 10);
      if (label == "le=\"+Inf\"") {
        hist_inf[fam] = v;
      } else {
        hist_buckets[fam].push_back(v);
      }
    }
    if (family_type[fam] == "histogram" && name == fam + "_count") {
      hist_count[fam] = std::strtoull(value.c_str(), nullptr, 10);
    }
  }
  for (const auto& [fam, type] : family_type) {
    if (type != "histogram") continue;
    ASSERT_EQ(hist_inf.count(fam), 1u) << fam << " missing +Inf bucket";
    ASSERT_EQ(hist_count.count(fam), 1u) << fam << " missing _count";
    EXPECT_EQ(hist_inf[fam], hist_count[fam]) << fam;
    uint64_t prev = 0;
    for (uint64_t v : hist_buckets[fam]) {
      EXPECT_GE(v, prev) << fam << " buckets not cumulative";
      prev = v;
    }
    EXPECT_GE(hist_inf[fam], prev) << fam;
  }
}

TEST(OpenMetricsTest, ConformanceOnPopulatedRegistry) {
  MetricsRegistry reg;
  reg.counter("threadpool.tasks").Add(17);
  reg.counter("model.eval_cache.hit").Add(3418);
  reg.gauge("threadpool.queue_depth").Set(4.0);
  reg.gauge("neg").Set(-1.5);
  Histogram& h = reg.histogram("model.eval_cache_probe_len");
  for (int i = 0; i < 1000; ++i) h.Observe(static_cast<double>(i % 16));
  Histogram& wide = reg.histogram("runtime.lqp_resolve_us");
  wide.Observe(0.0);
  wide.Observe(1e-9);
  wide.Observe(3.5);
  wide.Observe(1e30);  // overflow bucket folds into +Inf
  CheckConformance(ToOpenMetricsText(reg));
}

TEST(OpenMetricsTest, RoundTripsEveryRegistryValue) {
  MetricsRegistry reg;
  reg.counter("c").Add(123456789012345ull);
  reg.gauge("g").Set(0.1);  // not exactly representable: %.17g must hold
  reg.gauge("g2").Set(-2.5e-7);
  Histogram& h = reg.histogram("h");
  h.Observe(1.0);
  h.Observe(2.25);
  h.Observe(1e6);
  const auto lines = Lines(ToOpenMetricsText(reg));
  std::map<std::string, std::string> samples;
  for (const auto& line : lines) {
    if (line[0] == '#') continue;
    const size_t sp = line.rfind(' ');
    samples[line.substr(0, sp)] = line.substr(sp + 1);
  }
  EXPECT_EQ(samples.at("sparkopt_c_total"), "123456789012345");
  EXPECT_EQ(std::strtod(samples.at("sparkopt_g").c_str(), nullptr), 0.1);
  EXPECT_EQ(std::strtod(samples.at("sparkopt_g2").c_str(), nullptr),
            -2.5e-7);
  EXPECT_EQ(std::strtod(samples.at("sparkopt_h_sum").c_str(), nullptr),
            h.sum());
  EXPECT_EQ(samples.at("sparkopt_h_count"), "3");
  EXPECT_EQ(samples.at("sparkopt_h_bucket{le=\"+Inf\"}"), "3");
  // Bucket thresholds round-trip to the exact BucketUpperBound doubles.
  uint64_t matched = 0;
  for (const auto& [name, value] : samples) {
    const std::string prefix = "sparkopt_h_bucket{le=\"";
    if (name.rfind(prefix, 0) != 0 || name.find("+Inf") != std::string::npos) {
      continue;
    }
    const std::string le =
        name.substr(prefix.size(), name.size() - prefix.size() - 2);
    const double bound = std::strtod(le.c_str(), nullptr);
    bool exact = false;
    for (int i = 0; i < Histogram::kNumBuckets - 1; ++i) {
      if (Histogram::BucketUpperBound(i) == bound) {
        exact = true;
        break;
      }
    }
    EXPECT_TRUE(exact) << "le=" << le << " is not an exact bucket bound";
    ++matched;
    (void)value;
  }
  EXPECT_EQ(matched, 3u);  // three distinct occupied buckets
}

}  // namespace
}  // namespace obs
}  // namespace sparkopt
