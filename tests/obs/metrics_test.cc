#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

namespace sparkopt {
namespace obs {
namespace {

TEST(CounterTest, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.Set(2.5);
  EXPECT_EQ(g.value(), 2.5);
  g.Add(1.5);
  EXPECT_EQ(g.value(), 4.0);
  g.Set(-1.0);
  EXPECT_EQ(g.value(), -1.0);
}

TEST(HistogramTest, CountSumMean) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  h.Observe(1.0);
  h.Observe(3.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.sum(), 4.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 2.0);
}

TEST(HistogramTest, BucketBoundsMonotone) {
  double prev = 0.0;
  for (int i = 0; i < Histogram::kNumBuckets - 1; ++i) {
    const double b = Histogram::BucketUpperBound(i);
    EXPECT_GT(b, prev) << "bucket " << i;
    prev = b;
  }
  EXPECT_TRUE(std::isinf(
      Histogram::BucketUpperBound(Histogram::kNumBuckets - 1)));
}

// Log-scale buckets bound the relative error of any percentile by the
// bucket width: 2^(1/(2*kSubBuckets)) - 1 (< 4.5% for 8 sub-buckets).
TEST(HistogramTest, PercentileRelativeErrorBounded) {
  const double bound =
      std::pow(2.0, 1.0 / (2.0 * Histogram::kSubBuckets)) - 1.0;
  ASSERT_LT(bound, 0.045);
  Histogram h;
  // Exact values spanning several octaves.
  const std::vector<double> vals = {0.5,  1.0,  2.0,   7.0,  13.0,
                                    40.0, 90.0, 250.0, 1e3,  5e3,
                                    2e4,  1e5,  3.3e5, 1e6,  4e6};
  for (double v : vals) h.Observe(v);
  std::vector<double> sorted = vals;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.0, 0.25, 0.5, 0.75, 0.95, 1.0}) {
    const double exact =
        sorted[std::min(sorted.size() - 1,
                        static_cast<size_t>(q * sorted.size()))];
    const double est = h.Percentile(q);
    EXPECT_NEAR(est, exact, exact * 0.05)
        << "quantile " << q << ": estimate " << est << " vs exact " << exact;
  }
}

TEST(HistogramTest, PercentileOnKnownDistribution) {
  // 1..1000 uniformly: p50 ~ 500, p95 ~ 950, p99 ~ 990 (within the 4.5%
  // log-bucket bound, asserted at 10% for slack on bucket-edge effects).
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Observe(static_cast<double>(i));
  EXPECT_NEAR(h.Percentile(0.50), 500.0, 50.0);
  EXPECT_NEAR(h.Percentile(0.95), 950.0, 95.0);
  EXPECT_NEAR(h.Percentile(0.99), 990.0, 99.0);
  EXPECT_EQ(h.count(), 1000u);
}

TEST(HistogramTest, PercentileOfEmptyHistogramIsZero) {
  Histogram h;
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_EQ(h.Percentile(q), 0.0) << "quantile " << q;
  }
}

TEST(HistogramTest, PercentileOfSingleSampleWithinBound) {
  const double bound =
      std::pow(2.0, 1.0 / (2.0 * Histogram::kSubBuckets)) - 1.0;
  for (double v : {1e-3, 1.0, 777.0, 1e9}) {
    Histogram h;
    h.Observe(v);
    // Every quantile of a one-sample distribution is that sample.
    for (double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
      EXPECT_NEAR(h.Percentile(q), v, v * bound)
          << "value " << v << " quantile " << q;
    }
  }
}

// The bounded-error contract at its worst case: values sitting exactly
// on a bucket boundary. FP rounding in the index computation may place
// the sample in either adjacent bucket; the geometric-midpoint estimate
// stays within 2^(1/(2*kSubBuckets)) - 1 relative error either way.
TEST(HistogramTest, PercentileAtBucketBoundariesWithinBound) {
  const double bound =
      std::pow(2.0, 1.0 / (2.0 * Histogram::kSubBuckets)) - 1.0;
  for (int i : {1, 2, 7, 8, 9, 63, 64, 200, Histogram::kNumBuckets - 3}) {
    const double v = Histogram::BucketUpperBound(i);
    Histogram h;
    h.Observe(v);
    const double est = h.Percentile(0.5);
    EXPECT_NEAR(est, v, v * bound * 1.0000001)
        << "boundary of bucket " << i << ": estimate " << est;
  }
}

TEST(HistogramTest, PercentileAtFirstBoundIsExact) {
  Histogram h;
  h.Observe(Histogram::kFirstBound);  // lands in bucket 0
  EXPECT_EQ(h.Percentile(0.5), Histogram::kFirstBound);
}

TEST(HistogramTest, PercentileClampsOutOfRangeQuantiles) {
  Histogram h;
  h.Observe(5.0);
  EXPECT_EQ(h.Percentile(-0.5), h.Percentile(0.0));
  EXPECT_EQ(h.Percentile(1.5), h.Percentile(1.0));
}

TEST(HistogramTest, TinyAndHugeValuesLandInEdgeBuckets) {
  Histogram h;
  h.Observe(0.0);    // <= kFirstBound -> bucket 0
  h.Observe(1e-12);  // also bucket 0
  h.Observe(1e30);   // beyond the covered range -> overflow bucket
  const auto counts = h.BucketCounts();
  EXPECT_EQ(counts.front(), 2u);
  EXPECT_EQ(counts.back(), 1u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(HistogramTest, BucketCountsSumToCount) {
  Histogram h;
  for (int i = 0; i < 257; ++i) h.Observe(0.001 * (i + 1));
  const auto counts = h.BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  EXPECT_EQ(total, h.count());
}

TEST(MetricsRegistryTest, FindOrCreateReturnsStableHandles) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("a");
  Counter& c2 = reg.counter("a");
  EXPECT_EQ(&c1, &c2);
  c1.Add(3);
  EXPECT_EQ(reg.CounterValue("a"), 3u);
  EXPECT_EQ(reg.CounterValue("missing"), 0u);

  reg.gauge("g").Set(1.25);
  EXPECT_EQ(reg.GaugeValue("g"), 1.25);
  EXPECT_EQ(reg.FindCounter("missing"), nullptr);
  EXPECT_EQ(reg.FindGauge("missing"), nullptr);
  EXPECT_EQ(reg.FindHistogram("missing"), nullptr);
  EXPECT_NE(reg.FindCounter("a"), nullptr);
}

TEST(MetricsRegistryTest, StatsOf) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.StatsOf("missing").count, 0u);
  Histogram& h = reg.histogram("lat");
  for (int i = 1; i <= 100; ++i) h.Observe(static_cast<double>(i));
  const HistogramStats st = reg.StatsOf("lat");
  EXPECT_EQ(st.count, 100u);
  EXPECT_DOUBLE_EQ(st.sum, 5050.0);
  EXPECT_NEAR(st.mean, 50.5, 1e-9);
  EXPECT_NEAR(st.p50, 50.0, 5.0);
  EXPECT_NEAR(st.p95, 95.0, 9.5);
}

TEST(MetricsRegistryTest, ConcurrentUpdates) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      for (int i = 0; i < kIters; ++i) {
        reg.counter("shared").Add();
        reg.gauge("sum").Add(1.0);
        reg.histogram("h").Observe(1.0);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.CounterValue("shared"), uint64_t{kThreads} * kIters);
  EXPECT_DOUBLE_EQ(reg.GaugeValue("sum"), double{kThreads} * kIters);
  EXPECT_EQ(reg.StatsOf("h").count, uint64_t{kThreads} * kIters);
}

TEST(MetricsRegistryTest, EntriesSnapshotInSortedOrder) {
  MetricsRegistry reg;
  reg.counter("z").Add(1);
  reg.counter("a").Add(2);
  reg.gauge("g").Set(-0.5);
  reg.histogram("h").Observe(3.0);

  const auto counters = reg.CounterEntries();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "a");
  EXPECT_EQ(counters[0].second, 2u);
  EXPECT_EQ(counters[1].first, "z");

  const auto gauges = reg.GaugeEntries();
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_EQ(gauges[0].second, -0.5);

  const auto hists = reg.HistogramEntries();
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_EQ(hists[0].first, "h");
  // The pointer aliases the registry's histogram (stable handle).
  EXPECT_EQ(hists[0].second, reg.FindHistogram("h"));
  EXPECT_EQ(hists[0].second->count(), 1u);
}

TEST(MetricsRegistryTest, ToJsonParses) {
  MetricsRegistry reg;
  reg.counter("b.count").Add(2);
  reg.counter("a.count").Add(1);
  reg.gauge("g").Set(0.5);
  reg.histogram("h").Observe(10.0);
  auto parsed = Json::Parse(reg.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->GetNumber("a.count"), 1.0);
  EXPECT_EQ(counters->GetNumber("b.count"), 2.0);
  // Map iteration gives sorted, deterministic key order.
  EXPECT_EQ(counters->as_object()[0].first, "a.count");
  const Json* hist = parsed->Find("histograms");
  ASSERT_NE(hist, nullptr);
  const Json* h = hist->Find("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->GetNumber("count"), 1.0);
  EXPECT_EQ(h->GetNumber("sum"), 10.0);
}

}  // namespace
}  // namespace obs
}  // namespace sparkopt
