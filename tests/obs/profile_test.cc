#include "obs/profile.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace sparkopt {
namespace obs {
namespace {

TraceEvent Ev(const char* name, double ts_us, double dur_us, int depth,
              int tid = 0) {
  TraceEvent e;
  e.name = name;
  e.phase = 'X';
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.tid = tid;
  e.depth = depth;
  return e;
}

TEST(PhaseProfileTest, EmptyTrace) {
  const PhaseProfile p = PhaseProfile::FromEvents({});
  EXPECT_TRUE(p.roots().empty());
  EXPECT_EQ(p.total_us(), 0.0);
  EXPECT_EQ(p.Find({"anything"}), nullptr);
  EXPECT_EQ(p.Find({}), nullptr);
}

TEST(PhaseProfileTest, AggregatesRepeatedPhasesByCallPath) {
  // solve [0, 100) with two merge children and one filter child.
  const PhaseProfile p = PhaseProfile::FromEvents({
      Ev("solve", 0.0, 100.0, 0),
      Ev("merge", 10.0, 20.0, 1),
      Ev("merge", 40.0, 30.0, 1),
      Ev("filter", 75.0, 15.0, 1),
  });
  ASSERT_EQ(p.roots().size(), 1u);
  const ProfileNode& solve = p.roots()[0];
  EXPECT_EQ(solve.name, "solve");
  EXPECT_EQ(solve.count, 1u);
  EXPECT_DOUBLE_EQ(solve.inclusive_us, 100.0);
  // Exclusive: 100 - (20 + 30 + 15).
  EXPECT_DOUBLE_EQ(solve.exclusive_us, 35.0);
  ASSERT_EQ(solve.children.size(), 2u);  // merge folded, filter separate
  const ProfileNode* merge = solve.Child("merge");
  ASSERT_NE(merge, nullptr);
  EXPECT_EQ(merge->count, 2u);
  EXPECT_DOUBLE_EQ(merge->inclusive_us, 50.0);
  EXPECT_DOUBLE_EQ(merge->exclusive_us, 50.0);  // leaves keep inclusive
  EXPECT_EQ(solve.Child("missing"), nullptr);
  EXPECT_DOUBLE_EQ(p.total_us(), 100.0);
}

TEST(PhaseProfileTest, SameNameDifferentPathsStaySeparate) {
  // "resolve" appears under two different parents: two distinct nodes.
  const PhaseProfile p = PhaseProfile::FromEvents({
      Ev("lqp", 0.0, 50.0, 0),
      Ev("resolve", 5.0, 10.0, 1),
      Ev("qs", 60.0, 40.0, 0),
      Ev("resolve", 65.0, 20.0, 1),
  });
  const ProfileNode* a = p.Find({"lqp", "resolve"});
  const ProfileNode* b = p.Find({"qs", "resolve"});
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_DOUBLE_EQ(a->inclusive_us, 10.0);
  EXPECT_DOUBLE_EQ(b->inclusive_us, 20.0);
  EXPECT_EQ(p.Find({"lqp", "qs"}), nullptr);
}

TEST(PhaseProfileTest, ExclusiveTimesTelescopeToRootInclusive) {
  const PhaseProfile p = PhaseProfile::FromEvents({
      Ev("a", 0.0, 100.0, 0),
      Ev("b", 0.0, 60.0, 1),
      Ev("c", 0.0, 25.0, 2),
      Ev("d", 30.0, 20.0, 2),
      Ev("e", 70.0, 30.0, 1),
      Ev("f", 200.0, 40.0, 0),  // second root
  });
  double exclusive_sum = 0.0;
  std::vector<const ProfileNode*> work;
  for (const auto& r : p.roots()) work.push_back(&r);
  while (!work.empty()) {
    const ProfileNode* n = work.back();
    work.pop_back();
    exclusive_sum += n->exclusive_us;
    for (const auto& c : n->children) work.push_back(&c);
  }
  EXPECT_DOUBLE_EQ(exclusive_sum, p.total_us());
  EXPECT_DOUBLE_EQ(p.total_us(), 140.0);  // 100 + 40
}

TEST(PhaseProfileTest, ExclusiveClampedWhenChildOverrunsParent) {
  // Clock jitter: child reads 1us longer than its parent.
  const PhaseProfile p = PhaseProfile::FromEvents({
      Ev("parent", 0.0, 10.0, 0),
      Ev("child", 0.0, 11.0, 1),
  });
  const ProfileNode* parent = p.Find({"parent"});
  ASSERT_NE(parent, nullptr);
  EXPECT_DOUBLE_EQ(parent->exclusive_us, 0.0);
}

TEST(PhaseProfileTest, OrphanDepthAttachesAtDeepestKnownLevel) {
  // A depth-2 event with no depth-1 parent on the stack (its parent span
  // had not ended at snapshot time) becomes a child of the depth-0 node.
  const PhaseProfile p = PhaseProfile::FromEvents({
      Ev("root", 0.0, 100.0, 0),
      Ev("deep", 10.0, 5.0, 2),
  });
  EXPECT_NE(p.Find({"root", "deep"}), nullptr);
}

TEST(PhaseProfileTest, ThreadsAggregateIntoSharedRootSet) {
  const PhaseProfile p = PhaseProfile::FromEvents({
      Ev("solve", 0.0, 10.0, 0, /*tid=*/0),
      Ev("solve", 0.0, 30.0, 0, /*tid=*/1),
  });
  ASSERT_EQ(p.roots().size(), 1u);
  EXPECT_EQ(p.roots()[0].count, 2u);
  EXPECT_DOUBLE_EQ(p.roots()[0].inclusive_us, 40.0);
}

TEST(PhaseProfileTest, InstantEventsIgnored) {
  TraceEvent instant = Ev("note", 5.0, 0.0, 0);
  instant.phase = 'i';
  const PhaseProfile p =
      PhaseProfile::FromEvents({Ev("solve", 0.0, 10.0, 0), instant});
  ASSERT_EQ(p.roots().size(), 1u);
  EXPECT_EQ(p.roots()[0].name, "solve");
}

TEST(PhaseProfileTest, FromLiveSessionSpans) {
  Session session;
  {
    Span outer("outer");
    { Span inner("inner"); }
    { Span inner("inner"); }
  }
  const PhaseProfile p = PhaseProfile::FromTrace(session.trace());
  const ProfileNode* outer = p.Find({"outer"});
  const ProfileNode* inner = p.Find({"outer", "inner"});
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(inner->count, 2u);
  EXPECT_GE(outer->inclusive_us, inner->inclusive_us);
  EXPECT_DOUBLE_EQ(p.total_us(), outer->inclusive_us);
}

TEST(PhaseProfileTest, ToTextListsPhasesWithHeader) {
  const PhaseProfile p = PhaseProfile::FromEvents({
      Ev("solve", 0.0, 100.0, 0),
      Ev("merge", 10.0, 20.0, 1),
  });
  const std::string text = p.ToText();
  EXPECT_NE(text.find("phase profile (total 0.100 ms)"), std::string::npos)
      << text;
  EXPECT_NE(text.find("phase"), std::string::npos);
  EXPECT_NE(text.find("excl%"), std::string::npos);
  EXPECT_NE(text.find("solve"), std::string::npos);
  EXPECT_NE(text.find("merge"), std::string::npos);
  // The child renders indented under its parent.
  EXPECT_LT(text.find("solve"), text.find("merge"));
}

TEST(PhaseProfileTest, JsonRoundTripsStructure) {
  const PhaseProfile p = PhaseProfile::FromEvents({
      Ev("solve", 0.0, 100.0, 0),
      Ev("merge", 10.0, 20.0, 1),
      Ev("merge", 40.0, 30.0, 1),
  });
  auto parsed = Json::Parse(p.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->GetNumber("total_us"), 100.0);
  const Json* phases = parsed->Find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_EQ(phases->as_array().size(), 1u);
  const Json& solve = phases->as_array()[0];
  EXPECT_EQ(solve.GetString("name"), "solve");
  EXPECT_EQ(solve.GetNumber("count"), 1.0);
  EXPECT_EQ(solve.GetNumber("exclusive_us"), 50.0);
  const Json* children = solve.Find("children");
  ASSERT_NE(children, nullptr);
  ASSERT_EQ(children->as_array().size(), 1u);
  EXPECT_EQ(children->as_array()[0].GetNumber("count"), 2.0);
  // Leaves omit the children key entirely.
  EXPECT_EQ(children->as_array()[0].Find("children"), nullptr);
}

TEST(PhaseProfileTest, WriteJsonProducesParseableFile) {
  const PhaseProfile p =
      PhaseProfile::FromEvents({Ev("solve", 0.0, 10.0, 0)});
  const std::string path =
      testing::TempDir() + "/phase_profile_test.json";
  ASSERT_TRUE(p.WriteJson(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string body;
  char buf[256];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) body.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  auto parsed = Json::Parse(body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->GetNumber("total_us"), 10.0);
}

}  // namespace
}  // namespace obs
}  // namespace sparkopt
