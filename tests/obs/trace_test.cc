#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"

namespace sparkopt {
namespace obs {
namespace {

TEST(SpanTest, InertWithoutSession) {
  ASSERT_EQ(Session::Current(), nullptr);
  Span span("orphan");
  EXPECT_FALSE(span.active());
  span.Arg("k", 1.0);
  EXPECT_EQ(span.Seconds(), 0.0);
}

TEST(SpanTest, RecordsCompleteEvent) {
  Session session;
  {
    Span span("work");
    span.Arg("items", 7.0);
    EXPECT_TRUE(span.active());
    EXPECT_GE(span.Seconds(), 0.0);
  }
  const auto events = session.trace().Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "work");
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_GE(events[0].ts_us, 0.0);
  EXPECT_GE(events[0].dur_us, 0.0);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].first, "items");
  EXPECT_EQ(events[0].args[0].second, 7.0);
}

TEST(SpanTest, ExplicitEndIsIdempotent) {
  Session session;
  Span span("phase");
  span.End();
  EXPECT_FALSE(span.active());
  span.End();  // destruction after End() must not double-record either
  EXPECT_EQ(session.trace().size(), 1u);
}

TEST(SpanTest, NestingDepthAndOrdering) {
  Session session;
  {
    Span outer("outer");
    {
      Span inner("inner");
    }
    {
      Span sibling("sibling");
    }
  }
  const auto events = session.trace().Events();
  ASSERT_EQ(events.size(), 3u);
  // Spans record on close: children precede their parent.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "sibling");
  EXPECT_EQ(events[2].name, "outer");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].depth, 0);
  // The parent started no later and ended no earlier than its children.
  EXPECT_LE(events[2].ts_us, events[0].ts_us);
  EXPECT_GE(events[2].ts_us + events[2].dur_us,
            events[1].ts_us + events[1].dur_us);
}

TEST(SessionTest, NestedSessionsRestorePrevious) {
  Session outer;
  EXPECT_EQ(Session::Current(), &outer);
  {
    Session inner;
    EXPECT_EQ(Session::Current(), &inner);
    Span span("in-inner");
  }
  EXPECT_EQ(Session::Current(), &outer);
  EXPECT_EQ(outer.trace().size(), 0u);
}

TEST(SessionTest, MetricHelpers) {
  {
    Session session;
    Count("c", 2);
    GaugeSet("g", 1.5);
    GaugeAdd("g", 0.5);
    Observe("h", 10.0);
    ASSERT_NE(HistogramFor("h"), nullptr);
    EXPECT_EQ(session.metrics().CounterValue("c"), 2u);
    EXPECT_EQ(session.metrics().GaugeValue("g"), 2.0);
    EXPECT_EQ(session.metrics().StatsOf("h").count, 1u);
  }
  // All helpers are no-ops with no session installed.
  Count("c");
  GaugeSet("g", 9.0);
  Observe("h", 1.0);
  EXPECT_EQ(HistogramFor("h"), nullptr);
}

TEST(TraceTest, ChromeJsonIsValidAndComplete) {
  Session session;
  {
    Span a("solve");
    a.Arg("evals", 128.0);
    Span b("cluster");
  }
  const std::string json = session.trace().ToChromeJson();
  auto parsed = Json::Parse(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->GetString("displayTimeUnit"), "ms");
  const Json* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->as_array().size(), session.trace().size());
  for (const Json& e : events->as_array()) {
    EXPECT_EQ(e.GetString("ph"), "X");
    EXPECT_EQ(e.GetString("cat"), "sparkopt");
    EXPECT_FALSE(e.GetString("name").empty());
    EXPECT_GE(e.GetNumber("ts", -1.0), 0.0);
    EXPECT_GE(e.GetNumber("dur", -1.0), 0.0);
    EXPECT_EQ(e.GetNumber("pid"), 1.0);
    ASSERT_NE(e.Find("args"), nullptr);
  }
  // The span argument survives serialization.
  bool found_evals = false;
  for (const Json& e : events->as_array()) {
    if (e.GetString("name") == "solve" &&
        e.Find("args")->GetNumber("evals") == 128.0) {
      found_evals = true;
    }
  }
  EXPECT_TRUE(found_evals);
}

TEST(TraceTest, GoldenEventShape) {
  // Pin the serialized shape of one event (field names and order matter
  // for external trace viewers).
  Trace trace;
  TraceEvent ev;
  ev.name = "step";
  ev.ts_us = 10.0;
  ev.dur_us = 4.5;
  ev.tid = 3;
  ev.depth = 1;
  ev.args = {{"n", 2.0}};
  trace.Add(ev);
  auto parsed = Json::Parse(trace.ToChromeJson());
  ASSERT_TRUE(parsed.ok());
  const Json& e = parsed->Find("traceEvents")->as_array()[0];
  const JsonObject& fields = e.as_object();
  ASSERT_EQ(fields.size(), 8u);
  EXPECT_EQ(fields[0].first, "name");
  EXPECT_EQ(fields[1].first, "cat");
  EXPECT_EQ(fields[2].first, "ph");
  EXPECT_EQ(fields[3].first, "ts");
  EXPECT_EQ(fields[4].first, "dur");
  EXPECT_EQ(fields[5].first, "pid");
  EXPECT_EQ(fields[6].first, "tid");
  EXPECT_EQ(fields[7].first, "args");
  EXPECT_EQ(e.Find("args")->GetNumber("depth"), 1.0);
  EXPECT_EQ(e.Find("args")->GetNumber("n"), 2.0);
  EXPECT_EQ(e.GetNumber("ts"), 10.0);
  EXPECT_EQ(e.GetNumber("dur"), 4.5);
  EXPECT_EQ(e.GetNumber("tid"), 3.0);
}

TEST(TraceTest, WriteChromeJsonRoundTripsThroughDisk) {
  Session session;
  {
    Span span("persisted");
  }
  const std::string path = ::testing::TempDir() + "/sparkopt_trace.json";
  ASSERT_TRUE(session.trace().WriteChromeJson(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  auto parsed = Json::Parse(buf.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("traceEvents")->as_array().size(), 1u);
  std::remove(path.c_str());
}

TEST(TraceTest, WriteChromeJsonFailsOnBadPath) {
  Trace trace;
  EXPECT_FALSE(trace.WriteChromeJson("/nonexistent-dir/x/y/trace.json"));
}

TEST(ScopedHistogramTimerTest, RecordsIntoHistogram) {
  Histogram h;
  {
    ScopedHistogramTimer t(&h);
  }
  EXPECT_EQ(h.count(), 1u);
  {
    ScopedHistogramTimer inert(nullptr);  // no session installed
  }
  EXPECT_EQ(h.count(), 1u);
}

}  // namespace
}  // namespace obs
}  // namespace sparkopt
