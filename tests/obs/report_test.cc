#include "obs/report.h"

#include <gtest/gtest.h>

#include "obs/trace.h"
#include "tuner/tuner.h"
#include "workload/tpch.h"

namespace sparkopt {
namespace {

obs::TuningReport SampleReport() {
  obs::TuningReport r;
  r.query = "TPCH-Q3";
  r.method = "HMOOC3+";
  r.compile_solve_seconds = 0.42;
  r.compile_evaluations = 12345;
  r.runtime_resolves = {{"lqp", 0.002, 0.5}, {"qs", 0.001, 0.75}};
  r.runtime_overhead_seconds = 0.3;
  r.lqp_sent = 2;
  r.lqp_pruned = 3;
  r.qs_sent = 4;
  r.qs_pruned = 5;
  r.model_inferences = 100;
  r.inference_us = {100, 5000.0, 50.0, 45.0, 90.0, 99.0};
  r.sim_stages = 7;
  r.sim_tasks = 512;
  r.sim_spilled_tasks = 3;
  r.sim_shuffle_read_bytes = 1.5e9;
  r.sim_io_bytes = 2.5e9;
  r.aqe_waves = 4;
  r.aqe_replans = 5;
  r.pareto_size = 2;
  r.pareto = {{10.0, 0.5}, {12.0, 0.4}};
  r.chosen = {10.0, 0.5};
  r.exec_latency_seconds = 9.8;
  r.exec_cost_dollars = 0.51;
  return r;
}

TEST(TuningReportTest, RuntimeResolveSeconds) {
  const auto r = SampleReport();
  EXPECT_NEAR(r.RuntimeResolveSeconds(), 0.003, 1e-12);
  EXPECT_EQ(obs::TuningReport{}.RuntimeResolveSeconds(), 0.0);
}

TEST(TuningReportTest, JsonRoundTrip) {
  const auto r = SampleReport();
  auto back_or = obs::TuningReport::FromJson(r.ToJson());
  ASSERT_TRUE(back_or.ok()) << back_or.status().ToString();
  const auto& b = *back_or;
  EXPECT_EQ(b.query, r.query);
  EXPECT_EQ(b.method, r.method);
  EXPECT_DOUBLE_EQ(b.compile_solve_seconds, r.compile_solve_seconds);
  EXPECT_EQ(b.compile_evaluations, r.compile_evaluations);
  ASSERT_EQ(b.runtime_resolves.size(), 2u);
  EXPECT_EQ(b.runtime_resolves[0].kind, "lqp");
  EXPECT_DOUBLE_EQ(b.runtime_resolves[0].seconds, 0.002);
  EXPECT_DOUBLE_EQ(b.runtime_resolves[1].at_seconds, 0.75);
  EXPECT_DOUBLE_EQ(b.runtime_overhead_seconds, r.runtime_overhead_seconds);
  EXPECT_EQ(b.lqp_sent, 2);
  EXPECT_EQ(b.lqp_pruned, 3);
  EXPECT_EQ(b.qs_sent, 4);
  EXPECT_EQ(b.qs_pruned, 5);
  EXPECT_EQ(b.model_inferences, 100u);
  EXPECT_EQ(b.inference_us.count, 100u);
  EXPECT_DOUBLE_EQ(b.inference_us.p95, 90.0);
  EXPECT_EQ(b.sim_stages, 7);
  EXPECT_EQ(b.sim_tasks, 512);
  EXPECT_EQ(b.sim_spilled_tasks, 3);
  EXPECT_DOUBLE_EQ(b.sim_shuffle_read_bytes, 1.5e9);
  EXPECT_DOUBLE_EQ(b.sim_io_bytes, 2.5e9);
  EXPECT_EQ(b.aqe_waves, 4);
  EXPECT_EQ(b.aqe_replans, 5);
  EXPECT_EQ(b.pareto_size, 2u);
  ASSERT_EQ(b.pareto.size(), 2u);
  EXPECT_DOUBLE_EQ(b.pareto[1][0], 12.0);
  EXPECT_DOUBLE_EQ(b.chosen[0], 10.0);
  EXPECT_DOUBLE_EQ(b.exec_latency_seconds, 9.8);
  EXPECT_DOUBLE_EQ(b.exec_cost_dollars, 0.51);
}

TEST(TuningReportTest, FromJsonRejectsMalformedInput) {
  EXPECT_FALSE(obs::TuningReport::FromJson("{not json").ok());
  EXPECT_FALSE(obs::TuningReport::FromJson("[1,2,3]").ok());
}

TEST(TuningReportTest, ToTextMentionsKeyFigures) {
  const std::string text = SampleReport().ToText();
  EXPECT_NE(text.find("TPCH-Q3"), std::string::npos);
  EXPECT_NE(text.find("HMOOC3+"), std::string::npos);
  EXPECT_NE(text.find("12345 model evals"), std::string::npos);
  EXPECT_NE(text.find("512 tasks"), std::string::npos);
  EXPECT_NE(text.find("lqp re-solve"), std::string::npos);
}

TEST(TuningReportTest, EndToEndOverTpchQuery) {
  TunerOptions o;
  o.hmooc.theta_c_samples = 24;
  o.hmooc.clusters = 6;
  o.hmooc.theta_p_samples = 32;
  o.hmooc.enriched_samples = 8;
  Tuner tuner(o);
  auto catalog = TpchCatalog(10);
  auto q = *MakeTpchQuery(3, &catalog);

  obs::Session session;
  auto out = tuner.Run(q, TuningMethod::kHmooc3Plus);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  const obs::TuningReport report = BuildTuningReport(*out, session);

  EXPECT_EQ(report.query, q.name);
  EXPECT_EQ(report.method, "HMOOC3+");
  EXPECT_GT(report.compile_solve_seconds, 0.0);
  EXPECT_GT(report.compile_evaluations, 0u);
  EXPECT_GT(report.model_inferences, 0u);
  EXPECT_GT(report.inference_us.p50, 0.0);
  EXPECT_GT(report.sim_stages, 0);
  EXPECT_GT(report.sim_tasks, 0);
  EXPECT_GT(report.aqe_waves, 0);
  EXPECT_GT(report.pareto_size, 0u);
  EXPECT_EQ(report.pareto.size(), report.pareto_size);
  EXPECT_GT(report.exec_latency_seconds, 0.0);
  EXPECT_GT(report.exec_cost_dollars, 0.0);
  // Runtime requests were either sent (producing resolve spans) or pruned.
  EXPECT_GT(report.lqp_sent + report.lqp_pruned + report.qs_sent +
                report.qs_pruned,
            0);
  EXPECT_EQ(report.runtime_resolves.size(),
            static_cast<size_t>(report.lqp_sent + report.qs_sent));

  // The full report survives a JSON round-trip.
  auto back = obs::TuningReport::FromJson(report.ToJson());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->query, report.query);
  EXPECT_EQ(back->sim_tasks, report.sim_tasks);
  EXPECT_EQ(back->model_inferences, report.model_inferences);
  EXPECT_DOUBLE_EQ(back->exec_latency_seconds, report.exec_latency_seconds);
  // And renders as text without crashing.
  EXPECT_FALSE(report.ToText().empty());
}

}  // namespace
}  // namespace sparkopt
