#include "exec/simulator.h"

#include <gtest/gtest.h>

#include "plan/cardinality.h"

namespace sparkopt {
namespace {

constexpr double kMb = 1024.0 * 1024.0;

// Hand-built two-stage physical plan: a scan feeding an aggregate.
PhysicalPlan TwoStagePlan() {
  PhysicalPlan pp;
  QueryStage scan;
  scan.id = 0;
  scan.subq_id = 0;
  scan.is_scan_stage = true;
  scan.num_partitions = 8;
  scan.input_bytes = 800 * kMb;
  scan.input_rows = 8e6;
  scan.cpu_work = 8e6;
  scan.output_bytes = 400 * kMb;
  scan.output_rows = 4e6;
  scan.partition_bytes = SkewedPartitionSizes(scan.input_bytes, 8, 0.0);
  scan.exchanges_output = true;
  pp.stages.push_back(scan);

  QueryStage agg;
  agg.id = 1;
  agg.subq_id = 1;
  agg.deps = {0};
  agg.num_partitions = 4;
  agg.input_bytes = 400 * kMb;
  agg.input_rows = 4e6;
  agg.shuffle_read_bytes = 400 * kMb;
  agg.cpu_work = 4e6;
  agg.output_bytes = 1 * kMb;
  agg.output_rows = 100;
  agg.partition_bytes = SkewedPartitionSizes(agg.input_bytes, 4, 0.0);
  agg.exchanges_output = false;
  pp.stages.push_back(agg);
  return pp;
}

ContextParams Ctx(int cores = 4, int instances = 4) {
  ContextParams c;
  c.executor_cores = cores;
  c.executor_instances = instances;
  c.executor_memory_gb = 16;
  return c;
}

class SimulatorTest : public ::testing::Test {
 protected:
  SimulatorTest() : sim_(cluster_, NoNoise()) {}
  static CostModelParams NoNoise() {
    CostModelParams p;
    p.noise_sigma = 0.0;
    return p;
  }
  ClusterSpec cluster_;
  Simulator sim_;
};

TEST_F(SimulatorTest, DependentStageStartsAfterDependency) {
  auto pp = TwoStagePlan();
  auto exec = sim_.RunAll(pp, Ctx(), 1);
  ASSERT_EQ(exec.stages.size(), 2u);
  const auto& scan = exec.stages[0];
  const auto& agg = exec.stages[1];
  EXPECT_GE(agg.start, scan.end - 1e-9);
  EXPECT_DOUBLE_EQ(exec.latency, agg.end);
}

TEST_F(SimulatorTest, AnalyticalLatencyIsTaskSumOverCores) {
  auto pp = TwoStagePlan();
  auto exec = sim_.RunAll(pp, Ctx(4, 4), 1);
  for (const auto& se : exec.stages) {
    EXPECT_NEAR(se.analytical_latency, se.task_time_sum / 16.0, 1e-9);
  }
  EXPECT_NEAR(exec.analytical_latency,
              exec.stages[0].analytical_latency +
                  exec.stages[1].analytical_latency,
              1e-9);
}

TEST_F(SimulatorTest, MoreCoresReduceLatency) {
  auto pp = TwoStagePlan();
  const double small = sim_.RunAll(pp, Ctx(2, 2), 1).latency;
  const double big = sim_.RunAll(pp, Ctx(8, 8), 1).latency;
  EXPECT_LT(big, small);
}

TEST_F(SimulatorTest, DeterministicGivenSeed) {
  auto pp = TwoStagePlan();
  CostModelParams noisy;
  noisy.noise_sigma = 0.05;
  Simulator sim(cluster_, noisy);
  EXPECT_DOUBLE_EQ(sim.RunAll(pp, Ctx(), 7).latency,
                   sim.RunAll(pp, Ctx(), 7).latency);
  EXPECT_NE(sim.RunAll(pp, Ctx(), 7).latency,
            sim.RunAll(pp, Ctx(), 8).latency);
}

TEST_F(SimulatorTest, MakespanAtLeastCriticalPath) {
  auto pp = TwoStagePlan();
  auto exec = sim_.RunAll(pp, Ctx(), 1);
  // Makespan >= analytical latency (work conservation).
  EXPECT_GE(exec.latency, exec.analytical_latency - 1e-9);
}

TEST_F(SimulatorTest, SubsetRunsOnlyRequestedStages) {
  auto pp = TwoStagePlan();
  auto exec = sim_.RunStages(pp, {0}, Ctx(), 1);
  ASSERT_EQ(exec.stages.size(), 1u);
  EXPECT_EQ(exec.stages[0].stage_id, 0);
}

TEST_F(SimulatorTest, CostFieldsPopulated) {
  auto pp = TwoStagePlan();
  auto exec = sim_.RunAll(pp, Ctx(), 1);
  EXPECT_GT(exec.cost, 0.0);
  EXPECT_GT(exec.cpu_hours, 0.0);
  EXPECT_GT(exec.mem_gb_hours, 0.0);
  EXPECT_GT(exec.io_bytes, 0.0);
}

TEST_F(SimulatorTest, ParallelIndependentStagesShareCores) {
  // Two independent scans; with enough cores they overlap, so the
  // makespan is far below the serial sum.
  PhysicalPlan pp;
  for (int i = 0; i < 2; ++i) {
    QueryStage st;
    st.id = i;
    st.subq_id = i;
    st.is_scan_stage = true;
    st.num_partitions = 8;
    st.input_bytes = 400 * kMb;
    st.input_rows = 4e6;
    st.cpu_work = 4e6;
    st.output_bytes = 1 * kMb;
    st.partition_bytes = SkewedPartitionSizes(st.input_bytes, 8, 0.0);
    st.exchanges_output = false;
    pp.stages.push_back(st);
  }
  auto exec = sim_.RunAll(pp, Ctx(8, 4), 1);
  const double serial =
      exec.stages[0].task_time_sum + exec.stages[1].task_time_sum;
  EXPECT_LT(exec.latency, 0.8 * serial);
}

TEST_F(SimulatorTest, ContentionFeaturesObservedForLaterStages) {
  auto pp = TwoStagePlan();
  auto exec = sim_.RunAll(pp, Ctx(), 1);
  // The aggregate starts after scan tasks finished; its gamma vector
  // reflects observed task history.
  EXPECT_GT(exec.stages[1].finished_task_mean_s, 0.0);
}

TEST_F(SimulatorTest, TotalCoresCappedByCluster) {
  auto pp = TwoStagePlan();
  // Request far more executors than the cluster has.
  auto huge = Ctx(8, 1000);
  auto exec = sim_.RunAll(pp, huge, 1);
  // cpu_hours uses the capped core count.
  const double capped_cores = cluster_.TotalCores();
  EXPECT_NEAR(exec.cpu_hours, capped_cores * exec.latency / 3600.0, 1e-9);
}

}  // namespace
}  // namespace sparkopt
