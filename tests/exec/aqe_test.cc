#include "exec/aqe.h"

#include <gtest/gtest.h>

#include "plan/cardinality.h"
#include "workload/tpch.h"

namespace sparkopt {
namespace {

CostModelParams NoNoise() {
  CostModelParams p;
  p.noise_sigma = 0.0;
  return p;
}

struct Fixture {
  std::vector<TableStats> catalog = TpchCatalog(10);
  ClusterSpec cluster;
  Simulator sim{cluster, NoNoise()};

  Query Q(int qid) { return *MakeTpchQuery(qid, &catalog); }
};

TEST(AqeDriverTest, RunsAllSubqueries) {
  Fixture fx;
  auto q = fx.Q(3);
  AqeDriver driver(&q.plan, &fx.sim);
  auto defaults = DefaultSparkConfig();
  auto r = driver.Run(DecodeContext(defaults), {DecodePlan(defaults)},
                      {DecodeStage(defaults)}, nullptr, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->exec.latency, 0.0);
  EXPECT_GE(r->waves, 2);
  // Every subQ executed exactly once.
  EXPECT_EQ(r->exec.stages.size(), driver.subqueries().size());
}

TEST(AqeDriverTest, AdaptiveVsStaticSameJoinCountWhenNoMisestimate) {
  Fixture fx;
  auto q = fx.Q(1);  // no joins at all
  AqeDriver driver(&q.plan, &fx.sim);
  auto defaults = DefaultSparkConfig();
  auto adaptive = driver.Run(DecodeContext(defaults), {DecodePlan(defaults)},
                             {DecodeStage(defaults)}, nullptr, 1, true);
  auto fixed = driver.Run(DecodeContext(defaults), {DecodePlan(defaults)},
                          {DecodeStage(defaults)}, nullptr, 1, false);
  ASSERT_TRUE(adaptive.ok());
  ASSERT_TRUE(fixed.ok());
  EXPECT_EQ(adaptive->exec.smj + adaptive->exec.shj + adaptive->exec.bhj, 0);
  EXPECT_EQ(fixed->waves, 1);
}

TEST(AqeDriverTest, ReplanningUsesTrueCardinalities) {
  // With a generous broadcast threshold and heavy underestimation, the
  // adaptive driver demotes broadcasts that static planning would keep.
  Fixture fx;
  auto q = fx.Q(9);
  AqeDriver driver(&q.plan, &fx.sim);
  auto conf = DefaultSparkConfig();
  conf[kBroadcastJoinThresholdMb] = 64;
  auto adaptive = driver.Run(DecodeContext(conf), {DecodePlan(conf)},
                             {DecodeStage(conf)}, nullptr, 1, true);
  ASSERT_TRUE(adaptive.ok());
  EXPECT_GT(adaptive->replans, 1);
  EXPECT_EQ(static_cast<int>(adaptive->final_joins.size()),
            q.plan.CountOps(OpType::kJoin));
}

TEST(AqeDriverTest, JoinCensusMatchesDecisions) {
  Fixture fx;
  auto q = fx.Q(5);
  AqeDriver driver(&q.plan, &fx.sim);
  auto defaults = DefaultSparkConfig();
  auto r = driver.Run(DecodeContext(defaults), {DecodePlan(defaults)},
                      {DecodeStage(defaults)}, nullptr, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->exec.smj + r->exec.shj + r->exec.bhj,
            static_cast<int>(r->final_joins.size()));
}

// Hook that records invocations.
class RecordingHooks : public AqeHooks {
 public:
  void OnPlanCollapsed(const LogicalPlan&, const std::vector<SubQuery>&,
                       const std::vector<bool>& completed,
                       std::vector<PlanParams>*) override {
    ++collapsed_calls;
    int done = 0;
    for (bool c : completed) done += c;
    completed_progression.push_back(done);
  }
  void OnStagesReady(const PhysicalPlan&, const std::vector<int>& ready,
                     const std::vector<SubQuery>&,
                     std::vector<StageParams>*) override {
    ++ready_calls;
    total_ready += static_cast<int>(ready.size());
  }
  int collapsed_calls = 0;
  int ready_calls = 0;
  int total_ready = 0;
  std::vector<int> completed_progression;
};

TEST(AqeDriverTest, HooksInvokedEachWave) {
  Fixture fx;
  auto q = fx.Q(3);
  AqeDriver driver(&q.plan, &fx.sim);
  RecordingHooks hooks;
  auto defaults = DefaultSparkConfig();
  auto r = driver.Run(DecodeContext(defaults), {DecodePlan(defaults)},
                      {DecodeStage(defaults)}, &hooks, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(hooks.ready_calls, r->waves);
  // Collapsed-plan hook fires between waves (waves - 1 times).
  EXPECT_EQ(hooks.collapsed_calls, r->waves - 1);
  // Completion progresses monotonically.
  for (size_t i = 1; i < hooks.completed_progression.size(); ++i) {
    EXPECT_GT(hooks.completed_progression[i],
              hooks.completed_progression[i - 1]);
  }
}

// Hook that changes theta_s: the driver must re-plan and still finish.
class ThetaSChangingHooks : public AqeHooks {
 public:
  void OnStagesReady(const PhysicalPlan&, const std::vector<int>&,
                     const std::vector<SubQuery>& subqs,
                     std::vector<StageParams>* theta_s) override {
    theta_s->assign(subqs.size(), StageParams{});
    (*theta_s)[0].coalesce_min_partition_size_mb = 32;
  }
};

TEST(AqeDriverTest, ThetaSChangeTriggersReplanAndCompletes) {
  Fixture fx;
  auto q = fx.Q(3);
  AqeDriver driver(&q.plan, &fx.sim);
  ThetaSChangingHooks hooks;
  auto defaults = DefaultSparkConfig();
  auto r = driver.Run(DecodeContext(defaults), {DecodePlan(defaults)},
                      {DecodeStage(defaults)}, &hooks, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->exec.stages.size(), driver.subqueries().size());
}

TEST(AqeDriverTest, NonAdaptiveInterleavingVariesWithSeed) {
  // Figure 16: with AQE off, stage interleaving is random and latency
  // varies run to run; with AQE on it is stable.
  Fixture fx;
  auto q = fx.Q(3);
  CostModelParams noisy = NoNoise();
  Simulator sim(fx.cluster, noisy);
  auto defaults = DefaultSparkConfig();
  const ContextParams tc = DecodeContext(defaults);
  const PlanParams tp = DecodePlan(defaults);
  const StageParams ts = DecodeStage(defaults);
  AqeDriver driver(&q.plan, &sim);
  auto a1 = driver.Run(tc, {tp}, {ts}, nullptr, 1, true);
  auto a2 = driver.Run(tc, {tp}, {ts}, nullptr, 1, true);
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a2.ok());
  EXPECT_DOUBLE_EQ(a1->exec.latency, a2->exec.latency);
}

}  // namespace
}  // namespace sparkopt
