/// \file cost_property_test.cc
/// \brief Randomized monotonicity/sanity properties of the task cost
/// model and the simulator — the invariants the optimizer's search
/// relies on (more data never gets cheaper, more cores never increase
/// analytical latency, cost accounting is internally consistent).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "exec/simulator.h"
#include "model/subq_evaluator.h"
#include "workload/tpch.h"

namespace sparkopt {
namespace {

constexpr double kMb = 1024.0 * 1024.0;

CostModelParams NoNoise() {
  CostModelParams p;
  p.noise_sigma = 0.0;
  return p;
}

QueryStage RandomStage(Rng* rng) {
  QueryStage st;
  st.id = 0;
  st.num_partitions = 1 + static_cast<int>(rng->NextBounded(512));
  st.input_bytes = rng->Uniform(1, 65536) * kMb;
  st.input_rows = st.input_bytes / 100.0;
  st.cpu_work = st.input_rows * rng->Uniform(0.2, 2.0);
  st.output_bytes = st.input_bytes * rng->Uniform(0.01, 1.0);
  st.output_rows = st.output_bytes / 100.0;
  st.is_scan_stage = rng->Bernoulli(0.4);
  if (!st.is_scan_stage) st.shuffle_read_bytes = st.input_bytes;
  st.exchanges_output = rng->Bernoulli(0.7);
  st.has_join = rng->Bernoulli(0.3);
  st.partition_bytes = SkewedPartitionSizes(
      st.input_bytes, st.num_partitions, rng->Uniform(0, 0.5));
  return st;
}

ContextParams RandomContext(Rng* rng) {
  ContextParams c;
  c.executor_cores = 1 + static_cast<int>(rng->NextBounded(8));
  c.executor_instances = 2 + static_cast<int>(rng->NextBounded(15));
  c.executor_memory_gb = 1 + static_cast<int>(rng->NextBounded(32));
  c.default_parallelism = 8 + static_cast<int>(rng->NextBounded(500));
  c.reducer_max_size_in_flight_mb = rng->Uniform(12, 192);
  c.shuffle_bypass_merge_threshold =
      50 + static_cast<int>(rng->NextBounded(750));
  c.shuffle_compress = rng->Bernoulli(0.5);
  c.memory_fraction = rng->Uniform(0.4, 0.9);
  return c;
}

class CostPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  Rng rng_{GetParam()};
  ClusterSpec cluster_;
  TaskCostModel model_{cluster_, NoNoise()};
};

TEST_P(CostPropertyTest, TaskLatencyAlwaysPositiveAndFinite) {
  for (int trial = 0; trial < 50; ++trial) {
    auto st = RandomStage(&rng_);
    auto ctx = RandomContext(&rng_);
    const double lat = model_.TaskLatency(
        st, static_cast<int>(rng_.NextBounded(st.num_partitions)), ctx, 0);
    EXPECT_GT(lat, 0.0);
    EXPECT_TRUE(std::isfinite(lat));
    EXPECT_GE(model_.StageSetupLatency(st, ctx), 0.0);
    EXPECT_GE(model_.StageIoBytes(st, ctx), 0.0);
  }
}

TEST_P(CostPropertyTest, MoreMemoryNeverSlower) {
  for (int trial = 0; trial < 30; ++trial) {
    auto st = RandomStage(&rng_);
    auto ctx = RandomContext(&rng_);
    auto more = ctx;
    more.executor_memory_gb = ctx.executor_memory_gb * 2;
    EXPECT_LE(model_.TaskLatency(st, 0, more, 0),
              model_.TaskLatency(st, 0, ctx, 0) + 1e-9);
  }
}

TEST_P(CostPropertyTest, MoreInputNeverCheaper) {
  for (int trial = 0; trial < 30; ++trial) {
    auto st = RandomStage(&rng_);
    auto ctx = RandomContext(&rng_);
    auto bigger = st;
    bigger.input_bytes *= 2;
    bigger.cpu_work *= 2;
    bigger.shuffle_read_bytes *= 2;
    bigger.partition_bytes = SkewedPartitionSizes(
        bigger.input_bytes, bigger.num_partitions, 0.0);
    st.partition_bytes =
        SkewedPartitionSizes(st.input_bytes, st.num_partitions, 0.0);
    EXPECT_GE(model_.TaskLatency(bigger, 0, ctx, 0),
              model_.TaskLatency(st, 0, ctx, 0) - 1e-9);
  }
}

class SimulatorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimulatorPropertyTest, AnalyticalLatencyScalesInverselyWithCores) {
  auto catalog = TpchCatalog(10);
  auto q = *MakeTpchQuery(static_cast<int>(GetParam() % 22) + 1, &catalog);
  ClusterSpec cluster;
  SubQEvaluator eval(&q, cluster, NoNoise());
  auto conf = DefaultSparkConfig();
  const PlanParams tp = DecodePlan(conf);
  const StageParams ts = DecodeStage(conf);
  double prev = 1e300;
  for (int cores : {1, 2, 4, 8}) {
    ContextParams tc = DecodeContext(conf);
    tc.executor_cores = cores;
    tc.executor_instances = 4;
    double total = 0;
    for (int i = 0; i < eval.num_subqs(); ++i) {
      total += eval.Evaluate(i, tc, tp, ts, CardinalitySource::kTrue)
                   .analytical_latency;
    }
    EXPECT_LE(total, prev * 1.05)
        << "more cores should not increase analytical latency";
    prev = total;
  }
}

TEST_P(SimulatorPropertyTest, CostAccountingConsistent) {
  auto catalog = TpchCatalog(10);
  auto q = *MakeTpchQuery(static_cast<int>(GetParam() % 22) + 1, &catalog);
  ClusterSpec cluster;
  Simulator sim(cluster, NoNoise());
  PhysicalPlanner planner(&q.plan, q.plan.DecomposeSubQueries());
  auto conf = DefaultSparkConfig();
  const ContextParams tc = DecodeContext(conf);
  auto pp = *planner.Plan(tc, {DecodePlan(conf)}, {DecodeStage(conf)},
                          CardinalitySource::kTrue);
  auto exec = sim.RunAll(pp, tc, 1);
  // cost == CloudCost(components) exactly.
  const double expected = CloudCost(
      sim.prices(), std::min(tc.TotalCores(), cluster.TotalCores()),
      tc.executor_memory_gb * tc.executor_instances, exec.latency,
      exec.io_bytes / (1024.0 * kMb));
  EXPECT_NEAR(exec.cost, expected, 1e-12);
  // Stage spans lie within the query span.
  for (const auto& se : exec.stages) {
    EXPECT_GE(se.start, -1e-9);
    EXPECT_LE(se.end, exec.latency + 1e-9);
    EXPECT_GE(se.end, se.start);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostPropertyTest,
                         ::testing::Values(11, 22, 33, 44));
INSTANTIATE_TEST_SUITE_P(Queries, SimulatorPropertyTest,
                         ::testing::Values(0, 2, 4, 8, 16, 20));

}  // namespace
}  // namespace sparkopt
