#include "exec/cost_model.h"

#include <gtest/gtest.h>

namespace sparkopt {
namespace {

constexpr double kMb = 1024.0 * 1024.0;

QueryStage MakeStage(double input_mb, int partitions,
                     bool scan_stage = false) {
  QueryStage st;
  st.id = 0;
  st.num_partitions = partitions;
  st.input_bytes = input_mb * kMb;
  st.input_rows = input_mb * 1e4;
  st.output_bytes = st.input_bytes / 2;
  st.output_rows = st.input_rows / 2;
  st.cpu_work = st.input_rows;
  st.is_scan_stage = scan_stage;
  if (!scan_stage) st.shuffle_read_bytes = st.input_bytes;
  st.partition_bytes = SkewedPartitionSizes(st.input_bytes, partitions, 0.0);
  return st;
}

ContextParams Context(int cores = 4, int instances = 4, double mem_gb = 8) {
  ContextParams c;
  c.executor_cores = cores;
  c.executor_instances = instances;
  c.executor_memory_gb = mem_gb;
  return c;
}

class CostModelTest : public ::testing::Test {
 protected:
  CostModelTest() {
    params_.noise_sigma = 0.0;
  }
  ClusterSpec cluster_;
  CostModelParams params_;
};

TEST_F(CostModelTest, TaskLatencyPositiveAndHasOverhead) {
  TaskCostModel m(cluster_, params_);
  auto st = MakeStage(100, 10);
  const double lat = m.TaskLatency(st, 0, Context(), 0);
  EXPECT_GT(lat, params_.task_overhead_s);
}

TEST_F(CostModelTest, BiggerPartitionTakesLonger) {
  TaskCostModel m(cluster_, params_);
  auto st = MakeStage(100, 10);
  st.partition_bytes = SkewedPartitionSizes(st.input_bytes, 10, 0.8);
  const double first = m.TaskLatency(st, 0, Context(), 0);
  const double last = m.TaskLatency(st, 9, Context(), 0);
  EXPECT_GT(first, last);
}

TEST_F(CostModelTest, MemoryPressureCausesSpillSlowdown) {
  TaskCostModel m(cluster_, params_);
  auto st = MakeStage(4000, 2);  // 2 GB per task
  st.has_join = true;
  const double ample = m.TaskLatency(st, 0, Context(4, 4, 64), 0);
  const double tight = m.TaskLatency(st, 0, Context(4, 4, 2), 0);
  EXPECT_GT(tight, 1.5 * ample);
}

TEST_F(CostModelTest, CompressionReducesShuffleBytesTime) {
  params_.compress_ratio = 0.3;
  params_.compress_cpu_factor = 1.0;  // isolate the IO effect
  TaskCostModel m(cluster_, params_);
  auto st = MakeStage(2000, 4);
  auto on = Context();
  on.shuffle_compress = true;
  auto off = Context();
  off.shuffle_compress = false;
  EXPECT_LT(m.TaskLatency(st, 0, on, 0), m.TaskLatency(st, 0, off, 0));
}

TEST_F(CostModelTest, LargerInFlightBufferSpeedsShuffleRead) {
  TaskCostModel m(cluster_, params_);
  auto st = MakeStage(2000, 4);
  auto small = Context();
  small.reducer_max_size_in_flight_mb = 12;
  auto big = Context();
  big.reducer_max_size_in_flight_mb = 192;
  EXPECT_GT(m.TaskLatency(st, 0, small, 0), m.TaskLatency(st, 0, big, 0));
}

TEST_F(CostModelTest, BypassMergeThresholdSpeedsSmallShuffleWrites) {
  TaskCostModel m(cluster_, params_);
  auto st = MakeStage(2000, 100);
  st.exchanges_output = true;
  auto bypass = Context();
  bypass.shuffle_bypass_merge_threshold = 200;  // 100 <= 200: bypass
  auto sort = Context();
  sort.shuffle_bypass_merge_threshold = 50;     // 100 > 50: sort path
  EXPECT_LT(m.TaskLatency(st, 0, bypass, 0), m.TaskLatency(st, 0, sort, 0));
}

TEST_F(CostModelTest, ExtremeMemoryFractionAddsGcPressure) {
  TaskCostModel m(cluster_, params_);
  auto st = MakeStage(100, 10);
  auto mid = Context();
  mid.memory_fraction = 0.6;
  auto high = Context();
  high.memory_fraction = 0.9;
  EXPECT_LT(m.TaskLatency(st, 0, mid, 0), m.TaskLatency(st, 0, high, 0));
}

TEST_F(CostModelTest, NoiseIsDeterministicPerSeed) {
  params_.noise_sigma = 0.1;
  TaskCostModel m(cluster_, params_);
  auto st = MakeStage(100, 10);
  EXPECT_DOUBLE_EQ(m.TaskLatency(st, 3, Context(), 42),
                   m.TaskLatency(st, 3, Context(), 42));
  EXPECT_NE(m.TaskLatency(st, 3, Context(), 42),
            m.TaskLatency(st, 3, Context(), 43));
}

TEST_F(CostModelTest, BroadcastChargesSetupCost) {
  TaskCostModel m(cluster_, params_);
  auto st = MakeStage(100, 10);
  const double plain = m.StageSetupLatency(st, Context());
  st.broadcast_bytes = 500 * kMb;
  const double with_bc = m.StageSetupLatency(st, Context());
  EXPECT_GT(with_bc, plain + 0.1);
}

TEST_F(CostModelTest, BroadcastSetupGrowsWithInstances) {
  TaskCostModel m(cluster_, params_);
  auto st = MakeStage(100, 10);
  st.broadcast_bytes = 500 * kMb;
  EXPECT_GT(m.StageSetupLatency(st, Context(4, 16)),
            m.StageSetupLatency(st, Context(4, 2)));
}

TEST_F(CostModelTest, IoAccountsScanShuffleAndBroadcast) {
  TaskCostModel m(cluster_, params_);
  auto scan = MakeStage(100, 10, /*scan=*/true);
  scan.exchanges_output = false;
  auto ctx = Context();
  ctx.shuffle_compress = false;
  EXPECT_DOUBLE_EQ(m.StageIoBytes(scan, ctx), 100 * kMb);

  auto shuffle = MakeStage(100, 10);
  shuffle.exchanges_output = false;
  EXPECT_DOUBLE_EQ(m.StageIoBytes(shuffle, ctx), 100 * kMb);

  shuffle.broadcast_bytes = 10 * kMb;
  EXPECT_DOUBLE_EQ(m.StageIoBytes(shuffle, ctx),
                   100 * kMb + 10 * kMb * ctx.executor_instances);
}

TEST_F(CostModelTest, CompressionShrinksAccountedIo) {
  TaskCostModel m(cluster_, params_);
  auto st = MakeStage(100, 10);
  st.exchanges_output = false;
  auto on = Context();
  on.shuffle_compress = true;
  auto off = Context();
  off.shuffle_compress = false;
  EXPECT_LT(m.StageIoBytes(st, on), m.StageIoBytes(st, off));
}

TEST(CloudCostTest, LinearInResources) {
  PriceBook p;
  const double base = CloudCost(p, 8, 32, 3600, 10);
  EXPECT_DOUBLE_EQ(base, p.per_core_hour * 8 + p.per_gb_mem_hour * 32 +
                             p.per_gb_io * 10);
  EXPECT_DOUBLE_EQ(CloudCost(p, 16, 32, 3600, 10) - base,
                   p.per_core_hour * 8);
}

}  // namespace
}  // namespace sparkopt
