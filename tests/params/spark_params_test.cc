#include "params/spark_params.h"

#include <gtest/gtest.h>

namespace sparkopt {
namespace {

TEST(SparkParamSpaceTest, Has19Parameters) {
  EXPECT_EQ(SparkParamSpace().size(), 19u);
  EXPECT_EQ(static_cast<size_t>(kNumSparkParams), 19u);
}

TEST(SparkParamSpaceTest, CategoryCountsMatchPaper) {
  const auto& space = SparkParamSpace();
  EXPECT_EQ(space.CategoryIndices(ParamCategory::kContext).size(), 8u);
  EXPECT_EQ(space.CategoryIndices(ParamCategory::kPlan).size(), 9u);
  EXPECT_EQ(space.CategoryIndices(ParamCategory::kStage).size(), 2u);
}

TEST(SparkParamSpaceTest, NamesMatchSparkConfigs) {
  const auto& space = SparkParamSpace();
  EXPECT_EQ(space.spec(kExecutorCores).name, "spark.executor.cores");
  EXPECT_EQ(space.spec(kShufflePartitions).name,
            "spark.sql.shuffle.partitions");
  EXPECT_EQ(
      space.spec(kCoalesceMinPartitionSizeMb).name,
      "spark.sql.adaptive.coalescePartitions.minPartitionSize");
}

TEST(SparkParamSpaceTest, CategoriesAreContiguousBlocks) {
  // Decoders rely on the theta_c | theta_p | theta_s block layout.
  const auto& space = SparkParamSpace();
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(space.spec(i).category, ParamCategory::kContext) << i;
  }
  for (size_t i = 8; i < 17; ++i) {
    EXPECT_EQ(space.spec(i).category, ParamCategory::kPlan) << i;
  }
  for (size_t i = 17; i < 19; ++i) {
    EXPECT_EQ(space.spec(i).category, ParamCategory::kStage) << i;
  }
}

TEST(DecodeContextTest, RoundTripThroughEncode) {
  ContextParams c;
  c.executor_cores = 6;
  c.executor_memory_gb = 12;
  c.executor_instances = 10;
  c.default_parallelism = 128;
  c.reducer_max_size_in_flight_mb = 96;
  c.shuffle_bypass_merge_threshold = 300;
  c.shuffle_compress = false;
  c.memory_fraction = 0.7;
  std::vector<double> conf = DefaultSparkConfig();
  EncodeContext(c, &conf);
  const ContextParams d = DecodeContext(conf);
  EXPECT_EQ(d.executor_cores, 6);
  EXPECT_EQ(d.executor_instances, 10);
  EXPECT_FALSE(d.shuffle_compress);
  EXPECT_DOUBLE_EQ(d.memory_fraction, 0.7);
}

TEST(DecodePlanTest, RoundTripThroughEncode) {
  PlanParams p;
  p.broadcast_join_threshold_mb = 42;
  p.shuffle_partitions = 333;
  p.advisory_partition_size_mb = 100;
  std::vector<double> conf = DefaultSparkConfig();
  EncodePlan(p, &conf);
  const PlanParams d = DecodePlan(conf);
  EXPECT_DOUBLE_EQ(d.broadcast_join_threshold_mb, 42);
  EXPECT_EQ(d.shuffle_partitions, 333);
  EXPECT_DOUBLE_EQ(d.advisory_partition_size_mb, 100);
}

TEST(DecodeStageTest, RoundTripThroughEncode) {
  StageParams s;
  s.rebalance_small_factor = 0.33;
  s.coalesce_min_partition_size_mb = 8;
  std::vector<double> conf = DefaultSparkConfig();
  EncodeStage(s, &conf);
  const StageParams d = DecodeStage(conf);
  EXPECT_DOUBLE_EQ(d.rebalance_small_factor, 0.33);
  EXPECT_DOUBLE_EQ(d.coalesce_min_partition_size_mb, 8);
}

TEST(DecodeTest, ShortVectorFallsBackToDefaults) {
  const ContextParams c = DecodeContext({});
  EXPECT_EQ(c.executor_cores, 4);  // Spark-ish default in this space
  EXPECT_EQ(c.executor_instances, 4);
}

TEST(ContextParamsTest, DerivedQuantities) {
  ContextParams c;
  c.executor_cores = 4;
  c.executor_instances = 3;
  c.executor_memory_gb = 8;
  c.memory_fraction = 0.5;
  EXPECT_EQ(c.TotalCores(), 12);
  EXPECT_DOUBLE_EQ(c.MemoryPerTaskMb(), 8 * 1024.0 * 0.5 / 4);
}

TEST(DefaultConfigTest, MatchesSparkDefaults) {
  const auto d = DefaultSparkConfig();
  EXPECT_DOUBLE_EQ(d[kShufflePartitions], 200);
  EXPECT_DOUBLE_EQ(d[kBroadcastJoinThresholdMb], 10);
  EXPECT_DOUBLE_EQ(d[kShuffledHashJoinThresholdMb], 0);
  EXPECT_DOUBLE_EQ(d[kMemoryFraction], 0.6);
  EXPECT_DOUBLE_EQ(d[kShuffleCompress], 1);
}

}  // namespace
}  // namespace sparkopt
