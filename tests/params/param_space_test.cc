#include "params/param_space.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sparkopt {
namespace {

ParamSpec FloatSpec(double lo, double hi, bool log_scale = false) {
  ParamSpec s;
  s.name = "f";
  s.type = ParamType::kFloat;
  s.lo = lo;
  s.hi = hi;
  s.log_scale = log_scale;
  s.default_value = lo;
  return s;
}

TEST(ParamSpecTest, LinearNormalizeRoundTrip) {
  auto s = FloatSpec(10, 20);
  EXPECT_DOUBLE_EQ(s.Normalize(15), 0.5);
  EXPECT_DOUBLE_EQ(s.Denormalize(0.5), 15);
  EXPECT_DOUBLE_EQ(s.Denormalize(s.Normalize(17.3)), 17.3);
}

TEST(ParamSpecTest, LogScaleRoundTrip) {
  auto s = FloatSpec(1, 1024, /*log=*/true);
  EXPECT_NEAR(s.Denormalize(0.5), 32.0, 1e-9);
  EXPECT_NEAR(s.Normalize(32.0), 0.5, 1e-12);
}

TEST(ParamSpecTest, SanitizeClampsAndRounds) {
  ParamSpec s = FloatSpec(1, 10);
  s.type = ParamType::kInt;
  EXPECT_DOUBLE_EQ(s.Sanitize(3.7), 4.0);
  EXPECT_DOUBLE_EQ(s.Sanitize(-5), 1.0);
  EXPECT_DOUBLE_EQ(s.Sanitize(99), 10.0);
}

TEST(ParamSpecTest, BoolSanitize) {
  ParamSpec s = FloatSpec(0, 1);
  s.type = ParamType::kBool;
  EXPECT_DOUBLE_EQ(s.Sanitize(0.6), 1.0);
  EXPECT_DOUBLE_EQ(s.Sanitize(0.4), 0.0);
}

TEST(ParamSpecTest, NormalizeOutOfRangeClamps) {
  auto s = FloatSpec(0, 10);
  EXPECT_DOUBLE_EQ(s.Normalize(-1), 0.0);
  EXPECT_DOUBLE_EQ(s.Normalize(11), 1.0);
}

ParamSpace TwoDimSpace() {
  ParamSpec a = FloatSpec(0, 10);
  a.name = "a";
  ParamSpec b = FloatSpec(1, 100, /*log=*/true);
  b.name = "b";
  b.category = ParamCategory::kPlan;
  b.default_value = 10;
  return ParamSpace({a, b});
}

TEST(ParamSpaceTest, IndexOf) {
  auto space = TwoDimSpace();
  EXPECT_EQ(*space.IndexOf("a"), 0u);
  EXPECT_EQ(*space.IndexOf("b"), 1u);
  EXPECT_FALSE(space.IndexOf("zzz").ok());
}

TEST(ParamSpaceTest, SubspaceFiltersByCategory) {
  auto space = TwoDimSpace();
  auto plan = space.Subspace(ParamCategory::kPlan);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan.spec(0).name, "b");
  EXPECT_EQ(space.CategoryIndices(ParamCategory::kPlan),
            (std::vector<size_t>{1}));
}

TEST(ParamSpaceTest, DefaultsAreSanitized) {
  auto d = TwoDimSpace().Defaults();
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_DOUBLE_EQ(d[1], 10.0);
}

TEST(ParamSpaceTest, VectorNormalizeRoundTrip) {
  auto space = TwoDimSpace();
  std::vector<double> raw = {5.0, 10.0};
  auto unit = space.Normalize(raw);
  auto back = space.Denormalize(unit);
  EXPECT_NEAR(back[0], raw[0], 1e-9);
  EXPECT_NEAR(back[1], raw[1], 1e-9);
}

TEST(ParamSpaceTest, SanitizeResizesShortVector) {
  auto space = TwoDimSpace();
  auto out = space.Sanitize({5.0});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[1], 1.0);  // clamped to lo
}

TEST(ParamSpaceTest, NormalizedDistance) {
  auto space = TwoDimSpace();
  const double d = space.NormalizedDistance({0, 1}, {10, 100});
  EXPECT_NEAR(d, std::sqrt(2.0), 1e-9);
  EXPECT_DOUBLE_EQ(space.NormalizedDistance({5, 10}, {5, 10}), 0.0);
}

}  // namespace
}  // namespace sparkopt
