#include "params/sampler.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "params/spark_params.h"

namespace sparkopt {
namespace {

TEST(SampleUniformTest, CountAndBounds) {
  Rng rng(1);
  const auto& space = SparkParamSpace();
  auto samples = SampleUniform(space, 100, &rng);
  EXPECT_EQ(samples.size(), 100u);
  for (const auto& s : samples) {
    ASSERT_EQ(s.size(), space.size());
    for (size_t j = 0; j < s.size(); ++j) {
      EXPECT_GE(s[j], space.spec(j).lo);
      EXPECT_LE(s[j], space.spec(j).hi);
    }
  }
}

TEST(SampleUniformTest, Deterministic) {
  Rng a(5), b(5);
  const auto& space = SparkParamSpace();
  EXPECT_EQ(SampleUniform(space, 10, &a), SampleUniform(space, 10, &b));
}

// LHS property: each dimension's samples hit every stratum exactly once.
class LhsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LhsPropertyTest, StratificationHolds) {
  Rng rng(GetParam());
  // Continuous space so strata are exact.
  std::vector<ParamSpec> specs(4);
  for (int j = 0; j < 4; ++j) {
    specs[j].name = "x" + std::to_string(j);
    // Qualified: gtest's TestWithParam also defines a ParamType member.
    specs[j].type = ::sparkopt::ParamType::kFloat;
    specs[j].lo = 0.0;
    specs[j].hi = 1.0;
  }
  ParamSpace space(specs);
  const size_t n = 32;
  auto samples = SampleLatinHypercube(space, n, &rng);
  ASSERT_EQ(samples.size(), n);
  for (size_t j = 0; j < space.size(); ++j) {
    std::vector<bool> stratum_hit(n, false);
    for (const auto& s : samples) {
      const auto k = static_cast<size_t>(s[j] * n);
      ASSERT_LT(k, n);
      EXPECT_FALSE(stratum_hit[k]) << "stratum hit twice in dim " << j;
      stratum_hit[k] = true;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LhsPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(LhsMarginTest, SamplesStayInsideMargin) {
  Rng rng(3);
  std::vector<ParamSpec> specs(2);
  for (int j = 0; j < 2; ++j) {
    specs[j].name = "x";
    specs[j].type = ParamType::kFloat;
    specs[j].lo = 0.0;
    specs[j].hi = 1.0;
  }
  ParamSpace space(specs);
  auto samples = SampleLatinHypercube(space, 64, &rng, /*margin=*/0.2);
  for (const auto& s : samples) {
    for (double v : s) {
      EXPECT_GE(v, 0.2 - 1e-12);
      EXPECT_LE(v, 0.8 + 1e-12);
    }
  }
}

TEST(SampleGridTest, FullFactorialCount) {
  std::vector<ParamSpec> specs(3);
  for (int j = 0; j < 3; ++j) {
    specs[j].name = "x";
    specs[j].type = ParamType::kFloat;
    specs[j].lo = 0.0;
    specs[j].hi = 1.0;
  }
  ParamSpace space(specs);
  auto grid = SampleGrid(space, 2, 1000);
  EXPECT_EQ(grid.size(), 8u);  // 2^3
  // Corners only.
  for (const auto& g : grid) {
    for (double v : g) {
      EXPECT_TRUE(v == 0.0 || v == 1.0);
    }
  }
}

TEST(SampleGridTest, CappedByMaxPoints) {
  std::vector<ParamSpec> specs(5);
  for (int j = 0; j < 5; ++j) {
    specs[j].name = "x";
    specs[j].type = ParamType::kFloat;
    specs[j].lo = 0.0;
    specs[j].hi = 1.0;
  }
  ParamSpace space(specs);
  EXPECT_EQ(SampleGrid(space, 3, 50).size(), 50u);
}

TEST(SampleGridTest, SingleLevelUsesMidpoint) {
  std::vector<ParamSpec> specs(1);
  specs[0].name = "x";
  specs[0].type = ParamType::kFloat;
  specs[0].lo = 0.0;
  specs[0].hi = 10.0;
  ParamSpace space(specs);
  auto grid = SampleGrid(space, 1, 10);
  ASSERT_EQ(grid.size(), 1u);
  EXPECT_DOUBLE_EQ(grid[0][0], 5.0);
}

TEST(PerturbTest, StaysInDomainAndMoves) {
  Rng rng(9);
  const auto& space = SparkParamSpace();
  const auto base = space.Defaults();
  bool moved = false;
  for (int i = 0; i < 20; ++i) {
    auto p = Perturb(space, base, 0.1, &rng);
    for (size_t j = 0; j < p.size(); ++j) {
      EXPECT_GE(p[j], space.spec(j).lo);
      EXPECT_LE(p[j], space.spec(j).hi);
      if (p[j] != base[j]) moved = true;
    }
  }
  EXPECT_TRUE(moved);
}

TEST(CrossoverTest, OnePointSwapsSuffix) {
  std::vector<double> a = {1, 1, 1, 1};
  std::vector<double> b = {2, 2, 2, 2};
  auto [c1, c2] = CrossoverOnePoint(a, b, 2);
  EXPECT_EQ(c1, (std::vector<double>{1, 1, 2, 2}));
  EXPECT_EQ(c2, (std::vector<double>{2, 2, 1, 1}));
}

TEST(CrossoverTest, CutBeyondLengthIsIdentity) {
  std::vector<double> a = {1, 2};
  std::vector<double> b = {3, 4};
  auto [c1, c2] = CrossoverOnePoint(a, b, 10);
  EXPECT_EQ(c1, a);
  EXPECT_EQ(c2, b);
}

}  // namespace
}  // namespace sparkopt
