#include "service/tuning_service.h"

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "service/model_bootstrap.h"
#include "tuner/tuner.h"
#include "workload/tpch.h"

namespace sparkopt {
namespace {

HmoocOptions FastHmooc() {
  HmoocOptions h;
  h.theta_c_samples = 24;
  h.clusters = 6;
  h.theta_p_samples = 32;
  h.enriched_samples = 8;
  return h;
}

std::shared_ptr<ServiceArtifacts> MakeArtifacts(bool learned) {
  auto a = std::make_shared<ServiceArtifacts>();
  a->name = learned ? "learned" : "analytic";
  a->hmooc = FastHmooc();
  const auto* catalog = a->AddCatalog(TpchCatalog(10));
  EXPECT_TRUE(a->AddQuery(*MakeTpchQuery(3, catalog)).ok());
  EXPECT_TRUE(a->AddQuery(*MakeTpchQuery(5, catalog)).ok());
  if (learned) {
    BootstrapOptions bo;
    bo.samples_per_query = 12;
    bo.hidden = {16, 8};
    bo.epochs = 20;
    auto reg = FitSubQRegressor(
        {a->FindQuery("TPCH-Q3"), a->FindQuery("TPCH-Q5")}, a->cluster,
        a->cost_params, a->prices, bo);
    EXPECT_TRUE(reg.ok()) << reg.status().ToString();
    a->subq_model = *reg;
  }
  return a;
}

/// The standalone reference the service must reproduce bit for bit.
MooRunResult DirectSolve(const ServiceArtifacts& a, const std::string& query,
                         uint64_t service_seed) {
  TunerOptions to;
  to.cluster = a.cluster;
  to.cost_params = a.cost_params;
  to.prices = a.prices;
  to.hmooc = a.hmooc;
  to.eval_cache_capacity = a.eval_cache_capacity;
  to.seed = service_seed;
  if (a.subq_model.trained()) to.learned_subq_model = &a.subq_model;
  Tuner tuner(to);
  auto out = tuner.Run(*a.FindQuery(query), TuningMethod::kHmooc3);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return out->moo;
}

void ExpectSameFront(const MooRunResult& got, const MooRunResult& want) {
  ASSERT_EQ(got.pareto.size(), want.pareto.size());
  for (size_t i = 0; i < got.pareto.size(); ++i) {
    // operator== on vector<double> is exact: any drift is a bug.
    EXPECT_EQ(got.pareto[i].objectives, want.pareto[i].objectives)
        << "objectives of solution " << i;
    EXPECT_EQ(got.pareto[i].conf, want.pareto[i].conf)
        << "conf of solution " << i;
    EXPECT_EQ(got.pareto[i].per_subq_conf, want.pareto[i].per_subq_conf)
        << "per-subq conf of solution " << i;
  }
}

TEST(TuningServiceTest, SolvesAreBitwiseIdenticalToDirectTuner) {
  for (const bool learned : {false, true}) {
    auto artifacts = MakeArtifacts(learned);
    ArtifactRegistry registry;
    registry.Publish(artifacts);
    const MooRunResult want_q3 = DirectSolve(*artifacts, "TPCH-Q3", 17);
    const MooRunResult want_q5 = DirectSolve(*artifacts, "TPCH-Q5", 17);

    for (const int sessions : {1, 2, 4}) {
      TuningServiceOptions opts;
      opts.sessions = sessions;
      TuningService service(&registry, opts);
      // Several concurrent repeats per query: cache hits and coalesced
      // inference batches must not perturb a single bit.
      std::vector<std::future<Result<TuningServiceResult>>> futures;
      for (int rep = 0; rep < 3; ++rep) {
        futures.push_back(service.Submit({"TPCH-Q3"}));
        futures.push_back(service.Submit({"TPCH-Q5"}));
      }
      for (size_t i = 0; i < futures.size(); ++i) {
        auto res = futures[i].get();
        ASSERT_TRUE(res.ok())
            << "learned=" << learned << " sessions=" << sessions << ": "
            << res.status().ToString();
        const bool is_q3 = i % 2 == 0;
        ExpectSameFront(res->moo, is_q3 ? want_q3 : want_q5);
        EXPECT_EQ(res->used_learned_model, learned);
        EXPECT_EQ(res->artifact_version, artifacts->version);
        EXPECT_GT(res->solve_seconds, 0.0);
      }
    }
  }
}

TEST(TuningServiceTest, RepeatedQueriesHitTheSharedCache) {
  ArtifactRegistry registry;
  registry.Publish(MakeArtifacts(/*learned=*/false));
  TuningServiceOptions opts;
  opts.sessions = 1;
  TuningService service(&registry, opts);

  // A cold solve misses on every distinct (conf, subq) it evaluates; the
  // hits it does record come from intra-solve duplicates.
  auto first = service.Submit({"TPCH-Q3"}).get();
  ASSERT_TRUE(first.ok());
  EXPECT_GT(first->shared_cache_misses, 0u);

  auto second = service.Submit({"TPCH-Q3"}).get();
  ASSERT_TRUE(second.ok());
  // The solver's sampling is seeded per (service seed, query seed): the
  // repeat draws the same candidates and hits on every evaluation.
  EXPECT_EQ(second->shared_cache_misses, 0u);
  EXPECT_EQ(second->shared_cache_hits,
            first->shared_cache_hits + first->shared_cache_misses);
  ExpectSameFront(second->moo, first->moo);

  ASSERT_NE(service.shared_cache(), nullptr);
  EXPECT_GT(service.shared_cache()->hit_rate(), 0.0);
}

TEST(TuningServiceTest, DistinctQueriesNeverShareCacheEntries) {
  ArtifactRegistry registry;
  registry.Publish(MakeArtifacts(/*learned=*/false));
  TuningServiceOptions opts;
  opts.sessions = 1;
  TuningService service(&registry, opts);
  auto q3 = service.Submit({"TPCH-Q3"}).get();
  ASSERT_TRUE(q3.ok());
  // Same service, different query: the per-query key salt means q3's
  // entries contribute nothing, so q5 behaves exactly as it would have
  // against an empty cache (its hits are only intra-solve duplicates).
  auto warm_q5 = service.Submit({"TPCH-Q5"}).get();
  ASSERT_TRUE(warm_q5.ok());

  ArtifactRegistry fresh_registry;
  fresh_registry.Publish(MakeArtifacts(/*learned=*/false));
  TuningService fresh(&fresh_registry, opts);
  auto cold_q5 = fresh.Submit({"TPCH-Q5"}).get();
  ASSERT_TRUE(cold_q5.ok());
  EXPECT_EQ(warm_q5->shared_cache_hits, cold_q5->shared_cache_hits);
  EXPECT_EQ(warm_q5->shared_cache_misses, cold_q5->shared_cache_misses);
  EXPECT_GT(warm_q5->shared_cache_misses, 0u);
}

TEST(TuningServiceTest, ZeroCapacityQueueRejectsEverything) {
  ArtifactRegistry registry;
  registry.Publish(MakeArtifacts(/*learned=*/false));
  TuningServiceOptions opts;
  opts.queue_capacity = 0;
  TuningService service(&registry, opts);
  auto res = service.Submit({"TPCH-Q3"}).get();
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(service.stats().rejected_queue_full, 1u);
}

TEST(TuningServiceTest, BoundedQueueShedsBurstOverload) {
  ArtifactRegistry registry;
  registry.Publish(MakeArtifacts(/*learned=*/false));
  TuningServiceOptions opts;
  opts.sessions = 1;
  opts.queue_capacity = 2;
  TuningService service(&registry, opts);
  std::vector<std::future<Result<TuningServiceResult>>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(service.Submit({"TPCH-Q3"}));
  }
  uint64_t ok = 0, rejected = 0;
  for (auto& f : futures) {
    auto res = f.get();
    if (res.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(res.status().code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  EXPECT_EQ(ok + rejected, 50u);
  // Submitting 50 requests takes microseconds against millisecond
  // solves: the bound must have kicked in.
  EXPECT_GT(rejected, 0u);
  const auto stats = service.stats();
  EXPECT_EQ(stats.rejected_queue_full, rejected);
  EXPECT_EQ(stats.completed, ok);
}

TEST(TuningServiceTest, TenantQuotasAreEnforcedIndependently) {
  ArtifactRegistry registry;
  registry.Publish(MakeArtifacts(/*learned=*/false));
  TuningServiceOptions opts;
  opts.sessions = 1;
  // rate 0: the burst is the whole budget — deterministic regardless of
  // wall time.
  opts.quotas["metered"] = TenantQuota{0.0, 2.0};
  TuningService service(&registry, opts);

  auto a = service.Submit({"TPCH-Q3", "metered"});
  auto b = service.Submit({"TPCH-Q3", "metered"});
  auto c = service.Submit({"TPCH-Q3", "metered"});
  // Unlisted tenants are unthrottled.
  auto d = service.Submit({"TPCH-Q3", "free"});

  EXPECT_TRUE(a.get().ok());
  EXPECT_TRUE(b.get().ok());
  auto over = c.get();
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(d.get().ok());
  EXPECT_EQ(service.stats().rejected_quota, 1u);
}

TEST(TuningServiceTest, UnknownQueryResolvesNotFound) {
  ArtifactRegistry registry;
  registry.Publish(MakeArtifacts(/*learned=*/false));
  TuningService service(&registry, {});
  auto res = service.Submit({"TPCH-Q99"}).get();
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(service.stats().failed, 1u);
}

TEST(TuningServiceTest, EmptyRegistryResolvesFailedPrecondition) {
  ArtifactRegistry registry;
  TuningService service(&registry, {});
  auto res = service.Submit({"TPCH-Q3"}).get();
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kFailedPrecondition);
}

TEST(TuningServiceTest, AbortShedsBacklogWithUnavailable) {
  ArtifactRegistry registry;
  registry.Publish(MakeArtifacts(/*learned=*/false));
  TuningServiceOptions opts;
  opts.sessions = 1;
  opts.queue_capacity = 256;
  auto service = std::make_unique<TuningService>(&registry, opts);
  std::vector<std::future<Result<TuningServiceResult>>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(service->Submit({"TPCH-Q3"}));
  }
  service->Shutdown(ThreadPool::ShutdownMode::kAbort);
  uint64_t completed = 0, shed = 0;
  for (auto& f : futures) {
    auto res = f.get();  // every future must resolve
    if (res.ok()) {
      ++completed;
    } else {
      ASSERT_EQ(res.status().code(), StatusCode::kUnavailable);
      ++shed;
    }
  }
  EXPECT_EQ(completed + shed, 32u);
  EXPECT_GT(shed, 0u);
  const auto stats = service->stats();
  EXPECT_EQ(stats.shed, shed);
  EXPECT_EQ(stats.completed, completed);
  // Submissions after shutdown resolve too (shed immediately).
  auto late = service->Submit({"TPCH-Q3"}).get();
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kUnavailable);
  service.reset();  // drain-on-destroy after abort is a no-op
}

TEST(TuningServiceTest, HotSwapChangesVersionForNewRequestsOnly) {
  ArtifactRegistry registry;
  const uint64_t v1 = registry.Publish(MakeArtifacts(/*learned=*/false));
  TuningServiceOptions opts;
  opts.sessions = 1;
  TuningService service(&registry, opts);

  auto before = service.Submit({"TPCH-Q3"}).get();
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->artifact_version, v1);

  const uint64_t v2 = registry.Publish(MakeArtifacts(/*learned=*/true));
  auto after = service.Submit({"TPCH-Q3"}).get();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->artifact_version, v2);
  EXPECT_TRUE(after->used_learned_model);
  // Version is part of the cache salt: the v2 solve shares no entries
  // with v1 even for the identical query, so it recomputes (misses) on
  // every distinct evaluation instead of reusing v1's.
  EXPECT_GT(after->shared_cache_misses, 0u);
}

TEST(TuningServiceTest, PreferenceSelectsFromTheSameFront) {
  ArtifactRegistry registry;
  registry.Publish(MakeArtifacts(/*learned=*/false));
  TuningServiceOptions opts;
  opts.sessions = 1;
  TuningService service(&registry, opts);
  auto latency_first = service.Submit({"TPCH-Q3", "t", {0.99, 0.01}}).get();
  auto cost_first = service.Submit({"TPCH-Q3", "t", {0.01, 0.99}}).get();
  ASSERT_TRUE(latency_first.ok());
  ASSERT_TRUE(cost_first.ok());
  // Same front (cache-hit repeat), different WUN pick.
  ExpectSameFront(cost_first->moo, latency_first->moo);
  if (latency_first->moo.pareto.size() > 1) {
    EXPECT_LE(latency_first->chosen.objectives[0],
              cost_first->chosen.objectives[0]);
    EXPECT_GE(latency_first->chosen.objectives[1],
              cost_first->chosen.objectives[1]);
  }
}

TEST(TuningServiceTest, PreferenceDimensionMismatchIsRejected) {
  ArtifactRegistry registry;
  registry.Publish(MakeArtifacts(/*learned=*/false));
  TuningService service(&registry, {});
  auto res = service.Submit({"TPCH-Q3", "t", {1.0, 2.0, 3.0}}).get();
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sparkopt
