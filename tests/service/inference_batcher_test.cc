#include "service/inference_batcher.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/rng.h"

namespace sparkopt {
namespace {

constexpr int kDim = 6;
constexpr int kOut = 2;

Regressor TrainTinyRegressor(uint64_t seed) {
  Rng rng(seed);
  Matrix x, y;
  for (int i = 0; i < 128; ++i) {
    std::vector<double> row(kDim);
    for (auto& v : row) v = rng.Uniform(0.0, 10.0);
    double s = 0.0;
    for (double v : row) s += v;
    x.push_back(row);
    y.push_back({s, s * 0.5 + row[0]});
  }
  Regressor reg(kDim, kOut, {8}, seed);
  Mlp::TrainOptions opts;
  opts.epochs = 10;
  opts.batch_size = 32;
  opts.seed = seed;
  EXPECT_TRUE(reg.Fit(x, y, opts).ok());
  return reg;
}

std::vector<double> RandomRows(size_t rows, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(rows * kDim);
  for (auto& v : x) v = rng.Uniform(0.0, 10.0);
  return x;
}

void DirectPredict(const Regressor& reg, const double* x, size_t rows,
                   double* out) {
  Mlp::BatchScratch scratch;
  reg.PredictBatchInto(x, rows, out, &scratch);
}

TEST(InferenceBatcherTest, CoalescedPredictionsAreBitwiseIdentical) {
  const Regressor reg = TrainTinyRegressor(5);
  constexpr int kThreads = 8;
  constexpr int kIters = 25;
  constexpr size_t kRows = 3;

  // Expected outputs computed directly, single-threaded.
  std::vector<std::vector<double>> inputs;
  std::vector<std::vector<double>> expected;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kIters; ++i) {
      const auto x = RandomRows(
          kRows, HashCombine(static_cast<uint64_t>(t), i));
      std::vector<double> out(kRows * kOut);
      DirectPredict(reg, x.data(), kRows, out.data());
      inputs.push_back(x);
      expected.push_back(out);
    }
  }

  InferenceBatcherOptions opts;
  opts.max_rows = 16;
  opts.max_wait_us = 200;
  InferenceBatcher batcher(opts);
  std::vector<std::vector<double>> got(inputs.size());
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const size_t idx = static_cast<size_t>(t) * kIters + i;
        got[idx].assign(kRows * kOut, 0.0);
        batcher.Predict(reg, inputs[idx].data(), kRows, got[idx].data());
      }
    });
  }
  for (auto& th : threads) th.join();

  for (size_t i = 0; i < inputs.size(); ++i) {
    ASSERT_EQ(got[i].size(), expected[i].size());
    for (size_t j = 0; j < got[i].size(); ++j) {
      // Bitwise: PredictBatchInto is batch-composition-invariant per row,
      // so coalescing across threads must not move a single ulp.
      EXPECT_EQ(got[i][j], expected[i][j]) << "request " << i << " el " << j;
    }
  }
  const auto stats = batcher.stats();
  EXPECT_EQ(stats.requests, inputs.size());
  EXPECT_EQ(stats.rows, inputs.size() * kRows);
}

TEST(InferenceBatcherTest, SaturatingRequestsBypassTheCollector) {
  const Regressor reg = TrainTinyRegressor(6);
  InferenceBatcherOptions opts;
  opts.max_rows = 4;
  InferenceBatcher batcher(opts);
  const auto x = RandomRows(4, 1);
  std::vector<double> direct(4 * kOut), via(4 * kOut);
  DirectPredict(reg, x.data(), 4, direct.data());
  batcher.Predict(reg, x.data(), 4, via.data());
  EXPECT_EQ(via, direct);
  const auto stats = batcher.stats();
  EXPECT_EQ(stats.solo, 1u);
  EXPECT_EQ(stats.full_flushes + stats.timeout_flushes, 0u);
}

TEST(InferenceBatcherTest, DisabledBatcherDispatchesDirectly) {
  const Regressor reg = TrainTinyRegressor(7);
  InferenceBatcherOptions opts;
  opts.enabled = false;
  InferenceBatcher batcher(opts);
  const auto x = RandomRows(2, 2);
  std::vector<double> direct(2 * kOut), via(2 * kOut);
  DirectPredict(reg, x.data(), 2, direct.data());
  batcher.Predict(reg, x.data(), 2, via.data());
  EXPECT_EQ(via, direct);
  EXPECT_EQ(batcher.stats().solo, 1u);
}

TEST(InferenceBatcherTest, LoneSmallRequestFlushesOnTimeout) {
  const Regressor reg = TrainTinyRegressor(8);
  InferenceBatcherOptions opts;
  opts.max_rows = 64;
  opts.max_wait_us = 50;
  InferenceBatcher batcher(opts);
  const auto x = RandomRows(1, 3);
  std::vector<double> direct(kOut), via(kOut);
  DirectPredict(reg, x.data(), 1, direct.data());
  batcher.Predict(reg, x.data(), 1, via.data());  // must not hang
  EXPECT_EQ(via, direct);
  const auto stats = batcher.stats();
  EXPECT_EQ(stats.timeout_flushes, 1u);
  EXPECT_EQ(stats.full_flushes, 0u);
  EXPECT_EQ(stats.solo, 0u);
}

TEST(InferenceBatcherTest, WindowFillTriggersImmediateFlush) {
  const Regressor reg = TrainTinyRegressor(9);
  InferenceBatcherOptions opts;
  opts.max_rows = 8;
  // Long leader deadline: if the size trigger failed, this test would
  // visibly stall (and the timeout counter would show it).
  opts.max_wait_us = 200000;
  InferenceBatcher batcher(opts);

  constexpr int kThreads = 8;  // 1 row each, exactly one window
  std::vector<std::vector<double>> xs, outs(kThreads);
  for (int t = 0; t < kThreads; ++t) xs.push_back(RandomRows(1, 100 + t));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      outs[t].assign(kOut, 0.0);
      batcher.Predict(reg, xs[t].data(), 1, outs[t].data());
    });
  }
  for (auto& th : threads) th.join();

  for (int t = 0; t < kThreads; ++t) {
    std::vector<double> direct(kOut);
    DirectPredict(reg, xs[t].data(), 1, direct.data());
    EXPECT_EQ(outs[t], direct) << "thread " << t;
  }
  const auto stats = batcher.stats();
  EXPECT_EQ(stats.requests, static_cast<uint64_t>(kThreads));
  // The eighth row fills the window; whoever pushed it flushed "full".
  EXPECT_GE(stats.full_flushes, 1u);
  EXPECT_GT(stats.coalesced_rows, 0u);
}

TEST(InferenceBatcherTest, MixedRegressorsNeverShareAKernelCall) {
  const Regressor a = TrainTinyRegressor(10);
  const Regressor b = TrainTinyRegressor(11);
  InferenceBatcherOptions opts;
  opts.max_rows = 16;
  opts.max_wait_us = 200;
  InferenceBatcher batcher(opts);

  constexpr int kPerModel = 8;
  std::vector<std::vector<double>> xs;
  for (int i = 0; i < 2 * kPerModel; ++i) xs.push_back(RandomRows(1, 50 + i));
  std::vector<std::vector<double>> outs(xs.size());
  std::vector<std::thread> threads;
  for (size_t i = 0; i < xs.size(); ++i) {
    threads.emplace_back([&, i] {
      const Regressor& reg = i < kPerModel ? a : b;
      outs[i].assign(kOut, 0.0);
      batcher.Predict(reg, xs[i].data(), 1, outs[i].data());
    });
  }
  for (auto& th : threads) th.join();

  for (size_t i = 0; i < xs.size(); ++i) {
    const Regressor& reg = i < kPerModel ? a : b;
    std::vector<double> direct(kOut);
    DirectPredict(reg, xs[i].data(), 1, direct.data());
    EXPECT_EQ(outs[i], direct) << "request " << i;
  }
}

}  // namespace
}  // namespace sparkopt
