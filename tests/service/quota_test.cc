#include "service/quota.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace sparkopt {
namespace {

TEST(QuotaTrackerTest, BurstGrantsInitialTokens) {
  QuotaTracker q(/*rate_per_sec=*/1.0, /*burst=*/3.0);
  EXPECT_TRUE(q.TryAcquire(0.0));
  EXPECT_TRUE(q.TryAcquire(0.0));
  EXPECT_TRUE(q.TryAcquire(0.0));
  EXPECT_FALSE(q.TryAcquire(0.0));
}

TEST(QuotaTrackerTest, RefillsAtRate) {
  QuotaTracker q(/*rate_per_sec=*/2.0, /*burst=*/1.0);
  EXPECT_TRUE(q.TryAcquire(0.0));
  EXPECT_FALSE(q.TryAcquire(0.0));
  // 0.5s at 2 tokens/s regains exactly the one spent.
  EXPECT_TRUE(q.TryAcquire(0.5));
  EXPECT_FALSE(q.TryAcquire(0.5));
}

TEST(QuotaTrackerTest, BalanceCapsAtBurst) {
  QuotaTracker q(/*rate_per_sec=*/100.0, /*burst=*/2.0);
  EXPECT_DOUBLE_EQ(q.Available(1000.0), 2.0);
}

TEST(QuotaTrackerTest, ZeroRateNeverRefills) {
  QuotaTracker q(/*rate_per_sec=*/0.0, /*burst=*/2.0);
  EXPECT_TRUE(q.TryAcquire(0.0));
  EXPECT_TRUE(q.TryAcquire(10.0));
  EXPECT_FALSE(q.TryAcquire(1e9));
}

TEST(QuotaTrackerTest, ClockRegressionsAreClamped) {
  QuotaTracker q(/*rate_per_sec=*/1.0, /*burst=*/1.0);
  EXPECT_TRUE(q.TryAcquire(5.0));
  // Going backwards must not mint tokens (dt clamps to 0).
  EXPECT_FALSE(q.TryAcquire(4.0));
  // Refill resumes from the high-water mark.
  EXPECT_TRUE(q.TryAcquire(6.0));
}

TEST(QuotaTrackerTest, ConcurrentAcquiresNeverOverspend) {
  QuotaTracker q(/*rate_per_sec=*/0.0, /*burst=*/64.0);
  std::atomic<int> granted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 32; ++i) {
        if (q.TryAcquire(0.0)) granted.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(granted.load(), 64);
}

}  // namespace
}  // namespace sparkopt
