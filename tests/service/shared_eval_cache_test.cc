#include "service/shared_eval_cache.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/rng.h"

namespace sparkopt {
namespace {

/// Payload as a pure function of the key: any hit whose fields disagree
/// with this is a torn read.
SubQObjectives ValueOf(uint64_t key) {
  SubQObjectives v;
  v.analytical_latency = static_cast<double>(key & 0xFFFF) + 0.5;
  v.io_bytes = static_cast<double>(key >> 16) * 2.0;
  v.cost = static_cast<double>(key % 97) * 0.125;
  return v;
}

TEST(SharedEvalCacheTest, RoundTripsAcrossShards) {
  SharedEvalCache cache({/*shards=*/8, /*capacity_per_shard=*/1024});
  EXPECT_EQ(cache.capacity(), 8u * 1024u);
  // Keys spread over the full 64-bit range: shard routing uses the high
  // bits, slot probing the low bits.
  Rng rng(11);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 500; ++i) keys.push_back(rng.Next());
  for (uint64_t k : keys) cache.Insert(k, ValueOf(k));
  for (uint64_t k : keys) {
    SubQObjectives got;
    ASSERT_TRUE(cache.Lookup(k, &got)) << "key " << k;
    EXPECT_EQ(got.analytical_latency, ValueOf(k).analytical_latency);
    EXPECT_EQ(got.io_bytes, ValueOf(k).io_bytes);
    EXPECT_EQ(got.cost, ValueOf(k).cost);
  }
  EXPECT_EQ(cache.hits(), 500u);
  EXPECT_EQ(cache.occupancy(), 500u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 1.0);
}

TEST(SharedEvalCacheTest, MissesAreCounted) {
  SharedEvalCache cache({4, 1024});
  SubQObjectives got;
  EXPECT_FALSE(cache.Lookup(123, &got));
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.0);
}

TEST(SharedEvalCacheTest, ClearResetsEverything) {
  SharedEvalCache cache({2, 1024});
  cache.Insert(42, ValueOf(42));
  SubQObjectives got;
  EXPECT_TRUE(cache.Lookup(42, &got));
  cache.Clear();
  EXPECT_EQ(cache.occupancy(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_FALSE(cache.Lookup(42, &got));
}

TEST(SharedEvalCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  SharedEvalCache cache({/*shards=*/5, /*capacity_per_shard=*/1024});
  EXPECT_EQ(cache.capacity(), 8u * 1024u);
}

// The TSan target for the service: concurrent writers and readers over a
// deliberately small cache, so insert races, seqlock-guarded reads, and
// CLOCK eviction all fire constantly. Correctness claim: a Lookup either
// misses or returns the exact pure-function payload of its key.
TEST(SharedEvalCacheTest, ConcurrentStressNeverTearsValues) {
  SharedEvalCache cache({/*shards=*/2, /*capacity_per_shard=*/1024});
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;
  // Key space ~4x the slot count: heavy eviction pressure, frequent
  // same-key collisions between threads.
  constexpr uint64_t kKeySpace = 8192;

  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> hits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      for (int i = 0; i < kOpsPerThread; ++i) {
        // Spread keys across the hash range so both shards see traffic.
        const uint64_t key =
            HashCombine(0xABCD, rng.Next() % kKeySpace) | 2;
        if (i % 3 == 0) {
          cache.Insert(key, ValueOf(key));
        } else {
          SubQObjectives got;
          if (cache.Lookup(key, &got)) {
            hits.fetch_add(1, std::memory_order_relaxed);
            const SubQObjectives want = ValueOf(key);
            if (got.analytical_latency != want.analytical_latency ||
                got.io_bytes != want.io_bytes || got.cost != want.cost) {
              torn.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(torn.load(), 0u);
  // Sanity: the workload actually exercised the cache.
  EXPECT_GT(hits.load(), 0u);
  EXPECT_GT(cache.occupancy(), 0u);
  EXPECT_LE(cache.occupancy(), cache.capacity());
}

}  // namespace
}  // namespace sparkopt
