#include "service/load_gen.h"

#include <gtest/gtest.h>

namespace sparkopt {
namespace {

TEST(LoadGenTest, ScheduleIsBitwiseDeterministic) {
  const auto a = PoissonArrivalSchedule(50.0, 1000, 7);
  const auto b = PoissonArrivalSchedule(50.0, 1000, 7);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "arrival " << i;
  }
}

TEST(LoadGenTest, SeedChangesTheSchedule) {
  const auto a = PoissonArrivalSchedule(50.0, 100, 7);
  const auto b = PoissonArrivalSchedule(50.0, 100, 8);
  EXPECT_NE(a, b);
}

TEST(LoadGenTest, ArrivalsAscendAndMeanGapMatchesRate) {
  const double rate = 200.0;
  const auto t = PoissonArrivalSchedule(rate, 20000, 3);
  ASSERT_EQ(t.size(), 20000u);
  EXPECT_GT(t[0], 0.0);
  for (size_t i = 1; i < t.size(); ++i) {
    EXPECT_GE(t[i], t[i - 1]);
  }
  // Mean interarrival converges on 1/rate (law of large numbers; 20k
  // draws put the sample mean well within 5%).
  const double mean_gap = t.back() / static_cast<double>(t.size());
  EXPECT_NEAR(mean_gap, 1.0 / rate, 0.05 / rate);
}

TEST(LoadGenTest, InvalidInputsYieldEmptySchedule) {
  EXPECT_TRUE(PoissonArrivalSchedule(0.0, 10, 1).empty());
  EXPECT_TRUE(PoissonArrivalSchedule(-1.0, 10, 1).empty());
  EXPECT_TRUE(PoissonArrivalSchedule(10.0, 0, 1).empty());
}

}  // namespace
}  // namespace sparkopt
