#include "service/artifact_registry.h"

#include <gtest/gtest.h>

#include "workload/tpch.h"

namespace sparkopt {
namespace {

std::shared_ptr<ServiceArtifacts> MakeBundle(const std::string& name) {
  auto a = std::make_shared<ServiceArtifacts>();
  a->name = name;
  const auto* catalog = a->AddCatalog(TpchCatalog(10));
  EXPECT_TRUE(a->AddQuery(*MakeTpchQuery(3, catalog)).ok());
  EXPECT_TRUE(a->AddQuery(*MakeTpchQuery(5, catalog)).ok());
  return a;
}

TEST(ArtifactRegistryTest, EmptyRegistryHasNoCurrent) {
  ArtifactRegistry reg;
  EXPECT_EQ(reg.Current(), nullptr);
  EXPECT_EQ(reg.current_version(), 0u);
}

TEST(ArtifactRegistryTest, PublishAssignsMonotonicVersions) {
  ArtifactRegistry reg;
  EXPECT_EQ(reg.Publish(MakeBundle("v1")), 1u);
  EXPECT_EQ(reg.Publish(MakeBundle("v2")), 2u);
  ASSERT_NE(reg.Current(), nullptr);
  EXPECT_EQ(reg.Current()->version, 2u);
  EXPECT_EQ(reg.Current()->name, "v2");
  EXPECT_EQ(reg.current_version(), 2u);
}

TEST(ArtifactRegistryTest, SnapshotSurvivesHotSwap) {
  ArtifactRegistry reg;
  reg.Publish(MakeBundle("old"));
  // An in-flight session pins its snapshot...
  std::shared_ptr<const ServiceArtifacts> snap = reg.Current();
  reg.Publish(MakeBundle("new"));
  // ...and keeps seeing one consistent version while new admissions get
  // the new bundle.
  EXPECT_EQ(snap->name, "old");
  EXPECT_EQ(snap->version, 1u);
  EXPECT_NE(snap->FindQuery("TPCH-Q3"), nullptr);
  EXPECT_EQ(reg.Current()->name, "new");
}

TEST(ArtifactRegistryTest, QueriesAreRoutedByName) {
  auto a = MakeBundle("b");
  EXPECT_EQ(a->num_queries(), 2u);
  ASSERT_NE(a->FindQuery("TPCH-Q3"), nullptr);
  EXPECT_EQ(a->FindQuery("TPCH-Q3")->name, "TPCH-Q3");
  EXPECT_EQ(a->FindQuery("nope"), nullptr);
}

TEST(ArtifactRegistryTest, DuplicateAndEmptyQueryNamesRejected) {
  ServiceArtifacts a;
  const auto* catalog = a.AddCatalog(TpchCatalog(10));
  EXPECT_TRUE(a.AddQuery(*MakeTpchQuery(3, catalog)).ok());
  EXPECT_FALSE(a.AddQuery(*MakeTpchQuery(3, catalog)).ok());
  Query unnamed = *MakeTpchQuery(5, catalog);
  unnamed.name.clear();
  EXPECT_FALSE(a.AddQuery(std::move(unnamed)).ok());
}

TEST(ArtifactRegistryTest, CatalogPointersStayStableAcrossAdds) {
  ServiceArtifacts a;
  const auto* c1 = a.AddCatalog(TpchCatalog(10));
  const auto first_table = (*c1)[0];
  // Adding more catalogs must not move the first one (queries hold raw
  // pointers into it).
  for (int i = 0; i < 8; ++i) a.AddCatalog(TpchCatalog(10));
  EXPECT_EQ((*c1)[0].name, first_table.name);
}

}  // namespace
}  // namespace sparkopt
