#include "plan/cardinality.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sparkopt {
namespace {

std::vector<TableStats> Catalog() {
  TableStats t;
  t.name = "t";
  t.rows = 1e6;
  t.row_bytes = 100;
  TableStats small = t;
  small.rows = 1e3;
  return {t, small};
}

LogicalPlan ScanFilterPlan(double scan_sel, double filter_sel) {
  LogicalPlan p;
  LogicalOperator scan;
  scan.type = OpType::kScan;
  scan.table_id = 0;
  scan.selectivity = scan_sel;
  scan.out_row_bytes = 100;
  const int s = p.AddOperator(scan);
  LogicalOperator f;
  f.type = OpType::kFilter;
  f.children = {s};
  f.selectivity = filter_sel;
  p.AddOperator(f);
  return p;
}

TEST(CardinalityTest, TrueRowsFollowSelectivities) {
  auto cat = Catalog();
  auto p = ScanFilterPlan(0.5, 0.1);
  ASSERT_TRUE(p.Build().ok());
  CboErrorModel err;
  ASSERT_TRUE(AnnotateCardinalities(cat, err, &p).ok());
  EXPECT_DOUBLE_EQ(p.op(0).true_rows, 5e5);
  EXPECT_DOUBLE_EQ(p.op(1).true_rows, 5e4);
  EXPECT_DOUBLE_EQ(p.op(1).true_bytes, 5e4 * 64.0);
}

TEST(CardinalityTest, ZeroErrorModelGivesAccurateScanEstimates) {
  auto cat = Catalog();
  auto p = ScanFilterPlan(1.0, 1.0);  // no predicates -> no error applied
  ASSERT_TRUE(p.Build().ok());
  CboErrorModel err;
  ASSERT_TRUE(AnnotateCardinalities(cat, err, &p).ok());
  EXPECT_DOUBLE_EQ(p.op(0).est_rows, p.op(0).true_rows);
}

TEST(CardinalityTest, EstimatesDeterministicPerSeed) {
  auto cat = Catalog();
  CboErrorModel err;
  err.seed = 5;
  auto p1 = ScanFilterPlan(0.5, 0.1);
  auto p2 = ScanFilterPlan(0.5, 0.1);
  ASSERT_TRUE(p1.Build().ok());
  ASSERT_TRUE(p2.Build().ok());
  ASSERT_TRUE(AnnotateCardinalities(cat, err, &p1).ok());
  ASSERT_TRUE(AnnotateCardinalities(cat, err, &p2).ok());
  EXPECT_DOUBLE_EQ(p1.op(1).est_rows, p2.op(1).est_rows);
}

TEST(CardinalityTest, DifferentSeedsGiveDifferentEstimates) {
  auto cat = Catalog();
  auto p1 = ScanFilterPlan(0.5, 0.1);
  auto p2 = ScanFilterPlan(0.5, 0.1);
  ASSERT_TRUE(p1.Build().ok());
  ASSERT_TRUE(p2.Build().ok());
  CboErrorModel e1, e2;
  e1.seed = 1;
  e2.seed = 2;
  ASSERT_TRUE(AnnotateCardinalities(cat, e1, &p1).ok());
  ASSERT_TRUE(AnnotateCardinalities(cat, e2, &p2).ok());
  EXPECT_NE(p1.op(1).est_rows, p2.op(1).est_rows);
}

// Left-deep join chain; the right side of every join scans the *small*
// table so the estimate of the left (biased) side stays the maximum.
LogicalPlan DeepJoinPlan(int levels) {
  LogicalPlan p;
  LogicalOperator scan;
  scan.type = OpType::kScan;
  scan.table_id = 0;
  scan.out_row_bytes = 100;
  int cur = p.AddOperator(scan);
  for (int i = 0; i < levels; ++i) {
    LogicalOperator s2 = scan;
    s2.table_id = 1;
    const int rhs = p.AddOperator(s2);
    LogicalOperator j;
    j.type = OpType::kJoin;
    j.children = {cur, rhs};
    j.cardinality_factor = 1.0;
    j.requires_shuffle = true;
    j.out_row_bytes = 100;
    cur = p.AddOperator(j);
  }
  return p;
}

TEST(CardinalityTest, JoinErrorCompoundsWithDepth) {
  auto cat = Catalog();
  CboErrorModel err;
  err.sigma_per_join = 0.0;  // isolate the deterministic bias
  err.join_bias = 0.8;
  auto p = DeepJoinPlan(3);
  ASSERT_TRUE(p.Build().ok());
  ASSERT_TRUE(AnnotateCardinalities(cat, err, &p).ok());
  const double ratio = p.op(p.root()).est_rows / p.op(p.root()).true_rows;
  EXPECT_NEAR(ratio, 0.8 * 0.8 * 0.8, 1e-9);
}

TEST(CardinalityTest, JoinDepthComputed) {
  auto p = DeepJoinPlan(3);
  ASSERT_TRUE(p.Build().ok());
  EXPECT_EQ(JoinDepth(p, p.root()), 3);
  EXPECT_EQ(JoinDepth(p, 0), 0);
}

TEST(CardinalityTest, UnknownTableRejected) {
  LogicalPlan p;
  LogicalOperator scan;
  scan.type = OpType::kScan;
  scan.table_id = 99;
  p.AddOperator(scan);
  ASSERT_TRUE(p.Build().ok());
  auto cat = Catalog();
  CboErrorModel err;
  EXPECT_FALSE(AnnotateCardinalities(cat, err, &p).ok());
}

TEST(CardinalityTest, LimitCapsRows) {
  auto cat = Catalog();
  LogicalPlan p;
  LogicalOperator scan;
  scan.type = OpType::kScan;
  scan.table_id = 0;
  const int s = p.AddOperator(scan);
  LogicalOperator lim;
  lim.type = OpType::kLimit;
  lim.children = {s};
  lim.cardinality_factor = 10;
  p.AddOperator(lim);
  ASSERT_TRUE(p.Build().ok());
  CboErrorModel err;
  ASSERT_TRUE(AnnotateCardinalities(cat, err, &p).ok());
  EXPECT_DOUBLE_EQ(p.op(1).true_rows, 10.0);
}

TEST(CardinalityTest, UnionSumsChildren) {
  auto cat = Catalog();
  LogicalPlan p;
  LogicalOperator scan;
  scan.type = OpType::kScan;
  scan.table_id = 0;
  const int a = p.AddOperator(scan);
  scan.table_id = 1;
  const int b = p.AddOperator(scan);
  LogicalOperator u;
  u.type = OpType::kUnion;
  u.children = {a, b};
  u.requires_shuffle = true;
  p.AddOperator(u);
  ASSERT_TRUE(p.Build().ok());
  CboErrorModel err;
  ASSERT_TRUE(AnnotateCardinalities(cat, err, &p).ok());
  EXPECT_DOUBLE_EQ(p.op(2).true_rows, 1e6 + 1e3);
}

TEST(CardinalityTest, RowsNeverBelowOne) {
  auto cat = Catalog();
  auto p = ScanFilterPlan(1e-12, 1e-12);
  ASSERT_TRUE(p.Build().ok());
  CboErrorModel err;
  ASSERT_TRUE(AnnotateCardinalities(cat, err, &p).ok());
  EXPECT_GE(p.op(1).true_rows, 1.0);
  EXPECT_GE(p.op(1).est_rows, 1.0);
}

}  // namespace
}  // namespace sparkopt
