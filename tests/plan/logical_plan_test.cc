#include "plan/logical_plan.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace sparkopt {
namespace {

LogicalOperator Scan(int table) {
  LogicalOperator op;
  op.type = OpType::kScan;
  op.table_id = table;
  return op;
}

LogicalOperator Join(int l, int r) {
  LogicalOperator op;
  op.type = OpType::kJoin;
  op.children = {l, r};
  op.requires_shuffle = true;
  return op;
}

LogicalOperator Agg(int child, bool regroup) {
  LogicalOperator op;
  op.type = OpType::kAggregate;
  op.children = {child};
  op.requires_shuffle = regroup;
  return op;
}

TEST(LogicalPlanTest, BuildFindsRootAndTopoOrder) {
  LogicalPlan p;
  const int s0 = p.AddOperator(Scan(0));
  const int s1 = p.AddOperator(Scan(1));
  const int j = p.AddOperator(Join(s0, s1));
  ASSERT_TRUE(p.Build().ok());
  EXPECT_EQ(p.root(), j);
  const auto& topo = p.TopologicalOrder();
  // Children precede parents.
  auto pos = [&](int id) {
    return std::find(topo.begin(), topo.end(), id) - topo.begin();
  };
  EXPECT_LT(pos(s0), pos(j));
  EXPECT_LT(pos(s1), pos(j));
}

TEST(LogicalPlanTest, ParentsComputed) {
  LogicalPlan p;
  const int s0 = p.AddOperator(Scan(0));
  const int s1 = p.AddOperator(Scan(1));
  const int j = p.AddOperator(Join(s0, s1));
  ASSERT_TRUE(p.Build().ok());
  EXPECT_EQ(p.Parents(s0), std::vector<int>{j});
  EXPECT_TRUE(p.Parents(j).empty());
}

TEST(LogicalPlanTest, EmptyPlanRejected) {
  LogicalPlan p;
  EXPECT_FALSE(p.Build().ok());
}

TEST(LogicalPlanTest, InvalidChildRejected) {
  LogicalPlan p;
  LogicalOperator bad;
  bad.type = OpType::kFilter;
  bad.children = {7};
  p.AddOperator(bad);
  EXPECT_FALSE(p.Build().ok());
}

TEST(LogicalPlanTest, SelfLoopRejected) {
  LogicalPlan p;
  LogicalOperator bad;
  bad.type = OpType::kFilter;
  bad.children = {0};
  p.AddOperator(bad);
  EXPECT_FALSE(p.Build().ok());
}

TEST(LogicalPlanTest, MultipleRootsRejected) {
  LogicalPlan p;
  p.AddOperator(Scan(0));
  p.AddOperator(Scan(1));
  EXPECT_FALSE(p.Build().ok());
}

TEST(LogicalPlanTest, CycleRejected) {
  LogicalPlan p;
  LogicalOperator a, b;
  a.type = OpType::kFilter;
  a.children = {1};
  b.type = OpType::kFilter;
  b.children = {0};
  p.AddOperator(a);
  p.AddOperator(b);
  EXPECT_FALSE(p.Build().ok());
}

TEST(LogicalPlanTest, CountOps) {
  LogicalPlan p;
  const int s0 = p.AddOperator(Scan(0));
  const int s1 = p.AddOperator(Scan(1));
  const int j = p.AddOperator(Join(s0, s1));
  p.AddOperator(Agg(j, true));
  ASSERT_TRUE(p.Build().ok());
  EXPECT_EQ(p.CountOps(OpType::kScan), 2);
  EXPECT_EQ(p.CountOps(OpType::kJoin), 1);
  EXPECT_EQ(p.CountOps(OpType::kSort), 0);
}

// --- subQ decomposition -------------------------------------------------

TEST(SubQueryTest, ScansAndJoinsStartSubqueries) {
  // 3 scans, 2 joins, pipelined agg => 5 subQs (the TPCH-Q3 shape from
  // Section 4.1 / Figure 1(b)).
  LogicalPlan p;
  const int c = p.AddOperator(Scan(0));
  const int o = p.AddOperator(Scan(1));
  const int l = p.AddOperator(Scan(2));
  const int j1 = p.AddOperator(Join(c, o));
  const int j2 = p.AddOperator(Join(j1, l));
  p.AddOperator(Agg(j2, /*regroup=*/false));
  ASSERT_TRUE(p.Build().ok());
  const auto subqs = p.DecomposeSubQueries();
  EXPECT_EQ(subqs.size(), 5u);
}

TEST(SubQueryTest, RegroupingAggregateGetsOwnSubquery) {
  LogicalPlan p;
  const int s = p.AddOperator(Scan(0));
  p.AddOperator(Agg(s, /*regroup=*/true));
  ASSERT_TRUE(p.Build().ok());
  EXPECT_EQ(p.DecomposeSubQueries().size(), 2u);
}

TEST(SubQueryTest, PipelinedOperatorsShareSubquery) {
  LogicalPlan p;
  const int s = p.AddOperator(Scan(0));
  LogicalOperator f;
  f.type = OpType::kFilter;
  f.children = {s};
  const int fid = p.AddOperator(f);
  LogicalOperator prj;
  prj.type = OpType::kProject;
  prj.children = {fid};
  p.AddOperator(prj);
  ASSERT_TRUE(p.Build().ok());
  const auto subqs = p.DecomposeSubQueries();
  ASSERT_EQ(subqs.size(), 1u);
  EXPECT_EQ(subqs[0].op_ids.size(), 3u);
  EXPECT_TRUE(subqs[0].has_scan);
}

TEST(SubQueryTest, DependenciesFollowDataFlow) {
  LogicalPlan p;
  const int a = p.AddOperator(Scan(0));
  const int b = p.AddOperator(Scan(1));
  const int j = p.AddOperator(Join(a, b));
  ASSERT_TRUE(p.Build().ok());
  const auto subqs = p.DecomposeSubQueries();
  ASSERT_EQ(subqs.size(), 3u);
  // The join subQ depends on both scan subQs.
  const auto& join_sq = subqs[2];
  EXPECT_EQ(join_sq.deps.size(), 2u);
  EXPECT_TRUE(join_sq.has_join);
  EXPECT_EQ(join_sq.root_op, j);
}

TEST(SubQueryTest, EveryOperatorAssignedExactlyOnce) {
  LogicalPlan p;
  const int a = p.AddOperator(Scan(0));
  const int b = p.AddOperator(Scan(1));
  const int j1 = p.AddOperator(Join(a, b));
  const int g = p.AddOperator(Agg(j1, true));
  LogicalOperator srt;
  srt.type = OpType::kSort;
  srt.children = {g};
  p.AddOperator(srt);
  ASSERT_TRUE(p.Build().ok());
  const auto subqs = p.DecomposeSubQueries();
  std::vector<int> count(p.num_ops(), 0);
  for (const auto& sq : subqs) {
    for (int id : sq.op_ids) ++count[id];
  }
  for (int c : count) EXPECT_EQ(c, 1);
}

TEST(OpTypeNameTest, AllNamed) {
  EXPECT_STREQ(OpTypeName(OpType::kScan), "Scan");
  EXPECT_STREQ(OpTypeName(OpType::kJoin), "Join");
  EXPECT_STREQ(OpTypeName(OpType::kUnion), "Union");
}

}  // namespace
}  // namespace sparkopt
