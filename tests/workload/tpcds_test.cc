#include "workload/tpcds.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace sparkopt {
namespace {

TEST(TpcdsCatalogTest, TableShapes) {
  auto cat = TpcdsCatalog(100);
  ASSERT_EQ(cat.size(), static_cast<size_t>(kNumTpcdsTables));
  EXPECT_EQ(cat[kStoreSales].name, "store_sales");
  EXPECT_DOUBLE_EQ(cat[kStoreSales].rows, 2.88e8);
  EXPECT_DOUBLE_EQ(cat[kDateDim].rows, 73049);
}

TEST(TpcdsBenchmarkTest, All102QueriesBuild) {
  auto cat = TpcdsCatalog(100);
  auto queries = TpcdsBenchmark(&cat);
  EXPECT_EQ(queries.size(), 102u);
}

TEST(TpcdsBenchmarkTest, SubQueryDistributionMatchesPaperShape) {
  auto cat = TpcdsCatalog(100);
  auto queries = TpcdsBenchmark(&cat);
  int max_subqs = 0;
  int over_20 = 0;
  for (const auto& q : queries) {
    const int m = q.NumSubQueries();
    EXPECT_GE(m, 3);
    max_subqs = std::max(max_subqs, m);
    if (m > 20) ++over_20;
  }
  // The paper reports TPC-DS queries with up to 47 subQs.
  EXPECT_GE(max_subqs, 30);
  EXPECT_LE(max_subqs, 50);
  EXPECT_GE(over_20, 3);  // the multi-channel family exists
}

TEST(TpcdsBenchmarkTest, EveryQueryJoinsDateDim) {
  auto cat = TpcdsCatalog(100);
  for (int qid = 1; qid <= 102; qid += 7) {
    auto q = *MakeTpcdsQuery(qid, &cat);
    bool scans_date_dim = false;
    for (size_t i = 0; i < q.plan.num_ops(); ++i) {
      const auto& op = q.plan.op(i);
      if (op.type == OpType::kScan && op.table_id == kDateDim) {
        scans_date_dim = true;
      }
    }
    EXPECT_TRUE(scans_date_dim) << "Q" << qid;
  }
}

TEST(TpcdsBenchmarkTest, QueriesStructurallyDiverse) {
  auto cat = TpcdsCatalog(100);
  std::vector<size_t> op_counts;
  for (int qid = 1; qid <= 30; ++qid) {
    op_counts.push_back(MakeTpcdsQuery(qid, &cat)->plan.num_ops());
  }
  std::sort(op_counts.begin(), op_counts.end());
  op_counts.erase(std::unique(op_counts.begin(), op_counts.end()),
                  op_counts.end());
  EXPECT_GE(op_counts.size(), 5u);
}

TEST(TpcdsBenchmarkTest, DeterministicPerQueryId) {
  auto cat = TpcdsCatalog(100);
  auto a = *MakeTpcdsQuery(42, &cat);
  auto b = *MakeTpcdsQuery(42, &cat);
  ASSERT_EQ(a.plan.num_ops(), b.plan.num_ops());
  for (size_t i = 0; i < a.plan.num_ops(); ++i) {
    EXPECT_EQ(a.plan.op(i).type, b.plan.op(i).type);
    EXPECT_DOUBLE_EQ(a.plan.op(i).true_rows, b.plan.op(i).true_rows);
  }
}

TEST(TpcdsBenchmarkTest, VariantsPerturbCardinalities) {
  auto cat = TpcdsCatalog(100);
  auto base = *MakeTpcdsQuery(10, &cat);
  auto variant = *MakeTpcdsQuery(10, &cat, /*variant=*/5);
  ASSERT_EQ(base.plan.num_ops(), variant.plan.num_ops());
  bool differs = false;
  for (size_t i = 0; i < base.plan.num_ops(); ++i) {
    if (base.plan.op(i).true_rows != variant.plan.op(i).true_rows) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(TpcdsBenchmarkTest, InvalidQueryIdRejected) {
  auto cat = TpcdsCatalog(100);
  EXPECT_FALSE(MakeTpcdsQuery(0, &cat).ok());
  EXPECT_FALSE(MakeTpcdsQuery(103, &cat).ok());
}

}  // namespace
}  // namespace sparkopt
