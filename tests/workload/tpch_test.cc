#include "workload/tpch.h"

#include <gtest/gtest.h>

namespace sparkopt {
namespace {

TEST(TpchCatalogTest, TableShapes) {
  auto cat = TpchCatalog(100);
  ASSERT_EQ(cat.size(), static_cast<size_t>(kNumTpchTables));
  EXPECT_EQ(cat[kLineitem].name, "lineitem");
  EXPECT_DOUBLE_EQ(cat[kLineitem].rows, 6e8);
  EXPECT_DOUBLE_EQ(cat[kNation].rows, 25);
  EXPECT_DOUBLE_EQ(cat[kRegion].rows, 5);
}

TEST(TpchCatalogTest, ScalesWithScaleFactor) {
  auto sf1 = TpchCatalog(1);
  auto sf10 = TpchCatalog(10);
  EXPECT_DOUBLE_EQ(sf10[kOrders].rows, 10 * sf1[kOrders].rows);
  // Fixed-size tables do not scale.
  EXPECT_DOUBLE_EQ(sf10[kNation].rows, sf1[kNation].rows);
}

class TpchQueryTest : public ::testing::TestWithParam<int> {
 protected:
  std::vector<TableStats> catalog_ = TpchCatalog(100);
};

TEST_P(TpchQueryTest, BuildsAndAnnotates) {
  auto q = MakeTpchQuery(GetParam(), &catalog_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->name, "TPCH-Q" + std::to_string(GetParam()));
  EXPECT_GT(q->plan.num_ops(), 1u);
  for (size_t i = 0; i < q->plan.num_ops(); ++i) {
    EXPECT_GE(q->plan.op(i).true_rows, 1.0);
    EXPECT_GE(q->plan.op(i).est_rows, 1.0);
  }
}

TEST_P(TpchQueryTest, SubQueryCountInPlausibleRange) {
  auto q = *MakeTpchQuery(GetParam(), &catalog_);
  const int subqs = q.NumSubQueries();
  EXPECT_GE(subqs, 2);
  EXPECT_LE(subqs, 16);
}

TEST_P(TpchQueryTest, VariantsPerturbButPreserveStructure) {
  auto base = *MakeTpchQuery(GetParam(), &catalog_);
  auto variant = *MakeTpchQuery(GetParam(), &catalog_, /*variant=*/77);
  EXPECT_EQ(base.plan.num_ops(), variant.plan.num_ops());
  EXPECT_EQ(base.NumSubQueries(), variant.NumSubQueries());
  // Some cardinality must differ.
  bool differs = false;
  for (size_t i = 0; i < base.plan.num_ops(); ++i) {
    if (base.plan.op(i).true_rows != variant.plan.op(i).true_rows) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpchQueryTest, ::testing::Range(1, 23));

TEST(TpchBenchmarkTest, All22QueriesBuild) {
  auto cat = TpchCatalog(100);
  auto queries = TpchBenchmark(&cat);
  EXPECT_EQ(queries.size(), 22u);
}

TEST(TpchBenchmarkTest, KnownSubQueryCounts) {
  auto cat = TpchCatalog(100);
  // Shapes called out in the paper: Q3 has 5 subQs (Figure 1(b)), Q9 has
  // 12 subQs (Figure 3).
  EXPECT_EQ(MakeTpchQuery(3, &cat)->NumSubQueries(), 5);
  EXPECT_EQ(MakeTpchQuery(9, &cat)->NumSubQueries(), 12);
}

TEST(TpchBenchmarkTest, InvalidQueryIdRejected) {
  auto cat = TpchCatalog(100);
  EXPECT_FALSE(MakeTpchQuery(0, &cat).ok());
  EXPECT_FALSE(MakeTpchQuery(23, &cat).ok());
}

TEST(TpchBenchmarkTest, DeterministicConstruction) {
  auto cat = TpchCatalog(100);
  auto a = *MakeTpchQuery(5, &cat);
  auto b = *MakeTpchQuery(5, &cat);
  ASSERT_EQ(a.plan.num_ops(), b.plan.num_ops());
  for (size_t i = 0; i < a.plan.num_ops(); ++i) {
    EXPECT_DOUBLE_EQ(a.plan.op(i).est_rows, b.plan.op(i).est_rows);
  }
}

}  // namespace
}  // namespace sparkopt
