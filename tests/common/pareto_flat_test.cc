#include "common/pareto_flat.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/pareto.h"
#include "common/rng.h"

// Property suite for the flat Pareto kernel: every primitive must be
// bitwise identical — same points, same payloads, same stable order — to
// the naive AoS formulation it replaced. Random fronts are drawn with
// floored coordinates so duplicate points and ties occur constantly.

namespace sparkopt {
namespace {

std::vector<ObjectiveVector> RandomPoints(Rng* rng, int n, bool ties) {
  std::vector<ObjectiveVector> pts(n, ObjectiveVector(2));
  for (auto& p : pts) {
    p[0] = ties ? std::floor(rng->Uniform(0, 12)) : rng->Uniform(0, 12);
    p[1] = ties ? std::floor(rng->Uniform(0, 12)) : rng->Uniform(0, 12);
  }
  return pts;
}

// O(n^2) dominance reference: kept iff no other point strictly dominates.
std::vector<size_t> ReferenceKept(const std::vector<ObjectiveVector>& pts) {
  std::vector<size_t> kept;
  for (size_t i = 0; i < pts.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < pts.size() && !dominated; ++j) {
      dominated = j != i && Dominates(pts[j], pts[i]);
    }
    if (!dominated) kept.push_back(i);
  }
  return kept;
}

// The pre-kernel Hypervolume2D implementation, kept verbatim as the
// bitwise oracle (filter + sort + dedup, then the staircase sum).
double ReferenceHypervolume(const std::vector<ObjectiveVector>& front,
                            const ObjectiveVector& ref) {
  if (front.empty()) return 0.0;
  auto nd_idx = ParetoIndices(front);
  std::vector<ObjectiveVector> nd;
  for (size_t i : nd_idx) nd.push_back(front[i]);
  std::sort(nd.begin(), nd.end());
  nd.erase(std::unique(nd.begin(), nd.end()), nd.end());
  double hv = 0.0;
  double last_y = ref[1];
  for (const auto& p : nd) {
    if (p[0] >= ref[0]) break;
    const double clipped_y = std::min(p[1], last_y);
    if (clipped_y < last_y) {
      hv += (ref[0] - p[0]) * (last_y - clipped_y);
      last_y = clipped_y;
    }
  }
  return hv;
}

IndexedFront MakeFront(std::vector<ObjectiveVector> pts, bool with_payloads,
                       size_t payload_base) {
  IndexedFront f;
  f.points = std::move(pts);
  if (with_payloads) {
    for (size_t i = 0; i < f.points.size(); ++i) {
      f.payloads.push_back(payload_base + i);
    }
  }
  return f;
}

class FlatKernelPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FlatKernelPropertyTest, ParetoPositionsMatchReference) {
  Rng rng(GetParam());
  ParetoScratch scratch;
  for (int round = 0; round < 20; ++round) {
    const int n = static_cast<int>(rng.NextBounded(40));
    const auto pts = RandomPoints(&rng, n, round % 2 == 0);
    std::vector<double> x(n), y(n);
    for (int i = 0; i < n; ++i) {
      x[i] = pts[i][0];
      y[i] = pts[i][1];
    }
    std::vector<uint32_t> kept;
    FlatParetoPositions(x.data(), y.data(), n, &kept, &scratch);
    const std::vector<size_t> got(kept.begin(), kept.end());
    EXPECT_EQ(got, ReferenceKept(pts)) << "seed " << GetParam();
    // The shim must agree too.
    EXPECT_EQ(ParetoIndices(pts), ReferenceKept(pts));
  }
}

// MergeFronts (flat path) vs MergeFrontsNaive: identical points, payloads,
// combos, and order — with and without caller payloads, against a
// pre-populated combination table to pin the append contract.
TEST_P(FlatKernelPropertyTest, MergeMatchesNaiveBitwise) {
  Rng rng(GetParam());
  for (int round = 0; round < 12; ++round) {
    const bool ties = round % 2 == 0;
    const bool with_payloads = round % 3 != 0;
    const auto a =
        MakeFront(RandomPoints(&rng, 1 + rng.NextBounded(18), ties),
                  with_payloads, 100);
    const auto b =
        MakeFront(RandomPoints(&rng, 1 + rng.NextBounded(18), ties),
                  with_payloads, 500);

    std::vector<std::pair<size_t, size_t>> combos_flat(3, {9, 9});
    std::vector<std::pair<size_t, size_t>> combos_naive(3, {9, 9});
    const auto flat = MergeFronts(a, b, &combos_flat);
    const auto naive = MergeFrontsNaive(a, b, &combos_naive);

    EXPECT_EQ(flat.points, naive.points) << "seed " << GetParam();
    EXPECT_EQ(flat.payloads, naive.payloads);
    EXPECT_EQ(combos_flat, combos_naive);
    // Payloads index the grown table: pre-existing rows untouched.
    ASSERT_EQ(combos_flat.size(), 3 + flat.size());
    for (size_t p = 0; p < flat.size(); ++p) {
      EXPECT_EQ(flat.payloads[p], 3 + p);
    }
  }
}

TEST_P(FlatKernelPropertyTest, HypervolumeMatchesReferenceBitwise) {
  Rng rng(GetParam());
  ParetoScratch scratch;
  for (int round = 0; round < 20; ++round) {
    const int n = static_cast<int>(rng.NextBounded(30));
    const auto pts = RandomPoints(&rng, n, round % 2 == 0);
    const ObjectiveVector ref = {rng.Uniform(6, 14), rng.Uniform(6, 14)};
    // EXPECT_EQ, not NEAR: same terms in the same order.
    EXPECT_EQ(Hypervolume2D(pts, ref), ReferenceHypervolume(pts, ref))
        << "seed " << GetParam();
  }
}

// Incremental archive == sorted batch filter (values and multiplicity).
TEST_P(FlatKernelPropertyTest, ParetoInsertMatchesBatchFilter) {
  Rng rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    const auto pts =
        RandomPoints(&rng, 1 + rng.NextBounded(50), round % 2 == 0);
    Front2 archive;
    for (size_t i = 0; i < pts.size(); ++i) {
      ParetoInsert(&archive, pts[i][0], pts[i][1], i);
    }
    std::vector<ObjectiveVector> batch = ParetoFilter(pts);
    std::sort(batch.begin(), batch.end());
    ASSERT_EQ(archive.size(), batch.size()) << "seed " << GetParam();
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(archive.x[i], batch[i][0]);
      EXPECT_EQ(archive.y[i], batch[i][1]);
      // The surviving payload's source point must carry these values.
      EXPECT_EQ(pts[archive.payload[i]][0], archive.x[i]);
      EXPECT_EQ(pts[archive.payload[i]][1], archive.y[i]);
    }
  }
}

TEST_P(FlatKernelPropertyTest, EpsilonThinKeepsExtremesAndSubsets) {
  Rng rng(GetParam());
  ParetoScratch scratch;
  for (int round = 0; round < 10; ++round) {
    // Start from a real front so the staircase structure holds.
    auto pts = ParetoFilter(RandomPoints(&rng, 40, /*ties=*/false));
    Front2 front;
    for (size_t i = 0; i < pts.size(); ++i) {
      front.Append(pts[i][0], pts[i][1], i);
    }
    Front2 untouched = front;
    EpsilonThin2(&untouched, 0.0, &scratch);  // eps <= 0: exact no-op
    EXPECT_EQ(untouched.x, front.x);
    EXPECT_EQ(untouched.payload, front.payload);

    EpsilonThin2(&front, 0.25, &scratch);
    EXPECT_LE(front.size(), pts.size());
    double min_x = pts[0][0], min_y = pts[0][1];
    for (const auto& p : pts) {
      min_x = std::min(min_x, p[0]);
      min_y = std::min(min_y, p[1]);
    }
    EXPECT_NE(std::find(front.x.begin(), front.x.end(), min_x),
              front.x.end());
    EXPECT_NE(std::find(front.y.begin(), front.y.end(), min_y),
              front.y.end());
    for (size_t p = 0; p < front.size(); ++p) {
      // Every survivor is one of the originals (payload resolves it).
      EXPECT_EQ(front.x[p], pts[front.payload[p]][0]);
      EXPECT_EQ(front.y[p], pts[front.payload[p]][1]);
    }
  }
}

// k-D fallback (ParetoKD) against the quadratic reference.
TEST_P(FlatKernelPropertyTest, KdFallbackMatchesReference) {
  Rng rng(GetParam());
  for (size_t k : {3, 4, 5}) {
    std::vector<ObjectiveVector> pts(30, ObjectiveVector(k));
    for (auto& p : pts) {
      for (auto& v : p) v = std::floor(rng.Uniform(0, 6));
    }
    EXPECT_EQ(ParetoIndices(pts), ReferenceKept(pts)) << "k=" << k;
  }
}

// k = 3 takes the naive merge path; its contract must match the flat one.
TEST_P(FlatKernelPropertyTest, ThreeObjectiveMergeContract) {
  Rng rng(GetParam());
  IndexedFront a, b;
  for (int i = 0; i < 8; ++i) {
    a.points.push_back({std::floor(rng.Uniform(0, 6)),
                        std::floor(rng.Uniform(0, 6)),
                        std::floor(rng.Uniform(0, 6))});
    a.payloads.push_back(10 + i);
    b.points.push_back({std::floor(rng.Uniform(0, 6)),
                        std::floor(rng.Uniform(0, 6)),
                        std::floor(rng.Uniform(0, 6))});
    b.payloads.push_back(20 + i);
  }
  std::vector<std::pair<size_t, size_t>> combos(2, {7, 7});
  const auto merged = MergeFronts(a, b, &combos);
  ASSERT_EQ(combos.size(), 2 + merged.size());
  for (size_t p = 0; p < merged.size(); ++p) {
    EXPECT_EQ(merged.payloads[p], 2 + p);
    const auto [pi, pj] = combos[merged.payloads[p]];
    const auto& pa = a.points[pi - 10];
    const auto& pb = b.points[pj - 20];
    for (int d = 0; d < 3; ++d) {
      EXPECT_EQ(merged.points[p][d], pa[d] + pb[d]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatKernelPropertyTest,
                         ::testing::Values(3, 13, 37, 97, 181, 331));

TEST(FlatMergeTest, EmptyAndSingletonFronts) {
  ParetoScratch scratch;
  Front2 empty, single, out;
  single.Append(2.0, 3.0, 0);

  FlatMerge2(empty, single, &out, &scratch);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(scratch.pairs.empty());
  FlatMerge2(single, empty, &out, &scratch);
  EXPECT_TRUE(out.empty());

  Front2 other;
  other.Append(5.0, 7.0, 0);
  FlatMerge2(single, other, &out, &scratch);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.x[0], 7.0);
  EXPECT_EQ(out.y[0], 10.0);
  EXPECT_EQ(out.payload[0], 0u);
  ASSERT_EQ(scratch.pairs.size(), 1u);
  EXPECT_EQ(scratch.pairs[0].i, 0u);
  EXPECT_EQ(scratch.pairs[0].j, 0u);

  const IndexedFront ia, ib;
  auto merged = MergeFronts(ia, ib, nullptr);
  EXPECT_TRUE(merged.empty());
}

TEST(FlatMergeTest, CrossProductOrderAndAlignedPairs) {
  // a = {(0,4), (2,0)}, b = {(1,1), (3,0)}; survivors in cross-product
  // order i*|b|+j: (0,4)+(1,1)=(1,5), (2,0)+(1,1)=(3,1), (2,0)+(3,0)=(5,0).
  Front2 a, b, out;
  a.Append(0, 4, 0);
  a.Append(2, 0, 1);
  b.Append(1, 1, 0);
  b.Append(3, 0, 1);
  ParetoScratch scratch;
  FlatMerge2(a, b, &out, &scratch);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out.x, (std::vector<double>{1, 3, 5}));
  EXPECT_EQ(out.y, (std::vector<double>{5, 1, 0}));
  ASSERT_EQ(scratch.pairs.size(), 3u);
  EXPECT_EQ(scratch.pairs[1].i, 1u);
  EXPECT_EQ(scratch.pairs[1].j, 0u);
}

// Chained merges over one combination table: each merge appends its
// survivors' rows, and payloads keep resolving to the right row.
TEST(MergeFrontsTest, ChainedMergesShareComboTable) {
  Rng rng(4242);
  auto f1 = MakeFront(RandomPoints(&rng, 6, true), /*with_payloads=*/false, 0);
  auto f2 = MakeFront(RandomPoints(&rng, 7, true), false, 0);
  auto f3 = MakeFront(RandomPoints(&rng, 5, true), false, 0);

  std::vector<std::pair<size_t, size_t>> table;
  const auto m12 = MergeFronts(f1, f2, &table);
  const size_t base = table.size();
  const auto m123 = MergeFronts(m12, f3, &table);
  ASSERT_EQ(table.size(), base + m123.size());
  for (size_t p = 0; p < m123.size(); ++p) {
    const auto [left, right] = table[m123.payloads[p]];
    // `left` is an m12 payload — resolve it through the table again.
    const auto [i1, i2] = table[left];
    const double x = f1.points[i1][0] + f2.points[i2][0] + f3.points[right][0];
    const double y = f1.points[i1][1] + f2.points[i2][1] + f3.points[right][1];
    EXPECT_EQ(m123.points[p][0], x);
    EXPECT_EQ(m123.points[p][1], y);
  }
}

TEST(ParetoInsertTest, RejectsDominatedKeepsDuplicates) {
  Front2 front;
  EXPECT_TRUE(ParetoInsert(&front, 2, 2, 0));
  EXPECT_FALSE(ParetoInsert(&front, 3, 3, 1));  // dominated
  EXPECT_TRUE(ParetoInsert(&front, 2, 2, 2));   // exact duplicate kept
  EXPECT_EQ(front.size(), 2u);
  EXPECT_TRUE(ParetoInsert(&front, 1, 1, 3));   // dominates both
  EXPECT_EQ(front.size(), 1u);
  EXPECT_EQ(front.payload[0], 3u);
}

}  // namespace
}  // namespace sparkopt
