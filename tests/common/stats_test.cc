#include "common/stats.h"

#include <gtest/gtest.h>

namespace sparkopt {
namespace {

TEST(MeanTest, Basic) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(StdDevTest, KnownValue) {
  // Population stddev of {2, 4} = 1.
  EXPECT_DOUBLE_EQ(StdDev({2, 4}), 1.0);
  EXPECT_DOUBLE_EQ(StdDev({5}), 0.0);
}

TEST(PercentileTest, Endpoints) {
  std::vector<double> v = {3, 1, 2};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 2.0);
}

TEST(PercentileTest, Interpolation) {
  EXPECT_DOUBLE_EQ(Percentile({0, 10}, 25), 2.5);
}

TEST(PercentileTest, Empty) { EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0); }

TEST(PearsonTest, PerfectCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

TEST(PearsonTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {2, 4, 6}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1}, {2}), 0.0);
}

TEST(WmapeTest, KnownValue) {
  // |1-2| + |3-3| = 1 over |1|+|3| = 4 -> 0.25.
  EXPECT_DOUBLE_EQ(Wmape({1, 3}, {2, 3}), 0.25);
}

TEST(WmapeTest, PerfectPrediction) {
  EXPECT_DOUBLE_EQ(Wmape({1, 2, 3}, {1, 2, 3}), 0.0);
}

TEST(WmapeTest, ZeroDenominator) {
  EXPECT_DOUBLE_EQ(Wmape({0, 0}, {1, 1}), 0.0);
}

TEST(ApeTest, PerSample) {
  auto e = AbsolutePercentageErrors({2, 4}, {1, 6});
  ASSERT_EQ(e.size(), 2u);
  EXPECT_DOUBLE_EQ(e[0], 0.5);
  EXPECT_DOUBLE_EQ(e[1], 0.5);
}

TEST(EvaluateAccuracyTest, AllMetricsPopulated) {
  std::vector<double> y = {1, 2, 3, 4, 5};
  std::vector<double> p = {1.1, 2.2, 2.7, 4.4, 4.5};
  auto r = EvaluateAccuracy(y, p);
  EXPECT_EQ(r.n, 5u);
  EXPECT_GT(r.wmape, 0.0);
  EXPECT_LT(r.wmape, 0.2);
  EXPECT_GT(r.corr, 0.95);
  EXPECT_GE(r.p90, r.p50);
}

}  // namespace
}  // namespace sparkopt
