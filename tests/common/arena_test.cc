#include "common/arena.h"

#include <cstdint>
#include <cstring>

#include <gtest/gtest.h>

namespace sparkopt {
namespace {

TEST(MonotonicArenaTest, AllocatesAlignedDistinctRegions) {
  MonotonicArena arena(/*block_bytes=*/256);
  int* a = arena.AllocArray<int>(10);
  double* b = arena.AllocArray<double>(4);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % alignof(int), 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % alignof(double), 0u);
  for (int i = 0; i < 10; ++i) a[i] = i;
  for (int i = 0; i < 4; ++i) b[i] = 0.5 * i;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a[i], i);  // no overlap
  for (int i = 0; i < 4; ++i) EXPECT_EQ(b[i], 0.5 * i);
}

TEST(MonotonicArenaTest, ZeroCountReturnsNull) {
  MonotonicArena arena;
  EXPECT_EQ(arena.AllocArray<int>(0), nullptr);
  EXPECT_EQ(arena.used_bytes(), 0u);
}

TEST(MonotonicArenaTest, OversizedRequestGetsDedicatedBlock) {
  MonotonicArena arena(/*block_bytes=*/64);
  char* big = arena.AllocArray<char>(1000);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xab, 1000);
  EXPECT_GE(arena.capacity_bytes(), 1000u);
  // Small allocations still work afterwards.
  int* small = arena.AllocArray<int>(4);
  ASSERT_NE(small, nullptr);
}

TEST(MonotonicArenaTest, ResetKeepsCapacityAndReusesBlocks) {
  MonotonicArena arena(/*block_bytes=*/128);
  for (int i = 0; i < 20; ++i) arena.AllocArray<double>(8);
  const size_t warm_capacity = arena.capacity_bytes();
  EXPECT_GT(warm_capacity, 0u);

  // Steady state: identical allocation pattern after Reset() must fit in
  // the warmed blocks — capacity never grows again.
  for (int round = 0; round < 5; ++round) {
    arena.Reset();
    EXPECT_EQ(arena.used_bytes(), 0u);
    for (int i = 0; i < 20; ++i) {
      ASSERT_NE(arena.AllocArray<double>(8), nullptr);
    }
    EXPECT_EQ(arena.capacity_bytes(), warm_capacity) << "round " << round;
  }
}

TEST(MonotonicArenaTest, EarlierBlocksRevisitedAfterReset) {
  MonotonicArena arena(/*block_bytes=*/64);
  // Fill past the first block so a second is added.
  arena.AllocArray<char>(60);
  arena.AllocArray<char>(60);
  const size_t cap = arena.capacity_bytes();
  arena.Reset();
  // The first allocation after Reset() lands back in block 0.
  char* p = arena.AllocArray<char>(16);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(arena.capacity_bytes(), cap);
}

}  // namespace
}  // namespace sparkopt
