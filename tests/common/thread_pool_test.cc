#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "obs/trace.h"

namespace sparkopt {
namespace {

TEST(ThreadPoolTest, InlineModeRunsWithoutWorkers) {
  // 1 thread means no workers: everything runs on the calling thread.
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 0);
  EXPECT_EQ(pool.parallelism(), 1);
  std::vector<int> out(100, 0);
  pool.ParallelFor(out.size(), [&](size_t i) {
    out[i] = static_cast<int>(i) + 1;
  });
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) + 1);
  }
}

TEST(ThreadPoolTest, DefaultPicksHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.parallelism(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, IndexAddressedResultsMatchSequential) {
  // The determinism contract: iteration i writes slot i, so the output is
  // identical to the sequential loop regardless of thread count.
  auto run = [](int threads) {
    ThreadPool pool(threads);
    std::vector<double> out(4096);
    pool.ParallelFor(out.size(), [&](size_t i) {
      double v = static_cast<double>(i) * 0.7;
      for (int k = 0; k < 50; ++k) v = v * 1.0000001 + 0.3;
      out[i] = v;
    });
    return out;
  };
  const auto seq = run(1);
  const auto par = run(4);
  ASSERT_EQ(seq.size(), par.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i], par[i]) << "bitwise mismatch at " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroAndOneIterations) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(64,
                       [&](size_t i) {
                         if (i == 13) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must stay usable after a failed ParallelFor.
  std::atomic<int> sum{0};
  pool.ParallelFor(10, [&](size_t i) {
    sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, ExceptionInInlineMode) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(
                   4, [](size_t i) { if (i == 2) throw std::logic_error("x"); }),
               std::logic_error);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  // A ParallelFor issued from a worker must not deadlock: it runs inline.
  ThreadPool pool(2);
  std::vector<std::vector<int>> out(8);
  pool.ParallelFor(out.size(), [&](size_t i) {
    out[i].assign(16, 0);
    pool.ParallelFor(out[i].size(), [&](size_t j) {
      out[i][j] = static_cast<int>(i * 100 + j);
    });
  });
  for (size_t i = 0; i < out.size(); ++i) {
    for (size_t j = 0; j < out[i].size(); ++j) {
      EXPECT_EQ(out[i][j], static_cast<int>(i * 100 + j));
    }
  }
}

TEST(ThreadPoolTest, SubmitReturnsFutureWithResult) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("bad"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, SubmitInlineMode) {
  ThreadPool pool(1);
  auto f = pool.Submit([] { return std::string("inline"); });
  EXPECT_EQ(f.get(), "inline");
}

TEST(ThreadPoolTest, ConcurrentSubmitFromManyThreads) {
  ThreadPool pool(4);
  static constexpr int kPer = 50;
  std::vector<std::future<int>> futures;
  Mutex mu;
  // Hammer Submit from several external threads at once.
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i) {
        auto f = pool.Submit([t, i] { return t * kPer + i; });
        MutexLock lock(mu);
        futures.push_back(std::move(f));
      }
    });
  }
  for (auto& p : producers) p.join();
  long long sum = 0;
  for (auto& f : futures) sum += f.get();
  const long long n = 4LL * kPer;
  EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST(ThreadPoolTest, InstrumentationRecordsUnderSession) {
  obs::Session session;
  ThreadPool pool(3);
  auto f = pool.Submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
  std::atomic<int> sum{0};
  pool.ParallelFor(64, [&](size_t i) {
    sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 64 * 63 / 2);
  auto& m = session.metrics();
  EXPECT_GE(m.CounterValue("threadpool.tasks"), 1u);
  EXPECT_GE(m.CounterValue("threadpool.parallel_fors"), 1u);
  // Every ParallelFor index is claimed exactly once, by a worker or by
  // the participating caller.
  EXPECT_EQ(m.CounterValue("threadpool.worker_iters") +
                m.CounterValue("threadpool.caller_iters"),
            64u);
  EXPECT_GE(m.StatsOf("threadpool.queue_wait_us").count, 1u);
}

TEST(ThreadPoolTest, InstrumentationCountsInlineFors) {
  obs::Session session;
  ThreadPool pool(1);  // inline mode
  std::atomic<int> n{0};
  pool.ParallelFor(8, [&](size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 8);
  EXPECT_GE(session.metrics().CounterValue("threadpool.inline_fors"), 1u);
  EXPECT_EQ(session.metrics().CounterValue("threadpool.parallel_fors"), 0u);
}

TEST(ThreadPoolTest, DedicatedSingleWorkerHasARealThread) {
  ThreadPool pool(1, /*dedicated_single_worker=*/true);
  EXPECT_EQ(pool.num_threads(), 1);
  EXPECT_EQ(pool.parallelism(), 1);
  std::atomic<int> n{0};
  EXPECT_TRUE(pool.Post([&] { n.fetch_add(1); }));
  auto f = pool.Submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
  pool.Shutdown(ThreadPool::ShutdownMode::kDrain);
  EXPECT_EQ(n.load(), 1);
}

TEST(ThreadPoolTest, PostRejectsOnInlinePool) {
  // Fire-and-forget has no caller to run inline on: inline pools refuse
  // rather than surprise-block the poster.
  ThreadPool pool(1);
  std::atomic<int> n{0};
  EXPECT_FALSE(pool.Post([&] { n.fetch_add(1); }));
  EXPECT_EQ(n.load(), 0);
  EXPECT_EQ(pool.discarded_tasks(), 1u);
}

TEST(ThreadPoolTest, ShutdownDrainRunsEverythingQueued) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(pool.Post([&] { ran.fetch_add(1); }));
  }
  pool.Shutdown(ThreadPool::ShutdownMode::kDrain);
  EXPECT_EQ(ran.load(), 64);
  EXPECT_EQ(pool.discarded_tasks(), 0u);
}

TEST(ThreadPoolTest, ShutdownAbortDiscardsBacklogButRunsDestructors) {
  ThreadPool pool(1, /*dedicated_single_worker=*/true);
  std::atomic<int> ran{0};
  std::atomic<int> destroyed{0};
  // Destructor-observing payload: a RAII wrapper (the tuning service's
  // promise shedding) must see its closure destroyed even when the task
  // never runs.
  struct Tracker {
    explicit Tracker(std::atomic<int>* d) : d_(d) {}
    ~Tracker() { d_->fetch_add(1); }
    std::atomic<int>* d_;
  };
  // Park the single worker so the backlog cannot start.
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::promise<void> parked;
  ASSERT_TRUE(pool.Post([&, gate] {
    parked.set_value();
    gate.wait();
  }));
  parked.get_future().wait();
  for (int i = 0; i < 16; ++i) {
    auto t = std::make_shared<Tracker>(&destroyed);
    ASSERT_TRUE(pool.Post([&ran, t] { ran.fetch_add(1); }));
  }
  release.set_value();  // unblock before joining
  pool.Shutdown(ThreadPool::ShutdownMode::kAbort);
  // Everything not started by the time Shutdown swapped the queue was
  // discarded with its destructor run; nothing is lost either way.
  EXPECT_EQ(ran.load() + static_cast<int>(pool.discarded_tasks()), 16);
  EXPECT_EQ(destroyed.load(), 16);
  // Post after shutdown is refused.
  const uint64_t discarded_before = pool.discarded_tasks();
  EXPECT_FALSE(pool.Post([&] { ran.fetch_add(1); }));
  EXPECT_EQ(pool.discarded_tasks(), discarded_before + 1);
}

TEST(ThreadPoolTest, ShutdownIsIdempotentAndFirstCallWins) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.Post([&] { ran.fetch_add(1); });
  }
  pool.Shutdown(ThreadPool::ShutdownMode::kDrain);
  const int after_drain = ran.load();
  pool.Shutdown(ThreadPool::ShutdownMode::kAbort);  // no-op
  EXPECT_EQ(ran.load(), after_drain);
  EXPECT_EQ(after_drain, 8);
}

TEST(ThreadPoolTest, WorkDegradesToInlineAfterShutdown) {
  ThreadPool pool(4);
  pool.Shutdown(ThreadPool::ShutdownMode::kDrain);
  // Submit and ParallelFor still complete — on the calling thread.
  auto f = pool.Submit([] { return 41; });
  EXPECT_EQ(f.get(), 41);
  std::vector<int> out(100, 0);
  pool.ParallelFor(out.size(), [&](size_t i) {
    out[i] = static_cast<int>(i);
  });
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i));
  }
}

TEST(ThreadPoolTest, SharedPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::Shared(), &ThreadPool::Shared());
  std::atomic<int> sum{0};
  ThreadPool::Shared().ParallelFor(8, [&](size_t i) {
    sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 28);
}

}  // namespace
}  // namespace sparkopt
