#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace sparkopt {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedHitsAllValues) {
  Rng rng(17);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(19);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMoments) {
  Rng rng(23);
  const int n = 50000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(RngTest, LogNormalIsPositive) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.LogNormal(0.0, 0.5), 0.0);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(37);
  auto p = rng.Permutation(50);
  std::set<int> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 49);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> v = {1, 2, 3, 4, 5};
  auto copy = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Fnv1aTest, StableAndSensitive) {
  const uint64_t h1 = Fnv1a("abc", 3);
  EXPECT_EQ(h1, Fnv1a("abc", 3));
  EXPECT_NE(h1, Fnv1a("abd", 3));
  EXPECT_NE(h1, Fnv1a("ab", 2));
}

TEST(HashCombineTest, OrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

}  // namespace
}  // namespace sparkopt
