#include "common/thread_safety.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

// The wrappers must behave exactly like the std primitives they forward
// to — these tests pin the semantics (mutual exclusion, TryLock, condvar
// wakeups, reader/writer sharing) and double as the TSan workload for
// the wrapper layer (they run in the debug-tsan CI suite).

namespace sparkopt {
namespace {

TEST(ThreadSafetyMutexTest, MutualExclusionUnderContention) {
  Mutex mu;
  int counter = 0;  // guarded by mu (local: annotation not applicable)
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(ThreadSafetyMutexTest, TryLockReflectsOwnership) {
  Mutex mu;
  mu.Lock();
  std::atomic<int> observed{-1};
  // TryLock must fail on another thread while this one holds the lock
  // (same-thread try_lock on a held std::mutex is UB, so probe from a
  // second thread).
  std::thread probe([&] {
    if (mu.TryLock()) {
      mu.Unlock();
      observed = 1;
    } else {
      observed = 0;
    }
  });
  probe.join();
  EXPECT_EQ(observed.load(), 0);
  mu.Unlock();
  std::thread probe2([&] {
    if (mu.TryLock()) {
      observed = 2;
      mu.Unlock();
    }
  });
  probe2.join();
  EXPECT_EQ(observed.load(), 2);
}

TEST(ThreadSafetyCondVarTest, WaitWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int consumed = 0;
  std::thread consumer([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    consumed = 1;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  consumer.join();
  EXPECT_EQ(consumed, 1);
}

TEST(ThreadSafetyCondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  std::atomic<int> woke{0};
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) cv.Wait(mu);
      woke.fetch_add(1);
    });
  }
  {
    MutexLock lock(mu);
    go = true;
  }
  cv.NotifyAll();
  for (auto& th : waiters) th.join();
  EXPECT_EQ(woke.load(), kWaiters);
}

TEST(ThreadSafetyCondVarTest, WaitForTimesOutWithoutNotify) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  // Nobody notifies: the timed wait must come back false and the lock
  // must be reacquired (we can still touch guarded state below).
  const bool notified = cv.WaitFor(mu, std::chrono::milliseconds(5));
  EXPECT_FALSE(notified);
}

TEST(ThreadSafetySharedMutexTest, ReadersShareWritersExclude) {
  SharedMutex mu;
  std::atomic<int> concurrent_readers{0};
  std::atomic<int> max_readers{0};
  int value = 0;
  constexpr int kReaders = 4;

  {
    // Readers overlap: all must be inside the critical section at once
    // before any leaves (rendezvous on the reader count).
    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (int t = 0; t < kReaders; ++t) {
      readers.emplace_back([&] {
        ReaderMutexLock lock(mu);
        const int now = concurrent_readers.fetch_add(1) + 1;
        int seen = max_readers.load();
        while (seen < now && !max_readers.compare_exchange_weak(seen, now)) {
        }
        // Hold until every reader has arrived, so sharing is proven, not
        // just possible. Bounded spin keeps a broken wrapper from
        // hanging the suite.
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(5);
        while (concurrent_readers.load() < kReaders &&
               std::chrono::steady_clock::now() < deadline) {
          std::this_thread::yield();
        }
        concurrent_readers.fetch_sub(1);
      });
    }
    for (auto& th : readers) th.join();
    EXPECT_EQ(max_readers.load(), kReaders);
  }

  {
    // Writer excludes: increments are atomic under the writer lock.
    constexpr int kWriters = 4;
    constexpr int kIters = 1000;
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int t = 0; t < kWriters; ++t) {
      writers.emplace_back([&] {
        for (int i = 0; i < kIters; ++i) {
          WriterMutexLock lock(mu);
          ++value;
        }
      });
    }
    for (auto& th : writers) th.join();
    EXPECT_EQ(value, kWriters * kIters);
  }
}

TEST(ThreadSafetySharedMutexTest, ReaderTryLockFailsUnderWriter) {
  SharedMutex mu;
  mu.Lock();
  std::atomic<int> got{-1};
  std::thread probe([&] {
    if (mu.ReaderTryLock()) {
      mu.ReaderUnlock();
      got = 1;
    } else {
      got = 0;
    }
  });
  probe.join();
  EXPECT_EQ(got.load(), 0);
  mu.Unlock();
  const bool reacquired = mu.ReaderTryLock();
  EXPECT_TRUE(reacquired);
  if (reacquired) mu.ReaderUnlock();
}

}  // namespace
}  // namespace sparkopt
