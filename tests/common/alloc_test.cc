#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "alloc_probe.h"
#include "common/arena.h"
#include "common/pareto_flat.h"
#include "moo/dag_aggregation.h"

// ---------------------------------------------------------------------------
// Replaceable global allocation functions. Every operator-new form
// funnels through CountedAlloc/CountedAlignedAlloc so AllocProbe
// observes all heap traffic in this binary. Replacement functions must
// not be inline, so these definitions live here (and only here) while
// the counter itself lives in alloc_probe.h.
// ---------------------------------------------------------------------------

namespace {

void* CountedAlloc(std::size_t size) {
  sparkopt::testing::g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  sparkopt::testing::g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, size) != 0) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace sparkopt {
namespace {

using sparkopt::testing::AllocProbe;

// Staircase fronts (x ascending, y descending): valid sorted
// non-dominated inputs for the 2-D kernel.
Front2 Staircase2(int n, double x_step, double y_base) {
  Front2 f;
  for (int i = 0; i < n; ++i) {
    f.Append(x_step * i, y_base - i, static_cast<size_t>(i));
  }
  return f;
}

// 3-D fronts with x strictly ascending and y strictly descending are
// mutually non-dominated for any z, and lex-sorted by construction.
Front3 Staircase3(int n, double x_step, double y_base, int z_mod) {
  Front3 f;
  for (int i = 0; i < n; ++i) {
    f.Append(x_step * i, y_base - i,
             static_cast<double>((i * 7) % z_mod), static_cast<size_t>(i));
  }
  return f;
}

TEST(AllocProbeTest, CountsHeapAllocations) {
  AllocProbe probe;
  auto p = std::make_unique<std::vector<int>>(128, 7);
  ASSERT_NE(p, nullptr);
  EXPECT_GE(probe.allocations(), 1u);
}

TEST(SteadyStateAllocTest, Merge2IsAllocationFreeAfterWarmup) {
  ParetoScratch scratch;
  const Front2 a = Staircase2(48, 1.0, 100.0);
  const Front2 b = Staircase2(32, 0.5, 80.0);
  Front2 out;
  for (int r = 0; r < 2; ++r) FlatMerge2(a, b, &out, &scratch);
  AllocProbe probe;
  for (int r = 0; r < 16; ++r) FlatMerge2(a, b, &out, &scratch);
  EXPECT_EQ(probe.allocations(), 0u);
  EXPECT_GT(out.size(), 0u);
}

TEST(SteadyStateAllocTest, Merge3IsAllocationFreeAfterWarmup) {
  ParetoScratch scratch;
  const Front3 a = Staircase3(48, 1.0, 100.0, 13);
  const Front3 b = Staircase3(32, 0.5, 80.0, 11);
  Front3 out;
  for (int r = 0; r < 2; ++r) FlatMerge3(a, b, &out, &scratch);
  AllocProbe probe;
  for (int r = 0; r < 16; ++r) FlatMerge3(a, b, &out, &scratch);
  EXPECT_EQ(probe.allocations(), 0u);
  EXPECT_GT(out.size(), 0u);
}

TEST(SteadyStateAllocTest, Positions3IsAllocationFreeAfterWarmup) {
  ParetoScratch scratch;
  const Front3 a = Staircase3(256, 1.0, 400.0, 17);
  for (int r = 0; r < 2; ++r) {
    FlatParetoPositions3(a.x.data(), a.y.data(), a.z.data(), a.size(),
                         &scratch.kept, &scratch);
  }
  AllocProbe probe;
  for (int r = 0; r < 16; ++r) {
    FlatParetoPositions3(a.x.data(), a.y.data(), a.z.data(), a.size(),
                         &scratch.kept, &scratch);
  }
  EXPECT_EQ(probe.allocations(), 0u);
  EXPECT_EQ(scratch.kept.size(), a.size());
}

TEST(SteadyStateAllocTest, Hypervolume3IsAllocationFreeAfterWarmup) {
  ParetoScratch scratch;
  const Front3 a = Staircase3(128, 1.0, 200.0, 13);
  double hv = 0.0;
  for (int r = 0; r < 2; ++r) {
    hv = FlatHypervolume3(a.x.data(), a.y.data(), a.z.data(), a.size(),
                          1e4, 1e4, 1e4, &scratch);
  }
  AllocProbe probe;
  for (int r = 0; r < 16; ++r) {
    hv = FlatHypervolume3(a.x.data(), a.y.data(), a.z.data(), a.size(),
                          1e4, 1e4, 1e4, &scratch);
  }
  EXPECT_EQ(probe.allocations(), 0u);
  EXPECT_GT(hv, 0.0);
}

std::vector<std::vector<SubQEntry>> MakeSets(int m, int per_set, int k) {
  std::vector<std::vector<SubQEntry>> sets(m);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < per_set; ++j) {
      SubQEntry e;
      e.pool_idx = i * per_set + j;
      e.f[0] = 1.0 + j;
      e.f[1] = 10.0 + per_set - j;
      if (k == 3) e.f[2] = static_cast<double>((j * 5 + i) % 7);
      sets[i].push_back(e);
    }
  }
  return sets;
}

class DagAggregatorAllocTest : public ::testing::TestWithParam<int> {};

TEST_P(DagAggregatorAllocTest, AggregateDcIsAllocationFreeAfterWarmup) {
#ifdef SPARKOPT_VERIFY
  GTEST_SKIP() << "verify builds allocate in DagAggregator's front checks";
#else
  const int k = GetParam();
  const auto sets = MakeSets(/*m=*/6, /*per_set=*/8, k);
  DagAggregator aggregator;
  AggregatedBatch batch;
  // Warm-up: node pool, scratch buffers, arena blocks, and the output
  // batch all reach their high-water capacity.
  for (int r = 0; r < 2; ++r) {
    aggregator.AggregateDc(sets, k, /*cap=*/64, /*eps=*/0.0, &batch);
  }
  AllocProbe probe;
  for (int r = 0; r < 16; ++r) {
    aggregator.AggregateDc(sets, k, /*cap=*/64, /*eps=*/0.0, &batch);
  }
  EXPECT_EQ(probe.allocations(), 0u);
  EXPECT_GT(batch.size(), 0u);
  EXPECT_EQ(batch.k, k);
#endif
}

TEST_P(DagAggregatorAllocTest, WeightedSumAndBoundaryAreAllocationFree) {
#ifdef SPARKOPT_VERIFY
  GTEST_SKIP() << "verify builds allocate in DagAggregator's front checks";
#else
  const int k = GetParam();
  const auto sets = MakeSets(/*m=*/5, /*per_set=*/6, k);
  DagAggregator aggregator;
  AggregatedBatch batch;
  for (int r = 0; r < 2; ++r) {
    aggregator.AggregateWeightedSum(sets, k, /*ws_pairs=*/11,
                                    /*normalize=*/true, &batch);
    aggregator.AggregateBoundary(sets, k, &batch);
  }
  AllocProbe probe;
  for (int r = 0; r < 16; ++r) {
    aggregator.AggregateWeightedSum(sets, k, /*ws_pairs=*/11,
                                    /*normalize=*/true, &batch);
    aggregator.AggregateBoundary(sets, k, &batch);
  }
  EXPECT_EQ(probe.allocations(), 0u);
#endif
}

INSTANTIATE_TEST_SUITE_P(Objectives, DagAggregatorAllocTest,
                         ::testing::Values(2, 3));

TEST(SteadyStateAllocTest, ArenaResetReusesBlocks) {
  MonotonicArena arena;
  for (int r = 0; r < 2; ++r) {
    arena.Reset();
    (void)arena.AllocArray<double>(1024);
    (void)arena.AllocArray<int>(513);
    (void)arena.AllocArray<char>(77);
  }
  AllocProbe probe;
  for (int r = 0; r < 16; ++r) {
    arena.Reset();
    double* d = arena.AllocArray<double>(1024);
    int* i = arena.AllocArray<int>(513);
    char* c = arena.AllocArray<char>(77);
    ASSERT_NE(d, nullptr);
    ASSERT_NE(i, nullptr);
    ASSERT_NE(c, nullptr);
  }
  EXPECT_EQ(probe.allocations(), 0u);
}

}  // namespace
}  // namespace sparkopt
