#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/pareto.h"
#include "common/pareto_flat.h"
#include "common/rng.h"

// Property suite for the k = 3 flat Pareto kernel, mirroring
// pareto_flat_test.cc: every primitive must be bitwise identical — same
// points, same payloads, same stable order — to the naive formulation.
// Random fronts are drawn with floored coordinates so duplicate points
// and ties occur constantly.

namespace sparkopt {
namespace {

std::vector<ObjectiveVector> RandomPoints3(Rng* rng, int n, bool ties) {
  std::vector<ObjectiveVector> pts(n, ObjectiveVector(3));
  for (auto& p : pts) {
    for (auto& v : p) {
      v = ties ? std::floor(rng->Uniform(0, 8)) : rng->Uniform(0, 8);
    }
  }
  return pts;
}

// O(n^2) dominance reference: kept iff no other point strictly dominates.
std::vector<size_t> ReferenceKept(const std::vector<ObjectiveVector>& pts) {
  std::vector<size_t> kept;
  for (size_t i = 0; i < pts.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < pts.size() && !dominated; ++j) {
      dominated = j != i && Dominates(pts[j], pts[i]);
    }
    if (!dominated) kept.push_back(i);
  }
  return kept;
}

// The recursive slicing hypervolume, kept verbatim from common/pareto.cc
// as the bitwise oracle for FlatHypervolume3.
double ReferenceHvRecursive(std::vector<ObjectiveVector> pts,
                            const ObjectiveVector& ref) {
  const size_t k = ref.size();
  if (pts.empty()) return 0.0;
  if (k == 2) return Hypervolume2D(pts, ref);
  std::sort(pts.begin(), pts.end(),
            [k](const ObjectiveVector& a, const ObjectiveVector& b) {
              return a[k - 1] < b[k - 1];
            });
  double hv = 0.0;
  for (size_t i = 0; i < pts.size(); ++i) {
    const double z_lo = pts[i][k - 1];
    if (z_lo >= ref[k - 1]) break;
    const double z_hi = (i + 1 < pts.size())
                            ? std::min(pts[i + 1][k - 1], ref[k - 1])
                            : ref[k - 1];
    const double depth = z_hi - z_lo;
    if (depth <= 0) continue;
    std::vector<ObjectiveVector> proj;
    ObjectiveVector sub_ref(ref.begin(), ref.end() - 1);
    for (size_t j = 0; j <= i; ++j) {
      proj.emplace_back(pts[j].begin(), pts[j].end() - 1);
    }
    hv += depth * ReferenceHvRecursive(std::move(proj), sub_ref);
  }
  return hv;
}

IndexedFront MakeFront(std::vector<ObjectiveVector> pts, bool with_payloads,
                       size_t payload_base) {
  IndexedFront f;
  f.points = std::move(pts);
  if (with_payloads) {
    for (size_t i = 0; i < f.points.size(); ++i) {
      f.payloads.push_back(payload_base + i);
    }
  }
  return f;
}

Front3 ToFront3(const std::vector<ObjectiveVector>& pts) {
  Front3 f;
  for (size_t i = 0; i < pts.size(); ++i) {
    f.Append(pts[i][0], pts[i][1], pts[i][2], i);
  }
  return f;
}

class FlatKernel3PropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FlatKernel3PropertyTest, ParetoPositionsMatchReference) {
  Rng rng(GetParam());
  ParetoScratch scratch;
  for (int round = 0; round < 20; ++round) {
    const int n = static_cast<int>(rng.NextBounded(40));
    const auto pts = RandomPoints3(&rng, n, round % 2 == 0);
    std::vector<double> x(n), y(n), z(n);
    for (int i = 0; i < n; ++i) {
      x[i] = pts[i][0];
      y[i] = pts[i][1];
      z[i] = pts[i][2];
    }
    std::vector<uint32_t> kept;
    FlatParetoPositions3(x.data(), y.data(), z.data(), n, &kept, &scratch);
    const std::vector<size_t> got(kept.begin(), kept.end());
    EXPECT_EQ(got, ReferenceKept(pts)) << "seed " << GetParam();
    // The shim must route k = 3 to the same answer.
    EXPECT_EQ(ParetoIndices(pts), ReferenceKept(pts));
  }
}

TEST_P(FlatKernel3PropertyTest, FlatPareto3CompactsInPlace) {
  Rng rng(GetParam());
  ParetoScratch scratch;
  for (int round = 0; round < 10; ++round) {
    const auto pts =
        RandomPoints3(&rng, 1 + rng.NextBounded(40), round % 2 == 0);
    Front3 front = ToFront3(pts);
    FlatPareto3(&front, &scratch);
    const auto ref = ReferenceKept(pts);
    ASSERT_EQ(front.size(), ref.size()) << "seed " << GetParam();
    for (size_t p = 0; p < ref.size(); ++p) {
      EXPECT_EQ(front.payload[p], ref[p]);
      EXPECT_EQ(front.x[p], pts[ref[p]][0]);
      EXPECT_EQ(front.y[p], pts[ref[p]][1]);
      EXPECT_EQ(front.z[p], pts[ref[p]][2]);
    }
  }
}

// FlatMerge3 vs the materialized cross product + quadratic filter:
// identical sums, cross-product order, and aligned (i, j) pairs.
TEST_P(FlatKernel3PropertyTest, MergeMatchesMaterializedProduct) {
  Rng rng(GetParam());
  ParetoScratch scratch;
  for (int round = 0; round < 12; ++round) {
    const bool ties = round % 2 == 0;
    const auto pa = RandomPoints3(&rng, 1 + rng.NextBounded(14), ties);
    const auto pb = RandomPoints3(&rng, 1 + rng.NextBounded(14), ties);
    Front3 a = ToFront3(pa), b = ToFront3(pb), out;
    FlatMerge3(a, b, &out, &scratch);

    std::vector<ObjectiveVector> product;
    for (size_t i = 0; i < pa.size(); ++i) {
      for (size_t j = 0; j < pb.size(); ++j) {
        product.push_back(
            {pa[i][0] + pb[j][0], pa[i][1] + pb[j][1], pa[i][2] + pb[j][2]});
      }
    }
    const auto ref = ReferenceKept(product);
    ASSERT_EQ(out.size(), ref.size()) << "seed " << GetParam();
    ASSERT_EQ(scratch.pairs.size(), ref.size());
    for (size_t p = 0; p < ref.size(); ++p) {
      const size_t i = ref[p] / pb.size();
      const size_t j = ref[p] % pb.size();
      EXPECT_EQ(scratch.pairs[p].i, i);
      EXPECT_EQ(scratch.pairs[p].j, j);
      EXPECT_EQ(out.x[p], pa[i][0] + pb[j][0]);
      EXPECT_EQ(out.y[p], pa[i][1] + pb[j][1]);
      EXPECT_EQ(out.z[p], pa[i][2] + pb[j][2]);
      EXPECT_EQ(out.payload[p], p);
    }
  }
}

// MergeFronts (k = 3 flat path) vs MergeFrontsNaive, with a pre-populated
// combination table to pin the append contract — the k = 3 sibling of
// MergeMatchesNaiveBitwise.
TEST_P(FlatKernel3PropertyTest, MergeFrontsMatchesNaiveBitwise) {
  Rng rng(GetParam());
  for (int round = 0; round < 12; ++round) {
    const bool ties = round % 2 == 0;
    const bool with_payloads = round % 3 != 0;
    const auto a =
        MakeFront(RandomPoints3(&rng, 1 + rng.NextBounded(14), ties),
                  with_payloads, 100);
    const auto b =
        MakeFront(RandomPoints3(&rng, 1 + rng.NextBounded(14), ties),
                  with_payloads, 500);

    std::vector<std::pair<size_t, size_t>> combos_flat(3, {9, 9});
    std::vector<std::pair<size_t, size_t>> combos_naive(3, {9, 9});
    const auto flat = MergeFronts(a, b, &combos_flat);
    const auto naive = MergeFrontsNaive(a, b, &combos_naive);

    EXPECT_EQ(flat.points, naive.points) << "seed " << GetParam();
    EXPECT_EQ(flat.payloads, naive.payloads);
    EXPECT_EQ(combos_flat, combos_naive);
    ASSERT_EQ(combos_flat.size(), 3 + flat.size());
    for (size_t p = 0; p < flat.size(); ++p) {
      EXPECT_EQ(flat.payloads[p], 3 + p);
    }
  }
}

// Chained k = 3 merges over one combination table.
TEST_P(FlatKernel3PropertyTest, ChainedMergesShareComboTable) {
  Rng rng(GetParam());
  auto f1 = MakeFront(RandomPoints3(&rng, 6, true), /*with_payloads=*/false, 0);
  auto f2 = MakeFront(RandomPoints3(&rng, 7, true), false, 0);
  auto f3 = MakeFront(RandomPoints3(&rng, 5, true), false, 0);

  std::vector<std::pair<size_t, size_t>> table;
  const auto m12 = MergeFronts(f1, f2, &table);
  const size_t base = table.size();
  const auto m123 = MergeFronts(m12, f3, &table);
  ASSERT_EQ(table.size(), base + m123.size());
  for (size_t p = 0; p < m123.size(); ++p) {
    const auto [left, right] = table[m123.payloads[p]];
    const auto [i1, i2] = table[left];
    for (int d = 0; d < 3; ++d) {
      const double v =
          f1.points[i1][d] + f2.points[i2][d] + f3.points[right][d];
      EXPECT_EQ(m123.points[p][d], v);
    }
  }
}

TEST_P(FlatKernel3PropertyTest, HypervolumeMatchesRecursiveBitwise) {
  Rng rng(GetParam());
  ParetoScratch scratch;
  for (int round = 0; round < 20; ++round) {
    const int n = static_cast<int>(rng.NextBounded(24));
    const auto pts = RandomPoints3(&rng, n, round % 2 == 0);
    const ObjectiveVector ref = {rng.Uniform(4, 10), rng.Uniform(4, 10),
                                 rng.Uniform(4, 10)};
    std::vector<double> x(n), y(n), z(n);
    for (int i = 0; i < n; ++i) {
      x[i] = pts[i][0];
      y[i] = pts[i][1];
      z[i] = pts[i][2];
    }
    // EXPECT_EQ, not NEAR: same terms in the same order.
    const double flat = FlatHypervolume3(x.data(), y.data(), z.data(), n,
                                         ref[0], ref[1], ref[2], &scratch);
    EXPECT_EQ(flat, ReferenceHvRecursive(pts, ref)) << "seed " << GetParam();
    // The k-generic shim must agree too.
    EXPECT_EQ(Hypervolume(pts, ref), ReferenceHvRecursive(pts, ref));
  }
}

// Incremental archive == sorted batch filter (values and multiplicity).
TEST_P(FlatKernel3PropertyTest, ParetoInsertMatchesBatchFilter) {
  Rng rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    const auto pts =
        RandomPoints3(&rng, 1 + rng.NextBounded(50), round % 2 == 0);
    Front3 archive;
    for (size_t i = 0; i < pts.size(); ++i) {
      ParetoInsert3(&archive, pts[i][0], pts[i][1], pts[i][2], i);
    }
    std::vector<ObjectiveVector> batch = ParetoFilter(pts);
    std::sort(batch.begin(), batch.end());
    ASSERT_EQ(archive.size(), batch.size()) << "seed " << GetParam();
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(archive.x[i], batch[i][0]);
      EXPECT_EQ(archive.y[i], batch[i][1]);
      EXPECT_EQ(archive.z[i], batch[i][2]);
      EXPECT_EQ(pts[archive.payload[i]][0], archive.x[i]);
      EXPECT_EQ(pts[archive.payload[i]][1], archive.y[i]);
      EXPECT_EQ(pts[archive.payload[i]][2], archive.z[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatKernel3PropertyTest,
                         ::testing::Values(3, 13, 37, 97, 181, 331));

TEST(FlatMerge3Test, EmptyAndSingletonFronts) {
  ParetoScratch scratch;
  Front3 empty, single, out;
  single.Append(2.0, 3.0, 4.0, 0);

  FlatMerge3(empty, single, &out, &scratch);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(scratch.pairs.empty());
  FlatMerge3(single, empty, &out, &scratch);
  EXPECT_TRUE(out.empty());

  Front3 other;
  other.Append(5.0, 7.0, 1.0, 0);
  FlatMerge3(single, other, &out, &scratch);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.x[0], 7.0);
  EXPECT_EQ(out.y[0], 10.0);
  EXPECT_EQ(out.z[0], 5.0);
  EXPECT_EQ(out.payload[0], 0u);
  ASSERT_EQ(scratch.pairs.size(), 1u);
  EXPECT_EQ(scratch.pairs[0].i, 0u);
  EXPECT_EQ(scratch.pairs[0].j, 0u);
}

TEST(FlatMerge3Test, CrossProductOrderAndAlignedPairs) {
  // a = {(0,4,1), (2,0,3)}, b = {(1,1,0), (3,0,2)}. Sums in cross-product
  // order: (1,5,1), (3,4,3), (3,1,3), (5,0,5) — (3,4,3) is dominated by
  // (3,1,3); everything else survives.
  Front3 a, b, out;
  a.Append(0, 4, 1, 0);
  a.Append(2, 0, 3, 1);
  b.Append(1, 1, 0, 0);
  b.Append(3, 0, 2, 1);
  ParetoScratch scratch;
  FlatMerge3(a, b, &out, &scratch);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out.x, (std::vector<double>{1, 3, 5}));
  EXPECT_EQ(out.y, (std::vector<double>{5, 1, 0}));
  EXPECT_EQ(out.z, (std::vector<double>{1, 3, 5}));
  ASSERT_EQ(scratch.pairs.size(), 3u);
  EXPECT_EQ(scratch.pairs[1].i, 1u);
  EXPECT_EQ(scratch.pairs[1].j, 0u);
}

TEST(ParetoInsert3Test, RejectsDominatedKeepsDuplicates) {
  Front3 front;
  EXPECT_TRUE(ParetoInsert3(&front, 2, 2, 2, 0));
  EXPECT_FALSE(ParetoInsert3(&front, 3, 3, 3, 1));  // dominated
  EXPECT_TRUE(ParetoInsert3(&front, 2, 2, 2, 2));   // exact duplicate kept
  EXPECT_EQ(front.size(), 2u);
  // Incomparable on z: stays alongside the duplicates.
  EXPECT_TRUE(ParetoInsert3(&front, 3, 3, 1, 3));
  EXPECT_EQ(front.size(), 3u);
  EXPECT_TRUE(ParetoInsert3(&front, 1, 1, 1, 4));  // dominates all three
  EXPECT_EQ(front.size(), 1u);
  EXPECT_EQ(front.payload[0], 4u);
}

TEST(ParetoInsert3Test, RemovesNonContiguousDominatedRun) {
  Front3 front;
  // Archive sorted by (x, y, z): (1,5,5), (2,1,9), (3,4,4), (4,0,9).
  EXPECT_TRUE(ParetoInsert3(&front, 1, 5, 5, 0));
  EXPECT_TRUE(ParetoInsert3(&front, 2, 1, 9, 1));
  EXPECT_TRUE(ParetoInsert3(&front, 3, 4, 4, 2));
  EXPECT_TRUE(ParetoInsert3(&front, 4, 0, 9, 3));
  ASSERT_EQ(front.size(), 4u);
  // (2,3,3) dominates (3,4,4) but not (2,1,9)/(4,0,9) — the dominated
  // point is sandwiched between survivors.
  EXPECT_TRUE(ParetoInsert3(&front, 2, 3, 3, 4));
  ASSERT_EQ(front.size(), 4u);
  EXPECT_EQ(front.x, (std::vector<double>{1, 2, 2, 4}));
  EXPECT_EQ(front.y, (std::vector<double>{5, 1, 3, 0}));
  EXPECT_EQ(front.z, (std::vector<double>{5, 9, 3, 9}));
  EXPECT_EQ(front.payload, (std::vector<size_t>{0, 1, 4, 3}));
}

}  // namespace
}  // namespace sparkopt
