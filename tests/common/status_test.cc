#include "common/status.h"

#include <gtest/gtest.h>

namespace sparkopt {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  auto s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOr) {
  Result<int> ok = 1;
  Result<int> err = Status::Internal("boom");
  EXPECT_EQ(ok.value_or(9), 1);
  EXPECT_EQ(err.value_or(9), 9);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

Status Propagate(bool fail) {
  SPARKOPT_RETURN_NOT_OK(fail ? Status::Internal("inner") : Status::OK());
  return Status::OK();
}

TEST(ReturnNotOkTest, PropagatesAndPasses) {
  EXPECT_TRUE(Propagate(false).ok());
  EXPECT_EQ(Propagate(true).message(), "inner");
}

}  // namespace
}  // namespace sparkopt
