#pragma once

#include <atomic>
#include <cstdint>

/// \file alloc_probe.h
/// \brief Global heap-allocation counter for zero-allocation tests.
///
/// The test binary that includes this header must also define the
/// replaceable global `operator new` / `operator delete` overloads that
/// bump `g_alloc_calls` (see tests/common/alloc_test.cc) — replacement
/// allocation functions cannot be inline, so the definitions live in
/// exactly one translation unit. With that in place, `AllocProbe`
/// snapshots the counter so a test can assert that a region of code
/// performed no heap allocations at all:
///
///   AllocProbe probe;
///   HotPath();
///   EXPECT_EQ(probe.allocations(), 0u);
///
/// The counter is relaxed-atomic: probes tolerate background threads
/// but a zero assertion is only meaningful when the measured region is
/// the sole allocator (run single-threaded regions or idle pools).

namespace sparkopt {
namespace testing {

/// Total calls into the replaced global operator new (all forms).
inline std::atomic<uint64_t> g_alloc_calls{0};

/// Snapshot-based allocation counter for a code region.
class AllocProbe {
 public:
  AllocProbe() : start_(g_alloc_calls.load(std::memory_order_relaxed)) {}

  /// Allocations observed since construction (or the last Reset).
  uint64_t allocations() const {
    return g_alloc_calls.load(std::memory_order_relaxed) - start_;
  }

  void Reset() { start_ = g_alloc_calls.load(std::memory_order_relaxed); }

 private:
  uint64_t start_;
};

}  // namespace testing
}  // namespace sparkopt
