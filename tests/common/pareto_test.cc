#include "common/pareto.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace sparkopt {
namespace {

TEST(DominatesTest, StrictDominance) {
  EXPECT_TRUE(Dominates({1.0, 1.0}, {2.0, 2.0}));
  EXPECT_TRUE(Dominates({1.0, 2.0}, {2.0, 2.0}));
  EXPECT_TRUE(Dominates({1.0, 2.0}, {1.0, 3.0}));
}

TEST(DominatesTest, EqualPointsDoNotDominate) {
  EXPECT_FALSE(Dominates({1.0, 2.0}, {1.0, 2.0}));
}

TEST(DominatesTest, IncomparablePoints) {
  EXPECT_FALSE(Dominates({1.0, 3.0}, {2.0, 2.0}));
  EXPECT_FALSE(Dominates({2.0, 2.0}, {1.0, 3.0}));
}

TEST(DominatesTest, ThreeObjectives) {
  EXPECT_TRUE(Dominates({1, 1, 1}, {1, 1, 2}));
  EXPECT_FALSE(Dominates({1, 1, 2}, {1, 2, 1}));
}

TEST(ParetoIndicesTest, SimpleFront2D) {
  std::vector<ObjectiveVector> pts = {
      {1, 5}, {2, 3}, {3, 4}, {4, 1}, {5, 5}};
  auto keep = ParetoIndices(pts);
  EXPECT_EQ(keep, (std::vector<size_t>{0, 1, 3}));
}

TEST(ParetoIndicesTest, EmptyInput) {
  EXPECT_TRUE(ParetoIndices({}).empty());
}

TEST(ParetoIndicesTest, SinglePoint) {
  EXPECT_EQ(ParetoIndices({{1.0, 2.0}}).size(), 1u);
}

TEST(ParetoIndicesTest, AllIdenticalPointsKept) {
  std::vector<ObjectiveVector> pts(4, {1.0, 1.0});
  EXPECT_EQ(ParetoIndices(pts).size(), 4u);
}

TEST(ParetoIndicesTest, DominatedDuplicateRemoved) {
  std::vector<ObjectiveVector> pts = {{1, 1}, {2, 2}, {2, 2}};
  EXPECT_EQ(ParetoIndices(pts).size(), 1u);
}

TEST(ParetoIndicesTest, ThreeObjectiveFront) {
  std::vector<ObjectiveVector> pts = {
      {1, 2, 3}, {3, 2, 1}, {2, 2, 2}, {3, 3, 3}, {1, 1, 4}};
  auto keep = ParetoIndices(pts);
  // {3,3,3} is dominated by {2,2,2}; the rest are incomparable.
  EXPECT_EQ(keep, (std::vector<size_t>{0, 1, 2, 4}));
}

// Property: no kept point is dominated by any input point, and every
// dropped point is dominated by some kept point.
class ParetoPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParetoPropertyTest, FilterIsSoundAndComplete) {
  Rng rng(GetParam());
  const int n = 50 + static_cast<int>(rng.NextBounded(150));
  const int k = 2 + static_cast<int>(rng.NextBounded(2));
  std::vector<ObjectiveVector> pts(n, ObjectiveVector(k));
  for (auto& p : pts) {
    for (auto& v : p) v = std::floor(rng.Uniform(0, 10));
  }
  auto keep = ParetoIndices(pts);
  std::vector<bool> kept(n, false);
  for (size_t i : keep) kept[i] = true;

  for (size_t i : keep) {
    for (const auto& q : pts) {
      EXPECT_FALSE(Dominates(q, pts[i]))
          << "kept point is dominated (seed " << GetParam() << ")";
    }
  }
  for (int i = 0; i < n; ++i) {
    if (kept[i]) continue;
    bool dominated_by_kept = false;
    bool duplicate_of_kept = false;
    for (size_t j : keep) {
      if (Dominates(pts[j], pts[i])) dominated_by_kept = true;
      if (pts[j] == pts[i]) duplicate_of_kept = true;
    }
    EXPECT_TRUE(dominated_by_kept || duplicate_of_kept)
        << "dropped point " << i << " is not dominated (seed "
        << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParetoPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

TEST(Hypervolume2DTest, SinglePoint) {
  EXPECT_DOUBLE_EQ(Hypervolume2D({{1, 1}}, {3, 3}), 4.0);
}

TEST(Hypervolume2DTest, TwoPointStaircase) {
  // (1,2) and (2,1) vs ref (3,3): area = 2*1 + 1*... staircase = 3.
  EXPECT_DOUBLE_EQ(Hypervolume2D({{1, 2}, {2, 1}}, {3, 3}), 3.0);
}

TEST(Hypervolume2DTest, PointOutsideRefIgnored) {
  EXPECT_DOUBLE_EQ(Hypervolume2D({{4, 4}}, {3, 3}), 0.0);
}

TEST(Hypervolume2DTest, DominatedPointDoesNotChangeVolume) {
  const double a = Hypervolume2D({{1, 2}, {2, 1}}, {3, 3});
  const double b = Hypervolume2D({{1, 2}, {2, 1}, {2.5, 2.5}}, {3, 3});
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Hypervolume2DTest, EmptyFrontIsZero) {
  EXPECT_DOUBLE_EQ(Hypervolume2D({}, {1, 1}), 0.0);
}

TEST(Hypervolume2DTest, MorePointsNeverReduceVolume) {
  Rng rng(99);
  std::vector<ObjectiveVector> pts;
  double last = 0.0;
  for (int i = 0; i < 30; ++i) {
    pts.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
    const double hv = Hypervolume2D(pts, {1.2, 1.2});
    EXPECT_GE(hv, last - 1e-12);
    last = hv;
  }
}

TEST(HypervolumeTest, ThreeDBox) {
  // One point at origin of a unit cube from ref (1,1,1).
  EXPECT_NEAR(Hypervolume({{0, 0, 0}}, {1, 1, 1}), 1.0, 1e-12);
}

TEST(HypervolumeTest, ThreeDTwoDisjointContributions) {
  const double hv = Hypervolume({{0, 0.5, 0.5}, {0.5, 0, 0}}, {1, 1, 1});
  // Union of two boxes: 1*0.5*0.5 + 0.5*1*1 - overlap 0.5*0.5*0.5.
  EXPECT_NEAR(hv, 0.25 + 0.5 - 0.125, 1e-9);
}

TEST(WunTest, PrefersLatencyWithLatencyHeavyWeights) {
  // Front: fast-expensive vs slow-cheap.
  std::vector<ObjectiveVector> front = {{1.0, 10.0}, {10.0, 1.0}};
  EXPECT_EQ(WeightedUtopiaNearest(front, {0.9, 0.1}), 0u);
  EXPECT_EQ(WeightedUtopiaNearest(front, {0.1, 0.9}), 1u);
}

TEST(WunTest, BalancedWeightsPickKnee) {
  std::vector<ObjectiveVector> front = {
      {0.0, 1.0}, {0.1, 0.1}, {1.0, 0.0}};
  EXPECT_EQ(WeightedUtopiaNearest(front, {0.5, 0.5}), 1u);
}

TEST(WunTest, EmptyFront) {
  EXPECT_EQ(WeightedUtopiaNearest({}, {0.5, 0.5}), SIZE_MAX);
}

TEST(WunTest, SinglePointAlwaysChosen) {
  EXPECT_EQ(WeightedUtopiaNearest({{5, 5}}, {0.9, 0.1}), 0u);
}

TEST(FilterDominatedTest, PayloadsFollowPoints) {
  IndexedFront f;
  f.points = {{1, 5}, {2, 3}, {3, 4}, {4, 1}};
  f.payloads = {10, 20, 30, 40};
  auto out = FilterDominated(std::move(f));
  ASSERT_EQ(out.points.size(), 3u);
  EXPECT_EQ(out.payloads, (std::vector<size_t>{10, 20, 40}));
}

TEST(MergeFrontsTest, SumsObjectives) {
  IndexedFront a, b;
  a.points = {{1, 2}};
  b.points = {{10, 20}};
  std::vector<std::pair<size_t, size_t>> combos;
  auto merged = MergeFronts(a, b, &combos);
  ASSERT_EQ(merged.points.size(), 1u);
  EXPECT_EQ(merged.points[0], (ObjectiveVector{11, 22}));
  ASSERT_EQ(combos.size(), 1u);
  EXPECT_EQ(combos[0], (std::pair<size_t, size_t>{0, 0}));
}

// Property (Proposition B.1): Pf(Pf(F) ⊕ Pf(G)) == Pf(F x G). Merging the
// children's Pareto fronts loses no query-level Pareto point.
class MinkowskiLawTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MinkowskiLawTest, MergeOfFrontsEqualsFrontOfProduct) {
  Rng rng(GetParam());
  auto random_set = [&](int n) {
    std::vector<ObjectiveVector> pts(n, ObjectiveVector(2));
    for (auto& p : pts) {
      p[0] = std::floor(rng.Uniform(0, 20));
      p[1] = std::floor(rng.Uniform(0, 20));
    }
    return pts;
  };
  const auto f = random_set(12);
  const auto g = random_set(14);

  // Right side: Pareto front of the full product.
  std::vector<ObjectiveVector> product;
  for (const auto& a : f) {
    for (const auto& b : g) {
      product.push_back({a[0] + b[0], a[1] + b[1]});
    }
  }
  auto rhs = ParetoFilter(product);
  std::sort(rhs.begin(), rhs.end());
  rhs.erase(std::unique(rhs.begin(), rhs.end()), rhs.end());

  // Left side: merge of the two children's fronts.
  IndexedFront fa, fb;
  fa.points = ParetoFilter(f);
  fb.points = ParetoFilter(g);
  auto merged = MergeFronts(fa, fb, nullptr);
  auto lhs = merged.points;
  std::sort(lhs.begin(), lhs.end());
  lhs.erase(std::unique(lhs.begin(), lhs.end()), lhs.end());

  EXPECT_EQ(lhs, rhs) << "Minkowski merge law violated (seed "
                      << GetParam() << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinkowskiLawTest,
                         ::testing::Values(7, 11, 17, 23, 29, 41, 53, 71));

}  // namespace
}  // namespace sparkopt
