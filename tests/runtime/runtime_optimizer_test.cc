#include "runtime/runtime_optimizer.h"

#include <gtest/gtest.h>

#include "workload/tpch.h"

namespace sparkopt {
namespace {

struct Fixture {
  std::vector<TableStats> catalog = TpchCatalog(10);
  ClusterSpec cluster;
  CostModelParams cost;
  Query q;
  SubQEvaluator eval;

  explicit Fixture(int qid = 3)
      : q(*MakeTpchQuery(qid, &catalog)), eval(&q, cluster, cost) {}
};

// ---- AggregateForSubmission ---------------------------------------------

std::vector<std::vector<double>> PerSubqConfs(
    const std::vector<SubQuery>& subqs,
    const std::vector<double>& bc_thresholds,
    const std::vector<double>& partitions) {
  std::vector<std::vector<double>> confs;
  for (size_t i = 0; i < subqs.size(); ++i) {
    auto c = DefaultSparkConfig();
    c[kBroadcastJoinThresholdMb] = bc_thresholds[i % bc_thresholds.size()];
    c[kShufflePartitions] = partitions[i % partitions.size()];
    confs.push_back(std::move(c));
  }
  return confs;
}

TEST(AggregateForSubmissionTest, BroadcastThresholdTakesJoinMinimum) {
  Fixture fx;
  const auto& subqs = fx.eval.subqueries();
  // Give every subQ a distinct threshold; join subQs carry 64 and 32.
  std::vector<std::vector<double>> confs;
  for (const auto& sq : subqs) {
    auto c = DefaultSparkConfig();
    c[kBroadcastJoinThresholdMb] = sq.has_join ? (sq.id % 2 ? 64 : 32) : 200;
    confs.push_back(std::move(c));
  }
  PlanParams tp;
  StageParams ts;
  AggregateForSubmission(confs, subqs, &tp, &ts);
  EXPECT_DOUBLE_EQ(tp.broadcast_join_threshold_mb, 32);
}

TEST(AggregateForSubmissionTest, ThresholdFlooredAtDefault) {
  Fixture fx;
  const auto& subqs = fx.eval.subqueries();
  std::vector<std::vector<double>> confs;
  for (size_t i = 0; i < subqs.size(); ++i) {
    auto c = DefaultSparkConfig();
    c[kBroadcastJoinThresholdMb] = 1;  // below the 10 MB Spark default
    confs.push_back(std::move(c));
  }
  PlanParams tp;
  StageParams ts;
  AggregateForSubmission(confs, subqs, &tp, &ts);
  EXPECT_DOUBLE_EQ(tp.broadcast_join_threshold_mb, 10);
}

TEST(AggregateForSubmissionTest, ShufflePartitionsTakeMaximum) {
  Fixture fx;
  const auto& subqs = fx.eval.subqueries();
  auto confs =
      PerSubqConfs(subqs, {10}, {64, 512, 128, 32, 256});
  PlanParams tp;
  StageParams ts;
  AggregateForSubmission(confs, subqs, &tp, &ts);
  EXPECT_EQ(tp.shuffle_partitions, 512);
}

TEST(AggregateForSubmissionTest, EmptyInputIsNoOp) {
  PlanParams tp;
  tp.shuffle_partitions = 123;
  StageParams ts;
  AggregateForSubmission({}, {}, &tp, &ts);
  EXPECT_EQ(tp.shuffle_partitions, 123);
}

TEST(AggregateForSubmissionTest, StageParamsAggregated) {
  Fixture fx;
  const auto& subqs = fx.eval.subqueries();
  std::vector<std::vector<double>> confs;
  for (size_t i = 0; i < subqs.size(); ++i) {
    auto c = DefaultSparkConfig();
    c[kRebalanceSmallFactor] = 0.3;
    confs.push_back(std::move(c));
  }
  PlanParams tp;
  StageParams ts;
  AggregateForSubmission(confs, subqs, &tp, &ts);
  EXPECT_DOUBLE_EQ(ts.rebalance_small_factor, 0.3);
}

// ---- RuntimeOptimizer hooks ----------------------------------------------

TEST(RuntimeOptimizerTest, PrunesJoinFreeCollapsedPlans) {
  Fixture fx(1);  // TPCH-Q1 has no joins
  RuntimeOptimizerOptions opts;
  RuntimeOptimizer opt(&fx.eval, opts);
  opt.set_context(DecodeContext(DefaultSparkConfig()));
  std::vector<PlanParams> theta_p = {DecodePlan(DefaultSparkConfig())};
  std::vector<bool> completed(fx.eval.num_subqs(), false);
  completed[0] = true;
  opt.OnPlanCollapsed(fx.q.plan, fx.eval.subqueries(), completed, &theta_p);
  EXPECT_EQ(opt.stats().lqp_pruned, 1);
  EXPECT_EQ(opt.stats().lqp_sent, 0);
}

TEST(RuntimeOptimizerTest, SendsWhenJoinInputsReady) {
  Fixture fx(3);
  RuntimeOptimizerOptions opts;
  RuntimeOptimizer opt(&fx.eval, opts);
  opt.set_context(DecodeContext(DefaultSparkConfig()));
  std::vector<PlanParams> theta_p = {DecodePlan(DefaultSparkConfig())};
  // Complete the scan subQs: the first join becomes actionable.
  std::vector<bool> completed(fx.eval.num_subqs(), false);
  for (const auto& sq : fx.eval.subqueries()) {
    if (sq.has_scan) completed[sq.id] = true;
  }
  opt.OnPlanCollapsed(fx.q.plan, fx.eval.subqueries(), completed, &theta_p);
  EXPECT_EQ(opt.stats().lqp_sent, 1);
  // theta_p expanded to fine-grained copies.
  EXPECT_EQ(static_cast<int>(theta_p.size()), fx.eval.num_subqs());
  EXPECT_GT(opt.overhead_seconds(), 0.0);
}

TEST(RuntimeOptimizerTest, PruningDisabledAlwaysSends) {
  Fixture fx(1);
  RuntimeOptimizerOptions opts;
  opts.enable_pruning = false;
  RuntimeOptimizer opt(&fx.eval, opts);
  opt.set_context(DecodeContext(DefaultSparkConfig()));
  std::vector<PlanParams> theta_p = {DecodePlan(DefaultSparkConfig())};
  std::vector<bool> completed(fx.eval.num_subqs(), false);
  completed[0] = true;
  opt.OnPlanCollapsed(fx.q.plan, fx.eval.subqueries(), completed, &theta_p);
  EXPECT_EQ(opt.stats().lqp_sent, 1);
}

TEST(RuntimeOptimizerTest, QsRequestsPruneScansAndSmallStages) {
  Fixture fx(3);
  RuntimeOptimizerOptions opts;
  RuntimeOptimizer opt(&fx.eval, opts);
  opt.set_context(DecodeContext(DefaultSparkConfig()));

  PhysicalPlanner planner(&fx.q.plan, fx.eval.subqueries());
  auto conf = DefaultSparkConfig();
  auto pp = planner.Plan(DecodeContext(conf), {DecodePlan(conf)},
                         {DecodeStage(conf)}, CardinalitySource::kEstimated);
  ASSERT_TRUE(pp.ok());
  std::vector<int> ready;
  for (const auto& st : pp->stages) ready.push_back(st.id);
  std::vector<StageParams> theta_s = {DecodeStage(conf)};
  opt.OnStagesReady(*pp, ready, fx.eval.subqueries(), &theta_s);
  // Scan stages must be pruned.
  EXPECT_GT(opt.stats().qs_pruned, 0);
  EXPECT_EQ(opt.stats().qs_sent + opt.stats().qs_pruned,
            static_cast<int>(ready.size()));
}

TEST(RuntimeOptimizerTest, ResolvesBitwiseIdenticalAcrossThreadCounts) {
  // The per-subQ re-solves fan out across workers; the chosen parameters
  // must not depend on the thread count.
  auto resolve = [](int threads) {
    Fixture fx(3);
    RuntimeOptimizerOptions opts;
    opts.enable_pruning = false;
    opts.num_threads = threads;
    RuntimeOptimizer opt(&fx.eval, opts);
    opt.set_context(DecodeContext(DefaultSparkConfig()));
    std::vector<PlanParams> theta_p = {DecodePlan(DefaultSparkConfig())};
    std::vector<bool> completed(fx.eval.num_subqs(), false);
    completed[0] = true;
    opt.OnPlanCollapsed(fx.q.plan, fx.eval.subqueries(), completed,
                        &theta_p);
    return theta_p;
  };
  const auto seq = resolve(1);
  const auto par = resolve(4);
  ASSERT_EQ(seq.size(), par.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].shuffle_partitions, par[i].shuffle_partitions);
    EXPECT_EQ(seq[i].broadcast_join_threshold_mb,
              par[i].broadcast_join_threshold_mb);
    EXPECT_EQ(seq[i].advisory_partition_size_mb,
              par[i].advisory_partition_size_mb);
  }
}

TEST(RuntimeOptimizerTest, ScreeningResolvesDeterministicallyAcrossThreads) {
  // The runtime re-solve with analytic screening: survivors are selected
  // on the calling thread, so the chosen parameters must stay
  // thread-count independent (and the incumbent is always escalated via
  // keep_prefix, so hysteresis normalization keeps its reference point).
  auto resolve = [](int threads) {
    Fixture fx(3);
    RuntimeOptimizerOptions opts;
    opts.enable_pruning = false;
    opts.num_threads = threads;
    opts.fidelity.mode = FidelityMode::kAnalytic;
    opts.fidelity.survival_margin = 0.05;
    RuntimeOptimizer opt(&fx.eval, opts);
    opt.set_context(DecodeContext(DefaultSparkConfig()));
    std::vector<PlanParams> theta_p = {DecodePlan(DefaultSparkConfig())};
    std::vector<bool> completed(fx.eval.num_subqs(), false);
    completed[0] = true;
    opt.OnPlanCollapsed(fx.q.plan, fx.eval.subqueries(), completed,
                        &theta_p);
    return theta_p;
  };
  const auto seq = resolve(1);
  const auto par = resolve(4);
  ASSERT_EQ(seq.size(), par.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].shuffle_partitions, par[i].shuffle_partitions);
    EXPECT_EQ(seq[i].broadcast_join_threshold_mb,
              par[i].broadcast_join_threshold_mb);
    EXPECT_EQ(seq[i].advisory_partition_size_mb,
              par[i].advisory_partition_size_mb);
  }
}

TEST(RequestStatsTest, PrunedFraction) {
  RequestStats s;
  s.lqp_sent = 2;
  s.lqp_pruned = 6;
  s.qs_sent = 2;
  s.qs_pruned = 10;
  EXPECT_DOUBLE_EQ(s.PrunedFraction(), 16.0 / 20.0);
  RequestStats empty;
  EXPECT_DOUBLE_EQ(empty.PrunedFraction(), 0.0);
}

}  // namespace
}  // namespace sparkopt
