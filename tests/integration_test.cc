/// \file integration_test.cc
/// \brief Cross-module integration checks: the full pipeline from
/// workload construction through compile-time MOO, submission
/// aggregation, adaptive execution and runtime re-optimization.

#include <gtest/gtest.h>

#include "common/stats.h"
#include "model/trainer.h"
#include "moo/objective_models.h"
#include "tuner/tuner.h"
#include "workload/tpcds.h"
#include "workload/tpch.h"

namespace sparkopt {
namespace {

TunerOptions FastOptions() {
  TunerOptions o;
  o.hmooc.theta_c_samples = 24;
  o.hmooc.clusters = 6;
  o.hmooc.theta_p_samples = 32;
  o.hmooc.enriched_samples = 8;
  return o;
}

TEST(IntegrationTest, TpchSweepAllMethodsProduceValidExecutions) {
  auto catalog = TpchCatalog(10);
  Tuner tuner(FastOptions());
  for (int qid = 1; qid <= 22; qid += 3) {
    auto q = *MakeTpchQuery(qid, &catalog);
    for (auto method :
         {TuningMethod::kDefault, TuningMethod::kHmooc3,
          TuningMethod::kHmooc3Plus}) {
      auto out = tuner.Run(q, method);
      ASSERT_TRUE(out.ok())
          << q.name << " " << TuningMethodName(method) << ": "
          << out.status().ToString();
      EXPECT_GT(out->execution.exec.latency, 0.0) << q.name;
      // Broadcast joins can merge stages, so executed stages <= subQs.
      EXPECT_LE(out->execution.exec.stages.size(),
                q.plan.DecomposeSubQueries().size())
          << q.name << " " << TuningMethodName(method);
      EXPECT_GE(out->execution.exec.stages.size(), 1u);
    }
  }
}

TEST(IntegrationTest, TpcdsSubsetExecutes) {
  auto catalog = TpcdsCatalog(10);
  Tuner tuner(FastOptions());
  for (int qid = 1; qid <= 102; qid += 17) {
    auto q = *MakeTpcdsQuery(qid, &catalog);
    auto def = tuner.Run(q, TuningMethod::kDefault);
    auto h3 = tuner.Run(q, TuningMethod::kHmooc3);
    ASSERT_TRUE(def.ok()) << q.name;
    ASSERT_TRUE(h3.ok()) << q.name;
    EXPECT_GT(def->execution.exec.latency, 0.0);
    EXPECT_GT(h3->execution.exec.latency, 0.0);
  }
}

TEST(IntegrationTest, AnalyticalLatencyCorrelatesWithActual) {
  // Figure 5's premise: analytical latency tracks wall-clock latency
  // across the benchmark under the default configuration.
  auto catalog = TpchCatalog(10);
  Tuner tuner(FastOptions());
  std::vector<double> analytical, actual;
  for (int qid = 1; qid <= 22; ++qid) {
    auto q = *MakeTpchQuery(qid, &catalog);
    auto out = *tuner.Run(q, TuningMethod::kDefault);
    analytical.push_back(out.execution.exec.analytical_latency);
    actual.push_back(out.execution.exec.latency);
  }
  EXPECT_GT(PearsonCorrelation(analytical, actual), 0.8);
}

TEST(IntegrationTest, RequestPruningCutsMostCalls) {
  // Appendix C.2.2: the pruning rules eliminate the vast majority of
  // runtime optimization requests.
  auto catalog = TpchCatalog(10);
  auto opts = FastOptions();
  Tuner pruned_tuner(opts);
  opts.runtime.enable_pruning = false;
  Tuner unpruned_tuner(opts);
  int sent_pruned = 0, sent_unpruned = 0;
  for (int qid : {3, 5, 8, 9, 21}) {
    auto q = *MakeTpchQuery(qid, &catalog);
    auto a = *pruned_tuner.Run(q, TuningMethod::kHmooc3Plus);
    auto b = *unpruned_tuner.Run(q, TuningMethod::kHmooc3Plus);
    sent_pruned += a.runtime_stats.TotalSent();
    sent_unpruned += b.runtime_stats.TotalSent() +
                     b.runtime_stats.TotalPruned();
  }
  EXPECT_LT(sent_pruned, sent_unpruned / 2);
}

TEST(IntegrationTest, LearnedModelDrivesHmoocEndToEnd) {
  // Train a small subQ model, then hand it to the tuner: the learned
  // pipeline must run and still beat the default configuration in sum.
  auto catalog = TpchCatalog(10);
  ClusterSpec cluster;
  CostModelParams cost;
  TraceCollector collector(cluster, cost);
  ModelDataset subq, qs, lqp;
  TraceOptions topts;
  topts.runs = 60;
  topts.seed = 5;
  ASSERT_TRUE(collector
                  .Collect(
                      [&](int qid, uint64_t v) {
                        return MakeTpchQuery(qid, &catalog, v);
                      },
                      22, topts, &subq, &qs, &lqp)
                  .ok());
  ModelSuite suite;
  Mlp::TrainOptions mopts;
  mopts.epochs = 40;
  ASSERT_TRUE(suite.Train(subq, qs, lqp, 3, mopts).ok());

  auto opts = FastOptions();
  opts.learned_subq_model = &suite.subq_model();
  Tuner tuner(opts);
  double def = 0, h3 = 0;
  for (int qid : {3, 5, 10, 12}) {
    auto q = *MakeTpchQuery(qid, &catalog);
    def += tuner.Run(q, TuningMethod::kDefault)->execution.exec.latency;
    h3 += tuner.Run(q, TuningMethod::kHmooc3)->execution.exec.latency;
  }
  EXPECT_LT(h3, def);
}

TEST(IntegrationTest, FineGrainedSolutionsExecutable) {
  // Every Pareto solution HMOOC returns must execute without error when
  // aggregated and submitted.
  auto catalog = TpchCatalog(10);
  ClusterSpec cluster;
  CostModelParams cost;
  auto q = *MakeTpchQuery(9, &catalog);
  AnalyticSubQModel model(&q, cluster, cost);
  HmoocOptions ho;
  ho.theta_c_samples = 16;
  ho.clusters = 4;
  ho.theta_p_samples = 24;
  ho.enriched_samples = 4;
  auto result = HmoocSolver(&model, ho).Solve();
  ASSERT_FALSE(result.pareto.empty());
  Simulator sim(cluster, cost);
  AqeDriver driver(&q.plan, &sim);
  for (const auto& sol : result.pareto) {
    PlanParams tp;
    StageParams ts;
    SubQEvaluator eval(&q, cluster, cost);
    AggregateForSubmission(sol.per_subq_conf, eval.subqueries(), &tp, &ts);
    auto exec = driver.Run(DecodeContext(sol.conf), {tp}, {ts}, nullptr, 1);
    ASSERT_TRUE(exec.ok());
    EXPECT_GT(exec->exec.latency, 0.0);
  }
}

}  // namespace
}  // namespace sparkopt
