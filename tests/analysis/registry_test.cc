#include <memory>
#include <vector>

#include "analysis/verifier.h"
#include "common/pareto.h"
#include "gtest/gtest.h"
#include "verifier_test_util.h"

namespace sparkopt {
namespace analysis {
namespace {

class StubVerifier : public Verifier {
 public:
  explicit StubVerifier(const char* name, bool applicable = true)
      : name_(name), applicable_(applicable) {}
  const char* name() const override { return name_; }
  bool applicable(const VerifyInput&) const override { return applicable_; }
  VerifyReport Verify(const VerifyInput& in) const override {
    VerifyReport report = MakeReport(in);
    report.Add(StatusCode::kInternal, "stub", "always fires");
    return report;
  }

 private:
  const char* name_;
  bool applicable_;
};

TEST(VerifierRegistryTest, BuiltInHasAllPasses) {
  const VerifierRegistry& reg = VerifierRegistry::BuiltIn();
  EXPECT_EQ(reg.size(), 4u);
  EXPECT_NE(reg.Find("logical_plan"), nullptr);
  EXPECT_NE(reg.Find("physical_plan"), nullptr);
  EXPECT_NE(reg.Find("pareto_front"), nullptr);
  EXPECT_NE(reg.Find("execution_trace"), nullptr);
  EXPECT_EQ(reg.Find("nonsense"), nullptr);
}

TEST(VerifierRegistryTest, RunUnknownNameIsNotFound) {
  VerifyInput in;
  auto result = VerifierRegistry::BuiltIn().Run("nonsense", in);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(VerifierRegistryTest, RunWithoutInputIsFailedPrecondition) {
  VerifyInput in;  // no artifacts at all
  auto result = VerifierRegistry::BuiltIn().Run("pareto_front", in);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(VerifierRegistryTest, RunByNameVerifies) {
  std::vector<ObjectiveVector> front = {{1.0, 2.0}, {2.0, 3.0}};
  VerifyInput in;
  in.front = &front;
  in.site = "registry_test";
  auto result = VerifierRegistry::BuiltIn().Run("pareto_front", in);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->verifier, "pareto_front");
  EXPECT_EQ(result->site, "registry_test");
  EXPECT_TRUE(ReportHas(*result, StatusCode::kInternal, "dominated"));
}

TEST(VerifierRegistryTest, RunApplicableSkipsInapplicablePasses) {
  std::vector<ObjectiveVector> front = {{1.0, 2.0}};
  VerifyInput in;
  in.front = &front;
  auto reports = VerifierRegistry::BuiltIn().RunApplicable(in);
  ASSERT_EQ(reports.size(), 1u);  // only the pareto pass applies
  EXPECT_EQ(reports[0].verifier, "pareto_front");
  EXPECT_TRUE(ReportClean(reports[0]));
}

TEST(VerifierRegistryTest, RegisterReplacesSameName) {
  VerifierRegistry reg;
  reg.Register(std::make_unique<StubVerifier>("pass"));
  reg.Register(std::make_unique<StubVerifier>("pass"));
  EXPECT_EQ(reg.size(), 1u);
  auto result = reg.Run("pass", VerifyInput{});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(ReportHas(*result, StatusCode::kInternal, "always fires"));
}

TEST(VerifierRegistryTest, NamesInRegistrationOrder) {
  VerifierRegistry reg;
  reg.Register(std::make_unique<StubVerifier>("b"));
  reg.Register(std::make_unique<StubVerifier>("a"));
  auto names = reg.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "b");
  EXPECT_EQ(names[1], "a");
}

TEST(VerifierRegistryTest, ReportToStatusCarriesFirstViolation) {
  StubVerifier v("stub_pass");
  VerifyInput in;
  in.site = "here";
  auto report = v.Verify(in);
  Status st = report.ToStatus();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("stub_pass"), std::string::npos);
  EXPECT_NE(st.message().find("here"), std::string::npos);
}

TEST(VerifierRegistryTest, CleanReportToStatusIsOk) {
  VerifyReport report;
  EXPECT_TRUE(report.ToStatus().ok());
  EXPECT_TRUE(report.ok());
}

}  // namespace
}  // namespace analysis
}  // namespace sparkopt
