#include "common/check.h"

#include "gtest/gtest.h"

namespace sparkopt {
namespace {

TEST(CheckTest, PassingCheckIsSilent) {
  SPARKOPT_CHECK(1 + 1 == 2);
  SPARKOPT_CHECK(true) << "never evaluated";
}

TEST(CheckTest, PassingComparisonsAreSilent) {
  SPARKOPT_CHECK_EQ(2, 2);
  SPARKOPT_CHECK_NE(2, 3);
  SPARKOPT_CHECK_LT(2, 3);
  SPARKOPT_CHECK_LE(2, 2);
  SPARKOPT_CHECK_GT(3, 2);
  SPARKOPT_CHECK_GE(3, 3);
}

TEST(CheckTest, CheckIsUsableInExpressionPosition) {
  // The ternary-based expansion must compose with if/else without braces.
  if (true)
    SPARKOPT_CHECK(true);
  else
    SPARKOPT_CHECK(false);
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(SPARKOPT_CHECK(1 == 2), "CHECK failed .*1 == 2");
}

TEST(CheckDeathTest, FailingCheckStreamsMessage) {
  EXPECT_DEATH(SPARKOPT_CHECK(false) << "context " << 42,
               "CHECK failed .*false.*context 42");
}

TEST(CheckDeathTest, FailingComparisonPrintsOperands) {
  EXPECT_DEATH(SPARKOPT_CHECK_EQ(2 + 2, 5),
               "CHECK failed .*lhs=4, rhs=5");
  EXPECT_DEATH(SPARKOPT_CHECK_LT(9, 3), "CHECK failed .*lhs=9, rhs=3");
}

#if !defined(NDEBUG) || defined(SPARKOPT_VERIFY)

TEST(CheckDeathTest, DcheckActiveInVerifiedBuilds) {
  EXPECT_DEATH(SPARKOPT_DCHECK(false) << "debug only", "debug only");
  EXPECT_DEATH(SPARKOPT_DCHECK_EQ(1, 2), "CHECK failed");
}

#else

TEST(CheckTest, DcheckCompiledOutInReleaseBuilds) {
  // Must neither abort nor evaluate the streamed expression.
  SPARKOPT_DCHECK(false) << "never printed";
  SPARKOPT_DCHECK_EQ(1, 2);
  SUCCEED();
}

#endif

TEST(CheckTest, DcheckPassesEitherWay) {
  SPARKOPT_DCHECK(true);
  SPARKOPT_DCHECK_GE(5, 5);
}

}  // namespace
}  // namespace sparkopt
