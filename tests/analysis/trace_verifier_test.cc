#include "analysis/trace_verifier.h"

#include <vector>

#include "analysis/verifier.h"
#include "exec/simulator.h"
#include "gtest/gtest.h"
#include "physical/physical_plan.h"
#include "verifier_test_util.h"

namespace sparkopt {
namespace analysis {
namespace {

constexpr int kCores = 8;

StageExecution MakeStageExec(int id, double start, double end,
                             double task_time_sum, int num_tasks,
                             int wave = 0) {
  StageExecution se;
  se.stage_id = id;
  se.subq_id = id;
  se.wave = wave;
  se.start = start;
  se.end = end;
  se.task_time_sum = task_time_sum;
  se.analytical_latency = task_time_sum / kCores;
  se.num_tasks = num_tasks;
  return se;
}

// Two sequential stages on an 8-core cluster.
QueryExecution MakeTrace() {
  QueryExecution exec;
  exec.stages.push_back(MakeStageExec(0, 0.0, 5.0, 40.0, 4));
  exec.stages.push_back(MakeStageExec(1, 5.0, 9.0, 16.0, 2));
  exec.latency = 9.0;
  exec.analytical_latency = (40.0 + 16.0) / kCores;
  exec.io_bytes = 1024.0;
  exec.cpu_hours = kCores * exec.latency / 3600.0;
  exec.mem_gb_hours = 0.1;
  exec.cost = 0.01;
  return exec;
}

VerifyReport RunVerifier(const QueryExecution& exec, int cores = kCores,
                 const PhysicalPlan* plan = nullptr) {
  ExecutionTraceVerifier v;
  VerifyInput in;
  in.execution = &exec;
  in.total_cores = cores;
  in.physical_plan = plan;
  return v.Verify(in);
}

TEST(TraceVerifierTest, CleanTracePasses) {
  EXPECT_TRUE(ReportClean(RunVerifier(MakeTrace())));
}

TEST(TraceVerifierTest, NotApplicableWithoutTrace) {
  ExecutionTraceVerifier v;
  EXPECT_FALSE(v.applicable(VerifyInput{}));
}

TEST(TraceVerifierTest, EndBeforeStartIsOutOfRange) {
  QueryExecution exec = MakeTrace();
  exec.stages[1].end = 4.0;  // starts at 5.0
  auto report = RunVerifier(exec);
  EXPECT_TRUE(ReportHas(report, StatusCode::kOutOfRange, "precedes start"));
}

TEST(TraceVerifierTest, NegativeStartIsOutOfRange) {
  QueryExecution exec = MakeTrace();
  exec.stages[0].start = -1.0;
  auto report = RunVerifier(exec);
  EXPECT_TRUE(ReportHas(report, StatusCode::kOutOfRange,
                        "start -1.000000 is negative or non-finite"));
}

TEST(TraceVerifierTest, ZeroTasksIsOutOfRange) {
  QueryExecution exec = MakeTrace();
  exec.stages[0].num_tasks = 0;
  auto report = RunVerifier(exec);
  EXPECT_TRUE(ReportHas(report, StatusCode::kOutOfRange, "num_tasks 0 < 1"));
}

TEST(TraceVerifierTest, AnalyticalLatencyMismatchIsInternal) {
  QueryExecution exec = MakeTrace();
  exec.stages[0].analytical_latency = 1.0;  // should be 40 / 8 = 5
  exec.analytical_latency = 1.0 + 2.0;
  auto report = RunVerifier(exec);
  EXPECT_TRUE(ReportHas(report, StatusCode::kInternal,
                        "task_time_sum / cores"));
}

TEST(TraceVerifierTest, AnalyticalCheckSkippedWithoutCores) {
  QueryExecution exec = MakeTrace();
  exec.stages[0].analytical_latency = 1.0;
  exec.stages[1].analytical_latency = 2.0;
  exec.analytical_latency = 3.0;
  // cores = 0 disables the per-stage consistency check.
  EXPECT_TRUE(ReportClean(RunVerifier(exec, /*cores=*/0)));
}

TEST(TraceVerifierTest, LatencyBeforeLastStageEndIsInternal) {
  QueryExecution exec = MakeTrace();
  exec.latency = 7.0;  // last stage ends at 9.0
  auto report = RunVerifier(exec);
  EXPECT_TRUE(ReportHas(report, StatusCode::kInternal,
                        "is before the last stage end"));
}

TEST(TraceVerifierTest, AnalyticalSumMismatchIsInternal) {
  QueryExecution exec = MakeTrace();
  exec.analytical_latency = 100.0;
  auto report = RunVerifier(exec);
  EXPECT_TRUE(ReportHas(report, StatusCode::kInternal,
                        "!= sum over stages"));
}

TEST(TraceVerifierTest, NegativeCostIsOutOfRange) {
  QueryExecution exec = MakeTrace();
  exec.cost = -0.5;
  auto report = RunVerifier(exec);
  EXPECT_TRUE(ReportHas(report, StatusCode::kOutOfRange,
                        "cost -0.500000 is negative or non-finite"));
}

TEST(TraceVerifierTest, WaveOrderViolationIsFailedPrecondition) {
  QueryExecution exec = MakeTrace();
  // A wave-1 stage starting before wave 0 finished (9.0).
  exec.stages.push_back(MakeStageExec(2, 7.0, 12.0, 24.0, 3, /*wave=*/1));
  exec.latency = 12.0;
  exec.analytical_latency += 24.0 / kCores;
  auto report = RunVerifier(exec);
  EXPECT_TRUE(ReportHas(report, StatusCode::kFailedPrecondition,
                        "before an earlier wave ended"));
}

TEST(TraceVerifierTest, LaterWaveAfterEarlierWaveIsClean) {
  QueryExecution exec = MakeTrace();
  exec.stages.push_back(MakeStageExec(2, 9.0, 12.0, 24.0, 3, /*wave=*/1));
  exec.latency = 12.0;
  exec.analytical_latency += 24.0 / kCores;
  EXPECT_TRUE(ReportClean(RunVerifier(exec)));
}

TEST(TraceVerifierTest, DependencyOrderViolationIsFailedPrecondition) {
  QueryExecution exec = MakeTrace();
  // Plan: stage 1 shuffles stage 0's output in, so it may not start
  // before stage 0 ends.
  PhysicalPlan plan;
  QueryStage st0;
  st0.id = 0;
  st0.subq_id = 0;
  st0.op_ids = {0};
  st0.num_partitions = 2;
  st0.partition_bytes = {1.0, 1.0};
  QueryStage st1 = st0;
  st1.id = 1;
  st1.subq_id = 1;
  st1.op_ids = {1};
  st1.deps = {0};
  st1.exchanges_output = false;
  plan.stages = {st0, st1};

  exec.stages[1].start = 3.0;  // stage 0 ends at 5.0
  auto report = RunVerifier(exec, kCores, &plan);
  EXPECT_TRUE(ReportHas(report, StatusCode::kFailedPrecondition,
                        "before its dependency stage 0 ended"));
}

TEST(TraceVerifierTest, PlanDependencyCheckSkippedForMultiWaveTraces) {
  // Same inversion as above, but the trace spans two waves: stage ids
  // then refer to different physical plans, so the check must not fire.
  QueryExecution exec = MakeTrace();
  PhysicalPlan plan;
  QueryStage st0;
  st0.id = 0;
  st0.subq_id = 0;
  st0.op_ids = {0};
  st0.num_partitions = 1;
  st0.partition_bytes = {1.0};
  QueryStage st1 = st0;
  st1.id = 1;
  st1.deps = {0};
  plan.stages = {st0, st1};

  exec.stages[1].start = 3.0;
  exec.stages[1].end = 5.0;
  exec.stages[1].wave = 1;
  auto report = RunVerifier(exec, kCores, &plan);
  EXPECT_FALSE(HasViolation(report, StatusCode::kFailedPrecondition,
                            "before its dependency"));
}

}  // namespace
}  // namespace analysis
}  // namespace sparkopt
