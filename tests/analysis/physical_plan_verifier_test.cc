#include "analysis/physical_plan_verifier.h"

#include <vector>

#include "analysis/verifier.h"
#include "gtest/gtest.h"
#include "physical/physical_plan.h"
#include "plan/logical_plan.h"
#include "verifier_test_util.h"

namespace sparkopt {
namespace analysis {
namespace {

// Logical plan: scan0, scan1, join2(0, 1).
LogicalPlan MakeLogical() {
  LogicalPlan plan;
  LogicalOperator scan0;
  scan0.type = OpType::kScan;
  scan0.table_id = 0;
  LogicalOperator scan1;
  scan1.type = OpType::kScan;
  scan1.table_id = 1;
  LogicalOperator join2;
  join2.type = OpType::kJoin;
  join2.children = {0, 1};
  join2.requires_shuffle = true;
  plan.AddOperator(scan0);
  plan.AddOperator(scan1);
  plan.AddOperator(join2);
  EXPECT_TRUE(plan.Build().ok());
  return plan;
}

QueryStage MakeStage(int id, std::vector<int> op_ids, std::vector<int> deps,
                     bool root) {
  QueryStage st;
  st.id = id;
  st.subq_id = id;
  st.op_ids = std::move(op_ids);
  st.deps = std::move(deps);
  st.num_partitions = 2;
  st.partition_bytes = {10.0, 10.0};
  st.exchanges_output = !root;
  return st;
}

// Physical plan realizing MakeLogical() with one stage per op and the
// join stage shuffling both scans in.
PhysicalPlan MakePhysical() {
  PhysicalPlan plan;
  plan.stages.push_back(MakeStage(0, {0}, {}, false));
  plan.stages.push_back(MakeStage(1, {1}, {}, false));
  plan.stages.push_back(MakeStage(2, {2}, {0, 1}, true));
  plan.join_decisions.push_back(
      {2, JoinAlgo::kSortMergeJoin, 1.0, /*build_op=*/1});
  return plan;
}

VerifyReport RunVerifier(const PhysicalPlan& pplan,
                 const LogicalPlan* lplan = nullptr) {
  PhysicalPlanVerifier v;
  VerifyInput in;
  in.physical_plan = &pplan;
  in.logical_plan = lplan;
  return v.Verify(in);
}

TEST(PhysicalPlanVerifierTest, CleanPlanPasses) {
  LogicalPlan lplan = MakeLogical();
  PhysicalPlan pplan = MakePhysical();
  EXPECT_TRUE(ReportClean(RunVerifier(pplan, &lplan)));
}

TEST(PhysicalPlanVerifierTest, NotApplicableWithoutPlan) {
  PhysicalPlanVerifier v;
  EXPECT_FALSE(v.applicable(VerifyInput{}));
}

TEST(PhysicalPlanVerifierTest, StageCycleIsFailedPrecondition) {
  PhysicalPlan pplan = MakePhysical();
  pplan.stages[0].deps = {1};
  pplan.stages[1].deps = {0};
  auto report = RunVerifier(pplan);
  EXPECT_TRUE(ReportHas(report, StatusCode::kFailedPrecondition,
                        "stage dependency graph contains a cycle"));
}

TEST(PhysicalPlanVerifierTest, DepOutOfRangeIsOutOfRange) {
  PhysicalPlan pplan = MakePhysical();
  pplan.stages[2].deps = {0, 7};
  auto report = RunVerifier(pplan);
  EXPECT_TRUE(
      ReportHas(report, StatusCode::kOutOfRange, "dep 7 outside [0, 3)"));
}

TEST(PhysicalPlanVerifierTest, SelfDepIsOutOfRange) {
  PhysicalPlan pplan = MakePhysical();
  pplan.stages[2].deps.push_back(2);
  auto report = RunVerifier(pplan);
  EXPECT_TRUE(ReportHas(report, StatusCode::kOutOfRange,
                        "dep points at the stage itself"));
}

TEST(PhysicalPlanVerifierTest, DuplicateDepIsOutOfRange) {
  PhysicalPlan pplan = MakePhysical();
  pplan.stages[2].deps = {0, 1, 0};
  auto report = RunVerifier(pplan);
  EXPECT_TRUE(ReportHas(report, StatusCode::kOutOfRange, "duplicate dep 0"));
}

TEST(PhysicalPlanVerifierTest, ShuffleAndBroadcastDepIsInvalidArgument) {
  PhysicalPlan pplan = MakePhysical();
  pplan.stages[2].broadcast_deps = {1};  // 1 is already a shuffle dep
  auto report = RunVerifier(pplan);
  EXPECT_TRUE(ReportHas(report, StatusCode::kInvalidArgument,
                        "both a shuffle and a broadcast dependency"));
}

TEST(PhysicalPlanVerifierTest, PartitionCountMismatchIsInternal) {
  PhysicalPlan pplan = MakePhysical();
  pplan.stages[0].num_partitions = 3;  // but only 2 partition_bytes
  auto report = RunVerifier(pplan);
  EXPECT_TRUE(ReportHas(report, StatusCode::kInternal,
                        "num_partitions 3 != partition_bytes.size() 2"));
}

TEST(PhysicalPlanVerifierTest, NegativePartitionBytesIsOutOfRange) {
  PhysicalPlan pplan = MakePhysical();
  pplan.stages[0].partition_bytes = {10.0, -1.0};
  auto report = RunVerifier(pplan);
  EXPECT_TRUE(ReportHas(report, StatusCode::kOutOfRange,
                        "negative or non-finite"));
}

TEST(PhysicalPlanVerifierTest, NoRootStageIsFailedPrecondition) {
  PhysicalPlan pplan = MakePhysical();
  pplan.stages[2].exchanges_output = true;  // nothing is the root now
  auto report = RunVerifier(pplan);
  EXPECT_TRUE(ReportHas(report, StatusCode::kFailedPrecondition,
                        "expected exactly one root stage"));
}

TEST(PhysicalPlanVerifierTest, OverlappingCoverageIsFailedPrecondition) {
  LogicalPlan lplan = MakeLogical();
  PhysicalPlan pplan = MakePhysical();
  pplan.stages[2].op_ids = {0, 2};  // op 0 already lives in stage 0
  auto report = RunVerifier(pplan, &lplan);
  EXPECT_TRUE(ReportHas(report, StatusCode::kFailedPrecondition,
                        "executed by both stage 0 and stage 2"));
}

TEST(PhysicalPlanVerifierTest, UncoveredOpIsFailedPrecondition) {
  LogicalPlan lplan = MakeLogical();
  PhysicalPlan pplan = MakePhysical();
  pplan.stages[1].op_ids.clear();  // op 1 now unexecuted
  auto report = RunVerifier(pplan, &lplan);
  EXPECT_TRUE(ReportHas(report, StatusCode::kFailedPrecondition,
                        "logical operator not executed by any stage"));
}

TEST(PhysicalPlanVerifierTest, BhjBuildOverShuffleIsFailedPrecondition) {
  LogicalPlan lplan = MakeLogical();
  PhysicalPlan pplan = MakePhysical();
  // The join claims BHJ with build op 1, but stage 1 still arrives over a
  // shuffle dependency instead of a broadcast.
  pplan.join_decisions[0].algo = JoinAlgo::kBroadcastHashJoin;
  auto report = RunVerifier(pplan, &lplan);
  EXPECT_TRUE(ReportHas(report, StatusCode::kFailedPrecondition,
                        "arrives over a shuffle dependency"));
  EXPECT_TRUE(ReportHas(report, StatusCode::kFailedPrecondition,
                        "is not a broadcast dependency"));
}

TEST(PhysicalPlanVerifierTest, BhjViaBroadcastDepIsClean) {
  LogicalPlan lplan = MakeLogical();
  PhysicalPlan pplan = MakePhysical();
  pplan.join_decisions[0].algo = JoinAlgo::kBroadcastHashJoin;
  pplan.stages[2].deps = {0};
  pplan.stages[2].broadcast_deps = {1};
  EXPECT_TRUE(ReportClean(RunVerifier(pplan, &lplan)));
}

TEST(PhysicalPlanVerifierTest, JoinDecisionOnNonJoinIsInvalidArgument) {
  LogicalPlan lplan = MakeLogical();
  PhysicalPlan pplan = MakePhysical();
  pplan.join_decisions[0].op_id = 0;  // a scan
  auto report = RunVerifier(pplan, &lplan);
  EXPECT_TRUE(ReportHas(report, StatusCode::kInvalidArgument,
                        "decision references a non-join operator"));
}

}  // namespace
}  // namespace analysis
}  // namespace sparkopt
