#pragma once

#include <string>

#include "analysis/verifier.h"
#include "gtest/gtest.h"

namespace sparkopt {
namespace analysis {

/// True when `report` contains a violation with `code` whose message
/// contains `substr`.
inline bool HasViolation(const VerifyReport& report, StatusCode code,
                         const std::string& substr) {
  for (const Violation& v : report.violations) {
    if (v.code == code && v.message.find(substr) != std::string::npos) {
      return true;
    }
  }
  return false;
}

/// gtest predicate wrapper printing the full report on failure.
inline ::testing::AssertionResult ReportHas(const VerifyReport& report,
                                            StatusCode code,
                                            const std::string& substr) {
  if (HasViolation(report, code, substr)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << "expected a [" << Status::CodeName(code)
         << "] violation containing \"" << substr << "\"; report was:\n"
         << (report.ok() ? "  (clean)" : report.ToString());
}

inline ::testing::AssertionResult ReportClean(const VerifyReport& report) {
  if (report.ok()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << report.ToString();
}

}  // namespace analysis
}  // namespace sparkopt
