#include "analysis/logical_plan_verifier.h"

#include <algorithm>
#include <vector>

#include "analysis/verifier.h"
#include "gtest/gtest.h"
#include "plan/logical_plan.h"
#include "verifier_test_util.h"

namespace sparkopt {
namespace analysis {
namespace {

// scan(t0) -> filter -> agg(shuffle) -> sort, plus scan(t1) joined in:
//
//   scan0   scan1
//     \      /
//      join2        (shuffle)
//        |
//      agg3         (shuffle)
//        |
//      sort4
LogicalPlan MakePlan() {
  LogicalPlan plan;
  LogicalOperator scan0;
  scan0.type = OpType::kScan;
  scan0.table_id = 0;
  LogicalOperator scan1;
  scan1.type = OpType::kScan;
  scan1.table_id = 1;
  LogicalOperator join2;
  join2.type = OpType::kJoin;
  join2.children = {0, 1};
  join2.requires_shuffle = true;
  LogicalOperator agg3;
  agg3.type = OpType::kAggregate;
  agg3.children = {2};
  agg3.requires_shuffle = true;
  agg3.cardinality_factor = 0.1;
  LogicalOperator sort4;
  sort4.type = OpType::kSort;
  sort4.children = {3};
  plan.AddOperator(scan0);
  plan.AddOperator(scan1);
  plan.AddOperator(join2);
  plan.AddOperator(agg3);
  plan.AddOperator(sort4);
  EXPECT_TRUE(plan.Build().ok());
  return plan;
}

std::vector<TableStats> MakeCatalog() {
  return {{"t0", 1000.0, 64.0, 0.0}, {"t1", 500.0, 32.0, 0.0}};
}

VerifyReport RunVerifier(const LogicalPlan& plan,
                 const std::vector<TableStats>* catalog = nullptr,
                 const std::vector<SubQuery>* subqs = nullptr) {
  LogicalPlanVerifier v;
  VerifyInput in;
  in.logical_plan = &plan;
  in.catalog = catalog;
  in.subqs = subqs;
  return v.Verify(in);
}

TEST(LogicalPlanVerifierTest, CleanPlanPasses) {
  LogicalPlan plan = MakePlan();
  auto catalog = MakeCatalog();
  auto subqs = plan.DecomposeSubQueries();
  EXPECT_TRUE(ReportClean(RunVerifier(plan, &catalog, &subqs)));
}

TEST(LogicalPlanVerifierTest, NotApplicableWithoutPlan) {
  LogicalPlanVerifier v;
  EXPECT_FALSE(v.applicable(VerifyInput{}));
}

TEST(LogicalPlanVerifierTest, CycleIsFailedPrecondition) {
  LogicalPlan plan = MakePlan();
  // agg3 <-> sort4 cycle: point agg3's child back at sort4.
  plan.op(3).children = {4};
  auto report = RunVerifier(plan);
  EXPECT_TRUE(ReportHas(report, StatusCode::kFailedPrecondition, "cycle"));
}

TEST(LogicalPlanVerifierTest, ChildIdOutOfRangeIsOutOfRange) {
  LogicalPlan plan = MakePlan();
  plan.op(4).children = {17};
  auto report = RunVerifier(plan);
  EXPECT_TRUE(ReportHas(report, StatusCode::kOutOfRange,
                        "child id 17 outside [0, 5)"));
}

TEST(LogicalPlanVerifierTest, SelfChildIsOutOfRange) {
  LogicalPlan plan = MakePlan();
  plan.op(4).children = {4};
  auto report = RunVerifier(plan);
  EXPECT_TRUE(
      ReportHas(report, StatusCode::kOutOfRange, "operator is its own child"));
}

TEST(LogicalPlanVerifierTest, JoinArityIsInvalidArgument) {
  LogicalPlan plan = MakePlan();
  plan.op(2).children = {0};  // join with a single child
  auto report = RunVerifier(plan);
  EXPECT_TRUE(ReportHas(report, StatusCode::kInvalidArgument,
                        "Join has 1 children, expected 2"));
}

TEST(LogicalPlanVerifierTest, ScanWithChildrenIsInvalidArgument) {
  LogicalPlan plan = MakePlan();
  plan.op(1).children = {0};
  auto report = RunVerifier(plan);
  EXPECT_TRUE(ReportHas(report, StatusCode::kInvalidArgument,
                        "Scan has 1 children, expected 0"));
}

TEST(LogicalPlanVerifierTest, UnknownTableIsNotFound) {
  LogicalPlan plan = MakePlan();
  plan.op(1).table_id = 99;
  auto catalog = MakeCatalog();
  auto report = RunVerifier(plan, &catalog);
  EXPECT_TRUE(ReportHas(report, StatusCode::kNotFound,
                        "table_id 99 not in catalog of 2 tables"));
}

TEST(LogicalPlanVerifierTest, MissingTableIdIsNotFound) {
  LogicalPlan plan = MakePlan();
  plan.op(0).table_id = -1;
  auto report = RunVerifier(plan);
  EXPECT_TRUE(
      ReportHas(report, StatusCode::kNotFound, "scan has no table_id"));
}

TEST(LogicalPlanVerifierTest, SelectivityOutOfBoundsIsOutOfRange) {
  LogicalPlan plan = MakePlan();
  plan.op(0).selectivity = 1.5;
  auto report = RunVerifier(plan);
  EXPECT_TRUE(ReportHas(report, StatusCode::kOutOfRange, "selectivity"));
}

TEST(LogicalPlanVerifierTest, NegativeCardinalityFactorIsOutOfRange) {
  LogicalPlan plan = MakePlan();
  plan.op(3).cardinality_factor = -0.5;
  auto report = RunVerifier(plan);
  EXPECT_TRUE(
      ReportHas(report, StatusCode::kOutOfRange, "cardinality_factor"));
}

TEST(LogicalPlanVerifierTest, TwoRootsIsFailedPrecondition) {
  LogicalPlan plan = MakePlan();
  // Detach sort4: agg3 becomes a second root.
  plan.op(4).children = {2};
  plan.op(3).children = {2};
  auto report = RunVerifier(plan);
  EXPECT_TRUE(ReportHas(report, StatusCode::kFailedPrecondition,
                        "expected exactly one root, found 2"));
}

TEST(LogicalPlanVerifierTest, OrphanOpIsFailedPrecondition) {
  LogicalPlan plan = MakePlan();
  auto subqs = plan.DecomposeSubQueries();
  // Drop op 0 from its subQ: it is now covered by nothing.
  for (auto& sq : subqs) {
    sq.op_ids.erase(std::remove(sq.op_ids.begin(), sq.op_ids.end(), 0),
                    sq.op_ids.end());
  }
  auto report = RunVerifier(plan, nullptr, &subqs);
  EXPECT_TRUE(ReportHas(report, StatusCode::kFailedPrecondition,
                        "operator not covered by any subQ"));
}

TEST(LogicalPlanVerifierTest, DoubleCoverageIsFailedPrecondition) {
  LogicalPlan plan = MakePlan();
  auto subqs = plan.DecomposeSubQueries();
  ASSERT_GE(subqs.size(), 2u);
  // Cover op 0 by a second subQ as well.
  const int op0_owner = [&] {
    for (const auto& sq : subqs) {
      for (int op : sq.op_ids) {
        if (op == 0) return sq.id;
      }
    }
    return -1;
  }();
  for (auto& sq : subqs) {
    if (sq.id != op0_owner) {
      sq.op_ids.push_back(0);
      break;
    }
  }
  auto report = RunVerifier(plan, nullptr, &subqs);
  EXPECT_TRUE(
      ReportHas(report, StatusCode::kFailedPrecondition, "covered by both"));
}

TEST(LogicalPlanVerifierTest, SubQCycleIsFailedPrecondition) {
  LogicalPlan plan = MakePlan();
  auto subqs = plan.DecomposeSubQueries();
  ASSERT_GE(subqs.size(), 2u);
  // Make the first two subQs depend on each other.
  subqs[0].deps.push_back(1);
  subqs[1].deps.push_back(0);
  auto report = RunVerifier(plan, nullptr, &subqs);
  EXPECT_TRUE(ReportHas(report, StatusCode::kFailedPrecondition,
                        "subQ dependency graph contains a cycle"));
}

TEST(LogicalPlanVerifierTest, EmptyPlanIsFailedPrecondition) {
  LogicalPlan plan;
  auto report = RunVerifier(plan);
  EXPECT_TRUE(
      ReportHas(report, StatusCode::kFailedPrecondition, "plan is empty"));
}

}  // namespace
}  // namespace analysis
}  // namespace sparkopt
