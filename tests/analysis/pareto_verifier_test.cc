#include "analysis/pareto_verifier.h"

#include <cmath>
#include <limits>
#include <vector>

#include "analysis/verifier.h"
#include "common/pareto.h"
#include "gtest/gtest.h"
#include "verifier_test_util.h"

namespace sparkopt {
namespace analysis {
namespace {

VerifyReport RunVerifier(const std::vector<ObjectiveVector>& front) {
  ParetoVerifier v;
  VerifyInput in;
  in.front = &front;
  return v.Verify(in);
}

TEST(ParetoVerifierTest, CleanFrontPasses) {
  EXPECT_TRUE(ReportClean(RunVerifier({{1.0, 4.0}, {2.0, 3.0}, {3.0, 1.0}})));
}

TEST(ParetoVerifierTest, EmptyFrontIsVacuouslyClean) {
  EXPECT_TRUE(ReportClean(RunVerifier({})));
}

TEST(ParetoVerifierTest, SinglePointIsClean) {
  EXPECT_TRUE(ReportClean(RunVerifier({{1.0, 1.0}})));
}

TEST(ParetoVerifierTest, NotApplicableWithoutFront) {
  ParetoVerifier v;
  EXPECT_FALSE(v.applicable(VerifyInput{}));
}

TEST(ParetoVerifierTest, DominatedPointIsInternal) {
  // {2, 3} is dominated by {1, 2}.
  auto report = RunVerifier({{1.0, 2.0}, {2.0, 3.0}});
  EXPECT_TRUE(ReportHas(report, StatusCode::kInternal,
                        "dominated by point 0"));
  EXPECT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].location, "point 1/2");
}

TEST(ParetoVerifierTest, StableOrderDuplicatesAreClean) {
  // ParetoIndices keeps first-seen duplicates; strict dominance must not
  // flag exact ties.
  EXPECT_TRUE(ReportClean(RunVerifier({{1.0, 2.0}, {1.0, 2.0}})));
}

TEST(ParetoVerifierTest, WeakDominanceIsFlagged) {
  // Equal in one objective, strictly better in the other.
  auto report = RunVerifier({{1.0, 2.0}, {1.0, 3.0}});
  EXPECT_TRUE(ReportHas(report, StatusCode::kInternal,
                        "not mutually non-dominated"));
}

TEST(ParetoVerifierTest, NonFiniteObjectiveIsOutOfRange) {
  auto report =
      RunVerifier({{1.0, std::numeric_limits<double>::quiet_NaN()}, {2.0, 3.0}});
  EXPECT_TRUE(ReportHas(report, StatusCode::kOutOfRange, "objective 1"));
}

TEST(ParetoVerifierTest, InfiniteObjectiveIsOutOfRange) {
  auto report =
      RunVerifier({{std::numeric_limits<double>::infinity(), 1.0}, {2.0, 3.0}});
  EXPECT_TRUE(ReportHas(report, StatusCode::kOutOfRange, "objective 0"));
}

TEST(ParetoVerifierTest, DimensionMismatchIsInvalidArgument) {
  auto report = RunVerifier({{1.0, 2.0}, {2.0, 3.0, 4.0}});
  EXPECT_TRUE(ReportHas(report, StatusCode::kInvalidArgument,
                        "dimension 3 differs from the front's dimension 2"));
}

TEST(ParetoVerifierTest, EmptyObjectiveVectorIsInvalidArgument) {
  auto report = RunVerifier({{}});
  EXPECT_TRUE(ReportHas(report, StatusCode::kInvalidArgument,
                        "objective vector is empty"));
}

}  // namespace
}  // namespace analysis
}  // namespace sparkopt
