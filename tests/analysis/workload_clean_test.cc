// End-to-end acceptance for the verification subsystem: every TPC-H and
// TPC-DS workload plan — logical, physical (under several configurations),
// and simulated execution trace — must come out clean from every built-in
// verifier pass.

#include <algorithm>
#include <vector>

#include "analysis/verifier.h"
#include "common/rng.h"
#include "exec/simulator.h"
#include "gtest/gtest.h"
#include "params/sampler.h"
#include "params/spark_params.h"
#include "physical/physical_plan.h"
#include "plan/logical_plan.h"
#include "verifier_test_util.h"
#include "workload/tpcds.h"
#include "workload/tpch.h"

namespace sparkopt {
namespace analysis {
namespace {

void ExpectAllPassesClean(const Query& q) {
  const VerifierRegistry& reg = VerifierRegistry::BuiltIn();
  const auto subqs = q.plan.DecomposeSubQueries();

  VerifyInput lin;
  lin.logical_plan = &q.plan;
  lin.catalog = q.catalog;
  lin.subqs = &subqs;
  lin.site = q.name.c_str();
  for (const auto& report : reg.RunApplicable(lin)) {
    EXPECT_TRUE(ReportClean(report)) << q.name;
  }

  // Physical plans + traces under the default config and a few sampled
  // ones (join algorithms and partitioning change with the config).
  PhysicalPlanner planner(&q.plan, subqs);
  Simulator sim(ClusterSpec{}, CostModelParams{});
  Rng rng(7 + q.seed);
  std::vector<std::vector<double>> confs = {DefaultSparkConfig()};
  for (auto& c : SampleUniform(SparkParamSpace(), 3, &rng)) {
    confs.push_back(std::move(c));
  }
  for (const auto& conf : confs) {
    const ContextParams tc = DecodeContext(conf);
    const PlanParams tp = DecodePlan(conf);
    const StageParams ts = DecodeStage(conf);
    auto pplan =
        planner.Plan(tc, {tp}, {ts}, CardinalitySource::kEstimated);
    ASSERT_TRUE(pplan.ok()) << q.name << ": " << pplan.status().ToString();

    VerifyInput pin;
    pin.physical_plan = &*pplan;
    pin.logical_plan = &q.plan;
    pin.site = q.name.c_str();
    for (const auto& report : reg.RunApplicable(pin)) {
      EXPECT_TRUE(ReportClean(report)) << q.name;
    }

    const QueryExecution exec = sim.RunAll(*pplan, tc, q.seed);
    VerifyInput tin;
    tin.execution = &exec;
    tin.physical_plan = &*pplan;
    tin.total_cores =
        std::min(tc.TotalCores(), ClusterSpec{}.TotalCores());
    tin.site = q.name.c_str();
    for (const auto& report : reg.RunApplicable(tin)) {
      EXPECT_TRUE(ReportClean(report)) << q.name;
    }
  }
}

TEST(WorkloadCleanTest, AllTpchPlansVerifyClean) {
  auto catalog = TpchCatalog(10);
  for (int qid = 1; qid <= 22; ++qid) {
    auto q = MakeTpchQuery(qid, &catalog);
    ASSERT_TRUE(q.ok()) << "TPC-H Q" << qid;
    ExpectAllPassesClean(*q);
  }
}

TEST(WorkloadCleanTest, TpchVariantsVerifyClean) {
  auto catalog = TpchCatalog(10);
  for (int qid = 1; qid <= 22; ++qid) {
    for (uint64_t variant : {1u, 2u}) {
      auto q = MakeTpchQuery(qid, &catalog, variant);
      ASSERT_TRUE(q.ok()) << "TPC-H Q" << qid << " v" << variant;
      ExpectAllPassesClean(*q);
    }
  }
}

TEST(WorkloadCleanTest, AllTpcdsPlansVerifyClean) {
  auto catalog = TpcdsCatalog(10);
  auto queries = TpcdsBenchmark(&catalog);
  ASSERT_FALSE(queries.empty());
  for (const auto& q : queries) {
    ExpectAllPassesClean(q);
  }
}

}  // namespace
}  // namespace analysis
}  // namespace sparkopt
