#include "tuner/tuner.h"

#include <gtest/gtest.h>

#include "workload/tpch.h"

namespace sparkopt {
namespace {

TunerOptions FastOptions() {
  TunerOptions o;
  o.hmooc.theta_c_samples = 24;
  o.hmooc.clusters = 6;
  o.hmooc.theta_p_samples = 32;
  o.hmooc.enriched_samples = 8;
  o.mo_ws.samples = 1500;
  o.evo.max_evaluations = 300;
  o.pf.inner_samples = 200;
  o.pf.max_points = 6;
  o.so_fw_samples = 1000;
  return o;
}

class TunerMethodTest : public ::testing::TestWithParam<TuningMethod> {
 protected:
  std::vector<TableStats> catalog_ = TpchCatalog(10);
};

TEST_P(TunerMethodTest, RunsEndToEnd) {
  Tuner tuner(FastOptions());
  auto q = *MakeTpchQuery(3, &catalog_);
  auto out = tuner.Run(q, GetParam());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_GT(out->execution.exec.latency, 0.0);
  EXPECT_GT(out->execution.exec.cost, 0.0);
  if (GetParam() != TuningMethod::kDefault) {
    EXPECT_FALSE(out->moo.pareto.empty());
    EXPECT_GT(out->solve_seconds, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, TunerMethodTest,
    ::testing::Values(TuningMethod::kDefault, TuningMethod::kHmooc3,
                      TuningMethod::kHmooc3Plus, TuningMethod::kMoWs,
                      TuningMethod::kSoFixedWeights, TuningMethod::kEvoQuery,
                      TuningMethod::kPfQuery),
    [](const auto& info) {
      std::string n = TuningMethodName(info.param);
      for (auto& c : n) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

TEST(TunerTest, Hmooc3BeatsDefaultOnLatencyPriority) {
  Tuner tuner(FastOptions());
  auto catalog = TpchCatalog(10);
  // Aggregate over a few queries: individual queries may vary, the sum
  // must improve clearly (the paper's Table 4 headline).
  double def = 0, h3 = 0;
  for (int qid : {3, 5, 9, 10}) {
    auto q = *MakeTpchQuery(qid, &catalog);
    def += tuner.Run(q, TuningMethod::kDefault)->execution.exec.latency;
    h3 += tuner.Run(q, TuningMethod::kHmooc3)->execution.exec.latency;
  }
  EXPECT_LT(h3, 0.8 * def);
}

TEST(TunerTest, RuntimeStatsPopulatedForHmooc3Plus) {
  Tuner tuner(FastOptions());
  auto catalog = TpchCatalog(10);
  auto q = *MakeTpchQuery(5, &catalog);
  auto out = tuner.Run(q, TuningMethod::kHmooc3Plus);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(out->runtime_stats.TotalSent() + out->runtime_stats.TotalPruned(),
            0);
}

TEST(TunerTest, PreferenceShiftsTheChosenTradeoff) {
  auto catalog = TpchCatalog(10);
  auto q = *MakeTpchQuery(5, &catalog);
  auto fast_opts = FastOptions();
  fast_opts.preference = {1.0, 0.0};
  auto cheap_opts = FastOptions();
  cheap_opts.preference = {0.0, 1.0};
  auto fast = Tuner(fast_opts).Run(q, TuningMethod::kHmooc3);
  auto cheap = Tuner(cheap_opts).Run(q, TuningMethod::kHmooc3);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(cheap.ok());
  // Predicted objectives of the chosen points follow the preference.
  EXPECT_LE(fast->chosen.objectives[0], cheap->chosen.objectives[0] + 1e-9);
  EXPECT_GE(fast->chosen.objectives[1], cheap->chosen.objectives[1] - 1e-9);
}

TEST(TunerTest, RunWithConfigExecutesGivenConfiguration) {
  Tuner tuner(FastOptions());
  auto catalog = TpchCatalog(10);
  auto q = *MakeTpchQuery(3, &catalog);
  auto conf = DefaultSparkConfig();
  conf[kExecutorInstances] = 16;
  conf[kExecutorCores] = 8;
  auto big = tuner.RunWithConfig(q, conf);
  auto def = tuner.RunWithConfig(q, DefaultSparkConfig());
  ASSERT_TRUE(big.ok());
  ASSERT_TRUE(def.ok());
  EXPECT_LT(big->execution.exec.latency, def->execution.exec.latency);
  EXPECT_GT(big->execution.exec.cost, def->execution.exec.cost);
}

TEST(TunerTest, MethodNamesStable) {
  EXPECT_STREQ(TuningMethodName(TuningMethod::kHmooc3), "HMOOC3");
  EXPECT_STREQ(TuningMethodName(TuningMethod::kHmooc3Plus), "HMOOC3+");
  EXPECT_STREQ(TuningMethodName(TuningMethod::kMoWs), "MO-WS");
  EXPECT_STREQ(TuningMethodName(TuningMethod::kSoFixedWeights), "SO-FW");
}

TEST(TunerTest, SolveTimeWithinCloudBudget) {
  // The paper's headline constraint: compile-time solving within 1-2 s.
  // The budget only makes sense for optimized builds; instrumented builds
  // (sanitizers, Debug, invariant verification) get generous headroom so
  // the test still exercises the path without asserting on wall clock.
#if defined(NDEBUG) && !defined(SPARKOPT_VERIFY) &&  \
    !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__)
  const double budget_s = 2.0;
#else
  const double budget_s = 60.0;
#endif
  Tuner tuner(TunerOptions{});
  auto catalog = TpchCatalog(100);
  auto q = *MakeTpchQuery(9, &catalog);
  auto out = tuner.Run(q, TuningMethod::kHmooc3);
  ASSERT_TRUE(out.ok());
  EXPECT_LT(out->solve_seconds, budget_s);
}

}  // namespace
}  // namespace sparkopt
