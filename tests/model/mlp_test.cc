#include "model/mlp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace sparkopt {
namespace {

TEST(StandardizerTest, ZeroMeanUnitVariance) {
  Matrix x = {{1, 10}, {3, 30}, {5, 50}};
  Standardizer s;
  s.Fit(x);
  EXPECT_DOUBLE_EQ(s.mean[0], 3.0);
  EXPECT_DOUBLE_EQ(s.mean[1], 30.0);
  auto t = s.Transform({3, 30});
  EXPECT_NEAR(t[0], 0.0, 1e-12);
  EXPECT_NEAR(t[1], 0.0, 1e-12);
}

TEST(StandardizerTest, ConstantFeatureDoesNotDivideByZero) {
  Matrix x = {{7}, {7}, {7}};
  Standardizer s;
  s.Fit(x);
  auto t = s.Transform({7});
  EXPECT_TRUE(std::isfinite(t[0]));
}

TEST(MlpTest, OutputShapeMatchesArchitecture) {
  Mlp net({4, 8, 3}, 1);
  auto y = net.Predict({1, 2, 3, 4});
  EXPECT_EQ(y.size(), 3u);
  EXPECT_EQ(net.input_dim(), 4);
  EXPECT_EQ(net.output_dim(), 3);
}

TEST(MlpTest, DeterministicInitialization) {
  Mlp a({4, 8, 1}, 7);
  Mlp b({4, 8, 1}, 7);
  EXPECT_EQ(a.Predict({1, 2, 3, 4}), b.Predict({1, 2, 3, 4}));
  Mlp c({4, 8, 1}, 8);
  EXPECT_NE(a.Predict({1, 2, 3, 4}), c.Predict({1, 2, 3, 4}));
}

TEST(MlpTest, FitRejectsBadShapes) {
  Mlp net({2, 4, 1}, 1);
  Mlp::TrainOptions opts;
  EXPECT_FALSE(net.Fit({}, {}, opts).ok());
  EXPECT_FALSE(net.Fit({{1, 2, 3}}, {{1}}, opts).ok());
  EXPECT_FALSE(net.Fit({{1, 2}}, {{1, 2}}, opts).ok());
}

TEST(MlpTest, LearnsLinearFunction) {
  Rng rng(3);
  Matrix x, y;
  for (int i = 0; i < 400; ++i) {
    const double a = rng.Uniform(-1, 1), b = rng.Uniform(-1, 1);
    x.push_back({a, b});
    y.push_back({2 * a - 3 * b + 0.5});
  }
  Mlp net({2, 16, 1}, 5);
  Mlp::TrainOptions opts;
  opts.epochs = 300;
  opts.patience = 60;
  opts.learning_rate = 5e-3;
  ASSERT_TRUE(net.Fit(x, y, opts).ok());
  EXPECT_LT(net.Mse(x, y), 0.01);
}

TEST(MlpTest, LearnsNonlinearFunction) {
  Rng rng(9);
  Matrix x, y;
  for (int i = 0; i < 800; ++i) {
    const double a = rng.Uniform(-1, 1), b = rng.Uniform(-1, 1);
    x.push_back({a, b});
    y.push_back({a * b + 0.3 * a * a});
  }
  Mlp net({2, 32, 32, 1}, 5);
  Mlp::TrainOptions opts;
  opts.epochs = 300;
  opts.patience = 60;
  ASSERT_TRUE(net.Fit(x, y, opts).ok());
  EXPECT_LT(net.Mse(x, y), 0.01);
}

TEST(MlpTest, BatchPredictionMatchesSingle) {
  Mlp net({3, 8, 2}, 11);
  Matrix x = {{1, 0, -1}, {0.5, 0.5, 0.5}};
  auto batch = net.PredictBatch(x);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0], net.Predict(x[0]));
  EXPECT_EQ(batch[1], net.Predict(x[1]));
}

TEST(MlpTest, FlatBatchBitwiseIdenticalToSingleRow) {
  // The GEMM path must accumulate each (row, output) dot product in the
  // same order as Predict: exact equality, not approximate.
  Mlp net({5, 16, 8, 3}, 21);
  Rng rng(4);
  const size_t rows = 100;  // spans several 32-row tiles plus a remainder
  std::vector<double> flat(rows * 5);
  for (auto& v : flat) v = rng.Uniform(-2, 2);
  std::vector<double> out(rows * 3);
  Mlp::BatchScratch scratch;
  net.PredictBatchInto(flat.data(), rows, out.data(), &scratch);
  for (size_t r = 0; r < rows; ++r) {
    const std::vector<double> row(flat.begin() + r * 5,
                                  flat.begin() + (r + 1) * 5);
    const auto single = net.Predict(row);
    for (int k = 0; k < 3; ++k) {
      EXPECT_EQ(out[r * 3 + k], single[k]) << "row " << r << " out " << k;
    }
  }
}

TEST(MlpTest, MseFlatMatchesMse) {
  Mlp net({2, 8, 1}, 3);
  Matrix x = {{0.1, 0.2}, {-0.5, 1.0}, {2.0, -1.0}};
  Matrix y = {{1.0}, {0.0}, {-1.0}};
  std::vector<double> xf, yf;
  for (const auto& r : x) xf.insert(xf.end(), r.begin(), r.end());
  for (const auto& r : y) yf.insert(yf.end(), r.begin(), r.end());
  Mlp::BatchScratch scratch;
  EXPECT_DOUBLE_EQ(net.MseFlat(xf.data(), yf.data(), x.size(), &scratch),
                   net.Mse(x, y));
}

TEST(RegressorTest, FitsPositiveTargetsInLogSpace) {
  Rng rng(13);
  Matrix x, y;
  for (int i = 0; i < 500; ++i) {
    const double a = rng.Uniform(0, 1);
    x.push_back({a});
    y.push_back({std::exp(3 * a)});  // spans 1..20
  }
  Regressor reg(1, 1, {16, 16}, 3);
  Mlp::TrainOptions opts;
  opts.epochs = 300;
  opts.patience = 60;
  ASSERT_TRUE(reg.Fit(x, y, opts).ok());
  EXPECT_TRUE(reg.trained());
  double wmape_num = 0, wmape_den = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double p = reg.Predict(x[i])[0];
    wmape_num += std::fabs(p - y[i][0]);
    wmape_den += y[i][0];
  }
  EXPECT_LT(wmape_num / wmape_den, 0.1);
}

TEST(RegressorTest, PredictionsNonNegative) {
  Regressor reg(2, 2, {8}, 1);
  Matrix x = {{0, 0}, {1, 1}};
  Matrix y = {{0.1, 0.2}, {0.3, 0.4}};
  Mlp::TrainOptions opts;
  opts.epochs = 5;
  ASSERT_TRUE(reg.Fit(x, y, opts).ok());
  for (double v : reg.Predict({0.5, 0.5})) EXPECT_GE(v, 0.0);
}

TEST(RegressorTest, UntrainedByDefault) {
  Regressor reg;
  EXPECT_FALSE(reg.trained());
}

TEST(RegressorTest, FlatBatchBitwiseIdenticalToSingleRow) {
  Regressor reg(2, 2, {8}, 1);
  Matrix x = {{0, 0}, {1, 1}, {0.3, 0.7}, {-0.2, 0.9}};
  Matrix y = {{0.1, 0.2}, {0.3, 0.4}, {0.2, 0.1}, {0.4, 0.3}};
  Mlp::TrainOptions opts;
  opts.epochs = 5;
  ASSERT_TRUE(reg.Fit(x, y, opts).ok());

  std::vector<double> flat;
  for (const auto& r : x) flat.insert(flat.end(), r.begin(), r.end());
  std::vector<double> out(x.size() * 2);
  Mlp::BatchScratch scratch;
  reg.PredictBatchInto(flat.data(), x.size(), out.data(), &scratch);
  for (size_t r = 0; r < x.size(); ++r) {
    const auto single = reg.Predict(x[r]);
    EXPECT_EQ(out[r * 2 + 0], single[0]) << "row " << r;
    EXPECT_EQ(out[r * 2 + 1], single[1]) << "row " << r;
  }
}

TEST(RegressorTest, DistillRequiresTrainedTeacher) {
  Regressor teacher;
  EXPECT_FALSE(teacher.Distill({{0.0, 0.0}}, {4}, Mlp::TrainOptions()).ok());
}

TEST(RegressorTest, DistilledStudentApproximatesTeacher) {
  // Teacher learns a smooth 2-in/2-out map; the student must reproduce
  // the teacher's own predictions (not ground truth) over the same range.
  Regressor teacher(2, 2, {16}, 3);
  Matrix x, y;
  for (int i = 0; i < 64; ++i) {
    const double a = i / 63.0, b = (i * 37 % 64) / 63.0;
    x.push_back({a, b});
    y.push_back({1.0 + a + 0.5 * b, 2.0 + 0.25 * a * b});
  }
  Mlp::TrainOptions opts;
  opts.epochs = 120;
  opts.seed = 5;
  ASSERT_TRUE(teacher.Fit(x, y, opts).ok());

  auto sopts = opts;
  sopts.epochs = 600;  // the tiny student converges slowly at this LR
  auto student = teacher.Distill(x, {8}, sopts);
  ASSERT_TRUE(student.ok()) << student.status().message();
  EXPECT_TRUE(student->trained());
  double err_num = 0, err_den = 0;
  for (const auto& row : x) {
    const auto t = teacher.Predict(row);
    const auto s = student->Predict(row);
    for (size_t j = 0; j < t.size(); ++j) {
      err_num += std::fabs(t[j] - s[j]);
      err_den += std::fabs(t[j]);
    }
  }
  EXPECT_LT(err_num / err_den, 0.15)
      << "student diverges from teacher predictions";
}

}  // namespace
}  // namespace sparkopt
