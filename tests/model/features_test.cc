#include "model/features.h"

#include <gtest/gtest.h>

#include "workload/tpch.h"

namespace sparkopt {
namespace {

struct Fixture {
  std::vector<TableStats> catalog = TpchCatalog(10);
  ClusterSpec cluster;
  CostModelParams cost;
  Query q = *MakeTpchQuery(3, &catalog);
  SubQEvaluator eval{&q, cluster, cost};

  QueryStage Stage(int subq) {
    auto conf = DefaultSparkConfig();
    return eval.BuildStage(subq, DecodeContext(conf), DecodePlan(conf),
                           DecodeStage(conf), CardinalitySource::kEstimated);
  }
};

TEST(PartitionStatsTest, UniformPartitionsGiveZeroRatios) {
  auto beta = PartitionDistributionStats({100, 100, 100, 100});
  EXPECT_NEAR(beta[0], 0.0, 1e-12);
  EXPECT_NEAR(beta[1], 0.0, 1e-12);
  EXPECT_NEAR(beta[2], 0.0, 1e-12);
}

TEST(PartitionStatsTest, SkewedPartitionsGivePositiveRatios) {
  auto beta = PartitionDistributionStats({400, 100, 100, 100});
  EXPECT_GT(beta[0], 0.0);   // sigma/mu
  EXPECT_GT(beta[1], 0.5);   // (max-mu)/mu = (400-175)/175
  EXPECT_NEAR(beta[1], (400.0 - 175) / 175, 1e-9);
  EXPECT_NEAR(beta[2], 300.0 / 175, 1e-9);
}

TEST(PartitionStatsTest, EmptyPartitionsSafe) {
  auto beta = PartitionDistributionStats({});
  EXPECT_EQ(beta.size(), static_cast<size_t>(FeatureLayout::kBeta));
}

TEST(FeatureTest, TotalDimensionConsistent) {
  Fixture fx;
  auto st = fx.Stage(0);
  auto f = StageFeatures(fx.q.plan, st, DefaultSparkConfig(), false, {}, {},
                         false);
  EXPECT_EQ(f.size(), static_cast<size_t>(FeatureLayout::Total()));
}

TEST(FeatureTest, OperatorHistogramCountsOps) {
  Fixture fx;
  auto st = fx.Stage(0);
  auto f = StageFeatures(fx.q.plan, st, DefaultSparkConfig(), false, {}, {},
                         false);
  double total = 0;
  for (int i = 0; i < FeatureLayout::kOpHistogram; ++i) total += f[i];
  EXPECT_DOUBLE_EQ(total, static_cast<double>(st.op_ids.size()));
}

TEST(FeatureTest, DropThetaPZeroesPlanBlock) {
  Fixture fx;
  auto st = fx.Stage(0);
  auto conf = DefaultSparkConfig();
  conf[kShufflePartitions] = 777;
  auto with_p = StageFeatures(fx.q.plan, st, conf, false, {}, {}, false);
  auto without_p = StageFeatures(fx.q.plan, st, conf, false, {}, {}, true);
  const int theta_off = FeatureLayout::kOpHistogram +
                        FeatureLayout::kWlEmbedding +
                        FeatureLayout::kPredicateHash +
                        FeatureLayout::kCardinality + FeatureLayout::kAlpha +
                        FeatureLayout::kBeta + FeatureLayout::kGamma;
  // Plan params sit at indices 8..16 of the theta block.
  for (int i = 8; i <= 16; ++i) {
    EXPECT_DOUBLE_EQ(without_p[theta_off + i], 0.0);
  }
  // Context params preserved.
  EXPECT_EQ(with_p[theta_off + 0], without_p[theta_off + 0]);
}

TEST(FeatureTest, BetaAndGammaChannelsCopied) {
  Fixture fx;
  auto st = fx.Stage(0);
  std::vector<double> beta = {0.5, 1.5, 2.5};
  std::vector<double> gamma = {1, 2, 3};
  auto f = StageFeatures(fx.q.plan, st, DefaultSparkConfig(), true, beta,
                         gamma, false);
  const int beta_off = FeatureLayout::kOpHistogram +
                       FeatureLayout::kWlEmbedding +
                       FeatureLayout::kPredicateHash +
                       FeatureLayout::kCardinality + FeatureLayout::kAlpha;
  EXPECT_DOUBLE_EQ(f[beta_off + 0], 0.5);
  EXPECT_DOUBLE_EQ(f[beta_off + 1], 1.5);
  EXPECT_DOUBLE_EQ(f[beta_off + 2], 2.5);
}

TEST(FeatureTest, DifferentSubqueriesDifferentEmbeddings) {
  Fixture fx;
  auto f0 = StageFeatures(fx.q.plan, fx.Stage(0), DefaultSparkConfig(),
                          false, {}, {}, false);
  auto f3 = StageFeatures(fx.q.plan, fx.Stage(3), DefaultSparkConfig(),
                          false, {}, {}, false);
  EXPECT_NE(f0, f3);
}

TEST(FeatureTest, ConfigurationChangesThetaBlockOnly) {
  Fixture fx;
  auto st = fx.Stage(0);
  auto conf1 = DefaultSparkConfig();
  auto conf2 = conf1;
  conf2[kMemoryFraction] = 0.9;
  auto f1 = StageFeatures(fx.q.plan, st, conf1, false, {}, {}, false);
  auto f2 = StageFeatures(fx.q.plan, st, conf2, false, {}, {}, false);
  EXPECT_NE(f1, f2);
  // Histogram block unchanged.
  for (int i = 0; i < FeatureLayout::kOpHistogram; ++i) {
    EXPECT_DOUBLE_EQ(f1[i], f2[i]);
  }
}

TEST(FeatureTest, CollapsedPlanFeaturesPoolAndCount) {
  Fixture fx;
  std::vector<QueryStage> remaining = {fx.Stage(0), fx.Stage(1)};
  auto f = CollapsedPlanFeatures(fx.q.plan, remaining, DefaultSparkConfig(),
                                 {});
  EXPECT_EQ(f.size(), static_cast<size_t>(FeatureLayout::Total() + 1));
  EXPECT_DOUBLE_EQ(f.back(), 2.0);
}

TEST(FeatureTest, CollapsedPlanEmptySafe) {
  Fixture fx;
  auto f = CollapsedPlanFeatures(fx.q.plan, {}, DefaultSparkConfig(), {});
  EXPECT_DOUBLE_EQ(f.back(), 0.0);
}

TEST(ContentionStatsTest, LogTransformed) {
  StageExecution se;
  se.parallel_running_tasks = 0;
  se.parallel_waiting_tasks = 0;
  se.finished_task_mean_s = 0;
  auto g = ContentionStats(se);
  EXPECT_EQ(g.size(), static_cast<size_t>(FeatureLayout::kGamma));
  for (double v : g) EXPECT_DOUBLE_EQ(v, 0.0);
}

}  // namespace
}  // namespace sparkopt
