#include "model/subq_evaluator.h"

#include <gtest/gtest.h>

#include "workload/tpch.h"

namespace sparkopt {
namespace {

struct Fixture {
  std::vector<TableStats> catalog = TpchCatalog(10);
  ClusterSpec cluster;
  CostModelParams cost;
  Query q = *MakeTpchQuery(3, &catalog);
  SubQEvaluator eval{&q, cluster, cost};

  ContextParams tc = DecodeContext(DefaultSparkConfig());
  PlanParams tp = DecodePlan(DefaultSparkConfig());
  StageParams ts = DecodeStage(DefaultSparkConfig());
};

TEST(SubQEvaluatorTest, SubqueryCountMatchesPlan) {
  Fixture fx;
  EXPECT_EQ(fx.eval.num_subqs(), 5);
}

TEST(SubQEvaluatorTest, ObjectivesPositive) {
  Fixture fx;
  for (int i = 0; i < fx.eval.num_subqs(); ++i) {
    auto o = fx.eval.Evaluate(i, fx.tc, fx.tp, fx.ts,
                              CardinalitySource::kEstimated);
    EXPECT_GT(o.analytical_latency, 0.0) << "subq " << i;
    EXPECT_GT(o.cost, 0.0);
    EXPECT_GE(o.io_bytes, 0.0);
  }
}

TEST(SubQEvaluatorTest, QueryLevelIsSumOfSubqueries) {
  Fixture fx;
  double lat = 0, cost = 0, io = 0;
  for (int i = 0; i < fx.eval.num_subqs(); ++i) {
    auto o = fx.eval.Evaluate(i, fx.tc, fx.tp, fx.ts,
                              CardinalitySource::kEstimated);
    lat += o.analytical_latency;
    cost += o.cost;
    io += o.io_bytes;
  }
  auto total = fx.eval.EvaluateQuery(fx.tc, {fx.tp}, {fx.ts},
                                     CardinalitySource::kEstimated);
  EXPECT_NEAR(total.analytical_latency, lat, 1e-9);
  EXPECT_NEAR(total.cost, cost, 1e-12);
  EXPECT_NEAR(total.io_bytes, io, 1e-3);
}

TEST(SubQEvaluatorTest, MoreCoresReduceAnalyticalLatency) {
  Fixture fx;
  auto small = fx.tc;
  small.executor_cores = 2;
  small.executor_instances = 2;
  auto big = fx.tc;
  big.executor_cores = 8;
  big.executor_instances = 8;
  const auto o_small = fx.eval.Evaluate(0, small, fx.tp, fx.ts,
                                        CardinalitySource::kEstimated);
  const auto o_big = fx.eval.Evaluate(0, big, fx.tp, fx.ts,
                                      CardinalitySource::kEstimated);
  EXPECT_LT(o_big.analytical_latency, o_small.analytical_latency);
}

TEST(SubQEvaluatorTest, TrueVsEstimatedDiffer) {
  Fixture fx;
  // The join subQs see misestimated inputs.
  bool differs = false;
  for (int i = 0; i < fx.eval.num_subqs(); ++i) {
    const auto est = fx.eval.Evaluate(i, fx.tc, fx.tp, fx.ts,
                                      CardinalitySource::kEstimated);
    const auto truth = fx.eval.Evaluate(i, fx.tc, fx.tp, fx.ts,
                                        CardinalitySource::kTrue);
    if (est.analytical_latency != truth.analytical_latency) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(SubQEvaluatorTest, CompletedMaskRevealsTrueStats) {
  Fixture fx;
  // Completing every subQ makes the mixed source equal the true source.
  std::vector<bool> all_done(fx.eval.num_subqs(), true);
  for (int i = 0; i < fx.eval.num_subqs(); ++i) {
    const auto mixed = fx.eval.Evaluate(i, fx.tc, fx.tp, fx.ts,
                                        CardinalitySource::kEstimated,
                                        &all_done);
    const auto truth = fx.eval.Evaluate(i, fx.tc, fx.tp, fx.ts,
                                        CardinalitySource::kTrue);
    EXPECT_DOUBLE_EQ(mixed.analytical_latency, truth.analytical_latency);
  }
}

TEST(SubQEvaluatorTest, BroadcastThresholdChangesJoinCost) {
  Fixture fx;
  // Find a join subQ.
  int join_subq = -1;
  for (const auto& sq : fx.eval.subqueries()) {
    if (sq.has_join) join_subq = sq.id;
  }
  ASSERT_GE(join_subq, 0);
  auto no_bhj = fx.tp;
  no_bhj.broadcast_join_threshold_mb = 0;
  no_bhj.shuffled_hash_join_threshold_mb = 0;
  auto force_bhj = fx.tp;
  force_bhj.broadcast_join_threshold_mb = 1e6;
  force_bhj.non_empty_partition_ratio = 0.0;
  const auto smj = fx.eval.BuildStage(join_subq, fx.tc, no_bhj, fx.ts,
                                      CardinalitySource::kEstimated);
  const auto bhj = fx.eval.BuildStage(join_subq, fx.tc, force_bhj, fx.ts,
                                      CardinalitySource::kEstimated);
  EXPECT_EQ(smj.join_algo, JoinAlgo::kSortMergeJoin);
  EXPECT_EQ(bhj.join_algo, JoinAlgo::kBroadcastHashJoin);
  EXPECT_GT(bhj.broadcast_bytes, 0.0);
  EXPECT_EQ(smj.broadcast_bytes, 0.0);
}

TEST(SubQEvaluatorTest, DeterministicEvaluation) {
  Fixture fx;
  const auto a = fx.eval.Evaluate(2, fx.tc, fx.tp, fx.ts,
                                  CardinalitySource::kEstimated);
  const auto b = fx.eval.Evaluate(2, fx.tc, fx.tp, fx.ts,
                                  CardinalitySource::kEstimated);
  EXPECT_DOUBLE_EQ(a.analytical_latency, b.analytical_latency);
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
}

TEST(SubQEvaluatorTest, EvalCacheHitsOnRepeatAndIsTransparent) {
  Fixture cached, uncached;
  uncached.eval.set_eval_cache_enabled(false);
  ASSERT_TRUE(cached.eval.eval_cache_enabled());
  ASSERT_FALSE(uncached.eval.eval_cache_enabled());

  const auto a1 = cached.eval.Evaluate(1, cached.tc, cached.tp, cached.ts,
                                       CardinalitySource::kEstimated);
  EXPECT_EQ(cached.eval.eval_cache_hits(), 0u);
  EXPECT_EQ(cached.eval.eval_cache_misses(), 1u);
  const auto a2 = cached.eval.Evaluate(1, cached.tc, cached.tp, cached.ts,
                                       CardinalitySource::kEstimated);
  EXPECT_EQ(cached.eval.eval_cache_hits(), 1u);

  // Cached results are bitwise identical to the uncached path.
  const auto b = uncached.eval.Evaluate(1, uncached.tc, uncached.tp,
                                        uncached.ts,
                                        CardinalitySource::kEstimated);
  EXPECT_EQ(a1.analytical_latency, b.analytical_latency);
  EXPECT_EQ(a1.cost, b.cost);
  EXPECT_EQ(a2.analytical_latency, b.analytical_latency);
  EXPECT_EQ(a2.cost, b.cost);
  EXPECT_EQ(uncached.eval.eval_cache_hits(), 0u);
  EXPECT_EQ(uncached.eval.eval_cache_misses(), 0u);
}

TEST(SubQEvaluatorTest, EvalCacheProbesExposeLookupCost) {
  Fixture fx;
  EXPECT_EQ(fx.eval.eval_cache_probes(), 0u);
  fx.eval.Evaluate(1, fx.tc, fx.tp, fx.ts, CardinalitySource::kEstimated);
  // A miss in an empty table still probes at least one slot — the cost
  // the threads=1 anomaly measures (see DESIGN.md §12).
  const uint64_t after_miss = fx.eval.eval_cache_probes();
  EXPECT_GE(after_miss, 1u);
  fx.eval.Evaluate(1, fx.tc, fx.tp, fx.ts, CardinalitySource::kEstimated);
  const uint64_t after_hit = fx.eval.eval_cache_probes();
  EXPECT_GT(after_hit, after_miss);

  // Disabled cache does not probe.
  Fixture off;
  off.eval.set_eval_cache_enabled(false);
  off.eval.Evaluate(1, off.tc, off.tp, off.ts,
                    CardinalitySource::kEstimated);
  EXPECT_EQ(off.eval.eval_cache_probes(), 0u);
}

TEST(SubQEvaluatorTest, EvalCacheKeySeparatesInputs) {
  Fixture fx;
  // Distinct subQ, params, source, and mask must all miss, not collide.
  fx.eval.Evaluate(0, fx.tc, fx.tp, fx.ts, CardinalitySource::kEstimated);
  fx.eval.Evaluate(1, fx.tc, fx.tp, fx.ts, CardinalitySource::kEstimated);
  auto tp2 = fx.tp;
  tp2.shuffle_partitions += 1;
  fx.eval.Evaluate(0, fx.tc, tp2, fx.ts, CardinalitySource::kEstimated);
  fx.eval.Evaluate(0, fx.tc, fx.tp, fx.ts, CardinalitySource::kTrue);
  std::vector<bool> mask(fx.eval.num_subqs(), false);
  mask[1] = true;
  fx.eval.Evaluate(0, fx.tc, fx.tp, fx.ts, CardinalitySource::kEstimated,
                   &mask);
  EXPECT_EQ(fx.eval.eval_cache_hits(), 0u);
  EXPECT_EQ(fx.eval.eval_cache_misses(), 5u);
}

TEST(EvalCacheTest, InsertEvictsInsteadOfDroppingWhenWindowFull) {
  EvalCache cache(1024);
  ASSERT_EQ(cache.capacity(), 1024u);
  // Keys congruent mod capacity share one probe window. kMaxProbe fit;
  // the next insert must CLOCK-evict the oldest untouched entry rather
  // than drop the new value.
  const uint64_t base = 0x1000;
  const uint64_t stride = cache.capacity();
  auto value_of = [](uint64_t j) {
    SubQObjectives v;
    v.analytical_latency = static_cast<double>(j) + 0.25;
    v.io_bytes = static_cast<double>(j) * 2.0;
    v.cost = static_cast<double>(j) * 3.0;
    return v;
  };
  for (uint64_t j = 0; j < 16; ++j) {
    cache.Insert(base + j * stride, value_of(j));
  }
  EXPECT_EQ(cache.occupancy(), 16u);
  EXPECT_EQ(cache.evictions(), 0u);

  cache.Insert(base + 16 * stride, value_of(16));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.drops(), 0u);
  // Replacement happens in place: occupancy is unchanged.
  EXPECT_EQ(cache.occupancy(), 16u);
  SubQObjectives got;
  ASSERT_TRUE(cache.Lookup(base + 16 * stride, &got));
  EXPECT_EQ(got.analytical_latency, value_of(16).analytical_latency);
  EXPECT_EQ(got.io_bytes, value_of(16).io_bytes);
  EXPECT_EQ(got.cost, value_of(16).cost);
  // The first sweep cleared every ref bit and the second claimed the
  // window's first entry, so key 0 is the one that went.
  EXPECT_FALSE(cache.Lookup(base + 0 * stride, &got));
}

TEST(EvalCacheTest, ClockGivesRecentlyTouchedEntriesASecondChance) {
  EvalCache cache(1024);
  const uint64_t base = 0x1000;
  const uint64_t stride = cache.capacity();
  for (uint64_t j = 0; j < 16; ++j) {
    cache.Insert(base + j * stride, SubQObjectives{});
  }
  // First eviction clears all ref bits, replaces entry 0 with key 16
  // (whose ref is set by the insert).
  cache.Insert(base + 16 * stride, SubQObjectives{});
  // A hit re-arms key 3's ref bit.
  SubQObjectives got;
  ASSERT_TRUE(cache.Lookup(base + 3 * stride, &got));
  // Next eviction must skip the two referenced entries (16 at window
  // position 0, 3 at position 3) and take key 1 — the first clear bit.
  cache.Insert(base + 17 * stride, SubQObjectives{});
  EXPECT_EQ(cache.evictions(), 2u);
  EXPECT_TRUE(cache.Lookup(base + 16 * stride, &got));
  EXPECT_TRUE(cache.Lookup(base + 3 * stride, &got));
  EXPECT_TRUE(cache.Lookup(base + 17 * stride, &got));
  EXPECT_FALSE(cache.Lookup(base + 1 * stride, &got));
}

TEST(EvalCacheTest, SaturationEvictsAndKeepsOccupancyBounded) {
  EvalCache cache(1024);
  for (uint64_t k = 2; k < 50000; ++k) {
    cache.Insert(k, SubQObjectives{});
    // The entry just published is always findable right after.
    SubQObjectives got;
    if (k % 9973 == 0) EXPECT_TRUE(cache.Lookup(k, &got));
  }
  EXPECT_GT(cache.evictions(), 0u);
  // Single-threaded there is always an evictable entry: never a drop.
  EXPECT_EQ(cache.drops(), 0u);
  EXPECT_LE(cache.occupancy(), cache.capacity());
  cache.Clear();
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(cache.occupancy(), 0u);
}

TEST(SubQEvaluatorTest, EvalCacheDropsExposedAndZeroOnSmallWorkload) {
  Fixture fx;
  fx.eval.Evaluate(0, fx.tc, fx.tp, fx.ts, CardinalitySource::kEstimated);
  EXPECT_EQ(fx.eval.eval_cache_drops(), 0u);
}

TEST(SubQEvaluatorTest, AdaptiveBypassTripsAtLowHitRateAndRearms) {
  Fixture fx;
  EXPECT_FALSE(fx.eval.eval_cache_bypassed());
  // All-miss traffic: every conf is distinct, so after kBypassWindow
  // lookups the running hit rate (0) sits below kBypassMinHitRate and
  // the latch must trip.
  auto tp = fx.tp;
  for (uint64_t i = 0; i <= SubQEvaluator::kBypassWindow; ++i) {
    tp.advisory_partition_size_mb = 64.0 + 1e-6 * static_cast<double>(i);
    fx.eval.Evaluate(0, fx.tc, tp, fx.ts, CardinalitySource::kEstimated);
  }
  EXPECT_TRUE(fx.eval.eval_cache_bypassed());
  // Bypassed lookups stop probing (results stay correct regardless).
  const uint64_t probes_before = fx.eval.eval_cache_probes();
  tp.advisory_partition_size_mb = 65.0;
  fx.eval.Evaluate(0, fx.tc, tp, fx.ts, CardinalitySource::kEstimated);
  EXPECT_EQ(fx.eval.eval_cache_probes(), probes_before);
  // Re-enabling re-arms the observation window.
  fx.eval.set_eval_cache_enabled(true);
  EXPECT_FALSE(fx.eval.eval_cache_bypassed());
  fx.eval.Evaluate(0, fx.tc, tp, fx.ts, CardinalitySource::kEstimated);
  EXPECT_GT(fx.eval.eval_cache_probes(), probes_before);
}

TEST(SubQEvaluatorTest, EvaluateScreenSanity) {
  Fixture fx;
  const uint64_t probes_before = fx.eval.eval_cache_probes();
  for (int i = 0; i < fx.eval.num_subqs(); ++i) {
    const auto a =
        fx.eval.EvaluateScreen(i, fx.tc, fx.tp, fx.ts,
                               CardinalitySource::kEstimated);
    EXPECT_GT(a.analytical_latency, 0.0) << "subq " << i;
    EXPECT_GT(a.cost, 0.0);
    const auto b =
        fx.eval.EvaluateScreen(i, fx.tc, fx.tp, fx.ts,
                               CardinalitySource::kEstimated);
    EXPECT_EQ(a.analytical_latency, b.analytical_latency) << "subq " << i;
    EXPECT_EQ(a.cost, b.cost);
  }
  // The screen lives in a different result space than full evaluations
  // and must never touch the eval cache.
  EXPECT_EQ(fx.eval.eval_cache_probes(), probes_before);
}

TEST(SubQEvaluatorTest, ShufflePartitionCountRespected) {
  Fixture fx;
  int join_subq = -1;
  for (const auto& sq : fx.eval.subqueries()) {
    if (sq.has_join) join_subq = sq.id;
  }
  ASSERT_GE(join_subq, 0);
  auto tp = fx.tp;
  tp.shuffle_partitions = 32;
  tp.advisory_partition_size_mb = 0.001;  // no coalescing
  tp.broadcast_join_threshold_mb = 0;
  const auto st = fx.eval.BuildStage(join_subq, fx.tc, tp, fx.ts,
                                     CardinalitySource::kEstimated);
  EXPECT_LE(st.num_partitions, 33);
}

}  // namespace
}  // namespace sparkopt
