#include "model/trainer.h"

#include <gtest/gtest.h>

#include "workload/tpch.h"

namespace sparkopt {
namespace {

TEST(SplitDatasetTest, EightOneOneProportions) {
  ModelDataset ds;
  for (int i = 0; i < 100; ++i) {
    ds.Append({static_cast<double>(i)}, {1.0});
  }
  auto split = SplitDataset(ds, 1);
  EXPECT_EQ(split.train.size(), 80u);
  EXPECT_EQ(split.validation.size(), 10u);
  EXPECT_EQ(split.test.size(), 10u);
}

TEST(SplitDatasetTest, NoSampleLostOrDuplicated) {
  ModelDataset ds;
  for (int i = 0; i < 57; ++i) {
    ds.Append({static_cast<double>(i)}, {1.0});
  }
  auto split = SplitDataset(ds, 2);
  std::vector<double> seen;
  for (const auto& r : split.train.x) seen.push_back(r[0]);
  for (const auto& r : split.validation.x) seen.push_back(r[0]);
  for (const auto& r : split.test.x) seen.push_back(r[0]);
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), 57u);
  for (int i = 0; i < 57; ++i) EXPECT_DOUBLE_EQ(seen[i], i);
}

class TrainerPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new std::vector<TableStats>(TpchCatalog(10));
    collector_ = new TraceCollector(ClusterSpec{}, CostModelParams{});
    subq_ = new ModelDataset();
    qs_ = new ModelDataset();
    lqp_ = new ModelDataset();
    TraceOptions opts;
    opts.runs = 40;
    opts.seed = 11;
    auto st = collector_->Collect(
        [&](int qid, uint64_t v) {
          return MakeTpchQuery(qid, catalog_, v);
        },
        22, opts, subq_, qs_, lqp_);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  static void TearDownTestSuite() {
    delete catalog_;
    delete collector_;
    delete subq_;
    delete qs_;
    delete lqp_;
  }
  static std::vector<TableStats>* catalog_;
  static TraceCollector* collector_;
  static ModelDataset* subq_;
  static ModelDataset* qs_;
  static ModelDataset* lqp_;
};

std::vector<TableStats>* TrainerPipelineTest::catalog_ = nullptr;
TraceCollector* TrainerPipelineTest::collector_ = nullptr;
ModelDataset* TrainerPipelineTest::subq_ = nullptr;
ModelDataset* TrainerPipelineTest::qs_ = nullptr;
ModelDataset* TrainerPipelineTest::lqp_ = nullptr;

TEST_F(TrainerPipelineTest, CollectorEmitsAllThreeTargets) {
  EXPECT_GT(subq_->size(), 100u);
  EXPECT_EQ(subq_->size(), qs_->size());
  EXPECT_GT(lqp_->size(), 40u);  // at least one per wave per run
}

TEST_F(TrainerPipelineTest, TargetsArePositive) {
  for (const auto& y : subq_->y) {
    EXPECT_GE(y[0], 0.0);
    EXPECT_GE(y[1], 0.0);
  }
}

TEST_F(TrainerPipelineTest, FeatureDimensionsConsistent) {
  for (const auto& x : subq_->x) EXPECT_EQ(x.size(), subq_->x[0].size());
  for (const auto& x : lqp_->x) EXPECT_EQ(x.size(), lqp_->x[0].size());
  EXPECT_EQ(lqp_->x[0].size(), subq_->x[0].size() + 1);
}

TEST_F(TrainerPipelineTest, TrainAndEvaluateEndToEnd) {
  ModelSuite suite;
  Mlp::TrainOptions opts;
  opts.epochs = 30;
  ASSERT_TRUE(suite.Train(*subq_, *qs_, *lqp_, 7, opts).ok());
  auto perf = suite.Evaluate(suite.subq_model(), *subq_);
  // Training-set fit: correlation should be clearly positive and WMAPE
  // bounded (loose bounds: this is a smoke check, not Table 3).
  EXPECT_GT(perf.latency.corr, 0.5);
  EXPECT_LT(perf.latency.wmape, 1.0);
  EXPECT_GT(perf.throughput_per_sec, 1000.0);
}

TEST_F(TrainerPipelineTest, EmptyDatasetRejected) {
  ModelSuite suite;
  ModelDataset empty;
  EXPECT_FALSE(suite.Train(empty, *qs_, *lqp_, 1).ok());
}

TEST(TraceCollectorTest, DeterministicAcrossRuns) {
  auto catalog = TpchCatalog(10);
  TraceCollector c1(ClusterSpec{}, CostModelParams{});
  TraceCollector c2(ClusterSpec{}, CostModelParams{});
  ModelDataset a1, a2, b1, b2, c_1, c_2;
  TraceOptions opts;
  opts.runs = 6;
  opts.seed = 3;
  auto mk = [&](int qid, uint64_t v) {
    return MakeTpchQuery(qid, &catalog, v);
  };
  ASSERT_TRUE(c1.Collect(mk, 22, opts, &a1, &b1, &c_1).ok());
  ASSERT_TRUE(c2.Collect(mk, 22, opts, &a2, &b2, &c_2).ok());
  ASSERT_EQ(a1.size(), a2.size());
  for (size_t i = 0; i < a1.size(); ++i) {
    EXPECT_EQ(a1.y[i], a2.y[i]);
  }
}

}  // namespace
}  // namespace sparkopt
