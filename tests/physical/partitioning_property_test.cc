/// \file partitioning_property_test.cc
/// \brief Property tests for the partitioning rules (the s1/s5-s7/s10/s11
/// machinery): mass conservation, size bounds, and monotonicity across
/// randomized sweeps.

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "physical/physical_plan.h"

namespace sparkopt {
namespace {

constexpr double kMb = 1024.0 * 1024.0;

double Sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

class PartitionRulesPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  Rng rng_{GetParam()};
};

TEST_P(PartitionRulesPropertyTest, SkewedSizesConserveMassAndOrder) {
  for (int trial = 0; trial < 20; ++trial) {
    const double total = rng_.Uniform(1.0, 1e11);
    const int n = 1 + static_cast<int>(rng_.NextBounded(2048));
    const double z = rng_.Uniform();
    auto sizes = SkewedPartitionSizes(total, n, z);
    ASSERT_EQ(sizes.size(), static_cast<size_t>(n));
    EXPECT_NEAR(Sum(sizes), total, total * 1e-9);
    // Zipf weights are non-increasing.
    for (size_t i = 1; i < sizes.size(); ++i) {
      EXPECT_LE(sizes[i], sizes[i - 1] + 1e-9);
    }
    for (double s : sizes) EXPECT_GE(s, 0.0);
  }
}

TEST_P(PartitionRulesPropertyTest, HigherSkewRaisesMaxPartition) {
  const double total = 1e9;
  const int n = 64;
  double prev_max = 0.0;
  for (double z = 0.0; z <= 1.0; z += 0.25) {
    auto sizes = SkewedPartitionSizes(total, n, z);
    EXPECT_GE(sizes[0], prev_max - 1e-6);
    prev_max = sizes[0];
  }
}

TEST_P(PartitionRulesPropertyTest, SkewSplitConservesMassAndBoundsPieces) {
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 2 + static_cast<int>(rng_.NextBounded(256));
    std::vector<double> parts(n);
    for (auto& p : parts) p = rng_.Uniform(0.1, 4096.0) * kMb;
    const double threshold = rng_.Uniform(32, 1024);
    const double factor = rng_.Uniform(2, 10);
    const double advisory = rng_.Uniform(8, 256);
    auto out = ApplySkewSplit(parts, threshold, factor, advisory);
    EXPECT_NEAR(Sum(out), Sum(parts), Sum(parts) * 1e-9);
    EXPECT_GE(out.size(), parts.size());
    // Split pieces never exceed the split trigger size itself.
    std::vector<double> sorted = parts;
    std::sort(sorted.begin(), sorted.end());
    const double median = sorted[sorted.size() / 2];
    const double limit = std::max(threshold * kMb, factor * median);
    for (double b : out) EXPECT_LE(b, std::max(limit, advisory * kMb) + 1);
  }
}

TEST_P(PartitionRulesPropertyTest, CoalesceConservesMassNeverGrowsCount) {
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 1 + static_cast<int>(rng_.NextBounded(512));
    std::vector<double> parts(n);
    for (auto& p : parts) p = rng_.Uniform(0.01, 256.0) * kMb;
    const double advisory = rng_.Uniform(8, 256);
    const double small_factor = rng_.Uniform(0.1, 0.5);
    const double min_size = rng_.Uniform(1, 64);
    auto out = ApplyCoalesce(parts, advisory, small_factor, min_size);
    EXPECT_NEAR(Sum(out), Sum(parts), Sum(parts) * 1e-9 + 1e-6);
    EXPECT_LE(out.size(), parts.size());
    EXPECT_GE(out.size(), 1u);
  }
}

TEST_P(PartitionRulesPropertyTest, SplitThenCoalesceStableMass) {
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 2 + static_cast<int>(rng_.NextBounded(128));
    std::vector<double> parts(n);
    for (auto& p : parts) p = rng_.Uniform(0.1, 2048.0) * kMb;
    const double before = Sum(parts);
    auto out = ApplyCoalesce(
        ApplySkewSplit(parts, 256, 5, 64), 64, 0.2, 1);
    EXPECT_NEAR(Sum(out), before, before * 1e-9 + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionRulesPropertyTest,
                         ::testing::Values(3, 7, 31, 127, 8191));

}  // namespace
}  // namespace sparkopt
