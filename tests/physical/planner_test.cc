#include "physical/physical_plan.h"

#include <gtest/gtest.h>

#include <cmath>

#include <numeric>

#include "plan/cardinality.h"

namespace sparkopt {
namespace {

constexpr double kMb = 1024.0 * 1024.0;

// A two-table join plan where the build side size is controlled exactly.
struct JoinFixture {
  LogicalPlan plan;
  std::vector<TableStats> catalog;
  int join_id = -1;

  explicit JoinFixture(double small_table_mb, double big_table_mb = 4096) {
    TableStats small{"small", small_table_mb * kMb / 100.0, 100, 0.0};
    TableStats big{"big", big_table_mb * kMb / 100.0, 100, 0.0};
    catalog = {small, big};
    LogicalOperator s0;
    s0.type = OpType::kScan;
    s0.table_id = 0;
    s0.out_row_bytes = 100;
    const int a = plan.AddOperator(s0);
    LogicalOperator s1 = s0;
    s1.table_id = 1;
    const int b = plan.AddOperator(s1);
    LogicalOperator j;
    j.type = OpType::kJoin;
    j.children = {a, b};
    j.cardinality_factor = 1.0;
    j.requires_shuffle = true;
    j.out_row_bytes = 100;
    join_id = plan.AddOperator(j);
    EXPECT_TRUE(plan.Build().ok());
    CboErrorModel err;
    err.sigma_per_join = 0.0;
    err.join_bias = 1.0;  // exact estimates: isolate the threshold logic
    err.filter_sigma = 0.0;
    EXPECT_TRUE(AnnotateCardinalities(catalog, err, &plan).ok());
  }

  Result<PhysicalPlan> Plan(PlanParams tp) {
    PhysicalPlanner planner(&plan, plan.DecomposeSubQueries());
    ContextParams tc = DecodeContext(DefaultSparkConfig());
    return planner.Plan(tc, {tp}, {StageParams{}},
                        CardinalitySource::kEstimated);
  }
};

TEST(JoinSelectionTest, SmallBuildSideBroadcasts) {
  JoinFixture fx(/*small_table_mb=*/5);
  PlanParams tp;
  tp.broadcast_join_threshold_mb = 10;
  tp.non_empty_partition_ratio = 0.0;
  auto pp = fx.Plan(tp);
  ASSERT_TRUE(pp.ok());
  ASSERT_EQ(pp->join_decisions.size(), 1u);
  EXPECT_EQ(pp->join_decisions[0].algo, JoinAlgo::kBroadcastHashJoin);
}

TEST(JoinSelectionTest, MediumBuildSideUsesShuffledHash) {
  JoinFixture fx(/*small_table_mb=*/50);
  PlanParams tp;
  tp.broadcast_join_threshold_mb = 10;
  tp.shuffled_hash_join_threshold_mb = 100;
  auto pp = fx.Plan(tp);
  ASSERT_TRUE(pp.ok());
  EXPECT_EQ(pp->join_decisions[0].algo, JoinAlgo::kShuffledHashJoin);
}

TEST(JoinSelectionTest, LargeBuildSideFallsBackToSortMerge) {
  JoinFixture fx(/*small_table_mb=*/500);
  PlanParams tp;
  tp.broadcast_join_threshold_mb = 10;
  tp.shuffled_hash_join_threshold_mb = 100;
  auto pp = fx.Plan(tp);
  ASSERT_TRUE(pp.ok());
  EXPECT_EQ(pp->join_decisions[0].algo, JoinAlgo::kSortMergeJoin);
}

TEST(JoinSelectionTest, NonEmptyRatioDemotesBroadcast) {
  // A ~50-row build side fills only ~5% of 1024 shuffle partitions,
  // below the 90% non-empty bar: the AQE demotion rule kicks in.
  JoinFixture fx(/*small_table_mb=*/0.005);
  PlanParams tp;
  tp.broadcast_join_threshold_mb = 10;
  tp.shuffle_partitions = 1024;
  tp.non_empty_partition_ratio = 0.9;
  auto pp = fx.Plan(tp);
  ASSERT_TRUE(pp.ok());
  EXPECT_NE(pp->join_decisions[0].algo, JoinAlgo::kBroadcastHashJoin);
}

TEST(StageFormationTest, BroadcastJoinMergesIntoProbeStage) {
  JoinFixture fx(5);
  PlanParams bhj;
  bhj.broadcast_join_threshold_mb = 10;
  bhj.non_empty_partition_ratio = 0.0;
  auto with_bhj = fx.Plan(bhj);
  PlanParams smj;
  smj.broadcast_join_threshold_mb = 0;
  auto with_smj = fx.Plan(smj);
  ASSERT_TRUE(with_bhj.ok());
  ASSERT_TRUE(with_smj.ok());
  // SMJ: 3 stages (2 scans + join). BHJ: join merged into probe scan -> 2.
  EXPECT_EQ(with_smj->stages.size(), 3u);
  EXPECT_EQ(with_bhj->stages.size(), 2u);
  // The merged stage has a broadcast dependency, not a shuffle one.
  bool found_broadcast = false;
  for (const auto& st : with_bhj->stages) {
    if (!st.broadcast_deps.empty()) {
      found_broadcast = true;
      EXPECT_GT(st.broadcast_bytes, 0.0);
    }
  }
  EXPECT_TRUE(found_broadcast);
}

TEST(StageFormationTest, ExecutionOrderRespectsDependencies) {
  JoinFixture fx(500);
  auto pp = fx.Plan(PlanParams{});
  ASSERT_TRUE(pp.ok());
  auto order = pp->ExecutionOrder();
  ASSERT_EQ(order.size(), pp->stages.size());
  std::vector<int> pos(order.size());
  for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (const auto& st : pp->stages) {
    for (int d : st.deps) EXPECT_LT(pos[d], pos[st.id]);
    for (int d : st.broadcast_deps) EXPECT_LT(pos[d], pos[st.id]);
  }
}

TEST(StageFormationTest, RootStageDoesNotExchangeOutput) {
  JoinFixture fx(500);
  auto pp = fx.Plan(PlanParams{});
  ASSERT_TRUE(pp.ok());
  int roots = 0;
  for (const auto& st : pp->stages) {
    if (!st.exchanges_output) ++roots;
  }
  EXPECT_EQ(roots, 1);
}

TEST(PartitioningTest, ScanPartitionsFollowMaxPartitionBytes) {
  JoinFixture fx(500, /*big=*/1024);
  PlanParams tp;
  tp.max_partition_bytes_mb = 128;
  tp.file_open_cost_mb = 1;
  auto pp = fx.Plan(tp);
  ASSERT_TRUE(pp.ok());
  for (const auto& st : pp->stages) {
    if (!st.is_scan_stage) continue;
    const double expected =
        std::ceil(st.input_bytes /
                  std::min(128 * kMb,
                           std::max(1 * kMb, st.input_bytes / 64.0)));
    EXPECT_EQ(st.num_partitions, static_cast<int>(expected));
  }
}

TEST(PartitioningTest, ShuffleStageUsesShufflePartitionsThenCoalesce) {
  JoinFixture fx(500);
  PlanParams tp;
  tp.shuffle_partitions = 64;
  tp.advisory_partition_size_mb = 1e9;  // coalesce everything
  auto pp = fx.Plan(tp);
  ASSERT_TRUE(pp.ok());
  for (const auto& st : pp->stages) {
    if (st.is_scan_stage) continue;
    // All small partitions merged toward the advisory size -> few remain.
    EXPECT_LE(st.num_partitions, 64);
  }
}

TEST(PartitionSizesTest, UniformWhenNoSkew) {
  auto sizes = SkewedPartitionSizes(1000.0, 10, 0.0);
  ASSERT_EQ(sizes.size(), 10u);
  for (double s : sizes) EXPECT_NEAR(s, 100.0, 1e-9);
}

TEST(PartitionSizesTest, SkewConcentratesMass) {
  auto sizes = SkewedPartitionSizes(1000.0, 10, 0.8);
  EXPECT_GT(sizes[0], 2 * sizes[9]);
  const double total = std::accumulate(sizes.begin(), sizes.end(), 0.0);
  EXPECT_NEAR(total, 1000.0, 1e-6);
}

TEST(PartitionSizesTest, MassConservedUnderSkew) {
  for (double z : {0.0, 0.3, 0.7, 1.0}) {
    auto sizes = SkewedPartitionSizes(5e9, 37, z);
    EXPECT_NEAR(std::accumulate(sizes.begin(), sizes.end(), 0.0), 5e9,
                1e-3);
  }
}

TEST(SkewSplitTest, OversizedPartitionSplit) {
  std::vector<double> parts = {1000 * kMb, 10 * kMb, 10 * kMb, 10 * kMb,
                               10 * kMb};
  auto out = ApplySkewSplit(parts, /*threshold_mb=*/100, /*factor=*/5,
                            /*advisory_mb=*/64);
  EXPECT_GT(out.size(), parts.size());
  double total_in = std::accumulate(parts.begin(), parts.end(), 0.0);
  double total_out = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_NEAR(total_in, total_out, 1.0);
  for (double b : out) EXPECT_LE(b, 100 * kMb + 1);
}

TEST(SkewSplitTest, UniformPartitionsUntouched) {
  std::vector<double> parts(8, 50 * kMb);
  auto out = ApplySkewSplit(parts, 100, 5, 64);
  EXPECT_EQ(out, parts);
}

TEST(CoalesceTest, SmallPartitionsMerged) {
  std::vector<double> parts(16, 4 * kMb);
  auto out = ApplyCoalesce(parts, /*advisory_mb=*/64, /*small_factor=*/0.2,
                           /*min_size_mb=*/1);
  EXPECT_LT(out.size(), parts.size());
  EXPECT_NEAR(std::accumulate(out.begin(), out.end(), 0.0), 64 * kMb, 1.0);
}

TEST(CoalesceTest, LargePartitionsKept) {
  std::vector<double> parts(4, 100 * kMb);
  auto out = ApplyCoalesce(parts, 64, 0.2, 1);
  EXPECT_EQ(out, parts);
}

TEST(CoalesceTest, NeverReturnsEmpty) {
  auto out = ApplyCoalesce({}, 64, 0.2, 1);
  EXPECT_EQ(out.size(), 1u);
}

TEST(JoinAlgoNameTest, Names) {
  EXPECT_STREQ(JoinAlgoName(JoinAlgo::kSortMergeJoin), "SMJ");
  EXPECT_STREQ(JoinAlgoName(JoinAlgo::kShuffledHashJoin), "SHJ");
  EXPECT_STREQ(JoinAlgoName(JoinAlgo::kBroadcastHashJoin), "BHJ");
}

// Property: fine-grained per-subQ theta_p with identical copies must give
// the same plan as a single shared copy.
TEST(FineGrainedConsistencyTest, IdenticalCopiesMatchShared) {
  JoinFixture fx(50);
  PhysicalPlanner planner(&fx.plan, fx.plan.DecomposeSubQueries());
  ContextParams tc = DecodeContext(DefaultSparkConfig());
  PlanParams tp;
  tp.shuffled_hash_join_threshold_mb = 100;
  const size_t m = planner.subqueries().size();
  auto shared = planner.Plan(tc, {tp}, {StageParams{}},
                             CardinalitySource::kEstimated);
  auto fine = planner.Plan(tc, std::vector<PlanParams>(m, tp),
                           std::vector<StageParams>(m, StageParams{}),
                           CardinalitySource::kEstimated);
  ASSERT_TRUE(shared.ok());
  ASSERT_TRUE(fine.ok());
  ASSERT_EQ(shared->stages.size(), fine->stages.size());
  for (size_t i = 0; i < shared->stages.size(); ++i) {
    EXPECT_EQ(shared->stages[i].num_partitions,
              fine->stages[i].num_partitions);
    EXPECT_DOUBLE_EQ(shared->stages[i].cpu_work, fine->stages[i].cpu_work);
  }
}

}  // namespace
}  // namespace sparkopt
