/// \file bench_hmooc_solver.cc
/// \brief Micro-benchmarks of the full HMOOC compile-time solve on
/// representative plan shapes (the "solving time" axis of Figure 10),
/// plus ablations over the algorithm's two budgets: theta_c candidates
/// and the theta_p sample pool (Algorithm 1's knobs).

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "moo/hmooc.h"
#include "moo/objective_models.h"
#include "workload/tpcds.h"
#include "workload/tpch.h"

namespace sparkopt {
namespace {

void BM_HmoocSolveTpchQ3(benchmark::State& state) {
  static auto catalog = TpchCatalog(100);
  static auto q = *MakeTpchQuery(3, &catalog);
  ClusterSpec cluster;
  CostModelParams cost;
  AnalyticSubQModel model(&q, cluster, cost);
  HmoocOptions ho;
  ho.seed = 3;
  HmoocSolver solver(&model, ho);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve());
  }
}
BENCHMARK(BM_HmoocSolveTpchQ3)->Unit(benchmark::kMillisecond);

void BM_HmoocSolveTpchQ9(benchmark::State& state) {
  static auto catalog = TpchCatalog(100);
  static auto q = *MakeTpchQuery(9, &catalog);
  ClusterSpec cluster;
  CostModelParams cost;
  AnalyticSubQModel model(&q, cluster, cost);
  HmoocOptions ho;
  ho.seed = 3;
  HmoocSolver solver(&model, ho);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve());
  }
}
BENCHMARK(BM_HmoocSolveTpchQ9)->Unit(benchmark::kMillisecond);

void BM_HmoocSolveWideTpcds(benchmark::State& state) {
  // The widest TPC-DS shapes (multi-channel unions) stress the per-subQ
  // loop; find one with > 25 subQs.
  static auto catalog = TpcdsCatalog(100);
  static Query q = [] {
    for (int qid = 1; qid <= 102; ++qid) {
      auto cand = *MakeTpcdsQuery(qid, &catalog);
      if (cand.NumSubQueries() > 25) return cand;
    }
    return *MakeTpcdsQuery(1, &catalog);
  }();
  ClusterSpec cluster;
  CostModelParams cost;
  AnalyticSubQModel model(&q, cluster, cost);
  HmoocOptions ho;
  ho.seed = 3;
  HmoocSolver solver(&model, ho);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve());
  }
  state.SetLabel(std::to_string(q.NumSubQueries()) + " subQs");
}
BENCHMARK(BM_HmoocSolveWideTpcds)->Unit(benchmark::kMillisecond);

void BM_HmoocSolveTpchQ9Threads(benchmark::State& state) {
  static auto catalog = TpchCatalog(100);
  static auto q = *MakeTpchQuery(9, &catalog);
  ClusterSpec cluster;
  CostModelParams cost;
  AnalyticSubQModel model(&q, cluster, cost);
  HmoocOptions ho;
  ho.seed = 3;
  ho.num_threads = static_cast<int>(state.range(0));
  HmoocSolver solver(&model, ho);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve());
  }
}
BENCHMARK(BM_HmoocSolveTpchQ9Threads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_HmoocSolveTpchQ9NoCache(benchmark::State& state) {
  static auto catalog = TpchCatalog(100);
  static auto q = *MakeTpchQuery(9, &catalog);
  ClusterSpec cluster;
  CostModelParams cost;
  AnalyticSubQModel model(&q, cluster, cost);
  model.evaluator().set_eval_cache_enabled(false);
  HmoocOptions ho;
  ho.seed = 3;
  ho.num_threads = 1;
  HmoocSolver solver(&model, ho);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve());
  }
}
BENCHMARK(BM_HmoocSolveTpchQ9NoCache)->Unit(benchmark::kMillisecond);

void BM_HmoocBudgetSweep(benchmark::State& state) {
  static auto catalog = TpchCatalog(100);
  static auto q = *MakeTpchQuery(9, &catalog);
  ClusterSpec cluster;
  CostModelParams cost;
  AnalyticSubQModel model(&q, cluster, cost);
  HmoocOptions ho;
  ho.seed = 3;
  ho.theta_c_samples = state.range(0);
  ho.clusters = std::max<int>(2, state.range(0) / 6);
  ho.theta_p_samples = state.range(1);
  HmoocSolver solver(&model, ho);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve());
  }
}
BENCHMARK(BM_HmoocBudgetSweep)
    ->Args({16, 32})
    ->Args({32, 64})
    ->Args({64, 96})
    ->Args({128, 192})
    ->Unit(benchmark::kMillisecond);

// Directly measured solve times emitted as RESULT-line JSON for the
// driver's before/after comparisons (best of `reps` wall-clock runs).
void EmitSolveResults() {
  auto catalog = TpchCatalog(100);
  auto q = *MakeTpchQuery(9, &catalog);
  ClusterSpec cluster;
  CostModelParams cost;
  const int reps = benchutil::FastMode() ? 1 : 3;
  struct Config {
    int threads;
    bool cache;
  };
  const int hw = ThreadPool(0).parallelism();
  // On single-core runners hw == 1 and the multi-thread config would
  // duplicate the {1, cache} row byte-for-byte, which then skews the
  // snapshot aggregation (tools/bench_snapshot.sh). Skip it there.
  std::vector<Config> configs{Config{1, false}, Config{1, true}};
  if (hw != 1) configs.push_back(Config{hw, true});
  for (const Config& cfg : configs) {
    AnalyticSubQModel model(&q, cluster, cost);
    model.evaluator().set_eval_cache_enabled(cfg.cache);
    HmoocOptions ho;
    ho.seed = 3;
    ho.num_threads = cfg.threads;
    HmoocSolver solver(&model, ho);
    double best_s = 1e300;
    size_t evals = 0, evals_total = 0;
    for (int rep = 0; rep < reps; ++rep) {
      benchutil::Timer timer;
      const auto r = solver.Solve();
      best_s = std::min(best_s, timer.Seconds());
      evals = r.evaluations;
      evals_total += r.evaluations;
    }
    // cache_hits / cache_probes accumulate across reps (the evaluator
    // persists); probe_len_avg normalises probes by total Evaluate calls
    // so the threads=1 cache anomaly (probe cost > hit win at 5.7% hit
    // rate, see DESIGN.md §12) is visible straight from the RESULT line.
    const uint64_t probes = model.evaluator().eval_cache_probes();
    obs::JsonObject o;
    o.emplace_back("query", obs::Json("tpch_q9"));
    o.emplace_back("threads", obs::Json(cfg.threads));
    o.emplace_back("eval_cache", obs::Json(cfg.cache));
    o.emplace_back("solve_ms", obs::Json(best_s * 1e3));
    o.emplace_back("evaluations", obs::Json(static_cast<uint64_t>(evals)));
    o.emplace_back(
        "cache_hits",
        obs::Json(model.evaluator().eval_cache_hits()));
    o.emplace_back("cache_probes", obs::Json(probes));
    o.emplace_back(
        "probe_len_avg",
        obs::Json(evals_total > 0
                      ? static_cast<double>(probes) /
                            static_cast<double>(evals_total)
                      : 0.0));
    benchutil::EmitJson("hmooc_solve", obs::Json(std::move(o)));
  }
}

}  // namespace
}  // namespace sparkopt

int main(int argc, char** argv) {
  // Consumes --trace-out/--profile-out/--metrics-out (and their env
  // twins) before google-benchmark sees — and would reject — them.
  sparkopt::benchutil::TraceExport trace(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  sparkopt::EmitSolveResults();
  return 0;
}
