/// \file bench_hmooc_solver.cc
/// \brief Micro-benchmarks of the full HMOOC compile-time solve on
/// representative plan shapes (the "solving time" axis of Figure 10),
/// plus ablations over the algorithm's two budgets: theta_c candidates
/// and the theta_p sample pool (Algorithm 1's knobs).

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "moo/hmooc.h"
#include "moo/objective_models.h"
#include "workload/tpcds.h"
#include "workload/tpch.h"

namespace sparkopt {
namespace {

void BM_HmoocSolveTpchQ3(benchmark::State& state) {
  static auto catalog = TpchCatalog(100);
  static auto q = *MakeTpchQuery(3, &catalog);
  ClusterSpec cluster;
  CostModelParams cost;
  AnalyticSubQModel model(&q, cluster, cost);
  HmoocOptions ho;
  ho.seed = 3;
  HmoocSolver solver(&model, ho);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve());
  }
}
BENCHMARK(BM_HmoocSolveTpchQ3)->Unit(benchmark::kMillisecond);

void BM_HmoocSolveTpchQ9(benchmark::State& state) {
  static auto catalog = TpchCatalog(100);
  static auto q = *MakeTpchQuery(9, &catalog);
  ClusterSpec cluster;
  CostModelParams cost;
  AnalyticSubQModel model(&q, cluster, cost);
  HmoocOptions ho;
  ho.seed = 3;
  HmoocSolver solver(&model, ho);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve());
  }
}
BENCHMARK(BM_HmoocSolveTpchQ9)->Unit(benchmark::kMillisecond);

void BM_HmoocSolveWideTpcds(benchmark::State& state) {
  // The widest TPC-DS shapes (multi-channel unions) stress the per-subQ
  // loop; find one with > 25 subQs.
  static auto catalog = TpcdsCatalog(100);
  static Query q = [] {
    for (int qid = 1; qid <= 102; ++qid) {
      auto cand = *MakeTpcdsQuery(qid, &catalog);
      if (cand.NumSubQueries() > 25) return cand;
    }
    return *MakeTpcdsQuery(1, &catalog);
  }();
  ClusterSpec cluster;
  CostModelParams cost;
  AnalyticSubQModel model(&q, cluster, cost);
  HmoocOptions ho;
  ho.seed = 3;
  HmoocSolver solver(&model, ho);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve());
  }
  state.SetLabel(std::to_string(q.NumSubQueries()) + " subQs");
}
BENCHMARK(BM_HmoocSolveWideTpcds)->Unit(benchmark::kMillisecond);

void BM_HmoocSolveTpchQ9Threads(benchmark::State& state) {
  static auto catalog = TpchCatalog(100);
  static auto q = *MakeTpchQuery(9, &catalog);
  ClusterSpec cluster;
  CostModelParams cost;
  AnalyticSubQModel model(&q, cluster, cost);
  HmoocOptions ho;
  ho.seed = 3;
  ho.num_threads = static_cast<int>(state.range(0));
  HmoocSolver solver(&model, ho);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve());
  }
}
BENCHMARK(BM_HmoocSolveTpchQ9Threads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_HmoocSolveTpchQ9NoCache(benchmark::State& state) {
  static auto catalog = TpchCatalog(100);
  static auto q = *MakeTpchQuery(9, &catalog);
  ClusterSpec cluster;
  CostModelParams cost;
  AnalyticSubQModel model(&q, cluster, cost);
  model.evaluator().set_eval_cache_enabled(false);
  HmoocOptions ho;
  ho.seed = 3;
  ho.num_threads = 1;
  HmoocSolver solver(&model, ho);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve());
  }
}
BENCHMARK(BM_HmoocSolveTpchQ9NoCache)->Unit(benchmark::kMillisecond);

void BM_HmoocBudgetSweep(benchmark::State& state) {
  static auto catalog = TpchCatalog(100);
  static auto q = *MakeTpchQuery(9, &catalog);
  ClusterSpec cluster;
  CostModelParams cost;
  AnalyticSubQModel model(&q, cluster, cost);
  HmoocOptions ho;
  ho.seed = 3;
  ho.theta_c_samples = state.range(0);
  ho.clusters = std::max<int>(2, state.range(0) / 6);
  ho.theta_p_samples = state.range(1);
  HmoocSolver solver(&model, ho);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve());
  }
}
BENCHMARK(BM_HmoocBudgetSweep)
    ->Args({16, 32})
    ->Args({32, 64})
    ->Args({64, 96})
    ->Args({128, 192})
    ->Unit(benchmark::kMillisecond);

// Directly measured solve times emitted as RESULT-line JSON for the
// driver's before/after comparisons (best of `reps` wall-clock runs).
void EmitSolveResults() {
  auto catalog = TpchCatalog(100);
  auto q = *MakeTpchQuery(9, &catalog);
  ClusterSpec cluster;
  CostModelParams cost;
  // Best-of-N even in fast mode: single timings on shared runners swing
  // ~10% run to run, which would swallow the very regressions the
  // snapshot gate exists to catch (min-of-3 is far tighter).
  const int reps = 3;
  struct Config {
    int threads;
    bool cache;
  };
  const int hw = ThreadPool(0).parallelism();
  // On single-core runners hw == 1 and the multi-thread config would
  // duplicate the {1, cache} row byte-for-byte, which then skews the
  // snapshot aggregation (tools/bench_snapshot.sh). Skip it there.
  std::vector<Config> configs{Config{1, false}, Config{1, true}};
  if (hw != 1) configs.push_back(Config{hw, true});
  for (const Config& cfg : configs) {
    AnalyticSubQModel model(&q, cluster, cost);
    model.evaluator().set_eval_cache_enabled(cfg.cache);
    HmoocOptions ho;
    ho.seed = 3;
    ho.num_threads = cfg.threads;
    HmoocSolver solver(&model, ho);
    double best_s = 1e300;
    size_t evals = 0, evals_total = 0;
    for (int rep = 0; rep < reps; ++rep) {
      benchutil::Timer timer;
      const auto r = solver.Solve();
      best_s = std::min(best_s, timer.Seconds());
      evals = r.evaluations;
      evals_total += r.evaluations;
    }
    // cache_hits / cache_probes accumulate across reps (the evaluator
    // persists); probe_len_avg normalises probes by total Evaluate calls
    // so the threads=1 cache anomaly (probe cost > hit win at 5.7% hit
    // rate, see DESIGN.md §12) is visible straight from the RESULT line.
    const uint64_t probes = model.evaluator().eval_cache_probes();
    obs::JsonObject o;
    o.emplace_back("query", obs::Json("tpch_q9"));
    o.emplace_back("threads", obs::Json(cfg.threads));
    o.emplace_back("eval_cache", obs::Json(cfg.cache));
    o.emplace_back("solve_ms", obs::Json(best_s * 1e3));
    o.emplace_back("evaluations", obs::Json(static_cast<uint64_t>(evals)));
    o.emplace_back(
        "cache_hits",
        obs::Json(model.evaluator().eval_cache_hits()));
    o.emplace_back(
        "cache_misses",
        obs::Json(model.evaluator().eval_cache_misses()));
    o.emplace_back(
        "cache_drops",
        obs::Json(model.evaluator().eval_cache_drops()));
    o.emplace_back("cache_probes", obs::Json(probes));
    o.emplace_back(
        "probe_len_avg",
        obs::Json(evals_total > 0
                      ? static_cast<double>(probes) /
                            static_cast<double>(evals_total)
                      : 0.0));
    benchutil::EmitJson("hmooc_solve", obs::Json(std::move(o)));
  }
}

// 3-objective solve sweep: each query solved end-to-end with k = 2 and
// k = 3 under HMOOC1 (the exact D&C aggregation, where the k = 3
// kd-staircase merge actually runs), emitting both times and their
// ratio. The PR 9 acceptance target is ratio <= 1.5 on the TPC-H rows.
void EmitSolve3Results() {
  auto tpch_catalog = TpchCatalog(100);
  auto tpcds_catalog = TpcdsCatalog(100);
  struct Row {
    std::string name;
    Query q;
  };
  std::vector<Row> rows;
  rows.push_back({"tpch_q3", *MakeTpchQuery(3, &tpch_catalog)});
  rows.push_back({"tpch_q9", *MakeTpchQuery(9, &tpch_catalog)});
  for (int qid = 1; qid <= 102; ++qid) {
    auto q = MakeTpcdsQuery(qid, &tpcds_catalog);
    if (q.ok()) {
      rows.push_back({"tpcds_q" + std::to_string(qid), std::move(*q)});
      break;
    }
  }
  ClusterSpec cluster;
  CostModelParams cost;
  const int reps = 3;  // best-of-3: see EmitSolveResults
  for (Row& row : rows) {
    double solve_ms[2] = {0.0, 0.0};
    size_t front_size[2] = {0, 0};
    for (int k : {2, 3}) {
      AnalyticSubQModel model(&row.q, cluster, cost);
      model.set_num_objectives(k);
      HmoocOptions ho;
      ho.seed = 3;
      ho.aggregation = DagAggregation::kDivideAndConquer;
      HmoocSolver solver(&model, ho);
      double best_s = 1e300;
      for (int rep = 0; rep < reps; ++rep) {
        benchutil::Timer timer;
        const auto r = solver.Solve();
        best_s = std::min(best_s, timer.Seconds());
        front_size[k - 2] = r.pareto.size();
      }
      solve_ms[k - 2] = best_s * 1e3;
    }
    obs::JsonObject o;
    o.emplace_back("query", obs::Json(row.name));
    o.emplace_back("solve2_ms", obs::Json(solve_ms[0]));
    o.emplace_back("solve3_ms", obs::Json(solve_ms[1]));
    o.emplace_back("ratio", obs::Json(solve_ms[1] / solve_ms[0]));
    o.emplace_back("front2_size",
                   obs::Json(static_cast<uint64_t>(front_size[0])));
    o.emplace_back("front3_size",
                   obs::Json(static_cast<uint64_t>(front_size[1])));
    benchutil::EmitJson("hmooc_solve3", obs::Json(std::move(o)));
  }
}

// Multi-fidelity screening sweep (DESIGN.md section 13): for each
// workload, solve every query single-fidelity (the quality/latency
// reference) and under each screen config, then emit
//  - mf_screen: mean solve time + per-tier eval counts/survival rate,
//  - mf_hypervolume_loss: mean % of normalized hypervolume (shared
//    bounds per query) the screened front gives up vs the reference.
void EmitFidelitySweep() {
  struct ScreenCfg {
    const char* mode;
    FidelityMode fm;
    double promote_frac;
    double margin;
    int min_promote;
  };
  const std::vector<ScreenCfg> cfgs{
      ScreenCfg{"off", FidelityMode::kOff, 0.10, 0.15, 8},
      ScreenCfg{"analytic", FidelityMode::kAnalytic, 0.05, 0.02, 8},
      ScreenCfg{"analytic", FidelityMode::kAnalytic, 0.15, 0.10, 8},
      // The learned screen mispredicts more than the analytic one, so it
      // runs with a wider survival band and a higher promotion floor.
      ScreenCfg{"distilled", FidelityMode::kDistilled, 0.10, 0.45, 16},
  };
  struct Workload {
    const char* name;
    std::vector<Query> queries;
  };
  const bool fast = benchutil::FastMode();
  std::vector<Workload> workloads;
  {
    auto tpch_catalog = TpchCatalog(100);
    Workload w{"tpch", {}};
    for (int qid : fast ? std::vector<int>{3, 9}
                        : std::vector<int>{3, 5, 9}) {
      w.queries.push_back(*MakeTpchQuery(qid, &tpch_catalog));
    }
    workloads.push_back(std::move(w));
    auto tpcds_catalog = TpcdsCatalog(100);
    Workload d{"tpcds", {}};
    const size_t want = fast ? 2 : 3;
    for (int qid = 1; qid <= 102 && d.queries.size() < want; ++qid) {
      auto q = MakeTpcdsQuery(qid, &tpcds_catalog);
      if (q.ok()) d.queries.push_back(std::move(*q));
    }
    workloads.push_back(std::move(d));
  }
  ClusterSpec cluster;
  CostModelParams cost;
  HmoocOptions base;
  base.seed = 3;
  if (fast) {
    base.theta_c_samples = 24;
    base.clusters = 6;
    base.theta_p_samples = 48;
    base.enriched_samples = 8;
  }
  const int reps = 2;  // best-of-2 even in fast mode: see EmitSolveResults

  for (const Workload& w : workloads) {
    // Single-fidelity reference fronts per query (also the "off" row).
    std::vector<std::vector<ObjectiveVector>> ref_fronts;
    for (const ScreenCfg& cfg : cfgs) {
      double solve_s_sum = 0.0;
      uint64_t tier0 = 0, tier1 = 0;
      double hv_loss_pct_sum = 0.0;
      for (size_t qi = 0; qi < w.queries.size(); ++qi) {
        const Query& q = w.queries[qi];
        AnalyticSubQModel tier1_model(&q, cluster, cost);
        FidelityOptions fo;
        fo.mode = cfg.fm;
        fo.promote_frac = cfg.promote_frac;
        fo.survival_margin = cfg.margin;
        fo.min_promote = cfg.min_promote;
        fo.distill_samples = 320;
        // The screens are a one-off training artifact; keep their cost
        // out of the timed solve (as a production deployment would).
        std::vector<Regressor> screens;
        if (cfg.fm == FidelityMode::kDistilled) {
          auto trained = TrainDistilledScreens(
              tier1_model, fo.distill_samples, base.seed);
          if (!trained.ok()) continue;
          screens = std::move(*trained);
          fo.distilled = &screens;
        }
        // Wrap explicitly (rather than via HmoocOptions::fidelity) so
        // the tier counters survive the solve for emission.
        ScreeningSubQModel screen(&tier1_model, fo);
        const SubQObjectiveModel* model = &tier1_model;
        if (cfg.fm != FidelityMode::kOff && screen.usable()) {
          model = &screen;
        }
        HmoocSolver solver(model, base);
        double best_s = 1e300;
        MooRunResult r;
        for (int rep = 0; rep < reps; ++rep) {
          benchutil::Timer timer;
          r = solver.Solve();
          best_s = std::min(best_s, timer.Seconds());
        }
        solve_s_sum += best_s;
        tier0 += screen.tier0_evals();
        tier1 += cfg.fm == FidelityMode::kOff
                     ? static_cast<uint64_t>(r.evaluations)
                     : screen.tier1_evals();
        const auto front = benchutil::FrontOf(r);
        if (cfg.fm == FidelityMode::kOff) {
          ref_fronts.push_back(front);
        } else if (qi < ref_fronts.size()) {
          // Quality guard: HV against an origin-anchored reference box
          // (lo = 0, ref = 1.1x the shared max). Min-max bounds would
          // divide by the front's *spread*, which on a narrow objective
          // range turns epsilon-sized pointwise differences into
          // double-digit "loss"; anchoring at the origin measures loss
          // relative to the objective magnitudes instead.
          ObjectiveVector dummy_lo(2, 1e300), hi(2, -1e300);
          benchutil::ExtendBounds(ref_fronts[qi], &dummy_lo, &hi);
          benchutil::ExtendBounds(front, &dummy_lo, &hi);
          const ObjectiveVector lo(2, 0.0);
          const ObjectiveVector ref = {1.1 * hi[0], 1.1 * hi[1]};
          const double hv_ref =
              benchutil::NormalizedHypervolume(ref_fronts[qi], lo, ref);
          const double hv_scr =
              benchutil::NormalizedHypervolume(front, lo, ref);
          if (hv_ref > 0.0) {
            hv_loss_pct_sum +=
                std::max(0.0, (hv_ref - hv_scr) / hv_ref * 100.0);
          }
        }
      }
      const double nq = static_cast<double>(w.queries.size());
      obs::JsonObject o;
      o.emplace_back("workload", obs::Json(w.name));
      o.emplace_back("mode", obs::Json(cfg.mode));
      o.emplace_back("promote_frac", obs::Json(cfg.promote_frac));
      o.emplace_back("solve_ms", obs::Json(solve_s_sum / nq * 1e3));
      o.emplace_back("queries",
                     obs::Json(static_cast<uint64_t>(w.queries.size())));
      o.emplace_back("tier0_evals", obs::Json(tier0));
      o.emplace_back("tier1_evals", obs::Json(tier1));
      o.emplace_back(
          "survival_rate",
          obs::Json(tier0 > 0 ? static_cast<double>(tier1) /
                                    static_cast<double>(tier0)
                              : 1.0));
      benchutil::EmitJson("mf_screen", obs::Json(std::move(o)));
      if (cfg.fm != FidelityMode::kOff) {
        obs::JsonObject h;
        h.emplace_back("workload", obs::Json(w.name));
        h.emplace_back("mode", obs::Json(cfg.mode));
        h.emplace_back("promote_frac", obs::Json(cfg.promote_frac));
        h.emplace_back("hv_loss_pct", obs::Json(hv_loss_pct_sum / nq));
        h.emplace_back(
            "queries", obs::Json(static_cast<uint64_t>(w.queries.size())));
        benchutil::EmitJson("mf_hypervolume_loss", obs::Json(std::move(h)));
      }
    }
  }
}

}  // namespace
}  // namespace sparkopt

int main(int argc, char** argv) {
  // Consumes --trace-out/--profile-out/--metrics-out (and their env
  // twins) before google-benchmark sees — and would reject — them.
  sparkopt::benchutil::TraceExport trace(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  sparkopt::EmitSolveResults();
  sparkopt::EmitSolve3Results();
  sparkopt::EmitFidelitySweep();
  return 0;
}
