/// \file bench_hmooc_solver.cc
/// \brief Micro-benchmarks of the full HMOOC compile-time solve on
/// representative plan shapes (the "solving time" axis of Figure 10),
/// plus ablations over the algorithm's two budgets: theta_c candidates
/// and the theta_p sample pool (Algorithm 1's knobs).

#include <benchmark/benchmark.h>

#include "moo/hmooc.h"
#include "moo/objective_models.h"
#include "workload/tpcds.h"
#include "workload/tpch.h"

namespace sparkopt {
namespace {

void BM_HmoocSolveTpchQ3(benchmark::State& state) {
  static auto catalog = TpchCatalog(100);
  static auto q = *MakeTpchQuery(3, &catalog);
  ClusterSpec cluster;
  CostModelParams cost;
  AnalyticSubQModel model(&q, cluster, cost);
  HmoocOptions ho;
  ho.seed = 3;
  HmoocSolver solver(&model, ho);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve());
  }
}
BENCHMARK(BM_HmoocSolveTpchQ3)->Unit(benchmark::kMillisecond);

void BM_HmoocSolveTpchQ9(benchmark::State& state) {
  static auto catalog = TpchCatalog(100);
  static auto q = *MakeTpchQuery(9, &catalog);
  ClusterSpec cluster;
  CostModelParams cost;
  AnalyticSubQModel model(&q, cluster, cost);
  HmoocOptions ho;
  ho.seed = 3;
  HmoocSolver solver(&model, ho);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve());
  }
}
BENCHMARK(BM_HmoocSolveTpchQ9)->Unit(benchmark::kMillisecond);

void BM_HmoocSolveWideTpcds(benchmark::State& state) {
  // The widest TPC-DS shapes (multi-channel unions) stress the per-subQ
  // loop; find one with > 25 subQs.
  static auto catalog = TpcdsCatalog(100);
  static Query q = [] {
    for (int qid = 1; qid <= 102; ++qid) {
      auto cand = *MakeTpcdsQuery(qid, &catalog);
      if (cand.NumSubQueries() > 25) return cand;
    }
    return *MakeTpcdsQuery(1, &catalog);
  }();
  ClusterSpec cluster;
  CostModelParams cost;
  AnalyticSubQModel model(&q, cluster, cost);
  HmoocOptions ho;
  ho.seed = 3;
  HmoocSolver solver(&model, ho);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve());
  }
  state.SetLabel(std::to_string(q.NumSubQueries()) + " subQs");
}
BENCHMARK(BM_HmoocSolveWideTpcds)->Unit(benchmark::kMillisecond);

void BM_HmoocBudgetSweep(benchmark::State& state) {
  static auto catalog = TpchCatalog(100);
  static auto q = *MakeTpchQuery(9, &catalog);
  ClusterSpec cluster;
  CostModelParams cost;
  AnalyticSubQModel model(&q, cluster, cost);
  HmoocOptions ho;
  ho.seed = 3;
  ho.theta_c_samples = state.range(0);
  ho.clusters = std::max<int>(2, state.range(0) / 6);
  ho.theta_p_samples = state.range(1);
  HmoocSolver solver(&model, ho);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve());
  }
}
BENCHMARK(BM_HmoocBudgetSweep)
    ->Args({16, 32})
    ->Args({32, 64})
    ->Args({64, 96})
    ->Args({128, 192})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sparkopt

BENCHMARK_MAIN();
