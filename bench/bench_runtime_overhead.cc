/// \file bench_runtime_overhead.cc
/// \brief Reproduces the request-pruning result of Section 5.2 /
/// Appendix C.2.2: the rules that bypass non-actionable collapsed-plan
/// requests and skip scan/small query stages cut the total number of
/// runtime optimization calls by 86% (TPC-H) and 92% (TPC-DS), plus the
/// per-query optimizer-call overhead with and without pruning.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "moo/hmooc.h"
#include "moo/objective_models.h"
#include "tuner/tuner.h"
#include "workload/tpcds.h"
#include "workload/tpch.h"

using namespace sparkopt;
using namespace sparkopt::benchutil;

namespace {

void RunBenchmarkSet(const char* name, const std::vector<Query>& queries) {
  TunerOptions with;
  with.preference = {0.9, 0.1};
  TunerOptions without = with;
  without.runtime.enable_pruning = false;
  Tuner pruned(with), unpruned(without);

  long sent_with = 0, potential = 0;
  std::vector<double> overhead_with, overhead_without;
  for (const auto& q : queries) {
    auto a = pruned.Run(q, TuningMethod::kHmooc3Plus);
    auto b = unpruned.Run(q, TuningMethod::kHmooc3Plus);
    if (!a.ok() || !b.ok()) continue;
    sent_with += a->runtime_stats.TotalSent();
    // Without pruning every candidate request is sent: the total call
    // count the rules would otherwise face.
    potential += b->runtime_stats.TotalSent() +
                 b->runtime_stats.TotalPruned();
    overhead_with.push_back(a->runtime_overhead_seconds);
    overhead_without.push_back(b->runtime_overhead_seconds);
  }
  std::printf("%s:\n", name);
  Table t({"metric", "with pruning", "without pruning"});
  t.AddRow({"optimizer calls", std::to_string(sent_with),
            std::to_string(potential)});
  t.AddRow({"avg overhead/query (s)", Fmt("%.3f", Mean(overhead_with)),
            Fmt("%.3f", Mean(overhead_without))});
  t.Print();
  const double eliminated =
      1.0 - static_cast<double>(sent_with) / potential;
  std::printf("calls eliminated: %.1f%%\n\n", 100.0 * eliminated);

  obs::Json record{obs::JsonObject{}};
  record.Set("benchmark", name);
  record.Set("queries", queries.size());
  record.Set("calls_with_pruning", static_cast<int64_t>(sent_with));
  record.Set("calls_without_pruning", static_cast<int64_t>(potential));
  record.Set("calls_eliminated_frac", eliminated);
  record.Set("avg_overhead_with_s", Mean(overhead_with));
  record.Set("avg_overhead_without_s", Mean(overhead_without));
  EmitJson("runtime_overhead", record);
}

// ---- Observability overhead + phase-profile coverage (DESIGN.md §12) ----
//
// Two claims the profiler subsystem must keep honest:
//  1. With no obs::Session installed, every instrumentation site costs one
//     relaxed atomic load — estimated total overhead on a TPC-H Q9 solve
//     must stay <= 1% of the solve's wall-clock.
//  2. With a session installed, the phase profile's exclusive times must
//     telescope back to >= 95% of the externally timed wall-clock, i.e.
//     the span tree actually covers the solve path.
void RunObsOverhead() {
  auto catalog = TpchCatalog(100.0);
  auto q = *MakeTpchQuery(9, &catalog);
  ClusterSpec cluster;
  CostModelParams cost;
  auto solve_once = [&]() {
    AnalyticSubQModel model(&q, cluster, cost);
    HmoocOptions ho;
    ho.seed = 3;
    ho.num_threads = 1;
    HmoocSolver solver(&model, ho);
    Timer t;
    const auto r = solver.Solve();
    (void)r;
    return t.Seconds();
  };

  // Dormant per-site cost: time a tight loop over an instrumentation
  // helper with no session installed, against an identical loop without
  // the helper. The volatile sink keeps both loops alive; the delta is
  // the one-relaxed-load fast path. Skipped when the harness itself was
  // launched with --trace-out etc. — an installed outer session would
  // make the loop measure the *active* path instead.
  const bool outer_session = obs::Session::Current() != nullptr;
  double dormant_ns = 0.0;
  if (!outer_session) {
    constexpr uint64_t kCalls = 1 << 24;
    volatile uint64_t sink = 0;
    Timer empty_timer;
    for (uint64_t i = 0; i < kCalls; ++i) sink = i;
    const double empty_s = empty_timer.Seconds();
    Timer obs_timer;
    for (uint64_t i = 0; i < kCalls; ++i) {
      obs::Observe("bench.selfcost", static_cast<double>(i));
      sink = i;
    }
    const double obs_s = obs_timer.Seconds();
    const uint64_t last = sink;  // keep the volatile observable
    (void)last;
    dormant_ns = std::max(0.0, (obs_s - empty_s) / kCalls * 1e9);
  }

  const int reps = FastMode() ? 1 : 3;
  solve_once();  // warm up catalog-independent state / allocator
  double baseline_s = 1e300;
  for (int i = 0; i < reps; ++i) baseline_s = std::min(baseline_s, solve_once());

  // Traced run: count how many times instrumentation actually fired (span
  // events + histogram samples) to scale the dormant per-site cost into a
  // whole-solve overhead estimate, and fold the span stream into a phase
  // profile to check coverage against the external wall clock.
  double traced_s = 0.0;
  double profile_total_us = 0.0;
  uint64_t instrument_hits = 0;
  size_t span_events = 0;
  std::string profile_text;
  {
    obs::Session session;
    traced_s = solve_once();
    const auto profile = obs::PhaseProfile::FromTrace(session.trace());
    profile_total_us = profile.total_us();
    profile_text = profile.ToText();
    span_events = session.trace().size();
    instrument_hits = span_events;
    for (const auto& [name, hist] : session.metrics().HistogramEntries()) {
      (void)name;
      instrument_hits += hist->count();
    }
    for (const auto& [name, value] : session.metrics().CounterEntries()) {
      (void)name;
      (void)value;
      ++instrument_hits;  // lower bound: >= 1 Count() call per counter
    }
  }
  const double est_overhead_frac =
      instrument_hits * dormant_ns * 1e-9 / baseline_s;
  const double coverage_frac = profile_total_us / (traced_s * 1e6);

  std::printf("==== Observability: dormant overhead & profile coverage ====\n\n");
  if (outer_session) {
    std::printf("dormant fast path: skipped (outer session installed)\n");
  } else {
    std::printf("dormant fast path: %.2f ns/site (%llu sites hit/solve)\n",
                dormant_ns, static_cast<unsigned long long>(instrument_hits));
  }
  std::printf("solve: %.2f ms untraced, %.2f ms traced\n", baseline_s * 1e3,
              traced_s * 1e3);
  std::printf("estimated no-session overhead: %.3f%% of solve\n",
              100.0 * est_overhead_frac);
  std::printf("phase-profile coverage: %.1f%% of traced wall-clock\n\n",
              100.0 * coverage_frac);
  std::printf("%s\n", profile_text.c_str());

  obs::Json overhead{obs::JsonObject{}};
  overhead.Set("query", "tpch_q9");
  overhead.Set("baseline_solve_ms", baseline_s * 1e3);
  overhead.Set("traced_solve_ms", traced_s * 1e3);
  overhead.Set("dormant_measured", !outer_session);
  overhead.Set("dormant_ns_per_site", dormant_ns);
  overhead.Set("instrument_hits", instrument_hits);
  overhead.Set("est_dormant_overhead_frac", est_overhead_frac);
  EmitJson("obs_overhead", overhead);

  obs::Json prof{obs::JsonObject{}};
  prof.Set("query", "tpch_q9");
  prof.Set("wall_ms", traced_s * 1e3);
  prof.Set("profile_total_ms", profile_total_us / 1e3);
  prof.Set("exclusive_coverage_frac", coverage_frac);
  prof.Set("span_events", static_cast<uint64_t>(span_events));
  EmitJson("phase_profile", prof);
}

}  // namespace

int main(int argc, char** argv) {
  TraceExport trace(&argc, argv);
  std::printf(
      "==== Section 5.2: runtime optimization request pruning ====\n\n");
  const auto tpch = TpchCatalog(100.0);
  RunBenchmarkSet("TPC-H", TpchBenchmark(&tpch));
  const auto tpcds = TpcdsCatalog(100.0);
  auto ds = TpcdsBenchmark(&tpcds);
  ds.resize(FastMode() ? 10 : 40);
  RunBenchmarkSet("TPC-DS (subset)", ds);
  RunObsOverhead();
  return 0;
}
