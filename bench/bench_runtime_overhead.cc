/// \file bench_runtime_overhead.cc
/// \brief Reproduces the request-pruning result of Section 5.2 /
/// Appendix C.2.2: the rules that bypass non-actionable collapsed-plan
/// requests and skip scan/small query stages cut the total number of
/// runtime optimization calls by 86% (TPC-H) and 92% (TPC-DS), plus the
/// per-query optimizer-call overhead with and without pruning.

#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "tuner/tuner.h"
#include "workload/tpcds.h"
#include "workload/tpch.h"

using namespace sparkopt;
using namespace sparkopt::benchutil;

namespace {

void RunBenchmarkSet(const char* name, const std::vector<Query>& queries) {
  TunerOptions with;
  with.preference = {0.9, 0.1};
  TunerOptions without = with;
  without.runtime.enable_pruning = false;
  Tuner pruned(with), unpruned(without);

  long sent_with = 0, potential = 0;
  std::vector<double> overhead_with, overhead_without;
  for (const auto& q : queries) {
    auto a = pruned.Run(q, TuningMethod::kHmooc3Plus);
    auto b = unpruned.Run(q, TuningMethod::kHmooc3Plus);
    if (!a.ok() || !b.ok()) continue;
    sent_with += a->runtime_stats.TotalSent();
    // Without pruning every candidate request is sent: the total call
    // count the rules would otherwise face.
    potential += b->runtime_stats.TotalSent() +
                 b->runtime_stats.TotalPruned();
    overhead_with.push_back(a->runtime_overhead_seconds);
    overhead_without.push_back(b->runtime_overhead_seconds);
  }
  std::printf("%s:\n", name);
  Table t({"metric", "with pruning", "without pruning"});
  t.AddRow({"optimizer calls", std::to_string(sent_with),
            std::to_string(potential)});
  t.AddRow({"avg overhead/query (s)", Fmt("%.3f", Mean(overhead_with)),
            Fmt("%.3f", Mean(overhead_without))});
  t.Print();
  const double eliminated =
      1.0 - static_cast<double>(sent_with) / potential;
  std::printf("calls eliminated: %.1f%%\n\n", 100.0 * eliminated);

  obs::Json record{obs::JsonObject{}};
  record.Set("benchmark", name);
  record.Set("queries", queries.size());
  record.Set("calls_with_pruning", static_cast<int64_t>(sent_with));
  record.Set("calls_without_pruning", static_cast<int64_t>(potential));
  record.Set("calls_eliminated_frac", eliminated);
  record.Set("avg_overhead_with_s", Mean(overhead_with));
  record.Set("avg_overhead_without_s", Mean(overhead_without));
  EmitJson("runtime_overhead", record);
}

}  // namespace

int main(int argc, char** argv) {
  TraceExport trace(argc, argv);
  std::printf(
      "==== Section 5.2: runtime optimization request pruning ====\n\n");
  const auto tpch = TpchCatalog(100.0);
  RunBenchmarkSet("TPC-H", TpchBenchmark(&tpch));
  const auto tpcds = TpcdsCatalog(100.0);
  auto ds = TpcdsBenchmark(&tpcds);
  ds.resize(FastMode() ? 10 : 40);
  RunBenchmarkSet("TPC-DS (subset)", ds);
  return 0;
}
