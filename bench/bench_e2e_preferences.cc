/// \file bench_e2e_preferences.cc
/// \brief Reproduces Table 5 (Expt 10): adaptability to shifting
/// latency/cost preferences. For each preference vector from (0,1) to
/// (1,0), reports the average latency and cost change vs the default
/// configuration for SO-FW (single objective, fixed weights — the common
/// practical approach) and HMOOC3+.
///
/// Paper reference: HMOOC3+ dominates SO-FW, with latency reductions
/// growing monotonically as the preference shifts toward speed (up to
/// 52-58%) while still saving cost at cost-leaning preferences; SO-FW
/// often *increases* cost and barely reacts to the preference.

#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "tuner/tuner.h"
#include "workload/tpcds.h"
#include "workload/tpch.h"

using namespace sparkopt;
using namespace sparkopt::benchutil;

namespace {

struct Deltas {
  std::vector<double> lat;  // latency change vs default (negative = faster)
  std::vector<double> cost;
};

void RunBenchmarkSet(const char* name, const std::vector<Query>& queries) {
  const double prefs[][2] = {
      {0.0, 1.0}, {0.1, 0.9}, {0.5, 0.5}, {0.9, 0.1}, {1.0, 0.0}};

  // Defaults once.
  Tuner probe{TunerOptions{}};
  std::vector<double> def_lat, def_cost;
  for (const auto& q : queries) {
    auto out = *probe.Run(q, TuningMethod::kDefault);
    def_lat.push_back(out.execution.exec.latency);
    def_cost.push_back(out.execution.exec.cost);
  }

  std::printf("%s (%zu queries):\n", name, queries.size());
  Table t({"prefs (lat, cost)", "SO-FW lat", "SO-FW cost", "HMOOC3+ lat",
           "HMOOC3+ cost"});
  for (const auto& p : prefs) {
    TunerOptions options;
    options.preference = {p[0], p[1]};
    Tuner tuner(options);
    Deltas sofw, ours;
    for (size_t i = 0; i < queries.size(); ++i) {
      auto s = tuner.Run(queries[i], TuningMethod::kSoFixedWeights);
      auto h = tuner.Run(queries[i], TuningMethod::kHmooc3Plus);
      if (!s.ok() || !h.ok()) continue;
      sofw.lat.push_back(s->execution.exec.latency / def_lat[i] - 1.0);
      sofw.cost.push_back(s->execution.exec.cost / def_cost[i] - 1.0);
      ours.lat.push_back(h->execution.exec.latency / def_lat[i] - 1.0);
      ours.cost.push_back(h->execution.exec.cost / def_cost[i] - 1.0);
    }
    t.AddRow({Fmt("(%.1f, ", p[0]) + Fmt("%.1f)", p[1]),
              Pct(Mean(sofw.lat)), Pct(Mean(sofw.cost)),
              Pct(Mean(ours.lat)), Pct(Mean(ours.cost))});
  }
  t.Print();
  std::printf(
      "(negative = reduction vs the default configuration; the paper's "
      "Table 5 convention)\n\n");
}

}  // namespace

int main() {
  std::printf(
      "==== Table 5: latency and cost adapting to preferences ====\n\n");
  const auto tpch = TpchCatalog(100.0);
  auto h = TpchBenchmark(&tpch);
  if (FastMode()) h.resize(8);
  RunBenchmarkSet("TPC-H", h);
  const auto tpcds = TpcdsCatalog(100.0);
  auto ds = TpcdsBenchmark(&tpcds);
  ds.resize(FastMode() ? 8 : 20);
  RunBenchmarkSet("TPC-DS (subset)", ds);
  return 0;
}
