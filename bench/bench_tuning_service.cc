/// \file bench_tuning_service.cc
/// \brief Tuning-as-a-service throughput and tail latency (DESIGN.md
/// section 15): a seeded Poisson open-loop load generator drives a
/// TPC-H/TPC-DS query mix through the TuningService in two configs —
/// "naive" (per-session solves: inference batching disabled, shared
/// cross-query eval cache off) and "batched+shared" (both on) — on both
/// the analytic and the learned objective-model axis.
///
/// Phase 1 (capacity): an overload-rate Poisson schedule with an
/// unbounded-enough queue measures each config's sustained requests/sec.
/// Phase 2 (tail latency): both configs are re-run at one common offered
/// load (a fraction of the *naive* capacity, so both are stable) and
/// p50/p99 solve and sojourn latency are read from the service's own
/// histograms. Because the service is deterministic by construction, the
/// two configs must produce bitwise-identical Pareto fronts — the
/// "fronts_identical" field is the proof that the speedup is measured at
/// exactly equal solution quality (equal hypervolume by identity).

#include <chrono>
#include <cstdio>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "service/load_gen.h"
#include "service/model_bootstrap.h"
#include "service/tuning_service.h"
#include "workload/tpcds.h"
#include "workload/tpch.h"

using namespace sparkopt;
using namespace sparkopt::benchutil;

namespace {

std::shared_ptr<ServiceArtifacts> MakeArtifacts(bool learned) {
  auto a = std::make_shared<ServiceArtifacts>();
  a->name = learned ? "learned" : "analytic";
  // Service-sized solver budget: parallelism comes from concurrent
  // sessions, so each solve runs single-threaded.
  a->hmooc.theta_c_samples = 24;
  a->hmooc.clusters = 6;
  a->hmooc.theta_p_samples = 32;
  a->hmooc.enriched_samples = 8;
  a->hmooc.num_threads = 1;

  const auto* tpch = a->AddCatalog(TpchCatalog(10));
  const auto* tpcds = a->AddCatalog(TpcdsCatalog(10));
  std::vector<const Query*> queries;
  for (int qid : {3, 5, 9}) {
    auto q = MakeTpchQuery(qid, tpch);
    if (q.ok() && a->AddQuery(*q).ok()) queries.push_back(a->FindQuery(q->name));
  }
  for (int qid : {3, 18, 27}) {
    auto q = MakeTpcdsQuery(qid, tpcds);
    if (q.ok() && a->AddQuery(*q).ok()) queries.push_back(a->FindQuery(q->name));
  }
  if (learned) {
    BootstrapOptions bo;
    bo.samples_per_query = FastMode() ? 8 : 16;
    bo.hidden = {24, 12};
    bo.epochs = FastMode() ? 12 : 30;
    auto reg = FitSubQRegressor(queries, a->cluster, a->cost_params,
                                a->prices, bo);
    if (reg.ok()) {
      a->subq_model = *reg;
    } else {
      std::fprintf(stderr, "bootstrap failed: %s\n",
                   reg.status().ToString().c_str());
    }
  }
  return a;
}

struct RunStats {
  double sustained_rps = 0.0;
  double achieved_rps = 0.0;
  uint64_t completed = 0;
  uint64_t rejected = 0;
  double p50_solve_ms = 0.0, p99_solve_ms = 0.0;
  double p50_sojourn_ms = 0.0, p99_sojourn_ms = 0.0;
  /// query name -> front of the first completed request for it.
  std::map<std::string, std::vector<ObjectiveVector>> fronts;
};

/// Submits `n` requests round-robin over the artifact's query mix at the
/// pre-drawn Poisson arrival times, waits for every future, and reports
/// sustained throughput plus the service-histogram latency percentiles.
RunStats RunOpenLoop(ArtifactRegistry* registry, bool batched_shared,
                     int sessions, double offered_rps, size_t n,
                     size_t queue_capacity, uint64_t seed) {
  TuningServiceOptions opts;
  opts.sessions = sessions;
  opts.queue_capacity = queue_capacity;
  opts.batcher.enabled = batched_shared;
  opts.shared_cache_enabled = batched_shared;
  TuningService service(registry, opts);

  std::vector<std::string> mix;
  for (const auto& [name, q] : registry->Current()->queries()) {
    (void)q;
    mix.push_back(name);
  }

  const auto schedule = PoissonArrivalSchedule(offered_rps, n, seed);
  std::vector<std::future<Result<TuningServiceResult>>> futures;
  futures.reserve(n);
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < n; ++i) {
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(schedule[i])));
    futures.push_back(service.Submit({mix[i % mix.size()]}));
  }

  RunStats out;
  for (size_t i = 0; i < n; ++i) {
    auto res = futures[i].get();
    if (!res.ok()) {
      ++out.rejected;
      continue;
    }
    ++out.completed;
    auto& front = out.fronts[res->query_name];
    if (front.empty()) front = FrontOf(res->moo);
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  out.sustained_rps = out.completed / elapsed;
  out.achieved_rps = out.sustained_rps;
  out.p50_solve_ms = service.solve_latency_us().Percentile(0.50) / 1e3;
  out.p99_solve_ms = service.solve_latency_us().Percentile(0.99) / 1e3;
  out.p50_sojourn_ms = service.sojourn_us().Percentile(0.50) / 1e3;
  out.p99_sojourn_ms = service.sojourn_us().Percentile(0.99) / 1e3;
  return out;
}

/// Exact per-query front identity between two runs: the determinism
/// contract says the cache and the batcher must not move a single bit.
bool FrontsIdentical(const RunStats& a, const RunStats& b) {
  if (a.fronts.size() != b.fronts.size()) return false;
  for (const auto& [name, front] : a.fronts) {
    auto it = b.fronts.find(name);
    if (it == b.fronts.end() || it->second != front) return false;
  }
  return true;
}

/// Mean normalized hypervolume over the query mix, bounds shared between
/// both configs so the numbers are directly comparable.
double AvgHypervolume(const RunStats& s,
                      const std::map<std::string, ObjectiveVector>& lo,
                      const std::map<std::string, ObjectiveVector>& hi) {
  if (s.fronts.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [name, front] : s.fronts) {
    sum += NormalizedHypervolume(front, lo.at(name), hi.at(name));
  }
  return sum / static_cast<double>(s.fronts.size());
}

void RunAxis(const char* model, bool learned) {
  auto artifacts = MakeArtifacts(learned);
  ArtifactRegistry registry;
  registry.Publish(artifacts);

  const int sessions = 4;
  const size_t n_capacity = FastMode() ? 72 : 240;
  const size_t n_latency = FastMode() ? 48 : 160;
  // Overload rate: far beyond any plausible capacity, so phase 1
  // measures the service, not the generator.
  const double overload_rps = 50000.0;

  std::printf("==== model=%s: capacity under overload ====\n", model);
  auto naive = RunOpenLoop(&registry, /*batched_shared=*/false, sessions,
                           overload_rps, n_capacity,
                           /*queue_capacity=*/n_capacity, /*seed=*/101);
  auto full = RunOpenLoop(&registry, /*batched_shared=*/true, sessions,
                          overload_rps, n_capacity,
                          /*queue_capacity=*/n_capacity, /*seed=*/101);

  Table cap({"config", "sustained rps", "completed", "p99 solve (ms)"});
  cap.AddRow({"naive", Fmt("%.1f", naive.sustained_rps),
              Fmt("%.0f", static_cast<double>(naive.completed)),
              Fmt("%.2f", naive.p99_solve_ms)});
  cap.AddRow({"batched+shared", Fmt("%.1f", full.sustained_rps),
              Fmt("%.0f", static_cast<double>(full.completed)),
              Fmt("%.2f", full.p99_solve_ms)});
  cap.Print();

  // Quality proof: both configs must produce identical fronts; compute
  // HV against shared bounds anyway so the record carries the numbers.
  std::map<std::string, ObjectiveVector> lo, hi;
  for (const auto& stats : {&naive, &full}) {
    for (const auto& [name, front] : stats->fronts) {
      if (front.empty()) continue;
      if (lo.find(name) == lo.end()) {
        lo[name] = front[0];
        hi[name] = front[0];
      }
      ExtendBounds(front, &lo[name], &hi[name]);
    }
  }
  const bool identical = FrontsIdentical(naive, full);
  const double hv_naive = AvgHypervolume(naive, lo, hi);
  const double hv_full = AvgHypervolume(full, lo, hi);
  const double speedup = naive.sustained_rps > 0
                             ? full.sustained_rps / naive.sustained_rps
                             : 0.0;
  std::printf("speedup %.2fx at %s fronts (avg HV %.4f vs %.4f)\n\n", speedup,
              identical ? "identical" : "DIVERGENT", hv_full, hv_naive);

  // Phase 2: tail latency at one common, sustainable offered load.
  const double common_rps = 0.5 * naive.sustained_rps;
  std::printf("==== model=%s: latency at common offered load (%.1f rps) "
              "====\n", model, common_rps);
  auto naive_lat = RunOpenLoop(&registry, /*batched_shared=*/false, sessions,
                               common_rps, n_latency,
                               /*queue_capacity=*/256, /*seed=*/202);
  auto full_lat = RunOpenLoop(&registry, /*batched_shared=*/true, sessions,
                              common_rps, n_latency,
                              /*queue_capacity=*/256, /*seed=*/202);
  struct Row {
    const char* config;
    const RunStats* cap;
    const RunStats* lat;
  };
  const std::vector<Row> rows = {{"naive", &naive, &naive_lat},
                                 {"batched+shared", &full, &full_lat}};

  Table lat({"config", "p50 solve (ms)", "p99 solve (ms)",
             "p50 sojourn (ms)", "p99 sojourn (ms)"});
  for (const Row& r : rows) {
    lat.AddRow({r.config, Fmt("%.2f", r.lat->p50_solve_ms),
                Fmt("%.2f", r.lat->p99_solve_ms),
                Fmt("%.2f", r.lat->p50_sojourn_ms),
                Fmt("%.2f", r.lat->p99_sojourn_ms)});
  }
  lat.Print();
  std::printf("\n");

  for (const Row& r : rows) {
    obs::Json tp{obs::JsonObject{}};
    tp.Set("config", r.config);
    tp.Set("model", model);
    tp.Set("sustained_rps", r.cap->sustained_rps);
    tp.Set("completed", static_cast<uint64_t>(r.cap->completed));
    tp.Set("sessions", static_cast<uint64_t>(sessions));
    tp.Set("queries", static_cast<uint64_t>(r.cap->fronts.size()));
    EmitJson("tuning_service_throughput", tp);

    obs::Json lt{obs::JsonObject{}};
    lt.Set("config", r.config);
    lt.Set("model", model);
    lt.Set("p50_solve_ms", r.lat->p50_solve_ms);
    lt.Set("p99_solve_ms", r.lat->p99_solve_ms);
    lt.Set("p50_sojourn_ms", r.lat->p50_sojourn_ms);
    lt.Set("p99_sojourn_ms", r.lat->p99_sojourn_ms);
    lt.Set("offered_rps", common_rps);
    lt.Set("achieved_rps", r.lat->achieved_rps);
    EmitJson("tuning_service_latency", lt);
  }

  obs::Json sp{obs::JsonObject{}};
  sp.Set("model", model);
  sp.Set("speedup", speedup);
  sp.Set("fronts_identical", identical ? 1.0 : 0.0);
  sp.Set("avg_hv_naive", hv_naive);
  sp.Set("avg_hv_full", hv_full);
  EmitJson("tuning_service_speedup", sp);
}

}  // namespace

int main(int argc, char** argv) {
  TraceExport trace(&argc, argv);
  RunAxis("analytic", /*learned=*/false);
  RunAxis("learned", /*learned=*/true);
  return 0;
}
