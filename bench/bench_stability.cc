/// \file bench_stability.cc
/// \brief Reproduces the Appendix D.2 observations (Figures 16/17):
/// with AQE enabled, query stages are created synchronously and the
/// stage-interleaving pattern — hence query latency — is stable across
/// repeated runs; with AQE disabled the whole stage DAG is scheduled
/// asynchronously and random interleavings make latency fluctuate
/// (the paper observed a 46% latency swing on TPCH-Q3).

#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "common/rng.h"
#include "exec/aqe.h"
#include "workload/tpch.h"

using namespace sparkopt;
using namespace sparkopt::benchutil;

int main() {
  std::printf(
      "==== Figure 16: AQE on/off stage-interleaving stability (TPCH-Q3) "
      "====\n\n");
  const auto catalog = TpchCatalog(100.0);
  auto q3 = *MakeTpchQuery(3, &catalog);
  ClusterSpec cluster;
  CostModelParams cost;
  Simulator sim(cluster, cost);
  AqeDriver driver(&q3.plan, &sim);
  const auto conf = DefaultSparkConfig();
  const ContextParams tc = DecodeContext(conf);
  const PlanParams tp = DecodePlan(conf);
  const StageParams ts = DecodeStage(conf);

  const int kRuns = FastMode() ? 5 : 15;
  std::vector<double> aqe_on, aqe_off;
  for (int r = 0; r < kRuns; ++r) {
    auto on = driver.Run(tc, {tp}, {ts}, nullptr, /*seed=*/100 + r, true);
    auto off = driver.Run(tc, {tp}, {ts}, nullptr, /*seed=*/100 + r, false);
    if (on.ok()) aqe_on.push_back(on->exec.latency);
    if (off.ok()) aqe_off.push_back(off->exec.latency);
  }

  Table t({"mode", "runs", "mean (s)", "min (s)", "max (s)",
           "max/min swing"});
  auto add = [&](const char* mode, const std::vector<double>& v) {
    t.AddRow({mode, std::to_string(v.size()), Fmt("%.2f", Mean(v)),
              Fmt("%.2f", Percentile(v, 0)), Fmt("%.2f", Percentile(v, 100)),
              Pct(Percentile(v, 100) / Percentile(v, 0) - 1.0)});
  };
  add("AQE on (synchronous stages)", aqe_on);
  add("AQE off (async DAG scheduling)", aqe_off);
  t.Print();

  std::printf(
      "\n==== Figure 17: spark.locality.wait effect on stage latency "
      "====\n\n");
  // Locality waiting is modeled as an additive, randomly drawn per-task
  // delay before execution (0-2x the configured wait, depending on
  // whether a data-local slot frees up in time).
  Table t2({"locality wait (s)", "mean latency (s)", "min (s)", "max (s)"});
  for (double wait : {0.0, 3.0}) {
    std::vector<double> lats;
    for (int r = 0; r < kRuns; ++r) {
      CostModelParams waiting = cost;
      // The expected extra per-task delay: locality misses on roughly a
      // third of task launches, each waiting ~wait seconds.
      Rng rng(500 + r);
      waiting.task_overhead_s =
          cost.task_overhead_s + wait * rng.Uniform(0.0, 0.66);
      Simulator wsim(cluster, waiting);
      AqeDriver wdriver(&q3.plan, &wsim);
      auto run = wdriver.Run(tc, {tp}, {ts}, nullptr, 100 + r, true);
      if (run.ok()) lats.push_back(run->exec.latency);
    }
    t2.AddRow({Fmt("%.0f", wait), Fmt("%.2f", Mean(lats)),
               Fmt("%.2f", Percentile(lats, 0)),
               Fmt("%.2f", Percentile(lats, 100))});
  }
  t2.Print();
  std::printf(
      "\n(locality waiting inflates and destabilizes latency; the paper "
      "pins spark.locality.wait=0s)\n");
  return 0;
}
