/// \file bench_dag_aggregation.cc
/// \brief Reproduces Figure 10(a,b): the three DAG-aggregation methods —
/// HMOOC1 (exact divide-and-conquer), HMOOC2 (WS approximation), HMOOC3
/// (boundary approximation) — compared on hypervolume and solving time
/// over TPC-H and TPC-DS. The paper finds near-identical hypervolume with
/// HMOOC3 the fastest (0.32-1.72 s).

#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "moo/hmooc.h"
#include "moo/objective_models.h"
#include "workload/tpcds.h"
#include "workload/tpch.h"

using namespace sparkopt;
using namespace sparkopt::benchutil;

namespace {

void RunBenchmarkSet(const char* name, const std::vector<Query>& queries) {
  ClusterSpec cluster;
  CostModelParams cost;
  const DagAggregation kMethods[] = {DagAggregation::kDivideAndConquer,
                                     DagAggregation::kWeightedSum,
                                     DagAggregation::kBoundary};
  std::vector<double> hv_sum(3, 0.0);
  std::vector<std::vector<double>> times(3);
  int evaluated = 0;

  for (const auto& q : queries) {
    AnalyticSubQModel model(&q, cluster, cost);
    // Shared bounds for a common-reference hypervolume.
    std::vector<MooRunResult> results;
    ObjectiveVector lo = {1e300, 1e300}, hi = {-1e300, -1e300};
    for (auto agg : kMethods) {
      HmoocOptions ho;
      ho.aggregation = agg;
      ho.seed = 13;
      if (FastMode()) {
        ho.theta_c_samples = 24;
        ho.clusters = 6;
        ho.theta_p_samples = 48;
        ho.enriched_samples = 8;
      }
      results.push_back(HmoocSolver(&model, ho).Solve());
      ExtendBounds(FrontOf(results.back()), &lo, &hi);
    }
    if (hi[0] <= lo[0] || hi[1] <= lo[1]) continue;
    // Pad the reference point by 10%.
    ObjectiveVector ref = {hi[0] + 0.1 * (hi[0] - lo[0]),
                           hi[1] + 0.1 * (hi[1] - lo[1])};
    for (int i = 0; i < 3; ++i) {
      hv_sum[i] += NormalizedHypervolume(FrontOf(results[i]), lo, ref);
      times[i].push_back(results[i].solve_seconds);
    }
    ++evaluated;
  }

  std::printf("%s (%d queries):\n", name, evaluated);
  Table t({"method", "avg HV", "avg time (s)", "max time (s)"});
  const char* names[] = {"HMOOC1 (divide&conquer)", "HMOOC2 (WS approx)",
                         "HMOOC3 (boundary)"};
  const char* short_names[] = {"HMOOC1", "HMOOC2", "HMOOC3"};
  for (int i = 0; i < 3; ++i) {
    t.AddRow({names[i], Fmt("%.4f", hv_sum[i] / evaluated),
              Fmt("%.3f", Mean(times[i])),
              Fmt("%.3f", Percentile(times[i], 100))});
    obs::JsonObject o;
    o.emplace_back("workload", obs::Json(name));
    o.emplace_back("method", obs::Json(short_names[i]));
    o.emplace_back("queries", obs::Json(evaluated));
    o.emplace_back("avg_hv", obs::Json(hv_sum[i] / evaluated));
    o.emplace_back("mean_s", obs::Json(Mean(times[i])));
    o.emplace_back("max_s", obs::Json(Percentile(times[i], 100)));
    EmitJson("dag_aggregation", obs::Json(std::move(o)));
  }
  t.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "==== Figure 10(a,b): DAG aggregation methods (HV & solving time) "
      "====\n\n");
  const auto tpch = TpchCatalog(100.0);
  RunBenchmarkSet("TPC-H", TpchBenchmark(&tpch));
  const auto tpcds = TpcdsCatalog(100.0);
  auto ds = TpcdsBenchmark(&tpcds);
  if (FastMode()) {
    ds.resize(12);
  } else {
    ds.resize(24);  // HMOOC1 on the widest plans is expensive by design
  }
  RunBenchmarkSet("TPC-DS (subset)", ds);
  return 0;
}
