/// \file bench_e2e_speed.cc
/// \brief Reproduces Table 4, Figure 10(g), and Figure 19: end-to-end
/// latency reduction under a strong speed preference (0.9, 0.1) against
/// the Spark-default configuration, for MO-WS (the strongest prior
/// query-level MOO), HMOOC3 (compile-time only) and HMOOC3+ (with runtime
/// optimization).
///
/// Paper reference (Table 4): HMOOC3/HMOOC3+ cut total latency by 59-64%
/// with 0.47-0.83 s average solving time and 100% coverage within 2 s;
/// MO-WS reaches only 18-25% with 2.6-15 s solving time. Figure 10(g):
/// runtime optimization adds up to ~22% extra reduction on long-running
/// queries. Figure 19: the per-query latency breakdown.

#include <algorithm>
#include <cstdio>
#include <functional>

#include "bench_util.h"
#include "common/stats.h"
#include "tuner/tuner.h"
#include "workload/tpcds.h"
#include "workload/tpch.h"

using namespace sparkopt;
using namespace sparkopt::benchutil;

namespace {

struct MethodStats {
  double total_default = 0.0;
  double total = 0.0;
  std::vector<double> reductions;   // per query, vs default
  std::vector<double> solve_times;
  int within_1s = 0, within_2s = 0;
  int n = 0;
};

void Accumulate(MethodStats* s, double def_lat, double lat,
                double solve_time) {
  s->total_default += def_lat;
  s->total += lat;
  s->reductions.push_back(1.0 - lat / def_lat);
  s->solve_times.push_back(solve_time);
  if (solve_time <= 1.0) ++s->within_1s;
  if (solve_time <= 2.0) ++s->within_2s;
  ++s->n;
}

void RunBenchmarkSet(const char* name, const std::vector<Query>& queries,
                     bool per_query_table) {
  TunerOptions options;
  options.preference = {0.9, 0.1};
  Tuner tuner(options);

  MethodStats mo_ws, h3, h3p;
  std::vector<std::pair<double, double>> long_running;  // (default, extra)
  Table per_query({"query", "default (s)", "MO-WS (s)", "HMOOC3 (s)",
                   "HMOOC3+ (s)", "HMOOC3+ red."});

  for (const auto& q : queries) {
    auto def = tuner.Run(q, TuningMethod::kDefault);
    auto ws = tuner.Run(q, TuningMethod::kMoWs);
    auto a = tuner.Run(q, TuningMethod::kHmooc3);
    auto b = tuner.Run(q, TuningMethod::kHmooc3Plus);
    if (!def.ok() || !ws.ok() || !a.ok() || !b.ok()) continue;
    const double d = def->execution.exec.latency;
    Accumulate(&mo_ws, d, ws->execution.exec.latency, ws->solve_seconds);
    Accumulate(&h3, d, a->execution.exec.latency, a->solve_seconds);
    Accumulate(&h3p, d, b->execution.exec.latency, b->solve_seconds);
    long_running.push_back(
        {d, (a->execution.exec.latency - b->execution.exec.latency) / d});
    per_query.AddRow(
        {q.name, Fmt("%.2f", d), Fmt("%.2f", ws->execution.exec.latency),
         Fmt("%.2f", a->execution.exec.latency),
         Fmt("%.2f", b->execution.exec.latency),
         Pct(1.0 - b->execution.exec.latency / d)});
  }

  std::printf("%s (%d queries):\n\n", name, h3.n);
  Table t({"metric", "MO-WS", "HMOOC3", "HMOOC3+"});
  auto row = [&](const char* metric,
                 const std::function<std::string(const MethodStats&)>& f) {
    t.AddRow({metric, f(mo_ws), f(h3), f(h3p)});
  };
  row("coverage (1s)", [](const MethodStats& s) {
    return Pct(static_cast<double>(s.within_1s) / s.n);
  });
  row("coverage (2s)", [](const MethodStats& s) {
    return Pct(static_cast<double>(s.within_2s) / s.n);
  });
  row("total lat reduction", [](const MethodStats& s) {
    return Pct(1.0 - s.total / s.total_default);
  });
  row("avg lat reduction", [](const MethodStats& s) {
    return Pct(Mean(s.reductions));
  });
  row("avg solving time (s)", [](const MethodStats& s) {
    return Fmt("%.2f", Mean(s.solve_times));
  });
  row("max solving time (s)", [](const MethodStats& s) {
    return Fmt("%.2f", Percentile(s.solve_times, 100));
  });
  row("avg reduction / solving time", [](const MethodStats& s) {
    return Pct(Mean(s.reductions) / std::max(Mean(s.solve_times), 1e-9));
  });
  t.Print();

  // ---- Figure 10(g): extra benefit of runtime optimization on the
  // longest-running queries.
  std::sort(long_running.begin(), long_running.end(),
            [](auto& a, auto& b) { return a.first > b.first; });
  const size_t top = std::min<size_t>(5, long_running.size());
  double best_extra = 0;
  double sum_extra = 0;
  for (size_t i = 0; i < top; ++i) {
    best_extra = std::max(best_extra, long_running[i].second);
    sum_extra += long_running[i].second;
  }
  std::printf(
      "\nFigure 10(g): runtime opt extra reduction on the %zu "
      "longest-running queries: avg %.1f%%, max %.1f%%\n",
      top, 100 * sum_extra / top, 100 * best_extra);

  if (per_query_table) {
    std::printf("\nFigure 19: per-query latency comparison:\n");
    per_query.Print();
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  TraceExport trace(&argc, argv);
  std::printf(
      "==== Table 4: latency reduction with a strong speed preference "
      "(0.9, 0.1) ====\n\n");
  const auto tpch = TpchCatalog(100.0);
  RunBenchmarkSet("TPC-H", TpchBenchmark(&tpch), /*per_query_table=*/true);
  const auto tpcds = TpcdsCatalog(100.0);
  auto ds = TpcdsBenchmark(&tpcds);
  if (FastMode()) ds.resize(12);
  RunBenchmarkSet("TPC-DS", ds, /*per_query_table=*/false);
  return 0;
}
