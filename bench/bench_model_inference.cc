/// \file bench_model_inference.cc
/// \brief Micro-benchmarks of the components on the MOO critical path:
/// analytic subQ evaluation (the compile-time phi), MLP inference (the
/// learned phi — the paper's Xput column), feature extraction, and the
/// physical planner. The paper's 1-2 s solving budget rests on these
/// being 10^4-10^5 evaluations/second.

#include <benchmark/benchmark.h>

#include "model/features.h"
#include "model/mlp.h"
#include "model/subq_evaluator.h"
#include "moo/objective_models.h"
#include "workload/tpch.h"

namespace sparkopt {
namespace {

struct Fixture {
  std::vector<TableStats> catalog = TpchCatalog(100);
  ClusterSpec cluster;
  CostModelParams cost;
  Query q9 = *MakeTpchQuery(9, &catalog);
  SubQEvaluator eval{&q9, cluster, cost};
  AnalyticSubQModel model{&q9, cluster, cost};
  std::vector<double> conf = DefaultSparkConfig();
};

Fixture& Fx() {
  static Fixture fx;
  return fx;
}

void BM_AnalyticSubQEvaluate(benchmark::State& state) {
  auto& fx = Fx();
  int subq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.model.Evaluate(subq, fx.conf));
    subq = (subq + 1) % fx.model.num_subqs();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnalyticSubQEvaluate);

void BM_StageFeatureExtraction(benchmark::State& state) {
  auto& fx = Fx();
  const auto st = fx.eval.BuildStage(
      5, DecodeContext(fx.conf), DecodePlan(fx.conf), DecodeStage(fx.conf),
      CardinalitySource::kEstimated);
  for (auto _ : state) {
    benchmark::DoNotOptimize(StageFeatures(fx.q9.plan, st, fx.conf, false,
                                           {}, {}, false));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StageFeatureExtraction);

void BM_MlpInference(benchmark::State& state) {
  const int dim = FeatureLayout::Total();
  Mlp net({dim, 64, 64, 2}, 3);
  std::vector<double> x(dim, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.Predict(x));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MlpInference);

void BM_PhysicalPlanning(benchmark::State& state) {
  auto& fx = Fx();
  PhysicalPlanner planner(&fx.q9.plan, fx.q9.plan.DecomposeSubQueries());
  const ContextParams tc = DecodeContext(fx.conf);
  const PlanParams tp = DecodePlan(fx.conf);
  const StageParams ts = DecodeStage(fx.conf);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.Plan(
        tc, {tp}, {ts}, CardinalitySource::kEstimated));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PhysicalPlanning);

void BM_SimulateQuery(benchmark::State& state) {
  auto& fx = Fx();
  Simulator sim(fx.cluster, fx.cost);
  PhysicalPlanner planner(&fx.q9.plan, fx.q9.plan.DecomposeSubQueries());
  const ContextParams tc = DecodeContext(fx.conf);
  auto pp = *planner.Plan(tc, {DecodePlan(fx.conf)}, {DecodeStage(fx.conf)},
                          CardinalitySource::kTrue);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.RunAll(pp, tc, 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulateQuery);

}  // namespace
}  // namespace sparkopt

BENCHMARK_MAIN();
