/// \file bench_model_inference.cc
/// \brief Micro-benchmarks of the components on the MOO critical path:
/// analytic subQ evaluation (the compile-time phi), MLP inference (the
/// learned phi — the paper's Xput column), feature extraction, and the
/// physical planner. The paper's 1-2 s solving budget rests on these
/// being 10^4-10^5 evaluations/second.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_util.h"
#include "model/features.h"
#include "model/mlp.h"
#include "model/subq_evaluator.h"
#include "moo/objective_models.h"
#include "workload/tpch.h"

namespace sparkopt {
namespace {

struct Fixture {
  std::vector<TableStats> catalog = TpchCatalog(100);
  ClusterSpec cluster;
  CostModelParams cost;
  Query q9 = *MakeTpchQuery(9, &catalog);
  SubQEvaluator eval{&q9, cluster, cost};
  AnalyticSubQModel model{&q9, cluster, cost};
  std::vector<double> conf = DefaultSparkConfig();
};

Fixture& Fx() {
  static Fixture fx;
  return fx;
}

void BM_AnalyticSubQEvaluate(benchmark::State& state) {
  auto& fx = Fx();
  int subq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.model.Evaluate(subq, fx.conf));
    subq = (subq + 1) % fx.model.num_subqs();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnalyticSubQEvaluate);

void BM_StageFeatureExtraction(benchmark::State& state) {
  auto& fx = Fx();
  const auto st = fx.eval.BuildStage(
      5, DecodeContext(fx.conf), DecodePlan(fx.conf), DecodeStage(fx.conf),
      CardinalitySource::kEstimated);
  for (auto _ : state) {
    benchmark::DoNotOptimize(StageFeatures(fx.q9.plan, st, fx.conf, false,
                                           {}, {}, false));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StageFeatureExtraction);

void BM_MlpInference(benchmark::State& state) {
  const int dim = FeatureLayout::Total();
  Mlp net({dim, 64, 64, 2}, 3);
  std::vector<double> x(dim, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.Predict(x));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MlpInference);

void BM_MlpBatchInference(benchmark::State& state) {
  const int dim = FeatureLayout::Total();
  const size_t rows = static_cast<size_t>(state.range(0));
  Mlp net({dim, 64, 64, 2}, 3);
  std::vector<double> x(rows * dim);
  for (size_t i = 0; i < x.size(); ++i) x[i] = 0.01 * (i % 97);
  std::vector<double> out(rows * 2);
  Mlp::BatchScratch scratch;
  for (auto _ : state) {
    net.PredictBatchInto(x.data(), rows, out.data(), &scratch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_MlpBatchInference)->Arg(1)->Arg(16)->Arg(64)->Arg(256);

void BM_AnalyticSubQEvaluateUncached(benchmark::State& state) {
  // Fresh evaluator with the memo cache off: the pre-cache baseline.
  auto& fx = Fx();
  AnalyticSubQModel model(&fx.q9, fx.cluster, fx.cost);
  model.evaluator().set_eval_cache_enabled(false);
  int subq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Evaluate(subq, fx.conf));
    subq = (subq + 1) % model.num_subqs();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnalyticSubQEvaluateUncached);

void BM_PhysicalPlanning(benchmark::State& state) {
  auto& fx = Fx();
  PhysicalPlanner planner(&fx.q9.plan, fx.q9.plan.DecomposeSubQueries());
  const ContextParams tc = DecodeContext(fx.conf);
  const PlanParams tp = DecodePlan(fx.conf);
  const StageParams ts = DecodeStage(fx.conf);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.Plan(
        tc, {tp}, {ts}, CardinalitySource::kEstimated));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PhysicalPlanning);

void BM_SimulateQuery(benchmark::State& state) {
  auto& fx = Fx();
  Simulator sim(fx.cluster, fx.cost);
  PhysicalPlanner planner(&fx.q9.plan, fx.q9.plan.DecomposeSubQueries());
  const ContextParams tc = DecodeContext(fx.conf);
  auto pp = *planner.Plan(tc, {DecodePlan(fx.conf)}, {DecodeStage(fx.conf)},
                          CardinalitySource::kTrue);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.RunAll(pp, tc, 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulateQuery);

// Directly measured per-row vs batched MLP throughput, emitted as
// RESULT-line JSON for the driver's before/after comparisons.
void EmitInferenceResults() {
  const int dim = FeatureLayout::Total();
  Mlp net({dim, 64, 64, 2}, 3);
  const size_t total = benchutil::FastMode() ? 20000 : 200000;

  std::vector<double> x(256 * dim);
  for (size_t i = 0; i < x.size(); ++i) x[i] = 0.01 * (i % 97);
  std::vector<double> out(256 * 2);

  // Per-row baseline.
  {
    const std::vector<double> row(x.begin(), x.begin() + dim);
    benchutil::Timer timer;
    for (size_t i = 0; i < total; ++i) {
      benchmark::DoNotOptimize(net.Predict(row));
    }
    const double s = timer.Seconds();
    obs::JsonObject o;
    o.emplace_back("batch", obs::Json(1));
    o.emplace_back("rows_per_sec", obs::Json(total / s));
    o.emplace_back("ns_per_row", obs::Json(s / total * 1e9));
    benchutil::EmitJson("mlp_inference", obs::Json(std::move(o)));
  }
  Mlp::BatchScratch scratch;
  for (size_t batch : {size_t{64}, size_t{256}}) {
    const size_t iters = total / batch;
    benchutil::Timer timer;
    for (size_t i = 0; i < iters; ++i) {
      net.PredictBatchInto(x.data(), batch, out.data(), &scratch);
      benchmark::DoNotOptimize(out.data());
    }
    const double s = timer.Seconds();
    const double rows = static_cast<double>(iters * batch);
    obs::JsonObject o;
    o.emplace_back("batch", obs::Json(static_cast<uint64_t>(batch)));
    o.emplace_back("rows_per_sec", obs::Json(rows / s));
    o.emplace_back("ns_per_row", obs::Json(s / rows * 1e9));
    benchutil::EmitJson("mlp_inference", obs::Json(std::move(o)));
  }
}

}  // namespace
}  // namespace sparkopt

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  sparkopt::EmitInferenceResults();
  return 0;
}
