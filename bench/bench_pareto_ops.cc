/// \file bench_pareto_ops.cc
/// \brief Micro-benchmarks of the Pareto primitives every MOO solver sits
/// on: non-dominated filtering (the O(n log n) 2D path and the k-D
/// fallback), hypervolume, WUN recommendation, and the Minkowski merge of
/// HMOOC1's divide-and-conquer aggregation.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_util.h"
#include "common/pareto.h"
#include "common/pareto_flat.h"
#include "common/rng.h"

namespace sparkopt {
namespace {

std::vector<ObjectiveVector> RandomPoints(size_t n, int k, uint64_t seed) {
  Rng rng(seed);
  std::vector<ObjectiveVector> pts(n, ObjectiveVector(k));
  for (auto& p : pts) {
    for (auto& v : p) v = rng.Uniform();
  }
  return pts;
}

// A synthetic Pareto front of exactly n points (x strictly increasing, y
// strictly decreasing). Filtering random uniforms keeps only ~log n
// points, which under-exercises the merge; real HMOOC fronts are capped
// staircases like this one.
std::vector<ObjectiveVector> StaircaseFront(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<ObjectiveVector> pts(n, ObjectiveVector(2));
  double x = 0.0;
  double y = static_cast<double>(n);
  for (auto& p : pts) {
    x += rng.Uniform(0.1, 1.0);
    y -= rng.Uniform(0.1, 1.0);
    p = {x, y};
  }
  return pts;
}

// A synthetic 3-D front of exactly n points: x strictly increasing and
// y strictly decreasing makes every pair mutually non-dominated for any
// z, so the third axis can be free-ranging without shrinking the front.
std::vector<ObjectiveVector> StaircaseFront3(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<ObjectiveVector> pts(n, ObjectiveVector(3));
  double x = 0.0;
  double y = static_cast<double>(n);
  for (auto& p : pts) {
    x += rng.Uniform(0.1, 1.0);
    y -= rng.Uniform(0.1, 1.0);
    p = {x, y, rng.Uniform(0.0, static_cast<double>(n))};
  }
  return pts;
}

void BM_ParetoFilter2D(benchmark::State& state) {
  const auto pts = RandomPoints(state.range(0), 2, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParetoIndices(pts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParetoFilter2D)->Range(64, 65536);

void BM_ParetoFilter3D(benchmark::State& state) {
  const auto pts = RandomPoints(state.range(0), 3, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParetoIndices(pts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParetoFilter3D)->Range(64, 4096);

void BM_Hypervolume2D(benchmark::State& state) {
  auto pts = RandomPoints(state.range(0), 2, 7);
  auto front = ParetoFilter(pts);
  ObjectiveVector ref = {1.2, 1.2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(Hypervolume2D(front, ref));
  }
}
BENCHMARK(BM_Hypervolume2D)->Range(64, 16384);

void BM_WunRecommendation(benchmark::State& state) {
  auto front = ParetoFilter(RandomPoints(state.range(0), 2, 11));
  std::vector<double> w = {0.9, 0.1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(WeightedUtopiaNearest(front, w));
  }
}
BENCHMARK(BM_WunRecommendation)->Range(64, 16384);

void BM_MinkowskiMerge(benchmark::State& state) {
  IndexedFront a, b;
  a.points = ParetoFilter(RandomPoints(state.range(0), 2, 3));
  b.points = ParetoFilter(RandomPoints(state.range(0), 2, 5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MergeFronts(a, b, nullptr));
  }
  state.SetItemsProcessed(state.iterations() * a.size() * b.size());
}
BENCHMARK(BM_MinkowskiMerge)->Range(256, 16384);

// Dense staircase fronts: the output-sensitive path vs the materialized
// cross product, on inputs shaped like HMOOC1's capped intermediates.
void BM_MinkowskiMergeFront(benchmark::State& state) {
  IndexedFront a, b;
  a.points = StaircaseFront(state.range(0), 3);
  b.points = StaircaseFront(state.range(0), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MergeFronts(a, b, nullptr));
  }
  state.SetItemsProcessed(state.iterations() * a.size() * b.size());
}
BENCHMARK(BM_MinkowskiMergeFront)->Range(256, 8192);

// 3-objective staircase merge: the kd-staircase path of FlatMerge3
// against inputs shaped like HMOOC1's 3-objective intermediates.
void BM_MinkowskiMerge3Front(benchmark::State& state) {
  IndexedFront a, b;
  a.points = StaircaseFront3(state.range(0), 3);
  b.points = StaircaseFront3(state.range(0), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MergeFronts(a, b, nullptr));
  }
  state.SetItemsProcessed(state.iterations() * a.size() * b.size());
}
BENCHMARK(BM_MinkowskiMerge3Front)->Range(256, 4096);

void BM_MinkowskiMergeFrontNaive(benchmark::State& state) {
  IndexedFront a, b;
  a.points = StaircaseFront(state.range(0), 3);
  b.points = StaircaseFront(state.range(0), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MergeFrontsNaive(a, b, nullptr));
  }
  state.SetItemsProcessed(state.iterations() * a.size() * b.size());
}
BENCHMARK(BM_MinkowskiMergeFrontNaive)->Range(256, 2048);

}  // namespace

// RESULT-line JSON for the driver's perf trajectory: merge ns per output
// point, flat kernel vs the naive cross-product oracle, on staircase
// fronts. Runs after the google-benchmark loops (and alone in CI, where
// the loops are filtered out).
void EmitMergeResults() {
  const bool fast = benchutil::FastMode();
  const int reps = fast ? 3 : 10;
  for (const size_t n : {size_t{256}, size_t{1024}, size_t{4096}}) {
    IndexedFront a, b;
    a.points = StaircaseFront(n, 3);
    b.points = StaircaseFront(n, 5);
    double flat_s = 1e300;
    size_t out_size = 0;
    for (int r = 0; r < reps; ++r) {
      benchutil::Timer timer;
      const auto merged = MergeFronts(a, b, nullptr);
      flat_s = std::min(flat_s, timer.Seconds());
      out_size = merged.size();
    }
    // The naive oracle materializes n^2 points; keep it to sizes where
    // that is still measurable in seconds, not minutes.
    double naive_s = -1.0;
    if (n <= (fast ? 1024u : 4096u)) {
      naive_s = 1e300;
      const int naive_reps = n <= 1024 ? reps : 1;
      for (int r = 0; r < naive_reps; ++r) {
        benchutil::Timer timer;
        const auto merged = MergeFrontsNaive(a, b, nullptr);
        naive_s = std::min(naive_s, timer.Seconds());
      }
    }
    obs::JsonObject o;
    o.emplace_back("front_size", obs::Json(static_cast<uint64_t>(n)));
    o.emplace_back("out_size", obs::Json(static_cast<uint64_t>(out_size)));
    o.emplace_back("flat_ns_per_point",
                   obs::Json(flat_s * 1e9 / out_size));
    if (naive_s >= 0.0) {
      o.emplace_back("naive_ns_per_point",
                     obs::Json(naive_s * 1e9 / out_size));
      o.emplace_back("speedup", obs::Json(naive_s / flat_s));
    }
    benchutil::EmitJson("pareto_merge", obs::Json(std::move(o)));
  }
}

// Same contract for the 3-objective kernel: flat kd-staircase merge vs
// the naive materialized cross product, on 3-D staircase fronts.
void EmitMerge3Results() {
  const bool fast = benchutil::FastMode();
  const int reps = fast ? 3 : 10;
  for (const size_t n : {size_t{256}, size_t{1024}, size_t{4096}}) {
    IndexedFront a, b;
    a.points = StaircaseFront3(n, 3);
    b.points = StaircaseFront3(n, 5);
    double flat_s = 1e300;
    size_t out_size = 0;
    for (int r = 0; r < reps; ++r) {
      benchutil::Timer timer;
      const auto merged = MergeFronts(a, b, nullptr);
      flat_s = std::min(flat_s, timer.Seconds());
      out_size = merged.size();
    }
    double naive_s = -1.0;
    if (n <= (fast ? 1024u : 4096u)) {
      naive_s = 1e300;
      const int naive_reps = n <= 1024 ? reps : 1;
      for (int r = 0; r < naive_reps; ++r) {
        benchutil::Timer timer;
        const auto merged = MergeFrontsNaive(a, b, nullptr);
        naive_s = std::min(naive_s, timer.Seconds());
      }
    }
    obs::JsonObject o;
    o.emplace_back("front_size", obs::Json(static_cast<uint64_t>(n)));
    o.emplace_back("out_size", obs::Json(static_cast<uint64_t>(out_size)));
    o.emplace_back("flat_ns_per_point",
                   obs::Json(flat_s * 1e9 / out_size));
    if (naive_s >= 0.0) {
      o.emplace_back("naive_ns_per_point",
                     obs::Json(naive_s * 1e9 / out_size));
      o.emplace_back("speedup", obs::Json(naive_s / flat_s));
    }
    benchutil::EmitJson("pareto_merge3", obs::Json(std::move(o)));
  }
}

}  // namespace sparkopt

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  sparkopt::EmitMergeResults();
  sparkopt::EmitMerge3Results();
  return 0;
}
