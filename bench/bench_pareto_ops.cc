/// \file bench_pareto_ops.cc
/// \brief Micro-benchmarks of the Pareto primitives every MOO solver sits
/// on: non-dominated filtering (the O(n log n) 2D path and the k-D
/// fallback), hypervolume, WUN recommendation, and the Minkowski merge of
/// HMOOC1's divide-and-conquer aggregation.

#include <benchmark/benchmark.h>

#include "common/pareto.h"
#include "common/rng.h"

namespace sparkopt {
namespace {

std::vector<ObjectiveVector> RandomPoints(size_t n, int k, uint64_t seed) {
  Rng rng(seed);
  std::vector<ObjectiveVector> pts(n, ObjectiveVector(k));
  for (auto& p : pts) {
    for (auto& v : p) v = rng.Uniform();
  }
  return pts;
}

void BM_ParetoFilter2D(benchmark::State& state) {
  const auto pts = RandomPoints(state.range(0), 2, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParetoIndices(pts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParetoFilter2D)->Range(64, 65536);

void BM_ParetoFilter3D(benchmark::State& state) {
  const auto pts = RandomPoints(state.range(0), 3, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParetoIndices(pts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParetoFilter3D)->Range(64, 4096);

void BM_Hypervolume2D(benchmark::State& state) {
  auto pts = RandomPoints(state.range(0), 2, 7);
  auto front = ParetoFilter(pts);
  ObjectiveVector ref = {1.2, 1.2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(Hypervolume2D(front, ref));
  }
}
BENCHMARK(BM_Hypervolume2D)->Range(64, 16384);

void BM_WunRecommendation(benchmark::State& state) {
  auto front = ParetoFilter(RandomPoints(state.range(0), 2, 11));
  std::vector<double> w = {0.9, 0.1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(WeightedUtopiaNearest(front, w));
  }
}
BENCHMARK(BM_WunRecommendation)->Range(64, 16384);

void BM_MinkowskiMerge(benchmark::State& state) {
  IndexedFront a, b;
  a.points = ParetoFilter(RandomPoints(state.range(0), 2, 3));
  b.points = ParetoFilter(RandomPoints(state.range(0), 2, 5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MergeFronts(a, b, nullptr));
  }
  state.SetItemsProcessed(state.iterations() * a.size() * b.size());
}
BENCHMARK(BM_MinkowskiMerge)->Range(256, 16384);

}  // namespace
}  // namespace sparkopt

BENCHMARK_MAIN();
