/// \file bench_motivation.cc
/// \brief Reproduces the paper's motivating observations (Figure 3).
///
/// (a) TPCH-Q9 latency under: default+AQE, query-level MOO (MO-WS)+AQE,
///     and fine-grained runtime adaptation of theta_p (HMOOC3+).
/// (b) The join algorithms each approach executes (the BHJ/SHJ/SMJ mix).
/// (c) The optimal spark.sql.shuffle.partitions (s5) as a function of the
///     total core count k1 x k3, demonstrating the theta_c/theta_p
///     correlation that forces hybrid compile-time/runtime tuning.

#include <cstdio>

#include "bench_util.h"
#include "tuner/tuner.h"
#include "workload/tpch.h"

using namespace sparkopt;
using namespace sparkopt::benchutil;

int main() {
  std::printf("==== Figure 3: profiling TPCH-Q9 over configurations ====\n\n");
  const auto catalog = TpchCatalog(100.0);
  auto q9 = *MakeTpchQuery(9, &catalog);

  TunerOptions options;
  options.preference = {0.9, 0.1};
  Tuner tuner(options);

  // ---- (a) + (b): latency and join mix per approach --------------------
  Table t({"approach", "latency (s)", "vs default", "SMJ", "SHJ", "BHJ"});
  auto def = *tuner.Run(q9, TuningMethod::kDefault);
  auto add = [&](const char* name, const TuningOutcome& out) {
    t.AddRow({name, Fmt("%.2f", out.execution.exec.latency),
              Pct(1.0 - out.execution.exec.latency /
                            def.execution.exec.latency),
              std::to_string(out.execution.exec.smj),
              std::to_string(out.execution.exec.shj),
              std::to_string(out.execution.exec.bhj)});
  };
  add("default + AQE", def);
  add("MO-WS (query-level) + AQE", *tuner.Run(q9, TuningMethod::kMoWs));
  add("fine-grained compile (HMOOC3)", *tuner.Run(q9, TuningMethod::kHmooc3));
  add("fine-grained runtime (HMOOC3+)",
      *tuner.Run(q9, TuningMethod::kHmooc3Plus));
  t.Print();

  // ---- (c): optimal s5 tracks total cores k1 * k3 ----------------------
  std::printf(
      "\n==== Figure 3(c): optimal shuffle partitions (s5) vs total cores "
      "====\n\n");
  ClusterSpec cluster;
  CostModelParams cost_params;
  SubQEvaluator eval(&q9, cluster, cost_params);
  // Pick the heaviest join subQ and sweep s5 for several core counts.
  int heavy_subq = 0;
  double heavy_bytes = 0;
  {
    auto conf = DefaultSparkConfig();
    for (int i = 0; i < eval.num_subqs(); ++i) {
      auto st = eval.BuildStage(i, DecodeContext(conf), DecodePlan(conf),
                                DecodeStage(conf),
                                CardinalitySource::kEstimated);
      if (st.has_join && st.input_bytes > heavy_bytes) {
        heavy_bytes = st.input_bytes;
        heavy_subq = i;
      }
    }
  }
  Table t2({"k1 x k3 (cores)", "best s5", "latency at best (s)",
            "latency at s5=64 (s)"});
  for (const int cores : {8, 16, 32, 64, 128}) {
    ContextParams tc = DecodeContext(DefaultSparkConfig());
    tc.executor_cores = 8;
    tc.executor_instances = cores / 8;
    StageParams ts = DecodeStage(DefaultSparkConfig());
    double best_lat = 1e300, fixed_lat = 0;
    int best_s5 = 0;
    for (int s5 = 8; s5 <= 1024; s5 *= 2) {
      PlanParams tp = DecodePlan(DefaultSparkConfig());
      tp.shuffle_partitions = s5;
      tp.advisory_partition_size_mb = 8;  // keep partitions near s5
      const auto obj = eval.Evaluate(heavy_subq, tc, tp, ts,
                                     CardinalitySource::kTrue);
      if (obj.analytical_latency < best_lat) {
        best_lat = obj.analytical_latency;
        best_s5 = s5;
      }
      if (s5 == 64) fixed_lat = obj.analytical_latency;
    }
    t2.AddRow({std::to_string(cores), std::to_string(best_s5),
               Fmt("%.2f", best_lat), Fmt("%.2f", fixed_lat)});
  }
  t2.Print();
  std::printf(
      "\n(the optimal s5 grows with the core count, so theta_p cannot be "
      "tuned independently of theta_c — Section 3.2, observation 3)\n");
  return 0;
}
