/// \file bench_moo_comparison.cc
/// \brief Reproduces Figure 10(c-f) (Expt 6 and Expt 7): HMOOC3 against
/// the SOTA MOO methods WS / Evo / PF, both for fine-grained (per-subQ
/// theta_p/theta_s; blue bars) and query-level (single copy; orange bars)
/// control.
///
/// Paper reference: HMOOC3 reaches the best average hypervolume (93.4% on
/// TPC-H, 89.9% on TPC-DS) at 0.5-0.55 s, beating the others by
/// 7.9-81.7% HV with 81.8-98.3% less solving time; query-level control
/// reduces the baselines' search space but still loses on both axes.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "moo/baselines.h"
#include "moo/hmooc.h"
#include "moo/objective_models.h"
#include "workload/tpcds.h"
#include "workload/tpch.h"

using namespace sparkopt;
using namespace sparkopt::benchutil;

namespace {

struct MethodResult {
  std::vector<double> hv;
  std::vector<double> time;
  std::vector<double> wun_latency;  ///< latency of the WUN (0.9,0.1) pick
};

void RunBenchmarkSet(const char* name, const std::vector<Query>& queries) {
  ClusterSpec cluster;
  CostModelParams cost;
  const char* kNames[] = {"HMOOC3",   "WS fine",  "Evo fine", "PF fine",
                          "WS query", "Evo query", "PF query"};
  constexpr int kNumMethods = 7;
  std::vector<MethodResult> agg(kNumMethods);

  for (const auto& q : queries) {
    AnalyticSubQModel model(&q, cluster, cost);
    FlatProblem fine(&model, /*fine_grained=*/true);
    FlatProblem coarse(&model, /*fine_grained=*/false);
    std::vector<MooRunResult> results(kNumMethods);

    HmoocOptions ho;
    ho.seed = 17;
    if (FastMode()) {
      ho.theta_c_samples = 24;
      ho.clusters = 6;
      ho.theta_p_samples = 48;
    }
    results[0] = HmoocSolver(&model, ho).Solve();

    WsOptions wo;
    wo.samples = FastMode() ? 1500 : 10000;
    wo.seed = 17;
    results[1] = SolveWeightedSum(fine, fine, wo);
    results[4] = SolveWeightedSum(coarse, coarse, wo);

    EvoOptions eo;
    eo.seed = 17;
    eo.max_evaluations = FastMode() ? 200 : 500;
    results[2] = SolveEvo(fine, fine, eo);
    results[5] = SolveEvo(coarse, coarse, eo);

    PfOptions po;
    po.seed = 17;
    po.inner_samples = FastMode() ? 150 : 600;
    results[3] = SolveProgressiveFrontier(fine, fine, po);
    results[6] = SolveProgressiveFrontier(coarse, coarse, po);

    ObjectiveVector lo = {1e300, 1e300}, hi = {-1e300, -1e300};
    for (const auto& r : results) ExtendBounds(FrontOf(r), &lo, &hi);
    if (hi[0] <= lo[0] || hi[1] <= lo[1]) continue;
    ObjectiveVector ref = {hi[0] + 0.1 * (hi[0] - lo[0]),
                           hi[1] + 0.1 * (hi[1] - lo[1])};
    for (int m = 0; m < kNumMethods; ++m) {
      agg[m].hv.push_back(NormalizedHypervolume(FrontOf(results[m]), lo,
                                                ref));
      agg[m].time.push_back(results[m].solve_seconds);
      const size_t pick = results[m].Recommend({0.9, 0.1});
      // Normalize the recommended latency by the best latency any method
      // found for this query, so queries are comparable.
      agg[m].wun_latency.push_back(
          pick < results[m].pareto.size()
              ? results[m].pareto[pick].objectives[0] / std::max(lo[0], 1e-9)
              : 1e9);
    }
  }

  std::printf("%s (%zu queries):\n", name, agg[0].hv.size());
  Table t({"method", "granularity", "avg HV", "avg time (s)",
           "max time (s)", "WUN(.9,.1) lat vs best"});
  const char* gran[] = {"subQ", "subQ", "subQ", "subQ",
                        "query", "query", "query"};
  for (int m = 0; m < kNumMethods; ++m) {
    t.AddRow({kNames[m], gran[m], Fmt("%.3f", Mean(agg[m].hv)),
              Fmt("%.3f", Mean(agg[m].time)),
              Fmt("%.3f", Percentile(agg[m].time, 100)),
              Fmt("%.2fx", Mean(agg[m].wun_latency))});
  }
  t.Print();
  const double hmooc_hv = Mean(agg[0].hv);
  const double hmooc_t = Mean(agg[0].time);
  double worst_hv_gain = 1e300, best_hv_gain = -1e300;
  double worst_t_red = 1e300, best_t_red = -1e300;
  for (int m = 1; m < kNumMethods; ++m) {
    const double gain = (hmooc_hv - Mean(agg[m].hv)) / Mean(agg[m].hv);
    const double t_red = 1.0 - hmooc_t / Mean(agg[m].time);
    worst_hv_gain = std::min(worst_hv_gain, gain);
    best_hv_gain = std::max(best_hv_gain, gain);
    worst_t_red = std::min(worst_t_red, t_red);
    best_t_red = std::max(best_t_red, t_red);
  }
  std::printf(
      "HMOOC3 vs baselines: HV improvement %.1f%%..%.1f%%, solving-time "
      "reduction %.1f%%..%.1f%%\n\n",
      100 * worst_hv_gain, 100 * best_hv_gain, 100 * worst_t_red,
      100 * best_t_red);
}

}  // namespace

int main() {
  std::printf(
      "==== Figure 10(c-f): compile-time MOO methods, fine-grained vs "
      "query-level ====\n\n");
  const auto tpch = TpchCatalog(100.0);
  RunBenchmarkSet("TPC-H", TpchBenchmark(&tpch));
  const auto tpcds = TpcdsCatalog(100.0);
  auto ds = TpcdsBenchmark(&tpcds);
  ds.resize(FastMode() ? 10 : 16);
  RunBenchmarkSet("TPC-DS (subset)", ds);
  return 0;
}
