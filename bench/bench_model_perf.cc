/// \file bench_model_perf.cc
/// \brief Reproduces Table 3 (and Expt 2): accuracy and inference
/// throughput of the three model targets — compile-time subQ, runtime QS,
/// and runtime collapsed-LQP — on TPC-H and TPC-DS traces, split 8:1:1.
///
/// Paper reference (Table 3): latency WMAPE 13-28%, P50 3-10%, P90
/// 29-65%, corr 93-99%; IO WMAPE 0.2-11% with corr 99-100%; throughput
/// 60-462K predictions/s. Expt 2: QS latency accuracy slightly below
/// subQ; QS IO accuracy better than subQ (true input sizes).

#include <cstdio>
#include <functional>

#include "bench_util.h"
#include "model/trainer.h"
#include "workload/tpcds.h"
#include "workload/tpch.h"

using namespace sparkopt;
using namespace sparkopt::benchutil;

namespace {

void RunBenchmarkSet(
    const char* name,
    const std::function<Result<Query>(int, uint64_t)>& make_query,
    int num_templates) {
  ClusterSpec cluster;
  CostModelParams cost;
  TraceCollector collector(cluster, cost);
  ModelDataset subq, qs, lqp;
  TraceOptions topts;
  topts.runs = FastMode() ? 150 : 900;
  topts.seed = 42;
  Timer collect_timer;
  auto st = collector.Collect(make_query, num_templates, topts, &subq, &qs,
                              &lqp);
  if (!st.ok()) {
    std::printf("collect failed: %s\n", st.ToString().c_str());
    return;
  }
  std::printf(
      "%s: %zu subQ / %zu QS / %zu LQP samples from %d runs (%.1fs)\n",
      name, subq.size(), qs.size(), lqp.size(), topts.runs,
      collect_timer.Seconds());

  auto s1 = SplitDataset(subq, 1);
  auto s2 = SplitDataset(qs, 2);
  auto s3 = SplitDataset(lqp, 3);
  ModelSuite suite;
  Mlp::TrainOptions mopts;
  mopts.epochs = FastMode() ? 40 : 320;
  mopts.patience = 45;
  mopts.learning_rate = 1e-3;
  Timer train_timer;
  st = suite.Train(s1.train, s2.train, s3.train, 7, mopts);
  if (!st.ok()) {
    std::printf("train failed: %s\n", st.ToString().c_str());
    return;
  }
  std::printf("training time: %.1fs\n\n", train_timer.Seconds());

  Table t({"target", "lat WMAPE", "lat P50", "lat P90", "lat Corr",
           "IO WMAPE", "IO P50", "IO P90", "IO Corr", "Xput K/s"});
  auto add = [&](const char* target, const Regressor& model,
                 const ModelDataset& test) {
    auto p = suite.Evaluate(model, test);
    t.AddRow({target, Fmt("%.3f", p.latency.wmape),
              Fmt("%.3f", p.latency.p50), Fmt("%.3f", p.latency.p90),
              Fmt("%.2f", p.latency.corr), Fmt("%.3f", p.io.wmape),
              Fmt("%.3f", p.io.p50), Fmt("%.3f", p.io.p90),
              Fmt("%.2f", p.io.corr),
              Fmt("%.0f", p.throughput_per_sec / 1000.0)});
  };
  add("subQ", suite.subq_model(), s1.test);
  add("QS", suite.qs_model(), s2.test);
  add("LQP", suite.lqp_model(), s3.test);
  t.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("==== Table 3: model performance (Graph+Regressor) ====\n\n");
  const auto tpch = TpchCatalog(100.0);
  RunBenchmarkSet(
      "TPC-H",
      [&](int qid, uint64_t v) { return MakeTpchQuery(qid, &tpch, v); }, 22);
  const auto tpcds = TpcdsCatalog(100.0);
  RunBenchmarkSet(
      "TPC-DS",
      [&](int qid, uint64_t v) { return MakeTpcdsQuery(qid, &tpcds, v); },
      102);
  return 0;
}
