#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/pareto.h"
#include "moo/problem.h"
#include "obs/json.h"
#include "obs/openmetrics.h"
#include "obs/profile.h"
#include "obs/trace.h"

/// \file bench_util.h
/// \brief Shared helpers for the experiment harnesses: fixed-width table
/// printing, hypervolume against a shared per-query reference point, a
/// FAST-mode switch (SPARKOPT_BENCH_FAST=1) that shrinks workloads for
/// smoke runs, and the observability opt-ins (--trace-out, --profile-out,
/// --metrics-out, or their SPARKOPT_*_OUT env twins) that install an
/// obs::Session and export the Chrome trace, phase profile, and
/// OpenMetrics text when the harness exits.

namespace sparkopt {
namespace benchutil {

inline bool FastMode() {
  const char* v = std::getenv("SPARKOPT_BENCH_FAST");
  return v != nullptr && v[0] == '1';
}

/// \brief Harness observability opt-in. Any of
///   --trace-out=<path>   / SPARKOPT_TRACE_OUT     (Chrome trace JSON)
///   --profile-out=<path> / SPARKOPT_PROFILE_OUT   (phase-profile JSON)
///   --metrics-out=<path> / SPARKOPT_METRICS_OUT   (OpenMetrics text)
/// installs an obs::Session for the harness lifetime and writes the
/// requested exports on destruction. Without an opt-in no session is
/// installed, so instrumented hot paths stay at their one-atomic-load
/// cost.
class TraceExport {
 public:
  /// Parses and REMOVES the recognized flags from argc/argv, so the
  /// remaining arguments can be handed to pickier parsers
  /// (benchmark::Initialize rejects flags it does not know).
  TraceExport(int* argc, char** argv) {
    int kept = 1;
    for (int i = 1; i < *argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--trace-out=", 0) == 0) {
        trace_path_ = arg.substr(12);
      } else if (arg.rfind("--profile-out=", 0) == 0) {
        profile_path_ = arg.substr(14);
      } else if (arg.rfind("--metrics-out=", 0) == 0) {
        metrics_path_ = arg.substr(14);
      } else {
        argv[kept++] = argv[i];
      }
    }
    *argc = kept;
    auto env_fallback = [](std::string* path, const char* env_name) {
      if (!path->empty()) return;
      const char* env = std::getenv(env_name);
      if (env != nullptr && env[0] != '\0') *path = env;
    };
    env_fallback(&trace_path_, "SPARKOPT_TRACE_OUT");
    env_fallback(&profile_path_, "SPARKOPT_PROFILE_OUT");
    env_fallback(&metrics_path_, "SPARKOPT_METRICS_OUT");
    if (!trace_path_.empty() || !profile_path_.empty() ||
        !metrics_path_.empty()) {
      session_ = std::make_unique<obs::Session>();
    }
  }
  ~TraceExport() {
    if (session_ == nullptr) return;
    if (!trace_path_.empty()) {
      if (session_->trace().WriteChromeJson(trace_path_)) {
        std::fprintf(stderr, "trace: wrote %zu events to %s\n",
                     session_->trace().size(), trace_path_.c_str());
      } else {
        std::fprintf(stderr, "trace: failed to write %s\n",
                     trace_path_.c_str());
      }
    }
    if (!profile_path_.empty()) {
      const auto profile = obs::PhaseProfile::FromTrace(session_->trace());
      if (profile.WriteJson(profile_path_)) {
        std::fprintf(stderr, "profile: wrote %.3f ms over %zu phases to %s\n",
                     profile.total_us() / 1e3, profile.roots().size(),
                     profile_path_.c_str());
      } else {
        std::fprintf(stderr, "profile: failed to write %s\n",
                     profile_path_.c_str());
      }
    }
    if (!metrics_path_.empty()) {
      const std::string body = obs::ToOpenMetricsText(session_->metrics());
      std::FILE* f = std::fopen(metrics_path_.c_str(), "w");
      const bool ok = f != nullptr &&
                      std::fwrite(body.data(), 1, body.size(), f) ==
                          body.size() &&
                      std::fclose(f) == 0;
      std::fprintf(stderr, "metrics: %s %s\n",
                   ok ? "wrote OpenMetrics to" : "failed to write",
                   metrics_path_.c_str());
    }
  }
  TraceExport(const TraceExport&) = delete;
  TraceExport& operator=(const TraceExport&) = delete;

  bool enabled() const { return session_ != nullptr; }
  obs::Session* session() { return session_.get(); }

 private:
  std::string trace_path_;
  std::string profile_path_;
  std::string metrics_path_;
  std::unique_ptr<obs::Session> session_;
};

/// Prints one machine-readable result record: `RESULT <name> <json>`.
/// Downstream tooling greps for the RESULT prefix and parses the rest of
/// the line with any JSON parser (or obs::Json::Parse).
inline void EmitJson(const std::string& name, const obs::Json& payload) {
  std::printf("RESULT %s %s\n", name.c_str(), payload.Dump().c_str());
}

/// Simple fixed-width text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> width(headers_.size(), 0);
    for (size_t i = 0; i < headers_.size(); ++i) {
      width[i] = headers_[i].size();
    }
    for (const auto& row : rows_) {
      for (size_t i = 0; i < row.size() && i < width.size(); ++i) {
        width[i] = std::max(width[i], row[i].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (size_t i = 0; i < width.size(); ++i) {
        const std::string& cell = i < row.size() ? row[i] : "";
        std::printf(" %-*s |", static_cast<int>(width[i]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (size_t i = 0; i < width.size(); ++i) {
      std::printf("%s|", std::string(width[i] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}
inline std::string Pct(double v) { return Fmt("%.1f%%", 100.0 * v); }

/// Normalized hypervolume of a front against a reference point, where the
/// objective space is first min-max scaled by `lo`/`ref` so HV in [0, 1].
inline double NormalizedHypervolume(const std::vector<ObjectiveVector>& front,
                                    const ObjectiveVector& lo,
                                    const ObjectiveVector& ref) {
  std::vector<ObjectiveVector> scaled;
  scaled.reserve(front.size());
  for (const auto& p : front) {
    ObjectiveVector q(p.size());
    for (size_t i = 0; i < p.size(); ++i) {
      const double range = ref[i] - lo[i];
      q[i] = range > 0 ? (p[i] - lo[i]) / range : 0.0;
    }
    scaled.push_back(std::move(q));
  }
  ObjectiveVector unit_ref(lo.size(), 1.0);
  return Hypervolume2D(scaled, unit_ref);
}

/// Collects objective vectors of a MooRunResult.
inline std::vector<ObjectiveVector> FrontOf(const MooRunResult& r) {
  std::vector<ObjectiveVector> pts;
  pts.reserve(r.pareto.size());
  for (const auto& s : r.pareto) pts.push_back(s.objectives);
  return pts;
}

/// Extends shared bounds from a front (for common-reference HV).
inline void ExtendBounds(const std::vector<ObjectiveVector>& front,
                         ObjectiveVector* lo, ObjectiveVector* hi) {
  for (const auto& p : front) {
    for (size_t i = 0; i < p.size(); ++i) {
      (*lo)[i] = std::min((*lo)[i], p[i]);
      (*hi)[i] = std::max((*hi)[i], p[i]);
    }
  }
}

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace benchutil
}  // namespace sparkopt
