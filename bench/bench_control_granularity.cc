/// \file bench_control_granularity.cc
/// \brief Reproduces Figure 14 (Appendix C.1): query-level control's
/// hypervolume plateaus as the sample budget grows, while fine-grained
/// (per-subQ) control keeps improving — the upper bound of coarse control
/// is strictly below finer control. Evaluated with Weighted Sum over a
/// reduced 2-value-per-parameter space, as in the paper.

#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "moo/baselines.h"
#include "moo/objective_models.h"
#include "workload/tpch.h"

using namespace sparkopt;
using namespace sparkopt::benchutil;

namespace {

/// The paper restricts this experiment to a reduced space with two values
/// per parameter so query-level control can be *fully* explored: snapping
/// each normalized coordinate to {0.25, 0.75} reproduces that setup.
class TwoLevelProblem : public QueryObjectiveFn {
 public:
  explicit TwoLevelProblem(const FlatProblem* inner) : inner_(inner) {}
  size_t dims() const override { return inner_->dims(); }
  ObjectiveVector Eval(const std::vector<double>& x) const override {
    std::vector<double> snapped(x.size());
    for (size_t i = 0; i < x.size(); ++i) {
      snapped[i] = x[i] < 0.5 ? 0.25 : 0.75;
    }
    return inner_->Eval(snapped);
  }

 private:
  const FlatProblem* inner_;
};

}  // namespace

int main() {
  std::printf(
      "==== Figure 14: query-level vs fine-grained control, WS sample "
      "sweep ====\n\n");
  const auto catalog = TpchCatalog(100.0);
  ClusterSpec cluster;
  CostModelParams cost;

  const std::vector<int> budgets =
      FastMode() ? std::vector<int>{500, 2000}
                 : std::vector<int>{500, 2000, 8000, 32000};
  const std::vector<int> qids = {3, 5, 9};

  Table t({"samples", "HV query-level", "HV fine-grained"});
  for (int budget : budgets) {
    double hv_coarse = 0, hv_fine = 0;
    int n = 0;
    for (int qid : qids) {
      auto q = *MakeTpchQuery(qid, &catalog);
      AnalyticSubQModel model(&q, cluster, cost);
      FlatProblem fine(&model, true);
      FlatProblem coarse(&model, false);
      TwoLevelProblem fine2(&fine);
      TwoLevelProblem coarse2(&coarse);
      WsOptions wo;
      wo.samples = budget;
      wo.num_weights = 21;
      wo.seed = 29;
      auto rf = SolveWeightedSum(fine2, fine, wo);
      auto rc = SolveWeightedSum(coarse2, coarse, wo);
      ObjectiveVector lo = {1e300, 1e300}, hi = {-1e300, -1e300};
      ExtendBounds(FrontOf(rf), &lo, &hi);
      ExtendBounds(FrontOf(rc), &lo, &hi);
      if (hi[0] <= lo[0] || hi[1] <= lo[1]) continue;
      ObjectiveVector ref = {hi[0] + 0.1 * (hi[0] - lo[0]),
                             hi[1] + 0.1 * (hi[1] - lo[1])};
      hv_fine += NormalizedHypervolume(FrontOf(rf), lo, ref);
      hv_coarse += NormalizedHypervolume(FrontOf(rc), lo, ref);
      ++n;
    }
    t.AddRow({std::to_string(budget), Fmt("%.3f", hv_coarse / n),
              Fmt("%.3f", hv_fine / n)});
  }
  t.Print();
  std::printf(
      "\n(query-level control plateaus; finer control keeps improving — "
      "the necessity argument for multi-granularity tuning)\n");
  return 0;
}
