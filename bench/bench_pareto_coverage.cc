/// \file bench_pareto_coverage.cc
/// \brief Reproduces Figure 4: Weighted Sum's poor coverage of the Pareto
/// front for TPCH-Q2. Evenly spaced weight vectors collapse onto a couple
/// of distinct solutions (the paper: 11 weights -> 2 points, 101 -> 3),
/// while HMOOC constructs a well-spread front at lower cost, so WUN can
/// actually adapt to the user's preference.

#include <algorithm>
#include <cstdio>
#include <set>

#include "bench_util.h"
#include "moo/baselines.h"
#include "moo/hmooc.h"
#include "moo/objective_models.h"
#include "workload/tpch.h"

using namespace sparkopt;
using namespace sparkopt::benchutil;

int main() {
  std::printf("==== Figure 4: MOO solutions for TPCH-Q2 ====\n\n");
  const auto catalog = TpchCatalog(100.0);
  auto q2 = *MakeTpchQuery(2, &catalog);
  ClusterSpec cluster;
  CostModelParams cost;
  AnalyticSubQModel model(&q2, cluster, cost);
  FlatProblem flat(&model, /*fine_grained=*/false);

  Table t({"method", "weight vectors", "distinct solutions", "front size",
           "solve time (s)"});

  for (const int weights : {11, 101}) {
    WsOptions wo;
    wo.samples = FastMode() ? 2000 : 10000;
    wo.num_weights = weights;
    wo.seed = 3;
    auto ws = SolveWeightedSum(flat, flat, wo);
    // Count distinct objective points among the per-weight winners: the
    // returned set is already deduplicated by Pareto filtering, so count
    // unique points.
    std::set<std::pair<double, double>> distinct;
    for (const auto& s : ws.pareto) {
      distinct.insert({s.objectives[0], s.objectives[1]});
    }
    t.AddRow({"WS (SO per weight)", std::to_string(weights),
              std::to_string(distinct.size()),
              std::to_string(ws.pareto.size()),
              Fmt("%.2f", ws.solve_seconds)});
  }

  HmoocOptions ho;
  ho.seed = 3;
  HmoocSolver solver(&model, ho);
  auto ours = solver.Solve();
  std::set<std::pair<double, double>> distinct;
  for (const auto& s : ours.pareto) {
    distinct.insert({s.objectives[0], s.objectives[1]});
  }
  t.AddRow({"HMOOC3 (ours)", "-", std::to_string(distinct.size()),
            std::to_string(ours.pareto.size()),
            Fmt("%.2f", ours.solve_seconds)});
  t.Print();

  std::printf("\nHMOOC3 front (latency s, cost $):\n");
  auto pts = FrontOf(ours);
  std::sort(pts.begin(), pts.end());
  for (const auto& p : pts) {
    std::printf("  %8.3f  %8.5f\n", p[0], p[1]);
  }
  std::printf("\nWUN recommendations from the HMOOC3 front:\n");
  for (const auto w : {0.1, 0.5, 0.9}) {
    const size_t i = ours.Recommend({w, 1.0 - w});
    std::printf("  weights (%.1f, %.1f) -> latency %.3fs cost $%.5f\n", w,
                1.0 - w, ours.pareto[i].objectives[0],
                ours.pareto[i].objectives[1]);
  }
  return 0;
}
