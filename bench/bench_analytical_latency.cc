/// \file bench_analytical_latency.cc
/// \brief Reproduces Figure 5: the distribution of analytical latency /
/// actual latency and their Pearson correlation under the default Spark
/// configuration, validating analytical latency (sum of task latencies
/// over total cores) as the stage-level modeling target (Section 4.2).
/// The paper reports correlations of 97.2% (TPC-H) and 87.6% (TPC-DS)
/// with the ratio distribution clustered around 1.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "tuner/tuner.h"
#include "workload/tpcds.h"
#include "workload/tpch.h"

using namespace sparkopt;
using namespace sparkopt::benchutil;

namespace {

void RunBenchmarkSet(const char* name, const std::vector<Query>& queries) {
  Tuner tuner(TunerOptions{});
  std::vector<double> analytical, actual, ratio;
  for (const auto& q : queries) {
    auto out = tuner.Run(q, TuningMethod::kDefault);
    if (!out.ok()) continue;
    analytical.push_back(out->execution.exec.analytical_latency);
    actual.push_back(out->execution.exec.latency);
    ratio.push_back(analytical.back() / std::max(actual.back(), 1e-9));
  }
  const double corr = PearsonCorrelation(analytical, actual);
  std::printf("%s: %zu queries, Pearson(analytical, actual) = %.1f%%\n",
              name, actual.size(), 100.0 * corr);
  std::printf("  ratio analytical/actual: P10 %.2f  P50 %.2f  P90 %.2f\n",
              Percentile(ratio, 10), Percentile(ratio, 50),
              Percentile(ratio, 90));
  // CDF of the ratio (Figure 5's curve).
  std::sort(ratio.begin(), ratio.end());
  std::printf("  CDF:");
  for (double p : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    const size_t i =
        std::min(ratio.size() - 1,
                 static_cast<size_t>(p * (ratio.size() - 1)));
    std::printf("  %.0f%%<=%.2f", 100 * p, ratio[i]);
  }
  std::printf("\n\n");
}

}  // namespace

int main() {
  std::printf(
      "==== Figure 5: analytical latency vs actual latency (default "
      "configuration) ====\n\n");
  const auto tpch = TpchCatalog(100.0);
  RunBenchmarkSet("TPC-H", TpchBenchmark(&tpch));
  const auto tpcds = TpcdsCatalog(100.0);
  auto ds_queries = TpcdsBenchmark(&tpcds);
  if (FastMode()) ds_queries.resize(30);
  RunBenchmarkSet("TPC-DS", ds_queries);
  return 0;
}
