/// \file tuning_service.cpp
/// \brief Tuning-as-a-service walkthrough: publish an artifact bundle,
/// start the in-process TuningService, and serve concurrent multi-tenant
/// tuning requests over one shared model — including a mid-flight
/// artifact hot-swap to a learned objective model.
///
///   ./tuning_service [requests_per_query]
///
/// Shows the full request path from DESIGN.md section 15: per-tenant
/// admission quotas, the bounded queue, the shared cross-query eval
/// cache warming up across requests, and version routing during a
/// hot-swap.

#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <vector>

#include "service/model_bootstrap.h"
#include "service/tuning_service.h"
#include "workload/tpch.h"

int main(int argc, char** argv) {
  using namespace sparkopt;
  const int reps = argc > 1 ? std::atoi(argv[1]) : 4;

  // 1. Assemble and publish version 1: workload + cluster + solver
  // budget, analytic objective model (no regressor yet).
  auto v1 = std::make_shared<ServiceArtifacts>();
  v1->name = "analytic";
  v1->hmooc.theta_c_samples = 24;
  v1->hmooc.clusters = 6;
  v1->hmooc.theta_p_samples = 32;
  v1->hmooc.enriched_samples = 8;
  v1->hmooc.num_threads = 1;
  const auto* catalog = v1->AddCatalog(TpchCatalog(100.0));
  for (int qid : {3, 5, 9}) {
    auto q = MakeTpchQuery(qid, catalog);
    if (!q.ok() || !v1->AddQuery(*q).ok()) return 1;
  }

  ArtifactRegistry registry;
  registry.Publish(v1);

  // 2. Start the service: 4 concurrent sessions, a bounded admission
  // queue, and a token-bucket quota for the "batch" tenant ("ad-hoc" is
  // unthrottled).
  TuningServiceOptions opts;
  opts.sessions = 4;
  opts.queue_capacity = 64;
  opts.quotas["batch"] = TenantQuota{/*rate_per_sec=*/0.0,
                                     /*burst=*/static_cast<double>(reps)};
  TuningService service(&registry, opts);

  // 3. Concurrent requests from two tenants over the query mix. Repeats
  // of a (query, version) pair hit the shared eval cache.
  const std::vector<std::string> mix = {"TPCH-Q3", "TPCH-Q5", "TPCH-Q9"};
  std::vector<std::future<Result<TuningServiceResult>>> futures;
  for (int r = 0; r < reps; ++r) {
    for (const auto& name : mix) {
      futures.push_back(service.Submit({name, "ad-hoc"}));
    }
    futures.push_back(service.Submit({"TPCH-Q9", "batch", {0.1, 0.9}}));
  }
  for (auto& f : futures) {
    auto res = f.get();
    if (!res.ok()) {
      std::printf("rejected  : %s\n", res.status().ToString().c_str());
      continue;
    }
    std::printf(
        "v%llu %-8s: front %2zu, chose latency %7.2fs cost $%.4f  "
        "(solve %5.1f ms, cache %llu hit / %llu miss)\n",
        static_cast<unsigned long long>(res->artifact_version),
        res->query_name.c_str(), res->moo.pareto.size(),
        res->chosen.objectives[0], res->chosen.objectives[1],
        res->solve_seconds * 1e3,
        static_cast<unsigned long long>(res->shared_cache_hits),
        static_cast<unsigned long long>(res->shared_cache_misses));
  }

  // 4. Hot-swap: assemble version 2 with the same workload plus a subQ
  // regressor trained from it. In-flight requests keep v1; new ones get
  // v2 (bundles are immutable once published, so v2 is built fresh).
  auto v2 = std::make_shared<ServiceArtifacts>();
  v2->name = "learned";
  v2->hmooc = v1->hmooc;
  const auto* catalog2 = v2->AddCatalog(TpchCatalog(100.0));
  for (int qid : {3, 5, 9}) {
    auto q = MakeTpchQuery(qid, catalog2);
    if (!q.ok() || !v2->AddQuery(*q).ok()) return 1;
  }
  std::vector<const Query*> queries;
  for (const auto& name : mix) queries.push_back(v2->FindQuery(name));
  BootstrapOptions bo;
  bo.samples_per_query = 16;
  auto reg = FitSubQRegressor(queries, v2->cluster, v2->cost_params,
                              v2->prices, bo);
  if (!reg.ok()) {
    std::fprintf(stderr, "bootstrap: %s\n", reg.status().ToString().c_str());
    return 1;
  }
  v2->subq_model = *reg;
  registry.Publish(std::move(v2));
  std::printf("\nhot-swapped to version %llu (learned model)\n\n",
              static_cast<unsigned long long>(registry.current_version()));

  auto swapped = service.Submit({"TPCH-Q3", "ad-hoc"}).get();
  if (swapped.ok()) {
    std::printf("v%llu %-8s: front %2zu via %s model (solve %5.1f ms)\n",
                static_cast<unsigned long long>(swapped->artifact_version),
                swapped->query_name.c_str(), swapped->moo.pareto.size(),
                swapped->used_learned_model ? "learned" : "analytic",
                swapped->solve_seconds * 1e3);
  }

  // 5. Service-level accounting.
  const auto stats = service.stats();
  std::printf(
      "\nserved %llu / submitted %llu (queue-full %llu, quota %llu)\n",
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.rejected_queue_full),
      static_cast<unsigned long long>(stats.rejected_quota));
  if (service.shared_cache() != nullptr) {
    std::printf("shared cache: %.1f%% hit rate, %zu entries\n",
                100.0 * service.shared_cache()->hit_rate(),
                service.shared_cache()->occupancy());
  }
  return 0;
}
