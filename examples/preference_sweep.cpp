/// \file preference_sweep.cpp
/// \brief Cost-performance reasoning in the cloud (the paper's Table 5 /
/// Figure 4 story): sweep the latency/cost preference vector and show how
/// the multi-objective Pareto front plus Weighted-Utopia-Nearest adapts,
/// while single-objective fixed weights (SO-FW) barely moves.
///
///   ./preference_sweep [tpch_query_id]

#include <cstdio>
#include <cstdlib>

#include "tuner/tuner.h"
#include "workload/tpch.h"

int main(int argc, char** argv) {
  using namespace sparkopt;
  const int qid = argc > 1 ? std::atoi(argv[1]) : 5;

  const auto catalog = TpchCatalog(100.0);
  auto query = *MakeTpchQuery(qid, &catalog);

  TunerOptions options;
  Tuner probe(options);
  const auto baseline = *probe.Run(query, TuningMethod::kDefault);
  std::printf("%s, default: latency %.2fs cost $%.4f\n\n",
              query.name.c_str(), baseline.execution.exec.latency,
              baseline.execution.exec.cost);

  // The Pareto front computed once (it does not depend on the weights).
  auto front = *probe.Run(query, TuningMethod::kHmooc3);
  std::printf("HMOOC3 Pareto front (%zu points, solved in %.2fs):\n",
              front.moo.pareto.size(), front.solve_seconds);
  for (const auto& sol : front.moo.pareto) {
    std::printf("  predicted latency %7.2fs  cost $%.4f   (%d cores x %d)\n",
                sol.objectives[0], sol.objectives[1],
                static_cast<int>(sol.conf[kExecutorCores]),
                static_cast<int>(sol.conf[kExecutorInstances]));
  }

  std::printf("\n%-12s | %-25s | %-25s\n", "pref (l,c)", "HMOOC3+ lat/cost",
              "SO-FW lat/cost");
  const double prefs[][2] = {
      {0.0, 1.0}, {0.1, 0.9}, {0.5, 0.5}, {0.9, 0.1}, {1.0, 0.0}};
  for (const auto& p : prefs) {
    TunerOptions o;
    o.preference = {p[0], p[1]};
    Tuner tuner(o);
    auto ours = *tuner.Run(query, TuningMethod::kHmooc3Plus);
    auto sofw = *tuner.Run(query, TuningMethod::kSoFixedWeights);
    auto pct = [&](double v, double base) {
      return 100.0 * (v / base - 1.0);
    };
    const double bl = baseline.execution.exec.latency;
    const double bc = baseline.execution.exec.cost;
    std::printf(
        "(%.1f, %.1f)   | %6.2fs (%+5.0f%%) $%.4f (%+5.0f%%) | %6.2fs "
        "(%+5.0f%%) $%.4f (%+5.0f%%)\n",
        p[0], p[1], ours.execution.exec.latency,
        pct(ours.execution.exec.latency, bl), ours.execution.exec.cost,
        pct(ours.execution.exec.cost, bc), sofw.execution.exec.latency,
        pct(sofw.execution.exec.latency, bl), sofw.execution.exec.cost,
        pct(sofw.execution.exec.cost, bc));
  }
  return 0;
}
