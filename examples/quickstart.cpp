/// \file quickstart.cpp
/// \brief Minimal end-to-end use of the sparkopt public API:
/// build a TPC-H query, run the HMOOC3+ optimizer with a
/// latency-leaning preference, and compare against the Spark defaults.
///
///   ./quickstart [tpch_query_id]
///
/// Set SPARKOPT_TRACE_OUT=<path> to record the session and export a
/// Chrome trace_event JSON viewable in chrome://tracing or Perfetto.

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "obs/trace.h"
#include "tuner/tuner.h"
#include "workload/tpch.h"

int main(int argc, char** argv) {
  using namespace sparkopt;
  const int qid = argc > 1 ? std::atoi(argv[1]) : 9;

  // Optional observability: a session records spans and metrics from
  // every instrumented layer while it is alive.
  const char* trace_out = std::getenv("SPARKOPT_TRACE_OUT");
  std::unique_ptr<obs::Session> session;
  if (trace_out != nullptr && trace_out[0] != '\0') {
    session = std::make_unique<obs::Session>();
  }

  // 1. A workload: TPC-H at scale factor 100 (the paper's setup).
  const auto catalog = TpchCatalog(100.0);
  auto query_or = MakeTpchQuery(qid, &catalog);
  if (!query_or.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 query_or.status().ToString().c_str());
    return 1;
  }
  const Query& query = *query_or;
  std::printf("query %s: %zu operators, %d subQs\n", query.name.c_str(),
              query.plan.num_ops(), query.NumSubQueries());

  // 2. The tuner: preference 90%% latency / 10%% cost, as in Table 4.
  TunerOptions options;
  options.preference = {0.9, 0.1};
  Tuner tuner(options);

  // 3. Baseline: Spark defaults with plain AQE.
  auto baseline = *tuner.Run(query, TuningMethod::kDefault);
  std::printf("default   : latency %7.2fs  cost $%.4f\n",
              baseline.execution.exec.latency,
              baseline.execution.exec.cost);

  // 4. The full system: compile-time HMOOC3 + runtime optimization.
  auto tuned = *tuner.Run(query, TuningMethod::kHmooc3Plus);
  std::printf(
      "HMOOC3+   : latency %7.2fs  cost $%.4f  (solved in %.2fs, "
      "Pareto set of %zu)\n",
      tuned.execution.exec.latency, tuned.execution.exec.cost,
      tuned.solve_seconds, tuned.moo.pareto.size());

  const auto& conf = tuned.chosen.conf;
  std::printf(
      "chosen theta_c: %d cores x %d executors, %.0f GB memory each\n",
      static_cast<int>(conf[kExecutorCores]),
      static_cast<int>(conf[kExecutorInstances]), conf[kExecutorMemoryGb]);
  std::printf("latency reduction: %.0f%%\n",
              100.0 * (1.0 - tuned.execution.exec.latency /
                                 baseline.execution.exec.latency));

  if (session != nullptr) {
    if (session->trace().WriteChromeJson(trace_out)) {
      std::printf("trace: wrote %zu events to %s\n",
                  session->trace().size(), trace_out);
    } else {
      std::fprintf(stderr, "trace: failed to write %s\n", trace_out);
      return 1;
    }
  }
  return 0;
}
