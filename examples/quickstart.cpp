/// \file quickstart.cpp
/// \brief Minimal end-to-end use of the sparkopt public API:
/// build a TPC-H query, run the HMOOC3+ optimizer with a
/// latency-leaning preference, and compare against the Spark defaults.
///
///   ./quickstart [tpch_query_id]

#include <cstdio>
#include <cstdlib>

#include "tuner/tuner.h"
#include "workload/tpch.h"

int main(int argc, char** argv) {
  using namespace sparkopt;
  const int qid = argc > 1 ? std::atoi(argv[1]) : 9;

  // 1. A workload: TPC-H at scale factor 100 (the paper's setup).
  const auto catalog = TpchCatalog(100.0);
  auto query_or = MakeTpchQuery(qid, &catalog);
  if (!query_or.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 query_or.status().ToString().c_str());
    return 1;
  }
  const Query& query = *query_or;
  std::printf("query %s: %zu operators, %d subQs\n", query.name.c_str(),
              query.plan.num_ops(), query.NumSubQueries());

  // 2. The tuner: preference 90%% latency / 10%% cost, as in Table 4.
  TunerOptions options;
  options.preference = {0.9, 0.1};
  Tuner tuner(options);

  // 3. Baseline: Spark defaults with plain AQE.
  auto baseline = *tuner.Run(query, TuningMethod::kDefault);
  std::printf("default   : latency %7.2fs  cost $%.4f\n",
              baseline.execution.exec.latency,
              baseline.execution.exec.cost);

  // 4. The full system: compile-time HMOOC3 + runtime optimization.
  auto tuned = *tuner.Run(query, TuningMethod::kHmooc3Plus);
  std::printf(
      "HMOOC3+   : latency %7.2fs  cost $%.4f  (solved in %.2fs, "
      "Pareto set of %zu)\n",
      tuned.execution.exec.latency, tuned.execution.exec.cost,
      tuned.solve_seconds, tuned.moo.pareto.size());

  const auto& conf = tuned.chosen.conf;
  std::printf(
      "chosen theta_c: %d cores x %d executors, %.0f GB memory each\n",
      static_cast<int>(conf[kExecutorCores]),
      static_cast<int>(conf[kExecutorInstances]), conf[kExecutorMemoryGb]);
  std::printf("latency reduction: %.0f%%\n",
              100.0 * (1.0 - tuned.execution.exec.latency /
                                 baseline.execution.exec.latency));
  return 0;
}
