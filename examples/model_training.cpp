/// \file model_training.cpp
/// \brief The modeling pipeline of Section 4: collect execution traces
/// from LHS-sampled configurations over parametric query variants, train
/// the subQ / QS / collapsed-LQP regressors, and report the Table-3
/// accuracy metrics, then use the learned subQ model inside HMOOC.
///
///   ./model_training [runs]

#include <cstdio>
#include <cstdlib>

#include "model/trainer.h"
#include "tuner/tuner.h"
#include "workload/tpch.h"

int main(int argc, char** argv) {
  using namespace sparkopt;
  const int runs = argc > 1 ? std::atoi(argv[1]) : 400;

  const auto catalog = TpchCatalog(100.0);
  ClusterSpec cluster;
  CostModelParams cost;

  std::printf("collecting traces from %d (variant, configuration) runs...\n",
              runs);
  TraceCollector collector(cluster, cost);
  ModelDataset subq, qs, lqp;
  TraceOptions topts;
  topts.runs = runs;
  topts.seed = 42;
  auto st = collector.Collect(
      [&](int qid, uint64_t v) { return MakeTpchQuery(qid, &catalog, v); },
      22, topts, &subq, &qs, &lqp);
  if (!st.ok()) {
    std::fprintf(stderr, "collect failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("samples: %zu subQ, %zu QS, %zu collapsed-LQP\n\n",
              subq.size(), qs.size(), lqp.size());

  auto s1 = SplitDataset(subq, 1);
  auto s2 = SplitDataset(qs, 2);
  auto s3 = SplitDataset(lqp, 3);
  ModelSuite suite;
  Mlp::TrainOptions mopts;
  mopts.epochs = 150;
  mopts.patience = 25;
  st = suite.Train(s1.train, s2.train, s3.train, 7, mopts);
  if (!st.ok()) {
    std::fprintf(stderr, "train failed: %s\n", st.ToString().c_str());
    return 1;
  }

  auto report = [&](const char* target, const Regressor& model,
                    const ModelDataset& test) {
    auto perf = suite.Evaluate(model, test);
    std::printf(
        "%-4s latency: WMAPE %.3f  P50 %.3f  P90 %.3f  corr %.2f | IO: "
        "WMAPE %.3f corr %.2f | %.0fK preds/s\n",
        target, perf.latency.wmape, perf.latency.p50, perf.latency.p90,
        perf.latency.corr, perf.io.wmape, perf.io.corr,
        perf.throughput_per_sec / 1000.0);
  };
  report("subQ", suite.subq_model(), s1.test);
  report("QS", suite.qs_model(), s2.test);
  report("LQP", suite.lqp_model(), s3.test);

  // Drive HMOOC with the learned model (the paper's actual loop).
  std::printf("\ntuning TPCH-Q9 with the learned subQ model:\n");
  TunerOptions options;
  options.learned_subq_model = &suite.subq_model();
  Tuner tuner(options);
  auto q = *MakeTpchQuery(9, &catalog);
  auto def = *tuner.Run(q, TuningMethod::kDefault);
  auto h3p = *tuner.Run(q, TuningMethod::kHmooc3Plus);
  std::printf("default: %.2fs | HMOOC3+ (learned): %.2fs (%.0f%% faster, "
              "solve %.2fs)\n",
              def.execution.exec.latency, h3p.execution.exec.latency,
              100.0 * (1 - h3p.execution.exec.latency /
                               def.execution.exec.latency),
              h3p.solve_seconds);
  return 0;
}
