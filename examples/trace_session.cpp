/// \file trace_session.cpp
/// \brief Observability walkthrough: tune one TPC-H query end-to-end
/// under an obs::Session, export the Chrome trace (chrome://tracing /
/// Perfetto), and print the aggregated TuningReport as text and JSON.
///
///   ./trace_session [tpch_query_id] [trace_path] [report_path]
///
/// Defaults: query 9, trace.json, no report file (report JSON prints to
/// stdout only).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/report.h"
#include "obs/trace.h"
#include "tuner/tuner.h"
#include "workload/tpch.h"

int main(int argc, char** argv) {
  using namespace sparkopt;
  const int qid = argc > 1 ? std::atoi(argv[1]) : 9;
  const std::string trace_path = argc > 2 ? argv[2] : "trace.json";
  const std::string report_path = argc > 3 ? argv[3] : "";

  const auto catalog = TpchCatalog(100.0);
  auto query_or = MakeTpchQuery(qid, &catalog);
  if (!query_or.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 query_or.status().ToString().c_str());
    return 1;
  }
  const Query& query = *query_or;

  TunerOptions options;
  options.preference = {0.9, 0.1};
  Tuner tuner(options);

  // Everything that runs while the session is alive — compile-time
  // solving, runtime re-optimization, model inference, the simulator —
  // records spans and metrics into it.
  obs::Session session;
  auto out = tuner.Run(query, TuningMethod::kHmooc3Plus);
  if (!out.ok()) {
    std::fprintf(stderr, "error: %s\n", out.status().ToString().c_str());
    return 1;
  }

  const obs::TuningReport report = BuildTuningReport(*out, session);
  std::printf("%s\n", report.ToText().c_str());
  std::printf("---- report json ----\n%s\n", report.ToJson().c_str());

  if (!session.trace().WriteChromeJson(trace_path)) {
    std::fprintf(stderr, "trace: failed to write %s\n", trace_path.c_str());
    return 1;
  }
  std::printf("trace: wrote %zu events to %s (open in chrome://tracing)\n",
              session.trace().size(), trace_path.c_str());

  if (!report_path.empty()) {
    std::FILE* f = std::fopen(report_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "report: failed to open %s\n",
                   report_path.c_str());
      return 1;
    }
    const std::string body = report.ToJson();
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    std::printf("report: wrote %s\n", report_path.c_str());
  }
  return 0;
}
