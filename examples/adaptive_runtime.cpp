/// \file adaptive_runtime.cpp
/// \brief Demonstrates the adaptive-runtime story of the paper's Figure 3:
/// compile-time cardinality misestimates push the optimizer toward a bad
/// broadcast plan; the runtime optimizer, re-planning on true statistics
/// as stages complete, recovers the good join algorithms.
///
///   ./adaptive_runtime [tpch_query_id]

#include <cstdio>
#include <cstdlib>

#include "tuner/tuner.h"
#include "workload/tpch.h"

int main(int argc, char** argv) {
  using namespace sparkopt;
  const int qid = argc > 1 ? std::atoi(argv[1]) : 8;

  const auto catalog = TpchCatalog(100.0);
  auto query = *MakeTpchQuery(qid, &catalog);
  std::printf("=== %s (%d subQs, %d joins) ===\n", query.name.c_str(),
              query.NumSubQueries(), query.plan.CountOps(OpType::kJoin));

  // Show the compile-time information gap driving the demo.
  std::printf("\ncardinality estimates at the join operators:\n");
  for (size_t i = 0; i < query.plan.num_ops(); ++i) {
    const auto& op = query.plan.op(i);
    if (op.type != OpType::kJoin) continue;
    std::printf("  join op %-2zu: estimated %12.0f rows, true %12.0f rows "
                "(%.2fx off)\n",
                i, op.est_rows, op.true_rows, op.est_rows / op.true_rows);
  }

  TunerOptions options;
  options.preference = {0.9, 0.1};
  Tuner tuner(options);

  auto report = [](const char* label, const TuningOutcome& out) {
    std::printf(
        "%-28s latency %7.2fs  cost $%.4f  joins: %d SMJ / %d SHJ / %d "
        "BHJ\n",
        label, out.execution.exec.latency, out.execution.exec.cost,
        out.execution.exec.smj, out.execution.exec.shj,
        out.execution.exec.bhj);
  };

  std::printf("\n");
  report("default + AQE", *tuner.Run(query, TuningMethod::kDefault));
  report("MO-WS (query-level) + AQE", *tuner.Run(query, TuningMethod::kMoWs));
  report("HMOOC3 (compile only)", *tuner.Run(query, TuningMethod::kHmooc3));
  auto full = *tuner.Run(query, TuningMethod::kHmooc3Plus);
  report("HMOOC3+ (runtime adaptive)", full);

  std::printf(
      "\nruntime optimizer requests: %d sent, %d pruned (%.0f%% of calls "
      "avoided by the Appendix C.2.2 rules)\n",
      full.runtime_stats.TotalSent(), full.runtime_stats.TotalPruned(),
      100.0 * full.runtime_stats.PrunedFraction());
  std::printf("runtime optimization overhead: %.3fs over %d waves\n",
              full.runtime_overhead_seconds, full.execution.waves);
  return 0;
}
