#include "exec/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace sparkopt {

namespace {
constexpr double kMb = 1024.0 * 1024.0;
}

double TaskCostModel::TaskLatency(const QueryStage& stage, int task_idx,
                                  const ContextParams& theta_c,
                                  uint64_t seed) const {
  const double stage_bytes = std::max(stage.input_bytes, 1.0);
  const double part_bytes =
      task_idx < static_cast<int>(stage.partition_bytes.size())
          ? stage.partition_bytes[task_idx]
          : stage_bytes / std::max(stage.num_partitions, 1);
  const double share = part_bytes / stage_bytes;

  // ---- CPU ---------------------------------------------------------------
  // Work is proportional to the partition's share of the stage input.
  double cpu_s = stage.cpu_work * share / params_.cpu_rows_per_sec;
  // GC pressure: very high memory.fraction leaves little execution
  // headroom; very low wastes cache. Mild U-shape around 0.6.
  const double mf = theta_c.memory_fraction;
  cpu_s *= 1.0 + params_.gc_pressure_penalty * (mf - 0.6) * (mf - 0.6) / 0.09;

  // ---- IO ------------------------------------------------------------
  double io_s = 0.0;
  if (stage.is_scan_stage) {
    // Scans compete for node disk bandwidth when many tasks per node.
    const double tasks_per_node =
        std::max(1.0, static_cast<double>(theta_c.TotalCores()) /
                          std::max(cluster_.nodes, 1));
    const double eff_mbps =
        std::min(params_.scan_mbps_per_task,
                 cluster_.disk_mbps / std::max(1.0, tasks_per_node * 0.25));
    io_s += part_bytes / kMb / eff_mbps;
  }
  if (stage.shuffle_read_bytes > 0.0) {
    const double frac = stage.shuffle_read_bytes / stage_bytes;
    double read_bytes = part_bytes * frac;
    double read_mbps = params_.shuffle_read_mbps;
    // Bigger in-flight buffers (k5) improve fetch pipelining, saturating
    // around 96 MB.
    read_mbps *= 0.65 + 0.35 * std::min(
                            1.0, theta_c.reducer_max_size_in_flight_mb / 96.0);
    double cpu_factor = 1.0;
    if (theta_c.shuffle_compress) {
      read_bytes *= params_.compress_ratio;
      cpu_factor = params_.compress_cpu_factor;
    }
    io_s += read_bytes / kMb / read_mbps;
    cpu_s *= cpu_factor;
  }
  if (stage.exchanges_output && stage.output_bytes > 0.0) {
    double write_bytes =
        stage.output_bytes / std::max(stage.num_partitions, 1);
    double write_mbps = params_.shuffle_write_mbps;
    // Bypass-merge (k6): when the downstream partition count is small the
    // sort-based merge is skipped, improving write throughput.
    if (stage.num_partitions <= theta_c.shuffle_bypass_merge_threshold) {
      write_mbps *= 1.25;
    }
    if (theta_c.shuffle_compress) {
      write_bytes *= params_.compress_ratio;
    }
    io_s += write_bytes / kMb / write_mbps;
  }

  // ---- Memory pressure -------------------------------------------------
  // Hash joins and aggregates hold a working set ~1.6x the partition; a
  // partition exceeding the per-task execution memory spills.
  double working_mb = part_bytes / kMb;
  if (stage.has_join || stage.sort_work > 0.0) working_mb *= 1.6;
  working_mb += stage.broadcast_bytes / kMb;  // resident broadcast table
  const double mem_mb = std::max(theta_c.MemoryPerTaskMb(), 64.0);
  double spill_mult = 1.0;
  if (working_mb > mem_mb) {
    spill_mult +=
        params_.spill_penalty * std::min(3.0, working_mb / mem_mb - 1.0);
  }

  double latency =
      params_.task_overhead_s + (cpu_s + io_s) * spill_mult;

  if (params_.noise_sigma > 0.0) {
    Rng rng(HashCombine(seed, HashCombine(stage.id * 1315423911ULL,
                                          static_cast<uint64_t>(task_idx))));
    latency *= rng.LogNormal(0.0, params_.noise_sigma);
  }
  return latency;
}

bool TaskCostModel::TaskSpills(const QueryStage& stage, int task_idx,
                               const ContextParams& theta_c) const {
  const double stage_bytes = std::max(stage.input_bytes, 1.0);
  const double part_bytes =
      task_idx < static_cast<int>(stage.partition_bytes.size())
          ? stage.partition_bytes[task_idx]
          : stage_bytes / std::max(stage.num_partitions, 1);
  // Must mirror the memory-pressure rule in TaskLatency.
  double working_mb = part_bytes / kMb;
  if (stage.has_join || stage.sort_work > 0.0) working_mb *= 1.6;
  working_mb += stage.broadcast_bytes / kMb;
  const double mem_mb = std::max(theta_c.MemoryPerTaskMb(), 64.0);
  return working_mb > mem_mb;
}

double TaskCostModel::StageSetupLatency(const QueryStage& stage,
                                        const ContextParams& theta_c) const {
  double setup = params_.stage_overhead_s;
  if (stage.broadcast_bytes > 0.0) {
    // Driver collects the build side, then every executor pulls a copy;
    // contention grows with sqrt(instances).
    const double copies = std::sqrt(
        std::max(1.0, static_cast<double>(theta_c.executor_instances)));
    setup += stage.broadcast_bytes * copies / kMb / params_.broadcast_mbps;
    // Per-executor hash-table build (rows approximated by bytes / 96B).
    const double build_rows = stage.broadcast_bytes / 96.0;
    setup += build_rows / params_.cpu_rows_per_sec;
  }
  return setup;
}

double TaskCostModel::StageIoBytes(const QueryStage& stage,
                                   const ContextParams& theta_c) const {
  double io = 0.0;
  if (stage.is_scan_stage) io += stage.input_bytes;
  double shuffle = stage.shuffle_read_bytes;
  double write = stage.exchanges_output ? stage.output_bytes : 0.0;
  if (theta_c.shuffle_compress) {
    shuffle *= params_.compress_ratio;
    write *= params_.compress_ratio;
  }
  io += shuffle + write;
  io += stage.broadcast_bytes *
        std::max(1, theta_c.executor_instances);
  return io;
}

}  // namespace sparkopt
