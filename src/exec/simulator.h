#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "exec/cost_model.h"

/// \file simulator.h
/// \brief Event-driven execution of a physical plan on the simulated
/// cluster: tasks from concurrently ready stages share the query's
/// executor cores (k1 x k3), reproducing the resource-contention effects
/// that motivate the paper's analytical-latency modeling target.

namespace sparkopt {

/// Execution record of one stage.
struct StageExecution {
  int stage_id = -1;
  int subq_id = -1;
  int wave = 0;  ///< AQE wave index this stage executed in (0 = first)
  /// Number of canonical subQs merged into this stage (> 1 when broadcast
  /// joins collapsed stage boundaries). Stage-level model samples use
  /// only unmerged stages, whose target matches one subQ exactly.
  int merged_subqs = 1;
  double start = 0.0;
  double end = 0.0;
  /// Sum of task durations (the numerator of analytical latency).
  double task_time_sum = 0.0;
  /// Analytical latency = task_time_sum / total cores (Section 4.2).
  double analytical_latency = 0.0;
  double io_bytes = 0.0;
  int num_tasks = 0;
  /// gamma features: contention observed when the stage started.
  double parallel_running_tasks = 0.0;
  double parallel_waiting_tasks = 0.0;
  double finished_task_mean_s = 0.0;
};

/// Execution record of a full query (or of one AQE wave).
struct QueryExecution {
  double latency = 0.0;             ///< wall-clock makespan (seconds)
  double analytical_latency = 0.0;  ///< sum over stages (Section 4.2)
  double io_bytes = 0.0;
  double cpu_hours = 0.0;
  double mem_gb_hours = 0.0;
  double cost = 0.0;                ///< CloudCost dollars
  std::vector<StageExecution> stages;
  int smj = 0, shj = 0, bhj = 0;    ///< join-algorithm census
};

/// \brief Executes stage DAGs task-by-task over shared cores.
class Simulator {
 public:
  Simulator(const ClusterSpec& cluster, const CostModelParams& cost_params,
            const PriceBook& prices = PriceBook())
      : cost_model_(cluster, cost_params), prices_(prices) {}

  /// \brief Runs the subset `stage_ids` of `plan` (all dependencies among
  /// them respected; stages in the subset with dependencies outside it are
  /// treated as ready). Returns the makespan record starting at t = 0.
  ///
  /// `interleave_seed` shuffles the dispatch order of equally ready tasks,
  /// modeling the non-deterministic stage interleaving of AQE-off Spark
  /// (Figure 16); pass the same seed for reproducibility.
  QueryExecution RunStages(const PhysicalPlan& plan,
                           const std::vector<int>& stage_ids,
                           const ContextParams& theta_c, uint64_t noise_seed,
                           uint64_t interleave_seed = 0) const;

  /// Runs the entire plan. A nonzero `interleave_seed` randomizes the
  /// dispatch order of concurrently runnable stages (AQE-off behaviour).
  QueryExecution RunAll(const PhysicalPlan& plan,
                        const ContextParams& theta_c, uint64_t noise_seed,
                        uint64_t interleave_seed = 0) const;

  /// Fills cost fields of `exec` given the context and total IO.
  void FinalizeCost(const ContextParams& theta_c, QueryExecution* exec) const;

  const TaskCostModel& cost_model() const { return cost_model_; }
  const PriceBook& prices() const { return prices_; }

 private:
  TaskCostModel cost_model_;
  PriceBook prices_;
};

}  // namespace sparkopt
