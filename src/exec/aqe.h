#pragma once

#include <cstdint>
#include <vector>

#include "exec/simulator.h"
#include "physical/physical_plan.h"

/// \file aqe.h
/// \brief Adaptive Query Execution driver (Figure 2 in the paper).
///
/// Executes a query wave by wave: after each wave of query stages
/// completes, the logical plan is "collapsed" (completed subQs now expose
/// their true cardinalities), the remaining plan is re-optimized by the
/// parametric rules, and optimizer hooks may adjust theta_p for the
/// collapsed plan and theta_s for newly ready stages — exactly the two
/// runtime interception points the paper's OPT plugs into (steps 6/9).

namespace sparkopt {

/// \brief Runtime-optimizer interception points. The default
/// implementation is a no-op (plain Spark AQE with static parameters).
class AqeHooks {
 public:
  virtual ~AqeHooks() = default;

  /// Called after each wave with the updated completion mask, before the
  /// remaining plan is re-planned. May rewrite the per-subQ theta_p
  /// (step 6: collapsed-LQP optimization request).
  virtual void OnPlanCollapsed(const LogicalPlan& plan,
                               const std::vector<SubQuery>& subqs,
                               const std::vector<bool>& completed_subqs,
                               std::vector<PlanParams>* theta_p) {
    (void)plan; (void)subqs; (void)completed_subqs; (void)theta_p;
  }

  /// Called with the stages about to execute. May rewrite the per-subQ
  /// theta_s (step 9: query-stage optimization request).
  virtual void OnStagesReady(const PhysicalPlan& plan,
                             const std::vector<int>& ready_stage_ids,
                             const std::vector<SubQuery>& subqs,
                             std::vector<StageParams>* theta_s) {
    (void)plan; (void)ready_stage_ids; (void)subqs; (void)theta_s;
  }
};

/// Outcome of an adaptive execution.
struct AqeResult {
  QueryExecution exec;        ///< aggregated over all waves
  int waves = 0;              ///< number of stage waves
  int replans = 0;            ///< physical re-planning rounds
  std::vector<JoinDecision> final_joins;  ///< decisions actually executed
};

/// \brief Drives adaptive execution of one query.
class AqeDriver {
 public:
  AqeDriver(const LogicalPlan* plan, const Simulator* simulator)
      : plan_(plan), simulator_(simulator),
        subqs_(plan->DecomposeSubQueries()) {}

  /// Runs the query to completion. `theta_p`/`theta_s` hold one entry per
  /// subQ (fine-grained) or a single entry (query-level); hooks may mutate
  /// them between waves. `adaptive` = false plans once from estimates and
  /// never re-plans (AQE off).
  Result<AqeResult> Run(const ContextParams& theta_c,
                        std::vector<PlanParams> theta_p,
                        std::vector<StageParams> theta_s,
                        AqeHooks* hooks, uint64_t seed,
                        bool adaptive = true) const;

  const std::vector<SubQuery>& subqueries() const { return subqs_; }

 private:
  const LogicalPlan* plan_;
  const Simulator* simulator_;
  std::vector<SubQuery> subqs_;
};

}  // namespace sparkopt
