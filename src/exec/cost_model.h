#pragma once

#include <cstdint>

#include "exec/cluster.h"
#include "params/spark_params.h"
#include "physical/physical_plan.h"

/// \file cost_model.h
/// \brief Task-level cost model: the ground truth the simulator executes
/// and the predictive models learn.
///
/// A task's latency combines CPU work (operator weights scaled by the
/// partition's share of stage input), scan IO, shuffle read/write
/// (affected by compression k7, in-flight buffer k5, and the bypass-merge
/// threshold k6), memory-pressure spills (k2, k8 vs. the partition's
/// working set), and per-task scheduling overhead. Broadcast joins charge
/// a per-executor hash-build plus broadcast network transfer.

namespace sparkopt {

/// Calibration constants of the simulated engine.
struct CostModelParams {
  double cpu_rows_per_sec = 8.0e6;     ///< weighted rows/s per core
  double scan_mbps_per_task = 350.0;   ///< effective scan bandwidth/task
  double shuffle_write_mbps = 220.0;
  double shuffle_read_mbps = 260.0;
  double broadcast_mbps = 700.0;
  double compress_ratio = 0.38;        ///< compressed/uncompressed bytes
  double compress_cpu_factor = 1.18;   ///< CPU overhead of compression
  double task_overhead_s = 0.025;      ///< per-task scheduling overhead
  double stage_overhead_s = 0.12;      ///< per-stage launch overhead
  double spill_penalty = 1.8;          ///< slope of the spill multiplier
  double gc_pressure_penalty = 0.35;   ///< penalty at memory_fraction -> 1
  double noise_sigma = 0.04;           ///< log-normal task noise
};

/// \brief Computes individual task latencies and stage-level auxiliary
/// costs for one query stage under a context configuration.
class TaskCostModel {
 public:
  TaskCostModel(const ClusterSpec& cluster, const CostModelParams& params)
      : cluster_(cluster), params_(params) {}

  /// Latency (seconds) of task `task_idx` of `stage`. `seed` controls the
  /// deterministic noise stream; pass 0 noise via params.noise_sigma = 0.
  double TaskLatency(const QueryStage& stage, int task_idx,
                     const ContextParams& theta_c, uint64_t seed) const;

  /// One-off stage setup cost paid before tasks run (stage launch plus
  /// broadcast distribution and per-executor hash-table builds for BHJ).
  double StageSetupLatency(const QueryStage& stage,
                           const ContextParams& theta_c) const;

  /// Bytes this stage reads from disk + network (for the IO objective).
  double StageIoBytes(const QueryStage& stage,
                      const ContextParams& theta_c) const;

  /// Whether task `task_idx` of `stage` exceeds its execution memory and
  /// spills (the memory-pressure rule inside TaskLatency), for
  /// observability counters.
  bool TaskSpills(const QueryStage& stage, int task_idx,
                  const ContextParams& theta_c) const;

  const CostModelParams& params() const { return params_; }
  const ClusterSpec& cluster() const { return cluster_; }

 private:
  ClusterSpec cluster_;
  CostModelParams params_;
};

}  // namespace sparkopt
