#pragma once

/// \file cluster.h
/// \brief Simulated cluster description and cloud pricing.
///
/// Mirrors the paper's testbed: two 6-node Spark clusters, each node with
/// 32 cores and 768 GB RAM on 100 Gbps Ethernet. Cloud cost follows the
/// paper's objective definition: a weighted combination of CPU-hours,
/// memory-hours, and IO.

namespace sparkopt {

/// Hardware shape of the simulated cluster.
struct ClusterSpec {
  int nodes = 6;
  int cores_per_node = 32;
  double memory_per_node_gb = 768.0;
  double disk_mbps = 900.0;      ///< sequential scan bandwidth per node
  double network_mbps = 2500.0;  ///< effective per-flow shuffle bandwidth

  int TotalCores() const { return nodes * cores_per_node; }
};

/// Cloud price book (arbitrary but fixed units, $). Resource-time
/// dominates, as in real instance pricing; IO is a small additive term —
/// otherwise the cost objective would be configuration-independent and
/// the latency/cost tradeoff would collapse to a single objective.
struct PriceBook {
  double per_core_hour = 0.05;
  double per_gb_mem_hour = 0.005;
  double per_gb_io = 0.0001;
};

/// \brief Cloud cost of holding `cores` cores and `memory_gb` GB for
/// `latency_s` seconds while moving `io_gb` of data.
inline double CloudCost(const PriceBook& prices, int cores, double memory_gb,
                        double latency_s, double io_gb) {
  const double hours = latency_s / 3600.0;
  return prices.per_core_hour * cores * hours +
         prices.per_gb_mem_hour * memory_gb * hours +
         prices.per_gb_io * io_gb;
}

}  // namespace sparkopt
