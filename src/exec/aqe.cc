#include "exec/aqe.h"

#include <algorithm>

#include "analysis/invariants.h"
#include "common/check.h"
#include "common/rng.h"
#include "obs/trace.h"

namespace sparkopt {

Result<AqeResult> AqeDriver::Run(const ContextParams& theta_c,
                                 std::vector<PlanParams> theta_p,
                                 std::vector<StageParams> theta_s,
                                 AqeHooks* hooks, uint64_t seed,
                                 bool adaptive) const {
  AqeResult result;
#ifdef SPARKOPT_VERIFY
  const int verify_cores = std::min(
      theta_c.TotalCores(), simulator_->cost_model().cluster().TotalCores());
#endif
  const size_t m = subqs_.size();
  std::vector<bool> completed(m, false);
  PhysicalPlanner planner(plan_, subqs_);

  AqeHooks default_hooks;
  if (hooks == nullptr) hooks = &default_hooks;

  obs::Span run_span("aqe.run");
  if (!adaptive) {
    // Plan once from estimates, execute the whole DAG in one simulation
    // (random task interleaving across independent stages).
    auto plan_or = planner.Plan(theta_c, theta_p, theta_s,
                                CardinalitySource::kEstimated);
    if (!plan_or.ok()) return plan_or.status();
    // Random task interleaving across independent stages: with AQE off,
    // the whole DAG is scheduled asynchronously (Figure 16).
    result.exec = simulator_->RunAll(*plan_or, theta_c, seed,
                                     HashCombine(seed, 0x1F0FF));
    result.waves = 1;
    result.final_joins = plan_or->join_decisions;
    SPARKOPT_VERIFY_TRACE(result.exec, &*plan_or, verify_cores,
                          "AqeDriver::Run (non-adaptive)");
    return result;
  }

  int wave = 0;
  while (true) {
    obs::Span wave_span("aqe.wave");
    wave_span.Arg("wave", wave);
    // Re-plan the remaining query with true stats for completed subQs.
    obs::Span replan_span("aqe.replan");
    auto plan_or = planner.Plan(theta_c, theta_p, theta_s,
                                CardinalitySource::kEstimated, completed);
    replan_span.End();
    obs::Count("aqe.replans");
    if (!plan_or.ok()) return plan_or.status();
    PhysicalPlan& pplan = *plan_or;
    ++result.replans;

    // A stage is completed when every subQ of its member operators is.
    std::vector<int> subq_of(plan_->num_ops(), -1);
    for (const auto& sq : subqs_) {
      for (int op : sq.op_ids) subq_of[op] = sq.id;
    }
    for (const auto& st : pplan.stages) {
      for (int op : st.op_ids) {
        SPARKOPT_DCHECK_GE(subq_of[op], 0)
            << "stage " << st.id << " executes op " << op
            << " outside the subQ decomposition";
      }
    }
    auto stage_completed = [&](const QueryStage& st) {
      for (int op : st.op_ids) {
        if (!completed[subq_of[op]]) return false;
      }
      return true;
    };
    std::vector<int> ready;
    for (const auto& st : pplan.stages) {
      if (stage_completed(st)) continue;
      bool deps_ok = true;
      for (int d : st.deps) {
        if (!stage_completed(pplan.stages[d])) deps_ok = false;
      }
      for (int d : st.broadcast_deps) {
        if (!stage_completed(pplan.stages[d])) deps_ok = false;
      }
      if (deps_ok) ready.push_back(st.id);
    }
    if (ready.empty()) break;

    // Step 9: query-stage optimization hook; re-plan if theta_s changed.
    auto theta_s_before = theta_s;
    hooks->OnStagesReady(pplan, ready, subqs_, &theta_s);
    bool theta_s_changed = false;
    for (size_t i = 0; i < theta_s.size(); ++i) {
      // Hooks may expand a single shared copy into per-subQ copies; the
      // pre-hook value for index i is then the shared entry 0.
      const auto& before =
          theta_s_before[theta_s_before.size() == 1 ? 0 : i];
      if (theta_s[i].rebalance_small_factor !=
              before.rebalance_small_factor ||
          theta_s[i].coalesce_min_partition_size_mb !=
              before.coalesce_min_partition_size_mb) {
        theta_s_changed = true;
      }
    }
    if (theta_s_changed) {
      obs::Span respan("aqe.replan");
      auto replanned = planner.Plan(theta_c, theta_p, theta_s,
                                    CardinalitySource::kEstimated, completed);
      obs::Count("aqe.replans");
      if (!replanned.ok()) return replanned.status();
      pplan = std::move(*replanned);
      // Ready ids remain valid: stage formation depends on join algos and
      // the completion mask, not theta_s; only partitioning changed.
    }

    // Execute the wave.
    QueryExecution wave_exec = simulator_->RunStages(
        pplan, ready, theta_c, HashCombine(seed, 0xA0E + wave));
    result.exec.latency += wave_exec.latency;
    result.exec.analytical_latency += wave_exec.analytical_latency;
    result.exec.io_bytes += wave_exec.io_bytes;
    for (auto& se : wave_exec.stages) {
      se.start += result.exec.latency - wave_exec.latency;
      se.end += result.exec.latency - wave_exec.latency;
      se.wave = wave;
      // Count the distinct subQs merged into this stage (BHJ collapses).
      std::vector<int> distinct;
      for (int op : pplan.stages[se.stage_id].op_ids) {
        if (std::find(distinct.begin(), distinct.end(), subq_of[op]) ==
            distinct.end()) {
          distinct.push_back(subq_of[op]);
        }
      }
      se.merged_subqs = static_cast<int>(distinct.size());
      result.exec.stages.push_back(se);
    }

    // Record the join decisions of joins executed this wave.
    for (const auto& st : pplan.stages) {
      if (std::find(ready.begin(), ready.end(), st.id) == ready.end()) {
        continue;
      }
      for (int op : st.op_ids) {
        if (plan_->op(op).type != OpType::kJoin) continue;
        for (const auto& jd : pplan.join_decisions) {
          if (jd.op_id == op) result.final_joins.push_back(jd);
        }
      }
    }

    // Mark completion.
    for (int sid : ready) {
      for (int op : pplan.stages[sid].op_ids) {
        completed[subq_of[op]] = true;
      }
    }
    ++wave;
    ++result.waves;
    obs::Count("aqe.waves");

    bool all_done = true;
    for (bool c : completed) {
      if (!c) all_done = false;
    }
    if (all_done) break;

    // Step 6: collapsed-plan optimization hook (theta_p for what remains).
    hooks->OnPlanCollapsed(*plan_, subqs_, completed, &theta_p);
  }

  // Join census + cost from the executed record.
  for (const auto& jd : result.final_joins) {
    switch (jd.algo) {
      case JoinAlgo::kSortMergeJoin: ++result.exec.smj; break;
      case JoinAlgo::kShuffledHashJoin: ++result.exec.shj; break;
      case JoinAlgo::kBroadcastHashJoin: ++result.exec.bhj; break;
    }
  }
  simulator_->FinalizeCost(theta_c, &result.exec);
  // Adaptive traces span several physical plans, so only the plan-free
  // trace invariants (wave ordering, totals) apply here.
  SPARKOPT_VERIFY_TRACE(result.exec, nullptr, verify_cores, "AqeDriver::Run");
  return result;
}

}  // namespace sparkopt
