#include "exec/simulator.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "analysis/invariants.h"
#include "common/check.h"
#include "common/rng.h"
#include "obs/trace.h"

namespace sparkopt {

namespace {

struct PendingStage {
  const QueryStage* stage = nullptr;
  int deps_remaining = 0;
  int next_task = 0;
  int tasks_done = 0;
  double ready_time = 0.0;
  double setup_done_time = 0.0;
  StageExecution record;
  bool started = false;
  bool done = false;
};

}  // namespace

QueryExecution Simulator::RunStages(const PhysicalPlan& plan,
                                    const std::vector<int>& stage_ids,
                                    const ContextParams& theta_c,
                                    uint64_t noise_seed,
                                    uint64_t interleave_seed) const {
  QueryExecution result;
  obs::Span span("sim.run_stages");
  const int total_cores =
      std::min(theta_c.TotalCores(), cost_model_.cluster().TotalCores());

  // Index the subset.
  std::vector<int> in_subset(plan.stages.size(), -1);
  std::vector<PendingStage> pending;
  pending.reserve(stage_ids.size());
  for (int sid : stage_ids) {
    SPARKOPT_DCHECK(sid >= 0 && sid < static_cast<int>(plan.stages.size()))
        << "stage id " << sid << " outside the plan's "
        << plan.stages.size() << " stages";
    SPARKOPT_DCHECK_LT(in_subset[sid], 0)
        << "stage id " << sid << " listed twice in the subset";
    in_subset[sid] = static_cast<int>(pending.size());
    PendingStage ps;
    ps.stage = &plan.stages[sid];
    ps.record.stage_id = sid;
    ps.record.subq_id = plan.stages[sid].subq_id;
    ps.record.num_tasks = plan.stages[sid].num_partitions;
    pending.push_back(ps);
  }
  // Dependency counts restricted to the subset.
  for (auto& ps : pending) {
    for (int d : ps.stage->deps) {
      if (in_subset[d] >= 0) ++ps.deps_remaining;
    }
    for (int d : ps.stage->broadcast_deps) {
      if (in_subset[d] >= 0) ++ps.deps_remaining;
    }
  }

  Rng interleave_rng(interleave_seed == 0 ? 0xC0FFEE : interleave_seed);

  // Event simulation: cores free at times in a min-heap; ready stages hold
  // task queues. Tasks are dispatched round-robin over ready stages (AQE
  // behaviour); a nonzero interleave_seed randomizes the stage order each
  // dispatch round (AQE-off behaviour).
  double now = 0.0;
  std::priority_queue<double, std::vector<double>, std::greater<>> cores;
  for (int i = 0; i < total_cores; ++i) cores.push(0.0);

  // Stage completion bookkeeping. A degree-count pass sizes each
  // dependents list exactly, so the fill pass below never reallocates —
  // this path runs once per simulated (sub)query and the trainer/AQE
  // loops simulate thousands of them.
  std::vector<std::vector<int>> dependents(pending.size());
  {
    std::vector<int> degree(pending.size(), 0);
    for (const auto& ps : pending) {
      for (int d : ps.stage->deps) {
        if (in_subset[d] >= 0) ++degree[in_subset[d]];
      }
      for (int d : ps.stage->broadcast_deps) {
        if (in_subset[d] >= 0) ++degree[in_subset[d]];
      }
    }
    for (size_t i = 0; i < pending.size(); ++i) {
      dependents[i].reserve(degree[i]);
    }
  }
  for (size_t i = 0; i < pending.size(); ++i) {
    for (int d : pending[i].stage->deps) {
      if (in_subset[d] >= 0) dependents[in_subset[d]].push_back(i);
    }
    for (int d : pending[i].stage->broadcast_deps) {
      if (in_subset[d] >= 0) dependents[in_subset[d]].push_back(i);
    }
  }

  double finished_task_time_sum = 0.0;
  int finished_tasks = 0;

  auto count_waiting = [&]() {
    double w = 0.0;
    for (const auto& ps : pending) {
      if (!ps.done && ps.deps_remaining == 0) {
        w += ps.stage->num_partitions - ps.next_task;
      }
    }
    return w;
  };
  auto count_running = [&](double t) {
    // Approximation: cores busy past time t.
    (void)t;
    return static_cast<double>(total_cores - 1);
  };

  int stages_left = static_cast<int>(pending.size());
  // Ready list reused across dispatch rounds (cleared, never freed).
  std::vector<int> ready;
  ready.reserve(pending.size());
  // Track per-core next-free times; dispatch loop.
  while (stages_left > 0) {
    // Collect ready stages with remaining tasks.
    ready.clear();
    for (size_t i = 0; i < pending.size(); ++i) {
      auto& ps = pending[i];
      if (ps.done || ps.deps_remaining > 0) continue;
      if (!ps.started) {
        ps.started = true;
        ps.ready_time = std::max(now, ps.ready_time);
        ps.setup_done_time =
            ps.ready_time +
            cost_model_.StageSetupLatency(*ps.stage, theta_c);
        ps.record.start = ps.ready_time;
        ps.record.parallel_waiting_tasks = count_waiting();
        ps.record.parallel_running_tasks = count_running(now);
        ps.record.finished_task_mean_s =
            finished_tasks > 0 ? finished_task_time_sum / finished_tasks
                               : 0.0;
        ps.record.io_bytes = cost_model_.StageIoBytes(*ps.stage, theta_c);
      }
      if (ps.next_task < ps.stage->num_partitions) {
        ready.push_back(static_cast<int>(i));
      }
    }
    if (ready.empty()) {
      // All runnable tasks dispatched; wait for completions (handled via
      // core pops when tasks were assigned). If nothing is in flight and
      // nothing is ready, the subset had an unsatisfiable dependency.
      bool any_in_flight = false;
      for (const auto& ps : pending) {
        if (ps.started && !ps.done) {
          any_in_flight = true;
          break;
        }
      }
      if (!any_in_flight) break;  // defensive: avoid infinite loop
      // Advance time to the next core completion to let stages finish.
      now = cores.top();
      // Completion processing happens in the per-task loop below; if we
      // are here every task was dispatched, so finish stages directly.
      for (auto& ps : pending) {
        if (ps.started && !ps.done &&
            ps.tasks_done == ps.stage->num_partitions) {
          ps.done = true;
        }
      }
      break;
    }
    if (interleave_seed != 0) interleave_rng.Shuffle(&ready);

    // Dispatch one task per ready stage per round (round-robin fairness).
    for (int pi : ready) {
      auto& ps = pending[pi];
      if (ps.next_task >= ps.stage->num_partitions) continue;
      const int task = ps.next_task++;
      const double dur =
          cost_model_.TaskLatency(*ps.stage, task, theta_c, noise_seed);
      const double core_free = cores.top();
      cores.pop();
      const double start = std::max({core_free, ps.setup_done_time});
      const double end = start + dur;
      cores.push(end);
      now = std::max(now, start);
      ps.record.task_time_sum += dur;
      finished_task_time_sum += dur;
      ++finished_tasks;
      ++ps.tasks_done;
      ps.record.end = std::max(ps.record.end, end);
      if (ps.tasks_done == ps.stage->num_partitions) {
        ps.done = true;
        --stages_left;
        for (int dep : dependents[pi]) {
          auto& dp = pending[dep];
          --dp.deps_remaining;
          // Ready no earlier than the latest dependency end — not the end
          // of whichever dependency happened to be processed last.
          dp.ready_time = std::max(dp.ready_time, ps.record.end);
        }
      }
    }
  }

  // Aggregate.
  double makespan = 0.0;
  for (auto& ps : pending) {
    ps.record.analytical_latency =
        ps.record.task_time_sum / std::max(total_cores, 1);
    makespan = std::max(makespan, ps.record.end);
    result.analytical_latency += ps.record.analytical_latency;
    result.io_bytes += ps.record.io_bytes;
    result.stages.push_back(ps.record);
  }
  result.latency = makespan;

  // Observability: per-session execution counters. Spill detection walks
  // every partition, so the loop runs only when a sink is attached.
  if (obs::Session* sess = obs::Session::Current()) {
    uint64_t tasks = 0, spilled = 0;
    double shuffle_bytes = 0.0;
    for (const auto& ps : pending) {
      tasks += static_cast<uint64_t>(ps.record.num_tasks);
      shuffle_bytes += ps.stage->shuffle_read_bytes;
      for (int t = 0; t < ps.stage->num_partitions; ++t) {
        if (cost_model_.TaskSpills(*ps.stage, t, theta_c)) ++spilled;
      }
    }
    auto& m = sess->metrics();
    m.counter("sim.stages").Add(pending.size());
    m.counter("sim.tasks").Add(tasks);
    m.counter("sim.spilled_tasks").Add(spilled);
    m.counter("sim.runs").Add(1);
    m.gauge("sim.shuffle_read_bytes").Add(shuffle_bytes);
    m.gauge("sim.io_bytes").Add(result.io_bytes);
    m.gauge("sim.last_makespan_s").Set(makespan);
    m.gauge("sim.last_stage_count").Set(static_cast<double>(pending.size()));
    span.Arg("stages", static_cast<double>(pending.size()));
    span.Arg("tasks", static_cast<double>(tasks));
    span.Arg("makespan_s", makespan);
  }
  FinalizeCost(theta_c, &result);
  SPARKOPT_VERIFY_TRACE(result, &plan, total_cores, "Simulator::RunStages");
  return result;
}

QueryExecution Simulator::RunAll(const PhysicalPlan& plan,
                                 const ContextParams& theta_c,
                                 uint64_t noise_seed,
                                 uint64_t interleave_seed) const {
  std::vector<int> ids;
  ids.reserve(plan.stages.size());
  for (const auto& st : plan.stages) ids.push_back(st.id);
  QueryExecution exec =
      RunStages(plan, ids, theta_c, noise_seed, interleave_seed);
  exec.smj = plan.CountJoins(JoinAlgo::kSortMergeJoin);
  exec.shj = plan.CountJoins(JoinAlgo::kShuffledHashJoin);
  exec.bhj = plan.CountJoins(JoinAlgo::kBroadcastHashJoin);
  return exec;
}

void Simulator::FinalizeCost(const ContextParams& theta_c,
                             QueryExecution* exec) const {
  const int cores =
      std::min(theta_c.TotalCores(), cost_model_.cluster().TotalCores());
  const double mem_gb =
      theta_c.executor_memory_gb * theta_c.executor_instances;
  exec->cpu_hours = cores * exec->latency / 3600.0;
  exec->mem_gb_hours = mem_gb * exec->latency / 3600.0;
  exec->cost = CloudCost(prices_, cores, mem_gb, exec->latency,
                         exec->io_bytes / (1024.0 * 1024.0 * 1024.0));
}

}  // namespace sparkopt
