#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/check.h"

/// \file arena.h
/// \brief Monotonic per-session arena for solve-path temporaries.
///
/// The solve path (HMOOC DAG aggregation in particular) builds many
/// short-lived variable-length buffers — choice-row matrices, thinning
/// staging — whose lifetimes all end together when the aggregation
/// finishes. A MonotonicArena hands out pointer-bump allocations from a
/// small list of blocks and releases everything at once with Reset(),
/// which keeps the blocks: after the first call has grown the arena to
/// its high-water mark, steady-state Reset()/Allocate() cycles perform
/// no heap allocation at all (the property the alloc-probe tests pin).
///
/// Ownership contract (mirrors ParetoScratch): the arena is caller-owned
/// — create one per thread or per solver task, pass it down, Reset() it
/// at the start of each solve. It is NOT thread-safe; concurrent users
/// need one arena each. Allocations are never individually freed and
/// trivially-destructible payloads only (the arena never runs
/// destructors).

namespace sparkopt {

class MonotonicArena {
 public:
  /// `block_bytes` is the granularity of growth; oversized requests get
  /// a dedicated block of exactly the requested size.
  explicit MonotonicArena(size_t block_bytes = 1 << 16)
      : block_bytes_(block_bytes) {}

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  /// Returns `count` default-initialized (i.e. uninitialized for
  /// arithmetic types) elements of trivially-destructible type T,
  /// aligned for T. Valid until the next Reset().
  template <typename T>
  T* AllocArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "MonotonicArena never runs destructors");
    if (count == 0) return nullptr;
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  /// Raw aligned allocation. `align` must be a power of two.
  void* Allocate(size_t bytes, size_t align) {
    SPARKOPT_DCHECK((align & (align - 1)) == 0) << "non-power-of-two align";
    while (block_ < blocks_.size()) {
      Block& b = blocks_[block_];
      const uintptr_t base = reinterpret_cast<uintptr_t>(b.data.get());
      const uintptr_t cur = (base + b.used + align - 1) & ~(align - 1);
      if (cur + bytes <= base + b.size) {
        b.used = cur + bytes - base;
        return reinterpret_cast<void*>(cur);
      }
      // This block is exhausted for a request this size: move on. Blocks
      // are never revisited until Reset(), keeping Allocate O(1)
      // amortized.
      ++block_;
    }
    AddBlock(bytes + align);
    return Allocate(bytes, align);
  }

  /// Releases every allocation at once. Blocks are kept, so a warm arena
  /// serves the next session without touching the heap.
  void Reset() {
    for (Block& b : blocks_) b.used = 0;
    block_ = 0;
  }

  /// Total bytes of owned blocks — the high-water footprint.
  size_t capacity_bytes() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

  /// Bytes handed out since the last Reset() (including alignment pad).
  size_t used_bytes() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.used;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  void AddBlock(size_t min_bytes) {
    Block b;
    b.size = min_bytes > block_bytes_ ? min_bytes : block_bytes_;
    b.data = std::make_unique<char[]>(b.size);
    blocks_.push_back(std::move(b));
  }

  size_t block_bytes_;
  size_t block_ = 0;  ///< first block with potential free space
  std::vector<Block> blocks_;
};

}  // namespace sparkopt
