#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

/// \file check.h
/// \brief Contract macros for programming-error invariants.
///
/// SPARKOPT_CHECK(cond) aborts with a streamed message when `cond` is
/// false; it is always compiled in. SPARKOPT_DCHECK(cond) is the debug
/// flavor: it compiles to nothing in NDEBUG builds unless SPARKOPT_VERIFY
/// is defined (the invariant-verification build used by CI). Both support
/// streaming extra context:
///
/// \code
///   SPARKOPT_CHECK(idx < ops.size()) << "op id " << idx << " out of range";
///   SPARKOPT_DCHECK_EQ(st.num_partitions, st.partition_bytes.size());
/// \endcode
///
/// These are for invariants whose violation means a bug in this codebase;
/// recoverable conditions (bad user input, API misuse) return Status.

namespace sparkopt {
namespace internal {

/// Accumulates the streamed message and aborts in its destructor, so the
/// whole `SPARKOPT_CHECK(...) << ...` expression runs before termination.
class CheckFailure {
 public:
  CheckFailure(const char* cond, const char* file, int line) {
    ss_ << "CHECK failed at " << file << ":" << line << ": " << cond;
  }

  [[noreturn]] ~CheckFailure() {
    std::fprintf(stderr, "%s\n", ss_.str().c_str());
    std::fflush(stderr);
    std::abort();
  }

  std::ostringstream& stream() { return ss_; }

 private:
  std::ostringstream ss_;
};

/// Lowers the precedence of the failure expression below `<<` so the
/// ternary in SPARKOPT_CHECK type-checks as void on both branches.
struct CheckVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace sparkopt

#define SPARKOPT_CHECK(cond)                                              \
  (cond) ? (void)0                                                        \
         : ::sparkopt::internal::CheckVoidify() &                         \
               ::sparkopt::internal::CheckFailure(#cond, __FILE__,        \
                                                  __LINE__)               \
                   .stream()

#define SPARKOPT_CHECK_OP(a, b, op)                                       \
  SPARKOPT_CHECK((a)op(b)) << " (with lhs=" << (a) << ", rhs=" << (b)     \
                           << ") "

#define SPARKOPT_CHECK_EQ(a, b) SPARKOPT_CHECK_OP(a, b, ==)
#define SPARKOPT_CHECK_NE(a, b) SPARKOPT_CHECK_OP(a, b, !=)
#define SPARKOPT_CHECK_LT(a, b) SPARKOPT_CHECK_OP(a, b, <)
#define SPARKOPT_CHECK_LE(a, b) SPARKOPT_CHECK_OP(a, b, <=)
#define SPARKOPT_CHECK_GT(a, b) SPARKOPT_CHECK_OP(a, b, >)
#define SPARKOPT_CHECK_GE(a, b) SPARKOPT_CHECK_OP(a, b, >=)

/// DCHECKs are active in debug builds and in SPARKOPT_VERIFY builds.
#if !defined(NDEBUG) || defined(SPARKOPT_VERIFY)
#define SPARKOPT_DCHECK_ENABLED 1
#define SPARKOPT_DCHECK(cond) SPARKOPT_CHECK(cond)
#define SPARKOPT_DCHECK_EQ(a, b) SPARKOPT_CHECK_EQ(a, b)
#define SPARKOPT_DCHECK_NE(a, b) SPARKOPT_CHECK_NE(a, b)
#define SPARKOPT_DCHECK_LT(a, b) SPARKOPT_CHECK_LT(a, b)
#define SPARKOPT_DCHECK_LE(a, b) SPARKOPT_CHECK_LE(a, b)
#define SPARKOPT_DCHECK_GT(a, b) SPARKOPT_CHECK_GT(a, b)
#define SPARKOPT_DCHECK_GE(a, b) SPARKOPT_CHECK_GE(a, b)
#else
#define SPARKOPT_DCHECK_ENABLED 0
// Swallow the streamed operands without evaluating the condition.
#define SPARKOPT_DCHECK_NOOP(cond)                                        \
  true ? (void)0                                                          \
       : ::sparkopt::internal::CheckVoidify() &                           \
             ::sparkopt::internal::CheckFailure(#cond, __FILE__,          \
                                                __LINE__)                 \
                 .stream()
#define SPARKOPT_DCHECK(cond) SPARKOPT_DCHECK_NOOP(cond)
#define SPARKOPT_DCHECK_EQ(a, b) SPARKOPT_DCHECK_NOOP((a) == (b))
#define SPARKOPT_DCHECK_NE(a, b) SPARKOPT_DCHECK_NOOP((a) != (b))
#define SPARKOPT_DCHECK_LT(a, b) SPARKOPT_DCHECK_NOOP((a) < (b))
#define SPARKOPT_DCHECK_LE(a, b) SPARKOPT_DCHECK_NOOP((a) <= (b))
#define SPARKOPT_DCHECK_GT(a, b) SPARKOPT_DCHECK_NOOP((a) > (b))
#define SPARKOPT_DCHECK_GE(a, b) SPARKOPT_DCHECK_NOOP((a) >= (b))
#endif
