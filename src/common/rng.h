#pragma once

#include <cstdint>
#include <cmath>
#include <vector>

/// \file rng.h
/// \brief Deterministic pseudo-random number generation.
///
/// Every stochastic component in sparkopt (samplers, simulator noise,
/// evolutionary search, k-means initialization, model initialization)
/// draws from an explicitly seeded Rng so that tests, benchmarks, and
/// experiments are bit-reproducible across runs and platforms.

namespace sparkopt {

/// \brief xoshiro256** generator seeded via SplitMix64.
///
/// Small, fast, and high quality; independent streams are derived by
/// seeding with distinct 64-bit values (e.g. hash of query id + purpose).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 to fill the state; avoids the all-zero state.
    uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      si = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBounded(uint64_t n) {
    // Lemire's nearly-divisionless bounded rejection.
    __uint128_t m = static_cast<__uint128_t>(Next()) * n;
    auto lo = static_cast<uint64_t>(m);
    if (lo < n) {
      uint64_t t = (-n) % n;
      while (lo < t) {
        m = static_cast<__uint128_t>(Next()) * n;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller (cached second value discarded for
  /// simplicity and statelessness).
  double Normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = Uniform();
    double u2 = Uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    const double z = std::sqrt(-2.0 * std::log(u1)) *
                     std::cos(6.283185307179586 * u2);
    return mean + stddev * z;
  }

  /// Log-normal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma) {
    return std::exp(Normal(mu, sigma));
  }

  /// Returns true with probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = NextBounded(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// A random permutation of [0, n).
  std::vector<int> Permutation(int n) {
    std::vector<int> p(n);
    for (int i = 0; i < n; ++i) p[i] = i;
    Shuffle(&p);
    return p;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

/// Stable 64-bit string/byte hash (FNV-1a), used to derive independent RNG
/// streams and to hash predicate tokens into feature buckets.
inline uint64_t Fnv1a(const void* data, size_t n,
                      uint64_t seed = 0xCBF29CE484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2));
}

}  // namespace sparkopt
