#include "common/logging.h"

#include <atomic>

#include "common/thread_safety.h"

namespace sparkopt {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

// Serializes emission: glibc happens to lock the FILE per fprintf call,
// but that is an implementation detail — worker threads logging from the
// solver fan-out deserve a contract, and the annotated mutex gives the
// static analysis one.
Mutex g_emit_mu;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  ss_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >=
      static_cast<int>(g_level.load(std::memory_order_relaxed))) {
    const std::string line = ss_.str();
    MutexLock lock(g_emit_mu);
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace internal
}  // namespace sparkopt
