#include "common/logging.h"

#include <atomic>

namespace sparkopt {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  ss_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >=
      static_cast<int>(g_level.load(std::memory_order_relaxed))) {
    std::fprintf(stderr, "%s\n", ss_.str().c_str());
  }
}

}  // namespace internal
}  // namespace sparkopt
