#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

/// \file thread_safety.h
/// \brief Clang Thread Safety Analysis annotations and annotated lock
/// wrappers. This is the project's *static* concurrency contract: every
/// mutex in src/ is a `sparkopt::Mutex`/`SharedMutex`, every guarded
/// field carries `SPARKOPT_GUARDED_BY`, and Clang builds compile with
/// `-Wthread-safety -Werror=thread-safety-analysis`, so an unannotated
/// lock-protocol violation is a build break, not a TSan lottery ticket.
///
/// Under GCC (which has no thread-safety analysis) the macros expand to
/// nothing and the wrappers are zero-cost inline forwards to the std
/// primitives — Release codegen is identical to using std::mutex
/// directly. The dynamic layer (TSan CI job) stays as the backstop for
/// what the static analysis cannot see (lock-free code, atomics).
///
/// Conventions (see DESIGN.md §11):
///  - Fields: `T field_ SPARKOPT_GUARDED_BY(mu_);`
///  - Functions called with a lock held: `SPARKOPT_REQUIRES(mu_)`.
///  - Functions that must NOT be called with a lock held (they acquire
///    it themselves): `SPARKOPT_EXCLUDES(mu_)`.
///  - Prefer the RAII guards (`MutexLock`, `ReaderMutexLock`,
///    `WriterMutexLock`) over manual Lock/Unlock pairs.
///  - Condition waits are explicit `while (!pred) cv_.Wait(mu_);` loops,
///    never predicate lambdas — the analysis cannot see through a
///    lambda, an explicit loop it checks.
///  - `SPARKOPT_NO_THREAD_SAFETY_ANALYSIS` is a last resort; every use
///    needs a comment saying why the analysis is wrong.

// ---- Annotation macros -------------------------------------------------

#if defined(__clang__)
#define SPARKOPT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SPARKOPT_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a class as a lockable capability ("mutex" names it in
/// diagnostics).
#define SPARKOPT_CAPABILITY(x) SPARKOPT_THREAD_ANNOTATION(capability(x))

/// Marks an RAII guard whose constructor acquires and destructor
/// releases a capability.
#define SPARKOPT_SCOPED_CAPABILITY SPARKOPT_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define SPARKOPT_GUARDED_BY(x) SPARKOPT_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define SPARKOPT_PT_GUARDED_BY(x) SPARKOPT_THREAD_ANNOTATION(pt_guarded_by(x))

/// Caller must hold the capability exclusively / shared.
#define SPARKOPT_REQUIRES(...) \
  SPARKOPT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SPARKOPT_REQUIRES_SHARED(...) \
  SPARKOPT_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires / releases the capability (exclusive or shared).
#define SPARKOPT_ACQUIRE(...) \
  SPARKOPT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SPARKOPT_ACQUIRE_SHARED(...) \
  SPARKOPT_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define SPARKOPT_RELEASE(...) \
  SPARKOPT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SPARKOPT_RELEASE_SHARED(...) \
  SPARKOPT_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function tries to acquire; first argument is the success return value.
#define SPARKOPT_TRY_ACQUIRE(...) \
  SPARKOPT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define SPARKOPT_TRY_ACQUIRE_SHARED(...) \
  SPARKOPT_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (function acquires it itself;
/// catches self-deadlock at compile time).
#define SPARKOPT_EXCLUDES(...) \
  SPARKOPT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define SPARKOPT_RETURN_CAPABILITY(x) \
  SPARKOPT_THREAD_ANNOTATION(lock_returned(x))

/// Assert-at-runtime escape hatch: tells the analysis the capability is
/// held without acquiring it.
#define SPARKOPT_ASSERT_CAPABILITY(x) \
  SPARKOPT_THREAD_ANNOTATION(assert_capability(x))

/// Disables the analysis for one function. Last resort; comment why.
#define SPARKOPT_NO_THREAD_SAFETY_ANALYSIS \
  SPARKOPT_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace sparkopt {

class CondVar;

// ---- Annotated lock wrappers -------------------------------------------

/// \brief `std::mutex` with capability annotations.
class SPARKOPT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SPARKOPT_ACQUIRE() { mu_.lock(); }
  void Unlock() SPARKOPT_RELEASE() { mu_.unlock(); }
  bool TryLock() SPARKOPT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief RAII exclusive guard over a `Mutex`.
class SPARKOPT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SPARKOPT_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() SPARKOPT_RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// \brief `std::condition_variable` bound to `sparkopt::Mutex`.
///
/// Wait() releases and reacquires the underlying std::mutex through an
/// adopting `unique_lock`, so it keeps std::condition_variable's native
/// (futex) wait path — no condition_variable_any indirection. Callers
/// hold the Mutex across the call, exactly as with the std API, and wrap
/// every wait in an explicit `while (!pred)` loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, reacquires `mu` before returning.
  void Wait(Mutex& mu) SPARKOPT_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's guard
  }

  /// Timed wait; returns false on timeout (the lock is reacquired either
  /// way).
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      SPARKOPT_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status st = cv_.wait_for(lock, timeout);
    lock.release();
    return st == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// \brief `std::shared_mutex` with capability annotations
/// (reader-writer; the metrics registry's find-or-create pattern).
class SPARKOPT_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() SPARKOPT_ACQUIRE() { mu_.lock(); }
  void Unlock() SPARKOPT_RELEASE() { mu_.unlock(); }
  bool TryLock() SPARKOPT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void ReaderLock() SPARKOPT_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() SPARKOPT_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool ReaderTryLock() SPARKOPT_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// \brief RAII exclusive (writer) guard over a `SharedMutex`.
class SPARKOPT_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) SPARKOPT_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() SPARKOPT_RELEASE() { mu_.Unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// \brief RAII shared (reader) guard over a `SharedMutex`.
class SPARKOPT_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) SPARKOPT_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.ReaderLock();
  }
  ~ReaderMutexLock() SPARKOPT_RELEASE() { mu_.ReaderUnlock(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace sparkopt
