#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "obs/trace.h"

namespace sparkopt {

namespace {
// Set while a pool worker runs tasks. A ParallelFor issued from inside a
// worker runs inline: letting it queue-and-wait could deadlock once every
// worker blocks on a nested wait with the queued bodies unserved.
thread_local bool t_in_worker = false;
}  // namespace

ThreadPool::ThreadPool(int num_threads, bool dedicated_single_worker) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  if (num_threads <= 1 && !dedicated_single_worker) {
    return;  // inline mode: no workers at all
  }
  num_threads = std::max(num_threads, 1);
  workers_.reserve(num_threads);
  for (int t = 0; t < num_threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(ShutdownMode::kDrain); }

void ThreadPool::Shutdown(ShutdownMode mode) {
  // Discarded tasks are destroyed after the lock is released: RAII task
  // wrappers may run arbitrary code in their destructors (the tuning
  // service fails promises there) and must not do so under the pool lock.
  std::queue<std::function<void()>> discarded;
  bool join = false;
  {
    MutexLock lock(mu_);
    if (mode == ShutdownMode::kAbort && !queue_.empty()) {
      discarded.swap(queue_);
      discarded_.fetch_add(discarded.size(), std::memory_order_relaxed);
    }
    stop_ = true;
    if (!joined_) {
      joined_ = true;
      join = true;
    }
  }
  cv_.NotifyAll();
  if (join) {
    for (auto& w : workers_) w.join();
  }
}

bool ThreadPool::Post(std::function<void()> task) {
  if (workers_.empty() || !Enqueue(std::move(task))) {
    discarded_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

bool ThreadPool::Enqueue(std::function<void()> task) {
  // Queue instrumentation costs one relaxed load when no session is
  // installed. With a session, each task is wrapped to record its
  // enqueue->dequeue wait; the session must stay alive until the pool's
  // queue drains (the documented session lifetime contract — both
  // ParallelFor and Submit callers block on their tasks).
  if (obs::Session* s = obs::Session::Current()) {
    s->metrics().counter("threadpool.tasks").Add(1);
    obs::Histogram* wait = &s->metrics().histogram("threadpool.queue_wait_us");
    const auto enqueued_at = std::chrono::steady_clock::now();
    task = [inner = std::move(task), wait, enqueued_at] {
      wait->Observe(std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - enqueued_at)
                        .count());
      inner();
    };
  }
  size_t depth;
  {
    MutexLock lock(mu_);
    if (stop_) return false;  // task destroyed without running
    queue_.push(std::move(task));
    depth = queue_.size();
  }
  obs::Observe("threadpool.queue_depth", static_cast<double>(depth));
  cv_.NotifyOne();
  return true;
}

void ThreadPool::WorkerLoop() {
  t_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      // Explicit predicate loop (not a wait-lambda) so the thread-safety
      // analysis sees the guarded reads under the lock.
      while (!stop_ && queue_.empty()) cv_.Wait(mu_);
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1 || t_in_worker) {
    obs::Count("threadpool.inline_fors");
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  obs::Count("threadpool.parallel_fors");

  // Shared state for one ParallelFor invocation. Tasks claim indices
  // from `next`; the last task to finish signals `done_cv`.
  struct ForState {
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    Mutex error_mu;
    std::exception_ptr error SPARKOPT_GUARDED_BY(error_mu);
    Mutex done_mu;
    CondVar done_cv;
    size_t pending_tasks SPARKOPT_GUARDED_BY(done_mu) = 0;
  };
  auto state = std::make_shared<ForState>();

  const size_t tasks = std::min(n, workers_.size() + 1);
  {
    // Written under the lock so the static analysis can prove the
    // decrements in task bodies race-free (publication to the workers
    // itself happens-before via Enqueue's queue mutex).
    MutexLock lock(state->done_mu);
    state->pending_tasks = tasks;
  }

  // The caller waits until every task body has run to completion, so the
  // by-reference capture of `fn` cannot dangle.
  auto body = [state, n, &fn] {
    // Iterations claimed by this task, flushed as one counter update at
    // the end (per-iteration metric calls would put a registry lookup
    // inside the claiming loop). worker_iters vs caller_iters shows how
    // much work the pool pulled off the calling thread.
    uint64_t claimed = 0;
    size_t i;
    while ((i = state->next.fetch_add(1, std::memory_order_relaxed)) < n) {
      if (state->failed.load(std::memory_order_relaxed)) continue;
      ++claimed;
      try {
        fn(i);
      } catch (...) {
        MutexLock lock(state->error_mu);
        if (!state->failed.exchange(true, std::memory_order_relaxed)) {
          state->error = std::current_exception();
        }
      }
    }
    if (claimed > 0) {
      obs::Count(t_in_worker ? "threadpool.worker_iters"
                             : "threadpool.caller_iters",
                 claimed);
    }
    MutexLock lock(state->done_mu);
    if (--state->pending_tasks == 0) state->done_cv.NotifyAll();
  };

  // One fewer queued task than workers when the caller participates:
  // the calling thread runs the same claiming loop, so a fully busy pool
  // cannot deadlock the caller and small n never waits on wake-ups.
  // Rejected enqueues (pool shut down mid-call) are subtracted from the
  // pending count — the caller's own claiming loop still covers every
  // iteration, the work just degrades to inline.
  size_t enqueued = 0;
  for (size_t t = 1; t < tasks; ++t) {
    if (Enqueue(body)) ++enqueued;
  }
  if (enqueued + 1 != tasks) {
    MutexLock lock(state->done_mu);
    state->pending_tasks -= tasks - 1 - enqueued;
  }
  body();

  {
    MutexLock lock(state->done_mu);
    while (state->pending_tasks != 0) state->done_cv.Wait(state->done_mu);
  }
  if (state->failed.load(std::memory_order_acquire)) {
    // Uncontended by now (all tasks drained), but the read of `error`
    // must hold its guard for the analysis — and it documents that the
    // publication contract is the mutex, not the relaxed flag.
    MutexLock lock(state->error_mu);
    std::rethrow_exception(state->error);
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(0);
  return pool;
}

}  // namespace sparkopt
