#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file pareto_flat.h
/// \brief The flat Pareto kernel: allocation-free structure-of-arrays
/// primitives for the dominant 2- and 3-objective cases.
///
/// Every MOO solver in this repo bottoms out in three operations —
/// non-dominated filtering, Minkowski-sum merging (HMOOC1's
/// divide-and-conquer DAG aggregation, Algorithm 3), and hypervolume —
/// and the AoS `ObjectiveVector` representation pays one heap allocation
/// per point for each of them. This kernel keeps a front as three
/// contiguous arrays (x, y, payload), reuses caller-owned scratch
/// buffers, and never materializes the |a| x |b| cross product of a
/// merge.
///
/// Semantics contract (shared with common/pareto.h): all objectives are
/// minimized; a "front" is the *non-dominated multiset* of its input —
/// exact duplicates of a non-dominated point are all kept — and every
/// operation preserves the caller's point order (for the merge: the
/// cross-product order i * |b| + j). These are exactly the semantics of
/// the naive `ParetoIndices` / `MergeFronts` path, so the two paths
/// produce bitwise-identical fronts; `tests/common/pareto_flat_test.cc`
/// pins the equivalence property.

namespace sparkopt {

/// \brief A 2-objective front in structure-of-arrays layout.
///
/// `x[i]`/`y[i]` are the two (minimized) objectives of point i;
/// `payload[i]` is an opaque caller id (combination-table row, pool
/// index, candidate index). The three arrays always have equal size.
struct Front2 {
  std::vector<double> x;
  std::vector<double> y;
  std::vector<size_t> payload;

  size_t size() const { return x.size(); }
  bool empty() const { return x.empty(); }

  void clear() {
    x.clear();
    y.clear();
    payload.clear();
  }
  void reserve(size_t n) {
    x.reserve(n);
    y.reserve(n);
    payload.reserve(n);
  }
  void Append(double px, double py, size_t id) {
    x.push_back(px);
    y.push_back(py);
    payload.push_back(id);
  }
};

/// \brief A 3-objective front in structure-of-arrays layout.
///
/// The k = 3 sibling of Front2: `x[i]`/`y[i]`/`z[i]` are the three
/// (minimized) objectives of point i, `payload[i]` an opaque caller id.
struct Front3 {
  std::vector<double> x;
  std::vector<double> y;
  std::vector<double> z;
  std::vector<size_t> payload;

  size_t size() const { return x.size(); }
  bool empty() const { return x.empty(); }

  void clear() {
    x.clear();
    y.clear();
    z.clear();
    payload.clear();
  }
  void reserve(size_t n) {
    x.reserve(n);
    y.reserve(n);
    z.reserve(n);
    payload.reserve(n);
  }
  void Append(double px, double py, double pz, size_t id) {
    x.push_back(px);
    y.push_back(py);
    z.push_back(pz);
    payload.push_back(id);
  }
};

/// One surviving cell of a Minkowski merge: positions into the two input
/// fronts (not payloads — the caller maps positions however it likes).
struct MergePair {
  uint32_t i = 0;  ///< position in front `a`
  uint32_t j = 0;  ///< position in front `b`
};

/// \brief Reusable scratch for the kernel. Create one per thread (or per
/// solver task) and pass it to every call; buffers grow to the
/// high-water mark and are never shrunk, so steady-state kernel calls
/// perform no allocation. Contents are invalidated by the next call
/// that uses them (`pairs` in particular: consume it before the next
/// FlatMerge2 on the same scratch).
struct ParetoScratch {
  /// Output of the last FlatMerge2: one (i, j) position pair per kept
  /// point, aligned with the output front, in cross-product order.
  std::vector<MergePair> pairs;

  // -- internal buffers -------------------------------------------------
  struct HeapCell {
    double x = 0.0;  ///< sum x (heap key)
    double y = 0.0;  ///< sum y
    uint32_t i = 0;  ///< sorted position in a
    uint32_t j = 0;  ///< sorted position in b
  };
  std::vector<HeapCell> heap;
  std::vector<HeapCell> group;
  std::vector<uint32_t> order;    ///< generic index-sort buffer
  std::vector<uint32_t> kept;     ///< kept positions buffer
  std::vector<uint64_t> keys;     ///< kept cross-product keys
  std::vector<double> ax, ay;     ///< a sorted into SoA staging
  std::vector<double> bx, by;     ///< b sorted into SoA staging
  std::vector<uint32_t> amap, bmap;  ///< sorted position -> original

  // -- k = 3 buffers ----------------------------------------------------
  struct HeapCell3 {
    double x = 0.0;  ///< sum x (heap key)
    double y = 0.0;  ///< sum y
    double z = 0.0;  ///< sum z
    uint32_t i = 0;  ///< sorted position in a
    uint32_t j = 0;  ///< sorted position in b
  };
  std::vector<HeapCell3> heap3;
  std::vector<HeapCell3> group3;
  std::vector<double> az, bz;  ///< third-axis staging
  /// (y, z) minima staircase of kept points: sy strictly ascending, sz
  /// strictly descending. Shared by the 3-D filter and merge.
  std::vector<double> sy, sz;
  std::vector<double> gy, gz;  ///< equal-sum-x group staging
};

/// \brief Non-dominated positions of the multiset {(x[i], y[i])}.
///
/// Appends to `*kept` (cleared first) the positions of all points not
/// strictly dominated by any other point, in ascending position order —
/// the same set and order `ParetoIndices` produces for 2-objective
/// input. O(n log n), no allocation beyond scratch growth.
void FlatParetoPositions(const double* x, const double* y, size_t n,
                         std::vector<uint32_t>* kept, ParetoScratch* scratch);

/// \brief Filters `*front` in place to its non-dominated multiset
/// (points and payloads compacted consistently, input order preserved).
void FlatPareto2(Front2* front, ParetoScratch* scratch);

/// \brief Output-sensitive Minkowski-sum merge (Algorithm 3 without the
/// cross product).
///
/// Writes to `*out` (cleared first) the non-dominated multiset of
/// {(a.x[i] + b.x[j], a.y[i] + b.y[j])} in cross-product order
/// (i * b.size() + j ascending), with `out->payload[p] = p`;
/// `scratch->pairs[p]` holds the originating (i, j) positions. The sums
/// and the kept set/order are bitwise identical to materializing the
/// product and filtering with `ParetoIndices`.
///
/// The sweep sorts both inputs by (x, y), pushes each a-row's first
/// viable cell into a min-heap keyed on sum-x, and pops cells in sum-x
/// groups, advancing each row past provably-dominated cells by binary
/// search (a front's y is monotone in its sorted x). With Pareto-front
/// inputs of sizes n = |a|, m = |b| and output size r this performs
/// O((n + m + r + d) log(n + m)) work, where d — the dominated cells the
/// heap still surfaces — is small in practice instead of n * m. Inputs
/// that are not fronts are still merged correctly (the binary-search
/// skip just disables itself on the non-monotone side).
void FlatMerge2(const Front2& a, const Front2& b, Front2* out,
                ParetoScratch* scratch);

/// \brief Exact hypervolume dominated by the staircase of {(x, y)} and
/// bounded by (ref_x, ref_y). Accepts any point multiset (dominated
/// points contribute nothing); bitwise identical to `Hypervolume2D` on
/// the same input. O(n log n), scratch-buffered.
double FlatHypervolume2(const double* x, const double* y, size_t n,
                        double ref_x, double ref_y, ParetoScratch* scratch);

/// \brief Incrementally inserts (px, py, id) into `*front`, which must
/// be (and stays) sorted by (x, y) ascending — the canonical staircase
/// order with exact duplicates adjacent.
///
/// Returns false (front untouched) when an existing point strictly
/// dominates the new one; otherwise removes the points the new one
/// strictly dominates and inserts it, returning true. Maintaining an
/// archive this way yields exactly the sorted non-dominated multiset of
/// all points ever offered — the value sequence of
/// `sort(ParetoFilter(all))`.
bool ParetoInsert(Front2* front, double px, double py, size_t id);

// ---- k = 3 primitives ----------------------------------------------------
//
// Each is the exact 3-objective sibling of the 2-D operation above, with
// the same semantics contract: non-dominated *multiset* (exact
// duplicates kept), stable caller order, bitwise-identical points to the
// naive formulations (`ParetoIndices`' k-D sweep, `MergeFrontsNaive`,
// the recursive `Hypervolume`). The sweep replaces the 2-D running-min
// with a (y, z) minima staircase: after sorting by (x, y, z, position),
// a point is dominated iff some *kept* lexicographically earlier point
// has y' <= y and z' <= z (x' <= x is implied by the sort, and any
// dominated witness is itself covered by a kept one, so querying the
// kept staircase is sufficient).

/// \brief Non-dominated positions of the multiset {(x[i], y[i], z[i])};
/// appended to `*kept` (cleared first) in ascending position order — the
/// same set and order `ParetoIndices` produces for 3-objective input.
/// O(n log n) comparisons plus staircase maintenance (O(n) worst-case
/// shifts per insert, amortized small for front-like inputs).
void FlatParetoPositions3(const double* x, const double* y, const double* z,
                          size_t n, std::vector<uint32_t>* kept,
                          ParetoScratch* scratch);

/// \brief Filters `*front` in place to its non-dominated multiset.
void FlatPareto3(Front3* front, ParetoScratch* scratch);

/// \brief Output-sensitive 3-D Minkowski-sum merge.
///
/// Writes to `*out` (cleared first) the non-dominated multiset of
/// {(a.x[i]+b.x[j], a.y[i]+b.y[j], a.z[i]+b.z[j])} in cross-product
/// order (i * b.size() + j ascending), with `out->payload[p] = p`;
/// `scratch->pairs[p]` holds the originating (i, j) positions — the
/// same contract as FlatMerge2, bitwise identical to materializing the
/// product and filtering with `ParetoIndices`.
///
/// The sweep enumerates cells grouped by nondecreasing sum-x via a
/// per-row min-heap; each equal-sum-x group is filtered internally with
/// the 2-D kernel on (sum-y, sum-z) (equal first coordinates reduce
/// dominance to the remaining two), then checked against the kd
/// staircase of all kept cells from strictly smaller sum-x (weak
/// (y, z)-dominance there is strict overall). Never materializes the
/// |a| x |b| product; O(nm log(n+m)) worst case but output-sensitive in
/// the staircase pruning for front-shaped inputs.
void FlatMerge3(const Front3& a, const Front3& b, Front3* out,
                ParetoScratch* scratch);

/// \brief Exact 3-D hypervolume dominated by {(x, y, z)} and bounded by
/// (ref_x, ref_y, ref_z): a z-sorted sweep of slabs, each contributing
/// depth * 2-D staircase area of the points above it. Accepts any point
/// multiset; bitwise identical to the recursive `Hypervolume` slicing on
/// the same input (term order and expressions preserved). O(n^2 log n),
/// scratch-buffered — fine for the tens-to-hundreds-point fronts this
/// project produces.
double FlatHypervolume3(const double* x, const double* y, const double* z,
                        size_t n, double ref_x, double ref_y, double ref_z,
                        ParetoScratch* scratch);

/// \brief Incrementally inserts (px, py, pz, id) into `*front`, which
/// must be (and stays) sorted by (x, y, z) ascending.
///
/// Returns false (front untouched) when an existing point strictly
/// dominates the new one; otherwise removes the points the new one
/// strictly dominates (not necessarily contiguous in 3-D — a single
/// compaction pass) and inserts it, returning true. Maintains exactly
/// the sorted non-dominated multiset of all points ever offered.
bool ParetoInsert3(Front3* front, double px, double py, double pz, size_t id);

/// \brief Epsilon-dominance thinning for front-size budgets (HMOOC1's
/// optional knob): sweeping the staircase in (x, y) order, drops a point
/// when the previously kept point eps-dominates it on the y axis
/// (kept_y <= (1 + eps) * y; objectives must be nonnegative for the
/// multiplicative grid to make sense). The staircase extremes (min-x and
/// min-y points) are always kept, input order is preserved, and
/// eps <= 0 is a no-op — so the default configuration stays on the
/// bitwise-exact path.
void EpsilonThin2(Front2* front, double eps, ParetoScratch* scratch);

}  // namespace sparkopt
