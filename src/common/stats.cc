#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace sparkopt {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size()));
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  if (p <= 0.0) return v.front();
  if (p >= 100.0) return v.back();
  const double idx = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  const size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double Wmape(const std::vector<double>& y_true,
             const std::vector<double>& y_pred) {
  const size_t n = std::min(y_true.size(), y_pred.size());
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < n; ++i) {
    num += std::fabs(y_true[i] - y_pred[i]);
    den += std::fabs(y_true[i]);
  }
  if (den <= 0.0) return 0.0;
  return num / den;
}

std::vector<double> AbsolutePercentageErrors(
    const std::vector<double>& y_true, const std::vector<double>& y_pred,
    double eps) {
  const size_t n = std::min(y_true.size(), y_pred.size());
  std::vector<double> e(n);
  for (size_t i = 0; i < n; ++i) {
    e[i] = std::fabs(y_true[i] - y_pred[i]) /
           std::max(std::fabs(y_true[i]), eps);
  }
  return e;
}

AccuracyReport EvaluateAccuracy(const std::vector<double>& y_true,
                                const std::vector<double>& y_pred) {
  AccuracyReport r;
  r.n = std::min(y_true.size(), y_pred.size());
  r.wmape = Wmape(y_true, y_pred);
  auto errs = AbsolutePercentageErrors(y_true, y_pred);
  r.p50 = Percentile(errs, 50.0);
  r.p90 = Percentile(errs, 90.0);
  r.corr = PearsonCorrelation(y_true, y_pred);
  return r;
}

}  // namespace sparkopt
