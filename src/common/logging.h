#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

/// \file logging.h
/// \brief Minimal leveled logging and assertion macros.
///
/// Verbosity is controlled by SetLogLevel; benches default to warnings
/// only so table output stays clean.

namespace sparkopt {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that is emitted. Thread safe: the level
/// is an atomic, so concurrent sessions may adjust it at any time.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostringstream& stream() { return ss_; }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};

// Swallows the streamed expression when the level is filtered out.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace sparkopt

#define SPARKOPT_LOG_DEBUG()                                              \
  ::sparkopt::internal::LogMessage(::sparkopt::LogLevel::kDebug, __FILE__, \
                                   __LINE__)                               \
      .stream()
#define SPARKOPT_LOG_INFO()                                               \
  ::sparkopt::internal::LogMessage(::sparkopt::LogLevel::kInfo, __FILE__,  \
                                   __LINE__)                               \
      .stream()
#define SPARKOPT_LOG_WARN()                                                  \
  ::sparkopt::internal::LogMessage(::sparkopt::LogLevel::kWarning, __FILE__, \
                                   __LINE__)                                 \
      .stream()

// Hard invariant checks (SPARKOPT_CHECK and friends) live in
// common/check.h.
