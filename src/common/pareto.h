#pragma once

#include <cstddef>
#include <vector>

/// \file pareto.h
/// \brief Pareto-set primitives used across the optimizer: dominance
/// checks, non-dominated filtering (Kung et al. sort-based algorithm for
/// 2D, generic sweep for k-D), hypervolume, Weighted-Utopia-Nearest (WUN)
/// recommendation, and the Minkowski-sum merge that underlies HMOOC's
/// divide-and-conquer DAG aggregation (Algorithm 3 in the paper).
///
/// All objectives are minimized. A point with k objectives is a
/// std::vector<double> of size k.

namespace sparkopt {

/// One point in objective space. Minimization in every component.
using ObjectiveVector = std::vector<double>;

/// \brief True iff `a` Pareto-dominates `b`: a <= b componentwise and
/// a < b in at least one component (Definition 3.2 in the paper).
bool Dominates(const ObjectiveVector& a, const ObjectiveVector& b);

/// \brief Indices of the non-dominated points in `points`.
///
/// For 2-objective inputs this runs the classical sort-based Kung
/// algorithm in O(n log n); for k > 2 it falls back to a pruned pairwise
/// sweep. Ties: duplicate non-dominated points are all kept (stable order
/// by original index).
std::vector<size_t> ParetoIndices(const std::vector<ObjectiveVector>& points);

/// \brief Filters `points` to its Pareto front (convenience wrapper).
std::vector<ObjectiveVector> ParetoFilter(
    const std::vector<ObjectiveVector>& points);

/// \brief Exact 2D hypervolume of the region dominated by `front` and
/// bounded above by `ref` (the reference/nadir point). Points outside the
/// reference box contribute their clipped part. Returns 0 for an empty
/// front.
double Hypervolume2D(const std::vector<ObjectiveVector>& front,
                     const ObjectiveVector& ref);

/// \brief Hypervolume for k objectives by inclusion-exclusion style
/// recursive slicing (WFG-like); intended for the small fronts (tens of
/// points) this project produces. Falls back to Hypervolume2D for k = 2.
double Hypervolume(const std::vector<ObjectiveVector>& front,
                   const ObjectiveVector& ref);

/// \brief Weighted-Utopia-Nearest recommendation (Section 3.3.2).
///
/// Objectives are min-max normalized over the front; the utopia point is
/// the componentwise minimum (0 after normalization). Returns the index of
/// the front point minimizing the weighted Euclidean distance
/// sqrt(sum_i (w_i * f_i_norm)^2). Returns SIZE_MAX for an empty front.
size_t WeightedUtopiaNearest(const std::vector<ObjectiveVector>& front,
                             const std::vector<double>& weights);

/// \brief A Pareto front where each point carries an opaque payload id
/// (e.g. an index into a configuration table). Used by DAG aggregation.
struct IndexedFront {
  std::vector<ObjectiveVector> points;
  /// payloads[i] identifies the configuration(s) behind points[i]. For
  /// merged fronts this is an index into a caller-maintained combination
  /// table.
  std::vector<size_t> payloads;

  size_t size() const { return points.size(); }
  bool empty() const { return points.empty(); }
};

/// \brief Keeps only the non-dominated entries of `front` (points and
/// payloads filtered consistently).
IndexedFront FilterDominated(IndexedFront front);

/// \brief Minkowski-sum merge of two fronts (Algorithm 3): enumerates all
/// |a| x |b| combinations, sums objective vectors, and keeps the Pareto
/// front. `combo_out`, if non-null, receives one (payload_a, payload_b)
/// pair per surviving point, aligned with the returned front's points.
///
/// By Proposition B.1, Pf(Pf(F) ⊕ Pf(G)) = Pf(F x G), so merging the
/// children's fronts loses no query-level Pareto solution.
IndexedFront MergeFronts(const IndexedFront& a, const IndexedFront& b,
                         std::vector<std::pair<size_t, size_t>>* combo_out);

}  // namespace sparkopt
