#pragma once

#include <cstddef>
#include <utility>
#include <vector>

/// \file pareto.h
/// \brief Pareto-set primitives used across the optimizer: dominance
/// checks, non-dominated filtering (Kung et al. sort-based algorithm for
/// 2D, generic sweep for k-D), hypervolume, Weighted-Utopia-Nearest (WUN)
/// recommendation, and the Minkowski-sum merge that underlies HMOOC's
/// divide-and-conquer DAG aggregation (Algorithm 3 in the paper).
///
/// All objectives are minimized. A point with k objectives is a
/// std::vector<double> of size k.
///
/// This header is the AoS shim over the flat kernel in pareto_flat.h:
/// the 2- and 3-objective paths of ParetoIndices, Hypervolume, and
/// MergeFronts delegate to the structure-of-arrays kernel and are
/// bitwise identical — same points, same payload mapping, same stable
/// tie order — to the naive formulations they replaced (the naive merge
/// survives as MergeFrontsNaive for property tests and k > 3).

namespace sparkopt {

/// One point in objective space. Minimization in every component.
using ObjectiveVector = std::vector<double>;

/// \brief True iff `a` Pareto-dominates `b`: a <= b componentwise and
/// a < b in at least one component (Definition 3.2 in the paper).
bool Dominates(const ObjectiveVector& a, const ObjectiveVector& b);

/// \brief Indices of the non-dominated points in `points`.
///
/// For 2-objective inputs this runs the classical sort-based Kung
/// algorithm in O(n log n); 3-objective inputs take the flat kernel's
/// staircase sweep (same complexity); k > 3 falls back to a pruned
/// pairwise sweep. Ties: duplicate non-dominated points are all kept
/// (stable order by original index).
std::vector<size_t> ParetoIndices(const std::vector<ObjectiveVector>& points);

/// \brief Filters `points` to its Pareto front (convenience wrapper).
std::vector<ObjectiveVector> ParetoFilter(
    const std::vector<ObjectiveVector>& points);

/// \brief Exact 2D hypervolume of the region dominated by `front` and
/// bounded above by `ref` (the reference/nadir point). Points outside the
/// reference box contribute their clipped part. Returns 0 for an empty
/// front.
double Hypervolume2D(const std::vector<ObjectiveVector>& front,
                     const ObjectiveVector& ref);

/// \brief Hypervolume for k objectives; intended for the small fronts
/// (tens of points) this project produces. k = 2 routes to Hypervolume2D,
/// k = 3 to the flat kernel's slab sweep (bitwise identical to the
/// recursive slicing it replaced), k > 3 to recursive slicing.
double Hypervolume(const std::vector<ObjectiveVector>& front,
                   const ObjectiveVector& ref);

/// \brief Weighted-Utopia-Nearest recommendation (Section 3.3.2).
///
/// Objectives are min-max normalized over the front; the utopia point is
/// the componentwise minimum (0 after normalization). Returns the index of
/// the front point minimizing the weighted Euclidean distance
/// sqrt(sum_i (w_i * f_i_norm)^2). Returns SIZE_MAX for an empty front.
size_t WeightedUtopiaNearest(const std::vector<ObjectiveVector>& front,
                             const std::vector<double>& weights);

/// \brief A Pareto front where each point carries an opaque payload id
/// (e.g. an index into a configuration table). Used by DAG aggregation.
struct IndexedFront {
  std::vector<ObjectiveVector> points;
  /// payloads[i] identifies the configuration(s) behind points[i]. For
  /// merged fronts this is an index into a caller-maintained combination
  /// table.
  std::vector<size_t> payloads;

  size_t size() const { return points.size(); }
  bool empty() const { return points.empty(); }
};

/// \brief Keeps only the non-dominated entries of `front` (points and
/// payloads filtered consistently).
IndexedFront FilterDominated(IndexedFront front);

/// \brief Minkowski-sum merge of two fronts (Algorithm 3): sums every
/// |a| x |b| combination of objective vectors and keeps the Pareto front
/// (the non-dominated multiset, duplicates included), ordered by
/// cross-product index i * |b| + j. For 2- and 3-objective input the
/// output-sensitive flat kernel (pareto_flat.h) is used, so the product
/// is never materialized; k > 3 falls back to MergeFrontsNaive.
///
/// Payload contract: each surviving point originates from one
/// (a-point, b-point) combination. When `combo_out` is non-null the pair
/// (a.payloads[i], b.payloads[j]) of the p-th survivor is **appended**
/// to `*combo_out` (empty input payloads degrade to positions), and
/// `out.payloads[p]` is the index of that row in the grown table — i.e.
/// combo_out->size() before the call, plus p. Appending (rather than
/// overwriting) lets a caller chain merges over one combination table:
/// a payload always resolves to the table row that reconstructs its
/// full combination. With `combo_out == nullptr` the payloads still
/// number survivors 0..n-1 against an imaginary empty table.
///
/// By Proposition B.1, Pf(Pf(F) ⊕ Pf(G)) = Pf(F x G), so merging the
/// children's fronts loses no query-level Pareto solution.
IndexedFront MergeFronts(const IndexedFront& a, const IndexedFront& b,
                         std::vector<std::pair<size_t, size_t>>* combo_out);

/// \brief Reference implementation of MergeFronts that materializes the
/// full cross product before filtering. Identical output contract (any
/// k). Kept as the oracle for the flat kernel's bitwise-equivalence
/// property tests; production call sites use MergeFronts.
IndexedFront MergeFrontsNaive(const IndexedFront& a, const IndexedFront& b,
                              std::vector<std::pair<size_t, size_t>>* combo_out);

}  // namespace sparkopt
