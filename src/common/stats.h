#pragma once

#include <cstddef>
#include <vector>

/// \file stats.h
/// \brief Small statistics helpers shared by the modeling, evaluation and
/// benchmark layers (means, percentiles, Pearson correlation, and the
/// error metrics reported in the paper's Table 3).

namespace sparkopt {

/// Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& v);

/// Population standard deviation; 0 for fewer than 2 elements.
double StdDev(const std::vector<double>& v);

/// Linear-interpolated percentile, p in [0, 100]. Sorts a copy.
double Percentile(std::vector<double> v, double p);

/// Pearson correlation coefficient between x and y; 0 if degenerate.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Weighted mean absolute percentage error:
///   sum(|y - yhat|) / sum(|y|).
/// This is the headline accuracy metric in the paper (Table 3).
double Wmape(const std::vector<double>& y_true,
             const std::vector<double>& y_pred);

/// Per-sample absolute percentage errors |y - yhat| / max(|y|, eps).
std::vector<double> AbsolutePercentageErrors(
    const std::vector<double>& y_true, const std::vector<double>& y_pred,
    double eps = 1e-9);

/// Summary of the paper's model-accuracy metrics for one target.
struct AccuracyReport {
  double wmape = 0.0;   ///< weighted mean absolute percentage error
  double p50 = 0.0;     ///< median absolute percentage error
  double p90 = 0.0;     ///< 90th-percentile absolute percentage error
  double corr = 0.0;    ///< Pearson correlation with the ground truth
  size_t n = 0;         ///< number of evaluated samples
};

/// Computes all Table-3 metrics for a prediction vector.
AccuracyReport EvaluateAccuracy(const std::vector<double>& y_true,
                                const std::vector<double>& y_pred);

}  // namespace sparkopt
