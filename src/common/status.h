#pragma once

#include <string>
#include <utility>
#include <variant>

/// \file status.h
/// \brief Lightweight Status / Result<T> error-handling primitives in the
/// style of Arrow / RocksDB. Library code returns Status or Result<T>
/// instead of throwing; exceptions are reserved for programming errors.

namespace sparkopt {

/// Error category attached to a non-OK Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kResourceExhausted,  ///< admission quota / queue capacity exceeded
  kUnavailable,        ///< transient: shed on shutdown, retry elsewhere
};

/// \brief Outcome of an operation: OK, or an error code plus message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + msg_;
  }

  static std::string CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kFailedPrecondition: return "FailedPrecondition";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kUnimplemented: return "Unimplemented";
      case StatusCode::kResourceExhausted: return "ResourceExhausted";
      case StatusCode::kUnavailable: return "Unavailable";
    }
    return "Unknown";
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Either a value of type T or an error Status.
///
/// Usage:
/// \code
///   Result<int> r = Parse(s);
///   if (!r.ok()) return r.status();
///   int v = *r;
/// \endcode
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : v_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : v_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(v_);
  }

  T& value() & { return std::get<T>(v_); }
  const T& value() const& { return std::get<T>(v_); }
  T&& value() && { return std::get<T>(std::move(v_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> v_;
};

/// Propagate a non-OK Status from an expression to the caller.
#define SPARKOPT_RETURN_NOT_OK(expr)            \
  do {                                          \
    ::sparkopt::Status _st = (expr);            \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace sparkopt
