#include "common/pareto.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>

#include "common/pareto_flat.h"

namespace sparkopt {

namespace {

// Per-thread kernel scratch for the AoS shims: solver worker threads
// call these concurrently, and the buffers reach a steady state after
// the first few calls on each thread.
ParetoScratch& TlsScratch() {
  thread_local ParetoScratch scratch;
  return scratch;
}

}  // namespace

bool Dominates(const ObjectiveVector& a, const ObjectiveVector& b) {
  bool strictly_better = false;
  const size_t k = a.size();
  for (size_t i = 0; i < k; ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strictly_better = true;
  }
  return strictly_better;
}

namespace {

// Sort-based 2D non-dominated filter (Kung et al. 1975), routed through
// the flat kernel: one SoA staging pass replaces the ObjectiveVector
// comparator sort, and the scratch buffers persist per thread.
std::vector<size_t> Pareto2D(const std::vector<ObjectiveVector>& pts) {
  ParetoScratch& scratch = TlsScratch();
  scratch.ax.resize(pts.size());
  scratch.ay.resize(pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    scratch.ax[i] = pts[i][0];
    scratch.ay[i] = pts[i][1];
  }
  FlatParetoPositions(scratch.ax.data(), scratch.ay.data(), pts.size(),
                      &scratch.kept, &scratch);
  return {scratch.kept.begin(), scratch.kept.end()};
}

// 3-D filter routed through the flat kernel's staircase sweep; same set
// and order as ParetoKD on 3-objective input (the property suite pins
// both against the quadratic reference).
std::vector<size_t> Pareto3D(const std::vector<ObjectiveVector>& pts) {
  ParetoScratch& scratch = TlsScratch();
  scratch.ax.resize(pts.size());
  scratch.ay.resize(pts.size());
  scratch.az.resize(pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    scratch.ax[i] = pts[i][0];
    scratch.ay[i] = pts[i][1];
    scratch.az[i] = pts[i][2];
  }
  FlatParetoPositions3(scratch.ax.data(), scratch.ay.data(), scratch.az.data(),
                       pts.size(), &scratch.kept, &scratch);
  return {scratch.kept.begin(), scratch.kept.end()};
}

// Generic k-D filter. Pre-sorts by sum of objectives so dominators tend to
// be visited first, which keeps the non-dominated archive small.
std::vector<size_t> ParetoKD(const std::vector<ObjectiveVector>& pts) {
  std::vector<size_t> order(pts.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t i, size_t j) {
    double si = 0, sj = 0;
    for (double v : pts[i]) si += v;
    for (double v : pts[j]) sj += v;
    if (si != sj) return si < sj;
    return i < j;
  });
  std::vector<size_t> archive;
  for (size_t idx : order) {
    bool dominated = false;
    for (size_t a : archive) {
      if (Dominates(pts[a], pts[idx])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) archive.push_back(idx);
  }
  std::sort(archive.begin(), archive.end());
  return archive;
}

}  // namespace

std::vector<size_t> ParetoIndices(const std::vector<ObjectiveVector>& points) {
  if (points.empty()) return {};
  if (points[0].size() == 2) return Pareto2D(points);
  if (points[0].size() == 3) return Pareto3D(points);
  return ParetoKD(points);
}

std::vector<ObjectiveVector> ParetoFilter(
    const std::vector<ObjectiveVector>& points) {
  std::vector<ObjectiveVector> out;
  for (size_t i : ParetoIndices(points)) out.push_back(points[i]);
  return out;
}

double Hypervolume2D(const std::vector<ObjectiveVector>& front,
                     const ObjectiveVector& ref) {
  if (front.empty()) return 0.0;
  // Staircase sweep in the flat kernel: dominated/duplicate points fail
  // the strict-improvement test there, so no filter or dedup pass is
  // needed and the accumulated terms are identical.
  ParetoScratch& scratch = TlsScratch();
  scratch.ax.resize(front.size());
  scratch.ay.resize(front.size());
  for (size_t i = 0; i < front.size(); ++i) {
    scratch.ax[i] = front[i][0];
    scratch.ay[i] = front[i][1];
  }
  return FlatHypervolume2(scratch.ax.data(), scratch.ay.data(), front.size(),
                          ref[0], ref[1], &scratch);
}

namespace {

// Recursive hypervolume by slicing on the last objective (simple exact
// algorithm, adequate for fronts of tens of points).
double HvRecursive(std::vector<ObjectiveVector> pts,
                   const ObjectiveVector& ref) {
  const size_t k = ref.size();
  if (pts.empty()) return 0.0;
  if (k == 2) return Hypervolume2D(pts, ref);
  // Sort by last objective ascending; sweep slices.
  std::sort(pts.begin(), pts.end(),
            [k](const ObjectiveVector& a, const ObjectiveVector& b) {
              return a[k - 1] < b[k - 1];
            });
  double hv = 0.0;
  for (size_t i = 0; i < pts.size(); ++i) {
    const double z_lo = pts[i][k - 1];
    if (z_lo >= ref[k - 1]) break;
    const double z_hi = (i + 1 < pts.size())
                            ? std::min(pts[i + 1][k - 1], ref[k - 1])
                            : ref[k - 1];
    const double depth = z_hi - z_lo;
    if (depth <= 0) continue;
    // Project points with z <= z_lo into (k-1) dims.
    std::vector<ObjectiveVector> proj;
    ObjectiveVector sub_ref(ref.begin(), ref.end() - 1);
    for (size_t j = 0; j <= i; ++j) {
      proj.emplace_back(pts[j].begin(), pts[j].end() - 1);
    }
    hv += depth * HvRecursive(std::move(proj), sub_ref);
  }
  return hv;
}

}  // namespace

double Hypervolume(const std::vector<ObjectiveVector>& front,
                   const ObjectiveVector& ref) {
  if (front.empty()) return 0.0;
  if (ref.size() == 2) return Hypervolume2D(front, ref);
  if (ref.size() == 3) {
    // Flat slab sweep, bitwise identical to HvRecursive (tied slabs have
    // zero depth, so the recursion's tie order never reaches the sum).
    // Stage into the b-side buffers: FlatHypervolume3 uses ax/ay/az as
    // its own internal staging.
    ParetoScratch& scratch = TlsScratch();
    scratch.bx.resize(front.size());
    scratch.by.resize(front.size());
    scratch.bz.resize(front.size());
    for (size_t i = 0; i < front.size(); ++i) {
      scratch.bx[i] = front[i][0];
      scratch.by[i] = front[i][1];
      scratch.bz[i] = front[i][2];
    }
    return FlatHypervolume3(scratch.bx.data(), scratch.by.data(),
                            scratch.bz.data(), front.size(), ref[0], ref[1],
                            ref[2], &scratch);
  }
  return HvRecursive(front, ref);
}

size_t WeightedUtopiaNearest(const std::vector<ObjectiveVector>& front,
                             const std::vector<double>& weights) {
  if (front.empty()) return std::numeric_limits<size_t>::max();
  const size_t k = front[0].size();
  ObjectiveVector lo(k, std::numeric_limits<double>::infinity());
  ObjectiveVector hi(k, -std::numeric_limits<double>::infinity());
  for (const auto& p : front) {
    for (size_t i = 0; i < k; ++i) {
      lo[i] = std::min(lo[i], p[i]);
      hi[i] = std::max(hi[i], p[i]);
    }
  }
  size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t j = 0; j < front.size(); ++j) {
    double d = 0.0;
    for (size_t i = 0; i < k; ++i) {
      const double range = hi[i] - lo[i];
      const double norm = range > 0 ? (front[j][i] - lo[i]) / range : 0.0;
      const double w = i < weights.size() ? weights[i] : 1.0;
      d += (w * norm) * (w * norm);
    }
    if (d < best_d) {
      best_d = d;
      best = j;
    }
  }
  return best;
}

IndexedFront FilterDominated(IndexedFront front) {
  auto keep = ParetoIndices(front.points);
  IndexedFront out;
  out.points.reserve(keep.size());
  out.payloads.reserve(keep.size());
  for (size_t i : keep) {
    out.points.push_back(std::move(front.points[i]));
    if (i < front.payloads.size()) out.payloads.push_back(front.payloads[i]);
  }
  return out;
}

IndexedFront MergeFronts(const IndexedFront& a, const IndexedFront& b,
                         std::vector<std::pair<size_t, size_t>>* combo_out) {
  const size_t k = a.empty() ? 0 : a.points[0].size();
  if (k == 3) {
    ParetoScratch& scratch = TlsScratch();
    Front3 fa, fb, merged;
    fa.reserve(a.size());
    fb.reserve(b.size());
    for (const auto& p : a.points) fa.Append(p[0], p[1], p[2], 0);
    for (const auto& p : b.points) fb.Append(p[0], p[1], p[2], 0);
    FlatMerge3(fa, fb, &merged, &scratch);

    const size_t combo_base = combo_out != nullptr ? combo_out->size() : 0;
    IndexedFront out;
    out.points.reserve(merged.size());
    out.payloads.reserve(merged.size());
    if (combo_out != nullptr) combo_out->reserve(combo_base + merged.size());
    for (size_t p = 0; p < merged.size(); ++p) {
      out.points.push_back({merged.x[p], merged.y[p], merged.z[p]});
      out.payloads.push_back(combo_base + p);
      if (combo_out != nullptr) {
        const MergePair& pair = scratch.pairs[p];
        combo_out->emplace_back(
            a.payloads.empty() ? pair.i : a.payloads[pair.i],
            b.payloads.empty() ? pair.j : b.payloads[pair.j]);
      }
    }
    return out;
  }
  if (k != 2) return MergeFrontsNaive(a, b, combo_out);

  ParetoScratch& scratch = TlsScratch();
  Front2 fa, fb, merged;
  fa.reserve(a.size());
  fb.reserve(b.size());
  for (const auto& p : a.points) fa.Append(p[0], p[1], 0);
  for (const auto& p : b.points) fb.Append(p[0], p[1], 0);
  FlatMerge2(fa, fb, &merged, &scratch);

  const size_t combo_base = combo_out != nullptr ? combo_out->size() : 0;
  IndexedFront out;
  out.points.reserve(merged.size());
  out.payloads.reserve(merged.size());
  if (combo_out != nullptr) combo_out->reserve(combo_base + merged.size());
  for (size_t p = 0; p < merged.size(); ++p) {
    out.points.push_back({merged.x[p], merged.y[p]});
    out.payloads.push_back(combo_base + p);
    if (combo_out != nullptr) {
      const MergePair& pair = scratch.pairs[p];
      combo_out->emplace_back(
          a.payloads.empty() ? pair.i : a.payloads[pair.i],
          b.payloads.empty() ? pair.j : b.payloads[pair.j]);
    }
  }
  return out;
}

IndexedFront MergeFrontsNaive(
    const IndexedFront& a, const IndexedFront& b,
    std::vector<std::pair<size_t, size_t>>* combo_out) {
  IndexedFront combined;
  std::vector<std::pair<size_t, size_t>> combos;
  combined.points.reserve(a.size() * b.size());
  combos.reserve(a.size() * b.size());
  const size_t k = a.empty() ? 0 : a.points[0].size();
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) {
      ObjectiveVector sum(k);
      for (size_t d = 0; d < k; ++d) {
        sum[d] = a.points[i][d] + b.points[j][d];
      }
      combined.points.push_back(std::move(sum));
      combos.emplace_back(a.payloads.empty() ? i : a.payloads[i],
                          b.payloads.empty() ? j : b.payloads[j]);
    }
  }
  auto keep = ParetoIndices(combined.points);
  const size_t combo_base = combo_out != nullptr ? combo_out->size() : 0;
  IndexedFront out;
  out.points.reserve(keep.size());
  out.payloads.reserve(keep.size());
  if (combo_out != nullptr) combo_out->reserve(combo_base + keep.size());
  for (size_t idx : keep) {
    out.points.push_back(std::move(combined.points[idx]));
    out.payloads.push_back(combo_base + (out.points.size() - 1));
    if (combo_out != nullptr) combo_out->push_back(combos[idx]);
  }
  return out;
}

}  // namespace sparkopt
