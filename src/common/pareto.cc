#include "common/pareto.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>

namespace sparkopt {

bool Dominates(const ObjectiveVector& a, const ObjectiveVector& b) {
  bool strictly_better = false;
  const size_t k = a.size();
  for (size_t i = 0; i < k; ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strictly_better = true;
  }
  return strictly_better;
}

namespace {

// Sort-based 2D non-dominated filter (Kung et al. 1975): sort by first
// objective then sweep keeping the running minimum of the second.
std::vector<size_t> Pareto2D(const std::vector<ObjectiveVector>& pts) {
  std::vector<size_t> order(pts.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t i, size_t j) {
    if (pts[i][0] != pts[j][0]) return pts[i][0] < pts[j][0];
    if (pts[i][1] != pts[j][1]) return pts[i][1] < pts[j][1];
    return i < j;  // stable for exact duplicates
  });
  std::vector<size_t> keep;
  double best_y = std::numeric_limits<double>::infinity();
  double prev_x = std::numeric_limits<double>::quiet_NaN();
  double prev_y = std::numeric_limits<double>::quiet_NaN();
  for (size_t idx : order) {
    const double x = pts[idx][0];
    const double y = pts[idx][1];
    // Keep exact duplicates of a kept point; otherwise require strictly
    // smaller y than everything to the left.
    if (!keep.empty() && x == prev_x && y == prev_y) {
      keep.push_back(idx);
      continue;
    }
    if (y < best_y) {
      keep.push_back(idx);
      best_y = y;
      prev_x = x;
      prev_y = y;
    }
  }
  std::sort(keep.begin(), keep.end());
  return keep;
}

// Generic k-D filter. Pre-sorts by sum of objectives so dominators tend to
// be visited first, which keeps the non-dominated archive small.
std::vector<size_t> ParetoKD(const std::vector<ObjectiveVector>& pts) {
  std::vector<size_t> order(pts.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t i, size_t j) {
    double si = 0, sj = 0;
    for (double v : pts[i]) si += v;
    for (double v : pts[j]) sj += v;
    if (si != sj) return si < sj;
    return i < j;
  });
  std::vector<size_t> archive;
  for (size_t idx : order) {
    bool dominated = false;
    for (size_t a : archive) {
      if (Dominates(pts[a], pts[idx])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) archive.push_back(idx);
  }
  std::sort(archive.begin(), archive.end());
  return archive;
}

}  // namespace

std::vector<size_t> ParetoIndices(const std::vector<ObjectiveVector>& points) {
  if (points.empty()) return {};
  if (points[0].size() == 2) return Pareto2D(points);
  return ParetoKD(points);
}

std::vector<ObjectiveVector> ParetoFilter(
    const std::vector<ObjectiveVector>& points) {
  std::vector<ObjectiveVector> out;
  for (size_t i : ParetoIndices(points)) out.push_back(points[i]);
  return out;
}

double Hypervolume2D(const std::vector<ObjectiveVector>& front,
                     const ObjectiveVector& ref) {
  if (front.empty()) return 0.0;
  // Deduplicate + keep non-dominated, sorted by x ascending.
  auto nd_idx = ParetoIndices(front);
  std::vector<ObjectiveVector> nd;
  for (size_t i : nd_idx) nd.push_back(front[i]);
  std::sort(nd.begin(), nd.end());
  nd.erase(std::unique(nd.begin(), nd.end()), nd.end());
  // Points sorted by x have non-increasing y on a 2D front, so the
  // dominated region decomposes into disjoint strips
  // [x_i, ref_x] x [y_i, y_{i-1}], accumulated left to right.
  double hv = 0.0;
  double last_y = ref[1];
  for (const auto& p : nd) {
    const double x = p[0];
    const double y = p[1];
    if (x >= ref[0]) break;
    const double clipped_y = std::min(y, last_y);
    if (clipped_y < last_y) {
      hv += (ref[0] - x) * (last_y - clipped_y);
      last_y = clipped_y;
    }
  }
  return hv;
}

namespace {

// Recursive hypervolume by slicing on the last objective (simple exact
// algorithm, adequate for fronts of tens of points).
double HvRecursive(std::vector<ObjectiveVector> pts,
                   const ObjectiveVector& ref) {
  const size_t k = ref.size();
  if (pts.empty()) return 0.0;
  if (k == 2) return Hypervolume2D(pts, ref);
  // Sort by last objective ascending; sweep slices.
  std::sort(pts.begin(), pts.end(),
            [k](const ObjectiveVector& a, const ObjectiveVector& b) {
              return a[k - 1] < b[k - 1];
            });
  double hv = 0.0;
  for (size_t i = 0; i < pts.size(); ++i) {
    const double z_lo = pts[i][k - 1];
    if (z_lo >= ref[k - 1]) break;
    const double z_hi = (i + 1 < pts.size())
                            ? std::min(pts[i + 1][k - 1], ref[k - 1])
                            : ref[k - 1];
    const double depth = z_hi - z_lo;
    if (depth <= 0) continue;
    // Project points with z <= z_lo into (k-1) dims.
    std::vector<ObjectiveVector> proj;
    ObjectiveVector sub_ref(ref.begin(), ref.end() - 1);
    for (size_t j = 0; j <= i; ++j) {
      proj.emplace_back(pts[j].begin(), pts[j].end() - 1);
    }
    hv += depth * HvRecursive(std::move(proj), sub_ref);
  }
  return hv;
}

}  // namespace

double Hypervolume(const std::vector<ObjectiveVector>& front,
                   const ObjectiveVector& ref) {
  if (front.empty()) return 0.0;
  if (ref.size() == 2) return Hypervolume2D(front, ref);
  return HvRecursive(front, ref);
}

size_t WeightedUtopiaNearest(const std::vector<ObjectiveVector>& front,
                             const std::vector<double>& weights) {
  if (front.empty()) return std::numeric_limits<size_t>::max();
  const size_t k = front[0].size();
  ObjectiveVector lo(k, std::numeric_limits<double>::infinity());
  ObjectiveVector hi(k, -std::numeric_limits<double>::infinity());
  for (const auto& p : front) {
    for (size_t i = 0; i < k; ++i) {
      lo[i] = std::min(lo[i], p[i]);
      hi[i] = std::max(hi[i], p[i]);
    }
  }
  size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t j = 0; j < front.size(); ++j) {
    double d = 0.0;
    for (size_t i = 0; i < k; ++i) {
      const double range = hi[i] - lo[i];
      const double norm = range > 0 ? (front[j][i] - lo[i]) / range : 0.0;
      const double w = i < weights.size() ? weights[i] : 1.0;
      d += (w * norm) * (w * norm);
    }
    if (d < best_d) {
      best_d = d;
      best = j;
    }
  }
  return best;
}

IndexedFront FilterDominated(IndexedFront front) {
  auto keep = ParetoIndices(front.points);
  IndexedFront out;
  out.points.reserve(keep.size());
  out.payloads.reserve(keep.size());
  for (size_t i : keep) {
    out.points.push_back(std::move(front.points[i]));
    if (i < front.payloads.size()) out.payloads.push_back(front.payloads[i]);
  }
  return out;
}

IndexedFront MergeFronts(const IndexedFront& a, const IndexedFront& b,
                         std::vector<std::pair<size_t, size_t>>* combo_out) {
  IndexedFront combined;
  std::vector<std::pair<size_t, size_t>> combos;
  combined.points.reserve(a.size() * b.size());
  combos.reserve(a.size() * b.size());
  const size_t k = a.empty() ? 0 : a.points[0].size();
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) {
      ObjectiveVector sum(k);
      for (size_t d = 0; d < k; ++d) {
        sum[d] = a.points[i][d] + b.points[j][d];
      }
      combined.points.push_back(std::move(sum));
      combos.emplace_back(a.payloads.empty() ? i : a.payloads[i],
                          b.payloads.empty() ? j : b.payloads[j]);
    }
  }
  auto keep = ParetoIndices(combined.points);
  IndexedFront out;
  std::vector<std::pair<size_t, size_t>> kept_combos;
  out.points.reserve(keep.size());
  kept_combos.reserve(keep.size());
  for (size_t idx : keep) {
    out.points.push_back(std::move(combined.points[idx]));
    out.payloads.push_back(out.points.size() - 1);
    kept_combos.push_back(combos[idx]);
  }
  if (combo_out != nullptr) *combo_out = std::move(kept_combos);
  return out;
}

}  // namespace sparkopt
