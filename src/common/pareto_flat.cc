#include "common/pareto_flat.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "obs/trace.h"

namespace sparkopt {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Sorts `order` (resized/iota'd here) by (x, y, position). This is the
// canonical sweep order shared by every kernel primitive: x ascending,
// ties by y ascending, exact duplicates by position so the sweep is
// deterministic.
void SortByXY(const double* x, const double* y, size_t n,
              std::vector<uint32_t>* order) {
  order->resize(n);
  std::iota(order->begin(), order->end(), 0u);
  std::sort(order->begin(), order->end(), [&](uint32_t i, uint32_t j) {
    if (x[i] != x[j]) return x[i] < x[j];
    if (y[i] != y[j]) return y[i] < y[j];
    return i < j;
  });
}

}  // namespace

void FlatParetoPositions(const double* x, const double* y, size_t n,
                         std::vector<uint32_t>* kept,
                         ParetoScratch* scratch) {
  kept->clear();
  if (n == 0) return;
  SortByXY(x, y, n, &scratch->order);
  // Sweep keeping the running minimum of y. A point survives when it
  // strictly improves the minimum, or is an exact duplicate of the last
  // survivor (duplicates sort adjacently) — the non-dominated multiset.
  double best_y = kInf;
  double prev_x = std::numeric_limits<double>::quiet_NaN();
  double prev_y = std::numeric_limits<double>::quiet_NaN();
  for (uint32_t idx : scratch->order) {
    if (!kept->empty() && x[idx] == prev_x && y[idx] == prev_y) {
      kept->push_back(idx);
      continue;
    }
    if (y[idx] < best_y) {
      kept->push_back(idx);
      best_y = y[idx];
      prev_x = x[idx];
      prev_y = y[idx];
    }
  }
  std::sort(kept->begin(), kept->end());
}

void FlatPareto2(Front2* front, ParetoScratch* scratch) {
  FlatParetoPositions(front->x.data(), front->y.data(), front->size(),
                      &scratch->kept, scratch);
  const std::vector<uint32_t>& keep = scratch->kept;
  if (keep.size() == front->size()) return;
  for (size_t p = 0; p < keep.size(); ++p) {
    const uint32_t src = keep[p];
    front->x[p] = front->x[src];
    front->y[p] = front->y[src];
    front->payload[p] = front->payload[src];
  }
  front->x.resize(keep.size());
  front->y.resize(keep.size());
  front->payload.resize(keep.size());
}

namespace {

// Min-heap on sum-x. std::push_heap builds a max-heap, so the
// comparator is inverted.
struct CellGreater {
  bool operator()(const ParetoScratch::HeapCell& a,
                  const ParetoScratch::HeapCell& b) const {
    return a.x > b.x;
  }
};

// True when y is non-increasing along the (x, y)-sorted order — i.e.
// the input is a clean staircase, which licenses the binary-search row
// skip inside the merge.
bool IsMonotoneStaircase(const std::vector<double>& ys) {
  for (size_t i = 1; i < ys.size(); ++i) {
    if (ys[i] > ys[i - 1]) return false;
  }
  return true;
}

}  // namespace

void FlatMerge2(const Front2& a, const Front2& b, Front2* out,
                ParetoScratch* scratch) {
  out->clear();
  scratch->pairs.clear();
  const size_t an = a.size();
  const size_t bn = b.size();
  if (an == 0 || bn == 0) return;

  // Stage both inputs sorted by (x, y, position) into contiguous scratch,
  // remembering sorted-position -> original-position maps.
  SortByXY(a.x.data(), a.y.data(), an, &scratch->order);
  scratch->ax.resize(an);
  scratch->ay.resize(an);
  scratch->amap.resize(an);
  for (size_t i = 0; i < an; ++i) {
    const uint32_t src = scratch->order[i];
    scratch->ax[i] = a.x[src];
    scratch->ay[i] = a.y[src];
    scratch->amap[i] = src;
  }
  SortByXY(b.x.data(), b.y.data(), bn, &scratch->order);
  scratch->bx.resize(bn);
  scratch->by.resize(bn);
  scratch->bmap.resize(bn);
  for (size_t j = 0; j < bn; ++j) {
    const uint32_t src = scratch->order[j];
    scratch->bx[j] = b.x[src];
    scratch->by[j] = b.y[src];
    scratch->bmap[j] = src;
  }
  const double* ax = scratch->ax.data();
  const double* ay = scratch->ay.data();
  const double* bx = scratch->bx.data();
  const double* by = scratch->by.data();
  // A front's staircase has y monotone in sorted order; only then can a
  // row binary-search past cells that can no longer survive. Non-front
  // inputs (never produced by the solvers) still merge correctly, one
  // cell at a time.
  const bool can_skip = IsMonotoneStaircase(scratch->by);

  auto& heap = scratch->heap;
  auto& group = scratch->group;
  auto& keys = scratch->keys;
  heap.clear();
  keys.clear();

  // The sum matrix M[i][j] = sorted_a[i] + sorted_b[j] is monotone in x
  // along both axes, so popping a min-heap of per-row frontier cells
  // enumerates cells in nondecreasing sum-x. best_y is the minimum sum-y
  // over all cells with strictly smaller sum-x; a cell whose sum-y
  // reaches best_y can never be kept later (kept y values only
  // decrease), which is what the row skip exploits.
  double best_y = kInf;

  // Pushes row i's next viable cell at position >= j, or retires the row.
  auto push_row = [&](uint32_t i, uint32_t j) {
    if (can_skip && j < bn && ay[i] + by[j] >= best_y) {
      // First j' with sum-y < best_y; sum-y is non-increasing in j.
      size_t lo = j + 1, hi = bn;
      while (lo < hi) {
        const size_t mid = lo + (hi - lo) / 2;
        if (ay[i] + by[mid] < best_y) {
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
      j = static_cast<uint32_t>(lo);
    }
    if (j >= bn) return;
    heap.push_back({ax[i] + bx[j], ay[i] + by[j], i, j});
    std::push_heap(heap.begin(), heap.end(), CellGreater{});
  };

  for (uint32_t i = 0; i < an; ++i) push_row(i, 0);

  while (!heap.empty()) {
    // Drain the equal-sum-x group: within it, survivors are the cells
    // achieving the group minimum sum-y (there may be several — exact
    // duplicates are kept), provided they beat best_y from strictly
    // smaller x.
    const double gx = heap.front().x;
    group.clear();
    double gmin = kInf;
    while (!heap.empty() && heap.front().x == gx) {
      std::pop_heap(heap.begin(), heap.end(), CellGreater{});
      const ParetoScratch::HeapCell cell = heap.back();
      heap.pop_back();
      gmin = std::min(gmin, cell.y);
      group.push_back(cell);
      push_row(cell.i, cell.j + 1);
    }
    if (gmin < best_y) {
      for (const auto& cell : group) {
        if (cell.y == gmin) {
          keys.push_back(static_cast<uint64_t>(scratch->amap[cell.i]) * bn +
                         scratch->bmap[cell.j]);
        }
      }
      best_y = gmin;
    }
  }

  // Emit in cross-product order — the order the naive path's stable
  // filter produces — recomputing each sum with the same expression.
  std::sort(keys.begin(), keys.end());
  out->reserve(keys.size());
  scratch->pairs.reserve(keys.size());
  for (uint64_t key : keys) {
    const uint32_t i = static_cast<uint32_t>(key / bn);
    const uint32_t j = static_cast<uint32_t>(key % bn);
    out->Append(a.x[i] + b.x[j], a.y[i] + b.y[j], out->size());
    scratch->pairs.push_back({i, j});
  }
  // Merge-size distributions for the profiler (worker-thread safe; one
  // relaxed load each when no session is installed).
  obs::Observe("pareto.merge_in_points", static_cast<double>(an + bn));
  obs::Observe("pareto.merge_out_points", static_cast<double>(out->size()));
}

double FlatHypervolume2(const double* x, const double* y, size_t n,
                        double ref_x, double ref_y, ParetoScratch* scratch) {
  if (n == 0) return 0.0;
  SortByXY(x, y, n, &scratch->order);
  // Left-to-right staircase strips [x_i, ref_x] x [y_i, last_y].
  // Dominated and duplicate points fail the strict-improvement test and
  // contribute no term, so the accumulation order and terms are exactly
  // those of the filter-then-sum path.
  double hv = 0.0;
  double last_y = ref_y;
  for (uint32_t idx : scratch->order) {
    if (x[idx] >= ref_x) break;
    const double clipped_y = std::min(y[idx], last_y);
    if (clipped_y < last_y) {
      hv += (ref_x - x[idx]) * (last_y - clipped_y);
      last_y = clipped_y;
    }
  }
  return hv;
}

bool ParetoInsert(Front2* front, double px, double py, size_t id) {
  // Position of the first point lex->= (px, py); everything before is
  // strictly lex-smaller.
  const size_t n = front->size();
  size_t lo = 0, hi = n;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    const bool less = front->x[mid] < px ||
                      (front->x[mid] == px && front->y[mid] < py);
    if (less) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const size_t pos = lo;
  // In a sorted front y is non-increasing, so the tightest potential
  // dominator is the immediate predecessor: lex-smaller with y <= py
  // always strictly dominates (strict in x, or equal x with strictly
  // smaller y).
  if (pos > 0 && front->y[pos - 1] <= py) return false;
  // Points from pos on have x >= px; those with y >= py are dominated
  // unless they are exact duplicates of (px, py), which sort first and
  // are kept. They form a contiguous run.
  size_t cut = pos;
  while (cut < n && front->x[cut] == px && front->y[cut] == py) ++cut;
  size_t end = cut;
  while (end < n && front->y[end] >= py) ++end;
  front->x.erase(front->x.begin() + cut, front->x.begin() + end);
  front->y.erase(front->y.begin() + cut, front->y.begin() + end);
  front->payload.erase(front->payload.begin() + cut,
                       front->payload.begin() + end);
  front->x.insert(front->x.begin() + pos, px);
  front->y.insert(front->y.begin() + pos, py);
  front->payload.insert(front->payload.begin() + pos, id);
  return true;
}

// ---- k = 3 primitives ----------------------------------------------------

namespace {

// Canonical 3-D sweep order: (x, y, z, position). Exact duplicates sort
// adjacently, and any strict dominator of a point sorts before it.
void SortByXYZ(const double* x, const double* y, const double* z, size_t n,
               std::vector<uint32_t>* order) {
  order->resize(n);
  std::iota(order->begin(), order->end(), 0u);
  std::sort(order->begin(), order->end(), [&](uint32_t i, uint32_t j) {
    if (x[i] != x[j]) return x[i] < x[j];
    if (y[i] != y[j]) return y[i] < y[j];
    if (z[i] != z[j]) return z[i] < z[j];
    return i < j;
  });
}

// (y, z) minima staircase over the kept points of a lexicographic sweep:
// sy strictly ascending, sz strictly descending, so the best (smallest)
// z among kept points with y' <= py is the entry at the largest y' <= py.

// True when some staircase point weakly dominates (py, pz) on (y, z).
bool StairCovers(const std::vector<double>& sy, const std::vector<double>& sz,
                 double py, double pz) {
  const auto it = std::upper_bound(sy.begin(), sy.end(), py);
  if (it == sy.begin()) return false;
  return sz[static_cast<size_t>(it - sy.begin()) - 1] <= pz;
}

// Inserts a kept point's (py, pz), preserving the invariant. A point
// already weakly covered contributes nothing and is skipped.
void StairInsert(std::vector<double>* sy, std::vector<double>* sz, double py,
                 double pz) {
  const auto it = std::upper_bound(sy->begin(), sy->end(), py);
  size_t pos = static_cast<size_t>(it - sy->begin());
  if (pos > 0 && (*sz)[pos - 1] <= pz) return;  // covered: useless entry
  if (pos > 0 && (*sy)[pos - 1] == py) {
    // Same y, strictly better z: tighten in place.
    --pos;
    (*sz)[pos] = pz;
  } else {
    sy->insert(sy->begin() + pos, py);
    sz->insert(sz->begin() + pos, pz);
  }
  // Entries after pos with z >= pz are now covered.
  size_t end = pos + 1;
  while (end < sz->size() && (*sz)[end] >= pz) ++end;
  sy->erase(sy->begin() + pos + 1, sy->begin() + end);
  sz->erase(sz->begin() + pos + 1, sz->begin() + end);
}

}  // namespace

void FlatParetoPositions3(const double* x, const double* y, const double* z,
                          size_t n, std::vector<uint32_t>* kept,
                          ParetoScratch* scratch) {
  kept->clear();
  if (n == 0) return;
  SortByXYZ(x, y, z, n, &scratch->order);
  auto& sy = scratch->sy;
  auto& sz = scratch->sz;
  sy.clear();
  sz.clear();
  // Lexicographic sweep: any strict dominator of point p sorts before p,
  // and a kept earlier point with y' <= y and z' <= z dominates (x' <= x
  // is implied; the tuples are distinct because exact duplicates are
  // handled by decision-sharing below). Dominated earlier points never
  // need to be consulted: their own kept dominator covers transitively.
  double prev_x = std::numeric_limits<double>::quiet_NaN();
  double prev_y = prev_x, prev_z = prev_x;
  bool prev_kept = false;
  bool first = true;
  for (uint32_t idx : scratch->order) {
    if (!first && x[idx] == prev_x && y[idx] == prev_y && z[idx] == prev_z) {
      if (prev_kept) kept->push_back(idx);
      continue;
    }
    first = false;
    prev_x = x[idx];
    prev_y = y[idx];
    prev_z = z[idx];
    prev_kept = !StairCovers(sy, sz, y[idx], z[idx]);
    if (prev_kept) {
      kept->push_back(idx);
      StairInsert(&sy, &sz, y[idx], z[idx]);
    }
  }
  std::sort(kept->begin(), kept->end());
}

void FlatPareto3(Front3* front, ParetoScratch* scratch) {
  FlatParetoPositions3(front->x.data(), front->y.data(), front->z.data(),
                       front->size(), &scratch->kept, scratch);
  const std::vector<uint32_t>& keep = scratch->kept;
  if (keep.size() == front->size()) return;
  for (size_t p = 0; p < keep.size(); ++p) {
    const uint32_t src = keep[p];
    front->x[p] = front->x[src];
    front->y[p] = front->y[src];
    front->z[p] = front->z[src];
    front->payload[p] = front->payload[src];
  }
  front->x.resize(keep.size());
  front->y.resize(keep.size());
  front->z.resize(keep.size());
  front->payload.resize(keep.size());
}

namespace {

struct Cell3Greater {
  bool operator()(const ParetoScratch::HeapCell3& a,
                  const ParetoScratch::HeapCell3& b) const {
    return a.x > b.x;
  }
};

}  // namespace

void FlatMerge3(const Front3& a, const Front3& b, Front3* out,
                ParetoScratch* scratch) {
  out->clear();
  scratch->pairs.clear();
  const size_t an = a.size();
  const size_t bn = b.size();
  if (an == 0 || bn == 0) return;

  // Stage both inputs sorted by (x, y, z, position).
  SortByXYZ(a.x.data(), a.y.data(), a.z.data(), an, &scratch->order);
  scratch->ax.resize(an);
  scratch->ay.resize(an);
  scratch->az.resize(an);
  scratch->amap.resize(an);
  for (size_t i = 0; i < an; ++i) {
    const uint32_t src = scratch->order[i];
    scratch->ax[i] = a.x[src];
    scratch->ay[i] = a.y[src];
    scratch->az[i] = a.z[src];
    scratch->amap[i] = src;
  }
  SortByXYZ(b.x.data(), b.y.data(), b.z.data(), bn, &scratch->order);
  scratch->bx.resize(bn);
  scratch->by.resize(bn);
  scratch->bz.resize(bn);
  scratch->bmap.resize(bn);
  for (size_t j = 0; j < bn; ++j) {
    const uint32_t src = scratch->order[j];
    scratch->bx[j] = b.x[src];
    scratch->by[j] = b.y[src];
    scratch->bz[j] = b.z[src];
    scratch->bmap[j] = src;
  }
  const double* ax = scratch->ax.data();
  const double* ay = scratch->ay.data();
  const double* az = scratch->az.data();
  const double* bx = scratch->bx.data();
  const double* by = scratch->by.data();
  const double* bz = scratch->bz.data();

  auto& heap = scratch->heap3;
  auto& group = scratch->group3;
  auto& keys = scratch->keys;
  auto& sy = scratch->sy;
  auto& sz = scratch->sz;
  heap.clear();
  keys.clear();
  sy.clear();
  sz.clear();

  // Per-row frontier cells on a min-heap keyed by sum-x: row i's cells
  // (i, 0..bn) have nondecreasing sum-x, so popping the heap enumerates
  // the whole product grouped by nondecreasing sum-x — without the 2-D
  // kernel's binary-search row skip (no single scalar prunes a 3-D row).
  auto push_row = [&](uint32_t i, uint32_t j) {
    if (j >= bn) return;
    heap.push_back({ax[i] + bx[j], ay[i] + by[j], az[i] + bz[j], i, j});
    std::push_heap(heap.begin(), heap.end(), Cell3Greater{});
  };
  for (uint32_t i = 0; i < an; ++i) push_row(i, 0);

  auto& gy = scratch->gy;
  auto& gz = scratch->gz;
  while (!heap.empty()) {
    // Drain the equal-sum-x group.
    const double gx = heap.front().x;
    group.clear();
    while (!heap.empty() && heap.front().x == gx) {
      std::pop_heap(heap.begin(), heap.end(), Cell3Greater{});
      const ParetoScratch::HeapCell3 cell = heap.back();
      heap.pop_back();
      group.push_back(cell);
      push_row(cell.i, cell.j + 1);
    }
    // Within the group the first coordinates are equal, so 3-D dominance
    // reduces to 2-D dominance on (sum-y, sum-z) — multiset semantics
    // included (equal cells never dominate each other).
    gy.resize(group.size());
    gz.resize(group.size());
    for (size_t g = 0; g < group.size(); ++g) {
      gy[g] = group[g].y;
      gz[g] = group[g].z;
    }
    FlatParetoPositions(gy.data(), gz.data(), group.size(), &scratch->kept,
                        scratch);
    // Survivors must also escape every kept cell from strictly smaller
    // sum-x: weak (y, z)-coverage there is strict 3-D dominance. Query
    // all survivors first, then insert — same-group survivors with equal
    // (y, z) are duplicates, not dominators.
    size_t new_from = keys.size();
    for (uint32_t g : scratch->kept) {
      if (StairCovers(sy, sz, group[g].y, group[g].z)) continue;
      keys.push_back(static_cast<uint64_t>(scratch->amap[group[g].i]) * bn +
                     scratch->bmap[group[g].j]);
      // Stash the staircase coordinates after the key so the insert pass
      // below does not re-derive them: reuse gy/gz slots indexed from 0.
      gy[keys.size() - 1 - new_from] = group[g].y;
      gz[keys.size() - 1 - new_from] = group[g].z;
    }
    for (size_t p = 0; p < keys.size() - new_from; ++p) {
      StairInsert(&sy, &sz, gy[p], gz[p]);
    }
  }

  // Emit in cross-product order with the naive path's exact sums.
  std::sort(keys.begin(), keys.end());
  out->reserve(keys.size());
  scratch->pairs.reserve(keys.size());
  for (uint64_t key : keys) {
    const uint32_t i = static_cast<uint32_t>(key / bn);
    const uint32_t j = static_cast<uint32_t>(key % bn);
    out->Append(a.x[i] + b.x[j], a.y[i] + b.y[j], a.z[i] + b.z[j],
                out->size());
    scratch->pairs.push_back({i, j});
  }
  obs::Observe("pareto.merge_in_points", static_cast<double>(an + bn));
  obs::Observe("pareto.merge_out_points", static_cast<double>(out->size()));
}

double FlatHypervolume3(const double* x, const double* y, const double* z,
                        size_t n, double ref_x, double ref_y, double ref_z,
                        ParetoScratch* scratch) {
  if (n == 0) return 0.0;
  // Slab sweep mirroring the recursive Hypervolume term for term: sort
  // by z (position ties — tied slabs have depth 0 and contribute
  // nothing, so the tie order cannot change the sum), and for each slab
  // accumulate depth * area of the 2-D staircase of every point at or
  // below it. The 2-D kernel re-sorts internally, so passing the prefix
  // in z order yields the same area Hypervolume2D computes.
  auto& order = scratch->order;
  order.resize(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t i, uint32_t j) {
    if (z[i] != z[j]) return z[i] < z[j];
    return i < j;
  });
  auto& hx = scratch->ax;
  auto& hy = scratch->ay;
  auto& hz = scratch->az;
  hx.resize(n);
  hy.resize(n);
  hz.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t src = order[i];
    hx[i] = x[src];
    hy[i] = y[src];
    hz[i] = z[src];
  }
  double hv = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double z_lo = hz[i];
    if (z_lo >= ref_z) break;
    const double z_hi = (i + 1 < n) ? std::min(hz[i + 1], ref_z) : ref_z;
    const double depth = z_hi - z_lo;
    if (depth <= 0) continue;
    hv += depth *
          FlatHypervolume2(hx.data(), hy.data(), i + 1, ref_x, ref_y, scratch);
  }
  return hv;
}

bool ParetoInsert3(Front3* front, double px, double py, double pz, size_t id) {
  const size_t n = front->size();
  // Position of the first point lex->= (px, py, pz).
  size_t lo = 0, hi = n;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    const double mx = front->x[mid], my = front->y[mid], mz = front->z[mid];
    const bool less = mx < px || (mx == px && (my < py ||
                                  (my == py && mz < pz)));
    if (less) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const size_t pos = lo;
  // A dominator is lexicographically smaller (strictly — equal tuples do
  // not dominate), so it lives in [0, pos): any such point with y <= py
  // and z <= pz dominates. Unlike 2-D there is no single tightest
  // predecessor, so scan the prefix.
  for (size_t q = 0; q < pos; ++q) {
    if (front->y[q] <= py && front->z[q] <= pz) return false;
  }
  // Exact duplicates of the new point sort at [pos, cut) and are kept.
  size_t cut = pos;
  while (cut < n && front->x[cut] == px && front->y[cut] == py &&
         front->z[cut] == pz) {
    ++cut;
  }
  // Points from cut on have x >= px; the new point dominates those with
  // y >= py and z >= pz (distinct by construction). They are not
  // contiguous in 3-D: compact in one forward pass.
  size_t w = cut;
  for (size_t q = cut; q < n; ++q) {
    if (front->y[q] >= py && front->z[q] >= pz) continue;  // dominated
    front->x[w] = front->x[q];
    front->y[w] = front->y[q];
    front->z[w] = front->z[q];
    front->payload[w] = front->payload[q];
    ++w;
  }
  front->x.resize(w);
  front->y.resize(w);
  front->z.resize(w);
  front->payload.resize(w);
  front->x.insert(front->x.begin() + pos, px);
  front->y.insert(front->y.begin() + pos, py);
  front->z.insert(front->z.begin() + pos, pz);
  front->payload.insert(front->payload.begin() + pos, id);
  return true;
}

void EpsilonThin2(Front2* front, double eps, ParetoScratch* scratch) {
  if (eps <= 0.0 || front->size() <= 2) return;
  const size_t n = front->size();
  SortByXY(front->x.data(), front->y.data(), n, &scratch->order);
  auto& keep = scratch->kept;
  keep.clear();
  // Walk the staircase keeping a point only when it escapes the last
  // survivor's epsilon box on y; the min-x (first) and min-y (last)
  // extremes always survive so the front's span is preserved.
  double kept_y = kInf;
  for (size_t p = 0; p < n; ++p) {
    const uint32_t idx = scratch->order[p];
    const bool is_extreme = p == 0 || p + 1 == n;
    if (is_extreme || kept_y > (1.0 + eps) * front->y[idx]) {
      keep.push_back(idx);
      kept_y = front->y[idx];
    }
  }
  if (keep.size() == n) return;
  std::sort(keep.begin(), keep.end());
  for (size_t p = 0; p < keep.size(); ++p) {
    const uint32_t src = keep[p];
    front->x[p] = front->x[src];
    front->y[p] = front->y[src];
    front->payload[p] = front->payload[src];
  }
  front->x.resize(keep.size());
  front->y.resize(keep.size());
  front->payload.resize(keep.size());
}

}  // namespace sparkopt
