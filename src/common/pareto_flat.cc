#include "common/pareto_flat.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "obs/trace.h"

namespace sparkopt {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Sorts `order` (resized/iota'd here) by (x, y, position). This is the
// canonical sweep order shared by every kernel primitive: x ascending,
// ties by y ascending, exact duplicates by position so the sweep is
// deterministic.
void SortByXY(const double* x, const double* y, size_t n,
              std::vector<uint32_t>* order) {
  order->resize(n);
  std::iota(order->begin(), order->end(), 0u);
  std::sort(order->begin(), order->end(), [&](uint32_t i, uint32_t j) {
    if (x[i] != x[j]) return x[i] < x[j];
    if (y[i] != y[j]) return y[i] < y[j];
    return i < j;
  });
}

}  // namespace

void FlatParetoPositions(const double* x, const double* y, size_t n,
                         std::vector<uint32_t>* kept,
                         ParetoScratch* scratch) {
  kept->clear();
  if (n == 0) return;
  SortByXY(x, y, n, &scratch->order);
  // Sweep keeping the running minimum of y. A point survives when it
  // strictly improves the minimum, or is an exact duplicate of the last
  // survivor (duplicates sort adjacently) — the non-dominated multiset.
  double best_y = kInf;
  double prev_x = std::numeric_limits<double>::quiet_NaN();
  double prev_y = std::numeric_limits<double>::quiet_NaN();
  for (uint32_t idx : scratch->order) {
    if (!kept->empty() && x[idx] == prev_x && y[idx] == prev_y) {
      kept->push_back(idx);
      continue;
    }
    if (y[idx] < best_y) {
      kept->push_back(idx);
      best_y = y[idx];
      prev_x = x[idx];
      prev_y = y[idx];
    }
  }
  std::sort(kept->begin(), kept->end());
}

void FlatPareto2(Front2* front, ParetoScratch* scratch) {
  FlatParetoPositions(front->x.data(), front->y.data(), front->size(),
                      &scratch->kept, scratch);
  const std::vector<uint32_t>& keep = scratch->kept;
  if (keep.size() == front->size()) return;
  for (size_t p = 0; p < keep.size(); ++p) {
    const uint32_t src = keep[p];
    front->x[p] = front->x[src];
    front->y[p] = front->y[src];
    front->payload[p] = front->payload[src];
  }
  front->x.resize(keep.size());
  front->y.resize(keep.size());
  front->payload.resize(keep.size());
}

namespace {

// Min-heap on sum-x. std::push_heap builds a max-heap, so the
// comparator is inverted.
struct CellGreater {
  bool operator()(const ParetoScratch::HeapCell& a,
                  const ParetoScratch::HeapCell& b) const {
    return a.x > b.x;
  }
};

// True when y is non-increasing along the (x, y)-sorted order — i.e.
// the input is a clean staircase, which licenses the binary-search row
// skip inside the merge.
bool IsMonotoneStaircase(const std::vector<double>& ys) {
  for (size_t i = 1; i < ys.size(); ++i) {
    if (ys[i] > ys[i - 1]) return false;
  }
  return true;
}

}  // namespace

void FlatMerge2(const Front2& a, const Front2& b, Front2* out,
                ParetoScratch* scratch) {
  out->clear();
  scratch->pairs.clear();
  const size_t an = a.size();
  const size_t bn = b.size();
  if (an == 0 || bn == 0) return;

  // Stage both inputs sorted by (x, y, position) into contiguous scratch,
  // remembering sorted-position -> original-position maps.
  SortByXY(a.x.data(), a.y.data(), an, &scratch->order);
  scratch->ax.resize(an);
  scratch->ay.resize(an);
  scratch->amap.resize(an);
  for (size_t i = 0; i < an; ++i) {
    const uint32_t src = scratch->order[i];
    scratch->ax[i] = a.x[src];
    scratch->ay[i] = a.y[src];
    scratch->amap[i] = src;
  }
  SortByXY(b.x.data(), b.y.data(), bn, &scratch->order);
  scratch->bx.resize(bn);
  scratch->by.resize(bn);
  scratch->bmap.resize(bn);
  for (size_t j = 0; j < bn; ++j) {
    const uint32_t src = scratch->order[j];
    scratch->bx[j] = b.x[src];
    scratch->by[j] = b.y[src];
    scratch->bmap[j] = src;
  }
  const double* ax = scratch->ax.data();
  const double* ay = scratch->ay.data();
  const double* bx = scratch->bx.data();
  const double* by = scratch->by.data();
  // A front's staircase has y monotone in sorted order; only then can a
  // row binary-search past cells that can no longer survive. Non-front
  // inputs (never produced by the solvers) still merge correctly, one
  // cell at a time.
  const bool can_skip = IsMonotoneStaircase(scratch->by);

  auto& heap = scratch->heap;
  auto& group = scratch->group;
  auto& keys = scratch->keys;
  heap.clear();
  keys.clear();

  // The sum matrix M[i][j] = sorted_a[i] + sorted_b[j] is monotone in x
  // along both axes, so popping a min-heap of per-row frontier cells
  // enumerates cells in nondecreasing sum-x. best_y is the minimum sum-y
  // over all cells with strictly smaller sum-x; a cell whose sum-y
  // reaches best_y can never be kept later (kept y values only
  // decrease), which is what the row skip exploits.
  double best_y = kInf;

  // Pushes row i's next viable cell at position >= j, or retires the row.
  auto push_row = [&](uint32_t i, uint32_t j) {
    if (can_skip && j < bn && ay[i] + by[j] >= best_y) {
      // First j' with sum-y < best_y; sum-y is non-increasing in j.
      size_t lo = j + 1, hi = bn;
      while (lo < hi) {
        const size_t mid = lo + (hi - lo) / 2;
        if (ay[i] + by[mid] < best_y) {
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
      j = static_cast<uint32_t>(lo);
    }
    if (j >= bn) return;
    heap.push_back({ax[i] + bx[j], ay[i] + by[j], i, j});
    std::push_heap(heap.begin(), heap.end(), CellGreater{});
  };

  for (uint32_t i = 0; i < an; ++i) push_row(i, 0);

  while (!heap.empty()) {
    // Drain the equal-sum-x group: within it, survivors are the cells
    // achieving the group minimum sum-y (there may be several — exact
    // duplicates are kept), provided they beat best_y from strictly
    // smaller x.
    const double gx = heap.front().x;
    group.clear();
    double gmin = kInf;
    while (!heap.empty() && heap.front().x == gx) {
      std::pop_heap(heap.begin(), heap.end(), CellGreater{});
      const ParetoScratch::HeapCell cell = heap.back();
      heap.pop_back();
      gmin = std::min(gmin, cell.y);
      group.push_back(cell);
      push_row(cell.i, cell.j + 1);
    }
    if (gmin < best_y) {
      for (const auto& cell : group) {
        if (cell.y == gmin) {
          keys.push_back(static_cast<uint64_t>(scratch->amap[cell.i]) * bn +
                         scratch->bmap[cell.j]);
        }
      }
      best_y = gmin;
    }
  }

  // Emit in cross-product order — the order the naive path's stable
  // filter produces — recomputing each sum with the same expression.
  std::sort(keys.begin(), keys.end());
  out->reserve(keys.size());
  scratch->pairs.reserve(keys.size());
  for (uint64_t key : keys) {
    const uint32_t i = static_cast<uint32_t>(key / bn);
    const uint32_t j = static_cast<uint32_t>(key % bn);
    out->Append(a.x[i] + b.x[j], a.y[i] + b.y[j], out->size());
    scratch->pairs.push_back({i, j});
  }
  // Merge-size distributions for the profiler (worker-thread safe; one
  // relaxed load each when no session is installed).
  obs::Observe("pareto.merge_in_points", static_cast<double>(an + bn));
  obs::Observe("pareto.merge_out_points", static_cast<double>(out->size()));
}

double FlatHypervolume2(const double* x, const double* y, size_t n,
                        double ref_x, double ref_y, ParetoScratch* scratch) {
  if (n == 0) return 0.0;
  SortByXY(x, y, n, &scratch->order);
  // Left-to-right staircase strips [x_i, ref_x] x [y_i, last_y].
  // Dominated and duplicate points fail the strict-improvement test and
  // contribute no term, so the accumulation order and terms are exactly
  // those of the filter-then-sum path.
  double hv = 0.0;
  double last_y = ref_y;
  for (uint32_t idx : scratch->order) {
    if (x[idx] >= ref_x) break;
    const double clipped_y = std::min(y[idx], last_y);
    if (clipped_y < last_y) {
      hv += (ref_x - x[idx]) * (last_y - clipped_y);
      last_y = clipped_y;
    }
  }
  return hv;
}

bool ParetoInsert(Front2* front, double px, double py, size_t id) {
  // Position of the first point lex->= (px, py); everything before is
  // strictly lex-smaller.
  const size_t n = front->size();
  size_t lo = 0, hi = n;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    const bool less = front->x[mid] < px ||
                      (front->x[mid] == px && front->y[mid] < py);
    if (less) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const size_t pos = lo;
  // In a sorted front y is non-increasing, so the tightest potential
  // dominator is the immediate predecessor: lex-smaller with y <= py
  // always strictly dominates (strict in x, or equal x with strictly
  // smaller y).
  if (pos > 0 && front->y[pos - 1] <= py) return false;
  // Points from pos on have x >= px; those with y >= py are dominated
  // unless they are exact duplicates of (px, py), which sort first and
  // are kept. They form a contiguous run.
  size_t cut = pos;
  while (cut < n && front->x[cut] == px && front->y[cut] == py) ++cut;
  size_t end = cut;
  while (end < n && front->y[end] >= py) ++end;
  front->x.erase(front->x.begin() + cut, front->x.begin() + end);
  front->y.erase(front->y.begin() + cut, front->y.begin() + end);
  front->payload.erase(front->payload.begin() + cut,
                       front->payload.begin() + end);
  front->x.insert(front->x.begin() + pos, px);
  front->y.insert(front->y.begin() + pos, py);
  front->payload.insert(front->payload.begin() + pos, id);
  return true;
}

void EpsilonThin2(Front2* front, double eps, ParetoScratch* scratch) {
  if (eps <= 0.0 || front->size() <= 2) return;
  const size_t n = front->size();
  SortByXY(front->x.data(), front->y.data(), n, &scratch->order);
  auto& keep = scratch->kept;
  keep.clear();
  // Walk the staircase keeping a point only when it escapes the last
  // survivor's epsilon box on y; the min-x (first) and min-y (last)
  // extremes always survive so the front's span is preserved.
  double kept_y = kInf;
  for (size_t p = 0; p < n; ++p) {
    const uint32_t idx = scratch->order[p];
    const bool is_extreme = p == 0 || p + 1 == n;
    if (is_extreme || kept_y > (1.0 + eps) * front->y[idx]) {
      keep.push_back(idx);
      kept_y = front->y[idx];
    }
  }
  if (keep.size() == n) return;
  std::sort(keep.begin(), keep.end());
  for (size_t p = 0; p < keep.size(); ++p) {
    const uint32_t src = keep[p];
    front->x[p] = front->x[src];
    front->y[p] = front->y[src];
    front->payload[p] = front->payload[src];
  }
  front->x.resize(keep.size());
  front->y.resize(keep.size());
  front->payload.resize(keep.size());
}

}  // namespace sparkopt
