#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/thread_safety.h"

/// \file thread_pool.h
/// \brief A small fixed-size worker pool for the solver hot paths.
///
/// Design constraints, in order:
///  1. Determinism. Results of `ParallelFor` are collected by index, so
///     callers that write `out[i]` from iteration i observe bitwise the
///     same outputs at any thread count (including 0/1, which run inline
///     on the calling thread — the sequential path is the degenerate
///     case, not a separate code path).
///  2. Exception safety. The first exception thrown by any iteration is
///     captured and rethrown on the calling thread after all in-flight
///     iterations have drained; remaining iterations are skipped.
///  3. Simplicity. One mutex + condvar task queue is plenty: tasks here
///     are coarse (hundreds of model evaluations each), so queue
///     contention is noise compared to the work.
///
/// Worker threads must not record `obs::Span`s (see src/obs/trace.h:
/// spans are main-thread-only); use the thread-safe
/// `obs::ScopedHistogramTimer` / metric helpers instead.

namespace sparkopt {

/// \brief Fixed-size thread pool with inline fallback.
class ThreadPool {
 public:
  /// How Shutdown treats tasks still waiting in the queue.
  enum class ShutdownMode {
    kDrain,  ///< run every queued task to completion, then stop
    kAbort,  ///< discard queued tasks (their destructors still run)
  };

  /// `num_threads` <= -1 or 0 picks `hardware_concurrency`; 1 normally
  /// means no worker threads at all (every call runs inline on the
  /// caller). `dedicated_single_worker` forces a real worker even at 1 —
  /// what asynchronous Post callers (the tuning service) need from a
  /// single-session pool.
  explicit ThreadPool(int num_threads = 0,
                      bool dedicated_single_worker = false);
  /// Equivalent to Shutdown(ShutdownMode::kDrain) — the historical
  /// implicit-drain destruction semantics.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Stops the pool and joins the workers. Idempotent; the first
  /// call wins the drain-vs-abort decision for tasks queued before it.
  ///
  /// kDrain: workers finish everything already queued. kAbort: queued
  /// tasks are discarded without running — but their destructors run (on
  /// the shutting-down thread, outside the pool lock), so RAII task
  /// wrappers can observe the shed and e.g. fail a promise. Tasks already
  /// executing always run to completion; in-flight ParallelFor calls
  /// finish their remaining iterations on the calling thread. After
  /// Shutdown, Post returns false and Submit/ParallelFor run inline on
  /// the caller.
  void Shutdown(ShutdownMode mode) SPARKOPT_EXCLUDES(mu_);

  /// \brief Fire-and-forget task submission. Returns false (task not
  /// queued, immediately destroyed) once the pool is stopped or when the
  /// pool runs inline (no workers): fire-and-forget has no caller to run
  /// inline on, so inline pools reject rather than surprise-block the
  /// poster. Callers own completion tracking (see Submit for futures).
  bool Post(std::function<void()> task) SPARKOPT_EXCLUDES(mu_);

  /// Tasks discarded by kAbort shutdowns plus tasks rejected by Post.
  uint64_t discarded_tasks() const {
    return discarded_.load(std::memory_order_relaxed);
  }

  /// Number of worker threads (0 when running inline).
  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Effective parallelism: worker count, or 1 when inline.
  int parallelism() const { return std::max(num_threads(), 1); }

  /// \brief Runs `fn(i)` for every i in [0, n).
  ///
  /// Iterations are claimed dynamically (an atomic cursor), so the
  /// assignment of iterations to threads is nondeterministic — callers
  /// must make each iteration independent and index-addressed. Blocks
  /// until all iterations finish; rethrows the first captured exception.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// \brief Submits one task; the future carries the result/exception.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    // Inline pools and stopped pools run the task on the caller: Submit
    // promises a fulfilled future either way.
    if (workers_.empty() || !Enqueue([task] { (*task)(); })) {
      (*task)();
    }
    return result;
  }

  /// The pool shared by solver entry points that are called too often to
  /// pay thread start-up each time (runtime re-optimization). Sized at
  /// hardware_concurrency on first use with threads > 1; callers cap
  /// their fan-out themselves via their own options.
  static ThreadPool& Shared();

 private:
  /// Queues `task` unless the pool is stopped (then returns false and
  /// destroys the task without running it).
  bool Enqueue(std::function<void()> task) SPARKOPT_EXCLUDES(mu_);
  void WorkerLoop() SPARKOPT_EXCLUDES(mu_);

  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar cv_;
  std::queue<std::function<void()>> queue_ SPARKOPT_GUARDED_BY(mu_);
  bool stop_ SPARKOPT_GUARDED_BY(mu_) = false;
  bool joined_ SPARKOPT_GUARDED_BY(mu_) = false;
  std::atomic<uint64_t> discarded_{0};
};

}  // namespace sparkopt
