#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/thread_safety.h"

/// \file thread_pool.h
/// \brief A small fixed-size worker pool for the solver hot paths.
///
/// Design constraints, in order:
///  1. Determinism. Results of `ParallelFor` are collected by index, so
///     callers that write `out[i]` from iteration i observe bitwise the
///     same outputs at any thread count (including 0/1, which run inline
///     on the calling thread — the sequential path is the degenerate
///     case, not a separate code path).
///  2. Exception safety. The first exception thrown by any iteration is
///     captured and rethrown on the calling thread after all in-flight
///     iterations have drained; remaining iterations are skipped.
///  3. Simplicity. One mutex + condvar task queue is plenty: tasks here
///     are coarse (hundreds of model evaluations each), so queue
///     contention is noise compared to the work.
///
/// Worker threads must not record `obs::Span`s (see src/obs/trace.h:
/// spans are main-thread-only); use the thread-safe
/// `obs::ScopedHistogramTimer` / metric helpers instead.

namespace sparkopt {

/// \brief Fixed-size thread pool with inline fallback.
class ThreadPool {
 public:
  /// `num_threads` <= -1 or 0 picks `hardware_concurrency`; 1 means no
  /// worker threads at all (every call runs inline on the caller).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 when running inline).
  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Effective parallelism: worker count, or 1 when inline.
  int parallelism() const { return std::max(num_threads(), 1); }

  /// \brief Runs `fn(i)` for every i in [0, n).
  ///
  /// Iterations are claimed dynamically (an atomic cursor), so the
  /// assignment of iterations to threads is nondeterministic — callers
  /// must make each iteration independent and index-addressed. Blocks
  /// until all iterations finish; rethrows the first captured exception.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// \brief Submits one task; the future carries the result/exception.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    if (workers_.empty()) {
      (*task)();
      return result;
    }
    Enqueue([task] { (*task)(); });
    return result;
  }

  /// The pool shared by solver entry points that are called too often to
  /// pay thread start-up each time (runtime re-optimization). Sized at
  /// hardware_concurrency on first use with threads > 1; callers cap
  /// their fan-out themselves via their own options.
  static ThreadPool& Shared();

 private:
  void Enqueue(std::function<void()> task) SPARKOPT_EXCLUDES(mu_);
  void WorkerLoop() SPARKOPT_EXCLUDES(mu_);

  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar cv_;
  std::queue<std::function<void()>> queue_ SPARKOPT_GUARDED_BY(mu_);
  bool stop_ SPARKOPT_GUARDED_BY(mu_) = false;
};

}  // namespace sparkopt
