#include "service/inference_batcher.h"

#include <algorithm>
#include <chrono>

#include "obs/trace.h"

namespace sparkopt {

InferenceBatcher::InferenceBatcher(InferenceBatcherOptions opts)
    : opts_(opts) {}

void InferenceBatcher::TakePendingLocked(std::vector<Request*>* batch) {
  batch->swap(pending_);
  pending_.clear();
  pending_rows_ = 0;
  leader_ = nullptr;
}

void InferenceBatcher::ExecuteBatch(const std::vector<Request*>& batch) {
  if (batch.empty()) return;
  if (batch.size() >= 2) {
    coalesced_batches_.fetch_add(1, std::memory_order_relaxed);
    size_t rows = 0;
    for (const Request* r : batch) rows += r->rows;
    coalesced_rows_.fetch_add(rows, std::memory_order_relaxed);
    obs::Observe("service.batcher_batch_rows", static_cast<double>(rows));
  }
  // Group by regressor in arrival order (deterministic given the batch):
  // requests from different sessions may target different model
  // versions, and rows must only ever meet their own weights.
  thread_local std::vector<double> gather;
  thread_local std::vector<char> grouped;
  thread_local Mlp::BatchScratch scratch;
  grouped.assign(batch.size(), 0);
  for (size_t i = 0; i < batch.size(); ++i) {
    if (grouped[i]) continue;
    const Regressor* reg = batch[i]->reg;
    size_t group_rows = 0;
    for (size_t j = i; j < batch.size(); ++j) {
      if (!grouped[j] && batch[j]->reg == reg) group_rows += batch[j]->rows;
    }
    if (group_rows == batch[i]->rows) {
      // Single-request group: predict straight into its output.
      grouped[i] = 1;
      reg->PredictBatchInto(batch[i]->x, batch[i]->rows, batch[i]->out,
                            &scratch);
      continue;
    }
    const size_t d = static_cast<size_t>(reg->input_dim());
    const size_t k = static_cast<size_t>(reg->output_dim());
    gather.resize(group_rows * d);
    // Gather every member's rows into one flat batch...
    size_t row = 0;
    for (size_t j = i; j < batch.size(); ++j) {
      if (grouped[j] || batch[j]->reg != reg) continue;
      std::copy(batch[j]->x, batch[j]->x + batch[j]->rows * d,
                gather.begin() + row * d);
      row += batch[j]->rows;
    }
    // ...run one kernel over the coalesced rows...
    thread_local std::vector<double> preds;
    preds.resize(group_rows * k);
    reg->PredictBatchInto(gather.data(), group_rows, preds.data(), &scratch);
    // ...and scatter each member's slice back.
    row = 0;
    for (size_t j = i; j < batch.size(); ++j) {
      if (grouped[j] || batch[j]->reg != reg) continue;
      grouped[j] = 1;
      std::copy(preds.begin() + row * k,
                preds.begin() + (row + batch[j]->rows) * k, batch[j]->out);
      row += batch[j]->rows;
    }
  }
}

void InferenceBatcher::Predict(const Regressor& reg, const double* x,
                               size_t rows, double* out) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  rows_.fetch_add(rows, std::memory_order_relaxed);
  if (!opts_.enabled || rows == 0 || rows >= opts_.max_rows) {
    // Solo path: already saturating (or batching off) — no wait, no lock.
    solo_.fetch_add(1, std::memory_order_relaxed);
    thread_local Mlp::BatchScratch scratch;
    reg.PredictBatchInto(x, rows, out, &scratch);
    return;
  }

  Request req{&reg, x, rows, out, /*done=*/false};
  std::vector<Request*> batch;
  {
    MutexLock lock(mu_);
    pending_.push_back(&req);
    pending_rows_ += rows;
    if (pending_rows_ >= opts_.max_rows) {
      TakePendingLocked(&batch);
      full_flushes_.fetch_add(1, std::memory_order_relaxed);
    } else {
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::microseconds(opts_.max_wait_us);
      while (!req.done && batch.empty()) {
        if (leader_ == nullptr) leader_ = &req;
        if (leader_ != &req) {
          cv_.Wait(mu_);
          continue;
        }
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) {
          // Leader deadline: flush whatever accumulated. pending_ cannot
          // be empty while req is undone-and-unclaimed (req is in it),
          // but may be empty if another thread's full flush claimed req
          // in the meantime — then there is simply nothing to do here.
          if (!pending_.empty()) {
            TakePendingLocked(&batch);
            timeout_flushes_.fetch_add(1, std::memory_order_relaxed);
          } else {
            if (leader_ == &req) leader_ = nullptr;
          }
          break;
        }
        cv_.WaitFor(mu_, deadline - now);
      }
    }
  }
  if (!batch.empty()) {
    ExecuteBatch(batch);
    MutexLock lock(mu_);
    for (Request* r : batch) r->done = true;
    cv_.NotifyAll();
  }
  // If a different thread's flush covers this request, wait for it to
  // finish writing `out` before returning.
  {
    MutexLock lock(mu_);
    while (!req.done) cv_.Wait(mu_);
  }
}

InferenceBatcher::Stats InferenceBatcher::stats() const {
  Stats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.rows = rows_.load(std::memory_order_relaxed);
  s.solo = solo_.load(std::memory_order_relaxed);
  s.full_flushes = full_flushes_.load(std::memory_order_relaxed);
  s.timeout_flushes = timeout_flushes_.load(std::memory_order_relaxed);
  s.coalesced_batches = coalesced_batches_.load(std::memory_order_relaxed);
  s.coalesced_rows = coalesced_rows_.load(std::memory_order_relaxed);
  return s;
}

void InferenceBatcher::PublishGauges() const {
  const Stats s = stats();
  obs::GaugeSet("service.batcher_requests", static_cast<double>(s.requests));
  obs::GaugeSet("service.batcher_rows", static_cast<double>(s.rows));
  obs::GaugeSet("service.batcher_full_flushes",
                static_cast<double>(s.full_flushes));
  obs::GaugeSet("service.batcher_timeout_flushes",
                static_cast<double>(s.timeout_flushes));
  obs::GaugeSet("service.batcher_coalesced_batches",
                static_cast<double>(s.coalesced_batches));
}

}  // namespace sparkopt
