#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file load_gen.h
/// \brief Seeded open-loop arrival schedules for service benchmarks.
///
/// An open-loop load generator submits requests at pre-drawn arrival
/// times regardless of completions — the standard way to measure
/// sustained throughput and tail latency without coordinated omission.
/// Arrival schedules are a pure function of (rate, n, seed): every draw
/// comes from a seeded sparkopt::Rng on the calling thread, so the same
/// inputs yield a bitwise-identical schedule on every machine (covered by
/// a determinism test).

namespace sparkopt {

/// \brief Draws `n` Poisson-process arrival times (seconds, ascending,
/// starting after 0) at `rate_per_sec` mean arrivals per second.
///
/// Interarrival gaps are exponential: -ln(1 - U) / rate with U drawn from
/// Rng(seed). `rate_per_sec` must be > 0 and `n` >= 1; violations return
/// an empty schedule.
std::vector<double> PoissonArrivalSchedule(double rate_per_sec, size_t n,
                                           uint64_t seed);

}  // namespace sparkopt
