#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "common/thread_safety.h"
#include "moo/problem.h"
#include "obs/metrics.h"
#include "service/artifact_registry.h"
#include "service/inference_batcher.h"
#include "service/quota.h"
#include "service/shared_eval_cache.h"

/// \file tuning_service.h
/// \brief Tuning-as-a-service: a long-lived in-process daemon serving
/// concurrent tuning requests from multiple tenants over one shared
/// model/workload artifact bundle.
///
/// Request path (DESIGN.md section 15): Submit() checks the tenant's
/// token-bucket quota, reserves a slot in the bounded admission queue
/// (ResourceExhausted on either limit), and posts the request to a pool
/// of N session workers. Each session snapshots the registry's current
/// artifact version once, builds the same objective-model stack a
/// standalone Tuner::Run would (analytic, or learned when the bundle's
/// regressor is trained), layers the cross-query SharedEvalCache and
/// cross-session InferenceBatcher on top, solves with HMOOC, and
/// resolves the request's future with the Pareto front plus the
/// WUN-chosen configuration.
///
/// Determinism: the solver seed is HashCombine(service seed, query seed)
/// — exactly Tuner::Run's derivation — and both service layers are
/// transparent (the cache memoizes a pure function; the batcher
/// coalesces a bitwise-batch-invariant kernel). A service solve is
/// therefore bitwise identical to a direct Tuner solve of the same
/// (query, preference, artifact version) at any session concurrency,
/// which tests/service/tuning_service_test.cc asserts.
///
/// Shutdown: kDrain completes everything admitted; kAbort discards the
/// backlog, failing each shed request's future with Unavailable (the
/// task closure owns the promise through a RAII state object whose
/// destructor reports the shed — see PendingState).

namespace sparkopt {

/// Per-tenant token-bucket parameters (see service/quota.h).
struct TenantQuota {
  double rate_per_sec = 0.0;
  double burst = 1.0;
};

struct TuningServiceOptions {
  /// Concurrent tuning sessions (worker threads). Clamped to >= 1.
  int sessions = 4;
  /// Admitted-but-unstarted request bound; Submit fails with
  /// ResourceExhausted beyond it (open-loop load shedding).
  size_t queue_capacity = 256;
  /// Cross-session inference coalescing (enabled=false reproduces the
  /// naive per-session dispatch the benchmark compares against).
  InferenceBatcherOptions batcher;
  /// Cross-query shared evaluation cache (false = per-solve memo only).
  bool shared_cache_enabled = true;
  SharedEvalCacheOptions shared_cache;
  /// Preference weights used when a request leaves its own empty.
  std::vector<double> default_preference = {0.9, 0.1};
  /// Tenant id -> quota. Tenants absent from the map are unthrottled.
  std::map<std::string, TenantQuota> quotas;
  /// Base solver seed; per-query seeds derive as in Tuner::Run.
  uint64_t seed = 17;
};

struct TuningRequest {
  /// Routing key into the artifact bundle's query set.
  std::string query_name;
  std::string tenant = "default";
  /// Optional per-request preference (empty = service default).
  std::vector<double> preference;

  TuningRequest() = default;
  TuningRequest(std::string query, std::string tenant_id = "default",
                std::vector<double> pref = {})
      : query_name(std::move(query)),
        tenant(std::move(tenant_id)),
        preference(std::move(pref)) {}
};

struct TuningServiceResult {
  uint64_t artifact_version = 0;
  std::string query_name;
  /// Full compile-time Pareto set (fine-grained per-subQ confs included).
  MooRunResult moo;
  /// WUN pick under the request's preference.
  MooSolution chosen;
  double solve_seconds = 0.0;
  double queue_wait_seconds = 0.0;
  bool used_learned_model = false;
  /// This request's shared-cache traffic (0/0 when the cache is off).
  uint64_t shared_cache_hits = 0;
  uint64_t shared_cache_misses = 0;
};

class TuningService {
 public:
  /// `registry` must outlive the service. Publish at least one artifact
  /// bundle before submitting (requests fail FailedPrecondition
  /// otherwise).
  TuningService(ArtifactRegistry* registry, TuningServiceOptions opts = {});
  /// Drains outstanding requests (Shutdown(kDrain)).
  ~TuningService();

  TuningService(const TuningService&) = delete;
  TuningService& operator=(const TuningService&) = delete;

  /// Admits one request. The returned future always resolves: with the
  /// result, with an admission error (ResourceExhausted /
  /// FailedPrecondition / NotFound), or with Unavailable when the
  /// request is shed by Shutdown(kAbort).
  std::future<Result<TuningServiceResult>> Submit(TuningRequest req);

  /// Idempotent. kDrain finishes the backlog; kAbort sheds it (each
  /// shed future resolves with Unavailable). No Submit succeeds after.
  void Shutdown(ThreadPool::ShutdownMode mode);

  struct Stats {
    uint64_t submitted = 0;
    uint64_t completed = 0;  ///< futures resolved with a result
    uint64_t failed = 0;     ///< solve-path errors (NotFound etc.)
    uint64_t rejected_queue_full = 0;
    uint64_t rejected_quota = 0;
    uint64_t shed = 0;       ///< aborted during shutdown
  };
  Stats stats() const;

  /// Service-owned latency instruments (microseconds). Thread-safe;
  /// readable without an obs session — bench_tuning_service reports
  /// p50/p99 from these.
  const obs::Histogram& solve_latency_us() const { return solve_us_; }
  const obs::Histogram& queue_wait_us() const { return queue_wait_us_; }
  /// queue wait + solve, the client-observed latency.
  const obs::Histogram& sojourn_us() const { return sojourn_us_; }

  /// nullptr when the respective layer is disabled.
  const SharedEvalCache* shared_cache() const { return shared_cache_.get(); }
  const InferenceBatcher& batcher() const { return *batcher_; }

  const TuningServiceOptions& options() const { return opts_; }

  /// Publishes "service.*" gauges into the installed obs session (cache,
  /// batcher, admission counters). No-op without a session.
  void PublishGauges() const;

 private:
  /// Owns one admitted request's promise. If the owning task closure is
  /// destroyed without running (Shutdown(kAbort) discarding the pool
  /// queue), the destructor resolves the future with Unavailable and
  /// counts the shed.
  struct PendingState;

  void RunOne(const std::shared_ptr<PendingState>& state);
  Result<TuningServiceResult> Solve(const TuningRequest& req);
  double NowSeconds() const;

  ArtifactRegistry* const registry_;
  const TuningServiceOptions opts_;
  std::unique_ptr<SharedEvalCache> shared_cache_;
  std::unique_ptr<InferenceBatcher> batcher_;
  std::unique_ptr<ThreadPool> pool_;

  Mutex quota_mu_;
  /// QuotaTracker is non-movable; the map is built once in the ctor and
  /// only TryAcquire (internally locked) is called afterwards, but the
  /// clock reads feeding it are ordered under quota_mu_.
  std::map<std::string, QuotaTracker> quotas_;
  std::chrono::steady_clock::time_point start_;

  std::atomic<uint64_t> queued_{0};
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> rejected_queue_full_{0};
  std::atomic<uint64_t> rejected_quota_{0};
  std::atomic<uint64_t> shed_{0};

  obs::Histogram solve_us_;
  obs::Histogram queue_wait_us_;
  obs::Histogram sojourn_us_;
};

}  // namespace sparkopt
