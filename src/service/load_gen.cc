#include "service/load_gen.h"

#include <cmath>

#include "common/rng.h"

namespace sparkopt {

std::vector<double> PoissonArrivalSchedule(double rate_per_sec, size_t n,
                                           uint64_t seed) {
  if (rate_per_sec <= 0.0 || n == 0) return {};
  Rng rng(seed);
  std::vector<double> arrivals;
  arrivals.reserve(n);
  double t = 0.0;
  for (size_t i = 0; i < n; ++i) {
    // Uniform() is in [0, 1), so 1 - U is in (0, 1] and the log is finite.
    t += -std::log(1.0 - rng.Uniform()) / rate_per_sec;
    arrivals.push_back(t);
  }
  return arrivals;
}

}  // namespace sparkopt
