#pragma once

#include <cstdint>
#include <vector>

#include "exec/cluster.h"
#include "exec/cost_model.h"
#include "model/mlp.h"
#include "workload/builder.h"

/// \file model_bootstrap.h
/// \brief Trains a compile-time subQ regressor on analytic labels.
///
/// The tuning service's learned-model sessions need a trained
/// Regressor in their ServiceArtifacts. Production deployments would
/// train one from execution traces (model/trainer.h); benchmarks,
/// examples, and tests instead bootstrap a model from the analytic
/// evaluator: LHS-sampled configurations are featurized per subQ
/// (StageFeatures, estimated cardinalities — the compile-time view) and
/// labeled with the analytic {latency, io_mb}. The result exercises
/// exactly the learned inference path (feature extraction +
/// PredictBatchInto) at a fraction of the trace-collection cost, which
/// is what service-throughput measurements need.

namespace sparkopt {

struct BootstrapOptions {
  /// LHS configurations sampled per query (each contributes one training
  /// row per subQ).
  int samples_per_query = 48;
  /// Hidden layer widths of the trained regressor.
  std::vector<int> hidden = {64, 32};
  int epochs = 80;
  uint64_t seed = 42;
};

/// Trains one shared subQ regressor over `queries` (all queries must
/// share a feature dimensionality, which StageFeatures guarantees).
/// Returns InvalidArgument on an empty query set.
Result<Regressor> FitSubQRegressor(const std::vector<const Query*>& queries,
                                   const ClusterSpec& cluster,
                                   const CostModelParams& cost_params,
                                   const PriceBook& prices = PriceBook(),
                                   const BootstrapOptions& opts = {});

}  // namespace sparkopt
