#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_safety.h"
#include "model/inference_sink.h"
#include "model/mlp.h"

/// \file inference_batcher.h
/// \brief Cross-session inference batcher: coalesces pending
/// PredictBatchInto rows from concurrently-solving sessions into one
/// flat row-major batch so per-row AVX2 throughput is realized even when
/// each session's own batches are small.
///
/// Flush policy (DESIGN.md section 15): a submission whose rows push the
/// pending total to `max_rows` flushes immediately ("full" flush); the
/// first waiter otherwise becomes the *leader* and waits up to
/// `max_wait_us` on a timed condvar before flushing whatever has
/// accumulated ("timeout" flush). Followers just wait; whoever flushes
/// executes the batch outside the lock (gather -> one PredictBatchInto
/// per distinct regressor -> scatter), marks the covered requests done,
/// and wakes everyone. Submissions of `max_rows` or more rows bypass the
/// collector entirely — they already fill the vector units ("solo").
///
/// Transparency: Regressor::PredictBatchInto is documented bitwise
/// identical per row regardless of batch composition, so coalescing can
/// never change solver output — only when the kernel runs and over how
/// many rows. Requests for different Regressor instances may share a
/// window; the flusher groups rows by regressor before dispatch.

namespace sparkopt {

struct InferenceBatcherOptions {
  /// Pending-row threshold that triggers an immediate flush, and the
  /// bypass threshold for single submissions (>= 64 rows saturate the
  /// AVX2 batch kernel; see bench_model_inference).
  size_t max_rows = 64;
  /// Longest a leader waits for co-scheduled sessions before flushing.
  int64_t max_wait_us = 50;
  /// Disabled: every Predict call dispatches directly (the naive
  /// configuration benchmarks compare against).
  bool enabled = true;
};

class InferenceBatcher : public InferenceSink {
 public:
  explicit InferenceBatcher(InferenceBatcherOptions opts = {});

  /// InferenceSink: blocks until this request's rows are predicted
  /// (possibly inside a coalesced batch). Thread-safe.
  void Predict(const Regressor& reg, const double* x, size_t rows,
               double* out) override;

  struct Stats {
    uint64_t requests = 0;       ///< Predict calls through the batcher
    uint64_t rows = 0;           ///< total rows predicted
    uint64_t solo = 0;           ///< bypassed (disabled / >= max_rows)
    uint64_t full_flushes = 0;   ///< size-triggered
    uint64_t timeout_flushes = 0;///< leader-deadline-triggered
    uint64_t coalesced_batches = 0;  ///< flushes covering >= 2 requests
    uint64_t coalesced_rows = 0;     ///< rows in those flushes
  };
  Stats stats() const;

  /// Publishes "service.batcher_*" obs gauges (no-op without a session).
  void PublishGauges() const;

 private:
  struct Request {
    const Regressor* reg;
    const double* x;
    size_t rows;
    double* out;
    bool done = false;
  };

  /// Moves the pending list into `*batch` and resets the window.
  void TakePendingLocked(std::vector<Request*>* batch)
      SPARKOPT_REQUIRES(mu_);
  /// Gather -> predict (one kernel per distinct regressor) -> scatter.
  /// Runs without the lock; only touches requests it owns.
  void ExecuteBatch(const std::vector<Request*>& batch);

  const InferenceBatcherOptions opts_;
  Mutex mu_;
  CondVar cv_;
  std::vector<Request*> pending_ SPARKOPT_GUARDED_BY(mu_);
  size_t pending_rows_ SPARKOPT_GUARDED_BY(mu_) = 0;
  const Request* leader_ SPARKOPT_GUARDED_BY(mu_) = nullptr;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> rows_{0};
  std::atomic<uint64_t> solo_{0};
  std::atomic<uint64_t> full_flushes_{0};
  std::atomic<uint64_t> timeout_flushes_{0};
  std::atomic<uint64_t> coalesced_batches_{0};
  std::atomic<uint64_t> coalesced_rows_{0};
};

}  // namespace sparkopt
