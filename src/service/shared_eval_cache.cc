#include "service/shared_eval_cache.h"

#include "obs/trace.h"

namespace sparkopt {

SharedEvalCache::SharedEvalCache(SharedEvalCacheOptions opts) {
  size_t n = 1;
  while (n < opts.shards) n <<= 1;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<EvalCache>(opts.capacity_per_shard));
  }
  shard_mask_ = n - 1;
}

bool SharedEvalCache::Lookup(uint64_t key, SubQObjectives* out) {
  const bool hit = shards_[ShardOf(key)]->Lookup(key, out);
  (hit ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
  return hit;
}

void SharedEvalCache::Insert(uint64_t key, const SubQObjectives& value) {
  shards_[ShardOf(key)]->Insert(key, value);
}

void SharedEvalCache::Clear() {
  for (auto& s : shards_) s->Clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

size_t SharedEvalCache::capacity() const {
  size_t total = 0;
  for (const auto& s : shards_) total += s->capacity();
  return total;
}

size_t SharedEvalCache::occupancy() const {
  size_t total = 0;
  for (const auto& s : shards_) total += s->occupancy();
  return total;
}

uint64_t SharedEvalCache::evictions() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->evictions();
  return total;
}

uint64_t SharedEvalCache::drops() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->drops();
  return total;
}

double SharedEvalCache::hit_rate() const {
  const double h = static_cast<double>(hits());
  const double m = static_cast<double>(misses());
  return h + m > 0.0 ? h / (h + m) : 0.0;
}

void SharedEvalCache::PublishGauges() const {
  obs::GaugeSet("service.eval_cache_occupancy_frac",
                static_cast<double>(occupancy()) /
                    static_cast<double>(capacity()));
  obs::GaugeSet("service.eval_cache_hit_rate", hit_rate());
  const double m = static_cast<double>(misses());
  obs::GaugeSet("service.eval_cache_drop_rate",
                m > 0.0 ? static_cast<double>(drops()) / m : 0.0);
  obs::GaugeSet("service.eval_cache_evictions",
                static_cast<double>(evictions()));
}

}  // namespace sparkopt
