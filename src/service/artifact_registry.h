#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_safety.h"
#include "exec/cluster.h"
#include "exec/cost_model.h"
#include "model/mlp.h"
#include "model/subq_evaluator.h"
#include "moo/hmooc.h"
#include "workload/builder.h"

/// \file artifact_registry.h
/// \brief Versioned, atomically hot-swappable bundle of everything a
/// tuning session reads: workload (named queries + the catalogs their
/// plans reference), cluster/cost/price description, the trained subQ
/// regressor (optional), and the solver configuration.
///
/// Hot-swap protocol (DESIGN.md section 15): a bundle is mutable only
/// while being assembled; Publish() freezes it behind shared_ptr<const>
/// and swaps the registry's current pointer under a mutex. Sessions
/// snapshot the pointer once at admission and use that version for the
/// whole solve — an in-flight request never observes a mix of old and new
/// artifacts, and old versions stay alive (shared_ptr refcount) until the
/// last session using them completes. The version number is part of every
/// shared-eval-cache key salt, so cached evaluations can never leak
/// across model/workload versions.

namespace sparkopt {

/// \brief One immutable-after-publish artifact bundle.
///
/// Queries hold raw pointers to their catalog, so catalogs live here too
/// (AddCatalog hands out a stable pointer owned by the bundle).
struct ServiceArtifacts {
  /// Assigned by ArtifactRegistry::Publish (0 = never published).
  uint64_t version = 0;
  /// Human-readable tag for logs and reports.
  std::string name = "unnamed";

  ClusterSpec cluster;
  CostModelParams cost_params;
  PriceBook prices;
  /// Solver configuration used for every request against this version
  /// (budget changes roll out atomically with model/workload changes).
  HmoocOptions hmooc;
  /// Trained subQ regressor; when untrained the analytic compile-time
  /// model is used instead (mirrors TunerOptions::learned_subq_model).
  Regressor subq_model;
  /// Per-session eval-cache slots (the private memo inside each solve;
  /// the shared cross-query cache is sized separately by the service).
  size_t eval_cache_capacity = EvalCache::kDefaultCapacity;

  /// Stores `catalog` in the bundle and returns a pointer that stays
  /// valid for the bundle's lifetime — pass it to MakeTpchQuery etc.
  const std::vector<TableStats>* AddCatalog(std::vector<TableStats> catalog);

  /// Registers `q` under q.name. Fails on duplicate names or an empty
  /// name (the request routing key).
  Status AddQuery(Query q);

  const Query* FindQuery(const std::string& name) const;
  size_t num_queries() const { return queries_.size(); }
  /// Name-ordered view (deterministic iteration for benches/tests).
  const std::map<std::string, Query>& queries() const { return queries_; }

 private:
  std::vector<std::unique_ptr<const std::vector<TableStats>>> catalogs_;
  std::map<std::string, Query> queries_;
};

/// \brief Holder of the current artifact version (see file comment).
class ArtifactRegistry {
 public:
  /// Freezes `artifacts`, assigns the next version number, and makes it
  /// current. Returns the assigned version. Thread-safe.
  uint64_t Publish(std::shared_ptr<ServiceArtifacts> artifacts)
      SPARKOPT_EXCLUDES(mu_);

  /// The current bundle (nullptr before the first Publish). The returned
  /// snapshot pins its version for as long as the caller holds it.
  std::shared_ptr<const ServiceArtifacts> Current() const
      SPARKOPT_EXCLUDES(mu_);

  /// Version of the current bundle (0 before the first Publish).
  uint64_t current_version() const SPARKOPT_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::shared_ptr<const ServiceArtifacts> current_ SPARKOPT_GUARDED_BY(mu_);
  uint64_t next_version_ SPARKOPT_GUARDED_BY(mu_) = 1;
};

}  // namespace sparkopt
