#include "service/artifact_registry.h"

#include <utility>

namespace sparkopt {

const std::vector<TableStats>* ServiceArtifacts::AddCatalog(
    std::vector<TableStats> catalog) {
  catalogs_.push_back(std::make_unique<const std::vector<TableStats>>(
      std::move(catalog)));
  return catalogs_.back().get();
}

Status ServiceArtifacts::AddQuery(Query q) {
  if (q.name.empty()) {
    return Status::InvalidArgument(
        "ServiceArtifacts::AddQuery: query name is the routing key and "
        "must be non-empty");
  }
  const std::string name = q.name;
  if (!queries_.emplace(name, std::move(q)).second) {
    return Status::InvalidArgument(
        "ServiceArtifacts::AddQuery: duplicate query name '" + name + "'");
  }
  return Status::OK();
}

const Query* ServiceArtifacts::FindQuery(const std::string& name) const {
  const auto it = queries_.find(name);
  return it != queries_.end() ? &it->second : nullptr;
}

uint64_t ArtifactRegistry::Publish(
    std::shared_ptr<ServiceArtifacts> artifacts) {
  MutexLock lock(mu_);
  artifacts->version = next_version_++;
  const uint64_t version = artifacts->version;
  current_ = std::move(artifacts);  // freeze: stored as pointer-to-const
  return version;
}

std::shared_ptr<const ServiceArtifacts> ArtifactRegistry::Current() const {
  MutexLock lock(mu_);
  return current_;
}

uint64_t ArtifactRegistry::current_version() const {
  MutexLock lock(mu_);
  return current_ != nullptr ? current_->version : 0;
}

}  // namespace sparkopt
