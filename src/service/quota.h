#pragma once

#include <algorithm>

#include "common/thread_safety.h"

/// \file quota.h
/// \brief Per-tenant admission quota: a classic token bucket.
///
/// A tenant accrues `rate_per_sec` tokens per second up to a `burst`
/// ceiling; each admitted request spends one token. Time is injected by
/// the caller as seconds on a monotonic axis (the service derives it from
/// steady_clock; tests pass synthetic values), so quota decisions are a
/// pure function of the (time, acquire) sequence — no hidden clock reads,
/// per the repo's determinism rules.

namespace sparkopt {

class QuotaTracker {
 public:
  /// `rate_per_sec` <= 0 disables refill (the bucket never regains
  /// tokens); `burst` is the bucket capacity and the initial balance.
  QuotaTracker(double rate_per_sec, double burst)
      : rate_(rate_per_sec), burst_(burst), tokens_(burst) {}

  QuotaTracker(const QuotaTracker&) = delete;
  QuotaTracker& operator=(const QuotaTracker&) = delete;

  /// Refills to `now_seconds`, then spends one token if available.
  /// `now_seconds` must be non-decreasing across calls (monotonic axis);
  /// regressions are clamped.
  bool TryAcquire(double now_seconds) SPARKOPT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    RefillLocked(now_seconds);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  /// Current balance after refilling to `now_seconds`.
  double Available(double now_seconds) SPARKOPT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    RefillLocked(now_seconds);
    return tokens_;
  }

 private:
  void RefillLocked(double now_seconds) SPARKOPT_REQUIRES(mu_) {
    const double dt = std::max(now_seconds - last_, 0.0);
    last_ = std::max(last_, now_seconds);
    if (rate_ > 0.0) tokens_ = std::min(burst_, tokens_ + dt * rate_);
  }

  const double rate_;
  const double burst_;
  Mutex mu_;
  double tokens_ SPARKOPT_GUARDED_BY(mu_);
  double last_ SPARKOPT_GUARDED_BY(mu_) = 0.0;
};

}  // namespace sparkopt
