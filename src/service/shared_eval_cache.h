#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "model/subq_evaluator.h"

/// \file shared_eval_cache.h
/// \brief Cross-query, cross-session evaluation memo shared by every
/// concurrent tuning session of the service.
///
/// A thin sharded wrapper over EvalCache: the shard is picked from the
/// key's high bits (EvalCache probes with the low bits, so the two
/// selections stay independent), which spreads concurrent sessions over
/// independent tables and keeps CAS traffic per cache line low. Each
/// shard inherits EvalCache's lock-free seqlock reads and second-chance
/// eviction, so the shared cache is capacity-bounded with real
/// replacement rather than drop-on-full.
///
/// Keys must be salted per (artifact version, query identity) by the
/// caller (see CachedSubQModel) — raw evaluation keys would collide
/// across queries that share subQ ids.

namespace sparkopt {

struct SharedEvalCacheOptions {
  /// Number of shards, rounded up to a power of two (>= 1).
  size_t shards = 8;
  /// EvalCache slots per shard (rounded up to a power of two, min 1024).
  size_t capacity_per_shard = size_t{1} << 14;
};

class SharedEvalCache {
 public:
  explicit SharedEvalCache(SharedEvalCacheOptions opts = {});

  /// Thread-safe; counts a hit/miss.
  bool Lookup(uint64_t key, SubQObjectives* out);
  /// Thread-safe; eviction on shard pressure.
  void Insert(uint64_t key, const SubQObjectives& value);
  /// Not thread-safe against concurrent access.
  void Clear();

  size_t num_shards() const { return shards_.size(); }
  size_t capacity() const;
  size_t occupancy() const;
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const;
  uint64_t drops() const;
  double hit_rate() const;

  /// Publishes "service.eval_cache_{occupancy_frac,hit_rate,drop_rate,
  /// evictions}" obs gauges (no-op without an installed session).
  void PublishGauges() const;

 private:
  size_t ShardOf(uint64_t key) const {
    // High bits: EvalCache's probe sequence consumes the low bits.
    return (key >> 48) & shard_mask_;
  }

  // EvalCache holds atomics (not movable), hence by-pointer shards.
  std::vector<std::unique_ptr<EvalCache>> shards_;
  size_t shard_mask_ = 0;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace sparkopt
