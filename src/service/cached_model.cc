#include "service/cached_model.h"

#include <cmath>

#include "common/rng.h"

namespace sparkopt {

namespace {

bool AllFinite(const ObjectiveVector& obj) {
  for (double v : obj) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

}  // namespace

uint64_t CachedSubQModel::KeyFor(int subq,
                                 const std::vector<double>& conf) const {
  // Bitwise hash of the raw conf; same collision analysis as EvalKey in
  // subq_evaluator.cc (~n^2/2^64 per workload, negligible).
  const uint64_t h = Fnv1a(conf.data(), conf.size() * sizeof(double));
  return HashCombine(salt_,
                     HashCombine(h, static_cast<uint64_t>(subq)));
}

ObjectiveVector CachedSubQModel::FromCached(const SubQObjectives& v) const {
  // Storage mapping (see MaybeInsert): latency, cost, [third objective].
  if (inner_->num_objectives() == 3) {
    return {v.analytical_latency, v.cost, v.io_bytes};
  }
  return {v.analytical_latency, v.cost};
}

void CachedSubQModel::MaybeInsert(uint64_t key,
                                  const ObjectiveVector& obj) const {
  if (!AllFinite(obj)) return;  // screen sentinels must not be cached
  SubQObjectives v;
  v.analytical_latency = obj[0];
  v.cost = obj[1];
  v.io_bytes = obj.size() > 2 ? obj[2] : 0.0;
  cache_->Insert(key, v);
}

ObjectiveVector CachedSubQModel::Evaluate(
    int subq, const std::vector<double>& conf) const {
  const uint64_t key = KeyFor(subq, conf);
  SubQObjectives cached;
  if (cache_->Lookup(key, &cached)) {
    shared_hits_.fetch_add(1, std::memory_order_relaxed);
    return FromCached(cached);
  }
  shared_misses_.fetch_add(1, std::memory_order_relaxed);
  const ObjectiveVector obj = inner_->Evaluate(subq, conf);
  MaybeInsert(key, obj);
  return obj;
}

void CachedSubQModel::EvaluateBatch(
    int subq, const std::vector<std::vector<double>>& confs,
    std::vector<ObjectiveVector>* out) const {
  const size_t n = confs.size();
  out->assign(n, ObjectiveVector());
  if (n == 0) return;

  std::vector<uint64_t> keys(n);
  std::vector<size_t> miss_idx;
  miss_idx.reserve(n);
  uint64_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    keys[i] = KeyFor(subq, confs[i]);
    SubQObjectives cached;
    if (cache_->Lookup(keys[i], &cached)) {
      (*out)[i] = FromCached(cached);
      ++hits;
    } else {
      miss_idx.push_back(i);
    }
  }
  shared_hits_.fetch_add(hits, std::memory_order_relaxed);
  shared_misses_.fetch_add(miss_idx.size(), std::memory_order_relaxed);
  if (miss_idx.empty()) return;

  // Escalate only the misses. Both concrete models are per-row bitwise
  // independent of batch composition, so the subset batch returns
  // exactly what a full batch would have at those rows.
  std::vector<std::vector<double>> miss_confs;
  miss_confs.reserve(miss_idx.size());
  for (size_t i : miss_idx) miss_confs.push_back(confs[i]);
  std::vector<ObjectiveVector> miss_out;
  inner_->EvaluateBatch(subq, miss_confs, &miss_out);
  for (size_t j = 0; j < miss_idx.size(); ++j) {
    MaybeInsert(keys[miss_idx[j]], miss_out[j]);
    (*out)[miss_idx[j]] = std::move(miss_out[j]);
  }
}

}  // namespace sparkopt
