#pragma once

#include <cstdint>
#include <vector>

#include "moo/problem.h"
#include "service/shared_eval_cache.h"

/// \file cached_model.h
/// \brief Transparent shared-cache layer over any SubQObjectiveModel.
///
/// CachedSubQModel memoizes (subq, conf) -> objectives in the service's
/// SharedEvalCache, keyed under a caller-provided salt that encodes
/// (artifact version, query identity). Because both concrete models are
/// pure functions of (query, conf) — the analytic evaluator by
/// construction, the learned model because inference is deterministic —
/// a cache hit returns bitwise the value a fresh evaluation would
/// produce, so solver output is unchanged at any hit pattern. Repeated
/// requests for the same query template are where the service's
/// amortization comes from: the solver's seeded sampling draws identical
/// candidate streams for identical (query, artifacts), so a re-submitted
/// query hits on nearly every evaluation.
///
/// Entries whose objectives are not all finite are never inserted
/// (multi-fidelity screens emit +inf sentinels for pruned candidates;
/// caching those would alias real evaluations).

namespace sparkopt {

class CachedSubQModel : public SubQObjectiveModel {
 public:
  /// `inner` and `cache` must outlive this wrapper. `salt` must be
  /// unique per (artifact version, query) — see MakeQuerySalt in
  /// tuning_service.h.
  CachedSubQModel(const SubQObjectiveModel* inner, SharedEvalCache* cache,
                  uint64_t salt)
      : inner_(inner), cache_(cache), salt_(salt) {}

  int num_subqs() const override { return inner_->num_subqs(); }
  int num_objectives() const override { return inner_->num_objectives(); }

  ObjectiveVector Evaluate(int subq,
                           const std::vector<double>& conf) const override;

  void EvaluateBatch(int subq,
                     const std::vector<std::vector<double>>& confs,
                     std::vector<ObjectiveVector>* out) const override;

  /// Delegates to the inner model: shared-cache hits skip inner
  /// evaluations entirely, so MooRunResult::evaluations reports exactly
  /// the work the cache saved.
  size_t eval_count() const override { return inner_->eval_count(); }

  const SubQEvaluator* screen_evaluator() const override {
    return inner_->screen_evaluator();
  }

  uint64_t shared_hits() const {
    return shared_hits_.load(std::memory_order_relaxed);
  }
  uint64_t shared_misses() const {
    return shared_misses_.load(std::memory_order_relaxed);
  }

 private:
  uint64_t KeyFor(int subq, const std::vector<double>& conf) const;
  ObjectiveVector FromCached(const SubQObjectives& v) const;
  void MaybeInsert(uint64_t key, const ObjectiveVector& obj) const;

  const SubQObjectiveModel* inner_;
  SharedEvalCache* cache_;
  uint64_t salt_;
  mutable std::atomic<uint64_t> shared_hits_{0};
  mutable std::atomic<uint64_t> shared_misses_{0};
};

}  // namespace sparkopt
