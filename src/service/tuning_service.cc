#include "service/tuning_service.h"

#include <chrono>
#include <utility>

#include "common/rng.h"
#include "moo/hmooc.h"
#include "moo/objective_models.h"
#include "obs/trace.h"
#include "service/cached_model.h"

namespace sparkopt {

namespace {

double MicrosBetween(std::chrono::steady_clock::time_point a,
                     std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

}  // namespace

struct TuningService::PendingState {
  PendingState(TuningService* s, TuningRequest r)
      : svc(s),
        req(std::move(r)),
        enqueue_time(std::chrono::steady_clock::now()) {}

  PendingState(const PendingState&) = delete;
  PendingState& operator=(const PendingState&) = delete;

  ~PendingState() {
    if (!dequeued) svc->queued_.fetch_sub(1, std::memory_order_relaxed);
    if (!fulfilled) {
      // The owning task closure died without running: Shutdown(kAbort)
      // discarded the pool backlog (or the pool refused the Post). The
      // caller's future must still resolve.
      svc->shed_.fetch_add(1, std::memory_order_relaxed);
      promise.set_value(
          Status::Unavailable("tuning request shed during shutdown"));
    }
  }

  void Fulfill(Result<TuningServiceResult> r) {
    promise.set_value(std::move(r));
    fulfilled = true;
  }

  TuningService* const svc;
  const TuningRequest req;
  std::promise<Result<TuningServiceResult>> promise;
  const std::chrono::steady_clock::time_point enqueue_time;
  /// Only the thread currently owning the request mutates these; the
  /// shared_ptr refcount orders the handoff between Submit, the worker,
  /// and the destructor.
  bool fulfilled = false;
  bool dequeued = false;
};

TuningService::TuningService(ArtifactRegistry* registry,
                             TuningServiceOptions opts)
    : registry_(registry),
      opts_(std::move(opts)),
      start_(std::chrono::steady_clock::now()) {
  if (opts_.shared_cache_enabled) {
    shared_cache_ = std::make_unique<SharedEvalCache>(opts_.shared_cache);
  }
  batcher_ = std::make_unique<InferenceBatcher>(opts_.batcher);
  for (const auto& [tenant, q] : opts_.quotas) {
    quotas_.emplace(std::piecewise_construct,
                    std::forward_as_tuple(tenant),
                    std::forward_as_tuple(q.rate_per_sec, q.burst));
  }
  // dedicated_single_worker: even at sessions=1 requests must run on a
  // pool thread (Submit returns a future the caller may block on from
  // the same thread that submitted).
  const int sessions = opts_.sessions < 1 ? 1 : opts_.sessions;
  pool_ = std::make_unique<ThreadPool>(sessions,
                                       /*dedicated_single_worker=*/true);
}

TuningService::~TuningService() {
  Shutdown(ThreadPool::ShutdownMode::kDrain);
}

double TuningService::NowSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

std::future<Result<TuningServiceResult>> TuningService::Submit(
    TuningRequest req) {
  submitted_.fetch_add(1, std::memory_order_relaxed);

  // Tenant quota (token bucket; tenants without an entry are free).
  {
    MutexLock lock(quota_mu_);
    auto it = quotas_.find(req.tenant);
    if (it != quotas_.end() && !it->second.TryAcquire(NowSeconds())) {
      rejected_quota_.fetch_add(1, std::memory_order_relaxed);
      std::promise<Result<TuningServiceResult>> p;
      p.set_value(Status::ResourceExhausted("tenant '" + req.tenant +
                                            "' over quota"));
      return p.get_future();
    }
  }

  // Bounded admission queue: reserve a slot or shed.
  const uint64_t backlog = queued_.fetch_add(1, std::memory_order_relaxed);
  if (backlog >= opts_.queue_capacity) {
    queued_.fetch_sub(1, std::memory_order_relaxed);
    rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
    std::promise<Result<TuningServiceResult>> p;
    p.set_value(Status::ResourceExhausted("admission queue full"));
    return p.get_future();
  }

  // The state now owns the reserved queue slot (released by RunOne or
  // by its destructor if the task never runs).
  auto state = std::make_shared<PendingState>(this, std::move(req));
  auto future = state->promise.get_future();
  // A false Post (service already shut down) just drops the closure;
  // the state destructor resolves the future with Unavailable.
  pool_->Post([this, state] { RunOne(state); });
  return future;
}

void TuningService::RunOne(const std::shared_ptr<PendingState>& state) {
  state->dequeued = true;
  queued_.fetch_sub(1, std::memory_order_relaxed);
  // Session workers run full solves; obs spans are main-thread-only, so
  // make them inert for everything below (metrics stay live).
  obs::ScopedSpanSuppression suppress;

  const auto start = std::chrono::steady_clock::now();
  const double wait_us = MicrosBetween(state->enqueue_time, start);
  Result<TuningServiceResult> result = Solve(state->req);
  const auto end = std::chrono::steady_clock::now();

  queue_wait_us_.Observe(wait_us);
  solve_us_.Observe(MicrosBetween(start, end));
  sojourn_us_.Observe(MicrosBetween(state->enqueue_time, end));
  if (result.ok()) {
    result->queue_wait_seconds = wait_us * 1e-6;
    completed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    failed_.fetch_add(1, std::memory_order_relaxed);
  }
  state->Fulfill(std::move(result));
}

Result<TuningServiceResult> TuningService::Solve(const TuningRequest& req) {
  // Snapshot the artifact bundle once: this request sees exactly one
  // version even if a Publish lands mid-solve.
  std::shared_ptr<const ServiceArtifacts> snap = registry_->Current();
  if (snap == nullptr) {
    return Status::FailedPrecondition("no artifacts published");
  }
  const Query* query = snap->FindQuery(req.query_name);
  if (query == nullptr) {
    return Status::NotFound("unknown query '" + req.query_name + "'");
  }
  const std::vector<double>& pref =
      req.preference.empty() ? opts_.default_preference : req.preference;

  // Objective-model stack, mirroring Tuner::Run: analytic by default,
  // learned when the bundle ships a trained regressor...
  AnalyticSubQModel analytic(query, snap->cluster, snap->cost_params,
                             snap->prices, snap->eval_cache_capacity);
  std::unique_ptr<LearnedSubQModel> learned;
  const SubQObjectiveModel* model = &analytic;
  if (snap->subq_model.trained()) {
    learned = std::make_unique<LearnedSubQModel>(
        query, snap->cluster, snap->cost_params, &snap->subq_model,
        snap->prices, snap->eval_cache_capacity);
    // ...with inference routed through the cross-session batcher (a
    // bitwise-transparent sink; see model/inference_sink.h)...
    learned->set_inference_sink(batcher_.get());
    model = learned.get();
  }
  // ...topped by the shared cross-query cache, salted so identical
  // (subq, conf) keys can never collide across queries or versions.
  std::unique_ptr<CachedSubQModel> cached;
  uint64_t hits_before = 0, misses_before = 0;
  if (shared_cache_ != nullptr) {
    const uint64_t salt = HashCombine(
        snap->version,
        HashCombine(Fnv1a(query->name.data(), query->name.size()),
                    query->seed));
    cached = std::make_unique<CachedSubQModel>(model, shared_cache_.get(),
                                               salt);
    hits_before = cached->shared_hits();
    misses_before = cached->shared_misses();
    model = cached.get();
  }

  // Seed derivation identical to Tuner::Run — the bitwise-equivalence
  // contract depends on it.
  HmoocOptions ho = snap->hmooc;
  ho.seed = HashCombine(opts_.seed, query->seed);
  std::vector<Regressor> screens;
  if (ho.fidelity.mode == FidelityMode::kDistilled &&
      ho.fidelity.distilled == nullptr) {
    auto trained =
        TrainDistilledScreens(*model, ho.fidelity.distill_samples, ho.seed);
    if (trained.ok()) {
      screens = std::move(*trained);
      ho.fidelity.distilled = &screens;
    } else {
      ho.fidelity.mode = FidelityMode::kOff;
    }
  }

  TuningServiceResult res;
  res.artifact_version = snap->version;
  res.query_name = query->name;
  res.used_learned_model = learned != nullptr;

  HmoocSolver solver(model, ho);
  res.moo = solver.Solve();
  if (res.moo.pareto.empty()) {
    return Status::Internal("solver returned an empty Pareto set");
  }
  if (pref.size() != res.moo.pareto[0].objectives.size()) {
    return Status::InvalidArgument("preference dimensionality mismatch");
  }
  res.chosen = res.moo.pareto[res.moo.Recommend(pref)];
  res.solve_seconds = res.moo.solve_seconds;
  if (cached != nullptr) {
    res.shared_cache_hits = cached->shared_hits() - hits_before;
    res.shared_cache_misses = cached->shared_misses() - misses_before;
  }
  return res;
}

void TuningService::Shutdown(ThreadPool::ShutdownMode mode) {
  pool_->Shutdown(mode);
}

TuningService::Stats TuningService::stats() const {
  Stats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.rejected_queue_full =
      rejected_queue_full_.load(std::memory_order_relaxed);
  s.rejected_quota = rejected_quota_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  return s;
}

void TuningService::PublishGauges() const {
  const Stats s = stats();
  obs::GaugeSet("service.submitted", static_cast<double>(s.submitted));
  obs::GaugeSet("service.completed", static_cast<double>(s.completed));
  obs::GaugeSet("service.failed", static_cast<double>(s.failed));
  obs::GaugeSet("service.rejected_queue_full",
                static_cast<double>(s.rejected_queue_full));
  obs::GaugeSet("service.rejected_quota",
                static_cast<double>(s.rejected_quota));
  obs::GaugeSet("service.shed", static_cast<double>(s.shed));
  obs::GaugeSet("service.queued",
                static_cast<double>(queued_.load(std::memory_order_relaxed)));
  if (shared_cache_ != nullptr) shared_cache_->PublishGauges();
  batcher_->PublishGauges();
}

}  // namespace sparkopt
