#include "service/model_bootstrap.h"

#include "common/rng.h"
#include "model/features.h"
#include "model/subq_evaluator.h"
#include "params/sampler.h"
#include "params/spark_params.h"

namespace sparkopt {

Result<Regressor> FitSubQRegressor(const std::vector<const Query*>& queries,
                                   const ClusterSpec& cluster,
                                   const CostModelParams& cost_params,
                                   const PriceBook& prices,
                                   const BootstrapOptions& opts) {
  if (queries.empty()) {
    return Status::InvalidArgument("FitSubQRegressor: no queries");
  }
  if (opts.samples_per_query < 4) {
    return Status::InvalidArgument(
        "FitSubQRegressor: need >= 4 samples per query");
  }

  constexpr double kMb = 1024.0 * 1024.0;
  Rng rng(opts.seed);
  const auto& space = SparkParamSpace();
  Matrix x, y;
  for (const Query* q : queries) {
    // Margin 0: the training hull must cover every configuration a solve
    // (whatever its search_margin) can emit, or the standardizer
    // extrapolates.
    const auto confs = SampleLatinHypercube(
        space, static_cast<size_t>(opts.samples_per_query), &rng,
        /*margin=*/0.0);
    SubQEvaluator eval(q, cluster, cost_params, prices);
    for (const auto& conf : confs) {
      const ContextParams tc = DecodeContext(conf);
      const PlanParams tp = DecodePlan(conf);
      const StageParams ts = DecodeStage(conf);
      for (int s = 0; s < eval.num_subqs(); ++s) {
        const QueryStage stage =
            eval.BuildStage(s, tc, tp, ts, CardinalitySource::kEstimated);
        const SubQObjectives obj =
            eval.Evaluate(s, tc, tp, ts, CardinalitySource::kEstimated);
        x.push_back(StageFeatures(q->plan, stage, conf,
                                  /*use_true_cards=*/false, /*beta=*/{},
                                  /*gamma=*/{}, /*drop_theta_p=*/false));
        y.push_back({obj.analytical_latency, obj.io_bytes / kMb});
      }
    }
  }
  if (x.empty()) {
    return Status::InvalidArgument("FitSubQRegressor: queries have no subQs");
  }

  const int dim = static_cast<int>(x[0].size());
  Regressor reg(dim, 2, opts.hidden, HashCombine(opts.seed, 0xB007));
  Mlp::TrainOptions topts;
  topts.epochs = opts.epochs;
  topts.batch_size = 32;
  topts.seed = HashCombine(opts.seed, 0x7121);
  SPARKOPT_RETURN_NOT_OK(reg.Fit(x, y, topts));
  return reg;
}

}  // namespace sparkopt
