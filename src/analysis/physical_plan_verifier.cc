#include "analysis/physical_plan_verifier.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "physical/physical_plan.h"
#include "plan/logical_plan.h"

namespace sparkopt {
namespace analysis {

namespace {

std::string StageLoc(int id) { return "stage " + std::to_string(id); }

void CheckDepLists(const PhysicalPlan& plan, VerifyReport* report) {
  const int n = static_cast<int>(plan.stages.size());
  for (const QueryStage& st : plan.stages) {
    const std::string loc = StageLoc(st.id);
    for (const auto* deps : {&st.deps, &st.broadcast_deps}) {
      const char* kind = deps == &st.deps ? "dep" : "broadcast_dep";
      for (int d : *deps) {
        if (d < 0 || d >= n) {
          report->Add(StatusCode::kOutOfRange, loc,
                      std::string(kind) + " " + std::to_string(d) +
                          " outside [0, " + std::to_string(n) + ")");
        } else if (d == st.id) {
          report->Add(StatusCode::kOutOfRange, loc,
                      std::string(kind) + " points at the stage itself");
        }
      }
      for (size_t i = 0; i < deps->size(); ++i) {
        for (size_t j = i + 1; j < deps->size(); ++j) {
          if ((*deps)[i] == (*deps)[j]) {
            report->Add(StatusCode::kOutOfRange, loc,
                        std::string("duplicate ") + kind + " " +
                            std::to_string((*deps)[i]));
          }
        }
      }
    }
    for (int d : st.deps) {
      if (std::find(st.broadcast_deps.begin(), st.broadcast_deps.end(), d) !=
          st.broadcast_deps.end()) {
        report->Add(StatusCode::kInvalidArgument, loc,
                    "stage " + std::to_string(d) +
                        " is both a shuffle and a broadcast dependency");
      }
    }
  }
}

void CheckAcyclic(const PhysicalPlan& plan, VerifyReport* report) {
  const int n = static_cast<int>(plan.stages.size());
  std::vector<int> in_deg(n, 0);
  std::vector<std::vector<int>> out(n);
  for (const QueryStage& st : plan.stages) {
    if (st.id < 0 || st.id >= n) continue;
    for (const auto* deps : {&st.deps, &st.broadcast_deps}) {
      for (int d : *deps) {
        if (d >= 0 && d < n && d != st.id) {
          out[d].push_back(st.id);
          ++in_deg[st.id];
        }
      }
    }
  }
  std::vector<int> frontier;
  for (int i = 0; i < n; ++i) {
    if (in_deg[i] == 0) frontier.push_back(i);
  }
  int visited = 0;
  while (!frontier.empty()) {
    const int u = frontier.back();
    frontier.pop_back();
    ++visited;
    for (int v : out[u]) {
      if (--in_deg[v] == 0) frontier.push_back(v);
    }
  }
  if (visited != n) {
    report->Add(StatusCode::kFailedPrecondition, "stage DAG",
                "stage dependency graph contains a cycle (" +
                    std::to_string(n - visited) + " stage(s) unreachable)");
  }
}

void CheckStageFields(const PhysicalPlan& plan, VerifyReport* report) {
  int root_stages = 0;
  for (size_t i = 0; i < plan.stages.size(); ++i) {
    const QueryStage& st = plan.stages[i];
    const std::string loc = StageLoc(static_cast<int>(i));
    if (st.id != static_cast<int>(i)) {
      report->Add(StatusCode::kInternal, loc,
                  "stored id " + std::to_string(st.id) +
                      " does not match storage index");
    }
    if (st.subq_id < 0) {
      report->Add(StatusCode::kInternal, loc, "stage has no subq_id");
    }
    if (st.op_ids.empty()) {
      report->Add(StatusCode::kFailedPrecondition, loc,
                  "stage executes no operators");
    }
    if (st.num_partitions < 1) {
      report->Add(StatusCode::kInternal, loc,
                  "num_partitions " + std::to_string(st.num_partitions) +
                      " < 1");
    }
    if (st.num_partitions !=
        static_cast<int>(st.partition_bytes.size())) {
      report->Add(StatusCode::kInternal, loc,
                  "num_partitions " + std::to_string(st.num_partitions) +
                      " != partition_bytes.size() " +
                      std::to_string(st.partition_bytes.size()));
    }
    for (double b : st.partition_bytes) {
      if (b < 0.0 || !std::isfinite(b)) {
        report->Add(StatusCode::kOutOfRange, loc,
                    "partition size " + std::to_string(b) +
                        " is negative or non-finite");
        break;
      }
    }
    const std::pair<const char*, double> totals[] = {
        {"input_rows", st.input_rows},
        {"input_bytes", st.input_bytes},
        {"output_rows", st.output_rows},
        {"output_bytes", st.output_bytes},
        {"shuffle_read_bytes", st.shuffle_read_bytes},
        {"broadcast_bytes", st.broadcast_bytes},
        {"cpu_work", st.cpu_work},
        {"sort_work", st.sort_work},
    };
    for (const auto& [field, v] : totals) {
      if (v < 0.0 || !std::isfinite(v)) {
        report->Add(StatusCode::kOutOfRange, loc,
                    std::string(field) + " " + std::to_string(v) +
                        " is negative or non-finite");
      }
    }
    if (!st.exchanges_output) ++root_stages;
  }
  if (!plan.stages.empty() && root_stages != 1) {
    report->Add(StatusCode::kFailedPrecondition, "stage DAG",
                "expected exactly one root stage (exchanges_output = "
                "false), found " +
                    std::to_string(root_stages));
  }
}

// Maps each op id to the stage executing it; -1 when absent, -2 when
// executed by more than one stage.
std::vector<int> StageOfOp(const PhysicalPlan& plan, int num_ops) {
  std::vector<int> stage_of(num_ops, -1);
  for (const QueryStage& st : plan.stages) {
    for (int op : st.op_ids) {
      if (op < 0 || op >= num_ops) continue;
      stage_of[op] = stage_of[op] == -1 ? st.id : -2;
    }
  }
  return stage_of;
}

void CheckOpCoverage(const PhysicalPlan& plan, const LogicalPlan& lplan,
                     VerifyReport* report) {
  const int num_ops = static_cast<int>(lplan.num_ops());
  for (const QueryStage& st : plan.stages) {
    for (int op : st.op_ids) {
      if (op < 0 || op >= num_ops) {
        report->Add(StatusCode::kOutOfRange, StageLoc(st.id),
                    "op id " + std::to_string(op) + " outside [0, " +
                        std::to_string(num_ops) + ")");
      }
    }
  }
  std::vector<int> first_stage(num_ops, -1);
  for (const QueryStage& st : plan.stages) {
    for (int op : st.op_ids) {
      if (op < 0 || op >= num_ops) continue;
      if (first_stage[op] != -1) {
        report->Add(StatusCode::kFailedPrecondition,
                    "op " + std::to_string(op),
                    "executed by both stage " +
                        std::to_string(first_stage[op]) + " and stage " +
                        std::to_string(st.id));
      } else {
        first_stage[op] = st.id;
      }
    }
  }
  for (int op = 0; op < num_ops; ++op) {
    if (first_stage[op] == -1) {
      report->Add(StatusCode::kFailedPrecondition,
                  "op " + std::to_string(op),
                  "logical operator not executed by any stage");
    }
  }
}

void CheckJoinDecisions(const PhysicalPlan& plan, const LogicalPlan* lplan,
                        VerifyReport* report) {
  const int num_ops =
      lplan != nullptr ? static_cast<int>(lplan->num_ops()) : -1;
  for (const JoinDecision& jd : plan.join_decisions) {
    const std::string loc = "join decision op " + std::to_string(jd.op_id);
    if (lplan != nullptr) {
      if (jd.op_id < 0 || jd.op_id >= num_ops) {
        report->Add(StatusCode::kOutOfRange, loc,
                    "op id outside [0, " + std::to_string(num_ops) + ")");
        continue;
      }
      if (lplan->op(jd.op_id).type != OpType::kJoin) {
        report->Add(StatusCode::kInvalidArgument, loc,
                    "decision references a non-join operator");
      }
    }
    if (jd.algo != JoinAlgo::kBroadcastHashJoin || jd.build_op < 0) {
      continue;
    }
    // BHJ: the build side must reach the join's stage via broadcast, not
    // via shuffle.
    const std::vector<int> stage_of = StageOfOp(
        plan, std::max(num_ops, std::max(jd.op_id, jd.build_op) + 1));
    const int join_stage = jd.op_id >= 0 &&
                                   jd.op_id < static_cast<int>(stage_of.size())
                               ? stage_of[jd.op_id]
                               : -1;
    const int build_stage =
        jd.build_op < static_cast<int>(stage_of.size())
            ? stage_of[jd.build_op]
            : -1;
    if (join_stage < 0 || build_stage < 0 || join_stage == build_stage) {
      continue;  // merged or unresolvable; other checks cover those
    }
    const QueryStage& st = plan.stages[join_stage];
    if (std::find(st.deps.begin(), st.deps.end(), build_stage) !=
        st.deps.end()) {
      report->Add(StatusCode::kFailedPrecondition, StageLoc(join_stage),
                  "BHJ build side (stage " + std::to_string(build_stage) +
                      ") arrives over a shuffle dependency");
    }
    if (std::find(st.broadcast_deps.begin(), st.broadcast_deps.end(),
                  build_stage) == st.broadcast_deps.end()) {
      report->Add(StatusCode::kFailedPrecondition, StageLoc(join_stage),
                  "BHJ build side (stage " + std::to_string(build_stage) +
                      ") is not a broadcast dependency");
    }
  }
}

}  // namespace

bool PhysicalPlanVerifier::applicable(const VerifyInput& in) const {
  return in.physical_plan != nullptr;
}

VerifyReport PhysicalPlanVerifier::Verify(const VerifyInput& in) const {
  VerifyReport report = MakeReport(in);
  const PhysicalPlan& plan = *in.physical_plan;
  CheckStageFields(plan, &report);
  CheckDepLists(plan, &report);
  CheckAcyclic(plan, &report);
  if (in.logical_plan != nullptr) {
    CheckOpCoverage(plan, *in.logical_plan, &report);
  }
  CheckJoinDecisions(plan, in.logical_plan, &report);
  return report;
}

}  // namespace analysis
}  // namespace sparkopt
