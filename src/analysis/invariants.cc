#include "analysis/invariants.h"

#include "common/check.h"

namespace sparkopt {
namespace analysis {

namespace {

void DieOnViolations(const VerifyReport& report) {
  SPARKOPT_CHECK(report.ok()) << "\n" << report.ToString();
}

}  // namespace

void CheckLogicalPlanOrDie(const LogicalPlan& plan,
                           const std::vector<TableStats>* catalog,
                           const std::vector<SubQuery>* subqs,
                           const char* site) {
  VerifyInput in;
  in.logical_plan = &plan;
  in.catalog = catalog;
  in.subqs = subqs;
  in.site = site;
  auto report = VerifierRegistry::BuiltIn().Run("logical_plan", in);
  SPARKOPT_CHECK(report.ok()) << report.status().ToString();
  DieOnViolations(*report);
}

void CheckPhysicalPlanOrDie(const PhysicalPlan& pplan,
                            const LogicalPlan* lplan, const char* site) {
  VerifyInput in;
  in.physical_plan = &pplan;
  in.logical_plan = lplan;
  in.site = site;
  auto report = VerifierRegistry::BuiltIn().Run("physical_plan", in);
  SPARKOPT_CHECK(report.ok()) << report.status().ToString();
  DieOnViolations(*report);
}

void CheckFrontOrDie(const std::vector<ObjectiveVector>& front,
                     const char* site) {
  VerifyInput in;
  in.front = &front;
  in.site = site;
  auto report = VerifierRegistry::BuiltIn().Run("pareto_front", in);
  SPARKOPT_CHECK(report.ok()) << report.status().ToString();
  DieOnViolations(*report);
}

void CheckTraceOrDie(const QueryExecution& exec, const PhysicalPlan* pplan,
                     int total_cores, const char* site) {
  VerifyInput in;
  in.execution = &exec;
  in.physical_plan = pplan;
  in.total_cores = total_cores;
  in.site = site;
  auto report = VerifierRegistry::BuiltIn().Run("execution_trace", in);
  SPARKOPT_CHECK(report.ok()) << report.status().ToString();
  DieOnViolations(*report);
}

}  // namespace analysis
}  // namespace sparkopt
