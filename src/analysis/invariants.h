#pragma once

#include <vector>

#include "analysis/verifier.h"

/// \file invariants.h
/// \brief Hot-path entry points for invariant verification.
///
/// Producers (physical planner, AQE driver, simulator, HMOOC, tuner) call
/// the SPARKOPT_VERIFY_* macros at the points where they hand a freshly
/// built artifact downstream. Under the SPARKOPT_VERIFY CMake option the
/// macros run the matching verifier pass and abort with the full
/// violation report when an invariant is broken — a silent violation
/// would corrupt every downstream WUN recommendation. Without the option
/// they compile to nothing, so Release benches pay zero cost.
///
/// The Check* functions are always compiled (tests call them directly);
/// only the macro call sites are gated.

namespace sparkopt {
namespace analysis {

/// Dies with the report when `plan` (and optionally its subQ
/// decomposition / catalog) violates the logical-plan invariants.
void CheckLogicalPlanOrDie(const LogicalPlan& plan,
                           const std::vector<TableStats>* catalog,
                           const std::vector<SubQuery>* subqs,
                           const char* site);

/// Dies with the report when `pplan` is not a well-formed stage DAG
/// covering `lplan` (pass nullptr to skip coverage checks).
void CheckPhysicalPlanOrDie(const PhysicalPlan& pplan,
                            const LogicalPlan* lplan, const char* site);

/// Dies with the report when `front` is not mutually non-dominated with
/// finite objectives.
void CheckFrontOrDie(const std::vector<ObjectiveVector>& front,
                     const char* site);

/// Dies with the report when `exec` violates the trace invariants.
/// `pplan` (nullable) enables dependency-ordering checks on single-wave
/// traces; `total_cores` > 0 enables analytical-latency consistency.
void CheckTraceOrDie(const QueryExecution& exec, const PhysicalPlan* pplan,
                     int total_cores, const char* site);

}  // namespace analysis
}  // namespace sparkopt

#ifdef SPARKOPT_VERIFY
#define SPARKOPT_VERIFY_LOGICAL(plan, catalog, subqs, site) \
  ::sparkopt::analysis::CheckLogicalPlanOrDie(plan, catalog, subqs, site)
#define SPARKOPT_VERIFY_PHYSICAL(pplan, lplan, site) \
  ::sparkopt::analysis::CheckPhysicalPlanOrDie(pplan, lplan, site)
#define SPARKOPT_VERIFY_FRONT(front, site) \
  ::sparkopt::analysis::CheckFrontOrDie(front, site)
#define SPARKOPT_VERIFY_TRACE(exec, pplan, cores, site) \
  ::sparkopt::analysis::CheckTraceOrDie(exec, pplan, cores, site)
#else
#define SPARKOPT_VERIFY_LOGICAL(plan, catalog, subqs, site) ((void)0)
#define SPARKOPT_VERIFY_PHYSICAL(pplan, lplan, site) ((void)0)
#define SPARKOPT_VERIFY_FRONT(front, site) ((void)0)
#define SPARKOPT_VERIFY_TRACE(exec, pplan, cores, site) ((void)0)
#endif
