#include "analysis/logical_plan_verifier.h"

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "plan/logical_plan.h"

namespace sparkopt {
namespace analysis {

namespace {

// Local name table: the analysis library deliberately links only against
// sparkopt_common, so it cannot use OpTypeName() from sparkopt_plan.
const char* OpName(OpType t) {
  switch (t) {
    case OpType::kScan: return "Scan";
    case OpType::kFilter: return "Filter";
    case OpType::kProject: return "Project";
    case OpType::kJoin: return "Join";
    case OpType::kAggregate: return "Aggregate";
    case OpType::kSort: return "Sort";
    case OpType::kLimit: return "Limit";
    case OpType::kUnion: return "Union";
    default: return "?";
  }
}

std::string OpLoc(int id) { return "op " + std::to_string(id); }

// DFS cycle detection over child edges (0 = white, 1 = on stack, 2 = done).
bool HasCycleFrom(const LogicalPlan& plan, int start,
                  std::vector<int>* color, int* cycle_op) {
  std::vector<std::pair<int, size_t>> stack{{start, 0}};
  (*color)[start] = 1;
  while (!stack.empty()) {
    auto& [id, next_child] = stack.back();
    const auto& children = plan.op(id).children;
    bool descended = false;
    while (next_child < children.size()) {
      const int c = children[next_child++];
      if (c < 0 || c >= static_cast<int>(plan.num_ops())) continue;
      if ((*color)[c] == 1) {
        *cycle_op = c;
        return true;
      }
      if ((*color)[c] == 0) {
        (*color)[c] = 1;
        stack.push_back({c, 0});
        descended = true;
        break;
      }
    }
    if (!descended && stack.back().second >= children.size()) {
      (*color)[id] = 2;
      stack.pop_back();
    }
  }
  return false;
}

void CheckOperators(const LogicalPlan& plan,
                    const std::vector<TableStats>* catalog,
                    VerifyReport* report) {
  const int n = static_cast<int>(plan.num_ops());
  for (int id = 0; id < n; ++id) {
    const LogicalOperator& op = plan.op(id);
    if (op.id != id) {
      report->Add(StatusCode::kInternal, OpLoc(id),
                  "stored id " + std::to_string(op.id) +
                      " does not match storage index");
    }
    for (int c : op.children) {
      if (c < 0 || c >= n) {
        report->Add(StatusCode::kOutOfRange, OpLoc(id),
                    "child id " + std::to_string(c) + " outside [0, " +
                        std::to_string(n) + ")");
      } else if (c == id) {
        report->Add(StatusCode::kOutOfRange, OpLoc(id),
                    "operator is its own child");
      }
    }
    // Arity per operator type.
    const size_t arity = op.children.size();
    bool arity_ok = true;
    std::string expected;
    switch (op.type) {
      case OpType::kScan:
        arity_ok = arity == 0;
        expected = "0";
        break;
      case OpType::kJoin:
        arity_ok = arity == 2;
        expected = "2";
        break;
      case OpType::kUnion:
        arity_ok = arity >= 2;
        expected = ">= 2";
        break;
      default:
        arity_ok = arity == 1;
        expected = "1";
        break;
    }
    if (!arity_ok) {
      std::ostringstream ss;
      ss << OpName(op.type) << " has " << arity << " children, expected "
         << expected;
      report->Add(StatusCode::kInvalidArgument, OpLoc(id), ss.str());
    }
    // Scans must resolve in the catalog.
    if (op.type == OpType::kScan) {
      if (op.table_id < 0) {
        report->Add(StatusCode::kNotFound, OpLoc(id),
                    "scan has no table_id");
      } else if (catalog != nullptr &&
                 op.table_id >= static_cast<int>(catalog->size())) {
        report->Add(StatusCode::kNotFound, OpLoc(id),
                    "table_id " + std::to_string(op.table_id) +
                        " not in catalog of " +
                        std::to_string(catalog->size()) + " tables");
      }
    }
    // Annotation bounds.
    if (!(op.selectivity > 0.0) || op.selectivity > 1.0 ||
        !std::isfinite(op.selectivity)) {
      report->Add(StatusCode::kOutOfRange, OpLoc(id),
                  "selectivity " + std::to_string(op.selectivity) +
                      " outside (0, 1]");
    }
    if (op.cardinality_factor < 0.0 || !std::isfinite(op.cardinality_factor)) {
      report->Add(StatusCode::kOutOfRange, OpLoc(id),
                  "cardinality_factor " +
                      std::to_string(op.cardinality_factor) +
                      " is negative or non-finite");
    }
    if (op.shuffle_skew < 0.0 || op.shuffle_skew > 1.0 ||
        !std::isfinite(op.shuffle_skew)) {
      report->Add(StatusCode::kOutOfRange, OpLoc(id),
                  "shuffle_skew " + std::to_string(op.shuffle_skew) +
                      " outside [0, 1]");
    }
    if (!(op.out_row_bytes > 0.0) || !std::isfinite(op.out_row_bytes)) {
      report->Add(StatusCode::kOutOfRange, OpLoc(id),
                  "out_row_bytes " + std::to_string(op.out_row_bytes) +
                      " must be positive");
    }
  }
}

void CheckDagShape(const LogicalPlan& plan, VerifyReport* report) {
  const int n = static_cast<int>(plan.num_ops());
  if (n == 0) {
    report->Add(StatusCode::kFailedPrecondition, "plan", "plan is empty");
    return;
  }
  // Roots: operators that are no one's (valid) child.
  std::vector<bool> is_child(n, false);
  bool children_valid = true;
  for (int id = 0; id < n; ++id) {
    for (int c : plan.op(id).children) {
      if (c >= 0 && c < n && c != id) {
        is_child[c] = true;
      } else {
        children_valid = false;
      }
    }
  }
  int roots = 0, first_root = -1;
  for (int id = 0; id < n; ++id) {
    if (!is_child[id]) {
      ++roots;
      if (first_root == -1) first_root = id;
    }
  }
  if (roots != 1) {
    report->Add(StatusCode::kFailedPrecondition, "plan",
                "expected exactly one root, found " + std::to_string(roots));
  } else if (plan.root() != first_root) {
    report->Add(StatusCode::kFailedPrecondition, "plan",
                "plan.root() is " + std::to_string(plan.root()) +
                    " but the unique parentless operator is " +
                    std::to_string(first_root));
  }
  // Cycle detection (only meaningful when child ids are in range).
  if (children_valid) {
    std::vector<int> color(n, 0);
    for (int id = 0; id < n; ++id) {
      int cycle_op = -1;
      if (color[id] == 0 && HasCycleFrom(plan, id, &color, &cycle_op)) {
        report->Add(StatusCode::kFailedPrecondition, OpLoc(cycle_op),
                    "operator DAG contains a cycle through this operator");
        break;
      }
    }
  }
}

void CheckSubQPartition(const LogicalPlan& plan,
                        const std::vector<SubQuery>& subqs,
                        VerifyReport* report) {
  const int n = static_cast<int>(plan.num_ops());
  const int m = static_cast<int>(subqs.size());
  std::vector<int> owner(n, -1);
  for (int i = 0; i < m; ++i) {
    const SubQuery& sq = subqs[i];
    const std::string loc = "subQ " + std::to_string(i);
    if (sq.id != i) {
      report->Add(StatusCode::kInternal, loc,
                  "stored id " + std::to_string(sq.id) +
                      " does not match storage index");
    }
    if (sq.op_ids.empty()) {
      report->Add(StatusCode::kFailedPrecondition, loc, "subQ has no ops");
    }
    bool root_is_member = false;
    for (int op : sq.op_ids) {
      if (op < 0 || op >= n) {
        report->Add(StatusCode::kOutOfRange, loc,
                    "member op " + std::to_string(op) + " outside [0, " +
                        std::to_string(n) + ")");
        continue;
      }
      if (owner[op] != -1) {
        report->Add(StatusCode::kFailedPrecondition, OpLoc(op),
                    "covered by both subQ " + std::to_string(owner[op]) +
                        " and subQ " + std::to_string(i));
      }
      owner[op] = i;
      if (op == sq.root_op) root_is_member = true;
    }
    if (!root_is_member) {
      report->Add(StatusCode::kFailedPrecondition, loc,
                  "root_op " + std::to_string(sq.root_op) +
                      " is not a member of the subQ");
    }
    for (int d : sq.deps) {
      if (d < 0 || d >= m) {
        report->Add(StatusCode::kOutOfRange, loc,
                    "dep " + std::to_string(d) + " outside [0, " +
                        std::to_string(m) + ")");
      } else if (d == i) {
        report->Add(StatusCode::kOutOfRange, loc, "subQ depends on itself");
      }
    }
  }
  for (int op = 0; op < n; ++op) {
    if (owner[op] == -1) {
      report->Add(StatusCode::kFailedPrecondition, OpLoc(op),
                  "operator not covered by any subQ");
    }
  }
  // subQ dependency DAG must be acyclic (Kahn count).
  std::vector<int> in_deg(m, 0);
  for (const SubQuery& sq : subqs) {
    for (int d : sq.deps) {
      if (d >= 0 && d < m && d != sq.id) ++in_deg[sq.id];
    }
  }
  std::vector<int> frontier;
  for (int i = 0; i < m; ++i) {
    if (in_deg[i] == 0) frontier.push_back(i);
  }
  int visited = 0;
  while (!frontier.empty()) {
    const int u = frontier.back();
    frontier.pop_back();
    ++visited;
    for (const SubQuery& sq : subqs) {
      for (int d : sq.deps) {
        if (d == u && --in_deg[sq.id] == 0) frontier.push_back(sq.id);
      }
    }
  }
  if (visited != m) {
    report->Add(StatusCode::kFailedPrecondition, "subQ DAG",
                "subQ dependency graph contains a cycle");
  }
}

}  // namespace

bool LogicalPlanVerifier::applicable(const VerifyInput& in) const {
  return in.logical_plan != nullptr;
}

VerifyReport LogicalPlanVerifier::Verify(const VerifyInput& in) const {
  VerifyReport report = MakeReport(in);
  const LogicalPlan& plan = *in.logical_plan;
  CheckOperators(plan, in.catalog, &report);
  CheckDagShape(plan, &report);
  if (in.subqs != nullptr) {
    CheckSubQPartition(plan, *in.subqs, &report);
  }
  return report;
}

}  // namespace analysis
}  // namespace sparkopt
