#include "analysis/trace_verifier.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "exec/simulator.h"

namespace sparkopt {
namespace analysis {

namespace {

constexpr double kRelTol = 1e-6;

// Tolerance scaled to the magnitudes involved: simulated times are
// seconds, so absolute epsilon alone would be too strict for long traces.
double Tol(double scale) { return kRelTol * std::max(1.0, std::fabs(scale)); }

std::string StageLoc(const StageExecution& se) {
  return "stage " + std::to_string(se.stage_id) + " (wave " +
         std::to_string(se.wave) + ")";
}

void CheckTotals(const QueryExecution& exec, VerifyReport* report) {
  const std::pair<const char*, double> totals[] = {
      {"latency", exec.latency},
      {"analytical_latency", exec.analytical_latency},
      {"io_bytes", exec.io_bytes},
      {"cpu_hours", exec.cpu_hours},
      {"mem_gb_hours", exec.mem_gb_hours},
      {"cost", exec.cost},
  };
  for (const auto& [field, v] : totals) {
    if (v < 0.0 || !std::isfinite(v)) {
      report->Add(StatusCode::kOutOfRange, "query",
                  std::string(field) + " " + std::to_string(v) +
                      " is negative or non-finite");
    }
  }
}

void CheckStageRecords(const QueryExecution& exec, int total_cores,
                       VerifyReport* report) {
  double max_end = 0.0;
  double analytical_sum = 0.0;
  for (const StageExecution& se : exec.stages) {
    const std::string loc = StageLoc(se);
    if (se.stage_id < 0) {
      report->Add(StatusCode::kOutOfRange, loc, "stage_id is negative");
    }
    if (se.start < 0.0 || !std::isfinite(se.start)) {
      report->Add(StatusCode::kOutOfRange, loc,
                  "start " + std::to_string(se.start) +
                      " is negative or non-finite");
    }
    if (se.end + Tol(se.end) < se.start || !std::isfinite(se.end)) {
      report->Add(StatusCode::kOutOfRange, loc,
                  "end " + std::to_string(se.end) + " precedes start " +
                      std::to_string(se.start));
    }
    if (se.task_time_sum < 0.0 || !std::isfinite(se.task_time_sum)) {
      report->Add(StatusCode::kOutOfRange, loc,
                  "task_time_sum " + std::to_string(se.task_time_sum) +
                      " is negative or non-finite");
    }
    if (se.num_tasks < 1) {
      report->Add(StatusCode::kOutOfRange, loc,
                  "num_tasks " + std::to_string(se.num_tasks) + " < 1");
    }
    if (se.analytical_latency < 0.0 ||
        !std::isfinite(se.analytical_latency)) {
      report->Add(StatusCode::kOutOfRange, loc,
                  "analytical_latency " +
                      std::to_string(se.analytical_latency) +
                      " is negative or non-finite");
    } else if (total_cores > 0) {
      // analytical latency = task_time_sum / total cores (Section 4.2).
      const double expected = se.task_time_sum / total_cores;
      if (std::fabs(se.analytical_latency - expected) > Tol(expected)) {
        report->Add(StatusCode::kInternal, loc,
                    "analytical_latency " +
                        std::to_string(se.analytical_latency) +
                        " != task_time_sum / cores = " +
                        std::to_string(expected));
      }
    }
    max_end = std::max(max_end, se.end);
    analytical_sum += se.analytical_latency;
  }
  if (!exec.stages.empty()) {
    if (exec.latency + Tol(max_end) < max_end) {
      report->Add(StatusCode::kInternal, "query",
                  "latency " + std::to_string(exec.latency) +
                      " is before the last stage end " +
                      std::to_string(max_end));
    }
    if (std::fabs(exec.analytical_latency - analytical_sum) >
        Tol(analytical_sum)) {
      report->Add(StatusCode::kInternal, "query",
                  "analytical_latency " +
                      std::to_string(exec.analytical_latency) +
                      " != sum over stages " +
                      std::to_string(analytical_sum));
    }
  }
}

void CheckWaveOrdering(const QueryExecution& exec, VerifyReport* report) {
  // Waves execute strictly in sequence: every stage of wave w finishes
  // before any stage of wave w' > w starts.
  double prev_waves_max_end = 0.0;
  int prev_wave = -1;
  std::vector<const StageExecution*> sorted;
  sorted.reserve(exec.stages.size());
  for (const StageExecution& se : exec.stages) sorted.push_back(&se);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const StageExecution* a, const StageExecution* b) {
                     return a->wave < b->wave;
                   });
  double wave_max_end = 0.0;
  for (const StageExecution* se : sorted) {
    if (se->wave != prev_wave) {
      prev_waves_max_end = std::max(prev_waves_max_end, wave_max_end);
      prev_wave = se->wave;
    }
    if (se->start + Tol(prev_waves_max_end) < prev_waves_max_end) {
      report->Add(StatusCode::kFailedPrecondition, StageLoc(*se),
                  "starts at " + std::to_string(se->start) +
                      " before an earlier wave ended at " +
                      std::to_string(prev_waves_max_end));
    }
    wave_max_end = std::max(wave_max_end, se->end);
  }
}

void CheckPlanDependencies(const QueryExecution& exec,
                           const PhysicalPlan& plan, VerifyReport* report) {
  // Only valid for single-wave traces: AQE re-plans between waves, so
  // stage ids of a multi-wave trace refer to different physical plans.
  for (const StageExecution& se : exec.stages) {
    if (se.wave != 0) return;
  }
  const int n = static_cast<int>(plan.stages.size());
  std::vector<const StageExecution*> by_id(n, nullptr);
  for (const StageExecution& se : exec.stages) {
    if (se.stage_id < 0 || se.stage_id >= n) {
      report->Add(StatusCode::kOutOfRange, StageLoc(se),
                  "stage_id outside the plan's [0, " + std::to_string(n) +
                      ")");
      continue;
    }
    by_id[se.stage_id] = &se;
  }
  for (const StageExecution& se : exec.stages) {
    if (se.stage_id < 0 || se.stage_id >= n) continue;
    const QueryStage& st = plan.stages[se.stage_id];
    for (const auto* deps : {&st.deps, &st.broadcast_deps}) {
      for (int d : *deps) {
        if (d < 0 || d >= n || by_id[d] == nullptr) continue;
        const StageExecution& dep = *by_id[d];
        if (dep.end > se.start + Tol(dep.end)) {
          report->Add(StatusCode::kFailedPrecondition, StageLoc(se),
                      "starts at " + std::to_string(se.start) +
                          " before its dependency stage " +
                          std::to_string(d) + " ended at " +
                          std::to_string(dep.end));
        }
      }
    }
  }
}

}  // namespace

bool ExecutionTraceVerifier::applicable(const VerifyInput& in) const {
  return in.execution != nullptr;
}

VerifyReport ExecutionTraceVerifier::Verify(const VerifyInput& in) const {
  VerifyReport report = MakeReport(in);
  const QueryExecution& exec = *in.execution;
  CheckTotals(exec, &report);
  CheckStageRecords(exec, in.total_cores, &report);
  CheckWaveOrdering(exec, &report);
  if (in.physical_plan != nullptr) {
    CheckPlanDependencies(exec, *in.physical_plan, &report);
  }
  return report;
}

}  // namespace analysis
}  // namespace sparkopt
