#include "analysis/pareto_verifier.h"

#include <cmath>
#include <string>
#include <vector>

#include "common/pareto_flat.h"

namespace sparkopt {
namespace analysis {

namespace {

std::string PointLoc(size_t i, size_t n) {
  return "point " + std::to_string(i) + "/" + std::to_string(n);
}

}  // namespace

bool ParetoVerifier::applicable(const VerifyInput& in) const {
  return in.front != nullptr;
}

VerifyReport ParetoVerifier::Verify(const VerifyInput& in) const {
  VerifyReport report = MakeReport(in);
  const std::vector<ObjectiveVector>& front = *in.front;
  if (front.empty()) return report;

  const size_t n = front.size();
  const size_t k = front.front().size();
  if (k == 0) {
    report.Add(StatusCode::kInvalidArgument, PointLoc(0, n),
               "objective vector is empty");
    return report;
  }
  bool dims_ok = true;
  for (size_t i = 0; i < n; ++i) {
    if (front[i].size() != k) {
      report.Add(StatusCode::kInvalidArgument, PointLoc(i, n),
                 "dimension " + std::to_string(front[i].size()) +
                     " differs from the front's dimension " +
                     std::to_string(k));
      dims_ok = false;
    }
    for (size_t d = 0; d < front[i].size(); ++d) {
      if (!std::isfinite(front[i][d])) {
        report.Add(StatusCode::kOutOfRange, PointLoc(i, n),
                   "objective " + std::to_string(d) + " is " +
                       std::to_string(front[i][d]));
      }
    }
  }
  if (!dims_ok) return report;

  // Mutual non-dominance. For k = 2 and k = 3 the flat kernel decides
  // the common all-clear case in O(n log n); the quadratic scan below
  // only runs to name the offending pairs in the report. Dominates() is
  // strict, so exact duplicates (stable-order ties kept by
  // ParetoIndices) never flag each other.
  if (k == 2 || k == 3) {
    ParetoScratch scratch;
    scratch.ax.resize(n);
    scratch.ay.resize(n);
    if (k == 3) scratch.az.resize(n);
    for (size_t i = 0; i < n; ++i) {
      scratch.ax[i] = front[i][0];
      scratch.ay[i] = front[i][1];
      if (k == 3) scratch.az[i] = front[i][2];
    }
    if (k == 3) {
      FlatParetoPositions3(scratch.ax.data(), scratch.ay.data(),
                           scratch.az.data(), n, &scratch.kept, &scratch);
    } else {
      FlatParetoPositions(scratch.ax.data(), scratch.ay.data(), n,
                          &scratch.kept, &scratch);
    }
    if (scratch.kept.size() == n) return report;
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i != j && Dominates(front[i], front[j])) {
        report.Add(StatusCode::kInternal, PointLoc(j, n),
                   "dominated by point " + std::to_string(i) +
                       " — the front is not mutually non-dominated");
      }
    }
  }
  return report;
}

}  // namespace analysis
}  // namespace sparkopt
