#include "analysis/pareto_verifier.h"

#include <cmath>
#include <string>
#include <vector>

namespace sparkopt {
namespace analysis {

namespace {

std::string PointLoc(size_t i, size_t n) {
  return "point " + std::to_string(i) + "/" + std::to_string(n);
}

}  // namespace

bool ParetoVerifier::applicable(const VerifyInput& in) const {
  return in.front != nullptr;
}

VerifyReport ParetoVerifier::Verify(const VerifyInput& in) const {
  VerifyReport report = MakeReport(in);
  const std::vector<ObjectiveVector>& front = *in.front;
  if (front.empty()) return report;

  const size_t n = front.size();
  const size_t k = front.front().size();
  if (k == 0) {
    report.Add(StatusCode::kInvalidArgument, PointLoc(0, n),
               "objective vector is empty");
    return report;
  }
  bool dims_ok = true;
  for (size_t i = 0; i < n; ++i) {
    if (front[i].size() != k) {
      report.Add(StatusCode::kInvalidArgument, PointLoc(i, n),
                 "dimension " + std::to_string(front[i].size()) +
                     " differs from the front's dimension " +
                     std::to_string(k));
      dims_ok = false;
    }
    for (size_t d = 0; d < front[i].size(); ++d) {
      if (!std::isfinite(front[i][d])) {
        report.Add(StatusCode::kOutOfRange, PointLoc(i, n),
                   "objective " + std::to_string(d) + " is " +
                       std::to_string(front[i][d]));
      }
    }
  }
  if (!dims_ok) return report;

  // Mutual non-dominance. Dominates() is strict, so exact duplicates
  // (stable-order ties kept by ParetoIndices) never flag each other.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i != j && Dominates(front[i], front[j])) {
        report.Add(StatusCode::kInternal, PointLoc(j, n),
                   "dominated by point " + std::to_string(i) +
                       " — the front is not mutually non-dominated");
      }
    }
  }
  return report;
}

}  // namespace analysis
}  // namespace sparkopt
