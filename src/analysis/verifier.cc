#include "analysis/verifier.h"

#include <sstream>

#include "analysis/logical_plan_verifier.h"
#include "analysis/pareto_verifier.h"
#include "analysis/physical_plan_verifier.h"
#include "analysis/trace_verifier.h"

namespace sparkopt {
namespace analysis {

std::string Violation::ToString() const {
  std::ostringstream ss;
  ss << "[" << Status::CodeName(code) << "] " << location << ": " << message;
  return ss.str();
}

void VerifyReport::Add(StatusCode code, std::string location,
                       std::string message) {
  violations.push_back({code, std::move(location), std::move(message)});
}

bool VerifyReport::HasCode(StatusCode code) const {
  for (const auto& v : violations) {
    if (v.code == code) return true;
  }
  return false;
}

Status VerifyReport::ToStatus() const {
  if (ok()) return Status::OK();
  const Violation& v = violations.front();
  std::ostringstream ss;
  ss << verifier;
  if (!site.empty()) ss << " (at " << site << ")";
  ss << ": " << v.location << ": " << v.message;
  if (violations.size() > 1) {
    ss << " (+" << violations.size() - 1 << " more)";
  }
  return Status(v.code, ss.str());
}

std::string VerifyReport::ToString() const {
  std::ostringstream ss;
  ss << verifier;
  if (!site.empty()) ss << " (at " << site << ")";
  if (ok()) {
    ss << ": ok";
    return ss.str();
  }
  ss << ": " << violations.size() << " violation(s)";
  for (const auto& v : violations) {
    ss << "\n  " << v.ToString();
  }
  return ss.str();
}

VerifyReport Verifier::MakeReport(const VerifyInput& in) const {
  VerifyReport report;
  report.verifier = name();
  report.site = in.site;
  return report;
}

void VerifierRegistry::Register(std::unique_ptr<Verifier> verifier) {
  for (auto& p : passes_) {
    if (std::string(p->name()) == verifier->name()) {
      p = std::move(verifier);
      return;
    }
  }
  passes_.push_back(std::move(verifier));
}

const Verifier* VerifierRegistry::Find(const std::string& name) const {
  for (const auto& p : passes_) {
    if (name == p->name()) return p.get();
  }
  return nullptr;
}

Result<VerifyReport> VerifierRegistry::Run(const std::string& name,
                                           const VerifyInput& in) const {
  const Verifier* v = Find(name);
  if (v == nullptr) {
    return Status::NotFound("no verifier pass named '" + name + "'");
  }
  if (!v->applicable(in)) {
    return Status::FailedPrecondition(
        "verifier pass '" + name + "' is missing its required inputs");
  }
  return v->Verify(in);
}

std::vector<VerifyReport> VerifierRegistry::RunApplicable(
    const VerifyInput& in) const {
  std::vector<VerifyReport> reports;
  for (const auto& p : passes_) {
    if (p->applicable(in)) reports.push_back(p->Verify(in));
  }
  return reports;
}

std::vector<std::string> VerifierRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(passes_.size());
  for (const auto& p : passes_) out.emplace_back(p->name());
  return out;
}

const VerifierRegistry& VerifierRegistry::BuiltIn() {
  static const VerifierRegistry* kRegistry = [] {
    // lint:allow(naked-new): leaked singleton — no exit-order race
    auto* r = new VerifierRegistry();
    r->Register(std::make_unique<LogicalPlanVerifier>());
    r->Register(std::make_unique<PhysicalPlanVerifier>());
    r->Register(std::make_unique<ParetoVerifier>());
    r->Register(std::make_unique<ExecutionTraceVerifier>());
    return r;
  }();
  return *kRegistry;
}

}  // namespace analysis
}  // namespace sparkopt
