#pragma once

#include "analysis/verifier.h"

/// \file logical_plan_verifier.h
/// \brief Structural invariants of logical plans and their subQ
/// decomposition (Section 4.1).

namespace sparkopt {
namespace analysis {

/// \brief Verifies that a LogicalPlan is a well-formed operator DAG.
///
/// Checked invariants (violation code in parentheses):
///  - operator ids match their storage index          (kInternal)
///  - child ids are in range and not self             (kOutOfRange)
///  - the operator graph is acyclic                   (kFailedPrecondition)
///  - arity matches the OpType: Scan 0, Join 2,
///    Union >= 2, all others exactly 1                (kInvalidArgument)
///  - exactly one root exists and plan.root() is it   (kFailedPrecondition)
///  - scans carry a table_id, and it resolves in the
///    catalog when one is supplied                    (kNotFound)
///  - selectivity in (0,1], cardinality_factor >= 0,
///    shuffle_skew in [0,1], out_row_bytes > 0        (kOutOfRange)
///
/// When a subQ decomposition is supplied, additionally:
///  - every operator belongs to exactly one subQ; none
///    orphaned, none covered twice                    (kFailedPrecondition)
///  - subQ ids match their index, root_op is a member,
///    deps are in range / not self                    (kInternal/kOutOfRange)
///  - the subQ dependency graph is acyclic            (kFailedPrecondition)
class LogicalPlanVerifier : public Verifier {
 public:
  const char* name() const override { return "logical_plan"; }
  bool applicable(const VerifyInput& in) const override;
  VerifyReport Verify(const VerifyInput& in) const override;
};

}  // namespace analysis
}  // namespace sparkopt
