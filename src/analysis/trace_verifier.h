#pragma once

#include "analysis/verifier.h"

/// \file trace_verifier.h
/// \brief Invariants of simulated execution traces (QueryExecution).

namespace sparkopt {
namespace analysis {

/// \brief Verifies an execution trace produced by the simulator or the
/// AQE driver.
///
/// Checked invariants (violation code in parentheses):
///  - query latency / IO / cost totals are finite and
///    non-negative                                     (kOutOfRange)
///  - per stage: 0 <= start <= end, task_time_sum and
///    analytical_latency finite and non-negative,
///    num_tasks >= 1                                   (kOutOfRange)
///  - query latency covers the last stage end          (kInternal)
///  - query analytical latency equals the sum over
///    stages (Section 4.2)                             (kInternal)
///  - AQE wave ordering: a stage in a later wave never
///    starts before an earlier wave's stages end       (kFailedPrecondition)
///  - with total_cores > 0: per-stage analytical
///    latency equals task_time_sum / total_cores       (kInternal)
///  - with the physical plan supplied and a single-wave
///    trace: every dependency finishes before its
///    dependent stage starts                           (kFailedPrecondition)
class ExecutionTraceVerifier : public Verifier {
 public:
  const char* name() const override { return "execution_trace"; }
  bool applicable(const VerifyInput& in) const override;
  VerifyReport Verify(const VerifyInput& in) const override;
};

}  // namespace analysis
}  // namespace sparkopt
