#pragma once

#include "analysis/verifier.h"

/// \file physical_plan_verifier.h
/// \brief Structural invariants of physical plans (stage DAGs).

namespace sparkopt {
namespace analysis {

/// \brief Verifies that a PhysicalPlan is a well-formed stage DAG.
///
/// Checked invariants (violation code in parentheses):
///  - stage ids match their storage index               (kInternal)
///  - deps / broadcast_deps in range, not self,
///    no duplicates                                     (kOutOfRange)
///  - deps and broadcast_deps are disjoint              (kInvalidArgument)
///  - the stage DAG is acyclic                          (kFailedPrecondition)
///  - num_partitions >= 1 and equals
///    partition_bytes.size()                            (kInternal)
///  - partition bytes / IO totals / cpu_work are
///    finite and non-negative                           (kOutOfRange)
///  - exactly one stage is the root (does not exchange
///    its output)                                       (kFailedPrecondition)
///  - BHJ stages take their build side as a broadcast
///    dependency, never as a shuffle dependency         (kFailedPrecondition)
///
/// When the logical plan is supplied, additionally:
///  - every logical operator is executed by exactly one
///    stage; none orphaned, none duplicated             (kFailedPrecondition)
///  - join decisions reference join operators           (kInvalidArgument)
class PhysicalPlanVerifier : public Verifier {
 public:
  const char* name() const override { return "physical_plan"; }
  bool applicable(const VerifyInput& in) const override;
  VerifyReport Verify(const VerifyInput& in) const override;
};

}  // namespace analysis
}  // namespace sparkopt
