#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/pareto.h"
#include "common/status.h"

/// \file verifier.h
/// \brief Composable invariant-verification framework.
///
/// A Verifier is one structural-invariant pass (plan DAG well-formedness,
/// Pareto-front non-dominance, execution-trace ordering, ...). Passes
/// consume a VerifyInput — a bundle of optional pointers to the artifacts
/// a producer has in hand — and emit a VerifyReport listing every
/// violation with a StatusCode and a location. The VerifierRegistry runs
/// passes by name or runs every pass applicable to an input.
///
/// Producers call the passes through the SPARKOPT_VERIFY_* macros in
/// analysis/invariants.h, compiled in only under the SPARKOPT_VERIFY
/// CMake option (ON in Debug/CI, OFF in Release benches).

namespace sparkopt {

class LogicalPlan;
struct TableStats;
struct SubQuery;
struct PhysicalPlan;
struct QueryExecution;

namespace analysis {

/// One invariant violation: category, where, and what.
struct Violation {
  StatusCode code = StatusCode::kInternal;
  /// Structural location, e.g. "op 3", "stage 2", "point 5/7".
  std::string location;
  std::string message;

  std::string ToString() const;
};

/// Outcome of running one verifier pass.
struct VerifyReport {
  std::string verifier;          ///< pass name
  std::string site;              ///< producer call site (may be empty)
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
  void Add(StatusCode code, std::string location, std::string message);
  bool HasCode(StatusCode code) const;

  /// OK when clean; otherwise the first violation as a Status whose
  /// message carries the pass name and location.
  Status ToStatus() const;
  /// Multi-line human-readable summary of every violation.
  std::string ToString() const;
};

/// \brief Everything a producer can hand to the verifiers. All pointers
/// optional; passes declare what they need via applicable().
struct VerifyInput {
  const LogicalPlan* logical_plan = nullptr;
  /// Catalog behind the logical plan's scans (enables table resolution).
  const std::vector<TableStats>* catalog = nullptr;
  /// subQ decomposition of `logical_plan` (enables partition checks).
  const std::vector<SubQuery>* subqs = nullptr;
  const PhysicalPlan* physical_plan = nullptr;
  /// A Pareto front that must be mutually non-dominated.
  const std::vector<ObjectiveVector>* front = nullptr;
  const QueryExecution* execution = nullptr;
  /// Total cores the execution ran on; > 0 enables the
  /// task_time_sum / analytical_latency consistency check.
  int total_cores = 0;
  /// Producer call-site tag copied into reports, e.g. "PhysicalPlanner".
  const char* site = "";
};

/// \brief One invariant-verification pass.
class Verifier {
 public:
  virtual ~Verifier() = default;

  virtual const char* name() const = 0;
  /// True when `in` carries the artifacts this pass inspects.
  virtual bool applicable(const VerifyInput& in) const = 0;
  virtual VerifyReport Verify(const VerifyInput& in) const = 0;

 protected:
  /// Report pre-stamped with this pass's name and the input's site tag.
  VerifyReport MakeReport(const VerifyInput& in) const;
};

/// \brief Owns verifier passes and runs them by name.
class VerifierRegistry {
 public:
  /// Registers a pass; replaces any existing pass with the same name.
  void Register(std::unique_ptr<Verifier> verifier);

  /// nullptr when no pass has that name.
  const Verifier* Find(const std::string& name) const;

  /// Runs one pass by name; NotFound for unknown names,
  /// FailedPrecondition when the pass is not applicable to `in`.
  Result<VerifyReport> Run(const std::string& name,
                           const VerifyInput& in) const;

  /// Runs every registered pass applicable to `in`, in registration
  /// order.
  std::vector<VerifyReport> RunApplicable(const VerifyInput& in) const;

  std::vector<std::string> names() const;
  size_t size() const { return passes_.size(); }

  /// Registry preloaded with every built-in pass (logical_plan,
  /// physical_plan, pareto_front, execution_trace).
  static const VerifierRegistry& BuiltIn();

 private:
  std::vector<std::unique_ptr<Verifier>> passes_;
};

}  // namespace analysis
}  // namespace sparkopt
