#pragma once

#include "analysis/verifier.h"

/// \file pareto_verifier.h
/// \brief Invariants of Pareto fronts produced by the MOO layer.

namespace sparkopt {
namespace analysis {

/// \brief Verifies that a front is a valid Pareto set.
///
/// Checked invariants (violation code in parentheses):
///  - every point has the same, non-zero dimension     (kInvalidArgument)
///  - every objective value is finite                  (kOutOfRange)
///  - no point dominates another (Definition 3.2);
///    exact duplicates are legal ties — the dominance
///    relation is strict, so coincident points never
///    flag each other                                  (kInternal)
///
/// An empty front is vacuously clean: producers that must not return an
/// empty set enforce that separately (the tuner turns it into a Status).
class ParetoVerifier : public Verifier {
 public:
  const char* name() const override { return "pareto_front"; }
  bool applicable(const VerifyInput& in) const override;
  VerifyReport Verify(const VerifyInput& in) const override;
};

}  // namespace analysis
}  // namespace sparkopt
