#pragma once

#include <functional>
#include <vector>

#include "common/stats.h"
#include "exec/aqe.h"
#include "model/features.h"
#include "model/mlp.h"
#include "workload/builder.h"

/// \file trainer.h
/// \brief Trace collection and training for the three model targets
/// (subQ at compile time, QS and collapsed-LQP at runtime), reproducing
/// the paper's data pipeline: parametric query variants from the
/// benchmark templates, one LHS-sampled configuration per run, traces
/// split 8:1:1 (Section 6, "Workloads").

namespace sparkopt {

/// A supervised dataset: rows of features and raw-space targets
/// {analytical latency (s), IO (MB)}.
struct ModelDataset {
  Matrix x;
  Matrix y;

  size_t size() const { return x.size(); }
  bool empty() const { return x.empty(); }
  void Append(std::vector<double> features, std::vector<double> targets) {
    x.push_back(std::move(features));
    y.push_back(std::move(targets));
  }
};

/// 8:1:1 split (train/validation/test) with a deterministic shuffle.
struct DatasetSplit {
  ModelDataset train, validation, test;
};
DatasetSplit SplitDataset(const ModelDataset& ds, uint64_t seed);

/// Knobs of trace collection.
struct TraceOptions {
  int runs = 400;          ///< (query-variant, configuration) pairs
  uint64_t seed = 42;
  bool use_variants = true;  ///< perturb templates (training diversity)
};

/// \brief Runs the simulator over sampled (variant, configuration) pairs
/// and emits training samples for all three targets.
class TraceCollector {
 public:
  TraceCollector(const ClusterSpec& cluster, const CostModelParams& cost,
                 const PriceBook& prices = PriceBook())
      : cluster_(cluster), cost_(cost), prices_(prices) {}

  /// `make_query(qid, variant)` builds a query (TPC-H or TPC-DS factory);
  /// `num_templates` is 22 or 102.
  Status Collect(
      const std::function<Result<Query>(int, uint64_t)>& make_query,
      int num_templates, const TraceOptions& opts, ModelDataset* subq_ds,
      ModelDataset* qs_ds, ModelDataset* lqp_ds);

 private:
  ClusterSpec cluster_;
  CostModelParams cost_;
  PriceBook prices_;
};

/// Table-3 row: accuracy of one model target plus inference throughput.
struct ModelPerformance {
  AccuracyReport latency;
  AccuracyReport io;
  double throughput_per_sec = 0.0;
};

/// \brief The three trained models of Section 4 plus evaluation helpers.
class ModelSuite {
 public:
  ModelSuite() = default;

  /// Trains all three targets from their datasets.
  Status Train(const ModelDataset& subq, const ModelDataset& qs,
               const ModelDataset& lqp, uint64_t seed,
               const Mlp::TrainOptions& opts = {});

  /// Evaluates a target ("subQ", "QS", "LQP") on a held-out set.
  ModelPerformance Evaluate(const Regressor& model,
                            const ModelDataset& test) const;

  const Regressor& subq_model() const { return subq_; }
  const Regressor& qs_model() const { return qs_; }
  const Regressor& lqp_model() const { return lqp_; }

 private:
  Regressor subq_, qs_, lqp_;
};

}  // namespace sparkopt
