#pragma once

#include <vector>

#include "exec/cost_model.h"
#include "workload/builder.h"

/// \file subq_evaluator.h
/// \brief Per-subQ objective evaluation: the phi_j(subQ_i, theta_c,
/// theta_p_i, theta_s_i) functions that HMOOC optimizes (Definition 5.1).
///
/// Each subQ is costed as the query stage it will become: input sizes
/// come from child subQ roots (CBO estimates at compile time, true values
/// at runtime), the join algorithm follows the parametric thresholds, and
/// the objectives are the paper's analytical latency (sum of task
/// latencies / total cores) plus the decomposable cloud-cost share
/// (CPU-hour + memory-hour + IO priced per subQ).
///
/// Because operator cardinalities do not depend on the configuration,
/// subQ objectives are exactly separable given theta_c — the property
/// HMOOC's hierarchical decomposition relies on.

namespace sparkopt {

/// Objective values of one subQ under one configuration.
struct SubQObjectives {
  double analytical_latency = 0.0;  ///< seconds
  double io_bytes = 0.0;
  double cost = 0.0;                ///< dollars (decomposable share)
};

/// \brief Evaluates subQs of one query as standalone stages.
class SubQEvaluator {
 public:
  SubQEvaluator(const Query* query, const ClusterSpec& cluster,
                const CostModelParams& cost_params,
                const PriceBook& prices = PriceBook());

  int num_subqs() const { return static_cast<int>(subqs_.size()); }
  const std::vector<SubQuery>& subqueries() const { return subqs_; }
  const Query& query() const { return *query_; }

  /// \brief Builds the query stage this subQ becomes under the given
  /// parameters (used both for costing and for feature extraction).
  ///
  /// `completed_subqs`, if non-null, marks subQs whose true statistics
  /// are known at runtime: operators inside them read true cardinalities
  /// regardless of `source` (the information the runtime optimizer
  /// actually has mid-query).
  QueryStage BuildStage(int subq_id, const ContextParams& theta_c,
                        const PlanParams& theta_p,
                        const StageParams& theta_s,
                        CardinalitySource source,
                        const std::vector<bool>* completed_subqs =
                            nullptr) const;

  /// Objectives of one subQ. Compile time: source = kEstimated, uniform
  /// partition assumption is still subject to operator skew annotations
  /// (matching the planner).
  SubQObjectives Evaluate(int subq_id, const ContextParams& theta_c,
                          const PlanParams& theta_p,
                          const StageParams& theta_s,
                          CardinalitySource source,
                          const std::vector<bool>* completed_subqs =
                              nullptr) const;

  /// Query-level objectives = sum over subQs (the Lambda aggregator).
  SubQObjectives EvaluateQuery(const ContextParams& theta_c,
                               const std::vector<PlanParams>& theta_p,
                               const std::vector<StageParams>& theta_s,
                               CardinalitySource source) const;

  const TaskCostModel& cost_model() const { return cost_model_; }

 private:
  const Query* query_;
  std::vector<SubQuery> subqs_;
  std::vector<int> subq_of_op_;
  TaskCostModel cost_model_;
  PriceBook prices_;
};

}  // namespace sparkopt
