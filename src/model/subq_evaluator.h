#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "exec/cost_model.h"
#include "workload/builder.h"

/// \file subq_evaluator.h
/// \brief Per-subQ objective evaluation: the phi_j(subQ_i, theta_c,
/// theta_p_i, theta_s_i) functions that HMOOC optimizes (Definition 5.1).
///
/// Each subQ is costed as the query stage it will become: input sizes
/// come from child subQ roots (CBO estimates at compile time, true values
/// at runtime), the join algorithm follows the parametric thresholds, and
/// the objectives are the paper's analytical latency (sum of task
/// latencies / total cores) plus the decomposable cloud-cost share
/// (CPU-hour + memory-hour + IO priced per subQ).
///
/// Because operator cardinalities do not depend on the configuration,
/// subQ objectives are exactly separable given theta_c — the property
/// HMOOC's hierarchical decomposition relies on.

namespace sparkopt {

/// Objective values of one subQ under one configuration.
struct SubQObjectives {
  double analytical_latency = 0.0;  ///< seconds
  double io_bytes = 0.0;
  double cost = 0.0;                ///< dollars (decomposable share)
};

/// \brief Capacity-bounded, thread-safe open-addressing memo table for
/// evaluation results, with second-chance eviction.
///
/// Keys are 64-bit hashes of the full evaluation inputs; values are the
/// three objective doubles. Lock-free: a writer claims a slot by CAS-ing
/// the tag to a busy sentinel, writes the value, then publishes the key
/// with a release store; readers validate seqlock-style — an acquire
/// load of the matching tag, relaxed loads of the three value words, an
/// acquire fence, then a tag re-check. If an eviction republished the
/// slot mid-read the re-check fails and the lookup reports a miss (the
/// value is recomputable, so a spurious miss is merely a little work).
///
/// When the probe window is full, Insert falls back to CLOCK-style
/// second-chance eviction inside the window: each slot carries a
/// reference bit set on hit and on insert; a first sweep clears set bits,
/// a second sweep replaces the first slot whose bit is still clear. Only
/// under extreme contention (every slot busy or repeatedly raced) does an
/// insert drop. Since evaluation is a pure function of the key's
/// preimage, losing a race, dropping, or evicting merely recomputes a
/// deterministic value — correctness never depends on which thread
/// inserted first or which entry was displaced.
class EvalCache {
 public:
  static constexpr size_t kDefaultCapacity = size_t{1} << 16;

  /// `capacity` is rounded up to a power of two (minimum 1024 slots).
  explicit EvalCache(size_t capacity = kDefaultCapacity);

  /// True (and `*out` filled) when `key` is present. `probes`, when
  /// non-null, receives the number of slots inspected (>= 1) — the
  /// open-addressing probe length the profiler uses to price lookups.
  /// Non-const: a hit touches the slot's second-chance reference bit.
  bool Lookup(uint64_t key, SubQObjectives* out, int* probes = nullptr);
  /// Inserts, evicting the least-recently-touched slot in the probe
  /// window when it is full (see evictions()); drops only when every
  /// slot in the window is mid-write (see drops()).
  void Insert(uint64_t key, const SubQObjectives& value);
  /// Empties the table and resets all counters. Not thread-safe against
  /// concurrent access.
  void Clear();

  size_t capacity() const { return mask_ + 1; }
  /// Slots currently holding a published entry.
  size_t occupancy() const { return size_.load(std::memory_order_relaxed); }
  /// Entries displaced by second-chance replacement. A high eviction
  /// rate means the working set exceeds the table; hit rate degrades
  /// gracefully instead of freezing the first-inserted entries.
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Inserts abandoned because every slot in the probe window was
  /// mid-write or repeatedly raced — rare; the value is recomputable.
  uint64_t drops() const { return drops_.load(std::memory_order_relaxed); }

 private:
  struct Slot {
    std::atomic<uint64_t> tag{kEmpty};
    std::atomic<uint32_t> ref{0};  ///< second-chance reference bit
    // Values are individually atomic so evicting writers never tear a
    // concurrent reader's view; the seqlock tag re-check in Lookup
    // rejects any read that overlapped a republish.
    std::atomic<double> latency{0.0};
    std::atomic<double> io_bytes{0.0};
    std::atomic<double> cost{0.0};
  };
  static constexpr uint64_t kEmpty = 0;
  static constexpr uint64_t kBusy = 1;
  static constexpr int kMaxProbe = 16;

  std::unique_ptr<Slot[]> slots_;
  size_t mask_ = 0;
  std::atomic<uint64_t> size_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> drops_{0};
};

/// \brief Evaluates subQs of one query as standalone stages.
class SubQEvaluator {
 public:
  /// `eval_cache_capacity` sizes the memo table (rounded up to a power of
  /// two, minimum 1024 slots); service deployments size it per tenant
  /// budget instead of the single-solve default.
  SubQEvaluator(const Query* query, const ClusterSpec& cluster,
                const CostModelParams& cost_params,
                const PriceBook& prices = PriceBook(),
                size_t eval_cache_capacity = EvalCache::kDefaultCapacity);

  int num_subqs() const { return static_cast<int>(subqs_.size()); }
  const std::vector<SubQuery>& subqueries() const { return subqs_; }
  const Query& query() const { return *query_; }

  /// \brief Builds the query stage this subQ becomes under the given
  /// parameters (used both for costing and for feature extraction).
  ///
  /// `completed_subqs`, if non-null, marks subQs whose true statistics
  /// are known at runtime: operators inside them read true cardinalities
  /// regardless of `source` (the information the runtime optimizer
  /// actually has mid-query).
  QueryStage BuildStage(int subq_id, const ContextParams& theta_c,
                        const PlanParams& theta_p,
                        const StageParams& theta_s,
                        CardinalitySource source,
                        const std::vector<bool>* completed_subqs =
                            nullptr) const;

  /// Objectives of one subQ. Compile time: source = kEstimated, uniform
  /// partition assumption is still subject to operator skew annotations
  /// (matching the planner).
  SubQObjectives Evaluate(int subq_id, const ContextParams& theta_c,
                          const PlanParams& theta_p,
                          const StageParams& theta_s,
                          CardinalitySource source,
                          const std::vector<bool>* completed_subqs =
                              nullptr) const;

  /// \brief Coarse tier-0 objectives of one subQ: the same operator loop
  /// and join-algorithm selection as Evaluate (so the screen reacts to
  /// every theta dimension that changes the plan), but with a single
  /// uniform representative partition — no skewed-partition vector, no
  /// skew split, no AQE coalesce simulation. 5-20x cheaper per call than
  /// Evaluate and monotonically related to it, which is what a
  /// dominance-margin screen needs (see moo/objective_models.h). Never
  /// consults the eval cache: screen values live in a different result
  /// space than full evaluations and must not share keys.
  SubQObjectives EvaluateScreen(int subq_id, const ContextParams& theta_c,
                                const PlanParams& theta_p,
                                const StageParams& theta_s,
                                CardinalitySource source,
                                const std::vector<bool>* completed_subqs =
                                    nullptr) const;

  /// Query-level objectives = sum over subQs (the Lambda aggregator).
  SubQObjectives EvaluateQuery(const ContextParams& theta_c,
                               const std::vector<PlanParams>& theta_p,
                               const std::vector<StageParams>& theta_s,
                               CardinalitySource source) const;

  const TaskCostModel& cost_model() const { return cost_model_; }

  /// \brief Evaluation memoization (see EvalCache). Enabled by default:
  /// repeated configurations across HMOOC weight pairs, cluster
  /// refinement rounds, and runtime re-optimization incumbents skip
  /// BuildStage and per-task costing entirely. Hits/misses are exposed
  /// here and counted under obs "model.eval_cache_{hits,misses}".
  ///
  /// Safe to share across solves: evaluation is a pure function of the
  /// cached key's inputs (the plan's cardinalities are immutable), and
  /// the runtime completed-subQ mask is part of the key.
  /// Re-enabling also re-arms the adaptive bypass (below), giving the
  /// cache a fresh observation window.
  void set_eval_cache_enabled(bool enabled) {
    cache_enabled_ = enabled;
    cache_bypassed_.store(false, std::memory_order_relaxed);
  }
  bool eval_cache_enabled() const { return cache_enabled_; }
  /// \brief Adaptive bypass: once kBypassWindow lookups have been
  /// observed and the running hit rate sits below kBypassMinHitRate,
  /// probing is disabled for all further evaluations — at low hit rates
  /// the probe cost exceeds the hit win (the threads=1 regression of
  /// DESIGN.md section 12). The bypass is latched until re-armed via
  /// set_eval_cache_enabled(true); results are unaffected either way
  /// (the cache is transparent), only lookup overhead changes.
  bool eval_cache_bypassed() const {
    return cache_bypassed_.load(std::memory_order_relaxed);
  }
  uint64_t eval_cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  uint64_t eval_cache_misses() const {
    return cache_misses_.load(std::memory_order_relaxed);
  }
  /// Total slots probed across all lookups (hit or miss). Divided by
  /// hits+misses this is the mean probe length; multiplied by a measured
  /// ns/probe it bounds the cache's lookup overhead — the quantity that
  /// explains the threads=1 cache-on regression in BENCH_pr6.json (see
  /// DESIGN.md section 12). Also observed per-lookup into the
  /// "model.eval_cache_probe_len" histogram when a session is installed.
  uint64_t eval_cache_probes() const {
    return cache_probes_.load(std::memory_order_relaxed);
  }
  /// Inserts dropped by the cache because every probe-window slot was
  /// mid-write (EvalCache::drops); emitted next to hits/misses on the
  /// hmooc_solve RESULT line so table-pressure is visible from benchmarks.
  uint64_t eval_cache_drops() const { return cache_.drops(); }
  /// Entries displaced by the cache's second-chance eviction.
  uint64_t eval_cache_evictions() const { return cache_.evictions(); }
  size_t eval_cache_capacity() const { return cache_.capacity(); }
  size_t eval_cache_occupancy() const { return cache_.occupancy(); }

  /// \brief Publishes eval-cache health as obs gauges
  /// ("model.eval_cache_{occupancy_frac,hit_rate,drop_rate,evictions}")
  /// so saturation shows up in OpenMetrics exports, not only on bench
  /// RESULT lines. Cheap (a handful of relaxed loads); called once at the
  /// end of every HMOOC solve and a no-op when no obs session is
  /// installed.
  void PublishCacheGauges() const;

  /// Lookups observed before the bypass decision is made, and the hit
  /// rate below which probing stops paying for itself (measured: at a
  /// 5.7% hit rate the threads=1 solve was ~16% slower with the cache on
  /// than off — DESIGN.md section 12).
  static constexpr uint64_t kBypassWindow = 4096;
  static constexpr double kBypassMinHitRate = 0.10;

 private:
  QueryStage BuildStageCore(int subq_id, const ContextParams& theta_c,
                            const PlanParams& theta_p,
                            const StageParams& theta_s,
                            CardinalitySource source,
                            const std::vector<bool>* completed_subqs,
                            bool coarse) const;
  SubQObjectives FinishObjectives(const QueryStage& st,
                                  const ContextParams& theta_c,
                                  double task_sum) const;

  const Query* query_;
  std::vector<SubQuery> subqs_;
  std::vector<int> subq_of_op_;
  TaskCostModel cost_model_;
  PriceBook prices_;
  bool cache_enabled_ = true;
  mutable EvalCache cache_;
  mutable std::atomic<bool> cache_bypassed_{false};
  mutable std::atomic<uint64_t> cache_hits_{0};
  mutable std::atomic<uint64_t> cache_misses_{0};
  mutable std::atomic<uint64_t> cache_probes_{0};
};

}  // namespace sparkopt
