#include "model/subq_evaluator.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "obs/trace.h"

namespace sparkopt {

namespace {
constexpr double kMb = 1024.0 * 1024.0;

CostModelParams NoiseFree(CostModelParams p) {
  p.noise_sigma = 0.0;
  return p;
}

double NLogN(double n) { return n * std::log2(std::max(n, 2.0)); }

/// 64-bit key over the full Evaluate input. Doubles are hashed bitwise;
/// the completed-subQ mask folds into one word per 64 subQs (a nullptr
/// mask and an all-false mask key separately even though BuildStage
/// treats them the same — a conservative split that only costs one
/// duplicate entry). A 64-bit hash admits a ~n^2/2^64 collision chance
/// per solve — negligible at the 10^4-10^5 evaluations a solve performs.
uint64_t EvalKey(int subq_id, const ContextParams& c, const PlanParams& p,
                 const StageParams& s, CardinalitySource source,
                 const std::vector<bool>* completed) {
  const double fields[] = {
      static_cast<double>(c.executor_cores),
      c.executor_memory_gb,
      static_cast<double>(c.executor_instances),
      static_cast<double>(c.default_parallelism),
      c.reducer_max_size_in_flight_mb,
      static_cast<double>(c.shuffle_bypass_merge_threshold),
      c.shuffle_compress ? 1.0 : 0.0,
      c.memory_fraction,
      p.advisory_partition_size_mb,
      p.non_empty_partition_ratio,
      p.shuffled_hash_join_threshold_mb,
      p.broadcast_join_threshold_mb,
      static_cast<double>(p.shuffle_partitions),
      p.skewed_partition_threshold_mb,
      p.skewed_partition_factor,
      p.max_partition_bytes_mb,
      p.file_open_cost_mb,
      s.rebalance_small_factor,
      s.coalesce_min_partition_size_mb,
  };
  uint64_t h = Fnv1a(fields, sizeof(fields));
  h = HashCombine(h, (static_cast<uint64_t>(subq_id) << 8) |
                         static_cast<uint64_t>(source));
  if (completed != nullptr) {
    uint64_t word = 0;
    for (size_t i = 0; i < completed->size(); ++i) {
      if ((*completed)[i]) word |= uint64_t{1} << (i % 64);
      if (i % 64 == 63) {
        h = HashCombine(h, word);
        word = 0;
      }
    }
    h = HashCombine(h, word);
  }
  return h;
}
}  // namespace

// ---- EvalCache ---------------------------------------------------------

EvalCache::EvalCache(size_t capacity) {
  size_t cap = 1024;
  while (cap < capacity) cap <<= 1;
  slots_ = std::make_unique<Slot[]>(cap);
  mask_ = cap - 1;
}

bool EvalCache::Lookup(uint64_t key, SubQObjectives* out, int* probes) {
  if (key <= kBusy) key ^= 0x9E3779B97F4A7C15ULL;
  for (int d = 0; d < kMaxProbe; ++d) {
    Slot& slot = slots_[(key + d) & mask_];
    const uint64_t tag = slot.tag.load(std::memory_order_acquire);
    if (tag == key) {
      if (probes != nullptr) *probes = d + 1;
      // Seqlock-style read: load the payload, then re-check the tag. A
      // concurrent eviction republishes the slot as kBusy first, so a
      // stable tag across the fence proves the three loads saw one
      // consistent entry.
      const double latency = slot.latency.load(std::memory_order_relaxed);
      const double io = slot.io_bytes.load(std::memory_order_relaxed);
      const double cost = slot.cost.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.tag.load(std::memory_order_relaxed) != key) return false;
      out->analytical_latency = latency;
      out->io_bytes = io;
      out->cost = cost;
      slot.ref.store(1, std::memory_order_relaxed);
      return true;
    }
    if (tag == kEmpty) {
      if (probes != nullptr) *probes = d + 1;
      return false;
    }
    // kBusy or a different key: keep probing.
  }
  if (probes != nullptr) *probes = kMaxProbe;
  return false;
}

void EvalCache::Insert(uint64_t key, const SubQObjectives& value) {
  if (key <= kBusy) key ^= 0x9E3779B97F4A7C15ULL;
  auto publish = [&](Slot& slot) {
    slot.latency.store(value.analytical_latency, std::memory_order_relaxed);
    slot.io_bytes.store(value.io_bytes, std::memory_order_relaxed);
    slot.cost.store(value.cost, std::memory_order_relaxed);
    slot.ref.store(1, std::memory_order_relaxed);
    slot.tag.store(key, std::memory_order_release);
  };
  // Pass 1: take an empty slot (or find the key already present).
  for (int d = 0; d < kMaxProbe; ++d) {
    Slot& slot = slots_[(key + d) & mask_];
    uint64_t tag = slot.tag.load(std::memory_order_acquire);
    if (tag == key) return;  // already inserted by a concurrent thread
    if (tag != kEmpty) continue;
    uint64_t expected = kEmpty;
    if (slot.tag.compare_exchange_strong(expected, kBusy,
                                         std::memory_order_acq_rel)) {
      publish(slot);
      size_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (expected == key) return;
    // Lost the race to someone inserting a different key; keep probing.
  }
  // Probe window full: CLOCK second-chance replacement. The first sweep
  // clears reference bits of recently-touched entries; the second sweep
  // claims the first entry whose bit is still clear. Occupancy is
  // unchanged (a published entry is replaced in place).
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (int d = 0; d < kMaxProbe; ++d) {
      Slot& slot = slots_[(key + d) & mask_];
      uint64_t tag = slot.tag.load(std::memory_order_acquire);
      if (tag == key) return;
      if (tag == kEmpty || tag == kBusy) continue;  // mid-write elsewhere
      if (slot.ref.load(std::memory_order_relaxed) != 0) {
        slot.ref.store(0, std::memory_order_relaxed);
        continue;
      }
      if (slot.tag.compare_exchange_strong(tag, kBusy,
                                           std::memory_order_acq_rel)) {
        publish(slot);
        evictions_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      // Raced with another evictor on this slot; move on.
    }
  }
  // Every slot in the window was mid-write or repeatedly raced: give up
  // (the value is recomputable) but count it.
  drops_.fetch_add(1, std::memory_order_relaxed);
}

void EvalCache::Clear() {
  for (size_t i = 0; i <= mask_; ++i) {
    slots_[i].tag.store(kEmpty, std::memory_order_relaxed);
    slots_[i].ref.store(0, std::memory_order_relaxed);
  }
  size_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  drops_.store(0, std::memory_order_relaxed);
}

SubQEvaluator::SubQEvaluator(const Query* query, const ClusterSpec& cluster,
                             const CostModelParams& cost_params,
                             const PriceBook& prices,
                             size_t eval_cache_capacity)
    : query_(query),
      subqs_(query->plan.DecomposeSubQueries()),
      cost_model_(cluster, NoiseFree(cost_params)),
      prices_(prices),
      cache_(eval_cache_capacity) {
  subq_of_op_.assign(query_->plan.num_ops(), -1);
  for (const auto& sq : subqs_) {
    for (int op : sq.op_ids) subq_of_op_[op] = sq.id;
  }
}

void SubQEvaluator::PublishCacheGauges() const {
  const double hits =
      static_cast<double>(cache_hits_.load(std::memory_order_relaxed));
  const double misses =
      static_cast<double>(cache_misses_.load(std::memory_order_relaxed));
  const double lookups = hits + misses;
  obs::GaugeSet("model.eval_cache_occupancy_frac",
                static_cast<double>(cache_.occupancy()) /
                    static_cast<double>(cache_.capacity()));
  obs::GaugeSet("model.eval_cache_hit_rate",
                lookups > 0.0 ? hits / lookups : 0.0);
  // Inserts are attempted once per miss, so misses bound the denominator.
  obs::GaugeSet("model.eval_cache_drop_rate",
                misses > 0.0 ? static_cast<double>(cache_.drops()) / misses
                             : 0.0);
  obs::GaugeSet("model.eval_cache_evictions",
                static_cast<double>(cache_.evictions()));
}

QueryStage SubQEvaluator::BuildStage(
    int subq_id, const ContextParams& theta_c, const PlanParams& tp,
    const StageParams& ts, CardinalitySource source,
    const std::vector<bool>* completed_subqs) const {
  return BuildStageCore(subq_id, theta_c, tp, ts, source, completed_subqs,
                        /*coarse=*/false);
}

QueryStage SubQEvaluator::BuildStageCore(
    int subq_id, const ContextParams& theta_c, const PlanParams& tp,
    const StageParams& ts, CardinalitySource source,
    const std::vector<bool>* completed_subqs, bool coarse) const {
  const auto& plan = query_->plan;
  const auto& sq = subqs_[subq_id];
  auto known = [&](int id) {
    if (source == CardinalitySource::kTrue) return true;
    if (completed_subqs == nullptr) return false;
    const int sqi = subq_of_op_[id];
    return sqi >= 0 && sqi < static_cast<int>(completed_subqs->size()) &&
           (*completed_subqs)[sqi];
  };
  auto rows = [&](int id) {
    return known(id) ? plan.op(id).true_rows : plan.op(id).est_rows;
  };
  auto bytes = [&](int id) {
    return known(id) ? plan.op(id).true_bytes : plan.op(id).est_bytes;
  };

  QueryStage st;
  st.id = subq_id;
  st.subq_id = subq_id;
  st.op_ids = sq.op_ids;
  double skew = 0.0;

  for (int id : sq.op_ids) {
    const auto& op = plan.op(id);
    if (op.type == OpType::kScan) {
      st.is_scan_stage = true;
      st.input_rows += rows(id) / std::max(op.selectivity, 1e-9);
      st.input_bytes += bytes(id) / std::max(op.selectivity, 1e-9);
    }
    skew = std::max(skew, op.shuffle_skew);

    // Inputs from other subQs. For joins, decide the algorithm first.
    if (op.type == OpType::kJoin && op.children.size() >= 2) {
      int build = op.children[0];
      int probe = op.children[1];
      if (bytes(build) > bytes(probe)) std::swap(build, probe);
      const double build_mb = bytes(build) / kMb;
      const double non_empty_ratio = std::min(
          1.0, rows(build) / std::max(1.0, double(tp.shuffle_partitions)));
      JoinAlgo algo = JoinAlgo::kSortMergeJoin;
      if (build_mb <= tp.broadcast_join_threshold_mb &&
          non_empty_ratio >= tp.non_empty_partition_ratio) {
        algo = JoinAlgo::kBroadcastHashJoin;
      } else if (build_mb <= tp.shuffled_hash_join_threshold_mb) {
        algo = JoinAlgo::kShuffledHashJoin;
      }
      st.has_join = true;
      st.join_algo = algo;

      double build_rows = 0.0, probe_rows = 0.0;
      for (int c : op.children) {
        (c == build ? build_rows : probe_rows) += rows(c);
        if (subq_of_op_[c] == subq_id) continue;
        if (algo == JoinAlgo::kBroadcastHashJoin && c == build) {
          st.broadcast_bytes += bytes(c);
        } else {
          st.shuffle_read_bytes += bytes(c);
          st.input_rows += rows(c);
          st.input_bytes += bytes(c);
        }
      }
      switch (algo) {
        case JoinAlgo::kSortMergeJoin: {
          const double sw = 0.35 *
                            (NLogN(build_rows) + NLogN(probe_rows)) /
                            std::log2(1e6);
          st.sort_work += sw;
          st.cpu_work += 0.6 * (build_rows + probe_rows) + sw;
          break;
        }
        case JoinAlgo::kShuffledHashJoin:
          st.cpu_work += 1.0 * build_rows + 0.35 * probe_rows;
          break;
        case JoinAlgo::kBroadcastHashJoin:
          st.cpu_work += 0.4 * probe_rows;
          break;
      }
      st.cpu_work += 0.15 * rows(id);
      continue;
    }

    // Non-join operators: shuffle-read any out-of-subQ children.
    for (int c : op.children) {
      if (subq_of_op_[c] == subq_id) continue;
      st.shuffle_read_bytes += bytes(c);
      st.input_rows += rows(c);
      st.input_bytes += bytes(c);
    }
    const double out_rows = rows(id);
    switch (op.type) {
      case OpType::kSort: {
        const double sw = 0.5 * NLogN(out_rows) / std::log2(1e6);
        st.sort_work += sw;
        st.cpu_work += sw;
        break;
      }
      case OpType::kScan:
        st.cpu_work += 1.0 * rows(id) / std::max(op.selectivity, 1e-9);
        break;
      case OpType::kFilter:
        st.cpu_work += 0.25 * out_rows / std::max(op.selectivity, 1e-9);
        break;
      case OpType::kAggregate:
        st.cpu_work += 0.9 * (st.input_rows > 0 ? st.input_rows : out_rows);
        break;
      default: {
        double in_rows = 0.0;
        for (int c : op.children) in_rows += rows(c);
        st.cpu_work += 0.15 * std::max(in_rows, out_rows);
        break;
      }
    }
  }

  const int root_op = sq.root_op;
  st.output_rows = rows(root_op);
  st.output_bytes = bytes(root_op);
  st.exchanges_output = root_op != plan.root();

  // Partitioning (mirrors the physical planner).
  if (st.is_scan_stage) {
    const double total = std::max(st.input_bytes, 1.0);
    const double split =
        std::min(tp.max_partition_bytes_mb * kMb,
                 std::max(tp.file_open_cost_mb * kMb,
                          total / std::max(theta_c.default_parallelism, 1)));
    st.num_partitions = std::max(
        1, static_cast<int>(std::ceil(total / std::max(split, 1.0))));
  } else {
    st.num_partitions = std::max(1, tp.shuffle_partitions);
  }
  st.num_partitions = std::min(st.num_partitions, 4096);
  if (coarse) {
    // Tier-0 screen: stop before the per-partition vector work. The cost
    // model falls back to a uniform input_bytes / num_partitions split
    // when partition_bytes is empty, so one representative task prices
    // the whole stage. AQE coalescing is the dominant theta_p/theta_s
    // effect the vectors would capture, and under the uniform assumption
    // it has a closed form (every group merges ceil(target / size)
    // partitions; skew splitting never fires on equal sizes), so fold it
    // in to keep the screen discriminative on shuffle stages.
    if (!st.is_scan_stage && st.num_partitions > 1) {
      const double size = st.input_bytes / st.num_partitions;
      const double small =
          std::max(ts.coalesce_min_partition_size_mb * kMb,
                   ts.rebalance_small_factor *
                       tp.advisory_partition_size_mb * kMb);
      const double target = tp.advisory_partition_size_mb * kMb;
      if (size > 0.0 && size < small) {
        const int group = std::max(
            1, static_cast<int>(std::ceil(target / size)));
        st.num_partitions = std::max(
            1, st.num_partitions / group +
                   (st.num_partitions % group != 0 ? 1 : 0));
      }
    }
    return st;
  }
  st.partition_bytes =
      SkewedPartitionSizes(st.input_bytes, st.num_partitions, skew);
  if (!st.is_scan_stage) {
    if (st.has_join) {
      st.partition_bytes = ApplySkewSplit(
          std::move(st.partition_bytes), tp.skewed_partition_threshold_mb,
          tp.skewed_partition_factor, tp.advisory_partition_size_mb);
    }
    st.partition_bytes = ApplyCoalesce(
        std::move(st.partition_bytes), tp.advisory_partition_size_mb,
        ts.rebalance_small_factor, ts.coalesce_min_partition_size_mb);
    st.num_partitions = static_cast<int>(st.partition_bytes.size());
  }
  return st;
}

SubQObjectives SubQEvaluator::FinishObjectives(const QueryStage& st,
                                               const ContextParams& theta_c,
                                               double task_sum) const {
  const int cores = std::min(theta_c.TotalCores(),
                             cost_model_.cluster().TotalCores());
  SubQObjectives obj;
  obj.analytical_latency =
      task_sum / std::max(cores, 1) +
      cost_model_.StageSetupLatency(st, theta_c);
  obj.io_bytes = cost_model_.StageIoBytes(st, theta_c);
  const double mem_gb =
      theta_c.executor_memory_gb * theta_c.executor_instances;
  obj.cost = CloudCost(prices_, cores, mem_gb, obj.analytical_latency,
                       obj.io_bytes / (1024.0 * kMb));
  return obj;
}

SubQObjectives SubQEvaluator::Evaluate(
    int subq_id, const ContextParams& theta_c, const PlanParams& theta_p,
    const StageParams& theta_s, CardinalitySource source,
    const std::vector<bool>* completed_subqs) const {
  obs::Count("model.inferences");
  obs::ScopedHistogramTimer timer(obs::HistogramFor("model.inference_us"));
  const bool probe_cache =
      cache_enabled_ && !cache_bypassed_.load(std::memory_order_relaxed);
  uint64_t key = 0;
  if (probe_cache) {
    key = EvalKey(subq_id, theta_c, theta_p, theta_s, source,
                  completed_subqs);
    SubQObjectives cached;
    int probes = 0;
    const bool hit = cache_.Lookup(key, &cached, &probes);
    cache_probes_.fetch_add(static_cast<uint64_t>(probes),
                            std::memory_order_relaxed);
    obs::Observe("model.eval_cache_probe_len", probes);
    if (hit) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      obs::Count("model.eval_cache_hits");
      return cached;
    }
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    obs::Count("model.eval_cache_misses");
    // Adaptive bypass (DESIGN.md section 12): the rate only drops on a
    // miss, so this is the only place the latch can trip. Reading two
    // relaxed atomics is racy around the window edge — at worst the
    // decision lands a few lookups late, which is harmless: the cache is
    // transparent, so only probe overhead is at stake.
    const uint64_t hits = cache_hits_.load(std::memory_order_relaxed);
    const uint64_t misses = cache_misses_.load(std::memory_order_relaxed);
    if (hits + misses >= kBypassWindow &&
        static_cast<double>(hits) <
            kBypassMinHitRate * static_cast<double>(hits + misses)) {
      cache_bypassed_.store(true, std::memory_order_relaxed);
      obs::Count("model.eval_cache_bypassed");
    }
  }
  const QueryStage st = BuildStage(subq_id, theta_c, theta_p, theta_s,
                                   source, completed_subqs);
  double task_sum = 0.0;
  // Fast path: with uniform partitions every task costs the same.
  bool uniform = true;
  for (size_t t = 1; t < st.partition_bytes.size(); ++t) {
    if (st.partition_bytes[t] != st.partition_bytes[0]) {
      uniform = false;
      break;
    }
  }
  if (uniform && st.num_partitions > 1) {
    task_sum = st.num_partitions *
               cost_model_.TaskLatency(st, 0, theta_c, /*seed=*/0);
  } else {
    for (int t = 0; t < st.num_partitions; ++t) {
      task_sum += cost_model_.TaskLatency(st, t, theta_c, /*seed=*/0);
    }
  }
  const SubQObjectives obj = FinishObjectives(st, theta_c, task_sum);
  if (probe_cache) cache_.Insert(key, obj);
  return obj;
}

SubQObjectives SubQEvaluator::EvaluateScreen(
    int subq_id, const ContextParams& theta_c, const PlanParams& theta_p,
    const StageParams& theta_s, CardinalitySource source,
    const std::vector<bool>* completed_subqs) const {
  obs::Count("model.screen_inferences");
  const QueryStage st =
      BuildStageCore(subq_id, theta_c, theta_p, theta_s, source,
                     completed_subqs, /*coarse=*/true);
  // One representative uniform task prices the stage (partition_bytes is
  // empty, so TaskLatency uses input_bytes / num_partitions).
  const double task_sum =
      st.num_partitions * cost_model_.TaskLatency(st, 0, theta_c,
                                                  /*seed=*/0);
  return FinishObjectives(st, theta_c, task_sum);
}

SubQObjectives SubQEvaluator::EvaluateQuery(
    const ContextParams& theta_c, const std::vector<PlanParams>& theta_p,
    const std::vector<StageParams>& theta_s,
    CardinalitySource source) const {
  SubQObjectives total;
  for (int i = 0; i < num_subqs(); ++i) {
    const auto& tp = theta_p[theta_p.size() == 1 ? 0 : i];
    const auto& ts = theta_s[theta_s.size() == 1 ? 0 : i];
    const auto o = Evaluate(i, theta_c, tp, ts, source);
    total.analytical_latency += o.analytical_latency;
    total.io_bytes += o.io_bytes;
    total.cost += o.cost;
  }
  return total;
}

}  // namespace sparkopt
