#include "model/mlp.h"

#include <algorithm>
#include <cmath>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#endif

#include "common/rng.h"
#include "obs/trace.h"

namespace sparkopt {

void Standardizer::Fit(const Matrix& x) {
  if (x.empty()) return;
  const size_t d = x[0].size();
  mean.assign(d, 0.0);
  stddev.assign(d, 0.0);
  for (const auto& row : x) {
    for (size_t j = 0; j < d; ++j) mean[j] += row[j];
  }
  for (size_t j = 0; j < d; ++j) mean[j] /= static_cast<double>(x.size());
  for (const auto& row : x) {
    for (size_t j = 0; j < d; ++j) {
      const double dv = row[j] - mean[j];
      stddev[j] += dv * dv;
    }
  }
  for (size_t j = 0; j < d; ++j) {
    stddev[j] = std::sqrt(stddev[j] / static_cast<double>(x.size()));
    if (stddev[j] < 1e-9) stddev[j] = 1.0;
  }
}

std::vector<double> Standardizer::Transform(
    const std::vector<double>& x) const {
  std::vector<double> out = x;
  TransformInPlace(&out);
  return out;
}

void Standardizer::TransformInPlace(std::vector<double>* x) const {
  const size_t d = std::min(x->size(), mean.size());
  for (size_t j = 0; j < d; ++j) {
    // Clamp extreme z-scores: rare outlier features (heavy skew ratios,
    // contention spikes) otherwise push the ReLU net far outside its
    // training envelope and destabilize log-space predictions.
    (*x)[j] = std::clamp(((*x)[j] - mean[j]) / stddev[j], -10.0, 10.0);
  }
}

Mlp::Mlp(std::vector<int> layers, uint64_t seed) : layers_(std::move(layers)) {
  Rng rng(seed);
  net_.resize(layers_.size() - 1);
  for (size_t l = 0; l + 1 < layers_.size(); ++l) {
    auto& layer = net_[l];
    layer.in = layers_[l];
    layer.out = layers_[l + 1];
    layer.w.resize(static_cast<size_t>(layer.in) * layer.out);
    layer.b.assign(layer.out, 0.0);
    // He initialization for ReLU nets.
    const double scale = std::sqrt(2.0 / layer.in);
    for (auto& w : layer.w) w = rng.Normal(0.0, scale);
  }
}

namespace {

/// Dense-layer kernel contract:
///   out[r * n_out + o] = act(b[o] + sum_i w[o * n_in + i] * in[r * n_in + i])
/// with the sum accumulated in ascending i. One kernel is selected at
/// startup (AVX2+FMA when the CPU has it, the portable scalar kernel
/// otherwise) and used by BOTH the single-row path (Mlp::Forward, and
/// therefore Predict) and the batched path (PredictBatchInto). That
/// shared selection is what makes batched results bitwise identical to
/// per-row results: within one kernel every accumulator performs the
/// exact same rounding sequence regardless of how many rows are in
/// flight.
using DenseKernel = void (*)(const double* in, size_t rows, const double* w,
                             const double* b, int n_in, int n_out, bool relu,
                             double* out);

/// Portable kernel. Rows are tiled so the active weight row stays hot
/// across the tile, and processed four at a time: four independent
/// accumulator chains hide the FP-add latency that bounds a
/// one-chain-per-dot-product GEMV. Each chain sums `s += w * x` in the
/// same i order as the scalar remainder loop, so results are bitwise
/// identical at any batch size.
void DenseLayerGeneric(const double* in, size_t rows, const double* w,
                       const double* b, int n_in, int n_out, bool relu,
                       double* out) {
  constexpr size_t kRowTile = 32;
  for (size_t r0 = 0; r0 < rows; r0 += kRowTile) {
    const size_t r1 = std::min(r0 + kRowTile, rows);
    for (int o = 0; o < n_out; ++o) {
      const double* wrow = w + static_cast<size_t>(o) * n_in;
      const double bias = b[o];
      size_t r = r0;
      for (; r + 4 <= r1; r += 4) {
        const double* x0 = in + r * n_in;
        const double* x1 = x0 + n_in;
        const double* x2 = x1 + n_in;
        const double* x3 = x2 + n_in;
        double s0 = bias, s1 = bias, s2 = bias, s3 = bias;
        for (int i = 0; i < n_in; ++i) {
          const double wi = wrow[i];
          s0 += wi * x0[i];
          s1 += wi * x1[i];
          s2 += wi * x2[i];
          s3 += wi * x3[i];
        }
        double* or_ = out + r * n_out + o;
        or_[0] = relu ? std::max(s0, 0.0) : s0;
        or_[n_out] = relu ? std::max(s1, 0.0) : s1;
        or_[2 * static_cast<size_t>(n_out)] = relu ? std::max(s2, 0.0) : s2;
        or_[3 * static_cast<size_t>(n_out)] = relu ? std::max(s3, 0.0) : s3;
      }
      for (; r < r1; ++r) {
        const double* xr = in + r * n_in;
        double s = bias;
        for (int i = 0; i < n_in; ++i) s += wrow[i] * xr[i];
        out[r * n_out + o] = relu ? std::max(s, 0.0) : s;
      }
    }
  }
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))

/// Widest layer the transposed-tile path handles on the stack
/// (8 lanes * 512 doubles = 32 KiB); wider layers take the scalar-fma
/// loop below, which uses the identical rounding sequence.
constexpr int kMaxTransposeIn = 512;

/// ReLU that mirrors `(s < 0.0) ? 0.0 : s` per lane (NaN passes through,
/// exactly like the scalar remainder path's std::max(s, 0.0)).
__attribute__((target("avx2,fma"))) inline __m256d ReluPd(__m256d s) {
  const __m256d zero = _mm256_setzero_pd();
  return _mm256_blendv_pd(s, zero, _mm256_cmp_pd(s, zero, _CMP_LT_OQ));
}

/// AVX2+FMA kernel, compiled for that target and only dispatched to when
/// the CPU supports it. Eight rows are transposed into a column-major
/// tile so each inner step is a broadcast of w[i] against contiguous
/// loads of eight rows' x[i]; four outputs are computed per pass, giving
/// 4 x 2 = 8 independent packed vfmadd chains — enough to hide the FMA
/// latency that bounds a single dot-product chain. Every chain (vector
/// lane or scalar remainder) computes fma(w[i], x[i], s) in ascending i
/// with the same fused rounding, so rows==1 and rows==N agree bitwise.
__attribute__((target("avx2,fma"))) void DenseLayerAvx2(
    const double* in, size_t rows, const double* w, const double* b,
    int n_in, int n_out, bool relu, double* out) {
  constexpr size_t kLanes = 8;
  size_t r = 0;
  if (n_in <= kMaxTransposeIn) {
    alignas(32) double xt[kLanes * kMaxTransposeIn];
    alignas(32) double sv[kLanes];
    for (; r + kLanes <= rows; r += kLanes) {
      const double* base = in + r * n_in;
      for (int i = 0; i < n_in; ++i) {
        for (size_t k = 0; k < kLanes; ++k) {
          xt[static_cast<size_t>(i) * kLanes + k] = base[k * n_in + i];
        }
      }
      int o = 0;
      for (; o + 4 <= n_out; o += 4) {
        const double* w0 = w + static_cast<size_t>(o) * n_in;
        const double* w1 = w0 + n_in;
        const double* w2 = w1 + n_in;
        const double* w3 = w2 + n_in;
        __m256d a0 = _mm256_set1_pd(b[o]), b0 = a0;
        __m256d a1 = _mm256_set1_pd(b[o + 1]), b1 = a1;
        __m256d a2 = _mm256_set1_pd(b[o + 2]), b2 = a2;
        __m256d a3 = _mm256_set1_pd(b[o + 3]), b3 = a3;
        const double* col = xt;
        for (int i = 0; i < n_in; ++i, col += kLanes) {
          const __m256d xlo = _mm256_load_pd(col);
          const __m256d xhi = _mm256_load_pd(col + 4);
          const __m256d wi0 = _mm256_set1_pd(w0[i]);
          a0 = _mm256_fmadd_pd(wi0, xlo, a0);
          b0 = _mm256_fmadd_pd(wi0, xhi, b0);
          const __m256d wi1 = _mm256_set1_pd(w1[i]);
          a1 = _mm256_fmadd_pd(wi1, xlo, a1);
          b1 = _mm256_fmadd_pd(wi1, xhi, b1);
          const __m256d wi2 = _mm256_set1_pd(w2[i]);
          a2 = _mm256_fmadd_pd(wi2, xlo, a2);
          b2 = _mm256_fmadd_pd(wi2, xhi, b2);
          const __m256d wi3 = _mm256_set1_pd(w3[i]);
          a3 = _mm256_fmadd_pd(wi3, xlo, a3);
          b3 = _mm256_fmadd_pd(wi3, xhi, b3);
        }
        const __m256d accs[4][2] = {{a0, b0}, {a1, b1}, {a2, b2}, {a3, b3}};
        for (int j = 0; j < 4; ++j) {
          _mm256_store_pd(sv, relu ? ReluPd(accs[j][0]) : accs[j][0]);
          _mm256_store_pd(sv + 4, relu ? ReluPd(accs[j][1]) : accs[j][1]);
          double* orow = out + r * n_out + o + j;
          for (size_t k = 0; k < kLanes; ++k) orow[k * n_out] = sv[k];
        }
      }
      for (; o < n_out; ++o) {
        const double* wrow = w + static_cast<size_t>(o) * n_in;
        __m256d alo = _mm256_set1_pd(b[o]), ahi = alo;
        const double* col = xt;
        for (int i = 0; i < n_in; ++i, col += kLanes) {
          const __m256d wi = _mm256_set1_pd(wrow[i]);
          alo = _mm256_fmadd_pd(wi, _mm256_load_pd(col), alo);
          ahi = _mm256_fmadd_pd(wi, _mm256_load_pd(col + 4), ahi);
        }
        _mm256_store_pd(sv, relu ? ReluPd(alo) : alo);
        _mm256_store_pd(sv + 4, relu ? ReluPd(ahi) : ahi);
        double* orow = out + r * n_out + o;
        for (size_t k = 0; k < kLanes; ++k) orow[k * n_out] = sv[k];
      }
    }
  }
  for (; r < rows; ++r) {
    const double* xr = in + r * n_in;
    for (int o = 0; o < n_out; ++o) {
      const double* wrow = w + static_cast<size_t>(o) * n_in;
      double s = b[o];
      for (int i = 0; i < n_in; ++i) s = std::fma(wrow[i], xr[i], s);
      out[r * n_out + o] = relu ? std::max(s, 0.0) : s;
    }
  }
}

#endif  // x86-64 && (GCC || Clang)

DenseKernel ActiveDenseKernel() {
  static const DenseKernel kernel = [] {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
      return &DenseLayerAvx2;
    }
#endif
    return &DenseLayerGeneric;
  }();
  return kernel;
}

}  // namespace

void Mlp::Forward(const std::vector<double>& x,
                  std::vector<std::vector<double>>* activations) const {
  const DenseKernel kernel = ActiveDenseKernel();
  activations->clear();
  activations->push_back(x);
  for (size_t l = 0; l < net_.size(); ++l) {
    const auto& layer = net_[l];
    const auto& in = activations->back();
    std::vector<double> out(layer.out);
    // ReLU on hidden layers only.
    kernel(in.data(), 1, layer.w.data(), layer.b.data(), layer.in, layer.out,
           /*relu=*/l + 1 < net_.size(), out.data());
    activations->push_back(std::move(out));
  }
}

std::vector<double> Mlp::Predict(const std::vector<double>& x) const {
  std::vector<std::vector<double>> acts;
  Forward(x, &acts);
  return acts.back();
}

void Mlp::PredictBatchInto(const double* x, size_t rows, double* out,
                           BatchScratch* scratch) const {
  if (rows == 0) return;
  size_t max_width = 0;
  for (const auto& layer : net_) {
    max_width = std::max(max_width, static_cast<size_t>(layer.out));
  }
  scratch->a.resize(rows * max_width);
  scratch->b.resize(rows * max_width);

  const DenseKernel kernel = ActiveDenseKernel();
  const double* in = x;
  double* ping = scratch->a.data();
  double* pong = scratch->b.data();
  for (size_t l = 0; l < net_.size(); ++l) {
    const auto& layer = net_[l];
    const bool last = l + 1 == net_.size();
    double* dst = last ? out : ping;
    kernel(in, rows, layer.w.data(), layer.b.data(), layer.in,
           layer.out, /*relu=*/!last, dst);
    in = dst;
    std::swap(ping, pong);
  }
}

Matrix Mlp::PredictBatch(const Matrix& x) const {
  Matrix out(x.size(), std::vector<double>(layers_.back()));
  if (x.empty()) return out;
  BatchScratch scratch;
  std::vector<double> flat(x.size() * layers_.front());
  for (size_t r = 0; r < x.size(); ++r) {
    std::copy(x[r].begin(), x[r].end(),
              flat.begin() + r * layers_.front());
  }
  std::vector<double> pred(x.size() * layers_.back());
  PredictBatchInto(flat.data(), x.size(), pred.data(), &scratch);
  for (size_t r = 0; r < x.size(); ++r) {
    std::copy(pred.begin() + r * layers_.back(),
              pred.begin() + (r + 1) * layers_.back(), out[r].begin());
  }
  return out;
}

double Mlp::MseFlat(const double* x, const double* y, size_t rows,
                    BatchScratch* scratch) const {
  if (rows == 0) return 0.0;
  const int k = layers_.back();
  scratch->xs.resize(rows * k);
  PredictBatchInto(x, rows, scratch->xs.data(), scratch);
  double total = 0.0;
  for (size_t i = 0; i < rows * static_cast<size_t>(k); ++i) {
    const double d = scratch->xs[i] - y[i];
    total += d * d;
  }
  return total / (static_cast<double>(rows) * k);
}

double Mlp::Mse(const Matrix& x, const Matrix& y) const {
  if (x.empty()) return 0.0;
  const int d_in = layers_.front();
  const int k = layers_.back();
  std::vector<double> xf(x.size() * d_in);
  std::vector<double> yf(x.size() * k);
  for (size_t i = 0; i < x.size(); ++i) {
    std::copy(x[i].begin(), x[i].end(), xf.begin() + i * d_in);
    std::copy(y[i].begin(), y[i].end(), yf.begin() + i * k);
  }
  BatchScratch scratch;
  return MseFlat(xf.data(), yf.data(), x.size(), &scratch);
}

Status Mlp::Fit(const Matrix& x, const Matrix& y, const TrainOptions& opts) {
  if (x.size() != y.size() || x.empty()) {
    return Status::InvalidArgument("Fit: x/y size mismatch or empty");
  }
  if (static_cast<int>(x[0].size()) != layers_.front() ||
      static_cast<int>(y[0].size()) != layers_.back()) {
    return Status::InvalidArgument("Fit: dimension mismatch with network");
  }
  Rng rng(opts.seed);

  // Train/validation split.
  std::vector<int> order = rng.Permutation(static_cast<int>(x.size()));
  const size_t n_val = std::min(
      x.size() - 1,
      static_cast<size_t>(opts.validation_fraction * x.size()));
  std::vector<int> val_idx(order.begin(), order.begin() + n_val);
  std::vector<int> train_idx(order.begin() + n_val, order.end());

  // Adam state.
  struct AdamState {
    std::vector<double> mw, vw, mb, vb;
  };
  std::vector<AdamState> adam(net_.size());
  for (size_t l = 0; l < net_.size(); ++l) {
    adam[l].mw.assign(net_[l].w.size(), 0.0);
    adam[l].vw.assign(net_[l].w.size(), 0.0);
    adam[l].mb.assign(net_[l].b.size(), 0.0);
    adam[l].vb.assign(net_[l].b.size(), 0.0);
  }
  const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  int64_t step = 0;

  std::vector<Layer> best = net_;
  double best_val = 1e300;
  int bad_epochs = 0;

  // Validation split, flattened once up front; the epoch loop only runs
  // the batched forward pass over it (previously the xv/yv matrices were
  // rebuilt from scratch every epoch).
  std::vector<double> xv_flat(n_val * layers_.front());
  std::vector<double> yv_flat(n_val * layers_.back());
  for (size_t v = 0; v < n_val; ++v) {
    const int i = val_idx[v];
    std::copy(x[i].begin(), x[i].end(),
              xv_flat.begin() + v * layers_.front());
    std::copy(y[i].begin(), y[i].end(),
              yv_flat.begin() + v * layers_.back());
  }
  BatchScratch val_scratch;

  std::vector<std::vector<double>> acts;
  // Per-layer gradient buffers.
  std::vector<std::vector<double>> gw(net_.size()), gb(net_.size());
  for (size_t l = 0; l < net_.size(); ++l) {
    gw[l].assign(net_[l].w.size(), 0.0);
    gb[l].assign(net_[l].b.size(), 0.0);
  }

  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    rng.Shuffle(&train_idx);
    for (size_t start = 0; start < train_idx.size();
         start += opts.batch_size) {
      const size_t end =
          std::min(start + opts.batch_size, train_idx.size());
      for (auto& g : gw) std::fill(g.begin(), g.end(), 0.0);
      for (auto& g : gb) std::fill(g.begin(), g.end(), 0.0);
      for (size_t s = start; s < end; ++s) {
        const int i = train_idx[s];
        Forward(x[i], &acts);
        // Backprop: delta at output = 2 (pred - y) / k.
        std::vector<double> delta(net_.back().out);
        for (int o = 0; o < net_.back().out; ++o) {
          delta[o] = 2.0 * (acts.back()[o] - y[i][o]) / net_.back().out;
        }
        for (int l = static_cast<int>(net_.size()) - 1; l >= 0; --l) {
          const auto& layer = net_[l];
          const auto& input = acts[l];
          for (int o = 0; o < layer.out; ++o) {
            gb[l][o] += delta[o];
            double* gwrow = &gw[l][static_cast<size_t>(o) * layer.in];
            for (int ii = 0; ii < layer.in; ++ii) {
              gwrow[ii] += delta[o] * input[ii];
            }
          }
          if (l > 0) {
            std::vector<double> prev(layer.in, 0.0);
            for (int o = 0; o < layer.out; ++o) {
              const double* wrow =
                  &layer.w[static_cast<size_t>(o) * layer.in];
              for (int ii = 0; ii < layer.in; ++ii) {
                prev[ii] += wrow[ii] * delta[o];
              }
            }
            // ReLU derivative of the hidden activation.
            for (int ii = 0; ii < layer.in; ++ii) {
              if (acts[l][ii] <= 0.0) prev[ii] = 0.0;
            }
            delta = std::move(prev);
          }
        }
      }
      // Adam update with the batch-mean gradient.
      ++step;
      const double inv_batch = 1.0 / static_cast<double>(end - start);
      const double bc1 = 1.0 - std::pow(beta1, static_cast<double>(step));
      const double bc2 = 1.0 - std::pow(beta2, static_cast<double>(step));
      for (size_t l = 0; l < net_.size(); ++l) {
        auto& layer = net_[l];
        for (size_t j = 0; j < layer.w.size(); ++j) {
          const double g =
              gw[l][j] * inv_batch + opts.weight_decay * layer.w[j];
          adam[l].mw[j] = beta1 * adam[l].mw[j] + (1 - beta1) * g;
          adam[l].vw[j] = beta2 * adam[l].vw[j] + (1 - beta2) * g * g;
          layer.w[j] -= opts.learning_rate * (adam[l].mw[j] / bc1) /
                        (std::sqrt(adam[l].vw[j] / bc2) + eps);
        }
        for (size_t j = 0; j < layer.b.size(); ++j) {
          const double g = gb[l][j] * inv_batch;
          adam[l].mb[j] = beta1 * adam[l].mb[j] + (1 - beta1) * g;
          adam[l].vb[j] = beta2 * adam[l].vb[j] + (1 - beta2) * g * g;
          layer.b[j] -= opts.learning_rate * (adam[l].mb[j] / bc1) /
                        (std::sqrt(adam[l].vb[j] / bc2) + eps);
        }
      }
    }
    // Early stopping on the validation split.
    if (!val_idx.empty()) {
      const double val =
          MseFlat(xv_flat.data(), yv_flat.data(), n_val, &val_scratch);
      if (val < best_val - 1e-12) {
        best_val = val;
        best = net_;
        bad_epochs = 0;
      } else if (++bad_epochs > opts.patience) {
        break;
      }
    }
  }
  if (best_val < 1e300) net_ = best;
  return Status::OK();
}

Regressor::Regressor(int input_dim, int output_dim, std::vector<int> hidden,
                     uint64_t seed)
    : mlp_([&] {
        std::vector<int> layers;
        layers.push_back(input_dim);
        for (int h : hidden) layers.push_back(h);
        layers.push_back(output_dim);
        return layers;
      }(), seed) {}

namespace {
// Floored-log target transform: log(y + eps) makes the MSE a relative
// error across the full dynamic range (log1p under-resolves sub-second
// targets). eps = 1 ms in the latency unit.
constexpr double kTargetEps = 1e-3;
// Bound on log-space predictions (exp(28) ~ 1.4e12): keeps a diverging
// sample from producing astronomically wrong raw-space values.
constexpr double kMaxLogPred = 28.0;
}  // namespace

Status Regressor::Fit(const Matrix& x, const Matrix& y_raw,
                      const Mlp::TrainOptions& opts) {
  stdizer_.Fit(x);
  Matrix xs = x;
  for (auto& row : xs) stdizer_.TransformInPlace(&row);
  Matrix ys = y_raw;
  for (auto& row : ys) {
    for (auto& v : row) v = std::log(std::max(v, 0.0) + kTargetEps);
  }
  SPARKOPT_RETURN_NOT_OK(mlp_.Fit(xs, ys, opts));
  trained_ = true;
  return Status::OK();
}

std::vector<double> Regressor::Predict(const std::vector<double>& x) const {
  // In-place path: one reusable standardized copy, batched forward with
  // rows = 1. Thread-local scratch keeps concurrent solver threads from
  // sharing activation buffers.
  thread_local Mlp::BatchScratch scratch;
  thread_local std::vector<double> xs;
  xs.assign(x.begin(), x.end());
  stdizer_.TransformInPlace(&xs);
  std::vector<double> p(mlp_.output_dim());
  mlp_.PredictBatchInto(xs.data(), 1, p.data(), &scratch);
  for (auto& v : p) {
    v = std::exp(std::min(v, kMaxLogPred)) - kTargetEps;
    v = std::max(v, 0.0);
  }
  return p;
}

void Regressor::PredictBatchInto(const double* x, size_t rows, double* out,
                                 Mlp::BatchScratch* scratch) const {
  if (rows == 0) return;
  // Rows-per-batch distribution: the AVX2 kernel hits peak throughput
  // only at batch >= 64, so this histogram shows whether callers
  // amortize the batched path or degenerate to per-row calls
  // (worker-thread safe; one relaxed load when no session).
  obs::Observe("model.batch_rows", static_cast<double>(rows));
  const size_t d = mlp_.input_dim();
  // One standardize pass over the whole batch, staged in scratch so the
  // caller's inputs stay untouched.
  scratch->xs.assign(x, x + rows * d);
  const size_t dm = std::min(d, stdizer_.mean.size());
  for (size_t r = 0; r < rows; ++r) {
    double* xr = scratch->xs.data() + r * d;
    for (size_t j = 0; j < dm; ++j) {
      xr[j] = std::clamp((xr[j] - stdizer_.mean[j]) / stdizer_.stddev[j],
                         -10.0, 10.0);
    }
  }
  mlp_.PredictBatchInto(scratch->xs.data(), rows, out, scratch);
  const size_t k = mlp_.output_dim();
  for (size_t i = 0; i < rows * k; ++i) {
    out[i] = std::max(std::exp(std::min(out[i], kMaxLogPred)) - kTargetEps,
                      0.0);
  }
}

Result<Regressor> Regressor::Distill(const Matrix& x,
                                     const std::vector<int>& hidden,
                                     const Mlp::TrainOptions& opts) const {
  if (!trained_) {
    return Status::InvalidArgument("Distill: teacher regressor untrained");
  }
  if (x.empty()) {
    return Status::InvalidArgument("Distill: empty pseudo-label sample");
  }
  // Teacher pseudo-labels in raw space; the student re-applies its own
  // log-target transform during Fit, so the pair round-trips through the
  // same representation the teacher was trained in.
  const Matrix y = PredictBatch(x);
  Regressor student(input_dim(), output_dim(), hidden, opts.seed);
  SPARKOPT_RETURN_NOT_OK(student.Fit(x, y, opts));
  return student;
}

Matrix Regressor::PredictBatch(const Matrix& x) const {
  Matrix out(x.size(), std::vector<double>(mlp_.output_dim()));
  if (x.empty()) return out;
  const size_t d = mlp_.input_dim();
  const size_t k = mlp_.output_dim();
  Mlp::BatchScratch scratch;
  std::vector<double> flat(x.size() * d);
  for (size_t r = 0; r < x.size(); ++r) {
    std::copy(x[r].begin(), x[r].end(), flat.begin() + r * d);
  }
  std::vector<double> pred(x.size() * k);
  PredictBatchInto(flat.data(), x.size(), pred.data(), &scratch);
  for (size_t r = 0; r < x.size(); ++r) {
    std::copy(pred.begin() + r * k, pred.begin() + (r + 1) * k,
              out[r].begin());
  }
  return out;
}

}  // namespace sparkopt
