#include "model/mlp.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace sparkopt {

void Standardizer::Fit(const Matrix& x) {
  if (x.empty()) return;
  const size_t d = x[0].size();
  mean.assign(d, 0.0);
  stddev.assign(d, 0.0);
  for (const auto& row : x) {
    for (size_t j = 0; j < d; ++j) mean[j] += row[j];
  }
  for (size_t j = 0; j < d; ++j) mean[j] /= static_cast<double>(x.size());
  for (const auto& row : x) {
    for (size_t j = 0; j < d; ++j) {
      const double dv = row[j] - mean[j];
      stddev[j] += dv * dv;
    }
  }
  for (size_t j = 0; j < d; ++j) {
    stddev[j] = std::sqrt(stddev[j] / static_cast<double>(x.size()));
    if (stddev[j] < 1e-9) stddev[j] = 1.0;
  }
}

std::vector<double> Standardizer::Transform(
    const std::vector<double>& x) const {
  std::vector<double> out = x;
  TransformInPlace(&out);
  return out;
}

void Standardizer::TransformInPlace(std::vector<double>* x) const {
  const size_t d = std::min(x->size(), mean.size());
  for (size_t j = 0; j < d; ++j) {
    // Clamp extreme z-scores: rare outlier features (heavy skew ratios,
    // contention spikes) otherwise push the ReLU net far outside its
    // training envelope and destabilize log-space predictions.
    (*x)[j] = std::clamp(((*x)[j] - mean[j]) / stddev[j], -10.0, 10.0);
  }
}

Mlp::Mlp(std::vector<int> layers, uint64_t seed) : layers_(std::move(layers)) {
  Rng rng(seed);
  net_.resize(layers_.size() - 1);
  for (size_t l = 0; l + 1 < layers_.size(); ++l) {
    auto& layer = net_[l];
    layer.in = layers_[l];
    layer.out = layers_[l + 1];
    layer.w.resize(static_cast<size_t>(layer.in) * layer.out);
    layer.b.assign(layer.out, 0.0);
    // He initialization for ReLU nets.
    const double scale = std::sqrt(2.0 / layer.in);
    for (auto& w : layer.w) w = rng.Normal(0.0, scale);
  }
}

void Mlp::Forward(const std::vector<double>& x,
                  std::vector<std::vector<double>>* activations) const {
  activations->clear();
  activations->push_back(x);
  for (size_t l = 0; l < net_.size(); ++l) {
    const auto& layer = net_[l];
    const auto& in = activations->back();
    std::vector<double> out(layer.out);
    for (int o = 0; o < layer.out; ++o) {
      double s = layer.b[o];
      const double* wrow = &layer.w[static_cast<size_t>(o) * layer.in];
      for (int i = 0; i < layer.in; ++i) s += wrow[i] * in[i];
      // ReLU on hidden layers only.
      out[o] = (l + 1 < net_.size()) ? std::max(s, 0.0) : s;
    }
    activations->push_back(std::move(out));
  }
}

std::vector<double> Mlp::Predict(const std::vector<double>& x) const {
  std::vector<std::vector<double>> acts;
  Forward(x, &acts);
  return acts.back();
}

Matrix Mlp::PredictBatch(const Matrix& x) const {
  Matrix out;
  out.reserve(x.size());
  std::vector<std::vector<double>> acts;
  for (const auto& row : x) {
    Forward(row, &acts);
    out.push_back(acts.back());
  }
  return out;
}

double Mlp::Mse(const Matrix& x, const Matrix& y) const {
  if (x.empty()) return 0.0;
  double total = 0.0;
  std::vector<std::vector<double>> acts;
  for (size_t i = 0; i < x.size(); ++i) {
    Forward(x[i], &acts);
    const auto& pred = acts.back();
    for (size_t j = 0; j < pred.size(); ++j) {
      const double d = pred[j] - y[i][j];
      total += d * d;
    }
  }
  return total / (static_cast<double>(x.size()) * layers_.back());
}

Status Mlp::Fit(const Matrix& x, const Matrix& y, const TrainOptions& opts) {
  if (x.size() != y.size() || x.empty()) {
    return Status::InvalidArgument("Fit: x/y size mismatch or empty");
  }
  if (static_cast<int>(x[0].size()) != layers_.front() ||
      static_cast<int>(y[0].size()) != layers_.back()) {
    return Status::InvalidArgument("Fit: dimension mismatch with network");
  }
  Rng rng(opts.seed);

  // Train/validation split.
  std::vector<int> order = rng.Permutation(static_cast<int>(x.size()));
  const size_t n_val = std::min(
      x.size() - 1,
      static_cast<size_t>(opts.validation_fraction * x.size()));
  std::vector<int> val_idx(order.begin(), order.begin() + n_val);
  std::vector<int> train_idx(order.begin() + n_val, order.end());

  // Adam state.
  struct AdamState {
    std::vector<double> mw, vw, mb, vb;
  };
  std::vector<AdamState> adam(net_.size());
  for (size_t l = 0; l < net_.size(); ++l) {
    adam[l].mw.assign(net_[l].w.size(), 0.0);
    adam[l].vw.assign(net_[l].w.size(), 0.0);
    adam[l].mb.assign(net_[l].b.size(), 0.0);
    adam[l].vb.assign(net_[l].b.size(), 0.0);
  }
  const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  int64_t step = 0;

  std::vector<Layer> best = net_;
  double best_val = 1e300;
  int bad_epochs = 0;

  std::vector<std::vector<double>> acts;
  // Per-layer gradient buffers.
  std::vector<std::vector<double>> gw(net_.size()), gb(net_.size());
  for (size_t l = 0; l < net_.size(); ++l) {
    gw[l].assign(net_[l].w.size(), 0.0);
    gb[l].assign(net_[l].b.size(), 0.0);
  }

  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    rng.Shuffle(&train_idx);
    for (size_t start = 0; start < train_idx.size();
         start += opts.batch_size) {
      const size_t end =
          std::min(start + opts.batch_size, train_idx.size());
      for (auto& g : gw) std::fill(g.begin(), g.end(), 0.0);
      for (auto& g : gb) std::fill(g.begin(), g.end(), 0.0);
      for (size_t s = start; s < end; ++s) {
        const int i = train_idx[s];
        Forward(x[i], &acts);
        // Backprop: delta at output = 2 (pred - y) / k.
        std::vector<double> delta(net_.back().out);
        for (int o = 0; o < net_.back().out; ++o) {
          delta[o] = 2.0 * (acts.back()[o] - y[i][o]) / net_.back().out;
        }
        for (int l = static_cast<int>(net_.size()) - 1; l >= 0; --l) {
          const auto& layer = net_[l];
          const auto& input = acts[l];
          for (int o = 0; o < layer.out; ++o) {
            gb[l][o] += delta[o];
            double* gwrow = &gw[l][static_cast<size_t>(o) * layer.in];
            for (int ii = 0; ii < layer.in; ++ii) {
              gwrow[ii] += delta[o] * input[ii];
            }
          }
          if (l > 0) {
            std::vector<double> prev(layer.in, 0.0);
            for (int o = 0; o < layer.out; ++o) {
              const double* wrow =
                  &layer.w[static_cast<size_t>(o) * layer.in];
              for (int ii = 0; ii < layer.in; ++ii) {
                prev[ii] += wrow[ii] * delta[o];
              }
            }
            // ReLU derivative of the hidden activation.
            for (int ii = 0; ii < layer.in; ++ii) {
              if (acts[l][ii] <= 0.0) prev[ii] = 0.0;
            }
            delta = std::move(prev);
          }
        }
      }
      // Adam update with the batch-mean gradient.
      ++step;
      const double inv_batch = 1.0 / static_cast<double>(end - start);
      const double bc1 = 1.0 - std::pow(beta1, static_cast<double>(step));
      const double bc2 = 1.0 - std::pow(beta2, static_cast<double>(step));
      for (size_t l = 0; l < net_.size(); ++l) {
        auto& layer = net_[l];
        for (size_t j = 0; j < layer.w.size(); ++j) {
          const double g =
              gw[l][j] * inv_batch + opts.weight_decay * layer.w[j];
          adam[l].mw[j] = beta1 * adam[l].mw[j] + (1 - beta1) * g;
          adam[l].vw[j] = beta2 * adam[l].vw[j] + (1 - beta2) * g * g;
          layer.w[j] -= opts.learning_rate * (adam[l].mw[j] / bc1) /
                        (std::sqrt(adam[l].vw[j] / bc2) + eps);
        }
        for (size_t j = 0; j < layer.b.size(); ++j) {
          const double g = gb[l][j] * inv_batch;
          adam[l].mb[j] = beta1 * adam[l].mb[j] + (1 - beta1) * g;
          adam[l].vb[j] = beta2 * adam[l].vb[j] + (1 - beta2) * g * g;
          layer.b[j] -= opts.learning_rate * (adam[l].mb[j] / bc1) /
                        (std::sqrt(adam[l].vb[j] / bc2) + eps);
        }
      }
    }
    // Early stopping on the validation split.
    if (!val_idx.empty()) {
      Matrix xv, yv;
      xv.reserve(val_idx.size());
      yv.reserve(val_idx.size());
      for (int i : val_idx) {
        xv.push_back(x[i]);
        yv.push_back(y[i]);
      }
      const double val = Mse(xv, yv);
      if (val < best_val - 1e-12) {
        best_val = val;
        best = net_;
        bad_epochs = 0;
      } else if (++bad_epochs > opts.patience) {
        break;
      }
    }
  }
  if (best_val < 1e300) net_ = best;
  return Status::OK();
}

Regressor::Regressor(int input_dim, int output_dim, std::vector<int> hidden,
                     uint64_t seed)
    : mlp_([&] {
        std::vector<int> layers;
        layers.push_back(input_dim);
        for (int h : hidden) layers.push_back(h);
        layers.push_back(output_dim);
        return layers;
      }(), seed) {}

namespace {
// Floored-log target transform: log(y + eps) makes the MSE a relative
// error across the full dynamic range (log1p under-resolves sub-second
// targets). eps = 1 ms in the latency unit.
constexpr double kTargetEps = 1e-3;
// Bound on log-space predictions (exp(28) ~ 1.4e12): keeps a diverging
// sample from producing astronomically wrong raw-space values.
constexpr double kMaxLogPred = 28.0;
}  // namespace

Status Regressor::Fit(const Matrix& x, const Matrix& y_raw,
                      const Mlp::TrainOptions& opts) {
  stdizer_.Fit(x);
  Matrix xs = x;
  for (auto& row : xs) stdizer_.TransformInPlace(&row);
  Matrix ys = y_raw;
  for (auto& row : ys) {
    for (auto& v : row) v = std::log(std::max(v, 0.0) + kTargetEps);
  }
  SPARKOPT_RETURN_NOT_OK(mlp_.Fit(xs, ys, opts));
  trained_ = true;
  return Status::OK();
}

std::vector<double> Regressor::Predict(const std::vector<double>& x) const {
  auto xs = stdizer_.Transform(x);
  auto p = mlp_.Predict(xs);
  for (auto& v : p) {
    v = std::exp(std::min(v, kMaxLogPred)) - kTargetEps;
    v = std::max(v, 0.0);
  }
  return p;
}

Matrix Regressor::PredictBatch(const Matrix& x) const {
  Matrix out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(Predict(row));
  return out;
}

}  // namespace sparkopt
