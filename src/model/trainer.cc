#include "model/trainer.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/rng.h"
#include "params/sampler.h"

namespace sparkopt {

DatasetSplit SplitDataset(const ModelDataset& ds, uint64_t seed) {
  Rng rng(seed);
  auto order = rng.Permutation(static_cast<int>(ds.size()));
  DatasetSplit split;
  const size_t n = ds.size();
  const size_t n_train = n * 8 / 10;
  const size_t n_val = n / 10;
  for (size_t i = 0; i < n; ++i) {
    const int idx = order[i];
    ModelDataset* target = i < n_train
                               ? &split.train
                               : (i < n_train + n_val ? &split.validation
                                                      : &split.test);
    target->x.push_back(ds.x[idx]);
    target->y.push_back(ds.y[idx]);
  }
  return split;
}

Status TraceCollector::Collect(
    const std::function<Result<Query>(int, uint64_t)>& make_query,
    int num_templates, const TraceOptions& opts, ModelDataset* subq_ds,
    ModelDataset* qs_ds, ModelDataset* lqp_ds) {
  Rng rng(opts.seed);
  Simulator sim(cluster_, cost_, prices_);
  const auto& space = SparkParamSpace();
  const auto configs =
      SampleLatinHypercube(space, static_cast<size_t>(opts.runs), &rng);
  constexpr double kMb = 1024.0 * 1024.0;

  for (int run = 0; run < opts.runs; ++run) {
    const int qid = 1 + static_cast<int>(rng.NextBounded(num_templates));
    const uint64_t variant =
        opts.use_variants ? HashCombine(opts.seed, run * 2654435761ULL) : 0;
    auto q_or = make_query(qid, variant);
    if (!q_or.ok()) return q_or.status();
    Query& q = *q_or;

    const auto& conf = configs[run];
    const ContextParams tc = DecodeContext(conf);
    const PlanParams tp = DecodePlan(conf);
    const StageParams ts = DecodeStage(conf);

    AqeDriver driver(&q.plan, &sim);
    auto run_or = driver.Run(tc, {tp}, {ts}, nullptr,
                             HashCombine(q.seed, run));
    if (!run_or.ok()) return run_or.status();
    const AqeResult& res = *run_or;

    SubQEvaluator eval(&q, cluster_, cost_, prices_);

    // ---- subQ (compile-time) and QS (runtime) samples per stage ----
    for (const auto& se : res.exec.stages) {
      if (se.subq_id < 0 || se.subq_id >= eval.num_subqs()) continue;
      // Skip broadcast-merged stages: their measured latency covers
      // several subQs and would mislabel the single-subQ features.
      if (se.merged_subqs > 1) continue;
      const std::vector<double> targets = {se.analytical_latency,
                                           se.io_bytes / kMb};
      // Compile-time subQ: estimated cards, uniform partitions (beta=0),
      // no contention (gamma=0).
      const QueryStage est_stage = eval.BuildStage(
          se.subq_id, tc, tp, ts, CardinalitySource::kEstimated);
      subq_ds->Append(
          StageFeatures(q.plan, est_stage, conf, /*use_true_cards=*/false,
                        {}, {}, /*drop_theta_p=*/false),
          targets);
      // Runtime QS: true cards, observed beta and gamma, theta_p dropped.
      const QueryStage true_stage =
          eval.BuildStage(se.subq_id, tc, tp, ts, CardinalitySource::kTrue);
      qs_ds->Append(
          StageFeatures(q.plan, true_stage, conf, /*use_true_cards=*/true,
                        PartitionDistributionStats(true_stage.partition_bytes),
                        ContentionStats(se), /*drop_theta_p=*/true),
          targets);
    }

    // ---- collapsed-LQP samples: one per wave boundary ----
    int max_wave = 0;
    for (const auto& se : res.exec.stages) max_wave = std::max(max_wave, se.wave);
    for (int w = 0; w <= max_wave; ++w) {
      double elapsed = 0.0;
      double remaining_ana = 0.0, remaining_io = 0.0;
      std::vector<QueryStage> remaining;
      for (const auto& se : res.exec.stages) {
        if (se.wave < w) {
          elapsed = std::max(elapsed, se.end);
        } else {
          remaining_ana += se.analytical_latency;
          remaining_io += se.io_bytes;
          if (se.subq_id >= 0 && se.subq_id < eval.num_subqs()) {
            remaining.push_back(eval.BuildStage(se.subq_id, tc, tp, ts,
                                                CardinalitySource::kTrue));
          }
        }
      }
      (void)remaining_ana;
      if (remaining.empty()) continue;
      const double remaining_latency =
          std::max(res.exec.latency - elapsed, 0.0);
      lqp_ds->Append(
          CollapsedPlanFeatures(q.plan, remaining, conf, {}),
          {remaining_latency, remaining_io / kMb});
    }
  }
  return Status::OK();
}

Status ModelSuite::Train(const ModelDataset& subq, const ModelDataset& qs,
                         const ModelDataset& lqp, uint64_t seed,
                         const Mlp::TrainOptions& opts) {
  if (subq.empty() || qs.empty() || lqp.empty()) {
    return Status::InvalidArgument("empty training dataset");
  }
  const int stage_dim = static_cast<int>(subq.x[0].size());
  const int lqp_dim = static_cast<int>(lqp.x[0].size());
  subq_ = Regressor(stage_dim, 2, {96, 96}, HashCombine(seed, 1));
  qs_ = Regressor(stage_dim, 2, {96, 96}, HashCombine(seed, 2));
  lqp_ = Regressor(lqp_dim, 2, {96, 96}, HashCombine(seed, 3));
  Mlp::TrainOptions o = opts;
  o.seed = HashCombine(seed, 77);
  SPARKOPT_RETURN_NOT_OK(subq_.Fit(subq.x, subq.y, o));
  SPARKOPT_RETURN_NOT_OK(qs_.Fit(qs.x, qs.y, o));
  SPARKOPT_RETURN_NOT_OK(lqp_.Fit(lqp.x, lqp.y, o));
  return Status::OK();
}

ModelPerformance ModelSuite::Evaluate(const Regressor& model,
                                      const ModelDataset& test) const {
  ModelPerformance perf;
  if (test.empty()) return perf;
  std::vector<double> lat_true, lat_pred, io_true, io_pred;
  const auto t0 = std::chrono::steady_clock::now();
  const Matrix preds = model.PredictBatch(test.x);
  const auto t1 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < test.size(); ++i) {
    lat_true.push_back(test.y[i][0]);
    lat_pred.push_back(preds[i][0]);
    io_true.push_back(test.y[i][1]);
    io_pred.push_back(preds[i][1]);
  }
  perf.latency = EvaluateAccuracy(lat_true, lat_pred);
  perf.io = EvaluateAccuracy(io_true, io_pred);
  const double secs =
      std::chrono::duration<double>(t1 - t0).count();
  perf.throughput_per_sec = secs > 0 ? test.size() / secs : 0.0;
  return perf;
}

}  // namespace sparkopt
