#include "model/features.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace sparkopt {

namespace {

double Log1p(double v) { return std::log1p(std::max(v, 0.0)); }

// Signed pseudo-random projection of a 64-bit hash onto `dim` slots.
void ProjectHash(uint64_t h, int dim, double weight,
                 std::vector<double>* out, int offset) {
  for (int i = 0; i < dim; ++i) {
    const uint64_t bit = Fnv1a(&i, sizeof(i), h);
    (*out)[offset + i] += (bit & 1 ? 1.0 : -1.0) * weight;
  }
}

// Two-round Weisfeiler-Lehman labels of the member operators (children
// restricted to in-stage edges keep the embedding local to the subQ).
std::vector<uint64_t> WlLabels(const LogicalPlan& plan,
                               const std::vector<int>& ops) {
  std::vector<uint64_t> label(plan.num_ops(), 0);
  std::vector<bool> member(plan.num_ops(), false);
  for (int id : ops) member[id] = true;
  for (int id : ops) {
    const auto& op = plan.op(id);
    label[id] = HashCombine(0xAB5715ULL, static_cast<uint64_t>(op.type));
  }
  for (int round = 0; round < 2; ++round) {
    std::vector<uint64_t> next = label;
    for (int id : ops) {
      uint64_t h = HashCombine(label[id], 0x9127);
      for (int c : plan.op(id).children) {
        if (c < static_cast<int>(member.size()) && member[c]) {
          h = HashCombine(h, label[c]);
        } else {
          h = HashCombine(h, 0xED6EULL);  // external-edge marker
        }
      }
      next[id] = h;
    }
    label = std::move(next);
  }
  return label;
}

}  // namespace

std::vector<double> PartitionDistributionStats(
    const std::vector<double>& partition_bytes) {
  std::vector<double> out(FeatureLayout::kBeta, 0.0);
  if (partition_bytes.empty()) return out;
  double sum = 0.0, mx = 0.0, mn = 1e300;
  for (double b : partition_bytes) {
    sum += b;
    mx = std::max(mx, b);
    mn = std::min(mn, b);
  }
  const double mu = sum / static_cast<double>(partition_bytes.size());
  if (mu <= 0.0) return out;
  double var = 0.0;
  for (double b : partition_bytes) var += (b - mu) * (b - mu);
  const double sigma =
      std::sqrt(var / static_cast<double>(partition_bytes.size()));
  out[0] = sigma / mu;          // std-to-average ratio
  out[1] = (mx - mu) / mu;      // skewness ratio
  out[2] = (mx - mn) / mu;      // range-to-average ratio
  return out;
}

std::vector<double> ContentionStats(const StageExecution& se) {
  return {Log1p(se.parallel_running_tasks), Log1p(se.parallel_waiting_tasks),
          Log1p(se.finished_task_mean_s)};
}

std::vector<double> StageFeatures(
    const LogicalPlan& plan, const QueryStage& stage,
    const std::vector<double>& conf, bool use_true_cards,
    const std::vector<double>& beta, const std::vector<double>& gamma,
    bool drop_theta_p) {
  std::vector<double> f(FeatureLayout::Total(), 0.0);
  int off = 0;

  // ---- operator type histogram ----
  for (int id : stage.op_ids) {
    const int t = static_cast<int>(plan.op(id).type);
    if (t < FeatureLayout::kOpHistogram) f[off + t] += 1.0;
  }
  off += FeatureLayout::kOpHistogram;

  // ---- WL graph embedding (GTN stand-in) ----
  const auto labels = WlLabels(plan, stage.op_ids);
  const double inv =
      1.0 / std::max<size_t>(stage.op_ids.size(), 1);
  for (int id : stage.op_ids) {
    ProjectHash(labels[id], FeatureLayout::kWlEmbedding, inv, &f, off);
  }
  off += FeatureLayout::kWlEmbedding;

  // ---- hashed predicate tokens (word-embedding stand-in) ----
  int n_tokens = 0;
  for (int id : stage.op_ids) {
    n_tokens += static_cast<int>(plan.op(id).predicate_tokens.size());
  }
  const double tok_w = 1.0 / std::max(n_tokens, 1);
  for (int id : stage.op_ids) {
    for (const auto& tok : plan.op(id).predicate_tokens) {
      ProjectHash(Fnv1a(tok.data(), tok.size()),
                  FeatureLayout::kPredicateHash, tok_w, &f, off);
    }
  }
  off += FeatureLayout::kPredicateHash;

  // ---- cardinality block ----
  double in_rows = stage.input_rows, in_bytes = stage.input_bytes;
  double out_rows = stage.output_rows, out_bytes = stage.output_bytes;
  if (!use_true_cards) {
    // The caller built `stage` with the matching cardinality source, so
    // the fields are already estimate-based; nothing to redo here.
  }
  f[off + 0] = Log1p(in_rows);
  f[off + 1] = Log1p(in_bytes);
  f[off + 2] = Log1p(out_rows);
  f[off + 3] = Log1p(out_bytes);
  f[off + 4] = Log1p(stage.shuffle_read_bytes);
  f[off + 5] = Log1p(stage.broadcast_bytes);
  f[off + 6] = Log1p(stage.cpu_work);
  f[off + 7] = Log1p(stage.sort_work);
  off += FeatureLayout::kCardinality;

  // ---- alpha: input characteristics from leaf operators ----
  double leaf_rows = 0.0, leaf_bytes = 0.0;
  for (int id : stage.op_ids) {
    const auto& op = plan.op(id);
    if (op.type == OpType::kScan) {
      leaf_rows += use_true_cards ? op.true_rows : op.est_rows;
      leaf_bytes += use_true_cards ? op.true_bytes : op.est_bytes;
    }
  }
  f[off + 0] = Log1p(leaf_rows);
  f[off + 1] = Log1p(leaf_bytes);
  off += FeatureLayout::kAlpha;

  // ---- beta: partition distribution (0 = uniform assumption) ----
  for (int i = 0; i < FeatureLayout::kBeta; ++i) {
    f[off + i] = i < static_cast<int>(beta.size()) ? beta[i] : 0.0;
  }
  off += FeatureLayout::kBeta;

  // ---- gamma: contention (0 = no-contention assumption) ----
  for (int i = 0; i < FeatureLayout::kGamma; ++i) {
    f[off + i] = i < static_cast<int>(gamma.size()) ? gamma[i] : 0.0;
  }
  off += FeatureLayout::kGamma;

  // ---- theta: normalized decision variables ----
  const auto& space = SparkParamSpace();
  auto unit = space.Normalize(conf);
  if (drop_theta_p) {
    for (size_t i : space.CategoryIndices(ParamCategory::kPlan)) {
      unit[i] = 0.0;
    }
  }
  for (int i = 0; i < FeatureLayout::kTheta; ++i) {
    f[off + i] = i < static_cast<int>(unit.size()) ? unit[i] : 0.0;
  }
  off += FeatureLayout::kTheta;

  // ---- stage metadata ----
  f[off + 0] = stage.is_scan_stage ? 1.0 : 0.0;
  f[off + 1] = stage.has_join ? 1.0 : 0.0;
  f[off + 2] = stage.has_join &&
                       stage.join_algo == JoinAlgo::kSortMergeJoin
                   ? 1.0 : 0.0;
  f[off + 3] = stage.has_join &&
                       stage.join_algo == JoinAlgo::kShuffledHashJoin
                   ? 1.0 : 0.0;
  f[off + 4] = stage.has_join &&
                       stage.join_algo == JoinAlgo::kBroadcastHashJoin
                   ? 1.0 : 0.0;
  f[off + 5] = Log1p(stage.num_partitions);
  f[off + 6] = stage.exchanges_output ? 1.0 : 0.0;
  f[off + 7] = Log1p(static_cast<double>(stage.op_ids.size()));
  off += FeatureLayout::kStageMeta;

  // ---- derived interaction terms ----
  const ContextParams tc = DecodeContext(conf);
  const double cores = std::max(1, tc.TotalCores());
  f[off + 0] = Log1p(cores);
  f[off + 1] = Log1p(tc.MemoryPerTaskMb());
  f[off + 2] = Log1p(stage.num_partitions / cores);
  f[off + 3] = Log1p(stage.input_bytes / (1024.0 * 1024.0) / cores);
  return f;
}

std::vector<double> CollapsedPlanFeatures(
    const LogicalPlan& plan, const std::vector<QueryStage>& remaining_stages,
    const std::vector<double>& conf, const std::vector<double>& gamma) {
  std::vector<double> pooled(FeatureLayout::Total() + 1, 0.0);
  if (remaining_stages.empty()) return pooled;
  for (const auto& st : remaining_stages) {
    const auto beta = PartitionDistributionStats(st.partition_bytes);
    const auto f = StageFeatures(plan, st, conf, /*use_true_cards=*/true,
                                 beta, gamma, /*drop_theta_p=*/false);
    for (size_t i = 0; i < f.size(); ++i) pooled[i] += f[i];
  }
  const double inv = 1.0 / static_cast<double>(remaining_stages.size());
  for (size_t i = 0; i + 1 < pooled.size(); ++i) pooled[i] *= inv;
  pooled.back() = static_cast<double>(remaining_stages.size());
  return pooled;
}

}  // namespace sparkopt
