#pragma once

#include <cstddef>

/// \file inference_sink.h
/// \brief Pluggable executor for batched regressor inference.
///
/// A SubQObjectiveModel that runs a Regressor normally calls
/// Regressor::PredictBatchInto directly. An InferenceSink interposes on
/// that call so an external component — the tuning service's
/// cross-session batcher — can coalesce rows from concurrently-solving
/// sessions into one flat batch before dispatching the AVX2 kernel.
///
/// Contract: Predict must fill `out[rows * reg.output_dim()]` bitwise
/// identically to `reg.PredictBatchInto(x, rows, out, scratch)`. The
/// regressor guarantees per-row results do not depend on batch
/// composition, which is what makes any coalescing sink transparent to
/// solver output.

namespace sparkopt {

class Regressor;

class InferenceSink {
 public:
  virtual ~InferenceSink() = default;

  /// Predicts `rows` row-major feature rows of `reg.input_dim()` doubles
  /// each into `out` (`rows * reg.output_dim()` doubles). May block the
  /// calling thread (e.g. while a batch window fills); must be safe to
  /// call from multiple threads concurrently.
  virtual void Predict(const Regressor& reg, const double* x, size_t rows,
                       double* out) = 0;
};

}  // namespace sparkopt
