#pragma once

#include <vector>

#include "exec/simulator.h"
#include "model/subq_evaluator.h"
#include "params/spark_params.h"

/// \file features.h
/// \brief Feature extraction for the three model targets (Section 4.3).
///
/// The paper encodes the plan with a Graph Transformer Network over
/// operator encodings (type one-hot, cardinality, word-embedded
/// predicates) plus Laplacian positional encoding, concatenated with
/// tabular channels: non-decision variables alpha (input
/// characteristics), beta (partition-size distribution), gamma (runtime
/// contention), and the decision variables theta.
///
/// Our deterministic stand-in replaces the GTN with a Weisfeiler-Lehman
/// style embedding: operator labels are iteratively hashed with their
/// children's labels, each final hash is projected to a signed random
/// basis, and the projections are mean-pooled. Predicate tokens hash into
/// a small signed bag-of-words block (the word2vec substitute). All other
/// channels match the paper's description directly.

namespace sparkopt {

/// Dimensions of the feature blocks.
struct FeatureLayout {
  static constexpr int kOpHistogram = 8;   ///< one slot per OpType
  static constexpr int kWlEmbedding = 12;  ///< WL graph embedding
  static constexpr int kPredicateHash = 8; ///< hashed predicate tokens
  static constexpr int kCardinality = 8;   ///< log-scale size stats
  static constexpr int kAlpha = 2;         ///< input characteristics
  static constexpr int kBeta = 3;          ///< partition distribution
  static constexpr int kGamma = 3;         ///< contention
  static constexpr int kTheta = kNumSparkParams;
  static constexpr int kStageMeta = 8;     ///< join algo, flags, partitions
  /// Derived interaction terms the analytical-latency target depends on
  /// directly (total cores, memory/task, tasks-per-core, bytes-per-core).
  static constexpr int kDerived = 4;

  static constexpr int Total() {
    return kOpHistogram + kWlEmbedding + kPredicateHash + kCardinality +
           kAlpha + kBeta + kGamma + kTheta + kStageMeta + kDerived;
  }
};

/// beta: partition-size distribution statistics (sigma/mu, (max-mu)/mu,
/// (max-min)/mu), exactly the three ratios in Section 4.3.
std::vector<double> PartitionDistributionStats(
    const std::vector<double>& partition_bytes);

/// gamma: contention vector from a stage-execution record.
std::vector<double> ContentionStats(const StageExecution& se);

/// \brief Extracts features for one subQ/QS sample.
///
/// `stage` is the realized (or hypothesized) query stage; `ops` indexes
/// into `plan`. `use_true_cards` selects runtime (true) vs compile-time
/// (estimated) cardinalities. For the compile-time subQ target pass
/// beta = {} and gamma = {} (the uniform/no-contention assumption); for
/// the runtime QS target pass observed values and set `drop_theta_p` so
/// the already-applied plan parameters are zeroed.
std::vector<double> StageFeatures(
    const LogicalPlan& plan, const QueryStage& stage,
    const std::vector<double>& conf, bool use_true_cards,
    const std::vector<double>& beta, const std::vector<double>& gamma,
    bool drop_theta_p);

/// \brief Pooled features of a collapsed plan (the LQP-bar target): mean
/// of the member subQ stage features over the *remaining* subQs plus the
/// count of remaining subQs appended.
std::vector<double> CollapsedPlanFeatures(
    const LogicalPlan& plan, const std::vector<QueryStage>& remaining_stages,
    const std::vector<double>& conf, const std::vector<double>& gamma);

}  // namespace sparkopt
