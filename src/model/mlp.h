#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"

/// \file mlp.h
/// \brief A small from-scratch multilayer perceptron with Adam, used as
/// the regressor on top of the plan embedding (the paper's GTN+regressor
/// stack, Section 4.3). Designed for the inference-throughput regime the
/// paper reports (10^4-10^5 predictions/second), which the MOO solving
/// times depend on.

namespace sparkopt {

/// Row-major dense matrix as nested vectors (sizes are small; clarity over
/// peak throughput, with a batched forward pass for the hot path).
using Matrix = std::vector<std::vector<double>>;

/// \brief Per-feature standardization fitted on training data.
struct Standardizer {
  std::vector<double> mean;
  std::vector<double> stddev;

  void Fit(const Matrix& x);
  std::vector<double> Transform(const std::vector<double>& x) const;
  void TransformInPlace(std::vector<double>* x) const;
};

/// \brief Fully connected network with ReLU hidden activations and a
/// linear output layer, trained with Adam on mean squared error.
class Mlp {
 public:
  /// `layers` = {input_dim, hidden..., output_dim}.
  Mlp(std::vector<int> layers, uint64_t seed);

  /// \brief Reusable scratch for the batched forward pass. One instance
  /// per thread: the buffers are ping-ponged between layers, so sharing
  /// one across concurrent calls would corrupt activations.
  struct BatchScratch {
    std::vector<double> a, b;
    /// Standardized-input staging area (used by Regressor's batch path).
    std::vector<double> xs;
  };

  struct TrainOptions {
    int epochs = 80;
    int batch_size = 64;
    double learning_rate = 1.5e-3;
    double weight_decay = 1e-6;
    /// Early stop when validation loss fails to improve this many epochs.
    int patience = 12;
    double validation_fraction = 0.1;
    uint64_t seed = 7;
  };

  /// Trains on (x, y); both row counts must match. Inputs should already
  /// be standardized; targets are fit in the caller's space.
  Status Fit(const Matrix& x, const Matrix& y, const TrainOptions& opts);

  /// Single-sample inference.
  std::vector<double> Predict(const std::vector<double>& x) const;
  /// Batched inference (hot path of the MOO solvers).
  Matrix PredictBatch(const Matrix& x) const;

  /// \brief Batched inference over a flat row-major buffer
  /// `x[rows * input_dim]`, writing `out[rows * output_dim]`.
  ///
  /// This is the GEMM-style hot path: one blocked matrix-matrix product
  /// per layer over reused scratch, no per-row vector churn. Each
  /// (row, output) dot product accumulates in the same index order as
  /// `Predict`, so results are bitwise identical to the per-row path.
  void PredictBatchInto(const double* x, size_t rows, double* out,
                        BatchScratch* scratch) const;

  /// Mean squared error over a dataset.
  double Mse(const Matrix& x, const Matrix& y) const;

  /// Mse over flat row-major buffers (batched; reuses `scratch`).
  double MseFlat(const double* x, const double* y, size_t rows,
                 BatchScratch* scratch) const;

  int input_dim() const { return layers_.front(); }
  int output_dim() const { return layers_.back(); }

 private:
  struct Layer {
    std::vector<double> w;  ///< out x in, row-major
    std::vector<double> b;  ///< out
    int in = 0, out = 0;
  };

  void Forward(const std::vector<double>& x,
               std::vector<std::vector<double>>* activations) const;

  std::vector<int> layers_;
  std::vector<Layer> net_;
};

/// \brief Convenience wrapper bundling input standardization, log1p
/// target transform, and the MLP. This is the shape all three model
/// targets (subQ, QS, collapsed-LQP) share.
class Regressor {
 public:
  Regressor() = default;
  Regressor(int input_dim, int output_dim, std::vector<int> hidden,
            uint64_t seed);

  /// Fits the standardizer and trains on log1p-transformed targets.
  Status Fit(const Matrix& x, const Matrix& y_raw,
             const Mlp::TrainOptions& opts);

  /// Predicts raw-space targets (inverse log1p, clamped at >= 0).
  std::vector<double> Predict(const std::vector<double>& x) const;
  Matrix PredictBatch(const Matrix& x) const;

  /// \brief Batched raw-space prediction over a flat row-major buffer
  /// `x[rows * input_dim]` into `out[rows * output_dim]`: one
  /// standardize pass (in scratch, inputs untouched), one batched MLP
  /// forward, one exp/clamp pass. Bitwise identical to per-row Predict.
  void PredictBatchInto(const double* x, size_t rows, double* out,
                        Mlp::BatchScratch* scratch) const;

  /// \brief Knowledge distillation: trains a (typically much smaller)
  /// student with hidden sizes `hidden` on THIS regressor's raw-space
  /// predictions over the sample `x` — no ground-truth labels needed, so
  /// the teacher can cheaply pseudo-label as large a sample as the caller
  /// wants. The student standardizes and log-transforms independently
  /// (it is a full Regressor), making it a drop-in low-fidelity stand-in
  /// for the teacher (the tier-0 screen of the multi-fidelity solve
  /// pipeline, DESIGN.md section 13). Fails if the teacher is untrained.
  Result<Regressor> Distill(const Matrix& x, const std::vector<int>& hidden,
                            const Mlp::TrainOptions& opts) const;

  int input_dim() const { return mlp_.input_dim(); }
  int output_dim() const { return mlp_.output_dim(); }
  bool trained() const { return trained_; }

 private:
  Standardizer stdizer_;
  Mlp mlp_{{1, 1}, 0};
  bool trained_ = false;
};

}  // namespace sparkopt
