#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sparkopt {
namespace obs {

namespace {

// fetch_add on atomic<double> is C++20 but not universally lock-free;
// a CAS loop is portable and the contention here is negligible.
void AtomicAdd(std::atomic<double>* a, double delta) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + delta,
                                   std::memory_order_relaxed)) {
  }
}

int BucketIndex(double v) {
  if (!(v > Histogram::kFirstBound)) return 0;  // also catches NaN, <= 0
  const double octaves = std::log2(v / Histogram::kFirstBound);
  const int idx = static_cast<int>(std::ceil(octaves * Histogram::kSubBuckets));
  return std::min(std::max(idx, 1), Histogram::kNumBuckets - 1);
}

}  // namespace

void Gauge::Add(double delta) { AtomicAdd(&v_, delta); }

void Histogram::Observe(double v) {
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, v);
}

double Histogram::Mean() const {
  const uint64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::BucketUpperBound(int i) {
  if (i <= 0) return kFirstBound;
  if (i >= kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  return kFirstBound * std::exp2(static_cast<double>(i) / kSubBuckets);
}

double Histogram::Percentile(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank of the q-th value (1-based, nearest-rank definition).
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(n))));
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      if (i == 0) return kFirstBound;
      if (i == kNumBuckets - 1) return BucketUpperBound(kNumBuckets - 2);
      // Geometric midpoint of (lower, upper] halves the log-scale error.
      const double lower = BucketUpperBound(i - 1);
      const double upper = BucketUpperBound(i);
      return std::sqrt(lower * upper);
    }
  }
  return BucketUpperBound(kNumBuckets - 2);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(kNumBuckets);
  for (int i = 0; i < kNumBuckets; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  {
    ReaderMutexLock lock(mu_);
    auto it = counters_.find(name);
    if (it != counters_.end()) return *it->second;
  }
  WriterMutexLock lock(mu_);
  auto& slot = counters_[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  {
    ReaderMutexLock lock(mu_);
    auto it = gauges_.find(name);
    if (it != gauges_.end()) return *it->second;
  }
  WriterMutexLock lock(mu_);
  auto& slot = gauges_[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  {
    ReaderMutexLock lock(mu_);
    auto it = histograms_.find(name);
    if (it != histograms_.end()) return *it->second;
  }
  WriterMutexLock lock(mu_);
  auto& slot = histograms_[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

const Counter* MetricsRegistry::FindCounter(std::string_view name) const {
  ReaderMutexLock lock(mu_);
  auto it = counters_.find(name);
  return it != counters_.end() ? it->second.get() : nullptr;
}

const Gauge* MetricsRegistry::FindGauge(std::string_view name) const {
  ReaderMutexLock lock(mu_);
  auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second.get() : nullptr;
}

const Histogram* MetricsRegistry::FindHistogram(
    std::string_view name) const {
  ReaderMutexLock lock(mu_);
  auto it = histograms_.find(name);
  return it != histograms_.end() ? it->second.get() : nullptr;
}

HistogramStats MetricsRegistry::StatsOf(std::string_view name) const {
  HistogramStats st;
  const Histogram* h = FindHistogram(name);
  if (h == nullptr) return st;
  st.count = h->count();
  st.sum = h->sum();
  st.mean = h->Mean();
  st.p50 = h->Percentile(0.50);
  st.p95 = h->Percentile(0.95);
  st.p99 = h->Percentile(0.99);
  return st;
}

uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  const Counter* c = FindCounter(name);
  return c != nullptr ? c->value() : 0;
}

double MetricsRegistry::GaugeValue(std::string_view name) const {
  const Gauge* g = FindGauge(name);
  return g != nullptr ? g->value() : 0.0;
}

std::vector<std::pair<std::string, uint64_t>>
MetricsRegistry::CounterEntries() const {
  ReaderMutexLock lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::GaugeEntries()
    const {
  ReaderMutexLock lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::pair<std::string, const Histogram*>>
MetricsRegistry::HistogramEntries() const {
  ReaderMutexLock lock(mu_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h.get());
  return out;
}

Json MetricsRegistry::ToJsonValue() const {
  ReaderMutexLock lock(mu_);
  JsonObject counters;
  for (const auto& [name, c] : counters_) {
    counters.emplace_back(name, Json(c->value()));
  }
  JsonObject gauges;
  for (const auto& [name, g] : gauges_) {
    gauges.emplace_back(name, Json(g->value()));
  }
  JsonObject hists;
  for (const auto& [name, h] : histograms_) {
    JsonObject st;
    st.emplace_back("count", Json(h->count()));
    st.emplace_back("sum", Json(h->sum()));
    st.emplace_back("mean", Json(h->Mean()));
    st.emplace_back("p50", Json(h->Percentile(0.50)));
    st.emplace_back("p95", Json(h->Percentile(0.95)));
    st.emplace_back("p99", Json(h->Percentile(0.99)));
    hists.emplace_back(name, Json(std::move(st)));
  }
  JsonObject root;
  root.emplace_back("counters", Json(std::move(counters)));
  root.emplace_back("gauges", Json(std::move(gauges)));
  root.emplace_back("histograms", Json(std::move(hists)));
  return Json(std::move(root));
}

}  // namespace obs
}  // namespace sparkopt
