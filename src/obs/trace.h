#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_safety.h"
#include "obs/metrics.h"

/// \file trace.h
/// \brief Per-session tracing: RAII `Span` scoped timers recording into a
/// `Trace`, exported as Chrome `trace_event` JSON (loadable in
/// `chrome://tracing` and Perfetto), plus the `Session` sink that makes
/// the whole subsystem near-zero-cost when observability is off.
///
/// Instrumentation is compiled in unconditionally. Every instrumented
/// call site starts with one relaxed atomic load (`Session::Current()`);
/// with no session installed that load-and-branch is the entire cost, so
/// hot paths need no #ifdef gating. When a session is installed, spans
/// take two steady_clock reads plus one mutex-guarded event append, and
/// metric helpers take a shared-lock lookup plus a relaxed increment.
///
/// Sessions are installed process-globally (stacked; destruction restores
/// the previous one). Install a session before spawning worker threads
/// and keep it alive until they finish.
///
/// Threading policy: `Span` is **main-thread-only** — spans record the
/// phase structure of the tuning pipeline, and interleaved worker spans
/// would scramble the nesting-depth bookkeeping and the report's
/// phase-timing reconstruction. Constructing a Span on any thread other
/// than the one that installed the session trips a SPARKOPT_DCHECK.
/// Worker threads (solver fan-outs) must use the thread-safe metric
/// helpers instead: `Count`/`Observe`/`GaugeAdd` and
/// `ScopedHistogramTimer`, which only touch the lock-protected
/// `MetricsRegistry`.

namespace sparkopt {
namespace obs {

/// One Chrome trace_event entry. Complete ("X") events carry a duration;
/// instant ("i") events do not.
struct TraceEvent {
  std::string name;
  char phase = 'X';       ///< 'X' complete, 'i' instant
  double ts_us = 0.0;     ///< start, microseconds since session start
  double dur_us = 0.0;    ///< duration ('X' only)
  int tid = 0;            ///< recording thread (dense ids from 0)
  int depth = 0;          ///< span nesting depth on that thread
  std::vector<std::pair<std::string, double>> args;
};

/// \brief Ordered collection of trace events for one session.
class Trace {
 public:
  void Add(TraceEvent ev);
  /// Thread-safe snapshot of the events recorded so far.
  std::vector<TraceEvent> Events() const;
  size_t size() const;

  /// Chrome trace_event JSON: {"traceEvents": [...], "displayTimeUnit":
  /// "ms"}. Loadable in chrome://tracing and Perfetto.
  std::string ToChromeJson() const;
  /// Writes ToChromeJson() to `path`; false on IO failure.
  bool WriteChromeJson(const std::string& path) const;

 private:
  mutable Mutex mu_;
  std::vector<TraceEvent> events_ SPARKOPT_GUARDED_BY(mu_);
};

/// \brief The active observability sink: a metrics registry + a trace.
///
/// Constructing a Session installs it as the process-global sink;
/// destruction restores the previously installed one (sessions nest).
class Session {
 public:
  Session();
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// The innermost installed session, or nullptr (one relaxed load).
  static Session* Current();

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  Trace& trace() { return trace_; }
  const Trace& trace() const { return trace_; }

  /// Microseconds elapsed since this session was installed.
  double NowMicros() const;

  /// The thread that installed the session; Spans may only be created
  /// there (see the threading policy above).
  std::thread::id creator_thread() const { return creator_; }

 private:
  MetricsRegistry metrics_;
  Trace trace_;
  std::chrono::steady_clock::time_point start_;
  std::thread::id creator_ = std::this_thread::get_id();
  Session* prev_ = nullptr;
};

/// \brief RAII scoped timer: records a complete ("X") trace event from
/// construction to destruction, tagged with thread id and nesting depth.
///
/// `name` must outlive the span (string literals in practice). A span
/// constructed with no session installed is inert.
///
/// Main-thread-only: must be constructed on the thread that installed
/// the session (DCHECK-enforced). From worker threads, record timing via
/// ScopedHistogramTimer / obs::Observe instead.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a numeric argument shown in the trace viewer.
  void Arg(const char* key, double value);

  /// Ends the span now (records the event); for phases that do not align
  /// with a C++ scope. Destruction after End() is a no-op.
  void End();

  /// Seconds elapsed so far (0 when inert).
  double Seconds() const;
  bool active() const { return session_ != nullptr; }

 private:
  const char* name_;
  Session* session_;
  std::chrono::steady_clock::time_point start_;
  double start_us_ = 0.0;
  int depth_ = 0;
  std::vector<std::pair<std::string, double>> args_;
};

/// \brief RAII: makes every Span constructed on this thread inert while
/// in scope (nests; restores the previous state on destruction).
///
/// For long-lived worker threads that call instrumented *main-thread*
/// entry points — the tuning service's session workers run whole
/// HmoocSolver::Solve calls, whose phase spans would otherwise trip the
/// main-thread-only DCHECK. Metric helpers (Count/Observe/gauges) are
/// unaffected: they are thread-safe and keep recording.
class ScopedSpanSuppression {
 public:
  ScopedSpanSuppression();
  ~ScopedSpanSuppression();
  ScopedSpanSuppression(const ScopedSpanSuppression&) = delete;
  ScopedSpanSuppression& operator=(const ScopedSpanSuppression&) = delete;

  /// True when spans on the calling thread are currently suppressed.
  static bool ActiveOnThisThread();

 private:
  bool prev_;
};

/// \brief Like Span, but records elapsed microseconds into a histogram
/// (and bumps `<name>.count`) instead of the trace — for call sites too
/// hot or too numerous for one trace event each (e.g. model inference).
class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(Histogram* hist)
      : hist_(hist),
        start_(hist != nullptr ? std::chrono::steady_clock::now()
                               : std::chrono::steady_clock::time_point()) {}
  ~ScopedHistogramTimer() {
    if (hist_ == nullptr) return;
    hist_->Observe(std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - start_)
                       .count());
  }
  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

// ---- Cheap metric helpers (one relaxed load when no session) -----------

inline void Count(const char* name, uint64_t delta = 1) {
  if (Session* s = Session::Current()) s->metrics().counter(name).Add(delta);
}

inline void GaugeSet(const char* name, double value) {
  if (Session* s = Session::Current()) s->metrics().gauge(name).Set(value);
}

inline void GaugeAdd(const char* name, double delta) {
  if (Session* s = Session::Current()) s->metrics().gauge(name).Add(delta);
}

inline void Observe(const char* name, double value) {
  if (Session* s = Session::Current()) {
    s->metrics().histogram(name).Observe(value);
  }
}

/// Histogram handle for hot loops; nullptr when no session is installed.
inline Histogram* HistogramFor(const char* name) {
  Session* s = Session::Current();
  return s != nullptr ? &s->metrics().histogram(name) : nullptr;
}

}  // namespace obs
}  // namespace sparkopt
