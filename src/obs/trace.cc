#include "obs/trace.h"

#include <cstdio>

#include "common/check.h"

namespace sparkopt {
namespace obs {

namespace {

std::atomic<Session*> g_current{nullptr};

// Dense per-thread ids for the trace "tid" field, plus the span nesting
// depth of the calling thread.
int ThreadId() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

int& ThreadDepth() {
  thread_local int depth = 0;
  return depth;
}

}  // namespace

// ---- Trace -------------------------------------------------------------

void Trace::Add(TraceEvent ev) {
  MutexLock lock(mu_);
  events_.push_back(std::move(ev));
}

std::vector<TraceEvent> Trace::Events() const {
  MutexLock lock(mu_);
  return events_;
}

size_t Trace::size() const {
  MutexLock lock(mu_);
  return events_.size();
}

std::string Trace::ToChromeJson() const {
  const auto events = Events();
  JsonArray arr;
  arr.reserve(events.size());
  for (const auto& ev : events) {
    JsonObject e;
    e.emplace_back("name", Json(ev.name));
    e.emplace_back("cat", Json("sparkopt"));
    e.emplace_back("ph", Json(std::string(1, ev.phase)));
    e.emplace_back("ts", Json(ev.ts_us));
    if (ev.phase == 'X') e.emplace_back("dur", Json(ev.dur_us));
    e.emplace_back("pid", Json(1));
    e.emplace_back("tid", Json(ev.tid));
    JsonObject args;
    args.emplace_back("depth", Json(ev.depth));
    for (const auto& [k, v] : ev.args) args.emplace_back(k, Json(v));
    e.emplace_back("args", Json(std::move(args)));
    arr.push_back(Json(std::move(e)));
  }
  JsonObject root;
  root.emplace_back("traceEvents", Json(std::move(arr)));
  root.emplace_back("displayTimeUnit", Json("ms"));
  return Json(std::move(root)).Dump(1);
}

bool Trace::WriteChromeJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = ToChromeJson();
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = std::fclose(f) == 0 && written == body.size();
  return ok;
}

// ---- Session -----------------------------------------------------------

Session::Session() : start_(std::chrono::steady_clock::now()) {
  prev_ = g_current.load(std::memory_order_relaxed);
  g_current.store(this, std::memory_order_release);
}

Session::~Session() { g_current.store(prev_, std::memory_order_release); }

Session* Session::Current() {
  return g_current.load(std::memory_order_relaxed);
}

double Session::NowMicros() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

// ---- Span --------------------------------------------------------------

namespace {
thread_local bool t_spans_suppressed = false;
}  // namespace

ScopedSpanSuppression::ScopedSpanSuppression() : prev_(t_spans_suppressed) {
  t_spans_suppressed = true;
}

ScopedSpanSuppression::~ScopedSpanSuppression() {
  t_spans_suppressed = prev_;
}

bool ScopedSpanSuppression::ActiveOnThisThread() {
  return t_spans_suppressed;
}

Span::Span(const char* name) : name_(name), session_(Session::Current()) {
  if (session_ == nullptr) return;
  if (t_spans_suppressed) {
    session_ = nullptr;  // inert, same as "no session installed"
    return;
  }
  // Spans are main-thread-only (see the threading policy in trace.h);
  // workers must use ScopedHistogramTimer / obs::Observe.
  SPARKOPT_DCHECK(std::this_thread::get_id() == session_->creator_thread())
      << "obs::Span constructed off the session's thread";
  depth_ = ThreadDepth()++;
  start_ = std::chrono::steady_clock::now();
  start_us_ = session_->NowMicros();
}

Span::~Span() { End(); }

void Span::End() {
  if (session_ == nullptr) return;
  --ThreadDepth();
  TraceEvent ev;
  ev.name = name_;
  ev.phase = 'X';
  ev.ts_us = start_us_;
  ev.dur_us = std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
  ev.tid = ThreadId();
  ev.depth = depth_;
  ev.args = std::move(args_);
  session_->trace().Add(std::move(ev));
  session_ = nullptr;
}

void Span::Arg(const char* key, double value) {
  if (session_ == nullptr) return;
  args_.emplace_back(key, value);
}

double Span::Seconds() const {
  if (session_ == nullptr) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

}  // namespace obs
}  // namespace sparkopt
