#include "obs/profile.h"

#include <algorithm>
#include <cstdio>

namespace sparkopt {
namespace obs {

namespace {

/// Mutable aggregation node; flattened into ProfileNode once built.
/// (ProfileNode stores children by value, which is fine for the final
/// immutable tree but would invalidate parent pointers while growing.)
struct BuildNode {
  std::string name;
  uint64_t count = 0;
  double inclusive_us = 0.0;
  std::vector<std::unique_ptr<BuildNode>> children;

  BuildNode* ChildOrCreate(const std::string& child_name) {
    for (auto& c : children) {
      if (c->name == child_name) return c.get();
    }
    children.push_back(std::make_unique<BuildNode>());
    children.back()->name = child_name;
    return children.back().get();
  }
};

/// Converts a BuildNode subtree, computing exclusive times. Exclusive is
/// clamped at zero: on a single recording thread spans nest properly and
/// children cannot overlap, but clock jitter can make a child read a
/// hair longer than its parent.
ProfileNode Finalize(const BuildNode& b) {
  ProfileNode n;
  n.name = b.name;
  n.count = b.count;
  n.inclusive_us = b.inclusive_us;
  double child_us = 0.0;
  n.children.reserve(b.children.size());
  for (const auto& c : b.children) {
    child_us += c->inclusive_us;
    n.children.push_back(Finalize(*c));
  }
  n.exclusive_us = std::max(0.0, b.inclusive_us - child_us);
  return n;
}

void RenderText(const ProfileNode& n, int depth, double total_us,
                std::string* out) {
  char buf[256];
  const std::string indent(static_cast<size_t>(depth) * 2, ' ');
  const std::string label = indent + n.name;
  const double pct =
      total_us > 0.0 ? 100.0 * n.exclusive_us / total_us : 0.0;
  std::snprintf(buf, sizeof(buf),
                "  %-38s %8llu %12.3f %12.3f %6.1f%%\n", label.c_str(),
                static_cast<unsigned long long>(n.count),
                n.inclusive_us / 1e3, n.exclusive_us / 1e3, pct);
  *out += buf;
  for (const auto& c : n.children) {
    RenderText(c, depth + 1, total_us, out);
  }
}

Json NodeToJson(const ProfileNode& n) {
  JsonObject o;
  o.emplace_back("name", Json(n.name));
  o.emplace_back("count", Json(n.count));
  o.emplace_back("inclusive_us", Json(n.inclusive_us));
  o.emplace_back("exclusive_us", Json(n.exclusive_us));
  if (!n.children.empty()) {
    JsonArray kids;
    kids.reserve(n.children.size());
    for (const auto& c : n.children) kids.push_back(NodeToJson(c));
    o.emplace_back("children", Json(std::move(kids)));
  }
  return Json(std::move(o));
}

}  // namespace

const ProfileNode* ProfileNode::Child(const std::string& child_name) const {
  for (const auto& c : children) {
    if (c.name == child_name) return &c;
  }
  return nullptr;
}

PhaseProfile PhaseProfile::FromTrace(const Trace& trace) {
  return FromEvents(trace.Events());
}

PhaseProfile PhaseProfile::FromEvents(std::vector<TraceEvent> events) {
  // Keep complete events only and order them by start time so that a
  // parent (which starts no later than its children) is visited before
  // its descendants; ties (identical timestamps) break by nesting depth.
  events.erase(std::remove_if(events.begin(), events.end(),
                              [](const TraceEvent& e) {
                                return e.phase != 'X';
                              }),
               events.end());
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return a.depth < b.depth;
                   });

  BuildNode forest;  // children act as the root set
  // Lineage of the event last seen at each depth, per recording thread.
  // Spans record their depth at construction, so an event at depth d is
  // a child of the most recent event at depth d-1 (or a root at d == 0).
  std::vector<BuildNode*> stack;
  int stack_tid = -1;
  for (const auto& ev : events) {
    if (ev.tid != stack_tid) {
      stack.clear();
      stack_tid = ev.tid;
    }
    // Pop back to the event's depth; an orphaned depth (its parent span
    // had not ended when the trace was snapshotted) attaches at the
    // deepest known level instead.
    const size_t depth = static_cast<size_t>(std::max(ev.depth, 0));
    stack.resize(std::min(depth, stack.size()));
    BuildNode* parent = stack.empty() ? &forest : stack.back();
    BuildNode* node = parent->ChildOrCreate(ev.name);
    node->count += 1;
    node->inclusive_us += ev.dur_us;
    stack.push_back(node);
  }

  PhaseProfile p;
  p.roots_.reserve(forest.children.size());
  for (const auto& r : forest.children) {
    p.roots_.push_back(Finalize(*r));
    p.total_us_ += r->inclusive_us;
  }
  return p;
}

const ProfileNode* PhaseProfile::Find(
    const std::vector<std::string>& path) const {
  if (path.empty()) return nullptr;
  const ProfileNode* node = nullptr;
  const std::vector<ProfileNode>* level = &roots_;
  for (const auto& name : path) {
    node = nullptr;
    for (const auto& cand : *level) {
      if (cand.name == name) {
        node = &cand;
        break;
      }
    }
    if (node == nullptr) return nullptr;
    level = &node->children;
  }
  return node;
}

std::string PhaseProfile::ToText() const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "phase profile (total %.3f ms)\n",
                total_us_ / 1e3);
  out += buf;
  std::snprintf(buf, sizeof(buf), "  %-38s %8s %12s %12s %7s\n", "phase",
                "calls", "incl ms", "excl ms", "excl%");
  out += buf;
  for (const auto& r : roots_) RenderText(r, 0, total_us_, &out);
  return out;
}

Json PhaseProfile::ToJsonValue() const {
  JsonObject root;
  root.emplace_back("total_us", Json(total_us_));
  JsonArray phases;
  phases.reserve(roots_.size());
  for (const auto& r : roots_) phases.push_back(NodeToJson(r));
  root.emplace_back("phases", Json(std::move(phases)));
  return Json(std::move(root));
}

bool PhaseProfile::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = ToJson(1);
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  return std::fclose(f) == 0 && written == body.size();
}

}  // namespace obs
}  // namespace sparkopt
