#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_safety.h"
#include "obs/json.h"

/// \file metrics.h
/// \brief Named counters, gauges and log-scale histograms.
///
/// All instruments are updated with relaxed atomics, so concurrent
/// sessions (e.g. the simulator running several queries at once) can
/// record without contention. A `MetricsRegistry` owns the instruments;
/// handles returned by `counter()`/`gauge()`/`histogram()` stay valid for
/// the registry's lifetime, so hot loops should look an instrument up
/// once and reuse the pointer.
///
/// Histograms use fixed log-scale buckets (kSubBuckets buckets per
/// doubling), so `Percentile()` carries a bounded relative error of
/// 2^(1/(2*kSubBuckets)) - 1 (< 4.5% with the default 8 sub-buckets)
/// while `Observe()` stays a branch, a log2 and one relaxed increment.

namespace sparkopt {
namespace obs {

/// \brief Monotonic counter.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// \brief Last-value gauge (also supports additive updates).
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  void Add(double delta);
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// \brief Fixed-bucket log-scale histogram of positive doubles.
///
/// Bucket 0 catches values <= kFirstBound; the last bucket catches
/// overflow. Unit-agnostic: callers pick seconds, microseconds, bytes...
class Histogram {
 public:
  /// Buckets per doubling of the value; drives percentile accuracy.
  static constexpr int kSubBuckets = 8;
  /// Doublings covered above kFirstBound.
  static constexpr int kOctaves = 56;
  static constexpr int kNumBuckets = 2 + kSubBuckets * kOctaves;
  /// Upper bound of bucket 0 (2^-20, ~9.5e-7): microsecond resolution
  /// when recording seconds, sub-nanosecond when recording microseconds.
  static constexpr double kFirstBound = 9.5367431640625e-07;

  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const;
  /// Value at quantile `q` in [0, 1] (geometric bucket midpoint; see the
  /// file comment for the error bound). Returns 0 when empty.
  double Percentile(double q) const;

  /// Raw bucket counts (for serialization and tests).
  std::vector<uint64_t> BucketCounts() const;
  /// Upper bound of bucket `i` (inclusive); +inf for the overflow bucket.
  static double BucketUpperBound(int i);

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time view of one histogram, used in snapshots and reports.
struct HistogramStats {
  uint64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// \brief Thread-safe owner of named instruments.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. Handles remain valid while the registry lives.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Find-only; nullptr when the instrument was never touched.
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;

  HistogramStats StatsOf(std::string_view name) const;
  uint64_t CounterValue(std::string_view name) const;
  double GaugeValue(std::string_view name) const;

  /// Point-in-time snapshots of every instrument, in sorted name order —
  /// the iteration surface for exporters (openmetrics.h). Histogram
  /// pointers stay valid for the registry's lifetime.
  std::vector<std::pair<std::string, uint64_t>> CounterEntries() const;
  std::vector<std::pair<std::string, double>> GaugeEntries() const;
  std::vector<std::pair<std::string, const Histogram*>> HistogramEntries()
      const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  ///  {count, sum, mean, p50, p95, p99}}}, names sorted.
  Json ToJsonValue() const;
  std::string ToJson(int indent = 0) const { return ToJsonValue().Dump(indent); }

 private:
  mutable SharedMutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      SPARKOPT_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      SPARKOPT_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      SPARKOPT_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace sparkopt
