#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace sparkopt {
namespace obs {

namespace {

void AppendNumber(std::string* out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no Infinity/NaN; null is the least-surprising encoding.
    out->append("null");
    return;
  }
  char buf[32];
  // Integers (the common case: counters, counts) print without a
  // fractional part; everything else keeps full round-trip precision.
  if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out->append(buf);
}

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Result<Json> Run() {
    auto v = ParseValue();
    if (!v.ok()) return v;
    SkipWs();
    if (pos_ != s_.size()) {
      return Status::InvalidArgument("json: trailing characters at offset " +
                                     std::to_string(pos_));
    }
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  Status Fail(const std::string& what) {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Json> ParseValue() {
    SkipWs();
    if (pos_ >= s_.size()) return Fail("unexpected end of input");
    const char c = s_[pos_];
    switch (c) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': {
        auto str = ParseString();
        if (!str.ok()) return str.status();
        return Json(std::move(*str));
      }
      case 't':
        if (s_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          return Json(true);
        }
        return Fail("bad literal");
      case 'f':
        if (s_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          return Json(false);
        }
        return Fail("bad literal");
      case 'n':
        if (s_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          return Json();
        }
        return Fail("bad literal");
      default: return ParseNumber();
    }
  }

  Result<Json> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool any = false;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
      any = true;
    }
    if (!any) return Fail("bad number");
    const std::string tok = s_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("bad number");
    return Json(v);
  }

  Result<std::string> ParseString() {
    SkipWs();
    if (pos_ >= s_.size() || s_[pos_] != '"') return Fail("expected string");
    ++pos_;
    std::string out;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) break;
      const char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return Fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // Basic-plane UTF-8 encoding (no surrogate-pair support).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  Result<Json> ParseArray() {
    ++pos_;  // '['
    JsonArray arr;
    SkipWs();
    if (Consume(']')) return Json(std::move(arr));
    while (true) {
      auto v = ParseValue();
      if (!v.ok()) return v;
      arr.push_back(std::move(*v));
      if (Consume(',')) continue;
      if (Consume(']')) return Json(std::move(arr));
      return Fail("expected ',' or ']'");
    }
  }

  Result<Json> ParseObject() {
    ++pos_;  // '{'
    JsonObject obj;
    SkipWs();
    if (Consume('}')) return Json(std::move(obj));
    while (true) {
      auto key = ParseString();
      if (!key.ok()) return key.status();
      if (!Consume(':')) return Fail("expected ':'");
      auto v = ParseValue();
      if (!v.ok()) return v;
      obj.emplace_back(std::move(*key), std::move(*v));
      if (Consume(',')) continue;
      if (Consume('}')) return Json(std::move(obj));
      return Fail("expected ',' or '}'");
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

std::string JsonQuote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out.append("\\\""); break;
      case '\\': out.append("\\\\"); break;
      case '\b': out.append("\\b"); break;
      case '\f': out.append("\\f"); break;
      case '\n': out.append("\\n"); break;
      case '\r': out.append("\\r"); break;
      case '\t': out.append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out.append(buf);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

const Json* Json::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Json::GetNumber(const std::string& key, double fallback) const {
  const Json* v = Find(key);
  return v != nullptr && v->is_number() ? v->as_double() : fallback;
}

std::string Json::GetString(const std::string& key,
                            std::string fallback) const {
  const Json* v = Find(key);
  return v != nullptr && v->is_string() ? v->as_string()
                                        : std::move(fallback);
}

void Json::Set(std::string key, Json value) {
  if (type_ != Type::kObject) {
    type_ = Type::kObject;
    obj_.clear();
  }
  obj_.emplace_back(std::move(key), std::move(value));
}

void Json::DumpTo(std::string* out, int indent, int depth) const {
  std::string pad, pad_close;
  if (indent > 0) {
    pad.assign(1, '\n');
    pad.append(static_cast<size_t>(indent) * (depth + 1), ' ');
    pad_close.assign(1, '\n');
    pad_close.append(static_cast<size_t>(indent) * depth, ' ');
  }
  switch (type_) {
    case Type::kNull: out->append("null"); break;
    case Type::kBool: out->append(bool_ ? "true" : "false"); break;
    case Type::kNumber: AppendNumber(out, num_); break;
    case Type::kString: out->append(JsonQuote(str_)); break;
    case Type::kArray: {
      if (arr_.empty()) {
        out->append("[]");
        break;
      }
      out->push_back('[');
      for (size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out->push_back(',');
        out->append(pad);
        arr_[i].DumpTo(out, indent, depth + 1);
      }
      out->append(pad_close);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        out->append("{}");
        break;
      }
      out->push_back('{');
      for (size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out->push_back(',');
        out->append(pad);
        out->append(JsonQuote(obj_[i].first));
        out->append(indent > 0 ? ": " : ":");
        obj_[i].second.DumpTo(out, indent, depth + 1);
      }
      out->append(pad_close);
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

Result<Json> Json::Parse(const std::string& text) {
  return Parser(text).Run();
}

}  // namespace obs
}  // namespace sparkopt
