#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

/// \file json.h
/// \brief A minimal JSON value: enough to serialize metrics, traces and
/// tuning reports, and to parse them back for round-trips and validation.
///
/// This is deliberately small — no streaming, no comments, no surrogate
/// pairs — because the only producers and consumers are this repository's
/// own exporters and tests. Numbers are stored as double; object keys
/// keep insertion order so serialized output is stable across runs.

namespace sparkopt {
namespace obs {

class Json;
using JsonArray = std::vector<Json>;
/// Insertion-ordered object representation.
using JsonObject = std::vector<std::pair<std::string, Json>>;

/// \brief A JSON value (null, bool, number, string, array or object).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}          // NOLINT
  Json(double v) : type_(Type::kNumber), num_(v) {}       // NOLINT
  Json(int v) : Json(static_cast<double>(v)) {}           // NOLINT
  Json(int64_t v) : Json(static_cast<double>(v)) {}       // NOLINT
  Json(uint64_t v) : Json(static_cast<double>(v)) {}      // NOLINT
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT
  Json(const char* s) : Json(std::string(s)) {}           // NOLINT
  Json(JsonArray a) : type_(Type::kArray), arr_(std::move(a)) {}     // NOLINT
  Json(JsonObject o) : type_(Type::kObject), obj_(std::move(o)) {}   // NOLINT

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_double() const { return num_; }
  int64_t as_int() const { return static_cast<int64_t>(num_); }
  const std::string& as_string() const { return str_; }
  const JsonArray& as_array() const { return arr_; }
  const JsonObject& as_object() const { return obj_; }
  JsonArray& as_array() { return arr_; }
  JsonObject& as_object() { return obj_; }

  /// Object lookup; returns nullptr when absent or not an object.
  const Json* Find(const std::string& key) const;
  /// Object lookup with a default for absent keys.
  double GetNumber(const std::string& key, double fallback = 0.0) const;
  std::string GetString(const std::string& key,
                        std::string fallback = "") const;

  /// Appends a key/value pair (object values only).
  void Set(std::string key, Json value);

  /// Serializes; `indent` > 0 pretty-prints with that many spaces.
  std::string Dump(int indent = 0) const;

  /// Parses a complete JSON document (trailing garbage is an error).
  static Result<Json> Parse(const std::string& text);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  JsonArray arr_;
  JsonObject obj_;
};

/// Escapes a string for embedding in JSON output (adds quotes).
std::string JsonQuote(const std::string& s);

}  // namespace obs
}  // namespace sparkopt
