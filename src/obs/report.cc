#include "obs/report.h"

#include <algorithm>
#include <cstdio>

namespace sparkopt {
namespace obs {

namespace {

std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

Json HistToJson(const HistogramStats& st) {
  JsonObject o;
  o.emplace_back("count", Json(st.count));
  o.emplace_back("sum", Json(st.sum));
  o.emplace_back("mean", Json(st.mean));
  o.emplace_back("p50", Json(st.p50));
  o.emplace_back("p95", Json(st.p95));
  o.emplace_back("p99", Json(st.p99));
  return Json(std::move(o));
}

HistogramStats HistFromJson(const Json* j) {
  HistogramStats st;
  if (j == nullptr || !j->is_object()) return st;
  st.count = static_cast<uint64_t>(j->GetNumber("count"));
  st.sum = j->GetNumber("sum");
  st.mean = j->GetNumber("mean");
  st.p50 = j->GetNumber("p50");
  st.p95 = j->GetNumber("p95");
  st.p99 = j->GetNumber("p99");
  return st;
}

}  // namespace

double TuningReport::RuntimeResolveSeconds() const {
  double total = 0.0;
  for (const auto& r : runtime_resolves) total += r.seconds;
  return total;
}

std::string TuningReport::ToText() const {
  std::string out;
  out += "==== TuningReport: " + query + " [" + method + "] ====\n";
  out += "compile-time solve : " + Fmt("%.4f", compile_solve_seconds) +
         " s  (" + std::to_string(compile_evaluations) + " model evals)\n";
  out += "runtime re-solves  : " +
         std::to_string(runtime_resolves.size()) + " (" +
         Fmt("%.4f", RuntimeResolveSeconds()) + " s inside solver, " +
         Fmt("%.4f", runtime_overhead_seconds) + " s simulated round-trips)\n";
  out += "  requests         : LQP " + std::to_string(lqp_sent) + " sent / " +
         std::to_string(lqp_pruned) + " pruned, QS " +
         std::to_string(qs_sent) + " sent / " + std::to_string(qs_pruned) +
         " pruned\n";
  for (const auto& r : runtime_resolves) {
    out += "  - " + r.kind + " re-solve at " + Fmt("%.3f", r.at_seconds) +
           " s: " + Fmt("%.4f", r.seconds) + " s\n";
  }
  out += "model inference    : " + std::to_string(model_inferences) +
         " calls, p50 " + Fmt("%.1f", inference_us.p50) + " us, p95 " +
         Fmt("%.1f", inference_us.p95) + " us, p99 " +
         Fmt("%.1f", inference_us.p99) + " us\n";
  out += "simulator          : " + std::to_string(sim_stages) + " stages, " +
         std::to_string(sim_tasks) + " tasks (" +
         std::to_string(sim_spilled_tasks) + " spilled), shuffle read " +
         Fmt("%.1f", sim_shuffle_read_bytes / (1024.0 * 1024.0)) +
         " MB, io " + Fmt("%.1f", sim_io_bytes / (1024.0 * 1024.0)) +
         " MB\n";
  out += "adaptive execution : " + std::to_string(aqe_waves) + " waves, " +
         std::to_string(aqe_replans) + " re-plans\n";
  out += "pareto front       : " + std::to_string(pareto_size) +
         " solutions; chosen latency " + Fmt("%.3f", chosen[0]) +
         " s, cost $" + Fmt("%.4f", chosen[1]) + "\n";
  if (!pareto.empty()) {
    std::array<double, 2> lo = pareto.front();
    std::array<double, 2> hi = pareto.front();
    for (const auto& p : pareto) {
      for (int d = 0; d < 2; ++d) {
        lo[d] = std::min(lo[d], p[d]);
        hi[d] = std::max(hi[d], p[d]);
      }
    }
    out += "  front range      : latency [" + Fmt("%.3f", lo[0]) + ", " +
           Fmt("%.3f", hi[0]) + "] s, cost [$" + Fmt("%.4f", lo[1]) +
           ", $" + Fmt("%.4f", hi[1]) + "]\n";
  }
  out += "executed           : latency " + Fmt("%.3f", exec_latency_seconds) +
         " s, cost $" + Fmt("%.4f", exec_cost_dollars) + "\n";
  return out;
}

Json TuningReport::ToJsonValue() const {
  JsonObject root;
  root.emplace_back("query", Json(query));
  root.emplace_back("method", Json(method));

  JsonObject compile;
  compile.emplace_back("solve_seconds", Json(compile_solve_seconds));
  compile.emplace_back("evaluations", Json(compile_evaluations));
  root.emplace_back("compile", Json(std::move(compile)));

  JsonObject runtime;
  JsonArray resolves;
  for (const auto& r : runtime_resolves) {
    JsonObject o;
    o.emplace_back("kind", Json(r.kind));
    o.emplace_back("seconds", Json(r.seconds));
    o.emplace_back("at_seconds", Json(r.at_seconds));
    resolves.push_back(Json(std::move(o)));
  }
  runtime.emplace_back("resolves", Json(std::move(resolves)));
  runtime.emplace_back("overhead_seconds", Json(runtime_overhead_seconds));
  runtime.emplace_back("lqp_sent", Json(lqp_sent));
  runtime.emplace_back("lqp_pruned", Json(lqp_pruned));
  runtime.emplace_back("qs_sent", Json(qs_sent));
  runtime.emplace_back("qs_pruned", Json(qs_pruned));
  root.emplace_back("runtime", Json(std::move(runtime)));

  JsonObject model;
  model.emplace_back("inferences", Json(model_inferences));
  model.emplace_back("latency_us", HistToJson(inference_us));
  root.emplace_back("model", Json(std::move(model)));

  JsonObject sim;
  sim.emplace_back("stages", Json(sim_stages));
  sim.emplace_back("tasks", Json(sim_tasks));
  sim.emplace_back("spilled_tasks", Json(sim_spilled_tasks));
  sim.emplace_back("shuffle_read_bytes", Json(sim_shuffle_read_bytes));
  sim.emplace_back("io_bytes", Json(sim_io_bytes));
  sim.emplace_back("aqe_waves", Json(aqe_waves));
  sim.emplace_back("aqe_replans", Json(aqe_replans));
  root.emplace_back("simulator", Json(std::move(sim)));

  JsonObject outcome;
  outcome.emplace_back("pareto_size", Json(pareto_size));
  JsonArray front;
  for (const auto& p : pareto) {
    front.push_back(Json(JsonArray{Json(p[0]), Json(p[1])}));
  }
  outcome.emplace_back("pareto", Json(std::move(front)));
  outcome.emplace_back(
      "chosen", Json(JsonArray{Json(chosen[0]), Json(chosen[1])}));
  outcome.emplace_back("exec_latency_seconds", Json(exec_latency_seconds));
  outcome.emplace_back("exec_cost_dollars", Json(exec_cost_dollars));
  root.emplace_back("outcome", Json(std::move(outcome)));
  return Json(std::move(root));
}

Result<TuningReport> TuningReport::FromJson(const std::string& text) {
  auto parsed = Json::Parse(text);
  if (!parsed.ok()) return parsed.status();
  const Json& j = *parsed;
  if (!j.is_object()) {
    return Status::InvalidArgument("TuningReport: not a JSON object");
  }
  TuningReport r;
  r.query = j.GetString("query");
  r.method = j.GetString("method");

  if (const Json* compile = j.Find("compile")) {
    r.compile_solve_seconds = compile->GetNumber("solve_seconds");
    r.compile_evaluations =
        static_cast<uint64_t>(compile->GetNumber("evaluations"));
  }
  if (const Json* runtime = j.Find("runtime")) {
    if (const Json* resolves = runtime->Find("resolves");
        resolves != nullptr && resolves->is_array()) {
      for (const Json& o : resolves->as_array()) {
        ResolveRecord rec;
        rec.kind = o.GetString("kind");
        rec.seconds = o.GetNumber("seconds");
        rec.at_seconds = o.GetNumber("at_seconds");
        r.runtime_resolves.push_back(std::move(rec));
      }
    }
    r.runtime_overhead_seconds = runtime->GetNumber("overhead_seconds");
    r.lqp_sent = static_cast<int64_t>(runtime->GetNumber("lqp_sent"));
    r.lqp_pruned = static_cast<int64_t>(runtime->GetNumber("lqp_pruned"));
    r.qs_sent = static_cast<int64_t>(runtime->GetNumber("qs_sent"));
    r.qs_pruned = static_cast<int64_t>(runtime->GetNumber("qs_pruned"));
  }
  if (const Json* model = j.Find("model")) {
    r.model_inferences =
        static_cast<uint64_t>(model->GetNumber("inferences"));
    r.inference_us = HistFromJson(model->Find("latency_us"));
  }
  if (const Json* sim = j.Find("simulator")) {
    r.sim_stages = static_cast<int64_t>(sim->GetNumber("stages"));
    r.sim_tasks = static_cast<int64_t>(sim->GetNumber("tasks"));
    r.sim_spilled_tasks =
        static_cast<int64_t>(sim->GetNumber("spilled_tasks"));
    r.sim_shuffle_read_bytes = sim->GetNumber("shuffle_read_bytes");
    r.sim_io_bytes = sim->GetNumber("io_bytes");
    r.aqe_waves = static_cast<int64_t>(sim->GetNumber("aqe_waves"));
    r.aqe_replans = static_cast<int64_t>(sim->GetNumber("aqe_replans"));
  }
  if (const Json* outcome = j.Find("outcome")) {
    r.pareto_size = static_cast<size_t>(outcome->GetNumber("pareto_size"));
    if (const Json* front = outcome->Find("pareto");
        front != nullptr && front->is_array()) {
      for (const Json& p : front->as_array()) {
        if (p.is_array() && p.as_array().size() == 2) {
          r.pareto.push_back({p.as_array()[0].as_double(),
                              p.as_array()[1].as_double()});
        }
      }
    }
    if (const Json* chosen = outcome->Find("chosen");
        chosen != nullptr && chosen->is_array() &&
        chosen->as_array().size() == 2) {
      r.chosen = {chosen->as_array()[0].as_double(),
                  chosen->as_array()[1].as_double()};
    }
    r.exec_latency_seconds = outcome->GetNumber("exec_latency_seconds");
    r.exec_cost_dollars = outcome->GetNumber("exec_cost_dollars");
  }
  return r;
}

}  // namespace obs
}  // namespace sparkopt
