#include "obs/openmetrics.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>

namespace sparkopt {
namespace obs {

namespace {

void AppendDouble(std::string* out, double v) {
  char buf[48];
  // %.17g round-trips any double; OpenMetrics floats are Go-style
  // decimals, which this subset satisfies.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

void AppendCounterValue(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

}  // namespace

std::string OpenMetricsName(std::string_view name, std::string_view prefix) {
  std::string out(prefix);
  for (char c : name) {
    const bool ok = (std::isalnum(static_cast<unsigned char>(c)) != 0) ||
                    c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string ToOpenMetricsText(const MetricsRegistry& registry,
                              std::string_view prefix) {
  // Registry names are dotted and distinct; the sanitizer is injective
  // on that namespace (every '.' maps to '_' and no instrument uses
  // '_'-vs-'.' homographs), so families never collide.
  std::string out;

  for (const auto& [name, value] : registry.CounterEntries()) {
    const std::string fam = OpenMetricsName(name, prefix);
    out += "# TYPE " + fam + " counter\n";
    out += fam + "_total ";
    AppendCounterValue(&out, value);
    out += '\n';
  }

  for (const auto& [name, value] : registry.GaugeEntries()) {
    const std::string fam = OpenMetricsName(name, prefix);
    out += "# TYPE " + fam + " gauge\n";
    out += fam + ' ';
    AppendDouble(&out, value);
    out += '\n';
  }

  for (const auto& [name, hist] : registry.HistogramEntries()) {
    const std::string fam = OpenMetricsName(name, prefix);
    out += "# TYPE " + fam + " histogram\n";
    // One atomic-free pass over a bucket snapshot; +Inf and _count come
    // from the snapshot's own sum (not count()) so a concurrently
    // updated histogram still exposes internally consistent cumulative
    // counts.
    const auto buckets = hist->BucketCounts();
    uint64_t cumulative = 0;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      if (buckets[i] == 0) continue;  // sparse: skip empty buckets
      cumulative += buckets[i];
      if (i == Histogram::kNumBuckets - 1) break;  // folded into +Inf
      out += fam + "_bucket{le=\"";
      AppendDouble(&out, Histogram::BucketUpperBound(i));
      out += "\"} ";
      AppendCounterValue(&out, cumulative);
      out += '\n';
    }
    out += fam + "_bucket{le=\"+Inf\"} ";
    AppendCounterValue(&out, cumulative);
    out += '\n';
    out += fam + "_sum ";
    AppendDouble(&out, hist->sum());
    out += '\n';
    out += fam + "_count ";
    AppendCounterValue(&out, cumulative);
    out += '\n';
  }

  out += "# EOF\n";
  return out;
}

}  // namespace obs
}  // namespace sparkopt
