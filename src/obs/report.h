#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

/// \file report.h
/// \brief `TuningReport`: the end-to-end record of one tuning session —
/// where the time went, what the models cost, what the simulator did,
/// and what was chosen from the Pareto front — rendered as
/// human-readable text and JSON (round-trippable via FromJson).
///
/// The report is plain data plus serialization so `obs` stays a leaf
/// library; `BuildTuningReport` in tuner/tuner.h fills it from a
/// `TuningOutcome` and the session's metrics and trace.

namespace sparkopt {
namespace obs {

/// One runtime re-solve observed during adaptive execution.
struct ResolveRecord {
  std::string kind;       ///< "lqp" (collapsed-plan) or "qs" (query-stage)
  double seconds = 0.0;   ///< time spent inside the re-solve
  double at_seconds = 0.0;  ///< session time when it started
};

/// \brief Aggregated observability record of one optimize→execute session.
struct TuningReport {
  // ---- Identity --------------------------------------------------------
  std::string query;
  std::string method;

  // ---- Compile-time solving -------------------------------------------
  double compile_solve_seconds = 0.0;
  uint64_t compile_evaluations = 0;

  // ---- Runtime re-optimization ----------------------------------------
  std::vector<ResolveRecord> runtime_resolves;
  double runtime_overhead_seconds = 0.0;
  int64_t lqp_sent = 0, lqp_pruned = 0;
  int64_t qs_sent = 0, qs_pruned = 0;

  // ---- Model inference -------------------------------------------------
  uint64_t model_inferences = 0;
  HistogramStats inference_us;

  // ---- Simulated execution --------------------------------------------
  int64_t sim_stages = 0;
  int64_t sim_tasks = 0;
  int64_t sim_spilled_tasks = 0;
  double sim_shuffle_read_bytes = 0.0;
  double sim_io_bytes = 0.0;
  int64_t aqe_waves = 0;
  int64_t aqe_replans = 0;

  // ---- Outcome ---------------------------------------------------------
  size_t pareto_size = 0;
  std::vector<std::array<double, 2>> pareto;  ///< {latency, cost} points
  std::array<double, 2> chosen{0.0, 0.0};     ///< WUN-picked objectives
  double exec_latency_seconds = 0.0;
  double exec_cost_dollars = 0.0;

  /// Total time spent in runtime re-solves (sum over runtime_resolves).
  double RuntimeResolveSeconds() const;

  std::string ToText() const;
  Json ToJsonValue() const;
  std::string ToJson(int indent = 2) const { return ToJsonValue().Dump(indent); }
  static Result<TuningReport> FromJson(const std::string& text);
};

}  // namespace obs
}  // namespace sparkopt
