#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.h"

/// \file openmetrics.h
/// \brief OpenMetrics v1.0 text exposition of a `MetricsRegistry` —
/// the scrape surface for the tuning daemon the ROADMAP grows toward.
///
/// Maps the registry's instruments onto the three matching OpenMetrics
/// families:
///  - Counter  -> `counter`:   `<name>_total <value>`
///  - Gauge    -> `gauge`:     `<name> <value>`
///  - Histogram-> `histogram`: cumulative `<name>_bucket{le="..."}` lines
///    (only occupied buckets are materialized — the log-scale layout has
///    450 fixed buckets, almost all empty — plus the mandatory
///    `le="+Inf"`), then `<name>_sum` and `<name>_count`.
///
/// Instrument names are sanitized to the OpenMetrics charset
/// ([a-zA-Z0-9_:], no leading digit): the registry's dotted names map
/// `.` and other invalid characters to `_`, and every family is prefixed
/// (default `sparkopt_`). Families are emitted in registry (sorted name)
/// order, each preceded by its `# TYPE` line, and the exposition ends
/// with the mandatory `# EOF`. Values are printed with enough precision
/// (%.17g) to round-trip doubles exactly.

namespace sparkopt {
namespace obs {

/// Sanitizes one metric name for OpenMetrics (prefix + charset mapping).
std::string OpenMetricsName(std::string_view name,
                            std::string_view prefix = "sparkopt_");

/// Renders the whole registry as an OpenMetrics v1.0 exposition,
/// terminated by `# EOF\n`.
std::string ToOpenMetricsText(const MetricsRegistry& registry,
                              std::string_view prefix = "sparkopt_");

}  // namespace obs
}  // namespace sparkopt
