#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/trace.h"

/// \file profile.h
/// \brief Phase profiles: folds the flat `obs::Span` event stream of a
/// session into an aggregated call tree with inclusive/exclusive times.
///
/// A `Trace` records one `TraceEvent` per span; this module groups the
/// events by call path (the stack of enclosing span names), so repeated
/// phases — the per-wave AQE re-plans, the per-candidate DAG merges —
/// collapse into one node each with a call count. Per node it reports
///  - inclusive time: total time with the phase on the stack,
///  - exclusive time: inclusive minus the children's inclusive time
///    (the phase's own cost, which sums to the roots' inclusive time
///    across the whole tree — nothing is double-counted),
///  - call count and the child breakdown in first-seen order.
///
/// Profiles are built after the fact from a `Trace` snapshot, so the
/// recording hot path stays exactly what trace.h documents: one relaxed
/// load when no session is installed, two clock reads plus an event
/// append when one is. Renderers: an indented text table for humans and
/// a JSON tree (parseable by obs::Json) for CI artifacts.

namespace sparkopt {
namespace obs {

/// One aggregated phase: every span with the same call path.
struct ProfileNode {
  std::string name;          ///< span name (trace.h `Span(name)`)
  uint64_t count = 0;        ///< number of spans folded into this node
  double inclusive_us = 0.0; ///< total time with this phase on the stack
  double exclusive_us = 0.0; ///< inclusive minus children's inclusive
  std::vector<ProfileNode> children;  ///< first-seen order

  /// Direct child by name; nullptr when absent.
  const ProfileNode* Child(const std::string& child_name) const;
};

/// \brief Aggregated per-session phase profile.
class PhaseProfile {
 public:
  /// Builds a profile from a trace snapshot. Only complete ('X') events
  /// participate; instant events carry no duration. Events from
  /// different recording threads aggregate into the same root set (in
  /// practice spans are main-thread-only, so one thread contributes).
  static PhaseProfile FromTrace(const Trace& trace);
  static PhaseProfile FromEvents(std::vector<TraceEvent> events);

  const std::vector<ProfileNode>& roots() const { return roots_; }

  /// Sum of the roots' inclusive time == sum of every node's exclusive
  /// time (the telescoping identity the renderers print percentages of).
  double total_us() const { return total_us_; }

  /// Node at the given call path from a root, e.g.
  /// `Find({"hmooc.solve", "hmooc.dag_merge"})`; nullptr when absent.
  const ProfileNode* Find(const std::vector<std::string>& path) const;

  /// Indented table: phase, calls, inclusive/exclusive ms, exclusive %.
  std::string ToText() const;

  /// {"total_us": ..., "phases": [{name, count, inclusive_us,
  ///  exclusive_us, children: [...]}, ...]}
  Json ToJsonValue() const;
  std::string ToJson(int indent = 1) const { return ToJsonValue().Dump(indent); }

  /// Writes ToJson() to `path`; false on IO failure.
  bool WriteJson(const std::string& path) const;

 private:
  std::vector<ProfileNode> roots_;
  double total_us_ = 0.0;
};

}  // namespace obs
}  // namespace sparkopt
