#pragma once

#include <vector>

#include "common/status.h"
#include "params/spark_params.h"
#include "plan/logical_plan.h"

/// \file physical_plan.h
/// \brief Physical query plans: the result of applying Spark's parametric
/// optimization rules (join-algorithm selection via s3/s4, partition
/// sizing via s1/s5/s8/s9, skew splitting via s6/s7) to a logical plan
/// under a concrete configuration.
///
/// A physical plan is a DAG of query stages (QS). Broadcast hash joins
/// merge the join into its probe child's stage and turn the build child's
/// stage into a broadcast dependency, exactly the structural change AQE
/// exploits at runtime.

namespace sparkopt {

/// Join algorithm chosen by the parametric rules.
enum class JoinAlgo {
  kSortMergeJoin = 0,   ///< SMJ: shuffle both sides, sort, merge
  kShuffledHashJoin,    ///< SHJ: shuffle both sides, hash the build side
  kBroadcastHashJoin    ///< BHJ: broadcast the build side, pipeline probe
};

const char* JoinAlgoName(JoinAlgo a);

/// Per-join decision record (op id -> algorithm), for inspection and for
/// the Figure 3(b) analysis.
struct JoinDecision {
  int op_id = -1;
  JoinAlgo algo = JoinAlgo::kSortMergeJoin;
  double build_side_mb = 0.0;  ///< believed build-side size at decision time
  int build_op = -1;           ///< logical op id of the chosen build side
};

/// \brief One executable query stage.
struct QueryStage {
  int id = -1;
  int subq_id = -1;            ///< canonical subQ this stage realizes
  std::vector<int> op_ids;     ///< logical operators executed here
  std::vector<int> deps;       ///< stages shuffled into this one
  std::vector<int> broadcast_deps;  ///< stages broadcast into this one

  int num_partitions = 1;      ///< number of parallel tasks
  /// Per-partition input bytes after partitioning rules (skew split,
  /// coalesce, rebalance). Drives task latencies and the beta features.
  std::vector<double> partition_bytes;

  double input_rows = 0.0;     ///< total rows entering the stage
  double input_bytes = 0.0;    ///< total bytes entering the stage
  double output_rows = 0.0;    ///< rows produced by the stage root
  double output_bytes = 0.0;
  double shuffle_read_bytes = 0.0;   ///< bytes read over the network
  double broadcast_bytes = 0.0;      ///< bytes received via broadcast
  bool is_scan_stage = false;
  bool exchanges_output = true;      ///< writes a shuffle (non-root stages)

  /// Sum over member operators of (per-row CPU weight x rows processed);
  /// the task cost model divides this across partitions.
  double cpu_work = 0.0;
  /// Extra n log n work (sorts, SMJ) already folded into cpu_work, kept
  /// separately for inspection.
  double sort_work = 0.0;
  JoinAlgo join_algo = JoinAlgo::kSortMergeJoin;
  bool has_join = false;
};

/// \brief A physical plan: stage DAG plus join decisions.
struct PhysicalPlan {
  std::vector<QueryStage> stages;
  std::vector<JoinDecision> join_decisions;

  /// Stage ids in dependency (topological) order.
  std::vector<int> ExecutionOrder() const;
  int CountJoins(JoinAlgo algo) const;
};

/// How the planner should read operator cardinalities.
enum class CardinalitySource {
  kEstimated,  ///< compile time: CBO estimates
  kTrue        ///< runtime/oracle: observed cardinalities
};

/// \brief Applies the parametric physical-planning rules.
///
/// `theta_p_per_subq` supplies one PlanParams per canonical subQ
/// (fine-grained tuning); pass a single-element vector for query-level
/// (coarse) control — it is then used for every subQ. `theta_s_per_subq`
/// likewise. `completed_subqs`, if non-empty, marks subQs whose true
/// cardinalities are known (AQE re-planning): operators inside them read
/// true stats regardless of `source`.
class PhysicalPlanner {
 public:
  PhysicalPlanner(const LogicalPlan* plan, std::vector<SubQuery> subqs)
      : plan_(plan), subqs_(std::move(subqs)) {}

  Result<PhysicalPlan> Plan(const ContextParams& theta_c,
                            const std::vector<PlanParams>& theta_p_per_subq,
                            const std::vector<StageParams>& theta_s_per_subq,
                            CardinalitySource source,
                            const std::vector<bool>& completed_subqs = {}) const;

  const std::vector<SubQuery>& subqueries() const { return subqs_; }

 private:
  const LogicalPlan* plan_;
  std::vector<SubQuery> subqs_;
};

/// \brief Builds the per-partition byte distribution for `total_bytes`
/// split into `n` partitions with Zipf-like skew `z` in [0,1] (0 =
/// uniform). Deterministic. Exposed for tests and the beta features.
std::vector<double> SkewedPartitionSizes(double total_bytes, int n, double z);

/// \brief Runtime skew-split rule (s6/s7): splits any partition larger
/// than max(threshold_mb, factor x median) into advisory-sized chunks.
std::vector<double> ApplySkewSplit(std::vector<double> partition_bytes,
                                   double threshold_mb, double factor,
                                   double advisory_mb);

/// \brief Runtime coalesce/rebalance rule (s1, s10, s11): greedily merges
/// adjacent partitions smaller than max(min_size_mb,
/// small_factor x advisory_mb) up to the advisory size.
std::vector<double> ApplyCoalesce(std::vector<double> partition_bytes,
                                  double advisory_mb, double small_factor,
                                  double min_size_mb);

}  // namespace sparkopt
