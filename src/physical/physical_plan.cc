#include "physical/physical_plan.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>

#include "analysis/invariants.h"
#include "common/check.h"

namespace sparkopt {

const char* JoinAlgoName(JoinAlgo a) {
  switch (a) {
    case JoinAlgo::kSortMergeJoin: return "SMJ";
    case JoinAlgo::kShuffledHashJoin: return "SHJ";
    case JoinAlgo::kBroadcastHashJoin: return "BHJ";
  }
  return "?";
}

std::vector<int> PhysicalPlan::ExecutionOrder() const {
  const int n = static_cast<int>(stages.size());
  std::vector<int> in_deg(n, 0);
  std::vector<std::vector<int>> out(n);
  for (const auto& st : stages) {
    for (int d : st.deps) {
      out[d].push_back(st.id);
      ++in_deg[st.id];
    }
    for (int d : st.broadcast_deps) {
      out[d].push_back(st.id);
      ++in_deg[st.id];
    }
  }
  std::vector<int> order, frontier;
  for (int i = 0; i < n; ++i) {
    if (in_deg[i] == 0) frontier.push_back(i);
  }
  std::sort(frontier.begin(), frontier.end());
  while (!frontier.empty()) {
    int u = frontier.front();
    frontier.erase(frontier.begin());
    order.push_back(u);
    for (int v : out[u]) {
      if (--in_deg[v] == 0) {
        frontier.insert(
            std::upper_bound(frontier.begin(), frontier.end(), v), v);
      }
    }
  }
  return order;
}

int PhysicalPlan::CountJoins(JoinAlgo algo) const {
  int n = 0;
  for (const auto& jd : join_decisions) {
    if (jd.algo == algo) ++n;
  }
  return n;
}

std::vector<double> SkewedPartitionSizes(double total_bytes, int n,
                                         double z) {
  n = std::max(n, 1);
  std::vector<double> w(n);
  // Zipf-like weights (i+1)^{-2z}: z=0 -> uniform, z=1 -> strong skew.
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    w[i] = std::pow(static_cast<double>(i + 1), -2.0 * z);
    sum += w[i];
  }
  for (int i = 0; i < n; ++i) {
    w[i] = total_bytes * (w[i] / sum);
  }
  return w;
}

std::vector<double> ApplySkewSplit(std::vector<double> partition_bytes,
                                   double threshold_mb, double factor,
                                   double advisory_mb) {
  if (partition_bytes.empty()) return partition_bytes;
  const double mb = 1024.0 * 1024.0;
  std::vector<double> sorted = partition_bytes;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];
  const double limit =
      std::max(threshold_mb * mb, factor * median);
  const double chunk = std::max(advisory_mb * mb, 1.0 * mb);
  std::vector<double> out;
  out.reserve(partition_bytes.size());
  for (double b : partition_bytes) {
    if (b > limit && b > chunk) {
      const int pieces = static_cast<int>(std::ceil(b / chunk));
      for (int i = 0; i < pieces; ++i) {
        out.push_back(b / pieces);
      }
    } else {
      out.push_back(b);
    }
  }
  return out;
}

std::vector<double> ApplyCoalesce(std::vector<double> partition_bytes,
                                  double advisory_mb, double small_factor,
                                  double min_size_mb) {
  const double mb = 1024.0 * 1024.0;
  const double small =
      std::max(min_size_mb * mb, small_factor * advisory_mb * mb);
  const double target = advisory_mb * mb;
  std::vector<double> out;
  double acc = 0.0;
  for (double b : partition_bytes) {
    if (b < small) {
      acc += b;
      if (acc >= target) {
        out.push_back(acc);
        acc = 0.0;
      }
    } else {
      out.push_back(b);
    }
  }
  if (acc > 0.0) out.push_back(acc);
  if (out.empty()) out.push_back(0.0);
  return out;
}

namespace {

// Per-row CPU weight by operator type (arbitrary but fixed units; the
// cost model converts to seconds via its rows-per-second throughput).
double OpWeight(OpType t) {
  switch (t) {
    case OpType::kScan: return 1.0;
    case OpType::kFilter: return 0.25;
    case OpType::kProject: return 0.15;
    case OpType::kJoin: return 0.0;  // handled per algorithm
    case OpType::kAggregate: return 0.9;
    case OpType::kSort: return 0.0;  // handled as n log n below
    case OpType::kLimit: return 0.05;
    case OpType::kUnion: return 0.1;
    default: return 0.5;
  }
}

double NLogN(double n) {
  return n * std::log2(std::max(n, 2.0));
}

}  // namespace

Result<PhysicalPlan> PhysicalPlanner::Plan(
    const ContextParams& theta_c,
    const std::vector<PlanParams>& theta_p_per_subq,
    const std::vector<StageParams>& theta_s_per_subq,
    CardinalitySource source,
    const std::vector<bool>& completed_subqs) const {
  const auto& plan = *plan_;
  const size_t m = subqs_.size();
  if (theta_p_per_subq.empty() || theta_s_per_subq.empty()) {
    return Status::InvalidArgument("need at least one theta_p and theta_s");
  }
  auto theta_p_of = [&](int subq) -> const PlanParams& {
    return theta_p_per_subq[theta_p_per_subq.size() == 1
                                ? 0
                                : std::min<size_t>(subq, m - 1)];
  };
  auto theta_s_of = [&](int subq) -> const StageParams& {
    return theta_s_per_subq[theta_s_per_subq.size() == 1
                                ? 0
                                : std::min<size_t>(subq, m - 1)];
  };

  // subq id of each operator.
  std::vector<int> subq_of(plan.num_ops(), -1);
  for (const auto& sq : subqs_) {
    for (int op : sq.op_ids) subq_of[op] = sq.id;
  }
  for (size_t i = 0; i < subq_of.size(); ++i) {
    SPARKOPT_DCHECK_GE(subq_of[i], 0)
        << "op " << i << " is not covered by the subQ decomposition";
  }

  auto believed_rows = [&](int op_id) {
    const auto& op = plan.op(op_id);
    const bool truth =
        source == CardinalitySource::kTrue ||
        (subq_of[op_id] < static_cast<int>(completed_subqs.size()) &&
         completed_subqs[subq_of[op_id]]);
    return truth ? op.true_rows : op.est_rows;
  };
  auto believed_bytes = [&](int op_id) {
    const auto& op = plan.op(op_id);
    const bool truth =
        source == CardinalitySource::kTrue ||
        (subq_of[op_id] < static_cast<int>(completed_subqs.size()) &&
         completed_subqs[subq_of[op_id]]);
    return truth ? op.true_bytes : op.est_bytes;
  };

  const double mb = 1024.0 * 1024.0;

  // ---- 1. Join algorithm decisions ------------------------------------
  PhysicalPlan result;
  std::vector<JoinAlgo> algo_of_op(plan.num_ops(), JoinAlgo::kSortMergeJoin);
  std::vector<int> build_child_of(plan.num_ops(), -1);
  for (int id : plan.TopologicalOrder()) {
    const auto& op = plan.op(id);
    if (op.type != OpType::kJoin || op.children.size() < 2) continue;
    const auto& tp = theta_p_of(subq_of[id]);
    // Build side = smaller believed side.
    int build = op.children[0];
    int probe = op.children[1];
    if (believed_bytes(build) > believed_bytes(probe)) std::swap(build, probe);
    const double build_mb = believed_bytes(build) / mb;
    JoinAlgo algo = JoinAlgo::kSortMergeJoin;
    // Non-empty partition ratio of the build side under the planned
    // shuffle partition count: demote BHJ when too few partitions are
    // non-empty relative to s2 (AQE demotion rule).
    const double non_empty_ratio =
        std::min(1.0, believed_rows(build) /
                          std::max(1.0, double(tp.shuffle_partitions)));
    if (build_mb <= tp.broadcast_join_threshold_mb &&
        non_empty_ratio >= tp.non_empty_partition_ratio) {
      algo = JoinAlgo::kBroadcastHashJoin;
    } else if (build_mb <= tp.shuffled_hash_join_threshold_mb) {
      algo = JoinAlgo::kShuffledHashJoin;
    }
    algo_of_op[id] = algo;
    build_child_of[id] = build;
    result.join_decisions.push_back({id, algo, build_mb, build});
  }

  // ---- 2. Stage formation: merge BHJ subQs into their probe stage -----
  // Union-find over subq ids.
  std::vector<int> uf(m);
  std::iota(uf.begin(), uf.end(), 0);
  std::function<int(int)> find = [&](int x) {
    while (uf[x] != x) {
      uf[x] = uf[uf[x]];
      x = uf[x];
    }
    return x;
  };
  auto subq_completed = [&](int sq) {
    return sq < static_cast<int>(completed_subqs.size()) &&
           completed_subqs[sq];
  };
  // subQ-level producer -> consumer edges, for the cycle guard below.
  std::vector<std::vector<int>> subq_consumers(m);
  for (int id = 0; id < plan.num_ops(); ++id) {
    for (int c : plan.op(id).children) {
      if (subq_of[c] != subq_of[id]) {
        subq_consumers[subq_of[c]].push_back(subq_of[id]);
      }
    }
  }
  // True when merging producer group `gp` into consumer group `gj` would
  // create a cycle in the stage graph, i.e. when some other path gp -> gj
  // exists besides the direct edge. This happens when the probe side's
  // exchange is reused by another consumer (e.g. a correlated aggregate
  // over the same join output): the BHJ stage must then read the
  // materialized exchange output instead of collapsing into the probe
  // stage.
  auto would_cycle = [&](int gp, int gj) {
    std::vector<char> seen(m, 0);
    std::vector<int> stack;
    auto push_successors = [&](int g, bool from_start) {
      for (int sq = 0; sq < static_cast<int>(m); ++sq) {
        if (find(sq) != g) continue;
        for (int consumer : subq_consumers[sq]) {
          const int gc = find(consumer);
          if (gc == g || (from_start && gc == gj) || seen[gc]) continue;
          seen[gc] = 1;
          stack.push_back(gc);
        }
      }
    };
    push_successors(gp, /*from_start=*/true);
    while (!stack.empty()) {
      const int g = stack.back();
      stack.pop_back();
      if (g == gj) return true;
      push_successors(g, /*from_start=*/false);
    }
    return false;
  };
  for (int id : plan.TopologicalOrder()) {
    const auto& op = plan.op(id);
    if (op.type != OpType::kJoin ||
        algo_of_op[id] != JoinAlgo::kBroadcastHashJoin) {
      continue;
    }
    const int build = build_child_of[id];
    for (int c : op.children) {
      if (c == build) continue;
      // Merge the join's subQ into the probe child's stage group — but
      // never into a stage that has already executed (AQE re-planning
      // cannot rewrite completed stages; the BHJ then runs in its own
      // stage reading the probe side's materialized shuffle output).
      if (subq_completed(subq_of[id]) || subq_completed(subq_of[c])) {
        continue;
      }
      const int gj = find(subq_of[id]);
      const int gp = find(subq_of[c]);
      if (gj == gp || would_cycle(gp, gj)) continue;
      uf[gj] = gp;
    }
  }

  // Group subQs into stages.
  std::vector<int> stage_of_subq(m, -1);
  for (size_t i = 0; i < m; ++i) {
    const int r = find(static_cast<int>(i));
    if (stage_of_subq[r] == -1) {
      QueryStage st;
      st.id = static_cast<int>(result.stages.size());
      st.subq_id = r;
      result.stages.push_back(st);
      stage_of_subq[r] = st.id;
    }
    stage_of_subq[i] = stage_of_subq[r];
  }
  // Fill member ops in topological order.
  for (int id : plan.TopologicalOrder()) {
    auto& st = result.stages[stage_of_subq[subq_of[id]]];
    st.op_ids.push_back(id);
    const auto& op = plan.op(id);
    if (op.type == OpType::kScan) st.is_scan_stage = true;
    if (op.type == OpType::kJoin) {
      st.has_join = true;
      st.join_algo = algo_of_op[id];
    }
  }

  // ---- 3. Dependencies, IO totals, CPU work ----------------------------
  for (auto& st : result.stages) {
    double skew = 0.0;
    for (int id : st.op_ids) {
      const auto& op = plan.op(id);
      if (op.type == OpType::kScan && op.table_id >= 0) {
        st.input_rows += believed_rows(id) / std::max(op.selectivity, 1e-9);
        st.input_bytes += believed_bytes(id) / std::max(op.selectivity, 1e-9);
      }
      skew = std::max(skew, op.shuffle_skew);
      for (int c : op.children) {
        const int child_stage = stage_of_subq[subq_of[c]];
        if (child_stage == st.id) continue;
        const bool is_broadcast =
            op.type == OpType::kJoin &&
            algo_of_op[id] == JoinAlgo::kBroadcastHashJoin &&
            c == build_child_of[id];
        if (is_broadcast) {
          if (std::find(st.broadcast_deps.begin(), st.broadcast_deps.end(),
                        child_stage) == st.broadcast_deps.end()) {
            st.broadcast_deps.push_back(child_stage);
          }
          st.broadcast_bytes += believed_bytes(c);
        } else {
          if (std::find(st.deps.begin(), st.deps.end(), child_stage) ==
              st.deps.end()) {
            st.deps.push_back(child_stage);
          }
          st.shuffle_read_bytes += believed_bytes(c);
          st.input_rows += believed_rows(c);
          st.input_bytes += believed_bytes(c);
        }
      }
      // CPU work by operator type / join algorithm.
      const double out_rows = believed_rows(id);
      switch (op.type) {
        case OpType::kJoin: {
          const int build = build_child_of[id];
          double build_rows = 0.0, probe_rows = 0.0;
          for (int c : op.children) {
            (c == build ? build_rows : probe_rows) += believed_rows(c);
          }
          switch (algo_of_op[id]) {
            case JoinAlgo::kSortMergeJoin:
              st.sort_work += 0.35 * (NLogN(build_rows) + NLogN(probe_rows)) /
                              std::log2(1e6);
              st.cpu_work += 0.6 * (build_rows + probe_rows) + st.sort_work;
              break;
            case JoinAlgo::kShuffledHashJoin:
              st.cpu_work += 1.0 * build_rows + 0.35 * probe_rows;
              break;
            case JoinAlgo::kBroadcastHashJoin:
              // Hash table built once per executor core group; charged per
              // executor by the cost model via broadcast fields.
              st.cpu_work += 0.4 * probe_rows;
              break;
          }
          st.cpu_work += 0.15 * out_rows;  // output materialization
          break;
        }
        case OpType::kSort:
          st.sort_work += 0.5 * NLogN(out_rows) / std::log2(1e6);
          st.cpu_work += st.sort_work;
          break;
        default: {
          double in_rows = 0.0;
          if (op.type == OpType::kScan) {
            in_rows = believed_rows(id) / std::max(op.selectivity, 1e-9);
          } else {
            for (int c : op.children) in_rows += believed_rows(c);
          }
          st.cpu_work += OpWeight(op.type) * std::max(in_rows, out_rows);
          break;
        }
      }
    }
    const int root_op = st.op_ids.empty() ? -1 : st.op_ids.back();
    if (root_op >= 0) {
      st.output_rows = believed_rows(root_op);
      st.output_bytes = believed_bytes(root_op);
    }

    // ---- 4. Partitioning ------------------------------------------------
    const auto& tp = theta_p_of(st.subq_id);
    const auto& ts = theta_s_of(st.subq_id);
    if (st.is_scan_stage) {
      // Spark's file-split formula: maxSplitBytes = min(s8,
      // max(s9, total/defaultParallelism)).
      const double total = std::max(st.input_bytes, 1.0);
      const double split =
          std::min(tp.max_partition_bytes_mb * mb,
                   std::max(tp.file_open_cost_mb * mb,
                            total / std::max(theta_c.default_parallelism, 1)));
      st.num_partitions = std::max(1, static_cast<int>(std::ceil(
                                          total / std::max(split, 1.0))));
    } else {
      st.num_partitions = std::max(1, tp.shuffle_partitions);
    }
    st.num_partitions = std::min(st.num_partitions, 4096);
    st.partition_bytes =
        SkewedPartitionSizes(st.input_bytes, st.num_partitions, skew);
    if (!st.is_scan_stage) {
      // AQE post-shuffle optimizations on this stage's input partitions.
      if (st.has_join) {
        st.partition_bytes = ApplySkewSplit(
            std::move(st.partition_bytes), tp.skewed_partition_threshold_mb,
            tp.skewed_partition_factor, tp.advisory_partition_size_mb);
      }
      st.partition_bytes = ApplyCoalesce(
          std::move(st.partition_bytes), tp.advisory_partition_size_mb,
          ts.rebalance_small_factor, ts.coalesce_min_partition_size_mb);
      st.num_partitions = static_cast<int>(st.partition_bytes.size());
    }
    SPARKOPT_DCHECK_EQ(st.num_partitions,
                       static_cast<int>(st.partition_bytes.size()))
        << "stage " << st.id;
    SPARKOPT_DCHECK_GE(st.num_partitions, 1) << "stage " << st.id;
  }

  // Root stage does not write a shuffle.
  const int root_stage = stage_of_subq[subq_of[plan.root()]];
  for (auto& st : result.stages) {
    st.exchanges_output = st.id != root_stage;
  }
  SPARKOPT_VERIFY_PHYSICAL(result, plan_, "PhysicalPlanner::Plan");
  return result;
}

}  // namespace sparkopt
