#pragma once

#include <cstddef>
#include <vector>

#include "common/arena.h"
#include "common/pareto_flat.h"

/// \file dag_aggregation.h
/// \brief DAG aggregation strategies for HMOOC (Algorithms 2-4): given
/// each subQ's effective set under one theta_c candidate, assemble the
/// query-level front.
///
/// Extracted from hmooc.cc so the three strategies share one
/// allocation-discipline: a DagAggregator owns a MonotonicArena (choice
/// rows, reset per call), a ParetoScratch, and a pool of
/// divide-and-conquer nodes whose front buffers are recycled across
/// calls. After a warm-up call at the session's high-water sizes,
/// repeated aggregations of same-shaped inputs perform zero heap
/// allocation (pinned by tests/common/alloc_test.cc).
///
/// Supports k = 2 and k = 3 objectives; the exact divide-and-conquer
/// path runs on the flat kernel's FlatMerge2/FlatMerge3.

namespace sparkopt {

/// One subQ-level solution in a candidate's effective set. Objectives
/// are stored inline (first `k` slots of `f`) so effective sets carry no
/// per-entry heap allocation.
struct SubQEntry {
  int pool_idx = -1;       ///< index into the shared theta_p pool
  double f[3] = {0, 0, 0};  ///< objective values; slots >= k unused
};

/// eff[c][i] = effective set of subQ i under theta_c candidate c.
using EffectiveSet = std::vector<std::vector<std::vector<SubQEntry>>>;

/// Query-level aggregation output for one candidate, SoA rows. Reuse one
/// batch across calls to keep its buffers at their high-water capacity.
struct AggregatedBatch {
  int k = 0;      ///< objectives per point
  int width = 0;  ///< subQs covered: choice-row length
  /// Point p's objectives: obj[p*k .. p*k+k).
  std::vector<double> obj;
  /// Point p's per-subQ pool choice: choice[p*width .. p*width+width).
  std::vector<int> choice;

  size_t size() const { return k == 0 ? 0 : obj.size() / k; }
  void clear() {
    obj.clear();
    choice.clear();
  }
};

/// \brief Aggregates one candidate's subQ effective sets into
/// query-level points. Caller-owned like ParetoScratch: create one per
/// thread (or per solver task) and reuse it — buffers reach a steady
/// state after the first call. Not thread-safe.
class DagAggregator {
 public:
  /// HMOOC1: exact divide-and-conquer Minkowski merging (Algorithms 2-3)
  /// on the flat kernel. `cap` bounds each merge node's front (evenly
  /// spaced thinning, extremes kept); `eps` is the optional
  /// epsilon-dominance budget — k = 2 only, ignored for k = 3 (the
  /// multiplicative grid is axis-pairwise; a 3-D grid is future work).
  /// Emits nothing when any subQ set is empty.
  void AggregateDc(const std::vector<std::vector<SubQEntry>>& sets, int k,
                   size_t cap, double eps, AggregatedBatch* out);

  /// HMOOC2: weighted-sum approximation (Algorithm 4). For k = 2 the
  /// weight ladder is w_latency = i/(ws_pairs-1); for k = 3 it is the
  /// smallest simplex lattice {(a, b, t-a-b)/t} with at least `ws_pairs`
  /// points. `normalize` applies per-subQ min-max normalization.
  void AggregateWeightedSum(const std::vector<std::vector<SubQEntry>>& sets,
                            int k, int ws_pairs, bool normalize,
                            AggregatedBatch* out);

  /// HMOOC3: boundary approximation — one point per objective, built
  /// from each subQ's per-objective argmin entry.
  void AggregateBoundary(const std::vector<std::vector<SubQEntry>>& sets,
                         int k, AggregatedBatch* out);

  /// High-water footprint of the choice-row arena (diagnostics/tests).
  const MonotonicArena& arena() const { return arena_; }

 private:
  /// One divide-and-conquer tree node. The front lives in f2 or f3
  /// depending on k; choice rows are arena-backed (valid until the next
  /// AggregateDc call).
  struct Node {
    Front2 f2;
    Front3 f3;
    const int* choice = nullptr;
    int width = 0;
    bool in_use = false;
  };

  int AcquireNode();
  void ReleaseNode(int idx);
  size_t NodePoints(const Node& n, int k) const {
    return k == 3 ? n.f3.size() : n.f2.size();
  }

  int Leaf(const std::vector<SubQEntry>& set, int k);
  int Merge(int a, int b, int k);
  void Thin(int node, int k, size_t cap);
  void EpsilonThinNode(int node, double eps);  // k = 2 only
  int Recurse(const std::vector<std::vector<SubQEntry>>& sets, int lo, int hi,
              int k, size_t cap, double eps);

  MonotonicArena arena_;
  ParetoScratch scratch_;
  std::vector<Node> nodes_;
  std::vector<int> free_;
  Front2 tmp2_;  ///< thinning staging (buffers recycled)
  Front3 tmp3_;
};

}  // namespace sparkopt
